// Semi-streaming scenario: a power-law "social" graph arrives as a stream
// of weighted edges (weight = interaction strength). We compare one-pass
// streaming baselines against the multi-round dual-primal algorithm running
// END-TO-END on the semi-streaming access substrate (src/access/streaming):
// every round iteration is exactly one pass over the stream, and between
// passes only the sampled edges are stored. The passes/space columns are
// the substrate's own model accounting — the trade-off the paper's title is
// about: access to data (passes/rounds) versus quality.

#include <iomanip>
#include <iostream>

#include "access/streaming.hpp"
#include "baselines/baselines.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "matching/approx.hpp"

int main() {
  const std::size_t n = 2000;
  dp::Graph g = dp::gen::power_law(n, 2.2, 14.0, 11);
  dp::gen::weight_zipf(g, 0.9, 12);
  std::cout << "social stream: " << g.summary() << "\n\n";

  struct Row {
    const char* name;
    double value;
    std::size_t passes;
    std::size_t space;
  };
  std::vector<Row> rows;

  {
    dp::ResourceMeter meter;
    const auto m = dp::baselines::streaming_greedy_matching(g, &meter);
    rows.push_back({"greedy (1 pass)", m.weight(g), meter.passes(),
                    2 * m.size()});
  }
  {
    dp::ResourceMeter meter;
    const auto m = dp::baselines::paz_schwartzman_matching(g, 0.1, &meter);
    rows.push_back({"local-ratio (1 pass)", m.weight(g), meter.passes(),
                    meter.peak_edges()});
  }
  {
    dp::ResourceMeter meter;
    const auto m = dp::baselines::improvement_matching(g, 0.1, &meter);
    rows.push_back({"improve (1 pass)", m.weight(g), meter.passes(),
                    2 * m.size()});
  }
  // The real solver on the semi-streaming substrate: one pass per round
  // iteration, sampled edges as the only between-pass state.
  dp::access::StreamingSubstrate streaming;
  {
    dp::core::SolverOptions options;
    options.eps = 0.2;
    options.p = 2.0;
    options.seed = 3;
    options.max_outer_rounds = 8;
    options.sparsifiers_per_round = 4;
    options.substrate = &streaming;
    const auto result = dp::core::solve_matching(g, options);
    rows.push_back({"dual-primal (streaming)", result.value,
                    streaming.meter().passes(),
                    streaming.meter().peak_edges()});
    std::cout << "streaming substrate: rounds="
              << streaming.meter().rounds() << " passes="
              << streaming.meter().passes() << " (one per round iteration)"
              << " peak stored=" << streaming.meter().peak_edges()
              << " certified_ratio=" << std::fixed << std::setprecision(3)
              << result.certified_ratio << "\n\n";
  }
  // Strong offline reference on the full graph (not resource constrained).
  dp::ApproxOptions offline;
  offline.max_rounds = 128;
  const auto reference = dp::approx_weighted_matching(g, offline);
  const double ref = reference.weight(g);

  std::cout << std::left << std::setw(28) << "algorithm" << std::right
            << std::setw(12) << "weight" << std::setw(10) << "ratio"
            << std::setw(8) << "passes" << std::setw(12) << "space\n";
  for (const Row& row : rows) {
    std::cout << std::left << std::setw(28) << row.name << std::right
              << std::fixed << std::setprecision(1) << std::setw(12)
              << row.value << std::setprecision(3) << std::setw(10)
              << row.value / ref << std::setw(8) << row.passes
              << std::setw(12) << row.space << "\n";
  }
  std::cout << std::left << std::setw(28) << "offline reference"
            << std::right << std::fixed << std::setprecision(1)
            << std::setw(12) << ref << std::setprecision(3) << std::setw(10)
            << 1.0 << std::setw(8) << "-" << std::setw(12) << g.num_edges()
            << "\n";
  return 0;
}
