// Congested-clique scenario (Section 1, related work): every vertex is a
// processor that may send O(n^{1/p}) sketch words per round. We build the
// per-vertex AGM sketches, meter the words each vertex communicates, and
// confirm the per-vertex message size the paper claims.

#include <cmath>
#include <iostream>

#include "graph/generators.hpp"
#include "sketch/agm.hpp"
#include "sketch/spanning_forest.hpp"
#include "util/rng.hpp"

int main() {
  for (std::size_t n : {64, 128, 256, 512}) {
    const std::size_t m = n * 8;
    const dp::Graph g = dp::gen::gnm(n, m, n);

    dp::Rng rng(n + 1);
    const int levels =
        2 * static_cast<int>(std::ceil(std::log2(static_cast<double>(n)))) +
        2;
    const dp::L0SamplerSeed seed(levels, 6, rng);
    dp::ResourceMeter meter;
    const dp::AgmSketch sketch(g, seed, &meter);

    const double per_vertex =
        static_cast<double>(meter.sketch_words()) / static_cast<double>(n);
    std::cout << "n=" << n << " m=" << m
              << " sketch words/vertex=" << per_vertex
              << " (polylog n per copy; x n^{1/p} copies for matching)"
              << "\n";
  }

  // One full sketch-based connectivity run with accounting.
  const dp::Graph g = dp::gen::gnm(256, 1500, 9);
  dp::ResourceMeter meter;
  const auto forest = dp::sketch_spanning_forest(g, 10, &meter);
  std::cout << "connectivity on K-clique model: components="
            << forest.components << " sampling_rounds="
            << forest.sampling_rounds << " use_steps=" << forest.use_steps
            << "\n  " << meter.summary() << "\n";
  return 0;
}
