// Quickstart: build a weighted graph, run the dual-primal solver, and
// inspect the certificate and resource usage.
//
//   ./examples/quickstart [n] [m] [eps]

#include <cstdlib>
#include <iostream>

#include "baselines/baselines.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 300;
  const std::size_t m = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 3000;
  const double eps = argc > 3 ? std::strtod(argv[3], nullptr) : 0.15;

  // A random weighted graph: the workload of experiment E1.
  dp::Graph g = dp::gen::gnm(n, m, /*seed=*/42);
  dp::gen::weight_uniform(g, 1.0, 32.0, /*seed=*/43);
  std::cout << "input: " << g.summary() << "\n";

  // Configure the solver: eps drives the approximation target, p the space
  // budget n^{1+1/p}.
  dp::core::SolverOptions options;
  options.eps = eps;
  options.p = 2.0;
  options.seed = 1;
  options.max_outer_rounds = 10;

  const dp::core::SolverResult result = dp::core::solve_matching(g, options);

  std::cout << "dual-primal matching weight : " << result.value << "\n"
            << "certified upper bound (dual): " << result.dual_bound << "\n"
            << "certified ratio             : " << result.certified_ratio
            << "\n"
            << "outer sampling rounds       : " << result.outer_rounds << "\n"
            << "resources                   : " << result.meter.summary()
            << "\n";

  // Compare with the classic 1/2-approximation.
  const dp::Matching greedy = dp::greedy_matching(g);
  std::cout << "greedy matching weight      : " << greedy.weight(g) << "\n";

  // And with one-pass streaming local-ratio.
  const dp::Matching ps = dp::baselines::paz_schwartzman_matching(g, eps);
  std::cout << "paz-schwartzman (1 pass)    : " << ps.weight(g) << "\n";
  return 0;
}
