// MapReduce scenario: the paper's motivating setting. A large edge list is
// distributed over simulated machines; per-vertex l0-sampling sketches are
// computed in one MapReduce round (mappers emit per-endpoint records,
// reducers build vertex sketches), then merged centrally — exactly the
// two-round schema of Section 4.2. The spanning forest is then extracted
// with zero further passes, and the dual-primal matcher runs END-TO-END on
// the MapReduce access substrate (src/access/mapreduce): every sampling
// round is one REAL simulator round — mappers evaluate the counter-based
// masks over their shards, one reducer per sparsifier collects its support
// under a memory cap that would reject any algorithm shipping all edges to
// one place.

#include <algorithm>
#include <iostream>
#include <mutex>

#include "access/mapreduce.hpp"
#include "core/solver.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "mapreduce/mapreduce.hpp"
#include "sketch/l0sampler.hpp"
#include "sketch/spanning_forest.hpp"

int main() {
  const std::size_t n = 400;
  const std::size_t m = 12000;
  dp::Graph g = dp::gen::power_law(n, 2.3, 2.0 * m / n, 7);
  dp::gen::weight_zipf(g, 0.7, 8);
  std::cout << "cluster input: " << g.summary() << "\n";

  // ---- Round schema of Section 4.2: mappers shard edges, reducers own
  // vertices. We count shuffle volume and rounds. ----
  dp::ResourceMeter mr_meter;
  dp::mapreduce::Config config;
  config.machines = 16;
  dp::mapreduce::Simulator sim(config, &mr_meter);

  using dp::mapreduce::KeyValue;
  std::vector<KeyValue> edge_records;
  for (dp::EdgeId e = 0; e < g.num_edges(); ++e) {
    // Emit each edge to both endpoint reducers (1st round mapper).
    edge_records.push_back({g.edge(e).u, e});
    edge_records.push_back({g.edge(e).v, e});
  }
  dp::Rng sketch_rng(33);
  const dp::L0SamplerSeed sketch_seed(2 * 10, 6, sketch_rng);
  std::size_t max_reducer_load = 0;
  std::size_t sketch_words = 0;
  std::mutex reducer_mutex;
  sim.round(
      edge_records,
      [](const std::vector<KeyValue>& shard, std::vector<KeyValue>& emit) {
        for (const KeyValue& kv : shard) emit.push_back(kv);
      },
      [&](std::uint64_t vertex, const std::vector<std::uint64_t>& values,
          std::vector<KeyValue>& emit) {
        // Each reducer owns one vertex: build its l0 incidence sketch from
        // the whole delivered batch in ONE update_batch call (rep-major
        // hashing + shared z-power tables across the vertex's edges).
        std::vector<dp::SketchUpdate> updates;
        updates.reserve(values.size());
        for (std::uint64_t e : values) {
          const dp::Edge& edge = g.edge(static_cast<dp::EdgeId>(e));
          const dp::Vertex lo = std::min(edge.u, edge.v);
          const dp::Vertex hi = std::max(edge.u, edge.v);
          const std::uint64_t index =
              static_cast<std::uint64_t>(lo) * n + hi;
          updates.push_back(
              dp::SketchUpdate{index, vertex == lo ? +1 : -1});
        }
        dp::L0Sampler sketch(sketch_seed);
        sketch.update_batch(updates);
        {
          const std::lock_guard<std::mutex> lock(reducer_mutex);
          max_reducer_load = std::max(max_reducer_load, values.size());
          sketch_words += sketch.words();
        }
        emit.push_back({0, values.size()});
      });
  std::cout << "mapreduce: " << mr_meter.summary()
            << " max_reducer_load=" << max_reducer_load
            << " sketch_words=" << sketch_words << "\n";

  // ---- Sketch-based connectivity (1 sampling round, log n uses). ----
  dp::ResourceMeter sketch_meter;
  const auto forest = dp::sketch_spanning_forest(g, 99, &sketch_meter);
  std::cout << "sketch connectivity: components=" << forest.components
            << " (true " << dp::num_components(g) << "), use_steps="
            << forest.use_steps << ", " << sketch_meter.summary() << "\n";

  // ---- Dual-primal matching END-TO-END on the MapReduce substrate: each
  // sampling round is one genuine simulator round (map -> shuffle ->
  // reduce) under the O(n^{1+1/p}) reducer memory cap. ----
  dp::access::MapReduceSubstrate::Config sub_config;
  sub_config.machines = 16;
  sub_config.space_exponent = 2.0;  // reducer cap ~ 8 n^{1.5}
  dp::access::MapReduceSubstrate substrate(sub_config);

  dp::core::SolverOptions options;
  options.eps = 0.2;
  options.p = 2.0;
  options.seed = 5;
  options.max_outer_rounds = 8;
  options.sparsifiers_per_round = 4;
  options.substrate = &substrate;
  const auto result = dp::core::solve_matching(g, options);
  std::cout << "matching weight=" << result.value
            << " certified_ratio=" << result.certified_ratio
            << " rounds=" << result.outer_rounds << "\n"
            << "substrate: simulator rounds="
            << substrate.simulator_rounds() << " (one per sampling round)"
            << " shuffle volume=" << substrate.meter().messages()
            << " reducer cap=" << substrate.reducer_memory()
            << "\npeak stored edges " << substrate.meter().peak_edges()
            << " of m=" << g.num_edges() << "\n";
  return 0;
}
