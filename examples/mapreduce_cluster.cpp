// MapReduce scenario: the paper's motivating setting. A large edge list is
// distributed over simulated machines; per-vertex l0-sampling sketches are
// computed in one MapReduce round (mappers emit per-endpoint records,
// reducers build vertex sketches), then merged centrally — exactly the
// two-round schema of Section 4.2. The spanning forest is then extracted
// with zero further passes, and the dual-primal matcher runs under a
// reducer-memory cap that would reject any algorithm storing all edges.

#include <iostream>
#include <memory>

#include "core/solver.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "mapreduce/mapreduce.hpp"
#include "sketch/spanning_forest.hpp"

int main() {
  const std::size_t n = 400;
  const std::size_t m = 12000;
  dp::Graph g = dp::gen::power_law(n, 2.3, 2.0 * m / n, 7);
  dp::gen::weight_zipf(g, 0.7, 8);
  std::cout << "cluster input: " << g.summary() << "\n";

  // ---- Round schema of Section 4.2: mappers shard edges, reducers own
  // vertices. We count shuffle volume and rounds. ----
  dp::ResourceMeter mr_meter;
  dp::mapreduce::Config config;
  config.machines = 16;
  dp::mapreduce::Simulator sim(config, &mr_meter);

  using dp::mapreduce::KeyValue;
  std::vector<KeyValue> edge_records;
  for (dp::EdgeId e = 0; e < g.num_edges(); ++e) {
    // Emit each edge to both endpoint reducers (1st round mapper).
    edge_records.push_back({g.edge(e).u, e});
    edge_records.push_back({g.edge(e).v, e});
  }
  std::size_t max_reducer_load = 0;
  sim.round(
      edge_records,
      [](const std::vector<KeyValue>& shard, std::vector<KeyValue>& emit) {
        for (const KeyValue& kv : shard) emit.push_back(kv);
      },
      [&](std::uint64_t, const std::vector<std::uint64_t>& values,
          std::vector<KeyValue>& emit) {
        // Each reducer would build this vertex's sketch here; we record the
        // load (= degree) to show per-machine memory is sublinear.
        if (values.size() > max_reducer_load) {
          max_reducer_load = values.size();
        }
        emit.push_back({0, values.size()});
      });
  std::cout << "mapreduce: " << mr_meter.summary()
            << " max_reducer_load=" << max_reducer_load << "\n";

  // ---- Sketch-based connectivity (1 sampling round, log n uses). ----
  dp::ResourceMeter sketch_meter;
  const auto forest = dp::sketch_spanning_forest(g, 99, &sketch_meter);
  std::cout << "sketch connectivity: components=" << forest.components
            << " (true " << dp::num_components(g) << "), use_steps="
            << forest.use_steps << ", " << sketch_meter.summary() << "\n";

  // ---- Dual-primal matching with the space cap the model imposes. ----
  dp::core::SolverOptions options;
  options.eps = 0.2;
  options.p = 2.0;
  options.seed = 5;
  options.max_outer_rounds = 8;
  options.sparsifiers_per_round = 4;
  const auto result = dp::core::solve_matching(g, options);
  std::cout << "matching weight=" << result.value
            << " certified_ratio=" << result.certified_ratio
            << " rounds=" << result.outer_rounds << "\n"
            << "peak stored edges " << result.meter.peak_edges() << " of m="
            << g.num_edges() << "\n";
  return 0;
}
