// b-matching scenario: assigning reviewers to papers. Reviewers can take
// several papers (b_i > 1), papers need at most a few reviewers, and the
// edge weight is a relevance score. This is exactly weighted b-matching —
// the general problem Theorem 15 solves — on a bipartite-with-conflicts
// graph (reviewer-reviewer conflict triangles make it nonbipartite).

#include <iostream>

#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "matching/approx.hpp"
#include "matching/greedy.hpp"
#include "util/rng.hpp"

int main() {
  const std::size_t reviewers = 120;
  const std::size_t papers = 300;
  const std::size_t n = reviewers + papers;
  dp::Rng rng(17);

  dp::Graph g(n);
  // Relevance edges reviewer -> paper.
  for (std::size_t r = 0; r < reviewers; ++r) {
    const std::size_t bids = 8 + rng.uniform(12);
    for (std::size_t k = 0; k < bids; ++k) {
      const auto paper = static_cast<dp::Vertex>(
          reviewers + rng.uniform(papers));
      g.add_edge(static_cast<dp::Vertex>(r), paper,
                 1.0 + 9.0 * rng.uniform_real());
    }
  }
  // A few collaboration edges between reviewers (joint assignments with
  // bounded load) to make the instance genuinely nonbipartite.
  for (std::size_t k = 0; k < reviewers / 2; ++k) {
    const auto a = static_cast<dp::Vertex>(rng.uniform(reviewers));
    const auto b = static_cast<dp::Vertex>(rng.uniform(reviewers));
    if (a != b) g.add_edge(a, b, 1.0 + 3.0 * rng.uniform_real());
  }

  // Capacities: reviewers take up to 4 papers, papers get up to 2 reviews.
  std::vector<std::int64_t> caps(n);
  for (std::size_t r = 0; r < reviewers; ++r) caps[r] = 4;
  for (std::size_t p = 0; p < papers; ++p) caps[reviewers + p] = 2;
  const dp::Capacities b(caps);

  std::cout << "assignment instance: " << g.summary()
            << " B=" << b.total() << "\n";

  dp::core::SolverOptions options;
  options.eps = 0.2;
  options.p = 2.0;
  options.seed = 23;
  options.max_outer_rounds = 8;
  options.sparsifiers_per_round = 4;
  const auto result = dp::core::solve_b_matching(g, b, options);

  const auto greedy = dp::greedy_b_matching(g, b);
  const auto local = dp::approx_weighted_b_matching(g, b);

  std::cout << "greedy assignment score      : " << greedy.weight(g) << "\n"
            << "local-search assignment score: " << local.weight(g) << "\n"
            << "dual-primal assignment score : " << result.value << "\n"
            << "certified upper bound        : " << result.dual_bound << "\n"
            << "certified ratio              : " << result.certified_ratio
            << "\n"
            << "resources: " << result.meter.summary() << "\n";

  // Show a few concrete assignments.
  std::size_t shown = 0;
  for (dp::EdgeId e = 0; e < g.num_edges() && shown < 5; ++e) {
    if (result.b_matching.multiplicity(e) > 0 &&
        g.edge(e).v >= reviewers) {
      std::cout << "  reviewer " << g.edge(e).u << " -> paper "
                << (g.edge(e).v - reviewers) << " (score " << g.edge(e).w
                << ")\n";
      ++shown;
    }
  }
  return 0;
}
