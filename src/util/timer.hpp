#pragma once
// Wall-clock timing for benchmarks.

#include <chrono>

namespace dp {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction / last restart.
  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace dp
