#pragma once
// Resource metering.
//
// The paper's theorems bound *resources of the computation model* — adaptive
// sampling rounds, streaming passes, centrally stored edges, sketch words,
// per-vertex messages — rather than wall-clock time. The substrates in this
// library meter those quantities through a shared ResourceMeter so that
// benchmarks report exactly what Theorem 1 / Theorem 15 bound.

#include <cstddef>
#include <cstdint>
#include <string>

namespace dp {

/// Counters for the resource-constrained models of Section 1 of the paper.
/// All counters are plain (non-atomic). Concurrent phases never share one
/// meter: each stage/thread writes its own ResourceMeter and the owner
/// aggregates them with merge() at a stage boundary, in a fixed stage
/// order (the round pipeline's Merge stage is the canonical example) — so
/// the totals are identical whatever thread interleaving produced them.
/// merge() adds every running counter and combines peaks as
/// max(own peak, other's peak, combined running stored). Note this treats
/// the two meters' transient peaks as NON-concurrent: stages that
/// genuinely hold storage at the same time must charge the held storage
/// to one meter (as the pipeline does — the round's stored edges live on
/// the Draw stage's meter until the post-merge release).
class ResourceMeter {
 public:
  /// One adaptive sampling round (MapReduce round / sketch epoch).
  void add_round(std::size_t k = 1) noexcept { rounds_ += k; }

  /// One sequential pass over the input stream.
  void add_pass(std::size_t k = 1) noexcept { passes_ += k; }

  /// Edges currently held in central memory. Tracks a running total and the
  /// peak, which is the "space" of Theorem 15.
  void store_edges(std::size_t k) noexcept {
    stored_edges_ += k;
    if (stored_edges_ > peak_edges_) peak_edges_ = stored_edges_;
  }
  void release_edges(std::size_t k) noexcept {
    stored_edges_ = k > stored_edges_ ? 0 : stored_edges_ - k;
  }

  /// Sketch words communicated (congested clique accounting).
  void add_sketch_words(std::size_t k) noexcept { sketch_words_ += k; }

  /// Generic message count (MapReduce shuffle volume).
  void add_messages(std::size_t k) noexcept { messages_ += k; }

  /// Inner (non-adaptive) iterations executed on stored data. The paper's
  /// key distinction: these do NOT touch the input.
  void add_inner_iterations(std::size_t k = 1) noexcept {
    inner_iterations_ += k;
  }

  /// Oracle invocations (MicroOracle calls in Theorem 1).
  void add_oracle_calls(std::size_t k = 1) noexcept { oracle_calls_ += k; }

  /// Injected (or real) substrate faults survived via retry. The cost of
  /// each retry lands on the counters above — an extra pass, re-shuffled
  /// messages — so faults() is the denominator of per-fault recovery cost.
  void add_faults(std::size_t k = 1) noexcept { faults_ += k; }

  /// Max-flow computations run by odd-set separation (Gusfield, Lemma 25),
  /// and flows skipped by the incremental per-subtree Gomory-Hu reuse
  /// after contraction — the hot-path saving made observable.
  void add_max_flows(std::size_t k) noexcept { max_flows_ += k; }
  void add_max_flows_saved(std::size_t k) noexcept { max_flows_saved_ += k; }

  /// Gomory-Hu tree (re)build outcomes: full Gusfield rebuilds,
  /// incremental post-contraction updates, whole-tree cache hits.
  void add_gh_full_builds(std::size_t k) noexcept { gh_full_builds_ += k; }
  void add_gh_incremental(std::size_t k) noexcept { gh_incremental_ += k; }
  void add_gh_tree_reuses(std::size_t k) noexcept { gh_tree_reuses_ += k; }

  /// Dynamic re-solve accounting: MW rounds and substrate passes the
  /// warm-started path did NOT pay relative to the previous solve's cost,
  /// plus covering rows raised by the feasibility-repair pass — the
  /// o(full-solve) claim made observable as first-class counters.
  void add_saved_rounds(std::size_t k) noexcept { saved_rounds_ += k; }
  void add_saved_passes(std::size_t k) noexcept { saved_passes_ += k; }
  void add_repaired_rows(std::size_t k) noexcept { repaired_rows_ += k; }

  /// Out-of-core IO accounting (stream/edge_file): bytes physically read
  /// from the edge file, pass iterations that had to WAIT for a block
  /// (stalls), and block requests the async prefetcher had already
  /// completed (hits). hit_rate = prefetch_hits / (prefetch_hits +
  /// io_stalls) is the double-buffering pipeline's health signal.
  void add_io_bytes(std::size_t k) noexcept { io_bytes_ += k; }
  void add_io_stalls(std::size_t k = 1) noexcept { io_stalls_ += k; }
  void add_prefetch_hits(std::size_t k = 1) noexcept { prefetch_hits_ += k; }

  /// MapReduce shuffle volume in BYTES (messages counts records; each
  /// shuffled record is a fixed-width key/value pair, so the simulator
  /// charges bytes alongside).
  void add_shuffle_bytes(std::size_t k) noexcept { shuffle_bytes_ += k; }

  /// Resident edge-attribute state of the access layer: full per-edge
  /// attribute records (attribute table, IO block buffers, stored-sample
  /// attribute caches) a substrate holds in process memory, in edge units.
  /// Distinct from store_edges (the MODEL's stored-sample space): resident
  /// is what SolverOptions::memory_budget_edges caps — the out-of-core
  /// backends keep it o(m) while the in-memory reference pins the whole
  /// attribute table.
  void hold_resident(std::size_t k) noexcept {
    resident_edges_ += k;
    if (resident_edges_ > peak_resident_) peak_resident_ = resident_edges_;
  }
  void release_resident(std::size_t k) noexcept {
    resident_edges_ = k > resident_edges_ ? 0 : resident_edges_ - k;
  }

  std::size_t rounds() const noexcept { return rounds_; }
  std::size_t passes() const noexcept { return passes_; }
  std::size_t stored_edges() const noexcept { return stored_edges_; }
  std::size_t peak_edges() const noexcept { return peak_edges_; }
  std::size_t sketch_words() const noexcept { return sketch_words_; }
  std::size_t messages() const noexcept { return messages_; }
  std::size_t inner_iterations() const noexcept { return inner_iterations_; }
  std::size_t oracle_calls() const noexcept { return oracle_calls_; }
  std::size_t faults() const noexcept { return faults_; }
  std::size_t max_flows() const noexcept { return max_flows_; }
  std::size_t max_flows_saved() const noexcept { return max_flows_saved_; }
  std::size_t gh_full_builds() const noexcept { return gh_full_builds_; }
  std::size_t gh_incremental() const noexcept { return gh_incremental_; }
  std::size_t gh_tree_reuses() const noexcept { return gh_tree_reuses_; }
  std::size_t saved_rounds() const noexcept { return saved_rounds_; }
  std::size_t saved_passes() const noexcept { return saved_passes_; }
  std::size_t repaired_rows() const noexcept { return repaired_rows_; }
  std::size_t io_bytes() const noexcept { return io_bytes_; }
  std::size_t io_stalls() const noexcept { return io_stalls_; }
  std::size_t prefetch_hits() const noexcept { return prefetch_hits_; }
  std::size_t shuffle_bytes() const noexcept { return shuffle_bytes_; }
  std::size_t resident_edges() const noexcept { return resident_edges_; }
  std::size_t peak_resident_edges() const noexcept { return peak_resident_; }

  void reset() noexcept { *this = ResourceMeter{}; }

  /// Merge counters from another meter (peak = max of peaks).
  void merge(const ResourceMeter& other) noexcept;

  /// Human-readable one-line summary.
  std::string summary() const;

 private:
  std::size_t rounds_ = 0;
  std::size_t passes_ = 0;
  std::size_t stored_edges_ = 0;
  std::size_t peak_edges_ = 0;
  std::size_t sketch_words_ = 0;
  std::size_t messages_ = 0;
  std::size_t inner_iterations_ = 0;
  std::size_t oracle_calls_ = 0;
  std::size_t faults_ = 0;
  std::size_t max_flows_ = 0;
  std::size_t max_flows_saved_ = 0;
  std::size_t gh_full_builds_ = 0;
  std::size_t gh_incremental_ = 0;
  std::size_t gh_tree_reuses_ = 0;
  std::size_t saved_rounds_ = 0;
  std::size_t saved_passes_ = 0;
  std::size_t repaired_rows_ = 0;
  std::size_t io_bytes_ = 0;
  std::size_t io_stalls_ = 0;
  std::size_t prefetch_hits_ = 0;
  std::size_t shuffle_bytes_ = 0;
  std::size_t resident_edges_ = 0;
  std::size_t peak_resident_ = 0;
};

}  // namespace dp
