#pragma once
// Cooperative cancellation and deadlines — the anytime-solving contract.
//
// A solve under a wall-clock budget must stop at a SAFE point and still
// return something rigorous: the best-so-far primal with an exactly
// certified ratio, plus the last completed round's checkpoint so a
// re-submitted request warm-resumes instead of restarting. The primitives:
//
//  - CancelToken: a copyable handle to a shared cancellation flag. Anyone
//    holding a copy may cancel(); pollers see it at the next safe point.
//    Default-constructed tokens are unarmed (never cancel, poll for free).
//  - Deadline: an absolute instant on a Clock (util/clock), so deadline
//    tests run on scripted time instead of real sleeps.
//  - StopCheck: the combined poll the solver threads through the round
//    pipeline and the access substrates. Polls are cheap (one relaxed
//    atomic load; one clock query when a deadline is armed) and safe from
//    any thread.
//
// Safe points are where no partially-applied state mutation can leak: the
// solver's round-loop top, the pipeline's stage boundaries and per-inner-
// iteration boundaries, and the streaming substrate's pass chunks (the
// sweep only fills pure per-index buffers, so abandoning a pass loses no
// state). Stopping raises SolveAborted, which the solver converts into an
// anytime SolverResult (SolverStatus::kDeadline / kCancelled) — it is a
// control-flow signal, not an error the caller ever sees.

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/clock.hpp"
#include "util/error.hpp"

namespace dp {

/// Why a StopCheck fired.
enum class StopReason : std::uint8_t { kNone = 0, kCancelled, kDeadline };

const char* stop_reason_name(StopReason reason) noexcept;

/// Copyable handle to a shared cancellation flag. A default-constructed
/// token is unarmed: it can never be cancelled and polls as false forever.
/// Armed tokens (CancelToken::make()) share one flag across all copies.
class CancelToken {
 public:
  CancelToken() = default;

  /// A fresh armed token (its copies share the flag).
  static CancelToken make() {
    CancelToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  bool armed() const noexcept { return flag_ != nullptr; }

  /// Request cancellation; idempotent, safe from any thread. No-op on an
  /// unarmed token.
  void cancel() const noexcept {
    if (flag_ != nullptr) flag_->store(true, std::memory_order_release);
  }

  bool cancelled() const noexcept {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// An absolute instant on a Clock. Default-constructed deadlines are
/// unarmed (never expire).
struct Deadline {
  const Clock* clock = nullptr;  // nullptr = unarmed
  std::uint64_t at_us = 0;       // absolute, in clock->now_us() time

  /// The instant `budget_us` from now on `clock`. The clock must outlive
  /// every poll.
  static Deadline after(const Clock& clock, std::uint64_t budget_us) noexcept {
    return Deadline{&clock, clock.now_us() + budget_us};
  }

  bool armed() const noexcept { return clock != nullptr; }

  bool expired() const noexcept {
    return clock != nullptr && clock->now_us() >= at_us;
  }
};

/// The combined cancellation/deadline poll. Copyable; polls are cheap and
/// thread-safe. An unarmed StopCheck (no token, no deadline) is the
/// default everywhere and polls as kNone at zero cost.
class StopCheck {
 public:
  StopCheck() = default;
  StopCheck(CancelToken token, Deadline deadline) noexcept
      : token_(std::move(token)), deadline_(deadline) {}

  bool armed() const noexcept {
    return token_.armed() || deadline_.armed();
  }

  /// Cancellation outranks the deadline: an explicitly cancelled request
  /// reports kCancelled even if its deadline also lapsed.
  StopReason poll() const noexcept {
    if (token_.cancelled()) return StopReason::kCancelled;
    if (deadline_.expired()) return StopReason::kDeadline;
    return StopReason::kNone;
  }

  /// Poll and raise SolveAborted at a safe point. `site` labels where the
  /// stop was observed (ErrorContext::site).
  void throw_if_stopped(const char* site) const;

 private:
  CancelToken token_;
  Deadline deadline_;
};

/// Control-flow signal raised at a safe point when a StopCheck fires. The
/// solver converts it into an anytime SolverResult (kDeadline/kCancelled);
/// it escapes to callers only from code running outside a solve.
class SolveAborted : public SolverError {
 public:
  SolveAborted(StopReason reason, ErrorContext context);

  StopReason reason() const noexcept { return reason_; }

 private:
  StopReason reason_;
};

}  // namespace dp
