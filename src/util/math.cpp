#include "util/math.hpp"

namespace dp {

double loglog_slope(const std::vector<double>& x,
                    const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const std::size_t n = x.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  if (std::fabs(denom) < 1e-12) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size()));
}

}  // namespace dp
