#pragma once
// k-wise independent hash families.
//
// The l0-samplers and sketch subsampling layers require limited-independence
// hashing with provable guarantees; we provide polynomial hashing over the
// Mersenne prime 2^61 - 1 (k-wise independent for a degree-(k-1) polynomial
// with random coefficients) and simple tabulation hashing (3-wise
// independent, very fast) for performance-insensitive uses.

#include <array>
#include <cstdint>
#include <vector>

namespace dp {

class Rng;

/// Stateless 64-bit finalizer (the SplitMix64 output stage). Bijective, so
/// distinct inputs never collide; the avalanche quality is what makes the
/// counter-based RNG below usable as a per-(round, q, edge) random draw.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Combine a hash state with one more word (odd multipliers keep the map
/// bijective in `h` for fixed `v` and vice versa).
constexpr std::uint64_t mix_combine(std::uint64_t h, std::uint64_t v) noexcept {
  return mix64(h + 0x9e3779b97f4a7c15ULL + v * 0xff51afd7ed558ccdULL);
}

/// Arithmetic modulo the Mersenne prime p = 2^61 - 1.
class MersenneField {
 public:
  static constexpr std::uint64_t kPrime = (1ULL << 61) - 1;

  static std::uint64_t reduce(std::uint64_t x) noexcept {
    std::uint64_t r = (x & kPrime) + (x >> 61);
    return r >= kPrime ? r - kPrime : r;
  }

  static std::uint64_t mul(std::uint64_t a, std::uint64_t b) noexcept {
    __uint128_t prod = static_cast<__uint128_t>(a) * b;
    std::uint64_t lo = static_cast<std::uint64_t>(prod) & kPrime;
    std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
    std::uint64_t r = lo + hi;
    return r >= kPrime ? r - kPrime : r;
  }

  static std::uint64_t add(std::uint64_t a, std::uint64_t b) noexcept {
    std::uint64_t r = a + b;
    return r >= kPrime ? r - kPrime : r;
  }
};

/// k-wise independent hash h : u64 -> [0, 2^61-1), implemented as a random
/// degree-(k-1) polynomial over GF(2^61 - 1).
class KWiseHash {
 public:
  /// Degree of independence k >= 2; coefficients drawn from rng.
  KWiseHash(int k, Rng& rng);

  /// Hash value in [0, kPrime).
  std::uint64_t operator()(std::uint64_t x) const noexcept;

  /// Batched evaluation: out[i] = (*this)(xs[i]) for i < n. The Horner
  /// chains of four inputs are interleaved, so the serial modular-multiply
  /// dependency of one evaluation overlaps with its neighbours' — the
  /// batch throughput win L0Sampler::update_batch is built on.
  void many(const std::uint64_t* xs, std::size_t n,
            std::uint64_t* out) const noexcept;

  /// Hash mapped to [0, range) with negligible modulo bias (range << 2^61).
  std::uint64_t bounded(std::uint64_t x, std::uint64_t range) const noexcept {
    return (*this)(x) % range;
  }

  /// Hash mapped to a real in [0, 1).
  double real(std::uint64_t x) const noexcept {
    return static_cast<double>((*this)(x)) /
           static_cast<double>(MersenneField::kPrime);
  }

  int independence() const noexcept { return static_cast<int>(coef_.size()); }

 private:
  std::vector<std::uint64_t> coef_;
};

/// Simple tabulation hashing over 8 byte-indexed tables: 3-wise independent,
/// excellent in practice, O(1) with small constants.
class TabulationHash {
 public:
  explicit TabulationHash(Rng& rng);

  std::uint64_t operator()(std::uint64_t x) const noexcept {
    std::uint64_t h = 0;
    for (int i = 0; i < 8; ++i) {
      h ^= table_[i][(x >> (8 * i)) & 0xff];
    }
    return h;
  }

 private:
  std::array<std::array<std::uint64_t, 256>, 8> table_;
};

/// Canonical 64-bit key for an undirected edge (i, j) with i, j < 2^32.
constexpr std::uint64_t edge_key(std::uint32_t i, std::uint32_t j) noexcept {
  return i < j ? (static_cast<std::uint64_t>(i) << 32) | j
               : (static_cast<std::uint64_t>(j) << 32) | i;
}

}  // namespace dp
