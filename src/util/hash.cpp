#include "util/hash.hpp"

#include "util/rng.hpp"

namespace dp {

KWiseHash::KWiseHash(int k, Rng& rng) {
  coef_.resize(static_cast<std::size_t>(k < 2 ? 2 : k));
  for (auto& c : coef_) c = rng.uniform(MersenneField::kPrime);
  // Leading coefficient nonzero so the polynomial has full degree.
  if (coef_.back() == 0) coef_.back() = 1;
}

std::uint64_t KWiseHash::operator()(std::uint64_t x) const noexcept {
  const std::uint64_t xr = MersenneField::reduce(x);
  // Horner evaluation.
  std::uint64_t acc = 0;
  for (std::size_t i = coef_.size(); i-- > 0;) {
    acc = MersenneField::add(MersenneField::mul(acc, xr), coef_[i]);
  }
  return acc;
}

void KWiseHash::many(const std::uint64_t* xs, std::size_t n,
                     std::uint64_t* out) const noexcept {
  const std::uint64_t* coef = coef_.data();
  const std::size_t k = coef_.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint64_t x0 = MersenneField::reduce(xs[i]);
    const std::uint64_t x1 = MersenneField::reduce(xs[i + 1]);
    const std::uint64_t x2 = MersenneField::reduce(xs[i + 2]);
    const std::uint64_t x3 = MersenneField::reduce(xs[i + 3]);
    std::uint64_t a0 = 0, a1 = 0, a2 = 0, a3 = 0;
    for (std::size_t j = k; j-- > 0;) {
      const std::uint64_t c = coef[j];
      a0 = MersenneField::add(MersenneField::mul(a0, x0), c);
      a1 = MersenneField::add(MersenneField::mul(a1, x1), c);
      a2 = MersenneField::add(MersenneField::mul(a2, x2), c);
      a3 = MersenneField::add(MersenneField::mul(a3, x3), c);
    }
    out[i] = a0;
    out[i + 1] = a1;
    out[i + 2] = a2;
    out[i + 3] = a3;
  }
  for (; i < n; ++i) out[i] = (*this)(xs[i]);
}

TabulationHash::TabulationHash(Rng& rng) {
  for (auto& table : table_) {
    for (auto& cell : table) cell = rng.next();
  }
}

}  // namespace dp
