#include "util/hash.hpp"

namespace dp {

KWiseHash::KWiseHash(int k, Rng& rng) {
  coef_.resize(static_cast<std::size_t>(k < 2 ? 2 : k));
  for (auto& c : coef_) c = rng.uniform(MersenneField::kPrime);
  // Leading coefficient nonzero so the polynomial has full degree.
  if (coef_.back() == 0) coef_.back() = 1;
}

std::uint64_t KWiseHash::operator()(std::uint64_t x) const noexcept {
  const std::uint64_t xr = MersenneField::reduce(x);
  // Horner evaluation.
  std::uint64_t acc = 0;
  for (std::size_t i = coef_.size(); i-- > 0;) {
    acc = MersenneField::add(MersenneField::mul(acc, xr), coef_[i]);
  }
  return acc;
}

TabulationHash::TabulationHash(Rng& rng) {
  for (auto& table : table_) {
    for (auto& cell : table) cell = rng.next();
  }
}

}  // namespace dp
