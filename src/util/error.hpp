#pragma once
// Typed error hierarchy for the solver and its access substrates.
//
// Every failure the library raises carries (a) a class identifying WHAT
// went wrong — configuration vs. a transient substrate fault vs. a corrupt
// checkpoint — and (b) an ErrorContext saying WHERE: the injection/failure
// site, the round ordinal and the retry attempt. The split matters for the
// fault-tolerance layer (util/fault): SubstrateFault is the only class the
// retry/degradation machinery treats as transient and recoverable;
// ConfigError and CheckpointCorrupt are deterministic model or input
// violations that always propagate to the caller.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dp {

/// Sentinel for ErrorContext fields that do not apply.
inline constexpr std::uint64_t kNoErrorContext = ~std::uint64_t{0};

/// Where a failure happened: the site label ("stream.pass",
/// "mapreduce.mapper", ...), the round/event ordinal at that site, and the
/// retry attempt that observed it (0 = first execution).
struct ErrorContext {
  std::string site;
  std::uint64_t round = kNoErrorContext;
  std::uint64_t attempt = kNoErrorContext;
};

/// Root of the library's typed errors. what() includes the formatted
/// context; context() exposes it structurally.
class SolverError : public std::runtime_error {
 public:
  explicit SolverError(const std::string& message, ErrorContext context = {});

  const ErrorContext& context() const noexcept { return context_; }

 private:
  ErrorContext context_;
};

/// Deterministic misconfiguration or model violation (bad parameter,
/// reducer memory cap exceeded, checkpoint/solve identity mismatch).
/// Never retried.
class ConfigError : public SolverError {
 public:
  using SolverError::SolverError;
};

/// Transient failure of an access substrate (a stream pass dying mid-pass,
/// a mapper/reducer task lost). The retry machinery re-executes the failed
/// pass/task; if the budget is exhausted the solver degrades gracefully
/// (SolverStatus::kDegraded) instead of propagating.
class SubstrateFault : public SolverError {
 public:
  using SolverError::SolverError;
};

/// A checksummed wire artifact that fails validation — a RoundCheckpoint
/// or a binary edge file (stream/edge_file) with bad magic/version, a
/// checksum mismatch, or a truncated payload. Never retried: corrupt
/// persistent state must surface, not be re-read.
class CheckpointCorrupt : public SolverError {
 public:
  using SolverError::SolverError;
};

}  // namespace dp
