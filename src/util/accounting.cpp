#include "util/accounting.hpp"

#include <sstream>

namespace dp {

void ResourceMeter::merge(const ResourceMeter& other) noexcept {
  rounds_ += other.rounds_;
  passes_ += other.passes_;
  stored_edges_ += other.stored_edges_;
  if (other.peak_edges_ > peak_edges_) peak_edges_ = other.peak_edges_;
  if (stored_edges_ > peak_edges_) peak_edges_ = stored_edges_;
  sketch_words_ += other.sketch_words_;
  messages_ += other.messages_;
  inner_iterations_ += other.inner_iterations_;
  oracle_calls_ += other.oracle_calls_;
  faults_ += other.faults_;
  max_flows_ += other.max_flows_;
  max_flows_saved_ += other.max_flows_saved_;
  gh_full_builds_ += other.gh_full_builds_;
  gh_incremental_ += other.gh_incremental_;
  gh_tree_reuses_ += other.gh_tree_reuses_;
  saved_rounds_ += other.saved_rounds_;
  saved_passes_ += other.saved_passes_;
  repaired_rows_ += other.repaired_rows_;
  io_bytes_ += other.io_bytes_;
  io_stalls_ += other.io_stalls_;
  prefetch_hits_ += other.prefetch_hits_;
  shuffle_bytes_ += other.shuffle_bytes_;
  resident_edges_ += other.resident_edges_;
  if (other.peak_resident_ > peak_resident_) {
    peak_resident_ = other.peak_resident_;
  }
  if (resident_edges_ > peak_resident_) peak_resident_ = resident_edges_;
}

std::string ResourceMeter::summary() const {
  std::ostringstream os;
  os << "rounds=" << rounds_ << " passes=" << passes_
     << " peak_edges=" << peak_edges_ << " sketch_words=" << sketch_words_
     << " messages=" << messages_ << " inner_iters=" << inner_iterations_
     << " oracle_calls=" << oracle_calls_ << " faults=" << faults_
     << " max_flows=" << max_flows_ << " flows_saved=" << max_flows_saved_
     << " gh_builds=" << gh_full_builds_ << "/" << gh_incremental_ << "/"
     << gh_tree_reuses_ << " saved_rounds=" << saved_rounds_
     << " saved_passes=" << saved_passes_
     << " repaired_rows=" << repaired_rows_ << " io_bytes=" << io_bytes_
     << " io_stalls=" << io_stalls_ << " prefetch_hits=" << prefetch_hits_
     << " shuffle_bytes=" << shuffle_bytes_
     << " peak_resident=" << peak_resident_;
  return os.str();
}

}  // namespace dp
