#include "util/accounting.hpp"

#include <sstream>

namespace dp {

void ResourceMeter::merge(const ResourceMeter& other) noexcept {
  rounds_ += other.rounds_;
  passes_ += other.passes_;
  stored_edges_ += other.stored_edges_;
  if (other.peak_edges_ > peak_edges_) peak_edges_ = other.peak_edges_;
  if (stored_edges_ > peak_edges_) peak_edges_ = stored_edges_;
  sketch_words_ += other.sketch_words_;
  messages_ += other.messages_;
  inner_iterations_ += other.inner_iterations_;
  oracle_calls_ += other.oracle_calls_;
  faults_ += other.faults_;
}

std::string ResourceMeter::summary() const {
  std::ostringstream os;
  os << "rounds=" << rounds_ << " passes=" << passes_
     << " peak_edges=" << peak_edges_ << " sketch_words=" << sketch_words_
     << " messages=" << messages_ << " inner_iters=" << inner_iterations_
     << " oracle_calls=" << oracle_calls_ << " faults=" << faults_;
  return os.str();
}

}  // namespace dp
