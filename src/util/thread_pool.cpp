#include "util/thread_pool.hpp"

#include <algorithm>

namespace dp {

namespace {

/// Per-batch-call completion latch: parallel_for / parallel_chunks join on
/// one of these instead of the pool-wide idle state, so a batch issued
/// while an unrelated one-shot job runs never waits for that job. Lives on
/// the issuing thread's stack; wait() returns only after the last
/// count_down() has released the mutex, so the lifetime is safe.
struct BatchLatch {
  explicit BatchLatch(std::size_t n) : remaining(n) {}

  void count_down() {
    std::lock_guard<std::mutex> lock(mutex);
    if (--remaining == 0) cv.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return remaining == 0; });
  }

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t remaining;
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  // A single worker adds no parallelism; run inline so the batch never
  // queues behind a long-running one-shot job.
  if (workers_.size() == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, workers_.size() * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  const std::size_t submitted = (n + chunk_size - 1) / chunk_size;
  BatchLatch latch(submitted);
  for (std::size_t c = 0; c < submitted; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    submit([lo, hi, &fn, &latch] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
      latch.count_down();
    });
  }
  latch.wait();
}

void ThreadPool::parallel_chunks(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (end - begin + grain - 1) / grain;
  if (chunks == 1 || workers_.size() == 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * grain;
      fn(c, lo, std::min(end, lo + grain));
    }
    return;
  }
  BatchLatch latch(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = std::min(end, lo + grain);
    submit([c, lo, hi, &fn, &latch] {
      fn(c, lo, hi);
      latch.count_down();
    });
  }
  latch.wait();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace dp
