#pragma once
// Deterministic pseudo-random number generation.
//
// Every randomized component in the library draws from an explicitly seeded
// Rng so that experiments and tests are reproducible bit-for-bit. The
// generator is xoshiro256** seeded through SplitMix64, which is the
// recommended seeding procedure of the xoshiro authors and is both fast and
// statistically strong enough for sampling-based sketching.

#include <cstdint>
#include <limits>
#include <vector>

#include "util/hash.hpp"

namespace dp {

/// SplitMix64 step: used to expand a 64-bit seed into a full generator state
/// and as a cheap standalone mixer for hashing seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Counter-based (stateless) generator built on util/hash's mix64: every
/// draw is a pure function of the seed and a caller-supplied counter tuple,
/// so draws can be evaluated in any order, from any thread, and in any
/// execution substrate (in-memory sweep, streaming pass, MapReduce mapper)
/// while reproducing bit-for-bit. This is the randomness contract of the
/// batched sampling engine (core/sampling): the draw for (round, q, edge)
/// never depends on how many draws happened before it.
class CounterRng {
 public:
  explicit constexpr CounterRng(std::uint64_t seed) noexcept
      : seed_(mix64(seed ^ 0xa076'1d64'78bd'642fULL)) {}

  /// Raw 64 bits for a 1-, 2- or 3-word counter.
  constexpr std::uint64_t bits(std::uint64_t a) const noexcept {
    return mix_combine(seed_, a);
  }
  constexpr std::uint64_t bits(std::uint64_t a,
                               std::uint64_t b) const noexcept {
    return mix_combine(mix_combine(seed_, a), b);
  }
  constexpr std::uint64_t bits(std::uint64_t a, std::uint64_t b,
                               std::uint64_t c) const noexcept {
    return mix_combine(mix_combine(mix_combine(seed_, a), b), c);
  }

  /// Uniform real in [0, 1) for the given counter.
  constexpr double uniform_real(std::uint64_t a, std::uint64_t b,
                                std::uint64_t c) const noexcept {
    return static_cast<double>(bits(a, b, c) >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p for the given counter.
  constexpr bool bernoulli(double p, std::uint64_t a, std::uint64_t b,
                           std::uint64_t c) const noexcept {
    return uniform_real(a, b, c) < p;
  }

  /// Number of fair-coin heads before the first tail (geometric, capped at
  /// 64) for the given counter — the stateless counterpart of
  /// Rng::coin_flips_until_tail used by layered subsampling.
  int coin_flips_until_tail(std::uint64_t a, std::uint64_t b) const noexcept {
    const std::uint64_t word = bits(a, b);
    return word == ~0ULL ? 64 : __builtin_ctzll(~word);
  }

  /// Derive an independent child stream; deterministic in (seed, salt).
  constexpr CounterRng fork(std::uint64_t salt) const noexcept {
    return CounterRng(mix_combine(seed_, salt));
  }

  constexpr std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
};

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can be
/// used with <random> distributions, but the members below cover all library
/// needs without the distribution-object overhead.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed. Distinct seeds yield independent-looking
  /// streams; the library derives sub-seeds via fork().
  explicit Rng(std::uint64_t seed = 0x5eed0fda1ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  /// Next raw 64 bits.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be positive. Uses Lemire rejection
  /// sampling so the result is exactly uniform.
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform real in [0, 1).
  double uniform_real() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform_real();
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform_real() < p; }

  /// Geometric-like: number of fair-coin heads before the first tail.
  /// Used by layered subsampling (each level keeps an edge w.p. 1/2).
  int coin_flips_until_tail() noexcept;

  /// Derive an independent child generator; deterministic in (state, salt).
  Rng fork(std::uint64_t salt) noexcept {
    std::uint64_t s = next() ^ (salt * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(s));
  }

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) without replacement
  /// (Floyd's algorithm when k << n, shuffle prefix otherwise).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace dp
