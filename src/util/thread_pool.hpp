#pragma once
// Minimal work-stealing-free thread pool with parallel_for/parallel_chunks
// batch helpers and Future-style one-shot jobs.
//
// The MapReduce simulator runs mappers/reducers in parallel on this pool; it
// models the *physical* parallelism of a cluster while the ResourceMeter
// models the *logical* resources (rounds, shuffle volume). Following the
// C++ Core Guidelines (CP.*), all synchronization is confined to this class;
// user tasks communicate only through their disjoint output slots.
//
// Joining is two-tier:
//  - parallel_for / parallel_chunks block on a PER-CALL latch counting only
//    their own tasks, so a batch sweep issued while an unrelated one-shot
//    job is still running does not wait for that job (the overlap the round
//    pipeline's OfflineResolve stage relies on);
//  - wait_idle() remains the global join over everything ever submitted.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace dp {

namespace detail {

/// Shared completion state behind a Future<T>.
template <typename T>
struct FutureState {
  std::mutex mutex;
  std::condition_variable cv;
  bool ready = false;
  std::optional<T> value;
  std::exception_ptr error;

  void wait() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return ready; });
  }

  void deliver(std::optional<T> result, std::exception_ptr err) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      value = std::move(result);
      error = err;
      ready = true;
    }
    cv.notify_all();
  }
};

}  // namespace detail

/// One-shot handle to a job submitted with ThreadPool::submit_job (or run
/// inline by the pool-less submit_job overload). get() blocks until the job
/// finished, then returns its result — rethrowing any exception the job
/// threw — and releases the handle. Unlike wait_idle(), a Future joins ONLY
/// its own job: batch sweeps and other jobs proceed independently.
template <typename T>
class Future {
 public:
  Future() = default;

  bool valid() const noexcept { return state_ != nullptr; }

  void wait() const {
    require_valid();
    state_->wait();
  }

  /// Non-blocking completion poll: true iff get()/wait() would not block.
  /// The out-of-core prefetcher uses this to distinguish a prefetch HIT
  /// (block already decoded when the pass asks for it) from an IO stall.
  bool ready() const {
    if (state_ == nullptr) return false;
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->ready;
  }

  T get() {
    require_valid();
    state_->wait();
    if (state_->error != nullptr) std::rethrow_exception(state_->error);
    T out = std::move(*state_->value);
    state_.reset();
    return out;
  }

  /// Ready-made future carrying `value` — the inline/serial path, so callers
  /// can keep one join-point code path whether or not a pool exists.
  static Future immediate(T value) {
    Future f;
    f.state_ = std::make_shared<detail::FutureState<T>>();
    f.state_->value.emplace(std::move(value));
    f.state_->ready = true;
    return f;
  }

 private:
  friend class ThreadPool;

  void require_valid() const {
    if (state_ == nullptr) {
      throw std::logic_error(
          "Future: wait()/get() on an invalid (empty or consumed) handle");
    }
  }

  std::shared_ptr<detail::FutureState<T>> state_;
};

class ThreadPool {
 public:
  /// Spawn `threads` workers (default: hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; fire-and-forget (join via wait_idle()).
  void submit(std::function<void()> task);

  /// Run `fn` as a one-shot job and return a Future for its result. The job
  /// counts toward wait_idle(), but parallel_for / parallel_chunks issued
  /// while it runs do NOT join it — they wait only for their own tasks.
  template <typename Fn,
            typename T = std::invoke_result_t<std::decay_t<Fn>>>
  Future<T> submit_job(Fn&& fn) {
    auto state = std::make_shared<detail::FutureState<T>>();
    auto call = std::make_shared<std::decay_t<Fn>>(std::forward<Fn>(fn));
    submit([state, call] {
      std::optional<T> result;
      std::exception_ptr error;
      try {
        result.emplace((*call)());
      } catch (...) {
        error = std::current_exception();
      }
      state->deliver(std::move(result), error);
    });
    Future<T> f;
    f.state_ = std::move(state);
    return f;
  }

  /// Block until every submitted task has completed.
  void wait_idle();

  /// Run fn(i) for i in [begin, end), partitioned into contiguous chunks
  /// across the pool. Blocks until all iterations complete (and only those
  /// — concurrent one-shot jobs are not joined). fn must write only to
  /// per-index state.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Run fn(chunk, lo, hi) over fixed-size chunks of [begin, end): chunk c
  /// covers [begin + c*grain, min(end, begin + (c+1)*grain)). Chunk
  /// boundaries depend only on `grain` — never on the pool size — so
  /// per-chunk partial results reduced in chunk order yield bitwise
  /// identical answers for any thread count (the contract the oracle's
  /// deterministic parallel reductions rely on). Blocks until all chunks of
  /// THIS call complete; concurrent one-shot jobs are not joined.
  void parallel_chunks(
      std::size_t begin, std::size_t end, std::size_t grain,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run `fn` as a one-shot job on the pool when one is available, inline
/// otherwise. Either way the caller gets a Future joined at a single point,
/// so stage code is identical for the serial reference and the overlapped
/// execution.
template <typename Fn, typename T = std::invoke_result_t<std::decay_t<Fn>>>
Future<T> submit_job(ThreadPool* pool, Fn&& fn) {
  if (pool == nullptr) return Future<T>::immediate(fn());
  return pool->submit_job(std::forward<Fn>(fn));
}

/// Run fn(chunk, lo, hi) over fixed-grain chunks of [begin, end), inline
/// when no pool is available or the range is a single chunk. Chunk
/// boundaries depend only on `grain`, so serial and parallel execution
/// produce identical chunk decompositions (and therefore identical
/// chunk-ordered reductions) — the determinism contract shared by the
/// oracle sweeps, DualState::lambda and the round pipeline's sweeps.
template <typename Fn>
void run_chunks(ThreadPool* pool, std::size_t begin, std::size_t end,
                std::size_t grain, const Fn& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  if (pool == nullptr || end - begin <= grain) {
    const std::size_t chunks = (end - begin + grain - 1) / grain;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * grain;
      fn(c, lo, std::min(end, lo + grain));
    }
    return;
  }
  pool->parallel_chunks(begin, end, grain,
                        [&fn](std::size_t c, std::size_t lo, std::size_t hi) {
                          fn(c, lo, hi);
                        });
}

/// Run fn(i) for i in [0, count): on the pool when one is available, inline
/// otherwise. The job decomposition is independent of the pool size, so as
/// long as every job writes only to its own slot, combining the slots in
/// job order is deterministic for any thread count (the same contract as
/// run_chunks, for heterogeneous jobs instead of a flat index range).
template <typename Fn>
void run_jobs(ThreadPool* pool, std::size_t count, const Fn& fn) {
  if (count == 0) return;
  if (pool == nullptr || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  pool->parallel_for(0, count, [&fn](std::size_t i) { fn(i); });
}

}  // namespace dp
