#pragma once
// Minimal work-stealing-free thread pool with a parallel_for helper.
//
// The MapReduce simulator runs mappers/reducers in parallel on this pool; it
// models the *physical* parallelism of a cluster while the ResourceMeter
// models the *logical* resources (rounds, shuffle volume). Following the
// C++ Core Guidelines (CP.*), all synchronization is confined to this class;
// user tasks communicate only through their disjoint output slots.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dp {

class ThreadPool {
 public:
  /// Spawn `threads` workers (default: hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; fire-and-forget (join via wait_idle()).
  void submit(std::function<void()> task);

  /// Block until every submitted task has completed.
  void wait_idle();

  /// Run fn(i) for i in [begin, end), partitioned into contiguous chunks
  /// across the pool. Blocks until all iterations complete. fn must write
  /// only to per-index state.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Run fn(chunk, lo, hi) over fixed-size chunks of [begin, end): chunk c
  /// covers [begin + c*grain, min(end, begin + (c+1)*grain)). Chunk
  /// boundaries depend only on `grain` — never on the pool size — so
  /// per-chunk partial results reduced in chunk order yield bitwise
  /// identical answers for any thread count (the contract the oracle's
  /// deterministic parallel reductions rely on). Blocks until done.
  void parallel_chunks(
      std::size_t begin, std::size_t end, std::size_t grain,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run fn(chunk, lo, hi) over fixed-grain chunks of [begin, end), inline
/// when no pool is available or the range is a single chunk. Chunk
/// boundaries depend only on `grain`, so serial and parallel execution
/// produce identical chunk decompositions (and therefore identical
/// chunk-ordered reductions) — the determinism contract shared by the
/// oracle sweeps, DualState::lambda and the solver's covering_us pass.
template <typename Fn>
void run_chunks(ThreadPool* pool, std::size_t begin, std::size_t end,
                std::size_t grain, const Fn& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  if (pool == nullptr || end - begin <= grain) {
    const std::size_t chunks = (end - begin + grain - 1) / grain;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * grain;
      fn(c, lo, std::min(end, lo + grain));
    }
    return;
  }
  pool->parallel_chunks(begin, end, grain,
                        [&fn](std::size_t c, std::size_t lo, std::size_t hi) {
                          fn(c, lo, hi);
                        });
}

/// Run fn(i) for i in [0, count): on the pool when one is available, inline
/// otherwise. The job decomposition is independent of the pool size, so as
/// long as every job writes only to its own slot, combining the slots in
/// job order is deterministic for any thread count (the same contract as
/// run_chunks, for heterogeneous jobs instead of a flat index range).
template <typename Fn>
void run_jobs(ThreadPool* pool, std::size_t count, const Fn& fn) {
  if (count == 0) return;
  if (pool == nullptr || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  pool->parallel_for(0, count, [&fn](std::size_t i) { fn(i); });
}

}  // namespace dp
