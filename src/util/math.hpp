#pragma once
// Numeric helpers shared across the library: geometric weight classes
// (Definitions 2/3 of the paper), epsilon-safe comparisons, and small
// statistics used by the benchmarks.

#include <cmath>
#include <cstdint>
#include <vector>

namespace dp {

/// Geometric discretization of edge weights into classes
/// w_hat_k = (1+eps)^k (Definition 3). Weights below `floor_weight` are
/// clamped into class 0; the paper rescales so the smallest retained weight
/// is W*/B, which callers implement via `floor_weight`.
class WeightClasses {
 public:
  WeightClasses(double eps, double floor_weight = 1.0)
      : eps_(eps), floor_(floor_weight), log_base_(std::log1p(eps)) {}

  /// Class index k >= 0 such that floor*(1+eps)^k <= w, i.e. the paper's
  /// level of an edge. Weights below the floor map to class 0.
  int level_of(double w) const noexcept {
    if (w <= floor_) return 0;
    return static_cast<int>(std::floor(std::log(w / floor_) / log_base_ +
                                       1e-12));
  }

  /// Representative (rounded-down) weight of class k: floor*(1+eps)^k.
  double weight_of(int k) const noexcept {
    return floor_ * std::pow(1.0 + eps_, k);
  }

  double eps() const noexcept { return eps_; }
  double floor_weight() const noexcept { return floor_; }

  /// Number of classes needed for max weight W and total capacity B when the
  /// floor is W/B: L+1 = O(log_{1+eps} B) (Definition 3).
  int num_levels(double max_weight) const noexcept {
    return level_of(max_weight) + 1;
  }

 private:
  double eps_;
  double floor_;
  double log_base_;
};

/// Relative error |a-b| / max(|b|, tiny).
inline double rel_err(double a, double b) noexcept {
  double denom = std::fabs(b);
  if (denom < 1e-300) denom = 1e-300;
  return std::fabs(a - b) / denom;
}

/// True if a >= b*(1 - tol): "a is at least b up to tolerance".
inline bool geq_approx(double a, double b, double tol) noexcept {
  return a >= b * (1.0 - tol) - 1e-12;
}

/// Least-squares slope of log(y) against log(x); used by the space/time
/// scaling benchmarks to report measured exponents.
double loglog_slope(const std::vector<double>& x, const std::vector<double>& y);

/// Arithmetic mean.
double mean(const std::vector<double>& v);

/// Population standard deviation.
double stddev(const std::vector<double>& v);

/// Integer power with overflow-free double result.
inline double ipow(double base, int exp) noexcept {
  double r = 1.0;
  for (int i = 0; i < exp; ++i) r *= base;
  return r;
}

}  // namespace dp
