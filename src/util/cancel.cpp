#include "util/cancel.hpp"

#include <string>
#include <utility>

namespace dp {

const char* stop_reason_name(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kDeadline:
      return "deadline";
  }
  return "unknown";
}

void StopCheck::throw_if_stopped(const char* site) const {
  const StopReason reason = poll();
  if (reason == StopReason::kNone) return;
  throw SolveAborted(reason, {site});
}

SolveAborted::SolveAborted(StopReason reason, ErrorContext context)
    : SolverError(std::string("solve stopped: ") + stop_reason_name(reason),
                  std::move(context)),
      reason_(reason) {}

}  // namespace dp
