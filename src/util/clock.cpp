#include "util/clock.hpp"

#include <chrono>
#include <thread>

namespace dp {

std::uint64_t SteadyClock::now_us() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SteadyClock::sleep_us(std::uint64_t us) const {
  if (us == 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

const Clock& steady_clock() noexcept {
  static const SteadyClock clock;
  return clock;
}

}  // namespace dp
