#include "util/simd.hpp"

#include <bit>
#include <cmath>
#include <cstdint>

namespace dp::simd {

namespace {

// Argument range producing finite normal results: exp(-708) ~ 3.3e-308 is
// still normal, exp(709) ~ 8.2e307 still finite. Clamping keeps the
// exponent assembly below in the normal range (k + 1023 in [1, 2046]).
constexpr double kLo = -708.0;
constexpr double kHi = 709.0;
constexpr double kLog2e = 1.4426950408889634074;
// Cody-Waite split of ln 2: the hi part has trailing zero bits, so
// x - k*ln2_hi is exact and the reduced argument keeps full precision.
constexpr double kLn2Hi = 6.93147180369123816490e-01;
constexpr double kLn2Lo = 1.90821492927058770002e-10;
// 1.5 * 2^52: adding it rounds to the nearest integer in the low mantissa
// bits (the classic branch-free round-to-nearest for |v| < 2^51).
constexpr double kShifter = 6755399441055744.0;

/// Branch-free double exp, pure per element: every operation is a plain
/// add/mul/compare or an integer op on the bit pattern, so the loop over a
/// batch autovectorizes even at baseline x86-64 (SSE2 has no packed
/// double<->int64 conversion, which is why k is never materialized as an
/// integer VALUE: the magic-shifter add leaves k in the low mantissa bits
/// of `shifted`, and 2^k is assembled by integer arithmetic on those bits
/// — the shifter's low exponent bits are zero, so (bits + 1023) << 52 IS
/// the biased exponent field of 2^k).
///
/// The range clamps below are the one subtlety: under the default
/// -ftrapping-math GCC will not if-convert FP compares (a speculated
/// compare could raise an exception on a signaling NaN), which blocks
/// vectorization of the entire loop. This file is therefore compiled with
/// -fno-trapping-math (see CMakeLists) — that flag only licenses the
/// speculation; every computed value stays bitwise identical.
inline double exp_one(double x) {
  x = x < kLo ? kLo : x;
  x = x > kHi ? kHi : x;
  const double shifted = x * kLog2e + kShifter;
  const double kd = shifted - kShifter;
  const double r = (x - kd * kLn2Hi) - kd * kLn2Lo;
  // Degree-11 Taylor polynomial on |r| <= ln2/2 (remainder ~6e-15 rel),
  // evaluated Estrin-style: the r^2/r^4/r^8 ladder turns the 12-deep
  // Horner dependency chain into ~4 levels, which matters both scalar
  // (latency-bound otherwise) and vectorized.
  const double r2 = r * r;
  const double r4 = r2 * r2;
  const double r8 = r4 * r4;
  const double q0 = 1.0 + r;                                   // r^0..r^1
  const double q1 = 0.5 + r * (1.0 / 6.0);                     // r^2..r^3
  const double q2 = 1.0 / 24.0 + r * (1.0 / 120.0);            // r^4..r^5
  const double q3 = 1.0 / 720.0 + r * (1.0 / 5040.0);          // r^6..r^7
  const double q4 = 1.0 / 40320.0 + r * (1.0 / 362880.0);      // r^8..r^9
  const double q5 = 1.0 / 3628800.0 + r * (1.0 / 39916800.0);  // r^10..r^11
  const double p =
      (q0 + r2 * q1) + r4 * (q2 + r2 * q3) + r8 * (q4 + r2 * q5);
  const std::uint64_t kb = std::bit_cast<std::uint64_t>(shifted);
  const double two_k = std::bit_cast<double>((kb + 1023u) << 52);
  return p * two_k;
}

}  // namespace

// Runtime ISA dispatch: the kernel is pure elementwise IEEE arithmetic and
// this file is built with -ffp-contract=off, so the SSE2/AVX2/AVX-512
// clones produce bitwise-identical outputs — only the lane width differs.
// (FMA contraction is the one width-dependent value change, and it is
// disabled here; the determinism contract therefore holds across hosts.)
// Under TSan the clones must be dropped: target_clones emits an ifunc
// whose resolver runs during relocation processing, BEFORE the TSan
// runtime initializes, which crashes at load in any binary that
// references the dispatched symbol. The clones are bitwise-identical to
// the default body, so the sanitized build loses no behavior.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__SANITIZE_THREAD__)
#define DP_SIMD_CLONES \
  __attribute__((target_clones("default", "avx2", "arch=x86-64-v4")))
#else
#define DP_SIMD_CLONES
#endif

DP_SIMD_CLONES
void exp_batch_poly(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = exp_one(x[i]);
}

void exp_batch_libm(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::exp(x[i]);
}

void exp_batch(const double* x, double* out, std::size_t n) {
#if defined(DP_VECTOR_EXP)
  exp_batch_poly(x, out, n);
#else
  exp_batch_libm(x, out, n);
#endif
}

bool vectorized_exp() noexcept {
#if defined(DP_VECTOR_EXP)
  return true;
#else
  return false;
#endif
}

DP_SIMD_CLONES
void fill_scaled_shift(const double* x, double* out, std::size_t n,
                       double alpha, double shift) {
  for (std::size_t i = 0; i < n; ++i) out[i] = -alpha * (x[i] - shift);
}

DP_SIMD_CLONES
void divide_batch(double* out, const double* div, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] /= div[i];
}

DP_SIMD_CLONES
double divide_max_positive(double* out, const double* div, std::size_t n) {
  // All-positive quotients order like their bit patterns read as signed
  // i64 (sign bit clear), so the reduction is a plain integer max — which
  // GCC vectorizes under strict FP semantics (vpcmpgtq+blend on AVX2,
  // vpmaxsq on AVX-512), unlike an FP max reduction. Seed 0 is the bit
  // pattern of +0.0, matching the scalar fold's 0.0 seed.
  std::int64_t mx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] /= div[i];
    const auto b =
        static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(out[i]));
    mx = mx > b ? mx : b;
  }
  return std::bit_cast<double>(static_cast<std::uint64_t>(mx));
}

}  // namespace dp::simd
