#pragma once
// Time seam for deadline-aware solving and the serving layer.
//
// Everything in the library that reads wall time or sleeps — deadline
// polls, RetryPolicy backoff, the serving layer's watchdog and latency
// stamps — goes through a Clock so tests script time instead of sleeping
// through it. Two implementations:
//
//  - SteadyClock: std::chrono::steady_clock, the production default
//    (process-wide singleton via steady_clock());
//  - FakeClock: a scripted clock tests advance manually (advance_us/set_us)
//    or per query (auto_advance_us), whose sleep_us() advances scripted
//    time instead of blocking — so deadline/watchdog/backoff tests are
//    deterministic and take zero real time.
//
// Clocks are monotonic microsecond counters with an arbitrary origin; only
// differences are meaningful. Implementations must be thread-safe: polls
// happen concurrently from solver sweeps, service workers and watchdogs.

#include <atomic>
#include <cstdint>

namespace dp {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic time in microseconds (arbitrary origin).
  virtual std::uint64_t now_us() const noexcept = 0;

  /// Advance `us` microseconds of this clock's time. The steady clock
  /// blocks the calling thread; fakes advance their scripted time.
  virtual void sleep_us(std::uint64_t us) const = 0;
};

/// std::chrono::steady_clock behind the seam.
class SteadyClock final : public Clock {
 public:
  std::uint64_t now_us() const noexcept override;
  void sleep_us(std::uint64_t us) const override;
};

/// The process-wide production clock.
const Clock& steady_clock() noexcept;

/// Scripted clock for tests: time moves only when told to. sleep_us()
/// advances scripted time (so code that backs off makes progress without
/// blocking) and accumulates total_slept_us() for assertions. An optional
/// auto-advance ticks time forward on every now_us() query, which lets
/// deadlines expire "mid-computation" deterministically — expiry becomes a
/// function of how many polls ran, not of the host's scheduler.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(std::uint64_t start_us = 0) noexcept : now_(start_us) {}

  std::uint64_t now_us() const noexcept override {
    const std::uint64_t tick = auto_advance_.load(std::memory_order_relaxed);
    if (tick == 0) return now_.load(std::memory_order_relaxed);
    return now_.fetch_add(tick, std::memory_order_relaxed) + tick;
  }

  void sleep_us(std::uint64_t us) const override {
    slept_.fetch_add(us, std::memory_order_relaxed);
    now_.fetch_add(us, std::memory_order_relaxed);
  }

  void advance_us(std::uint64_t us) noexcept {
    now_.fetch_add(us, std::memory_order_relaxed);
  }

  void set_us(std::uint64_t us) noexcept {
    now_.store(us, std::memory_order_relaxed);
  }

  /// Every now_us() query advances time by `us` (0 disables).
  void auto_advance_us(std::uint64_t us) noexcept {
    auto_advance_.store(us, std::memory_order_relaxed);
  }

  /// Total time sleep_us() was asked to wait (the scripted backoff log).
  std::uint64_t total_slept_us() const noexcept {
    return slept_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<std::uint64_t> now_;
  mutable std::atomic<std::uint64_t> slept_{0};
  std::atomic<std::uint64_t> auto_advance_{0};
};

}  // namespace dp
