#pragma once
// Vectorizable elementwise kernels for the round pipeline's exp batches.
//
// The hot exp sites (the Theorem 5 multiplier rule and the zeta packing
// sweep in core/round_pipeline) spend their time in libm's scalar exp: the
// call is opaque to the autovectorizer, so the surrounding loop stays
// scalar no matter how flat the data is. exp_batch_poly is a branch-free
// polynomial exp — range-clamped argument, 2^52 magic-number rounding for
// k = round(x log2 e), Cody-Waite ln2 reduction, degree-11 Horner
// polynomial, exponent-field assembly of 2^k — whose loop body is pure
// straight-line arithmetic on each element and therefore vectorizes (see
// the DP_VEC_REPORT build artifact). It is a deterministic pure function
// per element (identical result at any batch position, thread count or
// chunking), accurate to a few ulp over the full double range.
//
// Which kernel the pipeline uses is a CONFIGURE-TIME choice (DP_VECTOR_EXP,
// default ON): exp_batch dispatches to the polynomial kernel when enabled
// and to the batched libm loop otherwise. Both kernels are always compiled
// so tests and bench_micro can compare them directly in every build.

#include <cstddef>

namespace dp::simd {

/// out[i] = exp(x[i]) via the branch-free polynomial kernel. In-place
/// (out == x) is allowed.
void exp_batch_poly(const double* x, double* out, std::size_t n);

/// out[i] = std::exp(x[i]) (libm reference / fallback). In-place allowed.
void exp_batch_libm(const double* x, double* out, std::size_t n);

/// The pipeline's exp: polynomial when the build enabled DP_VECTOR_EXP,
/// libm otherwise.
void exp_batch(const double* x, double* out, std::size_t n);

/// True when exp_batch routes to the vectorized polynomial kernel.
bool vectorized_exp() noexcept;

// --- Sweep bodies (fill / divide / max), clones-dispatched ---------------
// The multiplier sweep around the exp call is three more elementwise
// loops: fill the scaled-shifted exponent, divide by the level weight, and
// reduce the chunk maximum. They live here so the same target_clones
// SSE2/AVX2/AVX-512 dispatch (and the same -fno-trapping-math
// -ffp-contract=off compile flags) covers the WHOLE sweep body, not just
// the exp — and so the max reduction can use the bit-pattern integer form
// GCC will actually vectorize (FP max reductions are blocked without
// -ffast-math by NaN/signed-zero semantics).

/// out[i] = -alpha * (x[i] - shift). In-place (out == x) is allowed.
/// Bitwise identical to the scalar expression at any lane width: one sub
/// and one mul per element, no contraction candidates.
void fill_scaled_shift(const double* x, double* out, std::size_t n,
                       double alpha, double shift);

/// out[i] /= div[i]. In-place over the sweep's exp output.
void divide_batch(double* out, const double* div, std::size_t n);

/// out[i] /= div[i], returning max(0.0, max_i out[i]) — the sweep's fused
/// divide + chunk-max. REQUIRES every quotient to be positive (here: exp
/// output / positive level weight, never zero or negative). For positive
/// doubles the numeric order equals the order of the bit patterns as
/// signed 64-bit integers (sign bit clear, so patterns are in [0, 2^63)),
/// and an integer max reduction with a 0 seed (the bit pattern of +0.0)
/// is exactly the scalar std::max fold seeded with 0.0 — bitwise
/// identical across lane widths, but vectorizable without -ffast-math.
double divide_max_positive(double* out, const double* div, std::size_t n);

}  // namespace dp::simd
