#pragma once
// Deterministic fault injection and retry — the robustness substrate of the
// fault-tolerant solve (see src/core/README.md, "Fault tolerance &
// determinism under retries").
//
// The paper's models (streaming passes, MapReduce rounds) describe
// computations whose units — one pass over the stream, one mapper shard,
// one reducer task — fail routinely at scale. The library injects such
// failures DETERMINISTICALLY: whether the event (site, a, b) fails on
// attempt `attempt` is a pure function of (seed, site, a, b, attempt)
// computed by the counter-based CounterRng, exactly like the sampling
// draws. Consequences:
//
//  - a faulty run is reproducible bit-for-bit from its seed, on any thread
//    count (injection decisions never depend on scheduling);
//  - retries are safe: sampling_mask and the sweep kernels are pure
//    functions of the frozen draw/state, so a re-executed pass or task
//    recomputes the identical output, and the solve's SolverResult is
//    bitwise identical to a fault-free run;
//  - the ResourceMeter honestly charges every retried pass and re-shuffled
//    message, so the model accounting reflects the faulty execution.
//
// Scripted faults (fail exactly the Nth event at a site, on one attempt or
// on every attempt) complement the rate-based injection for targeted tests
// — e.g. exhausting the retry budget to exercise graceful degradation.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/clock.hpp"
#include "util/rng.hpp"

namespace dp {

/// Injection sites wired into the access substrates.
enum class FaultSite : std::uint32_t {
  /// Mid-pass EdgeStream failure at a deterministic arrival offset
  /// (streaming substrate; event key a = pass ordinal, b = phase:
  /// 0 = multiplier sweep, 1 = the draw's physical re-walk).
  kStreamPass = 1,
  /// Mapper-shard task failure (MapReduce simulator; a = simulator round
  /// ordinal, b = shard).
  kMapperShard = 2,
  /// Reducer task failure (MapReduce simulator; a = simulator round
  /// ordinal, b = reducer key).
  kReducerTask = 3,
};

const char* fault_site_name(FaultSite site) noexcept;

/// ScriptedFault::attempt wildcard: fail the event on EVERY attempt (the
/// way to exhaust a retry budget deterministically).
inline constexpr std::uint64_t kEveryAttempt = ~std::uint64_t{0};

/// Fail exactly the event (site, a, b), either on one specific attempt or
/// on every attempt (kEveryAttempt).
struct ScriptedFault {
  FaultSite site = FaultSite::kStreamPass;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t attempt = kEveryAttempt;
};

struct FaultConfig {
  /// Seed of the injection stream (independent of the solver seed).
  std::uint64_t seed = 0xfa171'7e57ULL;
  /// Per-attempt failure probability of a streaming pass / mapper shard /
  /// reducer task. 0 = never.
  double stream_pass_rate = 0.0;
  double mapper_rate = 0.0;
  double reducer_rate = 0.0;
  /// Targeted failures, checked before the rates.
  std::vector<ScriptedFault> scripted;

  bool enabled() const noexcept {
    return stream_pass_rate > 0.0 || mapper_rate > 0.0 ||
           reducer_rate > 0.0 || !scripted.empty();
  }
};

/// Stateless injection decisions: pure functions of
/// (config.seed, site, a, b, attempt). Thread-safe; copies are cheap.
class FaultInjector {
 public:
  /// Default: injection disabled, every event succeeds.
  FaultInjector() = default;
  explicit FaultInjector(FaultConfig config);

  bool enabled() const noexcept { return enabled_; }

  /// Does event (site, a, b) fail on this attempt?
  bool should_fail(FaultSite site, std::uint64_t a, std::uint64_t b,
                   std::uint64_t attempt) const noexcept;

  /// Deterministic offset in [0, bound) at which a failing mid-pass event
  /// dies (the arrival index of the fatal edge). bound = 0 returns 0.
  std::uint64_t fail_offset(FaultSite site, std::uint64_t a, std::uint64_t b,
                            std::uint64_t attempt,
                            std::uint64_t bound) const noexcept;

  /// Deterministic jitter word for RetryPolicy's backoff computation.
  std::uint64_t backoff_bits(FaultSite site, std::uint64_t a, std::uint64_t b,
                             std::uint64_t attempt) const noexcept;

 private:
  double rate_for(FaultSite site) const noexcept;

  FaultConfig config_;
  CounterRng rng_{0};
  bool enabled_ = false;
};

/// Retry budget for transient SubstrateFaults, with exponential backoff and
/// deterministic jitter (so even the sleep schedule of a faulty run is a
/// pure function of the seeds).
struct RetryPolicy {
  /// Total executions allowed per event (first try + retries).
  std::size_t max_attempts = 4;
  /// Base backoff before retry r (doubling per attempt). 0 disables
  /// sleeping entirely — the right setting for tests and benchmarks, where
  /// only the retry accounting matters.
  std::uint64_t backoff_base_us = 0;
  /// Relative jitter in [-jitter, +jitter] applied to each delay.
  double backoff_jitter = 0.25;
  /// Upper clamp on a single delay.
  std::uint64_t backoff_cap_us = 100000;
  /// Clock the backoff sleeps on (util/clock); nullptr = the process
  /// steady clock. Tests install a FakeClock so even non-zero backoff
  /// schedules run on scripted time instead of real sleeps.
  const Clock* clock = nullptr;

  /// The deterministic delay before re-running (site, a, b) after failed
  /// attempt `attempt`.
  std::uint64_t delay_us(const FaultInjector& injector, FaultSite site,
                         std::uint64_t a, std::uint64_t b,
                         std::uint64_t attempt) const noexcept;

  /// Sleep for delay_us (no-op when backoff_base_us == 0).
  void backoff(const FaultInjector& injector, FaultSite site, std::uint64_t a,
               std::uint64_t b, std::uint64_t attempt) const;
};

/// One solve's complete fault-tolerance plan: what fails and how hard the
/// substrates try before giving up. Copyable; installed on the substrate by
/// the solver (SolverOptions::faults) or directly by a caller.
struct FaultPlan {
  FaultConfig config;
  RetryPolicy retry;
};

}  // namespace dp
