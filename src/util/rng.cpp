#include "util/rng.hpp"

#include <algorithm>
#include <unordered_set>

namespace dp {

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  return lo + static_cast<std::int64_t>(
                  uniform(static_cast<std::uint64_t>(hi - lo) + 1));
}

int Rng::coin_flips_until_tail() noexcept {
  int count = 0;
  // Consume 64-bit words; count leading run of 1-bits across words.
  for (;;) {
    std::uint64_t word = next();
    if (word == ~0ULL) {
      count += 64;
      continue;
    }
    // Position of lowest 0 bit == number of heads in this word's low run.
    count += __builtin_ctzll(~word);
    return count;
  }
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k >= n) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  if (k * 3 >= n) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    // Partial Fisher-Yates: select first k positions.
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + uniform(n - i);
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }
  // Floyd's algorithm for sparse samples.
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k * 2);
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    std::size_t t = uniform(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace dp
