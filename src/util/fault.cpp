#include "util/fault.hpp"

#include <algorithm>

namespace dp {

namespace {

/// Distinct sub-streams of the injection seed, so the fail/offset/jitter
/// draws of one event never correlate.
constexpr std::uint64_t kFailSalt = 0x0f41'1u;
constexpr std::uint64_t kOffsetSalt = 0x0ff5'e7u;
constexpr std::uint64_t kJitterSalt = 0x01'77e5u;

}  // namespace

const char* fault_site_name(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kStreamPass:
      return "stream.pass";
    case FaultSite::kMapperShard:
      return "mapreduce.mapper";
    case FaultSite::kReducerTask:
      return "mapreduce.reducer";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      enabled_(config_.enabled()) {}

double FaultInjector::rate_for(FaultSite site) const noexcept {
  switch (site) {
    case FaultSite::kStreamPass:
      return config_.stream_pass_rate;
    case FaultSite::kMapperShard:
      return config_.mapper_rate;
    case FaultSite::kReducerTask:
      return config_.reducer_rate;
  }
  return 0.0;
}

bool FaultInjector::should_fail(FaultSite site, std::uint64_t a,
                                std::uint64_t b,
                                std::uint64_t attempt) const noexcept {
  if (!enabled_) return false;
  for (const ScriptedFault& f : config_.scripted) {
    if (f.site == site && f.a == a && f.b == b &&
        (f.attempt == kEveryAttempt || f.attempt == attempt)) {
      return true;
    }
  }
  const double rate = rate_for(site);
  if (!(rate > 0.0)) return false;
  const CounterRng site_rng =
      rng_.fork(kFailSalt ^ static_cast<std::uint64_t>(site));
  return site_rng.uniform_real(a, b, attempt) < rate;
}

std::uint64_t FaultInjector::fail_offset(FaultSite site, std::uint64_t a,
                                         std::uint64_t b,
                                         std::uint64_t attempt,
                                         std::uint64_t bound) const noexcept {
  if (bound == 0) return 0;
  const CounterRng site_rng =
      rng_.fork(kOffsetSalt ^ static_cast<std::uint64_t>(site));
  return site_rng.bits(a, b, attempt) % bound;
}

std::uint64_t FaultInjector::backoff_bits(FaultSite site, std::uint64_t a,
                                          std::uint64_t b,
                                          std::uint64_t attempt)
    const noexcept {
  const CounterRng site_rng =
      rng_.fork(kJitterSalt ^ static_cast<std::uint64_t>(site));
  return site_rng.bits(a, b, attempt);
}

std::uint64_t RetryPolicy::delay_us(const FaultInjector& injector,
                                    FaultSite site, std::uint64_t a,
                                    std::uint64_t b,
                                    std::uint64_t attempt) const noexcept {
  if (backoff_base_us == 0) return 0;
  const int shift = static_cast<int>(std::min<std::uint64_t>(attempt, 20));
  const double base =
      static_cast<double>(backoff_base_us) * static_cast<double>(1ULL << shift);
  const double unit =
      static_cast<double>(injector.backoff_bits(site, a, b, attempt) >> 11) *
      0x1.0p-53;  // [0, 1)
  const double jitter =
      std::clamp(backoff_jitter, 0.0, 1.0) * (2.0 * unit - 1.0);
  const double delay = base * (1.0 + jitter);
  const double cap = static_cast<double>(backoff_cap_us);
  return static_cast<std::uint64_t>(std::clamp(delay, 0.0, cap));
}

void RetryPolicy::backoff(const FaultInjector& injector, FaultSite site,
                          std::uint64_t a, std::uint64_t b,
                          std::uint64_t attempt) const {
  const std::uint64_t us = delay_us(injector, site, a, b, attempt);
  if (us == 0) return;
  (clock != nullptr ? *clock : steady_clock()).sleep_us(us);
}

}  // namespace dp
