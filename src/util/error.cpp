#include "util/error.hpp"

#include <sstream>

namespace dp {

namespace {

std::string format_message(const std::string& message,
                           const ErrorContext& context) {
  if (context.site.empty() && context.round == kNoErrorContext &&
      context.attempt == kNoErrorContext) {
    return message;
  }
  std::ostringstream os;
  os << message << " [";
  bool first = true;
  auto field = [&](const char* name, const std::string& value) {
    if (!first) os << ' ';
    os << name << '=' << value;
    first = false;
  };
  if (!context.site.empty()) field("site", context.site);
  if (context.round != kNoErrorContext) {
    field("round", std::to_string(context.round));
  }
  if (context.attempt != kNoErrorContext) {
    field("attempt", std::to_string(context.attempt));
  }
  os << ']';
  return os.str();
}

}  // namespace

SolverError::SolverError(const std::string& message, ErrorContext context)
    : std::runtime_error(format_message(message, context)),
      context_(std::move(context)) {}

}  // namespace dp
