#pragma once
// Leveled logging. Off by default so tests and benchmarks stay quiet;
// examples turn on INFO to narrate the algorithm's progress.

#include <iostream>
#include <sstream>
#include <string>

namespace dp {

enum class LogLevel { kOff = 0, kError = 1, kInfo = 2, kDebug = 3 };

/// Global log threshold (not thread-safe to mutate mid-run; set it once at
/// startup).
LogLevel& log_level() noexcept;

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

#define DP_LOG(level, expr)                                       \
  do {                                                            \
    if (static_cast<int>(level) <=                                \
        static_cast<int>(::dp::log_level())) {                    \
      std::ostringstream dp_log_os;                               \
      dp_log_os << expr;                                          \
      ::dp::detail::log_line(level, dp_log_os.str());             \
    }                                                             \
  } while (0)

#define DP_INFO(expr) DP_LOG(::dp::LogLevel::kInfo, expr)
#define DP_DEBUG(expr) DP_LOG(::dp::LogLevel::kDebug, expr)
#define DP_ERROR(expr) DP_LOG(::dp::LogLevel::kError, expr)

}  // namespace dp
