#include "util/log.hpp"

namespace dp {

LogLevel& log_level() noexcept {
  static LogLevel level = LogLevel::kOff;
  return level;
}

namespace detail {

void log_line(LogLevel level, const std::string& msg) {
  const char* tag = "";
  switch (level) {
    case LogLevel::kError: tag = "[error] "; break;
    case LogLevel::kInfo: tag = "[info]  "; break;
    case LogLevel::kDebug: tag = "[debug] "; break;
    case LogLevel::kOff: return;
  }
  std::cerr << tag << msg << '\n';
}

}  // namespace detail
}  // namespace dp
