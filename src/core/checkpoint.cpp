#include "core/checkpoint.hpp"

#include <bit>
#include <cstring>

#include "util/error.hpp"

namespace dp::core {

namespace {

constexpr std::uint8_t kMagic[4] = {'D', 'P', 'C', 'K'};
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 8;

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t len) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t x) {
  put_u64(out, static_cast<std::uint64_t>(x));
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t x) {
  put_u32(out, static_cast<std::uint32_t>(x));
}

void put_f64(std::vector<std::uint8_t>& out, double x) {
  put_u64(out, std::bit_cast<std::uint64_t>(x));
}

void patch_u64(std::vector<std::uint8_t>& out, std::size_t at,
               std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    out[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(x >> (8 * i));
  }
}

/// Bounds-checked little-endian reader: every overrun is a corruption.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t x = 0;
    for (int i = 0; i < 4; ++i) {
      x |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return x;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) {
      x |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return x;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }

  /// A count about to drive a vector reserve/loop: cap it by the bytes
  /// actually remaining so a corrupted length cannot demand gigabytes.
  std::uint64_t count(std::size_t elem_bytes) {
    const std::uint64_t k = u64();
    if (elem_bytes > 0 && k > (len_ - pos_) / elem_bytes) {
      throw CheckpointCorrupt(
          "checkpoint payload truncated: element count exceeds the bytes "
          "that remain");
    }
    return k;
  }

  bool exhausted() const noexcept { return pos_ == len_; }

 private:
  void need(std::size_t k) {
    if (len_ - pos_ < k) {
      throw CheckpointCorrupt("checkpoint payload truncated mid-field");
    }
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

void put_meter(std::vector<std::uint8_t>& out, const MeterSnapshot& ms) {
  put_u64(out, ms.rounds);
  put_u64(out, ms.passes);
  put_u64(out, ms.stored_edges);
  put_u64(out, ms.peak_edges);
  put_u64(out, ms.sketch_words);
  put_u64(out, ms.messages);
  put_u64(out, ms.inner_iterations);
  put_u64(out, ms.oracle_calls);
  put_u64(out, ms.faults);
  put_u64(out, ms.max_flows);
  put_u64(out, ms.max_flows_saved);
  put_u64(out, ms.gh_full_builds);
  put_u64(out, ms.gh_incremental);
  put_u64(out, ms.gh_tree_reuses);
  put_u64(out, ms.saved_rounds);
  put_u64(out, ms.saved_passes);
  put_u64(out, ms.repaired_rows);
  put_u64(out, ms.io_bytes);
  put_u64(out, ms.io_stalls);
  put_u64(out, ms.prefetch_hits);
  put_u64(out, ms.shuffle_bytes);
  put_u64(out, ms.resident_edges);
  put_u64(out, ms.peak_resident);
}

MeterSnapshot get_meter(Reader& in) {
  MeterSnapshot ms;
  ms.rounds = in.u64();
  ms.passes = in.u64();
  ms.stored_edges = in.u64();
  ms.peak_edges = in.u64();
  ms.sketch_words = in.u64();
  ms.messages = in.u64();
  ms.inner_iterations = in.u64();
  ms.oracle_calls = in.u64();
  ms.faults = in.u64();
  ms.max_flows = in.u64();
  ms.max_flows_saved = in.u64();
  ms.gh_full_builds = in.u64();
  ms.gh_incremental = in.u64();
  ms.gh_tree_reuses = in.u64();
  ms.saved_rounds = in.u64();
  ms.saved_passes = in.u64();
  ms.repaired_rows = in.u64();
  ms.io_bytes = in.u64();
  ms.io_stalls = in.u64();
  ms.prefetch_hits = in.u64();
  ms.shuffle_bytes = in.u64();
  ms.resident_edges = in.u64();
  ms.peak_resident = in.u64();
  return ms;
}

}  // namespace

MeterSnapshot MeterSnapshot::of(const ResourceMeter& meter) {
  MeterSnapshot ms;
  ms.rounds = meter.rounds();
  ms.passes = meter.passes();
  ms.stored_edges = meter.stored_edges();
  ms.peak_edges = meter.peak_edges();
  ms.sketch_words = meter.sketch_words();
  ms.messages = meter.messages();
  ms.inner_iterations = meter.inner_iterations();
  ms.oracle_calls = meter.oracle_calls();
  ms.faults = meter.faults();
  ms.max_flows = meter.max_flows();
  ms.max_flows_saved = meter.max_flows_saved();
  ms.gh_full_builds = meter.gh_full_builds();
  ms.gh_incremental = meter.gh_incremental();
  ms.gh_tree_reuses = meter.gh_tree_reuses();
  ms.saved_rounds = meter.saved_rounds();
  ms.saved_passes = meter.saved_passes();
  ms.repaired_rows = meter.repaired_rows();
  ms.io_bytes = meter.io_bytes();
  ms.io_stalls = meter.io_stalls();
  ms.prefetch_hits = meter.prefetch_hits();
  ms.shuffle_bytes = meter.shuffle_bytes();
  ms.resident_edges = meter.resident_edges();
  ms.peak_resident = meter.peak_resident_edges();
  return ms;
}

void MeterSnapshot::restore_into(ResourceMeter& meter) const {
  meter.reset();
  meter.add_round(rounds);
  meter.add_pass(passes);
  meter.add_sketch_words(sketch_words);
  meter.add_messages(messages);
  meter.add_inner_iterations(inner_iterations);
  meter.add_oracle_calls(oracle_calls);
  meter.add_faults(faults);
  meter.add_max_flows(max_flows);
  meter.add_max_flows_saved(max_flows_saved);
  meter.add_gh_full_builds(gh_full_builds);
  meter.add_gh_incremental(gh_incremental);
  meter.add_gh_tree_reuses(gh_tree_reuses);
  meter.add_saved_rounds(saved_rounds);
  meter.add_saved_passes(saved_passes);
  meter.add_repaired_rows(repaired_rows);
  meter.add_io_bytes(io_bytes);
  meter.add_io_stalls(io_stalls);
  meter.add_prefetch_hits(prefetch_hits);
  meter.add_shuffle_bytes(shuffle_bytes);
  // Reconstruct (running stored, peak) exactly: raise to the peak, then
  // release back down to the running count — same trick for the resident
  // edge-attribute accounting.
  meter.store_edges(peak_edges);
  meter.release_edges(peak_edges - stored_edges);
  meter.hold_resident(peak_resident);
  meter.release_resident(peak_resident - resident_edges);
}

std::vector<std::uint8_t> RoundCheckpoint::serialize() const {
  // Serialization must stay cheap relative to a round (the <5% overhead
  // gate of bench_faults): the payload is built in place behind a
  // placeholder header — no second copy — with the exact size reserved up
  // front, and the size/checksum fields patched at the end.
  std::size_t member_bytes = 0;
  for (const OddSetVar& var : odd_sets) {
    member_bytes += 4 * var.members.size();
  }
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + 68 + 24 + 24 + best_support.size() * 16 + 16 +
              xik.size() * 16 + 8 + xi.size() * 8 + 8 +
              odd_sets.size() * 20 + member_bytes + 8 + history.size() * 48 +
              2 * 112);
  for (const std::uint8_t b : kMagic) out.push_back(b);
  put_u32(out, kVersion);
  put_u64(out, 0);  // payload size, patched below
  put_u64(out, 0);  // checksum, patched below
  std::vector<std::uint8_t>& payload = out;
  // Identity.
  put_u64(payload, solver_seed);
  put_f64(payload, eps);
  put_f64(payload, p);
  put_u64(payload, sparsifiers);
  put_u64(payload, sample_seed);
  put_u64(payload, n);
  put_u64(payload, m);
  put_u64(payload, retained);
  put_i32(payload, levels);
  put_u64(payload, graph_generation);
  // Position.
  put_u64(payload, next_round);
  put_u64(payload, outer_rounds);
  put_u64(payload, oracle_calls);
  // Incumbent.
  put_f64(payload, best_value);
  put_f64(payload, beta);
  put_u64(payload, best_support.size());
  for (const auto& [edge, mult] : best_support) {
    put_u64(payload, edge);
    put_i64(payload, mult);
  }
  // Dual iterate.
  put_f64(payload, scale);
  put_u64(payload, xik.size());
  for (const auto& [key, value] : xik) {
    put_u64(payload, key);
    put_f64(payload, value);
  }
  put_u64(payload, xi.size());
  for (const double value : xi) put_f64(payload, value);
  put_u64(payload, odd_sets.size());
  for (const OddSetVar& var : odd_sets) {
    put_i32(payload, var.level);
    put_f64(payload, var.value);
    put_u64(payload, var.members.size());
    for (const Vertex v : var.members) put_u32(payload, v);
  }
  // History.
  put_u64(payload, history.size());
  for (const RoundStats& rs : history) {
    put_u64(payload, rs.round);
    put_f64(payload, rs.lambda);
    put_f64(payload, rs.beta);
    put_f64(payload, rs.best_value);
    put_u64(payload, rs.stored_edges);
    put_u64(payload, rs.oracle_calls);
  }
  // Meters.
  put_meter(payload, solve_meter);
  put_meter(payload, substrate_meter);

  const std::uint64_t payload_size = out.size() - kHeaderSize;
  patch_u64(out, 8, payload_size);
  patch_u64(out, 16, fnv1a(out.data() + kHeaderSize, payload_size));
  return out;
}

RoundCheckpoint RoundCheckpoint::deserialize(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kHeaderSize) {
    throw CheckpointCorrupt("checkpoint shorter than its header");
  }
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    throw CheckpointCorrupt("checkpoint magic mismatch");
  }
  Reader header(bytes.data() + 4, kHeaderSize - 4);
  const std::uint32_t version = header.u32();
  if (version != kVersion) {
    throw CheckpointCorrupt("unsupported checkpoint version");
  }
  const std::uint64_t payload_size = header.u64();
  const std::uint64_t checksum = header.u64();
  if (payload_size != bytes.size() - kHeaderSize) {
    throw CheckpointCorrupt("checkpoint payload size mismatch");
  }
  if (fnv1a(bytes.data() + kHeaderSize, payload_size) != checksum) {
    throw CheckpointCorrupt("checkpoint checksum mismatch");
  }

  Reader in(bytes.data() + kHeaderSize, payload_size);
  RoundCheckpoint ck;
  ck.solver_seed = in.u64();
  ck.eps = in.f64();
  ck.p = in.f64();
  ck.sparsifiers = in.u64();
  ck.sample_seed = in.u64();
  ck.n = in.u64();
  ck.m = in.u64();
  ck.retained = in.u64();
  ck.levels = in.i32();
  ck.graph_generation = in.u64();
  ck.next_round = in.u64();
  ck.outer_rounds = in.u64();
  ck.oracle_calls = in.u64();
  ck.best_value = in.f64();
  ck.beta = in.f64();
  const std::uint64_t support_count = in.count(16);
  ck.best_support.reserve(support_count);
  for (std::uint64_t i = 0; i < support_count; ++i) {
    const std::uint64_t edge = in.u64();
    const std::int64_t mult = in.i64();
    ck.best_support.emplace_back(edge, mult);
  }
  ck.scale = in.f64();
  const std::uint64_t xik_count = in.count(16);
  ck.xik.reserve(xik_count);
  for (std::uint64_t i = 0; i < xik_count; ++i) {
    const std::uint64_t key = in.u64();
    const double value = in.f64();
    ck.xik.emplace_back(key, value);
  }
  const std::uint64_t xi_count = in.count(8);
  ck.xi.reserve(xi_count);
  for (std::uint64_t i = 0; i < xi_count; ++i) ck.xi.push_back(in.f64());
  const std::uint64_t set_count = in.count(0);
  ck.odd_sets.reserve(set_count);
  for (std::uint64_t i = 0; i < set_count; ++i) {
    OddSetVar var;
    var.level = in.i32();
    var.value = in.f64();
    const std::uint64_t member_count = in.count(4);
    var.members.reserve(member_count);
    for (std::uint64_t j = 0; j < member_count; ++j) {
      var.members.push_back(in.u32());
    }
    ck.odd_sets.push_back(std::move(var));
  }
  const std::uint64_t history_count = in.count(48);
  ck.history.reserve(history_count);
  for (std::uint64_t i = 0; i < history_count; ++i) {
    RoundStats rs;
    rs.round = in.u64();
    rs.lambda = in.f64();
    rs.beta = in.f64();
    rs.best_value = in.f64();
    rs.stored_edges = in.u64();
    rs.oracle_calls = in.u64();
    ck.history.push_back(rs);
  }
  ck.solve_meter = get_meter(in);
  ck.substrate_meter = get_meter(in);
  if (!in.exhausted()) {
    throw CheckpointCorrupt("checkpoint payload has trailing bytes");
  }
  return ck;
}

}  // namespace dp::core
