#include "core/sampling.hpp"

#include <utility>

#include "util/error.hpp"

namespace dp::core {

namespace {

void check_t(std::size_t t) {
  if (t > kMaxSparsifiersPerRound) {
    throw ConfigError("SamplingEngine: at most 32 sparsifiers per round");
  }
}

/// Mask sweep with t lifted to a compile-time constant: the q-loop inside
/// sampling_mask fully unrolls and its independent mix chains pipeline
/// (~1.7x over the runtime-t loop). The expression evaluated per (q, idx)
/// is exactly sampling_mask's, so the draws stay bitwise identical to the
/// generic path used by draw_stream and the MapReduce mapper.
template <std::size_t T>
void mask_sweep_fixed(const CounterRng& round_rng, const double* prob,
                      std::uint32_t* masks, std::size_t lo, std::size_t hi) {
  for (std::size_t idx = lo; idx < hi; ++idx) {
    masks[idx] = sampling_mask(round_rng, T, idx, prob[idx]);
  }
}

void mask_sweep(const CounterRng& round_rng, std::size_t t,
                const double* prob, std::uint32_t* masks, std::size_t lo,
                std::size_t hi) {
  const bool dispatched = [&]<std::size_t... Ts>(
                              std::index_sequence<Ts...>) {
    return (((t == Ts + 1)
                 ? (mask_sweep_fixed<Ts + 1>(round_rng, prob, masks, lo, hi),
                    true)
                 : false) ||
            ...);
  }(std::make_index_sequence<24>{});
  if (!dispatched) {
    for (std::size_t idx = lo; idx < hi; ++idx) {
      masks[idx] = sampling_mask(round_rng, t, idx, prob[idx]);
    }
  }
}

}  // namespace

const SamplingRound& SamplingEngine::draw(const std::vector<double>& prob,
                                          std::size_t t, std::uint64_t round,
                                          std::uint64_t seed,
                                          ResourceMeter* meter) {
  check_t(t);
  const std::size_t m = prob.size();
  round_.t_ = t;
  round_.masks_.resize(m);
  const CounterRng round_rng = sampling_round_rng(seed, round);
  // Separate mask and extract passes: keeping the draw loop free of
  // counter stores lets it pipeline the independent per-q mix chains
  // (measurably faster than fusing the counting into the sweep).
  std::uint32_t* masks = round_.masks_.data();
  run_chunks(pool_, 0, m, grain_,
             [&](std::size_t, std::size_t lo, std::size_t hi) {
               mask_sweep(round_rng, t, prob.data(), masks, lo, hi);
             });
  extract_union();
  if (meter != nullptr) {
    meter->add_round();
    meter->add_pass();
    meter->store_edges(round_.stored_total());
  }
  return round_;
}

const SamplingRound& SamplingEngine::draw_stream(
    const EdgeStream& stream, const std::vector<double>& prob, std::size_t t,
    std::uint64_t round, std::uint64_t seed) {
  check_t(t);
  if (prob.size() != stream.num_edges()) {
    throw ConfigError("SamplingEngine::draw_stream: prob/stream size mismatch");
  }
  round_.t_ = t;
  round_.masks_.resize(prob.size());
  const CounterRng round_rng = sampling_round_rng(seed, round);
  // The pass itself is sequential (that is the streaming model); the draw
  // for position idx is the same pure function of (seed, round, q, idx) the
  // in-memory sweep evaluates, so the stored sets come out bitwise equal.
  std::size_t idx = 0;
  stream.for_each_pass([&](const Edge&) {
    round_.masks_[idx] = sampling_mask(round_rng, t, idx, prob[idx]);
    ++idx;
  });
  extract_union();
  if (stream.meter() != nullptr) {
    stream.meter()->add_round();
    stream.meter()->store_edges(round_.stored_total());
  }
  return round_;
}

const SamplingRound& SamplingEngine::draw_stream_mapped(
    const EdgeStream& stream, const std::vector<std::uint32_t>& retained_of,
    std::uint64_t order_seed, const std::vector<double>& prob, std::size_t t,
    std::uint64_t round, std::uint64_t seed,
    const std::function<void(std::uint64_t)>* arrival_probe) {
  check_t(t);
  if (retained_of.size() != stream.num_edges()) {
    throw ConfigError(
        "SamplingEngine::draw_stream_mapped: map/stream size mismatch");
  }
  round_.t_ = t;
  round_.masks_.assign(prob.size(), 0);
  const CounterRng round_rng = sampling_round_rng(seed, round);
  // Sequential pass in an arbitrary (seed-shuffled) arrival order: the
  // mask of retained index idx is the same pure function of
  // (seed, round, q, idx) every other substrate evaluates, so the arrival
  // permutation cannot change the stored sets.
  std::uint64_t arrival = 0;
  stream.for_each_pass_shuffled_indexed(
      order_seed, [&](EdgeId pos, const Edge&) {
        if (arrival_probe != nullptr) (*arrival_probe)(arrival++);
        const std::uint32_t idx = retained_of[pos];
        if (idx == kNotRetained) return;
        round_.masks_[idx] = sampling_mask(round_rng, t, idx, prob[idx]);
      });
  extract_union();
  return round_;
}

const SamplingRound& SamplingEngine::adopt_supports(
    std::size_t num_edges, std::size_t t,
    const std::vector<std::vector<std::uint32_t>>& supports) {
  check_t(t);
  if (supports.size() != t) {
    throw ConfigError(
        "SamplingEngine::adopt_supports: expected one support per "
        "sparsifier");
  }
  round_.t_ = t;
  round_.masks_.assign(num_edges, 0);
  for (std::size_t q = 0; q < t; ++q) {
    for (const std::uint32_t idx : supports[q]) {
      round_.masks_[idx] |= std::uint32_t{1} << q;
    }
  }
  extract_union();
  return round_;
}

void SamplingEngine::extract_union() {
  const std::size_t m = round_.masks_.size();
  const std::size_t chunks = m == 0 ? 0 : (m + grain_ - 1) / grain_;
  // Two slots per chunk: union count and stored-incidence (popcount) sum.
  chunk_counts_.assign(chunks * 2, 0);
  // Raw pointers hoisted out of the loops: the counter stores cannot alias
  // the vector control blocks, and the compiler must be able to see that.
  const std::uint32_t* masks = round_.masks_.data();
  std::uint32_t* chunk_counts = chunk_counts_.data();
  run_chunks(pool_, 0, m, grain_,
             [&](std::size_t c, std::size_t lo, std::size_t hi) {
               std::uint32_t members = 0;
               std::uint32_t stored = 0;
               for (std::size_t idx = lo; idx < hi; ++idx) {
                 members += masks[idx] != 0;
                 stored += static_cast<std::uint32_t>(
                     __builtin_popcount(masks[idx]));
               }
               chunk_counts[c * 2] = members;
               chunk_counts[c * 2 + 1] = stored;
             });

  // Serial scan in chunk order: chunk_counts_ becomes each chunk's write
  // cursor, so the scatter fills ascending-by-index runs. Chunk boundaries
  // depend only on the grain — the union is identical whatever the thread
  // count.
  std::uint32_t union_total = 0;
  std::size_t stored_total = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::uint32_t count = chunk_counts_[c * 2];
    stored_total += chunk_counts_[c * 2 + 1];
    chunk_counts_[c * 2] = union_total;
    union_total += count;
  }
  round_.stored_total_ = stored_total;
  round_.union_.resize(union_total);

  std::uint32_t* union_out = round_.union_.data();
  run_chunks(pool_, 0, m, grain_,
             [&](std::size_t c, std::size_t lo, std::size_t hi) {
               std::uint32_t cursor = chunk_counts[c * 2];
               for (std::size_t idx = lo; idx < hi; ++idx) {
                 if (masks[idx] != 0) {
                   union_out[cursor++] = static_cast<std::uint32_t>(idx);
                 }
               }
             });
}

}  // namespace dp::core
