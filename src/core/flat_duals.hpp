#pragma once
// Flat dual-state containers. Dual variables of the layered penalty LP are
// indexed by (vertex i, level k) pairs packed into a single 64-bit key
//   key(i, k) = i * L + k,        L = LevelGraph::num_levels()
// so that sorting keys groups entries by vertex with levels ascending inside
// each group — exactly the per-vertex iteration order the MicroOracle needs.
//
// Two representations (see src/core/README.md for the memory layout):
//   SparseDuals — a key-sorted vector of (key, value) pairs: the wire format
//     for dual points and zeta multipliers crossing subsystem boundaries.
//     Supports the former unordered_map surface (operator[], at, find) for
//     low-volume callers, but hot producers use append() and consumers
//     iterate or merge-join in key order.
//   FlatDuals — a dense value buffer of n*L doubles plus a compact list of
//     active keys: O(1) random access, O(active) clear. Used as reusable
//     scratch inside the oracle and as the backing store of DualState.

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace dp::core {

class SparseDuals {
 public:
  using key_type = std::uint64_t;
  using value_type = std::pair<std::uint64_t, double>;
  using const_iterator = std::vector<value_type>::const_iterator;

  SparseDuals() = default;

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }
  void clear() noexcept { entries_.clear(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  const_iterator begin() const noexcept { return entries_.begin(); }
  const_iterator end() const noexcept { return entries_.end(); }

  /// Iterator to the entry with `key`, or end().
  const_iterator find(std::uint64_t key) const noexcept {
    const auto it = lower_bound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }

  /// First entry with key >= `key` (for range scans over one vertex's
  /// levels: keys of vertex i span [i*L, (i+1)*L)).
  const_iterator first_at_least(std::uint64_t key) const noexcept {
    return lower_bound(key);
  }

  /// Value at `key`, 0.0 when absent.
  double get(std::uint64_t key) const noexcept {
    const auto it = lower_bound(key);
    return (it != entries_.end() && it->first == key) ? it->second : 0.0;
  }

  /// Value at `key`; throws std::out_of_range when absent.
  const double& at(std::uint64_t key) const {
    const auto it = lower_bound(key);
    if (it == entries_.end() || it->first != key) {
      throw std::out_of_range("SparseDuals::at: missing key");
    }
    return it->second;
  }

  /// Find-or-insert (keeps key order). O(size) on insert — convenience for
  /// tests and cold paths; hot producers use append().
  double& operator[](std::uint64_t key);

  /// Fast-path insert: `key` must be strictly greater than every stored key.
  void append(std::uint64_t key, double value);

  /// Raw sorted entries (for merge-joins).
  const std::vector<value_type>& entries() const noexcept { return entries_; }

  friend bool operator==(const SparseDuals&, const SparseDuals&) = default;

 private:
  std::vector<value_type>::iterator lower_bound(std::uint64_t key) noexcept;
  const_iterator lower_bound(std::uint64_t key) const noexcept;

  std::vector<value_type> entries_;  // sorted by key, unique
};

class FlatDuals {
 public:
  FlatDuals() = default;
  explicit FlatDuals(std::size_t slots) { reset(slots); }

  /// Ensure capacity for keys in [0, slots) and clear all values.
  void reset(std::size_t slots);

  /// Zero every active entry; O(active), not O(slots).
  void clear() noexcept;

  std::size_t slots() const noexcept { return val_.size(); }
  std::size_t active_count() const noexcept { return active_.size(); }

  /// O(1); inactive keys read as 0.
  double get(std::uint64_t key) const noexcept { return val_[key]; }
  bool contains(std::uint64_t key) const noexcept { return in_[key] != 0; }

  void add(std::uint64_t key, double delta) noexcept {
    if (!in_[key]) {
      in_[key] = 1;
      active_.push_back(key);
    }
    val_[key] += delta;
  }

  void set(std::uint64_t key, double value) noexcept {
    if (!in_[key]) {
      in_[key] = 1;
      active_.push_back(key);
    }
    val_[key] = value;
  }

  /// Multiply every active value by `factor`.
  void scale_all(double factor) noexcept;

  /// Active keys in activation order until sort_active() is called.
  const std::vector<std::uint64_t>& active() const noexcept { return active_; }

  /// Sort the active list (groups keys by vertex, levels ascending).
  void sort_active();

  /// Export the active entries as a key-sorted SparseDuals, dropping values
  /// with |value| == 0.
  SparseDuals to_sparse() const;

 private:
  std::vector<double> val_;
  std::vector<char> in_;
  std::vector<std::uint64_t> active_;
};

}  // namespace dp::core
