#pragma once
// Weight discretization — Definitions 2 and 3 of the paper.
//
// Edge weights are rescaled by B/W* and rounded down to powers of (1+eps):
// edge (i,j) has level k when (W*/B) wHat_k <= w_ij < (W*/B) wHat_{k+1},
// wHat_k = (1+eps)^k. Edges below W*/B are dropped — their total weight is
// below W* and cannot affect a (1-eps) approximation. The algorithm then
// works entirely on the normalized weights wHat_k; L = O(eps^-1 log B).

#include <vector>

#include "graph/graph.hpp"

namespace dp::core {

class LevelGraph {
 public:
  /// Discretize g's weights. B is taken from the capacities.
  LevelGraph(const Graph& g, const Capacities& b, double eps);

  const Graph& graph() const noexcept { return *g_; }
  double eps() const noexcept { return eps_; }

  /// Number of levels L+1 (levels are 0..L).
  int num_levels() const noexcept { return num_levels_; }

  /// Level of edge e, or -1 if the edge was dropped (w < W*/B).
  int level(EdgeId e) const noexcept { return level_[e]; }

  /// Normalized level weight wHat_k = (1+eps)^k.
  double level_weight(int k) const noexcept { return level_weight_[k]; }

  /// O(1) sum of wHat_l for l in [lo, hi] (inclusive; clamped to the valid
  /// level range) via precomputed prefix sums.
  double level_weight_range(int lo, int hi) const noexcept {
    if (lo < 0) lo = 0;
    if (hi >= num_levels_) hi = num_levels_ - 1;
    if (lo > hi) return 0.0;
    return level_weight_prefix_[hi + 1] - level_weight_prefix_[lo];
  }

  /// Prefix sum: sum of wHat_l for l < k (k in [0, num_levels]).
  double level_weight_prefix(int k) const noexcept {
    return level_weight_prefix_[k];
  }

  /// Normalized (discretized) weight of edge e; 0 for dropped edges.
  double normalized_weight(EdgeId e) const noexcept {
    return level_[e] < 0 ? 0.0 : level_weight_[level_[e]];
  }

  /// Edge ids at level k.
  const std::vector<EdgeId>& edges_at_level(int k) const noexcept {
    return by_level_[k];
  }

  /// Ids of all retained (non-dropped) edges.
  const std::vector<EdgeId>& retained() const noexcept { return retained_; }

  /// The scale factor W*/B: original_weight ~ scale * wHat_level.
  double scale() const noexcept { return scale_; }

  /// Maximum original weight W*.
  double w_star() const noexcept { return w_star_; }

 private:
  const Graph* g_;
  double eps_;
  double w_star_;
  double scale_;
  int num_levels_;
  std::vector<int> level_;
  std::vector<double> level_weight_;
  std::vector<double> level_weight_prefix_;  // size num_levels_ + 1
  std::vector<std::vector<EdgeId>> by_level_;
  std::vector<EdgeId> retained_;
};

}  // namespace dp::core
