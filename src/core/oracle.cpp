#include "core/oracle.hpp"

#include <algorithm>
#include <cmath>

namespace dp::core {

/// Reusable flat scratch for one oracle instance. Dense buffers are sized
/// n*L once and cleared in O(touched) between invocations; vectors keep
/// their capacity across calls so the steady state allocates nothing.
struct MicroOracle::Scratch {
  /// (key, us) per stored-edge endpoint, then grouped by vertex via a
  /// stable counting sort — the cache-resident replacement for the dense
  /// sum_us buffer (the count/offset arrays are n-sized, not n*L).
  std::vector<std::pair<std::uint64_t, double>> pairs;
  std::vector<std::pair<std::uint64_t, double>> grouped;
  std::vector<std::size_t> voff;
  std::vector<std::uint64_t> sum_keys;  // key-sorted distinct (i,k) rows
  std::vector<double> sum_vals;         // summed us per row
  std::vector<std::uint64_t> pos_keys;  // sorted keys with A_i(k) > 0
  std::vector<double> pos_a;            // A_i(k) per pos entry
  std::vector<double> pos_sum;          // sum_us per pos entry (Step 9)
  std::vector<double> pref;             // in-run exclusive prefix of w*A
  std::vector<double> suf;              // in-run inclusive suffix of A
  std::vector<double> run_pref_total;   // full w*A sum per run
  std::vector<std::size_t> run_start;   // run r = [run_start[r], run_start[r+1])
  struct Viol {
    int kstar = -1;
    double delta = 0.0;
  };
  std::vector<Viol> viol;       // per-run violation slot
  std::vector<char> has_level;  // level -> holds stored edges
  /// Step 9 sparse zbar: raised rows, the merged overlay, and the overlay
  /// re-bucketed by level descending for the suffix cursor.
  std::vector<std::pair<std::uint64_t, double>> repl;
  std::vector<std::pair<std::uint64_t, double>> zpairs;
  std::vector<std::pair<std::uint64_t, double>> zlevel;
  std::vector<double> zsuffix;  // vertex -> sum zbar_{v,k>=l} (current l)
  std::vector<std::int32_t> set_of;   // vertex -> candidate id at this level
  std::vector<double> partials;       // per-item results for reductions
  /// Per-job separation state, reused across invocations so steady-state
  /// separation allocates nothing: one engine plus one query-edge/q_hat
  /// snapshot buffer per per-level job slot.
  std::vector<OddSetSeparator> separators;
  std::vector<std::vector<OddSetQueryEdge>> job_q;
  std::vector<std::vector<double>> job_qhat;

  void ensure(std::size_t n, int levels) {
    if (zsuffix.size() < n) {
      zsuffix.resize(n, 0.0);
      set_of.assign(n, -1);
      voff.resize(n + 1, 0);
    }
    if (has_level.size() < static_cast<std::size_t>(levels)) {
      has_level.resize(static_cast<std::size_t>(levels), 0);
    }
  }
};

MicroOracle::MicroOracle(const LevelGraph& lg, const Capacities& b,
                         OracleConfig config)
    : lg_(&lg), b_(&b), config_(std::move(config)) {}

MicroOracle::~MicroOracle() = default;
MicroOracle::MicroOracle(MicroOracle&&) noexcept = default;
MicroOracle& MicroOracle::operator=(MicroOracle&&) noexcept = default;

MicroOracle::Scratch& MicroOracle::scratch() const {
  if (!scratch_) scratch_ = std::make_unique<Scratch>();
  scratch_->ensure(lg_->graph().num_vertices(), lg_->num_levels());
  return *scratch_;
}

ThreadPool* MicroOracle::pool() const {
  if (config_.threads == 1) return nullptr;
  if (!pool_) pool_ = std::make_unique<ThreadPool>(config_.threads);
  return pool_.get();
}

SeparationStats MicroOracle::separation_stats() const {
  SeparationStats total;
  if (!scratch_) return total;
  for (const OddSetSeparator& sep : scratch_->separators) {
    const SeparationStats s = sep.stats();
    total.max_flows += s.max_flows;
    total.flows_saved += s.flows_saved;
    total.gh_full_builds += s.gh_full_builds;
    total.gh_incremental += s.gh_incremental;
    total.gh_tree_reuses += s.gh_tree_reuses;
  }
  return total;
}

DualPoint combine_points(const DualPoint& a, double s1, const DualPoint& b,
                         double s2) {
  DualPoint out;
  out.xik.reserve(a.xik.size() + b.xik.size());
  // Merge-join on the sorted keys; an entry exists in the output whenever
  // either input carries positive mass at that key (matching the map-era
  // semantics, including explicit zeros when a scale factor is 0).
  auto ia = a.xik.begin();
  auto ib = b.xik.begin();
  while (ia != a.xik.end() || ib != b.xik.end()) {
    if (ib == b.xik.end() || (ia != a.xik.end() && ia->first < ib->first)) {
      if (ia->second > 0) out.xik.append(ia->first, s1 * ia->second);
      ++ia;
    } else if (ia == a.xik.end() || ib->first < ia->first) {
      if (ib->second > 0) out.xik.append(ib->first, s2 * ib->second);
      ++ib;
    } else {
      const double va = ia->second > 0 ? s1 * ia->second : 0.0;
      const double vb = ib->second > 0 ? s2 * ib->second : 0.0;
      if (ia->second > 0 || ib->second > 0) {
        out.xik.append(ia->first, va + vb);
      }
      ++ia;
      ++ib;
    }
  }
  for (const OddSetVar& var : a.odd_sets) {
    if (var.value > 0) {
      out.odd_sets.push_back(OddSetVar{var.level, var.members,
                                       s1 * var.value});
    }
  }
  for (const OddSetVar& var : b.odd_sets) {
    if (var.value > 0) {
      out.odd_sets.push_back(OddSetVar{var.level, var.members,
                                       s2 * var.value});
    }
  }
  return out;
}

double MicroOracle::weighted_po(const DualPoint& x, const ZetaMap& zeta) const {
  const auto L = static_cast<std::uint64_t>(lg_->num_levels());
  double total = 0;
  // 2 x_i(k) terms: merge-join of the two sorted supports.
  {
    auto xit = x.xik.begin();
    for (const auto& [key, zeta_val] : zeta) {
      while (xit != x.xik.end() && xit->first < key) ++xit;
      if (xit == x.xik.end()) break;
      if (xit->first == key) total += zeta_val * 2.0 * xit->second;
    }
  }
  // Odd-set terms: z_{U,l} enters row (i,k) for every i in U and k >= l.
  // Parallel over variables with per-variable partials, reduced in variable
  // order so the sum is independent of the thread count.
  if (!x.odd_sets.empty()) {
    Scratch& s = scratch();
    const std::size_t nvars = x.odd_sets.size();
    s.partials.assign(nvars, 0.0);
    std::size_t members_total = 0;
    for (const OddSetVar& var : x.odd_sets) members_total += var.members.size();
    const std::size_t grain = std::max<std::size_t>(
        1, config_.parallel_grain / (1 + members_total / nvars));
    run_chunks(pool(), 0, nvars, grain,
               [&](std::size_t, std::size_t lo, std::size_t hi) {
                 for (std::size_t v = lo; v < hi; ++v) {
                   const OddSetVar& var = x.odd_sets[v];
                   double t = 0;
                   for (Vertex member : var.members) {
                     const std::uint64_t base =
                         static_cast<std::uint64_t>(member) * L;
                     for (auto it = zeta.first_at_least(
                              base + static_cast<std::uint64_t>(var.level));
                          it != zeta.end() && it->first < base + L; ++it) {
                       t += it->second * var.value;
                     }
                   }
                   s.partials[v] = t;
                 }
               });
    for (std::size_t v = 0; v < nvars; ++v) total += s.partials[v];
  }
  return total;
}

double MicroOracle::weighted_qo(const ZetaMap& zeta) const {
  const auto L = static_cast<std::uint64_t>(lg_->num_levels());
  double total = 0;
  for (const auto& [key, zeta_val] : zeta) {
    const int k = static_cast<int>(key % L);
    total += zeta_val * 3.0 * lg_->level_weight(k);
  }
  return total;
}

MicroResult MicroOracle::run(const std::vector<StoredMultiplier>& us,
                             const ZetaMap& zeta, double beta, double rho,
                             OddSetCache* cache) const {
  const LevelGraph& lg = *lg_;
  const Capacities& b = *b_;
  const int L = lg.num_levels();
  const auto Lu = static_cast<std::uint64_t>(L);
  const double eps = lg.eps();
  Scratch& s = scratch();
  auto key = [Lu](Vertex i, int k) {
    return static_cast<std::uint64_t>(i) * Lu + static_cast<std::uint64_t>(k);
  };

  MicroResult result;

  // ---- gamma and per-(i,k) us sums (Step 1). ----
  // Rows are grouped by vertex with a stable counting sort over packed
  // (i, k) keys instead of a hash map: the count/offset arrays are n-sized
  // (cache resident), the per-vertex groups are tiny, and the stable order
  // keeps every per-row sum bitwise identical to the map path's insertion
  // order.
  const std::size_t n = lg.graph().num_vertices();
  s.pairs.clear();
  double gamma = 0;
  for (const StoredMultiplier& sm : us) {
    const Edge& e = lg.graph().edge(sm.edge);
    const int k = lg.level(sm.edge);
    if (k < 0 || sm.us <= 0) continue;
    s.pairs.emplace_back(key(e.u, k), sm.us);
    s.pairs.emplace_back(key(e.v, k), sm.us);
    gamma += lg.level_weight(k) * sm.us;
  }
  for (const auto& [kk, z] : zeta) {
    const int k = static_cast<int>(kk % Lu);
    gamma -= 3.0 * rho * lg.level_weight(k) * z;
  }
  result.gamma = gamma;
  if (gamma <= 0) return result;  // x = 0 satisfies LagInner trivially

  // Two stable counting passes (LSD radix on the packed key's digits:
  // level first, vertex second) leave s.grouped key-sorted with duplicate
  // keys in their original encounter order; folding them then reproduces
  // the map path's per-row sums bitwise.
  {
    std::vector<std::size_t>& koff = s.run_start;  // borrowed until Step 3
    koff.assign(static_cast<std::size_t>(L) + 1, 0);
    for (const auto& [kk, u_val] : s.pairs) ++koff[kk % Lu + 1];
    for (int k = 0; k < L; ++k) koff[k + 1] += koff[k];
    s.grouped.resize(s.pairs.size());
    for (const auto& p : s.pairs) s.grouped[koff[p.first % Lu]++] = p;

    std::fill(s.voff.begin(), s.voff.begin() + static_cast<long>(n) + 1, 0);
    for (const auto& [kk, u_val] : s.grouped) ++s.voff[kk / Lu + 1];
    for (std::size_t v = 0; v < n; ++v) s.voff[v + 1] += s.voff[v];
    s.pairs.resize(s.grouped.size());
    for (const auto& p : s.grouped) s.pairs[s.voff[p.first / Lu]++] = p;
  }
  s.sum_keys.clear();
  s.sum_vals.clear();
  for (const auto& [kk, u_val] : s.pairs) {
    if (!s.sum_keys.empty() && s.sum_keys.back() == kk) {
      s.sum_vals.back() += u_val;
    } else {
      s.sum_keys.push_back(kk);
      s.sum_vals.push_back(u_val);
    }
  }

  // ---- Pos(i) and A_i(k) = sum_us - 2 rho zeta (Step 2). ----
  // Both supports are key-sorted: a single merge-join computes every A.
  s.pos_keys.clear();
  s.pos_a.clear();
  s.pos_sum.clear();
  {
    auto zit = zeta.begin();
    for (std::size_t row = 0; row < s.sum_keys.size(); ++row) {
      const std::uint64_t kk = s.sum_keys[row];
      while (zit != zeta.end() && zit->first < kk) ++zit;
      const double zv =
          (zit != zeta.end() && zit->first == kk) ? zit->second : 0.0;
      const double a = s.sum_vals[row] - 2.0 * rho * zv;
      if (a > 0) {
        s.pos_keys.push_back(kk);
        s.pos_a.push_back(a);
        s.pos_sum.push_back(s.sum_vals[row]);
      }
    }
  }

  // Run boundaries: one run per vertex with positive rows.
  const std::size_t P = s.pos_keys.size();
  s.run_start.clear();
  for (std::size_t j = 0; j < P; ++j) {
    if (j == 0 || s.pos_keys[j] / Lu != s.pos_keys[j - 1] / Lu) {
      s.run_start.push_back(j);
    }
  }
  s.run_start.push_back(P);
  const std::size_t R = s.run_start.empty() ? 0 : s.run_start.size() - 1;

  // ---- k*_i and Viol(V) (Steps 3-4), parallel over vertex runs. ----
  // The map path scans all L levels per vertex. Here: between two
  // consecutive positive levels t is constant, and within such a segment
  // the predicate delta(l) > gamma b_i wHat_l / beta is monotone in l
  // (delta(l) = pref + wHat_l * suf vs a threshold linear in wHat_l), so
  // each segment needs one probe at its bottom plus one binary search in
  // the segment that hits — O(len + log L) per vertex instead of O(L).
  // The probe evaluates the exact float expression of the map path, so
  // recorded violations agree bit-for-bit away from one-ulp boundaries.
  s.pref.resize(P);
  s.suf.resize(P);
  s.run_pref_total.resize(R);
  s.viol.assign(R, Scratch::Viol{});
  const std::size_t run_grain =
      std::max<std::size_t>(1, config_.parallel_grain / 16);
  run_chunks(
      pool(), 0, R, run_grain,
      [&](std::size_t, std::size_t rlo, std::size_t rhi) {
        for (std::size_t r = rlo; r < rhi; ++r) {
          const std::size_t lo = s.run_start[r];
          const std::size_t hi = s.run_start[r + 1];
          // prefW[t] = sum_{s<t} wHat_{k_s} A_s ; sufA[t] = sum_{s>=t} A_s.
          double acc = 0;
          for (std::size_t j = lo; j < hi; ++j) {
            s.pref[j] = acc;
            acc += lg.level_weight(
                       static_cast<int>(s.pos_keys[j] % Lu)) * s.pos_a[j];
          }
          s.run_pref_total[r] = acc;
          double sacc = 0;
          for (std::size_t j = hi; j-- > lo;) {
            sacc += s.pos_a[j];
            s.suf[j] = sacc;
          }
          const auto i = static_cast<Vertex>(s.pos_keys[lo] / Lu);
          const double bi = static_cast<double>(b[i]);
          const std::size_t len = hi - lo;
          auto level_at = [&](std::size_t t) {
            return static_cast<int>(s.pos_keys[lo + t] % Lu);
          };
          auto delta_at = [&](std::size_t t, int l) {
            const double wl = lg.level_weight(l);
            const double pref_t =
                t == len ? s.run_pref_total[r] : s.pref[lo + t];
            const double suf_t = t == len ? 0.0 : s.suf[lo + t];
            return pref_t + wl * suf_t;
          };
          auto violated = [&](std::size_t t, int l) {
            return delta_at(t, l) > gamma * bi * lg.level_weight(l) / beta;
          };
          // Segment for t: l in [k_{t-1}, k_t - 1] (k_{-1} = 0, k_len = L).
          for (std::size_t t = len + 1; t-- > 0;) {
            const int seg_hi = t == len ? L - 1 : level_at(t) - 1;
            const int seg_lo = t == 0 ? 0 : level_at(t - 1);
            if (seg_hi < seg_lo) continue;  // adjacent positive levels
            if (!violated(t, seg_lo)) continue;  // monotone: no hit here
            int a = seg_lo, c = seg_hi;  // largest violated l in segment
            while (a < c) {
              const int mid = a + (c - a + 1) / 2;
              if (violated(t, mid)) {
                a = mid;
              } else {
                c = mid - 1;
              }
            }
            s.viol[r] = Scratch::Viol{a, delta_at(t, a)};
            break;  // segments scanned top-down: first hit is the largest l
          }
        }
      });
  double gamma_v = 0;
  for (std::size_t r = 0; r < R; ++r) {
    if (s.viol[r].kstar >= 0) gamma_v += s.viol[r].delta;
  }

  // ---- Case A (Step 5-7): vertex duals absorb the violation mass. ----
  if (gamma_v >= eps * gamma / 24.0) {
    for (std::size_t r = 0; r < R; ++r) {
      if (s.viol[r].kstar < 0) continue;
      const int kstar = s.viol[r].kstar;
      for (std::size_t j = s.run_start[r]; j < s.run_start[r + 1]; ++j) {
        const std::uint64_t kk = s.pos_keys[j];
        const int k = static_cast<int>(kk % Lu);
        const double w = lg.level_weight(std::min(k, kstar));
        result.x.xik.append(kk, gamma * w / gamma_v);
      }
    }
    return result;
  }

  if (!config_.use_odd_sets) {
    // Bipartite mode skips straight to the primal signal; zbar and
    // gamma_prime only feed the odd-set phase, so Step 9 is dead work here.
    result.kind = MicroResult::Kind::kPrimal;
    return result;
  }

  // ---- Step 9: raise zeta to zbar on violated (i, k <= k*). ----
  // The violated rows (runs of pos_keys) and the zeta support are both
  // key-sorted, so zbar materializes as one linear merge into a sparse
  // overlay — no dense buffer and no copy of zeta.
  s.repl.clear();
  for (std::size_t r = 0; r < R; ++r) {
    if (s.viol[r].kstar < 0) continue;
    const int kstar = s.viol[r].kstar;
    for (std::size_t j = s.run_start[r]; j < s.run_start[r + 1]; ++j) {
      const std::uint64_t kk = s.pos_keys[j];
      if (static_cast<int>(kk % Lu) > kstar) continue;
      s.repl.emplace_back(kk, s.pos_sum[j] / (2.0 * rho));
    }
  }
  double gamma_prime = gamma;
  s.zpairs.clear();
  {
    auto zit = zeta.begin();
    std::size_t ri = 0;
    while (zit != zeta.end() || ri < s.repl.size()) {
      if (ri == s.repl.size() ||
          (zit != zeta.end() && zit->first < s.repl[ri].first)) {
        s.zpairs.emplace_back(zit->first, zit->second);
        ++zit;
      } else if (zit == zeta.end() || s.repl[ri].first < zit->first) {
        const auto [kk, replacement] = s.repl[ri];
        // Row absent from zeta: old value 0, replacement always raises.
        gamma_prime -=
            3.0 * rho * lg.level_weight(static_cast<int>(kk % Lu)) *
            replacement;
        s.zpairs.emplace_back(kk, replacement);
        ++ri;
      } else {
        const auto [kk, replacement] = s.repl[ri];
        const double old = zit->second;
        if (replacement > old) {
          gamma_prime -=
              3.0 * rho * lg.level_weight(static_cast<int>(kk % Lu)) *
              (replacement - old);
          s.zpairs.emplace_back(kk, replacement);
        } else {
          s.zpairs.emplace_back(kk, old);
        }
        ++zit;
        ++ri;
      }
    }
  }

  // ---- Odd-set phase (Steps 11-19, with gap lumping). ----
  // Active levels = levels holding stored edges, descending. K(l) is
  // constant between consecutive active levels, so the per-level variables
  // z_{U,l} of a gap are lumped at the gap's top (active) level with weight
  // sum_{l in gap} wHat_l — exactly equivalent for every covering / outer
  // packing row because no edge lives strictly inside a gap.
  std::vector<int> active_levels;
  {
    std::fill(s.has_level.begin(), s.has_level.end(), 0);
    for (const StoredMultiplier& sm : us) {
      const int k = lg.level(sm.edge);
      if (k >= 0 && sm.us > 0) s.has_level[k] = 1;
    }
    for (int k = L - 1; k >= 0; --k) {
      if (s.has_level[k]) active_levels.push_back(k);
    }
  }
  // Restrict separation to the lowest few active levels (each costs a
  // Gomory-Hu tree). Lower levels include more edges, so they dominate.
  std::size_t first = 0;
  if (config_.max_separation_levels > 0 &&
      active_levels.size() > config_.max_separation_levels) {
    first = active_levels.size() - config_.max_separation_levels;
  }

  // Incremental per-vertex zbar suffix sums: the family loop visits levels
  // in descending order, so sum_{k >= l} zbar_{i,k} grows monotonically —
  // bucket the zbar support by level descending once (stable counting
  // sort) and advance a cursor, instead of re-scanning a per-vertex list
  // for every query. zsuffix only ever accumulates over zlevel, so zeroing
  // the previous invocation's support restores the all-zero invariant in
  // O(previous support).
  for (const auto& [kk, z] : s.zlevel) s.zsuffix[kk / Lu] = 0.0;
  {
    std::vector<std::size_t>& koff = s.run_start;  // runs are done with it
    koff.assign(static_cast<std::size_t>(L) + 1, 0);
    for (const auto& [kk, z] : s.zpairs) {
      ++koff[(Lu - 1) - kk % Lu + 1];
    }
    for (int k = 0; k < L; ++k) koff[k + 1] += koff[k];
    s.zlevel.resize(s.zpairs.size());
    for (const auto& p : s.zpairs) {
      s.zlevel[koff[(Lu - 1) - p.first % Lu]++] = p;
    }
  }
  std::size_t zptr = 0;
  auto advance_suffix = [&](int l) {
    while (zptr < s.zlevel.size() &&
           static_cast<int>(s.zlevel[zptr].first % Lu) >= l) {
      s.zsuffix[s.zlevel[zptr].first / Lu] += s.zlevel[zptr].second;
      ++zptr;
    }
  };
  // Point query sum_{k >= l} zbar_{v,k} from the key-sorted zbar overlay,
  // summed with levels DESCENDING — the exact accumulation order of the
  // suffix cursor, so per-vertex sums stay bitwise stable across probes.
  auto zbar_suffix_at = [&s, Lu](Vertex v, int l) {
    const std::uint64_t lo_key =
        static_cast<std::uint64_t>(v) * Lu + static_cast<std::uint64_t>(l);
    const std::uint64_t hi_key = static_cast<std::uint64_t>(v) * Lu + Lu;
    auto cmp = [](const std::pair<std::uint64_t, double>& p,
                  std::uint64_t k) { return p.first < k; };
    auto lo_it =
        std::lower_bound(s.zpairs.begin(), s.zpairs.end(), lo_key, cmp);
    auto hi_it = std::lower_bound(lo_it, s.zpairs.end(), hi_key, cmp);
    double total = 0;
    while (hi_it != lo_it) {
      --hi_it;
      total += hi_it->second;
    }
    return total;
  };

  const double q_scale = (1.0 - eps / 4.0) * beta / gamma;

  // A run() without a caller-provided cache behaves like a one-probe
  // Lagrangian search: same code path, locally scoped reuse.
  OddSetCache local_cache;
  OddSetCache* sep = cache != nullptr ? cache : &local_cache;

  // ---- Separation (once per cache lifetime). ----
  // Walk the levels downward with the zbar suffix cursor, snapshotting
  // per-level query edges and q_hat; then separate ALL levels in one
  // parallel fan-out — the per-level Gomory-Hu trees are independent and
  // each is computed by a deterministic serial routine, so the fan-out is
  // bitwise thread-count-invariant. Equation (4) below re-validates every
  // candidate for the current rho, so cache reuse never costs soundness.
  if (!sep->populated) {
    std::size_t jobs = 0;
    std::vector<std::size_t> job_entry;
    for (std::size_t a = first; a < active_levels.size(); ++a) {
      const int l = active_levels[a];
      advance_suffix(l);  // zsuffix[v] = sum_{k >= l} zbar_{v,k}
      if (s.job_q.size() <= jobs) {
        s.job_q.emplace_back();
        s.job_qhat.emplace_back();
        s.separators.emplace_back();
      }
      std::vector<OddSetQueryEdge>& q_edges = s.job_q[jobs];
      q_edges.clear();
      for (const StoredMultiplier& sm : us) {
        const int k = lg.level(sm.edge);
        if (k < l || sm.us <= 0) continue;
        const Edge& e = lg.graph().edge(sm.edge);
        q_edges.push_back(OddSetQueryEdge{e.u, e.v, q_scale * sm.us});
      }
      if (q_edges.empty()) continue;
      // Separation reads q_hat only at this level's query-edge endpoints,
      // so only those entries are filled (stale slots are never read; the
      // write is idempotent per vertex, so duplicates are harmless).
      std::vector<double>& qhat = s.job_qhat[jobs];
      qhat.resize(n);
      for (const OddSetQueryEdge& qe : q_edges) {
        qhat[qe.u] = static_cast<double>(b[qe.u]) +
                     2.0 * q_scale * rho * s.zsuffix[qe.u];
        qhat[qe.v] = static_cast<double>(b[qe.v]) +
                     2.0 * q_scale * rho * s.zsuffix[qe.v];
      }
      job_entry.push_back(sep->by_level.size());
      sep->by_level.emplace_back();
      sep->by_level.back().level = l;
      ++jobs;
    }
    run_chunks(pool(), 0, jobs, 1,
               [&](std::size_t, std::size_t jlo, std::size_t jhi) {
                 for (std::size_t j = jlo; j < jhi; ++j) {
                   sep->by_level[job_entry[j]].sets = s.separators[j].find(
                       n, s.job_q[j], s.job_qhat[j], b, config_.odd);
                 }
               });
    sep->populated = true;
  }

  struct LevelFamily {
    int level;
    double gap_weight;
    std::vector<std::vector<Vertex>> sets;
    std::vector<double> delta;
  };
  std::vector<LevelFamily> families;
  double gamma_os = 0;

  for (std::size_t a = first; a < active_levels.size(); ++a) {
    const int l = active_levels[a];
    OddSetCache::LevelEntry* entry = sep->find(l);
    if (entry == nullptr || entry->sets.empty()) continue;
    const int gap_lo = (a + 1 < active_levels.size())
                           ? active_levels[a + 1] + 1
                           : 0;
    // The lowest separated level also absorbs every level below it.
    const int effective_lo = (a == active_levels.size() - 1) ? 0 : gap_lo;
    const double gap_w = lg.level_weight_range(effective_lo, l);

    // Per-candidate static aux, cached across probes (us is fixed for the
    // whole Lagrangian search). Candidate sets of one level are pairwise
    // disjoint, so a single pass over the stored edges attributes each
    // edge to (at most) one set — replacing the per-set binary-search
    // membership scan of the map path.
    const std::size_t nsets = entry->sets.size();
    if (!entry->aux_valid) {
      entry->bw.assign(nsets, 0);
      entry->us_mass.assign(nsets, 0.0);
      for (std::size_t c = 0; c < nsets; ++c) {
        for (Vertex v : entry->sets[c]) {
          s.set_of[v] = static_cast<std::int32_t>(c);
          entry->bw[c] += b[v];
        }
      }
      for (const StoredMultiplier& sm : us) {
        const int k = lg.level(sm.edge);
        if (k < l || sm.us <= 0) continue;
        const Edge& e = lg.graph().edge(sm.edge);
        const std::int32_t cu = s.set_of[e.u];
        if (cu >= 0 && cu == s.set_of[e.v]) entry->us_mass[cu] += sm.us;
      }
      for (std::size_t c = 0; c < nsets; ++c) {
        for (Vertex v : entry->sets[c]) s.set_of[v] = -1;
      }
      entry->aux_valid = true;
    }

    LevelFamily family;
    family.level = l;
    family.gap_weight = gap_w;
    // Delta(U, l) = sum_{k>=l} ( sum_{edges in U} us - rho sum_i zbar ).
    for (std::size_t c = 0; c < nsets; ++c) {
      const std::vector<Vertex>& set = entry->sets[c];
      double delta = entry->us_mass[c];
      for (Vertex v : set) delta -= rho * zbar_suffix_at(v, l);
      if (delta <= 0) continue;
      // Revalidate Equation (4): the set must be dense enough that
      // q_scale * delta covers floor(||U||_b / 2).
      const double need =
          std::floor(static_cast<double>(entry->bw[c]) / 2.0);
      if (q_scale * delta < need) continue;
      family.sets.push_back(set);
      family.delta.push_back(delta);
      gamma_os += gap_w * delta;
    }
    if (!family.sets.empty()) families.push_back(std::move(family));
  }

  // ---- Case B (Steps 16-18): odd-set duals absorb the mass. ----
  if (gamma_os >= eps * gamma_prime / 24.0 && gamma_prime > 0) {
    for (const LevelFamily& family : families) {
      for (std::size_t c = 0; c < family.sets.size(); ++c) {
        OddSetVar var;
        var.level = family.level;
        var.members = family.sets[c];
        var.value = gamma_prime * family.gap_weight / gamma_os;
        result.x.odd_sets.push_back(std::move(var));
      }
    }
    return result;
  }

  // ---- Case C (Steps 20-21): primal progress (Lemma 13 applies). ----
  result.kind = MicroResult::Kind::kPrimal;
  return result;
}

MicroResult MicroOracle::run_lagrangian(
    const std::vector<StoredMultiplier>& us, const ZetaMap& zeta, double beta,
    std::size_t* calls) const {
  const LevelGraph& lg = *lg_;
  double usc = 0;
  for (const StoredMultiplier& sm : us) {
    const int k = lg.level(sm.edge);
    if (k >= 0 && sm.us > 0) usc += lg.level_weight(k) * sm.us;
  }
  OddSetCache cache;  // one separation pass amortized over all rho probes
  auto invoke = [&](double rho) {
    if (calls != nullptr) ++(*calls);
    return run(us, zeta, beta, rho, &cache);
  };

  const double zq = weighted_qo(zeta);
  if (zq <= 0 || usc <= 0) {
    // No outer packing pressure: a single invocation suffices.
    return invoke(1.0);
  }
  const double eps = lg.eps();
  const double upsilon = (13.0 / 12.0) * zq;
  const double rho0 = 12.0 * usc / (13.0 * zq);

  double rho_lo = eps * usc / (16.0 * zq);
  MicroResult low = invoke(rho_lo);
  if (low.kind == MicroResult::Kind::kPrimal) return low;
  double po_lo = weighted_po(low.x, zeta);
  if (po_lo <= upsilon) return low;

  // Grow rho until the outer packing constraint is met (x = 0 is returned
  // once gamma <= 0, which trivially satisfies it).
  double rho_hi = rho0;
  MicroResult high = invoke(rho_hi);
  if (high.kind == MicroResult::Kind::kPrimal) return high;
  double po_hi = weighted_po(high.x, zeta);
  int guard = 0;
  while (po_hi > upsilon && guard++ < 16) {
    rho_hi *= 2.0;
    high = invoke(rho_hi);
    if (high.kind == MicroResult::Kind::kPrimal) return high;
    po_hi = weighted_po(high.x, zeta);
  }
  if (po_hi > upsilon) return high;  // give up; still a LagInner point

  // Binary search to a rho interval of width eps * rho0 / 16 (Lemma 10).
  int iters = 0;
  while (rho_hi - rho_lo > eps * rho0 / 16.0 && iters++ < 24) {
    const double mid = 0.5 * (rho_lo + rho_hi);
    MicroResult m = invoke(mid);
    if (m.kind == MicroResult::Kind::kPrimal) return m;
    const double po_mid = weighted_po(m.x, zeta);
    if (po_mid <= upsilon) {
      rho_hi = mid;
      high = std::move(m);
      po_hi = po_mid;
    } else {
      rho_lo = mid;
      low = std::move(m);
      po_lo = po_mid;
    }
  }
  // Convex combination with s1 * po_lo + s2 * po_hi = upsilon.
  const double denom = po_lo - po_hi;
  double s1 = denom > 1e-12 ? (upsilon - po_hi) / denom : 0.0;
  s1 = std::clamp(s1, 0.0, 1.0);
  MicroResult result;
  result.kind = MicroResult::Kind::kDual;
  result.gamma = high.gamma;
  result.x = combine_points(low.x, s1, high.x, 1.0 - s1);
  return result;
}

}  // namespace dp::core
