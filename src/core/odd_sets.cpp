#include "core/odd_sets.hpp"

#include <algorithm>
#include <cmath>

#include "graph/flow_arena.hpp"
#include "graph/gomory_hu.hpp"

namespace dp::core {

namespace {

/// Greedily keep candidates (stable-sorted by preference, ties resolved by
/// candidate order) that are pairwise disjoint. `taken` must be all-zero
/// with at least n entries; it is restored to all-zero before returning.
std::vector<std::vector<Vertex>> keep_disjoint(
    std::vector<std::pair<double, std::vector<Vertex>>>& candidates,
    std::vector<char>& taken) {
  std::stable_sort(
      candidates.begin(), candidates.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::vector<Vertex>> out;
  for (auto& [score, set] : candidates) {
    bool clash = false;
    for (Vertex v : set) {
      if (taken[v]) {
        clash = true;
        break;
      }
    }
    if (clash) continue;
    for (Vertex v : set) taken[v] = 1;
    out.push_back(std::move(set));
  }
  for (const auto& set : out) {
    for (Vertex v : set) taken[v] = 0;
  }
  return out;
}

bool is_valid_odd_set(const std::vector<Vertex>& set, const Capacities& b,
                      std::int64_t max_b) {
  if (set.size() < 3) return false;
  std::int64_t bw = 0;
  for (Vertex v : set) bw += b[v];
  return bw % 2 == 1 && bw <= max_b;
}

}  // namespace

/// Exact Padberg-Rao style search (Lemma 25) on the discretized auxiliary
/// graph H (vertices remapped to the active set; node `s` last). One
/// arena-backed flow network is built ONCE; every Gusfield flow restores
/// capacities in place, and the residual rounds that make the collection
/// MAXIMAL contract taken vertices (disable + deficiency restitution to s)
/// instead of rebuilding H from scratch. All working buffers live on the
/// separator, so repeat calls reuse their capacity.
std::vector<std::vector<Vertex>> OddSetSeparator::exact(
    const std::vector<OddSetQueryEdge>& q,
    const std::vector<double>& q_hat, const Capacities& b,
    std::int64_t kappa, double unit, std::int64_t max_b, int max_rounds) {
  const std::vector<Vertex>& active = active_;
  const std::size_t na = active.size();
  // `active` is sorted, so the global->local remap is a binary search
  // instead of a hash map.
  const auto local = [&active](Vertex v) {
    return static_cast<std::uint32_t>(
        std::lower_bound(active.begin(), active.end(), v) - active.begin());
  };
  const auto s = static_cast<std::uint32_t>(na);  // special node

  // Raw query edges in local ids (round bookkeeping: a round without any
  // surviving query edge stops the search, zero-capacity edges included —
  // they witness activity even when discretization floors them away).
  raw_.clear();
  raw_.reserve(q.size());
  // Aggregated H edges: discretized q-edges merged by a sort-and-merge
  // pass, then one deficiency edge (i, s) per vertex (possibly capacity 0
  // now, raised later when a neighbor is contracted away).
  agg_.clear();
  agg_.reserve(q.size() + na);
  for (const auto& qe : q) {
    const std::uint32_t lu = local(qe.u);
    const std::uint32_t lv = local(qe.v);
    raw_.emplace_back(lu, lv);
    const auto cap = static_cast<std::int64_t>(std::floor(qe.q * unit));
    if (cap <= 0) continue;
    agg_.push_back(ArenaEdge{std::min(lu, lv), std::max(lu, lv), cap});
  }
  aggregate_parallel_edges(agg_);
  const std::size_t num_q_edges = agg_.size();

  incident_cap_.assign(na, 0);
  for (std::size_t e = 0; e < num_q_edges; ++e) {
    incident_cap_[agg_[e].u] += agg_[e].cap;
    incident_cap_[agg_[e].v] += agg_[e].cap;
  }
  // deficiency[i] may drift negative if the caller's q_hat underestimates
  // the incident mass; the arena capacity clamps at 0 exactly like the
  // seed's "only add positive-deficiency edges" rule.
  deficiency_.assign(na, 0);
  s_edge_.assign(na, 0);
  for (std::size_t i = 0; i < na; ++i) {
    const auto target =
        static_cast<std::int64_t>(std::ceil(q_hat[active[i]] * unit));
    deficiency_[i] = target - incident_cap_[i];
    s_edge_[i] = agg_.size();
    agg_.push_back(ArenaEdge{static_cast<std::uint32_t>(i), s,
                             std::max<std::int64_t>(deficiency_[i], 0)});
  }

  net_.build(na + 1, agg_);
  gh_delta_pending_ = false;  // a fresh network owes nothing to old deltas

  alive_.assign(na + 1, 1);
  fresh_.assign(na, 0);
  inside_.assign(na + 1, 0);
  std::size_t alive_count = na;
  std::vector<std::vector<Vertex>> collected;

  for (int round = 0; round < max_rounds; ++round) {
    if (alive_count < 3) break;
    bool any_edge = false;
    for (const auto& [lu, lv] : raw_) {
      if (alive_[lu] && alive_[lv]) {
        any_edge = true;
        break;
      }
    }
    if (!any_edge) break;

    // Cached Gusfield: when the network is byte-identical to the one the
    // previous round (or the previous find() call) built the tree from —
    // i.e. no residual round contracted anything in between — the n-1
    // max-flows are skipped and the previous arena tree is reused. After a
    // residual contraction the stamped cut rows replay Gusfield
    // incrementally instead: only the max-flows whose step the contraction
    // invalidated are recomputed, not all n-1.
    if (gh_delta_pending_) {
      gomory_hu_contract_update(net_, &alive_, gh_delta_, tree_, gh_stamp_);
      gh_delta_pending_ = false;
    } else {
      gomory_hu_from_arena_cached(net_, &alive_, tree_, gh_stamp_);
    }
    candidates_.clear();
    for (std::uint32_t v = 0; v < tree_.size(); ++v) {
      if (v == tree_.root || !alive_[v]) continue;
      if (tree_.cut_value[v] > kappa) continue;
      tree_.cut_side_into(v, side_);
      // Use the side not containing s.
      const bool s_inside =
          std::find(side_.begin(), side_.end(), s) != side_.end();
      std::vector<Vertex> set;
      if (s_inside) {
        for (std::uint32_t x : side_) inside_[x] = 1;
        for (std::uint32_t x = 0; x < na; ++x) {
          if (alive_[x] && !inside_[x]) set.push_back(active[x]);
        }
        for (std::uint32_t x : side_) inside_[x] = 0;
      } else {
        for (std::uint32_t x : side_) {
          if (x < na) set.push_back(active[x]);
        }
      }
      std::sort(set.begin(), set.end());
      if (!is_valid_odd_set(set, b, max_b)) continue;
      candidates_.emplace_back(static_cast<double>(tree_.cut_value[v]),
                               std::move(set));
    }
    const auto found = keep_disjoint(candidates_, taken_);
    if (found.empty()) break;

    // Contract the found sets: every internal or leaving q-edge vanishes,
    // and a surviving endpoint's deficiency absorbs the lost capacity so
    // its target ceil(q_hat * unit) is preserved. The delta recorded here
    // drives the next round's incremental Gusfield replay; compensation is
    // exact (cut-value preserving) unless a survivor's deficiency was
    // negative — its s-edge then clamps at 0 and absorbs less than the
    // lost capacity, so the stamped rows stop being min-cut certificates.
    std::fill(fresh_.begin(), fresh_.end(), 0);
    gh_delta_.contracted.clear();
    gh_delta_.s_node = s;
    gh_delta_.exact_compensation = true;
    for (const auto& set : found) {
      for (Vertex v : set) fresh_[local(v)] = 1;
      collected.push_back(set);
    }
    for (std::size_t e = 0; e < num_q_edges; ++e) {
      const std::uint32_t u = agg_[e].u;
      const std::uint32_t v = agg_[e].v;
      if (!alive_[u] || !alive_[v]) continue;  // removed in an earlier round
      if (fresh_[u] == fresh_[v]) continue;    // survives, or fully internal
      const std::uint32_t keep = fresh_[u] ? v : u;
      if (deficiency_[keep] < 0) gh_delta_.exact_compensation = false;
      deficiency_[keep] += agg_[e].cap;
      net_.set_edge_base_cap(
          s_edge_[keep], std::max<std::int64_t>(deficiency_[keep], 0));
    }
    for (std::uint32_t v = 0; v < na; ++v) {
      if (!fresh_[v]) continue;
      net_.disable_vertex(v);
      alive_[v] = 0;
      --alive_count;
      gh_delta_.contracted.push_back(v);
    }
    gh_delta_pending_ = true;
  }
  return collected;
}

SeparationStats OddSetSeparator::stats() const {
  SeparationStats s;
  s.max_flows = net_.flows_run();
  s.flows_saved = gh_stamp_.flows_saved;
  s.gh_full_builds = gh_stamp_.full_builds;
  s.gh_incremental = gh_stamp_.incremental_updates;
  s.gh_tree_reuses = gh_stamp_.tree_reuses;
  return s;
}

void OddSetSeparator::ensure(std::size_t n) {
  const std::size_t old = seen_.size();
  if (old >= n) return;
  seen_.resize(n, 0);
  incident_.resize(n, 0.0);
  taken_.resize(n, 0);
  comp_of_.resize(n, -1);
  parent_.resize(n);
  rank_.resize(n, 0);
  for (std::size_t v = old; v < n; ++v) {
    parent_[v] = static_cast<std::uint32_t>(v);
  }
}

std::uint32_t OddSetSeparator::root_of(std::uint32_t v) noexcept {
  // Path halving; only ever touches vertices united below, so the
  // touched-entry reset walk in heuristic() restores the forest.
  while (parent_[v] != v) {
    parent_[v] = parent_[parent_[v]];
    v = parent_[v];
  }
  return v;
}

/// Heuristic for large instances: connected components of the subgraph of
/// heavy q-edges, trimmed to the size cap. Each candidate is scored by
/// deficiency (lower = denser). Everything runs on flat reusable buffers:
/// components materialize via counting offsets (no per-component vectors)
/// and all n-sized state is restored by walking the active list.
std::vector<std::vector<Vertex>> OddSetSeparator::heuristic(
    const std::vector<OddSetQueryEdge>& q, const std::vector<double>& q_hat,
    const Capacities& b, std::int64_t max_b) {
  // Heavy edge: carries at least half of either endpoint's average share.
  for (const auto& qe : q) {
    incident_[qe.u] += qe.q;
    incident_[qe.v] += qe.q;
    if (qe.q * 4.0 >= std::min(q_hat[qe.u], q_hat[qe.v])) {
      const std::uint32_t ru = root_of(qe.u);
      const std::uint32_t rv = root_of(qe.v);
      if (ru != rv) {
        // Union by rank, ties to the smaller id: deterministic forest.
        if (rank_[ru] < rank_[rv]) {
          parent_[ru] = rv;
        } else if (rank_[rv] < rank_[ru]) {
          parent_[rv] = ru;
        } else if (ru < rv) {
          parent_[rv] = ru;
          ++rank_[ru];
        } else {
          parent_[ru] = rv;
          ++rank_[rv];
        }
      }
    }
  }
  // Components over the active vertices, ordered by smallest member:
  // counting pass over the (sorted) active list, then offset fill.
  std::int32_t num_comps = 0;
  comp_counts_.clear();
  for (Vertex v : active_) {
    const std::uint32_t r = root_of(v);
    if (comp_of_[r] < 0) {
      comp_of_[r] = num_comps++;
      comp_counts_.push_back(0);
    }
    ++comp_counts_[static_cast<std::size_t>(comp_of_[r])];
  }
  comp_off_.assign(static_cast<std::size_t>(num_comps) + 1, 0);
  for (std::int32_t c = 0; c < num_comps; ++c) {
    comp_off_[static_cast<std::size_t>(c) + 1] =
        comp_off_[static_cast<std::size_t>(c)] +
        comp_counts_[static_cast<std::size_t>(c)];
  }
  comp_members_.resize(active_.size());
  comp_cursor_.assign(comp_off_.begin(), comp_off_.end() - 1);
  for (Vertex v : active_) {
    comp_members_[comp_cursor_[static_cast<std::size_t>(
        comp_of_[root_of(v)])]++] = v;
  }

  candidates_.clear();
  for (std::int32_t c = 0; c < num_comps; ++c) {
    const std::size_t lo = comp_off_[static_cast<std::size_t>(c)];
    const std::size_t hi = comp_off_[static_cast<std::size_t>(c) + 1];
    if (hi - lo < 3) continue;
    // Members arrive ascending (active_ is sorted).
    std::vector<Vertex> set(comp_members_.begin() + static_cast<long>(lo),
                            comp_members_.begin() + static_cast<long>(hi));
    // Trim to the capacity cap by dropping the vertices with least q-mass.
    std::int64_t bw = 0;
    for (Vertex v : set) bw += b[v];
    if (bw > max_b) {
      std::sort(set.begin(), set.end(), [this](Vertex a, Vertex c2) {
        return incident_[a] > incident_[c2];
      });
      while (!set.empty() && bw > max_b) {
        bw -= b[set.back()];
        set.pop_back();
      }
      std::sort(set.begin(), set.end());
    }
    // Fix parity by dropping the lightest member if needed.
    if (bw % 2 == 0 && !set.empty()) {
      std::size_t drop = 0;
      for (std::size_t i = 1; i < set.size(); ++i) {
        if (incident_[set[i]] < incident_[set[drop]]) drop = i;
      }
      bw -= b[set[drop]];
      set.erase(set.begin() + static_cast<long>(drop));
    }
    if (!is_valid_odd_set(set, b, max_b)) continue;
    double deficiency = 0;
    for (Vertex v : set) deficiency += q_hat[v];
    candidates_.emplace_back(deficiency, std::move(set));
  }
  auto result = keep_disjoint(candidates_, taken_);
  // Restore the rest state by walking only the touched entries.
  for (Vertex v : active_) {
    incident_[v] = 0.0;
    comp_of_[root_of(v)] = -1;
  }
  for (Vertex v : active_) {
    parent_[v] = v;
    rank_[v] = 0;
  }
  return result;
}

std::vector<std::vector<Vertex>> OddSetSeparator::find(
    std::size_t n, const std::vector<OddSetQueryEdge>& q_edges,
    const std::vector<double>& q_hat, const Capacities& b,
    const OddSetOptions& options) {
  if (q_edges.empty()) return {};
  ensure(n);
  const double eps = options.eps;
  const std::int64_t max_b =
      options.max_set_b > 0
          ? options.max_set_b
          : static_cast<std::int64_t>(std::ceil(4.0 / eps));

  // Active vertices (sorted): endpoints of query edges. Dense when the
  // endpoints cover a good fraction of [0, n), so pick whichever of
  // "rescan the flags" and "sort the collected list" is cheaper — the
  // output is identical.
  active_.clear();
  for (const auto& qe : q_edges) {
    if (!seen_[qe.u]) {
      seen_[qe.u] = 1;
      active_.push_back(qe.u);
    }
    if (!seen_[qe.v]) {
      seen_[qe.v] = 1;
      active_.push_back(qe.v);
    }
  }
  if (active_.size() * 8 >= n) {
    std::size_t out = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (seen_[v]) active_[out++] = static_cast<Vertex>(v);
    }
  } else {
    std::sort(active_.begin(), active_.end());
  }
  for (Vertex v : active_) seen_[v] = 0;

  if (active_.size() <= options.gomory_hu_limit) {
    const double unit = 8.0 / (eps * eps * eps);
    const auto kappa = static_cast<std::int64_t>(std::floor(unit));
    // Lemma 25 asks for a MAXIMAL disjoint collection; a single Gomory-Hu
    // tree only guarantees the minimum odd cut among its fundamental cuts.
    // exact() iterates: collect disjoint sets, contract their vertices
    // out of the arena, rebuild the tree on the shrunken network until no
    // new set appears.
    return exact(q_edges, q_hat, b, kappa, unit, max_b, /*max_rounds=*/10);
  }
  return heuristic(q_edges, q_hat, b, max_b);
}

std::vector<std::vector<Vertex>> find_dense_odd_sets(
    std::size_t n, const std::vector<OddSetQueryEdge>& q_edges,
    const std::vector<double>& q_hat, const Capacities& b,
    const OddSetOptions& options) {
  OddSetSeparator separator;
  return separator.find(n, q_edges, q_hat, b, options);
}

}  // namespace dp::core
