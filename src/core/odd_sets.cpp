#include "core/odd_sets.hpp"

#include <algorithm>
#include <cmath>

#include "graph/gomory_hu.hpp"
#include "graph/union_find.hpp"

namespace dp::core {

namespace {

/// Greedily keep candidates (sorted by preference) that are pairwise
/// disjoint.
std::vector<std::vector<Vertex>> keep_disjoint(
    std::vector<std::pair<double, std::vector<Vertex>>>& candidates,
    std::size_t n) {
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<char> taken(n, 0);
  std::vector<std::vector<Vertex>> out;
  for (auto& [score, set] : candidates) {
    bool clash = false;
    for (Vertex v : set) {
      if (taken[v]) {
        clash = true;
        break;
      }
    }
    if (clash) continue;
    for (Vertex v : set) taken[v] = 1;
    out.push_back(std::move(set));
  }
  return out;
}

bool is_valid_odd_set(const std::vector<Vertex>& set, const Capacities& b,
                      std::int64_t max_b) {
  if (set.size() < 3) return false;
  std::int64_t bw = 0;
  for (Vertex v : set) bw += b[v];
  return bw % 2 == 1 && bw <= max_b;
}

/// Exact Padberg-Rao style search on a Gomory-Hu tree of the discretized
/// auxiliary graph H (vertices remapped to the active set; node `s` last).
std::vector<std::vector<Vertex>> gomory_hu_odd_sets(
    const std::vector<Vertex>& active, const std::vector<OddSetQueryEdge>& q,
    const std::vector<double>& q_hat, const Capacities& b,
    std::int64_t kappa, double unit, std::int64_t max_b) {
  const std::size_t na = active.size();
  // `active` is sorted, so the global->local remap is a binary search
  // instead of a hash map.
  const auto local = [&active](Vertex v) {
    return static_cast<std::uint32_t>(
        std::lower_bound(active.begin(), active.end(), v) - active.begin());
  };
  const auto s = static_cast<std::uint32_t>(na);  // special node

  std::vector<Edge> h_edges;
  std::vector<std::int64_t> caps;
  std::vector<std::int64_t> incident(na, 0);
  for (const auto& qe : q) {
    const auto cap = static_cast<std::int64_t>(std::floor(qe.q * unit));
    if (cap <= 0) continue;
    const std::uint32_t lu = local(qe.u);
    const std::uint32_t lv = local(qe.v);
    h_edges.push_back(Edge{lu, lv, 1.0});
    caps.push_back(cap);
    incident[lu] += cap;
    incident[lv] += cap;
  }
  for (std::size_t i = 0; i < na; ++i) {
    const auto target = static_cast<std::int64_t>(
        std::ceil(q_hat[active[i]] * unit));
    const std::int64_t deficiency = target - incident[i];
    if (deficiency > 0) {
      h_edges.push_back(Edge{static_cast<Vertex>(i), s, 1.0});
      caps.push_back(deficiency);
    }
  }

  const GomoryHuTree tree = gomory_hu(na + 1, h_edges, caps);
  std::vector<std::pair<double, std::vector<Vertex>>> candidates;
  for (std::uint32_t v = 1; v < tree.size(); ++v) {
    if (tree.cut_value[v] > kappa) continue;
    std::vector<std::uint32_t> side = tree.cut_side(v);
    // Use the side not containing s.
    const bool s_inside =
        std::find(side.begin(), side.end(), s) != side.end();
    std::vector<Vertex> set;
    if (s_inside) {
      std::vector<char> inside(na + 1, 0);
      for (std::uint32_t x : side) inside[x] = 1;
      for (std::uint32_t x = 0; x < na; ++x) {
        if (!inside[x]) set.push_back(active[x]);
      }
    } else {
      for (std::uint32_t x : side) {
        if (x < na) set.push_back(active[x]);
      }
    }
    std::sort(set.begin(), set.end());
    if (!is_valid_odd_set(set, b, max_b)) continue;
    candidates.emplace_back(static_cast<double>(tree.cut_value[v]),
                            std::move(set));
  }
  std::size_t n_max = 0;
  for (Vertex v : active) n_max = std::max<std::size_t>(n_max, v + 1);
  return keep_disjoint(candidates, n_max);
}

/// Heuristic for large instances: connected components of the subgraph of
/// heavy q-edges, trimmed to the size cap, plus all triangles among heavy
/// edges. Each candidate is scored by deficiency (lower = denser).
std::vector<std::vector<Vertex>> heuristic_odd_sets(
    std::size_t n, const std::vector<OddSetQueryEdge>& q,
    const std::vector<double>& q_hat, const Capacities& b,
    std::int64_t max_b) {
  // Heavy edge: carries at least half of either endpoint's average share.
  std::vector<double> incident(n, 0.0);
  for (const auto& qe : q) {
    incident[qe.u] += qe.q;
    incident[qe.v] += qe.q;
  }
  UnionFind uf(n);
  for (const auto& qe : q) {
    if (qe.q * 4.0 >= std::min(q_hat[qe.u], q_hat[qe.v])) {
      uf.unite(qe.u, qe.v);
    }
  }
  // Component roots touched by query edges, in sorted order (the same
  // deterministic order the std::map-based version iterated in).
  std::vector<std::uint32_t> roots;
  roots.reserve(2 * q.size());
  for (const auto& qe : q) {
    roots.push_back(uf.find(qe.u));
    roots.push_back(uf.find(qe.v));
  }
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  std::vector<std::vector<Vertex>> comps(roots.size());
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint32_t r = uf.find(static_cast<std::uint32_t>(v));
    const auto it = std::lower_bound(roots.begin(), roots.end(), r);
    if (it != roots.end() && *it == r) {
      comps[static_cast<std::size_t>(it - roots.begin())].push_back(
          static_cast<Vertex>(v));
    }
  }

  std::vector<std::pair<double, std::vector<Vertex>>> candidates;
  for (auto& members : comps) {
    if (members.size() < 3) continue;
    std::vector<Vertex> set = members;
    std::sort(set.begin(), set.end());
    // Trim to the capacity cap by dropping the vertices with least q-mass.
    std::int64_t bw = 0;
    for (Vertex v : set) bw += b[v];
    if (bw > max_b) {
      std::sort(set.begin(), set.end(), [&](Vertex a, Vertex c) {
        return incident[a] > incident[c];
      });
      while (!set.empty() && bw > max_b) {
        bw -= b[set.back()];
        set.pop_back();
      }
      std::sort(set.begin(), set.end());
    }
    // Fix parity by dropping the lightest member if needed.
    if (bw % 2 == 0 && !set.empty()) {
      std::size_t drop = 0;
      for (std::size_t i = 1; i < set.size(); ++i) {
        if (incident[set[i]] < incident[set[drop]]) drop = i;
      }
      bw -= b[set[drop]];
      set.erase(set.begin() + static_cast<long>(drop));
    }
    if (!is_valid_odd_set(set, b, max_b)) continue;
    double deficiency = 0;
    for (Vertex v : set) deficiency += q_hat[v];
    candidates.emplace_back(deficiency, std::move(set));
  }
  return keep_disjoint(candidates, n);
}

}  // namespace

std::vector<std::vector<Vertex>> find_dense_odd_sets(
    std::size_t n, const std::vector<OddSetQueryEdge>& q_edges,
    const std::vector<double>& q_hat, const Capacities& b,
    const OddSetOptions& options) {
  if (q_edges.empty()) return {};
  const double eps = options.eps;
  const std::int64_t max_b =
      options.max_set_b > 0
          ? options.max_set_b
          : static_cast<std::int64_t>(std::ceil(4.0 / eps));

  // Active vertices: endpoints of query edges.
  std::vector<char> seen(n, 0);
  std::vector<Vertex> active;
  for (const auto& qe : q_edges) {
    if (!seen[qe.u]) {
      seen[qe.u] = 1;
      active.push_back(qe.u);
    }
    if (!seen[qe.v]) {
      seen[qe.v] = 1;
      active.push_back(qe.v);
    }
  }
  std::sort(active.begin(), active.end());

  if (active.size() <= options.gomory_hu_limit) {
    const double unit = 8.0 / (eps * eps * eps);
    const auto kappa = static_cast<std::int64_t>(std::floor(unit));
    // Lemma 25 asks for a MAXIMAL disjoint collection; a single Gomory-Hu
    // tree only guarantees the minimum odd cut among its fundamental cuts.
    // Iterate: collect disjoint sets, remove their vertices, re-run on the
    // residual graph until no new set appears.
    std::vector<std::vector<Vertex>> collected;
    std::vector<char> taken(n, 0);
    std::vector<OddSetQueryEdge> residual_edges = q_edges;
    for (int round = 0; round < 10; ++round) {
      std::vector<Vertex> residual_active;
      for (Vertex v : active) {
        if (!taken[v]) residual_active.push_back(v);
      }
      if (residual_active.size() < 3) break;
      residual_edges.erase(
          std::remove_if(residual_edges.begin(), residual_edges.end(),
                         [&](const OddSetQueryEdge& qe) {
                           return taken[qe.u] || taken[qe.v];
                         }),
          residual_edges.end());
      if (residual_edges.empty()) break;
      const auto found = gomory_hu_odd_sets(residual_active, residual_edges,
                                            q_hat, b, kappa, unit, max_b);
      if (found.empty()) break;
      for (const auto& set : found) {
        for (Vertex v : set) taken[v] = 1;
        collected.push_back(set);
      }
    }
    return collected;
  }
  return heuristic_odd_sets(n, q_edges, q_hat, b, max_b);
}

}  // namespace dp::core
