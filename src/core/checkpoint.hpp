#pragma once
// Round-level checkpoint/resume for the outer sampling loop.
//
// A RoundCheckpoint captures everything Solver::solve mutates across outer
// rounds — the raw dual iterate (scale, x_i(k) in activation order, the
// per-vertex maxima, the odd-set variables in stored order), the incumbent
// primal, the round position, the per-round history and both resource
// meters — so a solve killed after round k and resumed from the checkpoint
// produces a SolverResult bitwise identical to the uninterrupted run, on
// every substrate and thread count. Identity fields (seed, eps, p, t,
// sample seed, instance shape) pin the checkpoint to ONE solve
// configuration; the solver rejects a mismatched resume with ConfigError.
//
// Wire format (all integers little-endian):
//   "DPCK" magic | version u32 | payload size u64 | FNV-1a-64 checksum u64
//   | payload
// The checksum covers the payload and is verified BEFORE any payload parse;
// a flipped bit anywhere — header or payload — surfaces as
// CheckpointCorrupt, never as a half-restored solve. Doubles travel as
// their IEEE-754 bit patterns (bit_cast), preserving bitwise resume.
// Version bumps are strict: kVersion is the only version deserialize
// accepts (the format is a crash-recovery artifact, not an archive).

#include <cstdint>
#include <utility>
#include <vector>

#include "core/dual_state.hpp"
#include "core/solver.hpp"
#include "util/accounting.hpp"

namespace dp::core {

/// Value snapshot of a ResourceMeter (the meter itself exposes no mutable
/// counter access; restore replays the counters through the public API).
struct MeterSnapshot {
  std::uint64_t rounds = 0;
  std::uint64_t passes = 0;
  std::uint64_t stored_edges = 0;
  std::uint64_t peak_edges = 0;
  std::uint64_t sketch_words = 0;
  std::uint64_t messages = 0;
  std::uint64_t inner_iterations = 0;
  std::uint64_t oracle_calls = 0;
  std::uint64_t faults = 0;
  std::uint64_t max_flows = 0;
  std::uint64_t max_flows_saved = 0;
  std::uint64_t gh_full_builds = 0;
  std::uint64_t gh_incremental = 0;
  std::uint64_t gh_tree_reuses = 0;
  std::uint64_t saved_rounds = 0;
  std::uint64_t saved_passes = 0;
  std::uint64_t repaired_rows = 0;
  std::uint64_t io_bytes = 0;
  std::uint64_t io_stalls = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t shuffle_bytes = 0;
  std::uint64_t resident_edges = 0;
  std::uint64_t peak_resident = 0;

  static MeterSnapshot of(const ResourceMeter& meter);
  void restore_into(ResourceMeter& meter) const;
};

struct RoundCheckpoint {
  // v2: MeterSnapshot grew the separation flow-work counters (max_flows,
  // max_flows_saved, gh_full_builds, gh_incremental, gh_tree_reuses).
  // v3: identity grew graph_generation — the dynamic-graph delta counter.
  // A checkpoint cut before a delta must not silently resume against the
  // mutated graph: n/m/retained can all survive a remove+insert delta, so
  // the generation is the field that makes staleness a typed rejection.
  // v4: MeterSnapshot grew the dynamic-resolve savings (saved_rounds,
  // saved_passes, repaired_rows) and the out-of-core counters (io_bytes,
  // io_stalls, prefetch_hits, shuffle_bytes, resident_edges,
  // peak_resident) — a mid-pass kill/resume on the file backend must
  // restore its IO accounting exactly.
  static constexpr std::uint32_t kVersion = 4;

  // -- Identity: the solve configuration this checkpoint belongs to. --
  std::uint64_t solver_seed = 0;
  double eps = 0;
  double p = 0;
  std::uint64_t sparsifiers = 0;  // resolved t
  std::uint64_t sample_seed = 0;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::uint64_t retained = 0;
  std::int32_t levels = 0;
  std::uint64_t graph_generation = 0;

  // -- Position: where the outer loop resumes. --
  std::uint64_t next_round = 0;
  std::uint64_t outer_rounds = 0;
  std::uint64_t oracle_calls = 0;

  // -- Incumbent primal (support only; multiplicities are int64). --
  double best_value = 0;
  double beta = 0;
  std::vector<std::pair<std::uint64_t, std::int64_t>> best_support;

  // -- Raw dual iterate (DualState::restore_raw's exact inputs). --
  double scale = 1.0;
  std::vector<std::pair<std::uint64_t, double>> xik;  // activation order
  std::vector<double> xi;                             // dense, n entries
  std::vector<OddSetVar> odd_sets;                    // exact stored order

  // -- Per-round history and resource accounting. --
  std::vector<RoundStats> history;
  MeterSnapshot solve_meter;
  MeterSnapshot substrate_meter;

  std::vector<std::uint8_t> serialize() const;

  /// Parses and validates a serialized checkpoint. Throws CheckpointCorrupt
  /// on any structural defect: short buffer, wrong magic/version, size or
  /// checksum mismatch, truncated or oversized payload.
  static RoundCheckpoint deserialize(const std::vector<std::uint8_t>& bytes);
};

}  // namespace dp::core
