#pragma once
// The dual iterate of the layered penalty LP (LP5/LP10): per-vertex,
// per-level costs x_i(k), per-vertex maxima x_i, and odd-set variables
// z_{U,l}. The fractional covering loop of Theorem 5 maintains this state as
// a running convex combination of MicroOracle outputs; a global scale factor
// makes each blend O(|new support|) instead of O(|total support|).
//
// Covering rows (one per retained edge (i,j) at level k):
//   x_i(k) + x_j(k) + sum_{l <= k} sum_{U in Os: i,j in U} z_{U,l} >= wHat_k
// Outer packing rows (one per (i,k) with edges at that level):
//   2 x_i(k) + sum_{l <= k} sum_{U in Os: i in U} z_{U,l} <= 3 wHat_k
// Dual objective (upper-bounds the matching weight once rows are covered):
//   sum_i b_i x_i + sum_{U,l} floor(||U||_b / 2) z_{U,l}.

#include <cstdint>
#include <vector>

#include "core/flat_duals.hpp"
#include "core/weight_levels.hpp"
#include "graph/graph.hpp"

namespace dp {
class ThreadPool;
}

namespace dp::core {

/// One odd-set dual variable z_{U, level} = value (raw; effective value is
/// raw * state scale).
struct OddSetVar {
  int level = 0;
  std::vector<Vertex> members;  // sorted
  double value = 0.0;           // raw value
};

/// A sparse dual point as produced by one MicroOracle call (unscaled).
struct DualPoint {
  /// (i, k) -> x_i(k); keys are i * num_levels + k, sorted ascending (so
  /// entries are grouped by vertex with levels ascending inside a group).
  SparseDuals xik;
  std::vector<OddSetVar> odd_sets;
};

class DualState {
 public:
  DualState(std::size_t n, int num_levels);

  std::size_t num_vertices() const noexcept { return n_; }
  int num_levels() const noexcept { return levels_; }

  /// Effective x_i(k). O(1) read of the dense buffer.
  double x(Vertex i, int k) const noexcept {
    return xik_.get(static_cast<std::uint64_t>(i) * levels_ + k) * scale_;
  }

  /// Effective x_i = max_k x_i(k).
  double x_max(Vertex i) const noexcept { return xi_[i] * scale_; }

  /// Covering row value for edge (i, j) at level k (see file comment).
  double cover_row(Vertex i, Vertex j, int k) const;

  /// Outer packing row for (i, k): 2 x_i(k) + z-sum over sets containing i.
  double po_row(Vertex i, int k) const;

  /// Dual objective sum b_i x_i + sum floor(||U||_b/2) z_{U,l}.
  double objective(const Capacities& b) const;

  /// lambda = min over retained edges of cover_row / wHat_level. Returns 0
  /// for an empty edge set. With a pool, the sweep runs on fixed-grain
  /// chunks with per-chunk minima reduced in chunk order — min is exact,
  /// so the result is bitwise identical for any thread count (the same
  /// parallel-determinism contract as the oracle sweeps).
  double lambda(const LevelGraph& lg, ThreadPool* pool = nullptr,
                std::size_t grain = 4096) const;

  /// Blend in an oracle output: state <- (1 - sigma) * state + sigma * p.
  void blend(const DualPoint& p, double sigma);

  /// Feasibility repair for the dynamic re-solve: if cover_row(i, j, k) is
  /// below `target` (= wHat_k for an inserted edge), raise x_i(k) and
  /// x_j(k) by equal halves of the deficit so the row reaches the target.
  /// Only the two endpoint duals move — the deterministic "raise only what
  /// the delta touched" pass of the warm-start recipe. Returns true iff a
  /// raise happened.
  bool raise_cover(Vertex i, Vertex j, int k, double target);

  /// Replace the state with a fresh point (used for the initial solution).
  void assign(const DualPoint& p);

  // --- Checkpoint surface (core/checkpoint) ------------------------------
  // Raw internals for bitwise round-checkpointing. xi_ is NOT derivable
  // from xik_ (it accumulates per-blend run maxima, an FP-order-sensitive
  // sum), so it serializes separately.
  double scale() const noexcept { return scale_; }
  const FlatDuals& raw_xik() const noexcept { return xik_; }
  const std::vector<double>& raw_xi() const noexcept { return xi_; }

  /// Rebuild the exact internal state captured by the raw accessors: xik
  /// entries are applied in the given (activation) order, sets in stored
  /// order, and the membership/dedup indexes are replayed exactly as
  /// add_odd_set built them (first id wins on a hash collision) — so a
  /// resumed solve is bitwise identical to an uninterrupted one.
  void restore_raw(double scale,
                   const std::vector<std::pair<std::uint64_t, double>>& xik,
                   const std::vector<double>& xi,
                   const std::vector<OddSetVar>& sets);

  /// Number of distinct odd-set variables currently in the support.
  std::size_t odd_set_support() const noexcept { return sets_.size(); }

  /// Effective z value of stored set s (for inspection/tests).
  const std::vector<OddSetVar>& odd_sets() const noexcept { return sets_; }
  double odd_set_value(std::size_t s) const noexcept {
    return sets_[s].value * scale_;
  }

 private:
  void add_odd_set(const OddSetVar& var, double factor);

  std::size_t n_;
  int levels_;
  double scale_ = 1.0;
  FlatDuals xik_;           // raw, dense n*L with active-key list
  std::vector<double> xi_;  // raw max per vertex
  std::vector<OddSetVar> sets_;                      // raw values
  std::vector<std::vector<std::uint32_t>> sets_at_;  // vertex -> set ids
  /// Dedup index: (content hash, set id), sorted by hash.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> set_index_;
};

}  // namespace dp::core
