#include "core/weight_levels.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dp::core {

LevelGraph::LevelGraph(const Graph& g, const Capacities& b, double eps)
    : g_(&g), eps_(eps) {
  if (eps <= 0 || eps >= 1) {
    throw std::invalid_argument("LevelGraph: eps must be in (0, 1)");
  }
  if (b.size() != g.num_vertices()) {
    throw std::invalid_argument("LevelGraph: capacity size mismatch");
  }
  w_star_ = g.max_weight();
  const double big_b =
      std::max<double>(2.0, static_cast<double>(b.total()));
  // Floor at eps * W* / B (a slightly finer floor than the paper's W*/B):
  // a b-matching has at most B/2 edges, so the dropped mass is below
  // eps * W* / 2 <= eps * OPT / 2.
  scale_ = w_star_ > 0 ? eps * w_star_ / big_b : 1.0;

  const double log_base = std::log1p(eps);
  level_.assign(g.num_edges(), -1);
  int max_level = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const double w = g.edge(e).w;
    if (w < scale_ || w <= 0) continue;  // dropped: below W*/B
    // Level k with scale * (1+eps)^k <= w; epsilon guard for exact powers.
    const int k = static_cast<int>(
        std::floor(std::log(w / scale_) / log_base + 1e-9));
    level_[e] = std::max(0, k);
    max_level = std::max(max_level, level_[e]);
  }
  num_levels_ = max_level + 1;

  level_weight_.resize(num_levels_);
  for (int k = 0; k < num_levels_; ++k) {
    level_weight_[k] = std::pow(1.0 + eps, k);
  }
  level_weight_prefix_.resize(num_levels_ + 1);
  level_weight_prefix_[0] = 0.0;
  for (int k = 0; k < num_levels_; ++k) {
    level_weight_prefix_[k + 1] = level_weight_prefix_[k] + level_weight_[k];
  }
  by_level_.assign(num_levels_, {});
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (level_[e] >= 0) {
      by_level_[level_[e]].push_back(e);
      retained_.push_back(e);
    }
  }
}

}  // namespace dp::core
