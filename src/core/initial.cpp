#include "core/initial.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace dp::core {

InitialSolution build_initial(const LevelGraph& lg, const Capacities& b,
                              double p, std::uint64_t seed,
                              ResourceMeter* meter) {
  const Graph& g = lg.graph();
  const std::size_t n = g.num_vertices();
  const int L = lg.num_levels();
  const double eps = lg.eps();
  Rng rng(seed);

  InitialSolution out;
  if (n == 0) return out;
  const double exponent = 1.0 + 1.0 / (2.0 * std::max(p, 1.01));
  const std::size_t budget = static_cast<std::size_t>(
      std::ceil(std::pow(static_cast<double>(n), exponent))) + 16;

  // Per-level residual capacities and remaining candidate edges.
  std::vector<std::vector<std::int64_t>> residual(
      L, std::vector<std::int64_t>(n));
  for (int k = 0; k < L; ++k) {
    for (std::size_t v = 0; v < n; ++v) {
      residual[k][v] = b[static_cast<Vertex>(v)];
    }
  }
  std::vector<std::vector<EdgeId>> remaining(L);
  for (int k = 0; k < L; ++k) remaining[k] = lg.edges_at_level(k);

  const std::size_t max_rounds =
      static_cast<std::size_t>(10.0 * std::max(p, 1.0)) + 20;
  bool work_left = true;
  while (work_left && out.rounds < max_rounds) {
    work_left = false;
    std::size_t stored_this_round = 0;
    for (int k = 0; k < L; ++k) {
      auto& edges = remaining[k];
      if (edges.empty()) continue;
      work_left = true;
      auto& res = residual[k];

      // Sample up to `budget` distinct edges uniformly, process greedily
      // with saturation.
      std::vector<EdgeId> sample;
      if (edges.size() <= budget) {
        sample = edges;
      } else {
        const auto picks =
            rng.sample_without_replacement(edges.size(), budget);
        sample.reserve(picks.size());
        for (std::size_t idx : picks) sample.push_back(edges[idx]);
      }
      rng.shuffle(sample);
      stored_this_round += sample.size();
      for (EdgeId e : sample) {
        const Edge& edge = g.edge(e);
        const std::int64_t y = std::min(res[edge.u], res[edge.v]);
        if (y > 0) {
          res[edge.u] -= y;
          res[edge.v] -= y;
          out.support.push_back(e);
        }
      }
      // Filter: drop edges with a saturated endpoint.
      edges.erase(std::remove_if(edges.begin(), edges.end(),
                                 [&](EdgeId e) {
                                   const Edge& edge = g.edge(e);
                                   return res[edge.u] == 0 ||
                                          res[edge.v] == 0;
                                 }),
                  edges.end());
    }
    if (work_left) {
      ++out.rounds;
      if (meter != nullptr) {
        meter->add_round();
        meter->store_edges(stored_this_round);
        meter->release_edges(stored_this_round);
      }
    }
  }

  // Fallback: if the round guard tripped before the filtering converged
  // (adversarial degree sequences), finish the maximal matchings exhaustively
  // in one extra round so the dual coverage guarantee always holds.
  if (work_left) {
    ++out.rounds;
    if (meter != nullptr) meter->add_round();
    for (int k = 0; k < L; ++k) {
      auto& res = residual[k];
      for (EdgeId e : remaining[k]) {
        const Edge& edge = g.edge(e);
        const std::int64_t y = std::min(res[edge.u], res[edge.v]);
        if (y > 0) {
          res[edge.u] -= y;
          res[edge.v] -= y;
          out.support.push_back(e);
        }
      }
      remaining[k].clear();
    }
  }

  // Dual start: saturated vertices carry x_i(k) = r * wHat_k, r = eps/256.
  const double r = eps / 256.0;
  out.coverage = r;
  const int levels = lg.num_levels();
  std::vector<double> xi(n, 0.0);
  // Vertex-major iteration emits keys in strictly increasing order, so the
  // sparse point is built with O(1) appends.
  for (std::size_t v = 0; v < n; ++v) {
    for (int k = 0; k < levels; ++k) {
      if (lg.edges_at_level(k).empty()) continue;
      if (residual[k][v] == 0) {
        const double value = r * lg.level_weight(k);
        out.x0.xik.append(static_cast<std::uint64_t>(v) * levels + k, value);
        xi[v] = std::max(xi[v], value);
      }
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    out.beta0 += static_cast<double>(b[static_cast<Vertex>(v)]) * xi[v];
  }
  std::sort(out.support.begin(), out.support.end());
  out.support.erase(std::unique(out.support.begin(), out.support.end()),
                    out.support.end());
  return out;
}

}  // namespace dp::core
