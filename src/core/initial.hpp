#pragma once
// Initial dual solution — Lemmas 12, 20 and 21 of the paper.
//
// For every weight level k a maximal b-matching M_k of EHat_k is built by
// iterative uniform sampling with per-round budget O(n^{1+1/(2p)}) — the
// Lattanzi et al. SPAA'11 filtering scheme extended to b-matching by the
// saturation rule (Lemma 20: a chosen edge's multiplicity is raised until an
// endpoint saturates, so the residual vertex set shrinks like the unmatched
// set of the original analysis). Saturated vertices then receive
// x_i(k) = (eps/256) wHat_k, giving a dual start with
//   A x0 >= (eps/256) c   and   beta*/a <= b^T x0 <= beta*/2,  a = O(eps^-2).

#include <cstdint>
#include <vector>

#include "core/dual_state.hpp"
#include "core/weight_levels.hpp"
#include "util/accounting.hpp"

namespace dp::core {

struct InitialSolution {
  DualPoint x0;
  /// Normalized dual objective of x0 (the beta_0 of Theorem 3).
  double beta0 = 0;
  /// Coverage guarantee: A x0 >= coverage * c (the paper's 1 - eps_0).
  double coverage = 0;
  /// Union of the per-level maximal b-matching edges (the first stored
  /// subgraph the driver hands to the offline solver).
  std::vector<EdgeId> support;
  /// Sampling rounds consumed.
  std::size_t rounds = 0;
};

/// Build the initial solution. `p` is the space exponent (> 1): each level
/// samples at most ceil(n^{1 + 1/(2p)}) edges per round, and all levels
/// advance within the same round (they are independent MapReduce jobs).
InitialSolution build_initial(const LevelGraph& lg, const Capacities& b,
                              double p, std::uint64_t seed,
                              ResourceMeter* meter = nullptr);

}  // namespace dp::core
