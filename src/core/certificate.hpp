#pragma once
// Explicit dual certificates.
//
// Condition (d1) of Definition 1: a dual point with A x >= (1-3eps) c
// yields an upper bound on the optimum once scaled by 1/lambda. This module
// materializes the solver's internal DualState as an explicit OddSetDual for
// the ORIGINAL (unnormalized, undiscretized) problem — x_i = max_k x_i(k)
// and z_U = sum_l z_{U,l}, both scaled back by the weight normalization and
// by 1/lambda — and verifies feasibility edge by edge with the generic
// checker. The resulting dual_objective is a machine-checkable upper bound
// on the maximum weight b-matching.

#include "core/dual_state.hpp"
#include "core/weight_levels.hpp"
#include "matching/verify.hpp"

namespace dp::core {

struct CertificateReport {
  OddSetDual dual;       // explicit dual for the original weights
  bool feasible = false; // verified cover of every original edge
  double bound = 0;      // dual objective (valid upper bound iff feasible)
  double lambda = 0;     // covering ratio of the normalized state
};

/// Extract and verify an explicit certificate from a dual state. The bound
/// includes the dropped-edge slack (edges below the eps W*/B level floor
/// can contribute at most eps W*/2 in total, added to the objective) and
/// the (1+eps) discretization factor.
CertificateReport extract_certificate(const DualState& state,
                                      const LevelGraph& lg,
                                      const Capacities& b);

/// Cheap always-feasible dual witnesses, used to floor the certificate
/// while the multiplicative-weights dual is still converging:
///
/// * greedy_witness_dual — set x_u = x_v = w_e for each greedy-matching
///   edge: any skipped edge had an endpoint matched at no smaller weight,
///   so every edge is covered; objective = 2 * greedy weight.
OddSetDual greedy_witness_dual(const Graph& g);

/// * incident_witness_dual — x_v = (max incident weight)/2: every edge
///   (i,j) satisfies x_i + x_j >= (w_ij + w_ij)/2 = w_ij.
OddSetDual incident_witness_dual(const Graph& g);

/// Best (smallest) verified dual bound among the state certificate and the
/// witnesses.
double best_dual_bound(const DualState& state, const LevelGraph& lg,
                       const Capacities& b);

}  // namespace dp::core
