#include "core/dual_state.hpp"

#include <algorithm>
#include <cmath>

#include "util/thread_pool.hpp"

namespace dp::core {

namespace {

std::uint64_t set_key(const OddSetVar& var) {
  // FNV-1a over (level, members).
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  mix(static_cast<std::uint64_t>(var.level));
  for (Vertex v : var.members) mix(v + 1);
  return h;
}

}  // namespace

DualState::DualState(std::size_t n, int num_levels)
    : n_(n), levels_(num_levels), xi_(n, 0.0), sets_at_(n) {
  xik_.reset(n * static_cast<std::size_t>(num_levels));
}

double DualState::cover_row(Vertex i, Vertex j, int k) const {
  double row = x(i, k) + x(j, k);
  // Per-level odd-set families are disjoint within one oracle output but may
  // overlap across outputs; iterate i's sets and test j's membership.
  const auto& at_i = sets_at_[i];
  for (std::uint32_t s : at_i) {
    const OddSetVar& var = sets_[s];
    if (var.level > k) continue;
    if (std::binary_search(var.members.begin(), var.members.end(), j)) {
      row += var.value * scale_;
    }
  }
  return row;
}

double DualState::po_row(Vertex i, int k) const {
  double row = 2.0 * x(i, k);
  for (std::uint32_t s : sets_at_[i]) {
    if (sets_[s].level <= k) row += sets_[s].value * scale_;
  }
  return row;
}

double DualState::objective(const Capacities& b) const {
  double total = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    total += static_cast<double>(b[static_cast<Vertex>(i)]) * xi_[i];
  }
  for (const OddSetVar& var : sets_) {
    std::int64_t bw = 0;
    for (Vertex v : var.members) bw += b[v];
    total += std::floor(static_cast<double>(bw) / 2.0) * var.value;
  }
  return total * scale_;
}

double DualState::lambda(const LevelGraph& lg, ThreadPool* pool,
                         std::size_t grain) const {
  const std::vector<EdgeId>& retained = lg.retained();
  const std::size_t m = retained.size();
  if (m == 0) return 0.0;
  if (grain == 0) grain = 1;
  // Per-chunk minima over fixed chunk boundaries, reduced in chunk order:
  // min is exact, so serial and parallel runs agree bitwise.
  const std::size_t chunks = (m + grain - 1) / grain;
  std::vector<double> partial(chunks, 1e300);
  run_chunks(pool, 0, m, grain,
             [&](std::size_t c, std::size_t lo, std::size_t hi) {
               double best = 1e300;
               for (std::size_t idx = lo; idx < hi; ++idx) {
                 const EdgeId e = retained[idx];
                 const Edge& edge = lg.graph().edge(e);
                 const int k = lg.level(e);
                 const double row = cover_row(edge.u, edge.v, k);
                 best = std::min(best, row / lg.level_weight(k));
               }
               partial[c] = best;
             });
  double best = 1e300;
  for (std::size_t c = 0; c < chunks; ++c) best = std::min(best, partial[c]);
  return best;
}

void DualState::add_odd_set(const OddSetVar& var, double factor) {
  const double raw = var.value * factor / scale_;
  if (raw <= 0) return;
  const std::uint64_t key = set_key(var);
  const auto it = std::lower_bound(
      set_index_.begin(), set_index_.end(), key,
      [](const auto& entry, std::uint64_t k) { return entry.first < k; });
  if (it != set_index_.end() && it->first == key) {
    OddSetVar& existing = sets_[it->second];
    if (existing.level == var.level && existing.members == var.members) {
      existing.value += raw;
      return;
    }
    // Hash collision with different content: fall through to append (the
    // index keeps the first entry; correctness is unaffected, only dedup).
  }
  const auto id = static_cast<std::uint32_t>(sets_.size());
  sets_.push_back(OddSetVar{var.level, var.members, raw});
  for (Vertex v : var.members) sets_at_[v].push_back(id);
  if (it == set_index_.end() || it->first != key) {
    set_index_.insert(it, {key, id});
  }
}

bool DualState::raise_cover(Vertex i, Vertex j, int k, double target) {
  const double row = cover_row(i, j, k);
  if (row >= target) return false;
  // Raw half-deficit per endpoint. The row lands within an ulp of the
  // target; callers certify against (1 - 3 eps) * wHat_k, so the slack is
  // enormous relative to that rounding.
  const double half_raw = (target - row) / 2.0 / scale_;
  const auto ki = static_cast<std::uint64_t>(i) * levels_ + k;
  const auto kj = static_cast<std::uint64_t>(j) * levels_ + k;
  xik_.add(ki, half_raw);
  xik_.add(kj, half_raw);
  if (xik_.get(ki) > xi_[i]) xi_[i] = xik_.get(ki);
  if (xik_.get(kj) > xi_[j]) xi_[j] = xik_.get(kj);
  return true;
}

void DualState::restore_raw(
    double scale, const std::vector<std::pair<std::uint64_t, double>>& xik,
    const std::vector<double>& xi, const std::vector<OddSetVar>& sets) {
  scale_ = scale;
  xik_.reset(n_ * static_cast<std::size_t>(levels_));
  for (const auto& [key, value] : xik) xik_.set(key, value);
  xi_ = xi;
  sets_ = sets;
  set_index_.clear();
  for (auto& at : sets_at_) at.clear();
  for (std::size_t s = 0; s < sets_.size(); ++s) {
    const auto id = static_cast<std::uint32_t>(s);
    for (Vertex v : sets_[s].members) sets_at_[v].push_back(id);
    const std::uint64_t key = set_key(sets_[s]);
    const auto it = std::lower_bound(
        set_index_.begin(), set_index_.end(), key,
        [](const auto& entry, std::uint64_t k) { return entry.first < k; });
    if (it == set_index_.end() || it->first != key) {
      set_index_.insert(it, {key, id});
    }
  }
}

void DualState::blend(const DualPoint& p, double sigma) {
  scale_ *= (1.0 - sigma);
  if (scale_ < 1e-280) {
    // Re-normalize to avoid underflow: fold the scale into the raw values.
    xik_.scale_all(scale_);
    for (double& value : xi_) value *= scale_;
    for (OddSetVar& var : sets_) var.value *= scale_;
    scale_ = 1.0;
  }
  // x_i(k), and per-vertex maxima over the runs of the (key-sorted) point.
  // Entries of one vertex are contiguous, so the point's x_i needs no
  // n-sized scratch: track the running max and flush on vertex change.
  const auto levels = static_cast<std::uint64_t>(levels_);
  std::uint64_t run_vertex = 0;
  double run_max = 0.0;
  auto flush = [&] {
    if (run_max > 0) xi_[run_vertex] += sigma * run_max / scale_;
    run_max = 0.0;
  };
  for (const auto& [key, value] : p.xik) {
    if (value <= 0) continue;
    const std::uint64_t i = key / levels;
    if (run_max > 0 && i != run_vertex) flush();
    run_vertex = i;
    run_max = std::max(run_max, value);
    xik_.add(key, sigma * value / scale_);
  }
  flush();
  for (const OddSetVar& var : p.odd_sets) add_odd_set(var, sigma);
}

void DualState::assign(const DualPoint& p) {
  scale_ = 1.0;
  xik_.clear();
  std::fill(xi_.begin(), xi_.end(), 0.0);
  sets_.clear();
  set_index_.clear();
  for (auto& at : sets_at_) at.clear();
  blend(p, 1.0);
}

}  // namespace dp::core
