#include "core/certificate.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace dp::core {

CertificateReport extract_certificate(const DualState& state,
                                      const LevelGraph& lg,
                                      const Capacities& b) {
  CertificateReport report;
  const Graph& g = lg.graph();
  const double eps = lg.eps();
  const double lambda = state.lambda(lg);
  report.lambda = lambda;
  if (lambda <= 1e-12) return report;  // no usable certificate yet

  // Scale: normalized dual values -> original weights. Each retained edge
  // has original weight < scale * (1+eps) * wHat_level, so multiplying the
  // normalized duals by scale*(1+eps)/lambda covers all retained edges.
  // Dropped edges (below the level floor) are covered by adding
  // eps*W*/(2) ... distributed as uniform vertex potential eps*W*/B per
  // unit of capacity: x_i += b_i * floor_value covers every dropped edge
  // since w_dropped < scale = eps W*/B <= x_u + x_v for b >= 1.
  const double factor = lg.scale() * (1.0 + eps) / lambda;
  const double floor_value = lg.scale();

  report.dual.x.assign(g.num_vertices(), 0.0);
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    report.dual.x[v] =
        state.x_max(static_cast<Vertex>(v)) * factor + floor_value;
  }
  // z_U = sum over levels of z_{U,l}; merge identical member sets.
  std::map<std::vector<Vertex>, double> merged;
  const auto& sets = state.odd_sets();
  for (std::size_t s = 0; s < sets.size(); ++s) {
    const double value = state.odd_set_value(s) * factor;
    if (value > 0) merged[sets[s].members] += value;
  }
  for (auto& [members, value] : merged) {
    report.dual.sets.push_back(members);
    report.dual.z.push_back(value);
  }

  report.feasible = dual_feasible(g, report.dual, 1e-7 * (1.0 + lg.w_star()));
  report.bound = dual_objective(b, report.dual);
  return report;
}

OddSetDual greedy_witness_dual(const Graph& g) {
  OddSetDual dual;
  dual.x.assign(g.num_vertices(), 0.0);
  // Weight-sorted greedy; both endpoints of a taken edge get its weight.
  std::vector<EdgeId> order(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) order[e] = e;
  std::stable_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId c) {
    return g.edge(a).w > g.edge(c).w;
  });
  std::vector<char> used(g.num_vertices(), 0);
  for (EdgeId e : order) {
    const Edge& edge = g.edge(e);
    if (!used[edge.u] && !used[edge.v]) {
      used[edge.u] = used[edge.v] = 1;
      dual.x[edge.u] = edge.w;
      dual.x[edge.v] = edge.w;
    }
  }
  return dual;
}

OddSetDual incident_witness_dual(const Graph& g) {
  OddSetDual dual;
  dual.x.assign(g.num_vertices(), 0.0);
  for (const Edge& e : g.edges()) {
    dual.x[e.u] = std::max(dual.x[e.u], e.w / 2.0);
    dual.x[e.v] = std::max(dual.x[e.v], e.w / 2.0);
  }
  return dual;
}

double best_dual_bound(const DualState& state, const LevelGraph& lg,
                       const Capacities& b) {
  const Graph& g = lg.graph();
  double best = g.total_weight();  // trivial fallback
  const CertificateReport report = extract_certificate(state, lg, b);
  if (report.feasible) best = std::min(best, report.bound);
  for (const OddSetDual& witness :
       {greedy_witness_dual(g), incident_witness_dual(g)}) {
    if (dual_feasible(g, witness, 1e-9 * (1.0 + lg.w_star()))) {
      best = std::min(best, dual_objective(b, witness));
    }
  }
  return best;
}

}  // namespace dp::core
