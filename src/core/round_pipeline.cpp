#include "core/round_pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "util/simd.hpp"

namespace dp::core {

namespace {

/// Sort packed row keys: fixed-grain chunk sorts in parallel, then a merge
/// cascade over chunk-pair ranges. Both phases produce the unique sorted
/// sequence whatever the thread count (sorting is a deterministic function
/// of the input range), so the pass honors the fixed-chunk contract while
/// parallelizing the dominant O(s log s) comparison work.
void sort_keys(std::vector<std::uint64_t>& keys, ThreadPool* pool,
               std::size_t grain) {
  const std::size_t n = keys.size();
  if (n <= 1) return;
  if (pool == nullptr || n <= grain) {
    std::sort(keys.begin(), keys.end());
    return;
  }
  run_chunks(pool, 0, n, grain,
             [&](std::size_t, std::size_t lo, std::size_t hi) {
               std::sort(keys.begin() + static_cast<std::ptrdiff_t>(lo),
                         keys.begin() + static_cast<std::ptrdiff_t>(hi));
             });
  for (std::size_t width = grain; width < n; width *= 2) {
    const std::size_t pairs = (n + 2 * width - 1) / (2 * width);
    run_jobs(pool, pairs, [&](std::size_t p) {
      const std::size_t lo = p * 2 * width;
      const std::size_t mid = lo + width;
      if (mid >= n) return;
      const std::size_t hi = std::min(n, lo + 2 * width);
      std::inplace_merge(keys.begin() + static_cast<std::ptrdiff_t>(lo),
                         keys.begin() + static_cast<std::ptrdiff_t>(mid),
                         keys.begin() + static_cast<std::ptrdiff_t>(hi));
    });
  }
}

/// The compute half of the Theorem 5 multiplier rule, shared by the full
/// retained sweep and the stored-sample refinement: u_i =
/// exp(-alpha (ratio_i - min_ratio)) / wHat_{level_at(i)} with an exact
/// chunked max reduction, then the additive u_max eps / (4 count + 4)
/// floor. `level_at(i)` must be pure per index.
template <typename LevelAt>
void exp_floor_multipliers(ThreadPool* pool, std::size_t grain,
                           const LevelGraph& lg, double alpha,
                           double min_ratio, const double* ratio,
                           std::size_t count, const LevelAt& level_at,
                           std::vector<double>& u,
                           std::vector<double>& partial,
                           std::vector<double>& divisor) {
  const std::size_t chunks = count == 0 ? 0 : (count + grain - 1) / grain;
  u.assign(count, 0.0);
  partial.assign(chunks, 0.0);
  divisor.resize(count);
  double* out = u.data();
  double* part = partial.data();
  double* div = divisor.data();
  // Three passes per chunk, every one a clones-dispatched elementwise
  // kernel (util/simd): argument fill, exp_batch in place, then the
  // level-weight divide fused with the chunk max as a bit-pattern integer
  // reduction (all quotients are positive). Only the divisor gather stays
  // scalar — level_at is an indexed load the sweep cannot vectorize.
  // Chunk results depend only on [lo, hi), so the fixed-grain determinism
  // contract is untouched, and every kernel is bitwise identical to the
  // scalar loop it replaced at any lane width.
  run_chunks(pool, 0, count, grain,
             [&](std::size_t c, std::size_t lo, std::size_t hi) {
               simd::fill_scaled_shift(ratio + lo, out + lo, hi - lo, alpha,
                                       min_ratio);
               simd::exp_batch(out + lo, out + lo, hi - lo);
               for (std::size_t i = lo; i < hi; ++i) {
                 div[i] = lg.level_weight(level_at(i));
               }
               part[c] =
                   simd::divide_max_positive(out + lo, div + lo, hi - lo);
             });
  double u_max = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    u_max = std::max(u_max, part[c]);
  }
  const double floor_value =
      u_max * lg.eps() / (4.0 * static_cast<double>(count) + 4.0);
  for (double& value : u) value = std::max(value, floor_value);
}

}  // namespace

RoundPipeline::RoundPipeline(access::Substrate& substrate,
                             const LevelGraph& lg, const Capacities& b,
                             bool unit_caps, MicroOracle& oracle,
                             RoundPipelineOptions options)
    : substrate_(&substrate),
      lg_(&lg),
      b_(&b),
      unit_caps_(unit_caps),
      oracle_(&oracle),
      pool_(oracle.worker_pool()),
      options_(std::move(options)),
      sample_rng_(options_.sample_seed) {
  if (options_.grain == 0) options_.grain = 1;
  options_.sparsifiers =
      std::min(options_.sparsifiers, kMaxSparsifiersPerRound);
}

double RoundPipeline::open_round(const DualState& state) {
  const std::size_t m = substrate_->num_retained();
  if (m == 0) {
    staged_min_ratio_ = 0.0;
    return 0.0;
  }
  const LevelGraph& lg = *lg_;
  ctx_.cov_ratio.resize(m);
  double* ratio = ctx_.cov_ratio.data();
  // The round's ONE access sweep: ratio_e = cover_row(e) / wHat_level(e)
  // for every retained edge. Elementwise and pure per index, so every
  // substrate (parallel chunks, a sequential stream pass, mapper shards)
  // fills the identical buffer.
  substrate_->multiplier_sweep(
      [&state, &lg, ratio](std::size_t lo, std::size_t hi,
                           const access::RetainedEdge* edges) {
        for (std::size_t idx = lo; idx < hi; ++idx) {
          const access::RetainedEdge& re = edges[idx - lo];  // base-relative
          ratio[idx] =
              state.cover_row(re.u, re.v, re.level) /
              lg.level_weight(re.level);
        }
      });
  // Exact min over the staged buffer (pipeline-owned, fixed-grain chunks —
  // not an input access): this is lambda, the Corollary 6 certificate.
  const std::size_t grain = options_.grain;
  const std::size_t chunks = (m + grain - 1) / grain;
  ctx_.cov_partial.assign(chunks, 1e300);
  double* partial = ctx_.cov_partial.data();
  run_chunks(pool_, 0, m, grain,
             [&](std::size_t c, std::size_t lo, std::size_t hi) {
               double local_min = 1e300;
               for (std::size_t idx = lo; idx < hi; ++idx) {
                 local_min = std::min(local_min, ratio[idx]);
               }
               partial[c] = local_min;
             });
  double min_ratio = 1e300;
  for (std::size_t c = 0; c < chunks; ++c) {
    min_ratio = std::min(min_ratio, partial[c]);
  }
  staged_min_ratio_ = min_ratio;
  return min_ratio;
}

RoundPipeline::~RoundPipeline() {
  if (pending_ && pending_offline_.valid()) pending_offline_.wait();
}

void RoundPipeline::join_pending(Incumbent& inc, ResourceMeter& meter) {
  if (!pending_) return;
  pending_ = false;
  stage_merge(pending_offline_, inc, meter, pending_stored_);
}

RoundPipeline::RoundReport RoundPipeline::run_round(std::size_t round,
                                                    double lambda,
                                                    DualState& state,
                                                    Incumbent& inc,
                                                    ResourceMeter& meter) {
  RoundReport report;
  // Defensive: a deferred Merge must land before this round touches the
  // incumbent or the stage meters (the solver normally joined already).
  join_pending(inc, meter);
  // Stage boundaries are safe points: no partially-applied state mutation
  // exists between stages, so a stop here loses at most buffer fills.
  options_.stop.throw_if_stopped("pipeline.multipliers");
  const double alpha = stage_multipliers(lambda, round);
  options_.stop.throw_if_stopped("pipeline.draw");
  const SamplingRound& draws = stage_draw(round);
  report.stored_edges = draws.stored_total();
  // OfflineResolve overlaps InnerRefine: the job reads only the frozen
  // draw and immutable inputs and writes only its future, so the overlap
  // is bitwise equivalent to running the stages back to back.
  Future<OfflineSolution> offline = stage_offline(draws);
  try {
    stage_inner(draws, alpha, state, inc, report);
  } catch (...) {
    // The detached job reads `this` and the frozen draw; join it before
    // the unwind can destroy either.
    if (offline.valid()) offline.wait();
    throw;
  }
  if (options_.cross_round) {
    // Cross-round pipelining: park the Merge. The offline job keeps
    // running while the caller opens the next round (the opening sweep
    // reads only the dual state and the immutable substrate table, the job
    // reads only the frozen draw and the table — no shared mutable state).
    // The draw stays frozen until the next stage_draw, which join_pending
    // always precedes.
    pending_offline_ = std::move(offline);
    pending_stored_ = draws.stored_total();
    pending_ = true;
  } else {
    stage_merge(offline, inc, meter, draws.stored_total());
  }
  return report;
}

double RoundPipeline::stage_multipliers(double lambda, std::size_t round) {
  const LevelGraph& lg = *lg_;
  const std::size_t m = substrate_->num_retained();
  const auto m_retained = static_cast<double>(m);
  const double eps = options_.eps;
  // PST multiplier temperature (Theorem 5): alpha ~ ln(m/eps)/(lambda eps).
  const double lambda_floor =
      std::max(lambda, eps / std::max(256.0, m_retained));
  const double alpha =
      2.0 * std::log(2.0 * m_retained / eps) / (lambda_floor * eps);

  // Promise multipliers from the staged ratios: exp sweep with exact max
  // reduction, then the additive floor — buffer passes, not input access.
  // Levels come from the level graph (solver state), not the attribute
  // table, so the sweep is identical on table-free backends.
  const EdgeId* rid = lg.retained().data();
  exp_floor_multipliers(
      pool_, options_.grain, lg, alpha, staged_min_ratio_,
      ctx_.cov_ratio.data(), m,
      [&lg, rid](std::size_t idx) { return lg.level(rid[idx]); },
      ctx_.promise, ctx_.cov_partial, ctx_.divisor);

  // Inclusion probabilities (sparsify/deferred), gathering each weight
  // class's records through the substrate's batched fetch (a table-view
  // copy on table-backed substrates, file record reads on the file-backed
  // one); all working memory in reusable scratch.
  access::Substrate* sub = substrate_;
  deferred_probabilities_into(
      substrate_->num_vertices(), m,
      [sub](const std::uint32_t* idxs, std::size_t count, Edge* out) {
        sub->fetch_edges(idxs, count, out);
      },
      ctx_.promise, options_.deferred, sample_rng_.bits(round, 1), ctx_.prob,
      ctx_.deferred_scratch, pool_);
  return alpha;
}

const SamplingRound& RoundPipeline::stage_draw(std::size_t round) {
  return substrate_->draw(ctx_.prob, options_.sparsifiers, round,
                          sample_rng_.seed());
}

Future<OfflineSolution> RoundPipeline::stage_offline(
    const SamplingRound& draws) {
  const SamplingRound* frozen = &draws;
  auto job = [this, frozen]() {
    // Materialize the union from the substrate's immutable stored-edge
    // attributes (job-local buffers: the job may run concurrently with
    // InnerRefine). The offline working set is a copy of edges the Draw
    // stage already charged (union <= stored incidences), so it consumes
    // no additional space budget in the paper's model.
    std::vector<EdgeId> ids;
    std::vector<Edge> edges;
    substrate_->materialize_union(frozen->union_support(), ids, edges);
    return solve_offline(ids, edges);
  };
  if (!options_.overlap_offline || pool_ == nullptr) {
    return Future<OfflineSolution>::immediate(job());
  }
  return pool_->submit_job(std::move(job));
}

void RoundPipeline::stage_inner(const SamplingRound& draws, double alpha,
                                DualState& state, Incumbent& inc,
                                RoundReport& report) {
  const double eps = options_.eps;
  for (std::size_t q = 0; q < draws.num_sparsifiers(); ++q) {
    // Inner-iteration boundary: each completed iteration's blend is a
    // whole dual step, so stopping between iterations leaves a valid
    // iterate (run_round's catch joins the offline job before unwinding).
    options_.stop.throw_if_stopped("pipeline.inner");
    // Deferred refinement: evaluate the CURRENT multipliers on exactly the
    // stored indices (no new data access). Sparsifier q's support is a
    // bit-filtered extraction of the round's frozen union.
    extract_sparsifier(draws, q);
    if (ctx_.ids.empty()) continue;
    gather_stored_attrs();
    covering_us_stored(state, alpha, ctx_.u_now);
    ctx_.us.resize(ctx_.ids.size());
    run_chunks(pool_, 0, ctx_.ids.size(), options_.grain,
               [&](std::size_t, std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) {
                   ctx_.us[i] = StoredMultiplier{
                       ctx_.ids[i], ctx_.u_now[i] / ctx_.sample_prob[i]};
                 }
               });
    build_zeta(state);

    const MicroResult mr = oracle_->run_lagrangian(ctx_.us, ctx_.zeta,
                                                   inc.beta,
                                                   &report.oracle_calls);
    ctx_.inner_meter.add_inner_iterations();
    if (mr.kind == MicroResult::Kind::kPrimal) {
      // The dual cannot make progress at this beta: the stored edges carry
      // a matching close to beta (Lemma 13). Raise beta (Algorithm 3 step
      // 5b) and continue.
      inc.beta *= (1.0 + eps);
      continue;
    }
    const double sigma =
        std::min(0.5, eps / (4.0 * alpha * 6.0));  // rho_o = 6 (LP4/LP5)
    state.blend(mr.x, sigma);
  }
  ctx_.inner_meter.add_oracle_calls(report.oracle_calls);
  // Per-round separation flow-work delta. The oracle's counters are
  // monotone over its lifetime; differencing against the last-seen snapshot
  // charges exactly this round's flows to this round's inner meter. The
  // separation work is a pure function of the oracle inputs, so the delta
  // is identical for any thread count, overlap mode or substrate.
  const SeparationStats sep = oracle_->separation_stats();
  ctx_.inner_meter.add_max_flows(sep.max_flows - sep_seen_.max_flows);
  ctx_.inner_meter.add_max_flows_saved(sep.flows_saved -
                                       sep_seen_.flows_saved);
  ctx_.inner_meter.add_gh_full_builds(sep.gh_full_builds -
                                      sep_seen_.gh_full_builds);
  ctx_.inner_meter.add_gh_incremental(sep.gh_incremental -
                                      sep_seen_.gh_incremental);
  ctx_.inner_meter.add_gh_tree_reuses(sep.gh_tree_reuses -
                                      sep_seen_.gh_tree_reuses);
  sep_seen_ = sep;
}

void RoundPipeline::stage_merge(Future<OfflineSolution>& offline,
                                Incumbent& inc, ResourceMeter& meter,
                                std::size_t stored_total) {
  const OfflineSolution sol = offline.get();
  merge_offline(sol, inc);
  // Aggregate the per-stage meters in fixed stage order — counter totals
  // are therefore identical whatever thread interleaving produced them.
  // (The draw's round/pass/store counters accumulate on the substrate
  // meter, which the solver merges once at the end of the solve.)
  meter.merge(ctx_.offline_meter);
  meter.merge(ctx_.inner_meter);
  ctx_.offline_meter.reset();
  ctx_.inner_meter.reset();
  // The round's samples are discarded once its iterations finish; peak
  // space is a per-round quantity.
  substrate_->release_stored(stored_total);
}

OfflineSolution RoundPipeline::solve_offline(
    const std::vector<EdgeId>& ids, const std::vector<Edge>& edges) const {
  Graph sub(substrate_->num_vertices());
  for (const Edge& edge : edges) {
    sub.add_edge(edge.u, edge.v, edge.w);
  }
  OfflineSolution out;
  out.bm = BMatching(lg_->graph().num_edges());
  if (unit_caps_) {
    const Matching m = approx_weighted_matching(sub, options_.offline);
    out.support.reserve(m.size());
    for (EdgeId local : m.edges()) {
      out.bm.set_multiplicity(ids[local], 1);
      out.support.push_back(ids[local]);
    }
  } else {
    const BMatching bm = approx_weighted_b_matching(sub, *b_);
    for (EdgeId local = 0; local < bm.num_edges(); ++local) {
      if (bm.multiplicity(local) > 0) {
        out.bm.set_multiplicity(ids[local], bm.multiplicity(local));
        out.support.push_back(ids[local]);
      }
    }
  }
  std::sort(out.support.begin(), out.support.end());
  for (EdgeId e : out.support) {
    out.value += static_cast<double>(out.bm.multiplicity(e)) *
                 lg_->graph().edge(e).w;
  }
  return out;
}

void RoundPipeline::merge_offline(const OfflineSolution& sol,
                                  Incumbent& inc) const {
  const double eps = options_.eps;
  if (sol.value > inc.value) {
    inc.value = sol.value;
    inc.best = sol.bm;
  }
  // Normalized (level-weight) value over the solution's support only — no
  // full-edge scan.
  double norm = 0;
  for (EdgeId e : sol.support) {
    if (lg_->level(e) >= 0) {
      norm += static_cast<double>(sol.bm.multiplicity(e)) *
              lg_->level_weight(lg_->level(e));
    }
  }
  // Algorithm 2 step 6 with a3 folded into eps: remember the raised beta.
  if (norm > inc.beta * (1.0 - eps) / (1.0 + eps)) {
    inc.beta = norm * (1.0 + eps) / (1.0 - eps);
  }
}

void RoundPipeline::gather_stored_attrs() {
  const std::size_t s = ctx_.store_idx.size();
  ctx_.store_attr.resize(s);
  const std::uint32_t* idxs = ctx_.store_idx.data();
  access::RetainedEdge* out = ctx_.store_attr.data();
  const std::vector<access::RetainedEdge>& table = substrate_->table();
  if (!table.empty()) {
    const access::RetainedEdge* rows = table.data();
    run_chunks(pool_, 0, s, options_.grain,
               [&](std::size_t, std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) {
                   out[i] = rows[idxs[i]];
                 }
               });
  } else {
    // Table-free (file-backed) substrate: stored_attr serves from its
    // per-round sample cache. Serial — the stored sample is o(m), and the
    // virtual per-index path does not belong inside pool workers.
    for (std::size_t i = 0; i < s; ++i) {
      out[i] = substrate_->stored_attr(idxs[i]);
    }
  }
}

void RoundPipeline::covering_us_stored(const DualState& state, double alpha,
                                       std::vector<double>& u) {
  const LevelGraph& lg = *lg_;
  const access::RetainedEdge* attr = ctx_.store_attr.data();
  const std::size_t s = ctx_.store_idx.size();
  const std::size_t grain = options_.grain;
  const std::size_t chunks = s == 0 ? 0 : (s + grain - 1) / grain;
  ctx_.u_now.resize(s);
  ctx_.cov_partial.assign(chunks, 1e300);
  double* ratio = ctx_.cov_ratio.data();  // reuse; sized >= s (s <= m)
  double* partial = ctx_.cov_partial.data();
  run_chunks(pool_, 0, s, grain,
             [&](std::size_t c, std::size_t lo, std::size_t hi) {
               double local_min = 1e300;
               for (std::size_t i = lo; i < hi; ++i) {
                 const access::RetainedEdge& re = attr[i];
                 ratio[i] =
                     state.cover_row(re.u, re.v, re.level) /
                     lg.level_weight(re.level);
                 local_min = std::min(local_min, ratio[i]);
               }
               partial[c] = local_min;
             });
  double min_ratio = 1e300;
  for (std::size_t c = 0; c < chunks; ++c) {
    min_ratio = std::min(min_ratio, partial[c]);
  }
  exp_floor_multipliers(
      pool_, grain, lg, alpha, min_ratio, ratio, s,
      [attr](std::size_t i) { return attr[i].level; }, u,
      ctx_.cov_partial, ctx_.divisor);
}

void RoundPipeline::extract_sparsifier(const SamplingRound& draws,
                                       std::size_t q) {
  const std::vector<std::uint32_t>& uni = draws.union_support();
  const std::uint32_t* masks = draws.masks().data();
  const EdgeId* rid = lg_->retained().data();
  const std::vector<double>& prob = ctx_.prob;
  const std::size_t u_size = uni.size();
  const std::size_t grain = options_.grain;
  const std::size_t chunks =
      u_size == 0 ? 0 : (u_size + grain - 1) / grain;
  ctx_.chunk_cursor.assign(chunks, 0);
  std::uint32_t* cursor = ctx_.chunk_cursor.data();
  run_chunks(pool_, 0, u_size, grain,
             [&](std::size_t c, std::size_t lo, std::size_t hi) {
               std::uint32_t count = 0;
               for (std::size_t i = lo; i < hi; ++i) {
                 count += (masks[uni[i]] >> q) & 1u;
               }
               cursor[c] = count;
             });
  std::uint32_t total = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::uint32_t count = cursor[c];
    cursor[c] = total;
    total += count;
  }
  ctx_.store_idx.resize(total);
  ctx_.ids.resize(total);
  ctx_.sample_prob.resize(total);
  std::uint32_t* sidx = ctx_.store_idx.data();
  EdgeId* ids = ctx_.ids.data();
  double* sp = ctx_.sample_prob.data();
  run_chunks(pool_, 0, u_size, grain,
             [&](std::size_t c, std::size_t lo, std::size_t hi) {
               std::uint32_t cur = cursor[c];
               for (std::size_t i = lo; i < hi; ++i) {
                 const std::uint32_t idx = uni[i];
                 if ((masks[idx] >> q) & 1u) {
                   sidx[cur] = idx;
                   ids[cur] = rid[idx];
                   sp[cur] = prob[idx];
                   ++cur;
                 }
               }
             });
}

void RoundPipeline::build_zeta(const DualState& state) {
  const LevelGraph& lg = *lg_;
  const access::RetainedEdge* attr = ctx_.store_attr.data();
  const double eps = options_.eps;
  const auto levels = static_cast<std::uint64_t>(lg.num_levels());
  const std::size_t s = ctx_.store_idx.size();
  const std::size_t grain = options_.grain;

  // zeta: packing multipliers on the active outer rows (i, k), built flat:
  // chunk-parallel packed-key emission, parallel sort + unique, then two
  // chunk-parallel exp sweeps (the max reduction is exact).
  ctx_.row_keys.resize(2 * s);
  std::uint64_t* row_keys = ctx_.row_keys.data();
  run_chunks(pool_, 0, s, grain,
             [&](std::size_t, std::size_t lo, std::size_t hi) {
               for (std::size_t i = lo; i < hi; ++i) {
                 const access::RetainedEdge& re = attr[i];
                 const auto k = static_cast<std::uint64_t>(re.level);
                 row_keys[2 * i] =
                     static_cast<std::uint64_t>(re.u) * levels + k;
                 row_keys[2 * i + 1] =
                     static_cast<std::uint64_t>(re.v) * levels + k;
               }
             });
  sort_keys(ctx_.row_keys, pool_, grain);
  ctx_.row_keys.erase(
      std::unique(ctx_.row_keys.begin(), ctx_.row_keys.end()),
      ctx_.row_keys.end());
  row_keys = ctx_.row_keys.data();

  const std::size_t rows = ctx_.row_keys.size();
  const std::size_t chunks = rows == 0 ? 0 : (rows + grain - 1) / grain;
  ctx_.expos.resize(rows);
  ctx_.cov_partial.assign(chunks, -1e300);
  double* expos = ctx_.expos.data();
  double* partial = ctx_.cov_partial.data();
  const double alpha_p =
      std::log(2.0 * (static_cast<double>(rows) + 1) / eps) * 6.0 / eps;
  run_chunks(pool_, 0, rows, grain,
             [&](std::size_t c, std::size_t lo, std::size_t hi) {
               double local_max = -1e300;
               for (std::size_t r = lo; r < hi; ++r) {
                 const auto i = static_cast<Vertex>(row_keys[r] / levels);
                 const int k = static_cast<int>(row_keys[r] % levels);
                 const double q_val = 3.0 * lg.level_weight(k);
                 expos[r] = alpha_p * state.po_row(i, k) / q_val;
                 local_max = std::max(local_max, expos[r]);
               }
               partial[c] = local_max;
             });
  double max_expo = -1e300;
  for (std::size_t c = 0; c < chunks; ++c) {
    max_expo = std::max(max_expo, partial[c]);
  }
  // Shift / exp_batch / divide as separate elementwise passes, all through
  // the clones-dispatched kernels (util/simd): alpha = -1 turns the fill
  // into the plain shift (multiply by exactly 1.0), and the divisor gather
  // feeds divide_batch. Bitwise identical to the scalar loops.
  ctx_.divisor.resize(rows);
  double* div = ctx_.divisor.data();
  run_chunks(pool_, 0, rows, grain,
             [&](std::size_t, std::size_t lo, std::size_t hi) {
               simd::fill_scaled_shift(expos + lo, expos + lo, hi - lo,
                                       -1.0, max_expo);
               simd::exp_batch(expos + lo, expos + lo, hi - lo);
               for (std::size_t r = lo; r < hi; ++r) {
                 const int k = static_cast<int>(row_keys[r] % levels);
                 div[r] = 3.0 * lg.level_weight(k);
               }
               simd::divide_batch(expos + lo, div + lo, hi - lo);
             });
  ctx_.zeta.clear();
  ctx_.zeta.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    ctx_.zeta.append(row_keys[r], expos[r]);
  }
}

}  // namespace dp::core
