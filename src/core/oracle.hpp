#pragma once
// The MicroOracle — Algorithm 5 / Lemma 14 of the paper — and the
// MiniOracle wrapper (Lemma 10) that binary-searches the Lagrange
// multiplier rho and convex-combines two MicroOracle outputs so that the
// outer packing constraint z^T Po x <= (13/12) z^T qo holds.
//
// Given stored-edge multipliers us (from a refined deferred sparsifier),
// packing multipliers zeta on the (i, k) rows, the current budget beta and
// eps, the oracle either:
//   (i)  signals PRIMAL progress — the stored edges support a b-matching of
//        weight close to beta (Lemma 13); the driver then re-solves offline
//        and raises beta; or
//   (ii) returns a sparse dual point x = {x_i(k)} / {z_{U,l}} satisfying the
//        Lagrangian covering inequality LagInner, which the fractional
//        covering loop blends into the dual state.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/dual_state.hpp"
#include "core/odd_sets.hpp"
#include "core/weight_levels.hpp"
#include "graph/graph.hpp"

namespace dp::core {

/// One stored edge with its refined multiplier u^s_{ijk}; the level k is
/// the edge's level in the LevelGraph.
struct StoredMultiplier {
  EdgeId edge;
  double us;
};

/// Sparse zeta_{ik} multipliers keyed by i * num_levels + k.
using ZetaMap = std::unordered_map<std::uint64_t, double>;

struct MicroResult {
  enum class Kind {
    kPrimal,  // case (i): beta is beatable on the stored edges
    kDual     // case (ii): x is a valid LagInner point
  };
  Kind kind = Kind::kDual;
  DualPoint x;          // meaningful for kDual (may be all-zero)
  double gamma = 0.0;   // diagnostic: the oracle's gamma value
};

struct OracleConfig {
  OddSetOptions odd;
  /// Separate odd sets on at most this many (lowest) active levels per call
  /// (each costs a Gomory-Hu tree). 0 = all active levels.
  std::size_t max_separation_levels = 4;
  /// Disable odd-set separation entirely (bipartite mode).
  bool use_odd_sets = true;
};

/// Candidate odd sets per level, reusable across the rho probes of one
/// Lagrangian search: separation (a Gomory-Hu tree per level) runs once;
/// every probe re-validates Equation (4) per candidate, which keeps
/// soundness independent of the cache.
struct OddSetCache {
  bool populated = false;
  /// candidate sets per separated level (level, sets).
  std::vector<std::pair<int, std::vector<std::vector<Vertex>>>> by_level;
};

class MicroOracle {
 public:
  MicroOracle(const LevelGraph& lg, const Capacities& b, OracleConfig config)
      : lg_(&lg), b_(&b), config_(std::move(config)) {}

  /// One Algorithm-5 invocation at a fixed Lagrange multiplier rho (the
  /// paper's varrho). `cache`, if given, amortizes odd-set separation
  /// across invocations with the same stored multipliers.
  MicroResult run(const std::vector<StoredMultiplier>& us,
                  const ZetaMap& zeta, double beta, double rho,
                  OddSetCache* cache = nullptr) const;

  /// Lemma 10 wrapper: binary search over rho; returns either a primal
  /// signal or a dual point additionally satisfying
  /// zeta^T Po x <= (13/12) zeta^T qo. `calls` (optional) accumulates the
  /// number of MicroOracle invocations.
  MicroResult run_lagrangian(const std::vector<StoredMultiplier>& us,
                             const ZetaMap& zeta, double beta,
                             std::size_t* calls = nullptr) const;

  /// zeta-weighted outer packing value of a dual point:
  /// sum_{(i,k)} zeta_{ik} * (2 x_i(k) + sum_{l<=k} sum_{U ni i} z_{U,l}).
  double weighted_po(const DualPoint& x, const ZetaMap& zeta) const;

  /// zeta^T qo = sum zeta_{ik} * 3 wHat_k.
  double weighted_qo(const ZetaMap& zeta) const;

 private:
  const LevelGraph* lg_;
  const Capacities* b_;
  OracleConfig config_;
};

/// s1 * a + s2 * b on sparse dual points.
DualPoint combine_points(const DualPoint& a, double s1, const DualPoint& b,
                         double s2);

}  // namespace dp::core
