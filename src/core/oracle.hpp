#pragma once
// The MicroOracle — Algorithm 5 / Lemma 14 of the paper — and the
// MiniOracle wrapper (Lemma 10) that binary-searches the Lagrange
// multiplier rho and convex-combines two MicroOracle outputs so that the
// outer packing constraint z^T Po x <= (13/12) z^T qo holds.
//
// Given stored-edge multipliers us (from a refined deferred sparsifier),
// packing multipliers zeta on the (i, k) rows, the current budget beta and
// eps, the oracle either:
//   (i)  signals PRIMAL progress — the stored edges support a b-matching of
//        weight close to beta (Lemma 13); the driver then re-solves offline
//        and raises beta; or
//   (ii) returns a sparse dual point x = {x_i(k)} / {z_{U,l}} satisfying the
//        Lagrangian covering inequality LagInner, which the fractional
//        covering loop blends into the dual state.
//
// This is the solver's hot path. All dual variables live in flat
// level-indexed buffers (core/flat_duals.hpp): dense scratch is reused
// across invocations, per-vertex indexes come from sorting packed (i, k)
// keys instead of hashing, and the per-vertex sweep plus the weighted_po
// membership scan run on a thread pool with FIXED chunk boundaries, so
// results are bitwise identical for any thread count. The seed's hash-map
// implementation is retained in core/oracle_ref.hpp as the equivalence
// baseline for tests and benchmarks.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/dual_state.hpp"
#include "core/flat_duals.hpp"
#include "core/odd_sets.hpp"
#include "core/weight_levels.hpp"
#include "graph/graph.hpp"
#include "util/thread_pool.hpp"

namespace dp::core {

/// One stored edge with its refined multiplier u^s_{ijk}; the level k is
/// the edge's level in the LevelGraph.
struct StoredMultiplier {
  EdgeId edge;
  double us;
};

/// Sparse zeta_{ik} multipliers keyed by i * num_levels + k, sorted by key.
/// (The name survives from the unordered_map era; the representation is a
/// flat sorted vector now.)
using ZetaMap = SparseDuals;

struct MicroResult {
  enum class Kind {
    kPrimal,  // case (i): beta is beatable on the stored edges
    kDual     // case (ii): x is a valid LagInner point
  };
  Kind kind = Kind::kDual;
  DualPoint x;          // meaningful for kDual (may be all-zero)
  double gamma = 0.0;   // diagnostic: the oracle's gamma value
};

struct OracleConfig {
  OddSetOptions odd;
  /// Separate odd sets on at most this many (lowest) active levels per call
  /// (each costs a Gomory-Hu tree). 0 = all active levels.
  std::size_t max_separation_levels = 4;
  /// Disable odd-set separation entirely (bipartite mode).
  bool use_odd_sets = true;
  /// Worker threads for the per-vertex sweep and membership scans
  /// (0 = hardware concurrency, 1 = serial). Results are independent of
  /// this value.
  std::size_t threads = 0;
  /// Below this many work items a parallel section runs inline; chunk
  /// boundaries are always derived from this grain, never the pool size.
  std::size_t parallel_grain = 1024;
};

/// Candidate odd sets per level, reusable across the rho probes of one
/// Lagrangian search: separation (an arena-backed Gomory-Hu pass per
/// level) runs once; every probe re-validates Equation (4) per candidate,
/// which keeps soundness independent of the cache. The per-candidate
/// static aux (b-weight and internal us mass) is also cached — it depends
/// only on the stored multipliers, which are fixed across the probes of
/// one Lagrangian search — so a probe recomputes nothing but the
/// rho-dependent zbar terms.
struct OddSetCache {
  struct LevelEntry {
    int level = -1;
    std::vector<std::vector<Vertex>> sets;
    /// Per-candidate ||U||_b and sum of us over edges internal to U;
    /// filled lazily on first use (aux_valid), identical for every probe.
    std::vector<std::int64_t> bw;
    std::vector<double> us_mass;
    bool aux_valid = false;
  };
  bool populated = false;
  std::vector<LevelEntry> by_level;

  LevelEntry* find(int level) {
    for (LevelEntry& e : by_level) {
      if (e.level == level) return &e;
    }
    return nullptr;
  }
  const LevelEntry* find(int level) const {
    for (const LevelEntry& e : by_level) {
      if (e.level == level) return &e;
    }
    return nullptr;
  }
};

/// NOT const-thread-safe: one oracle instance owns reusable mutable
/// scratch and a worker pool, so a single caller drives it at a time (the
/// parallelism lives *inside* an invocation). Use one MicroOracle per
/// concurrent caller.
class MicroOracle {
 public:
  MicroOracle(const LevelGraph& lg, const Capacities& b, OracleConfig config);
  ~MicroOracle();

  MicroOracle(const MicroOracle&) = delete;
  MicroOracle& operator=(const MicroOracle&) = delete;
  MicroOracle(MicroOracle&&) noexcept;
  MicroOracle& operator=(MicroOracle&&) noexcept;

  /// One Algorithm-5 invocation at a fixed Lagrange multiplier rho (the
  /// paper's varrho). `cache`, if given, amortizes odd-set separation
  /// across invocations with the same stored multipliers.
  MicroResult run(const std::vector<StoredMultiplier>& us,
                  const ZetaMap& zeta, double beta, double rho,
                  OddSetCache* cache = nullptr) const;

  /// Lemma 10 wrapper: binary search over rho; returns either a primal
  /// signal or a dual point additionally satisfying
  /// zeta^T Po x <= (13/12) zeta^T qo. `calls` (optional) accumulates the
  /// number of MicroOracle invocations.
  MicroResult run_lagrangian(const std::vector<StoredMultiplier>& us,
                             const ZetaMap& zeta, double beta,
                             std::size_t* calls = nullptr) const;

  /// zeta-weighted outer packing value of a dual point:
  /// sum_{(i,k)} zeta_{ik} * (2 x_i(k) + sum_{l<=k} sum_{U ni i} z_{U,l}).
  double weighted_po(const DualPoint& x, const ZetaMap& zeta) const;

  /// zeta^T qo = sum zeta_{ik} * 3 wHat_k.
  double weighted_qo(const ZetaMap& zeta) const;

  /// The oracle's lazily created worker pool (nullptr when
  /// config.threads == 1). The solver shares it for its own sweeps
  /// (lambda, covering_us) so one solve runs exactly one pool.
  ThreadPool* worker_pool() const { return pool(); }

  /// Aggregate Gomory-Hu / max-flow counters of the per-level separation
  /// engines this oracle owns (monotone across invocations; summed in
  /// fixed job-slot order, so identical for any thread count).
  SeparationStats separation_stats() const;

 private:
  struct Scratch;  // reusable flat buffers; defined in oracle.cpp

  Scratch& scratch() const;
  ThreadPool* pool() const;

  const LevelGraph* lg_;
  const Capacities* b_;
  OracleConfig config_;
  mutable std::unique_ptr<Scratch> scratch_;
  mutable std::unique_ptr<ThreadPool> pool_;
};

/// s1 * a + s2 * b on sparse dual points (merge-join on the sorted keys).
DualPoint combine_points(const DualPoint& a, double s1, const DualPoint& b,
                         double s2);

}  // namespace dp::core
