#include "core/oracle_ref.hpp"

#include <algorithm>
#include <cmath>

namespace dp::core::ref {

namespace {

double lookup(const MapDuals& zeta, std::uint64_t key) {
  const auto it = zeta.find(key);
  return it == zeta.end() ? 0.0 : it->second;
}

/// Sum of wHat_l for l in [lo, hi], by the seed's O(L) loop (the flat path
/// answers the same query from prefix sums).
double level_weight_range(const LevelGraph& lg, int lo, int hi) {
  double s = 0;
  for (int l = lo; l <= hi; ++l) s += lg.level_weight(l);
  return s;
}

MapDualPoint combine_points_map(const MapDualPoint& a, double s1,
                                const MapDualPoint& b, double s2) {
  MapDualPoint out;
  for (const auto& [key, value] : a.xik) {
    if (value > 0) out.xik[key] += s1 * value;
  }
  for (const auto& [key, value] : b.xik) {
    if (value > 0) out.xik[key] += s2 * value;
  }
  for (const OddSetVar& var : a.odd_sets) {
    if (var.value > 0) {
      out.odd_sets.push_back(OddSetVar{var.level, var.members,
                                       s1 * var.value});
    }
  }
  for (const OddSetVar& var : b.odd_sets) {
    if (var.value > 0) {
      out.odd_sets.push_back(OddSetVar{var.level, var.members,
                                       s2 * var.value});
    }
  }
  return out;
}

MicroResult export_result(MicroResult::Kind kind, double gamma,
                          const MapDualPoint& x) {
  MicroResult out;
  out.kind = kind;
  out.gamma = gamma;
  out.x.xik = to_sparse(x.xik);
  out.x.odd_sets = x.odd_sets;
  return out;
}

}  // namespace

MapDuals to_map(const SparseDuals& sparse) {
  MapDuals out;
  out.reserve(sparse.size() * 2);
  for (const auto& [key, value] : sparse) out.emplace(key, value);
  return out;
}

SparseDuals to_sparse(const MapDuals& map) {
  std::vector<std::pair<std::uint64_t, double>> entries(map.begin(),
                                                        map.end());
  std::sort(entries.begin(), entries.end());
  SparseDuals out;
  out.reserve(entries.size());
  for (const auto& [key, value] : entries) out.append(key, value);
  return out;
}

double MicroOracleRef::weighted_po_map(const MapDualPoint& x,
                                       const MapDuals& zeta) const {
  const int L = lg_->num_levels();
  double total = 0;
  // 2 x_i(k) terms.
  for (const auto& [key, zeta_val] : zeta) {
    const auto it = x.xik.find(key);
    if (it != x.xik.end()) total += zeta_val * 2.0 * it->second;
  }
  // Odd-set terms: z_{U,l} enters row (i,k) for every i in U and k >= l.
  if (!x.odd_sets.empty()) {
    // Index zeta by vertex for the membership sweep.
    std::unordered_map<Vertex, std::vector<std::pair<int, double>>> by_vertex;
    for (const auto& [key, zeta_val] : zeta) {
      const auto i = static_cast<Vertex>(key / L);
      const int k = static_cast<int>(key % L);
      by_vertex[i].emplace_back(k, zeta_val);
    }
    for (const OddSetVar& var : x.odd_sets) {
      for (Vertex v : var.members) {
        const auto it = by_vertex.find(v);
        if (it == by_vertex.end()) continue;
        for (const auto& [k, zeta_val] : it->second) {
          if (k >= var.level) total += zeta_val * var.value;
        }
      }
    }
  }
  return total;
}

double MicroOracleRef::weighted_qo_map(const MapDuals& zeta) const {
  const int L = lg_->num_levels();
  double total = 0;
  for (const auto& [key, zeta_val] : zeta) {
    const int k = static_cast<int>(key % L);
    total += zeta_val * 3.0 * lg_->level_weight(k);
  }
  return total;
}

double MicroOracleRef::weighted_po(const DualPoint& x,
                                   const SparseDuals& zeta) const {
  MapDualPoint mx;
  mx.xik = to_map(x.xik);
  mx.odd_sets = x.odd_sets;
  return weighted_po_map(mx, to_map(zeta));
}

double MicroOracleRef::weighted_qo(const SparseDuals& zeta) const {
  return weighted_qo_map(to_map(zeta));
}

MicroResult MicroOracleRef::run(const std::vector<StoredMultiplier>& us,
                                const SparseDuals& zeta, double beta,
                                double rho, OddSetCache* cache) const {
  return run_map(us, to_map(zeta), beta, rho, cache);
}

MicroResult MicroOracleRef::run_map(const std::vector<StoredMultiplier>& us,
                                    const MapDuals& zeta, double beta,
                                    double rho, OddSetCache* cache) const {
  const LevelGraph& lg = *lg_;
  const Capacities& b = *b_;
  const int L = lg.num_levels();
  const double eps = lg.eps();
  auto key = [L](Vertex i, int k) {
    return static_cast<std::uint64_t>(i) * L + k;
  };

  MapDualPoint x;
  double result_gamma = 0.0;

  // ---- gamma and per-(i,k) us sums (Step 1). ----
  MapDuals sum_us;
  double gamma = 0;
  for (const StoredMultiplier& sm : us) {
    const Edge& e = lg.graph().edge(sm.edge);
    const int k = lg.level(sm.edge);
    if (k < 0 || sm.us <= 0) continue;
    sum_us[key(e.u, k)] += sm.us;
    sum_us[key(e.v, k)] += sm.us;
    gamma += lg.level_weight(k) * sm.us;
  }
  for (const auto& [kk, z] : zeta) {
    const int k = static_cast<int>(kk % L);
    gamma -= 3.0 * rho * lg.level_weight(k) * z;
  }
  result_gamma = gamma;
  if (gamma <= 0) {
    // x = 0 satisfies LagInner trivially.
    return export_result(MicroResult::Kind::kDual, result_gamma, x);
  }

  // ---- Pos(i) and A_i(k) = sum_us - 2 rho zeta (Step 2). ----
  std::unordered_map<Vertex, std::vector<std::pair<int, double>>> pos;
  for (const auto& [kk, s] : sum_us) {
    const auto i = static_cast<Vertex>(kk / L);
    const int k = static_cast<int>(kk % L);
    const double a = s - 2.0 * rho * lookup(zeta, kk);
    if (a > 0) pos[i].emplace_back(k, a);
  }
  for (auto& [i, vec] : pos) std::sort(vec.begin(), vec.end());

  // ---- k*_i and Viol(V) (Steps 3-4). ----
  struct Violation {
    Vertex i;
    int kstar;
    double delta;
  };
  std::vector<Violation> violations;
  double gamma_v = 0;
  for (const auto& [i, vec] : pos) {
    const std::size_t t_all = vec.size();
    // prefW[t] = sum_{s < t} wHat_{k_s} A_s ; sufA[t] = sum_{s >= t} A_s.
    std::vector<double> pref(t_all + 1, 0.0), suf(t_all + 1, 0.0);
    for (std::size_t s = 0; s < t_all; ++s) {
      pref[s + 1] = pref[s] + lg.level_weight(vec[s].first) * vec[s].second;
    }
    for (std::size_t s = t_all; s-- > 0;) {
      suf[s] = suf[s + 1] + vec[s].second;
    }
    std::size_t t = t_all;  // count of pos levels <= current l
    const double bi = static_cast<double>(b[i]);
    for (int l = L - 1; l >= 0; --l) {
      while (t > 0 && vec[t - 1].first > l) --t;
      const double wl = lg.level_weight(l);
      const double delta = pref[t] + wl * suf[t];
      if (delta > gamma * bi * wl / beta) {
        violations.push_back(Violation{i, l, delta});
        gamma_v += delta;
        break;  // largest such l
      }
    }
  }

  // ---- Case A (Step 5-7): vertex duals absorb the violation mass. ----
  if (gamma_v >= eps * gamma / 24.0) {
    for (const Violation& vl : violations) {
      for (const auto& [k, a] : pos[vl.i]) {
        const double w = lg.level_weight(std::min(k, vl.kstar));
        x.xik[key(vl.i, k)] = gamma * w / gamma_v;
      }
    }
    return export_result(MicroResult::Kind::kDual, result_gamma, x);
  }

  // ---- Step 9: raise zeta to zbar on violated (i, k <= k*). ----
  MapDuals zbar = zeta;
  double gamma_prime = gamma;
  for (const Violation& vl : violations) {
    for (const auto& [k, a] : pos[vl.i]) {
      if (k > vl.kstar) continue;
      const std::uint64_t kk = key(vl.i, k);
      const double replacement = sum_us[kk] / (2.0 * rho);
      const double old = lookup(zbar, kk);
      if (replacement > old) {
        zbar[kk] = replacement;
        gamma_prime -= 3.0 * rho * lg.level_weight(k) * (replacement - old);
      }
    }
  }

  if (!config_.use_odd_sets) {
    return export_result(MicroResult::Kind::kPrimal, result_gamma, x);
  }

  // ---- Odd-set phase (Steps 11-19, with gap lumping). ----
  // Active levels = levels holding stored edges, descending. K(l) is
  // constant between consecutive active levels, so the per-level variables
  // z_{U,l} of a gap are lumped at the gap's top (active) level with weight
  // sum_{l in gap} wHat_l — exactly equivalent for every covering / outer
  // packing row because no edge lives strictly inside a gap.
  std::vector<int> active_levels;
  {
    std::vector<char> has(L, 0);
    for (const StoredMultiplier& sm : us) {
      const int k = lg.level(sm.edge);
      if (k >= 0 && sm.us > 0) has[k] = 1;
    }
    for (int k = L - 1; k >= 0; --k) {
      if (has[k]) active_levels.push_back(k);
    }
  }
  // Restrict separation to the lowest few active levels (each costs a
  // Gomory-Hu tree). Lower levels include more edges, so they dominate.
  std::size_t first = 0;
  if (config_.max_separation_levels > 0 &&
      active_levels.size() > config_.max_separation_levels) {
    first = active_levels.size() - config_.max_separation_levels;
  }

  // Per-vertex zbar entries sorted by level for suffix sums.
  std::unordered_map<Vertex, std::vector<std::pair<int, double>>>
      zbar_by_vertex;
  for (const auto& [kk, z] : zbar) {
    if (z > 0) {
      zbar_by_vertex[static_cast<Vertex>(kk / L)].emplace_back(
          static_cast<int>(kk % L), z);
    }
  }
  auto zbar_suffix = [&](Vertex i, int l) {
    const auto it = zbar_by_vertex.find(i);
    if (it == zbar_by_vertex.end()) return 0.0;
    double s = 0;
    for (const auto& [k, z] : it->second) {
      if (k >= l) s += z;
    }
    return s;
  };

  struct LevelFamily {
    int level;
    double gap_weight;
    std::vector<std::vector<Vertex>> sets;
    std::vector<double> delta;
  };
  std::vector<LevelFamily> families;
  double gamma_os = 0;
  const double q_scale = (1.0 - eps / 4.0) * beta / gamma;

  for (std::size_t a = first; a < active_levels.size(); ++a) {
    const int l = active_levels[a];
    const int gap_lo = (a + 1 < active_levels.size())
                           ? active_levels[a + 1] + 1
                           : 0;
    // The lowest separated level also absorbs every level below it.
    const int effective_lo = (a == active_levels.size() - 1) ? 0 : gap_lo;
    const double gap_w = level_weight_range(lg, effective_lo, l);

    // Candidate separation (a Gomory-Hu tree per level) runs once per
    // cache lifetime; Equation (4) below re-validates every candidate for
    // the current rho, so reuse never costs soundness.
    const std::vector<std::vector<Vertex>>* candidates = nullptr;
    std::vector<std::vector<Vertex>> fresh;
    if (cache != nullptr && cache->populated) {
      const OddSetCache::LevelEntry* entry = cache->find(l);
      if (entry == nullptr) continue;  // level had no candidates
      candidates = &entry->sets;
    } else {
      std::vector<OddSetQueryEdge> q_edges;
      for (const StoredMultiplier& sm : us) {
        const int k = lg.level(sm.edge);
        if (k < l || sm.us <= 0) continue;
        const Edge& e = lg.graph().edge(sm.edge);
        q_edges.push_back(OddSetQueryEdge{e.u, e.v, q_scale * sm.us});
      }
      if (q_edges.empty()) continue;
      std::vector<double> q_hat(lg.graph().num_vertices(), 0.0);
      for (std::size_t v = 0; v < q_hat.size(); ++v) {
        q_hat[v] = static_cast<double>(b[static_cast<Vertex>(v)]) +
                   2.0 * q_scale * rho *
                       zbar_suffix(static_cast<Vertex>(v), l);
      }
      fresh = find_dense_odd_sets(lg.graph().num_vertices(), q_edges, q_hat,
                                  b, config_.odd);
      if (cache != nullptr) {
        cache->by_level.emplace_back();
        cache->by_level.back().level = l;
        cache->by_level.back().sets = fresh;
      }
      candidates = &fresh;
    }

    LevelFamily family;
    family.level = l;
    family.gap_weight = gap_w;
    for (const auto& set : *candidates) {
      // Delta(U, l) = sum_{k>=l} ( sum_{edges in U} us - rho sum_i zbar ).
      double delta = 0;
      for (const StoredMultiplier& sm : us) {
        const int k = lg.level(sm.edge);
        if (k < l || sm.us <= 0) continue;
        const Edge& e = lg.graph().edge(sm.edge);
        if (std::binary_search(set.begin(), set.end(), e.u) &&
            std::binary_search(set.begin(), set.end(), e.v)) {
          delta += sm.us;
        }
      }
      for (Vertex v : set) delta -= rho * zbar_suffix(v, l);
      if (delta <= 0) continue;
      // Revalidate Equation (4): the set must be dense enough that
      // q_scale * delta covers floor(||U||_b / 2).
      std::int64_t bw = 0;
      for (Vertex v : set) bw += b[v];
      const double need = std::floor(static_cast<double>(bw) / 2.0);
      if (q_scale * delta < need) continue;
      family.sets.push_back(set);
      family.delta.push_back(delta);
      gamma_os += gap_w * delta;
    }
    if (!family.sets.empty()) families.push_back(std::move(family));
  }
  if (cache != nullptr) cache->populated = true;

  // ---- Case B (Steps 16-18): odd-set duals absorb the mass. ----
  if (gamma_os >= eps * gamma_prime / 24.0 && gamma_prime > 0) {
    for (const LevelFamily& family : families) {
      for (std::size_t s = 0; s < family.sets.size(); ++s) {
        OddSetVar var;
        var.level = family.level;
        var.members = family.sets[s];
        var.value = gamma_prime * family.gap_weight / gamma_os;
        x.odd_sets.push_back(std::move(var));
      }
    }
    return export_result(MicroResult::Kind::kDual, result_gamma, x);
  }

  // ---- Case C (Steps 20-21): primal progress (Lemma 13 applies). ----
  return export_result(MicroResult::Kind::kPrimal, result_gamma, x);
}

MicroResult MicroOracleRef::run_lagrangian(
    const std::vector<StoredMultiplier>& us, const SparseDuals& zeta,
    double beta, std::size_t* calls) const {
  const LevelGraph& lg = *lg_;
  const MapDuals zeta_map = to_map(zeta);
  double usc = 0;
  for (const StoredMultiplier& sm : us) {
    const int k = lg.level(sm.edge);
    if (k >= 0 && sm.us > 0) usc += lg.level_weight(k) * sm.us;
  }
  OddSetCache cache;  // one separation pass amortized over all rho probes
  // The seed kept map-typed intermediate points through the whole search;
  // convert only the final answer.
  struct MapResult {
    MicroResult::Kind kind;
    MapDualPoint x;
    double gamma;
  };
  auto invoke = [&](double rho) {
    if (calls != nullptr) ++(*calls);
    const MicroResult r = run_map(us, zeta_map, beta, rho, &cache);
    MapResult m;
    m.kind = r.kind;
    m.gamma = r.gamma;
    m.x.xik = to_map(r.x.xik);
    m.x.odd_sets = r.x.odd_sets;
    return m;
  };
  auto finish = [&](const MapResult& m) {
    return export_result(m.kind, m.gamma, m.x);
  };

  const double zq = weighted_qo_map(zeta_map);
  if (zq <= 0 || usc <= 0) {
    // No outer packing pressure: a single invocation suffices.
    return finish(invoke(1.0));
  }
  const double eps = lg.eps();
  const double upsilon = (13.0 / 12.0) * zq;
  const double rho0 = 12.0 * usc / (13.0 * zq);

  double rho_lo = eps * usc / (16.0 * zq);
  MapResult low = invoke(rho_lo);
  if (low.kind == MicroResult::Kind::kPrimal) return finish(low);
  double po_lo = weighted_po_map(low.x, zeta_map);
  if (po_lo <= upsilon) return finish(low);

  // Grow rho until the outer packing constraint is met (x = 0 is returned
  // once gamma <= 0, which trivially satisfies it).
  double rho_hi = rho0;
  MapResult high = invoke(rho_hi);
  if (high.kind == MicroResult::Kind::kPrimal) return finish(high);
  double po_hi = weighted_po_map(high.x, zeta_map);
  int guard = 0;
  while (po_hi > upsilon && guard++ < 16) {
    rho_hi *= 2.0;
    high = invoke(rho_hi);
    if (high.kind == MicroResult::Kind::kPrimal) return finish(high);
    po_hi = weighted_po_map(high.x, zeta_map);
  }
  if (po_hi > upsilon) return finish(high);  // give up; still LagInner

  // Binary search to a rho interval of width eps * rho0 / 16 (Lemma 10).
  int iters = 0;
  while (rho_hi - rho_lo > eps * rho0 / 16.0 && iters++ < 24) {
    const double mid = 0.5 * (rho_lo + rho_hi);
    MapResult m = invoke(mid);
    if (m.kind == MicroResult::Kind::kPrimal) return finish(m);
    const double po_mid = weighted_po_map(m.x, zeta_map);
    if (po_mid <= upsilon) {
      rho_hi = mid;
      high = std::move(m);
      po_hi = po_mid;
    } else {
      rho_lo = mid;
      low = std::move(m);
      po_lo = po_mid;
    }
  }
  // Convex combination with s1 * po_lo + s2 * po_hi = upsilon.
  const double denom = po_lo - po_hi;
  double s1 = denom > 1e-12 ? (upsilon - po_hi) / denom : 0.0;
  s1 = std::clamp(s1, 0.0, 1.0);
  MapResult result;
  result.kind = MicroResult::Kind::kDual;
  result.gamma = high.gamma;
  result.x = combine_points_map(low.x, s1, high.x, 1.0 - s1);
  return finish(result);
}

}  // namespace dp::core::ref
