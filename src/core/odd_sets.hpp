#pragma once
// Dense odd-set separation — Lemmas 16, 24 and 25 of the paper.
//
// Given non-negative edge values q_ij and vertex values qHat_i with
// sum_j q_ij <= qHat_i, find a maximal collection of MUTUALLY DISJOINT odd
// sets U (||U||_b odd, 3 <= |U|, ||U||_b <= 4/eps) whose internal q-mass is
// large:  sum_{(i,j) in U} q_ij >= (sum_{i in U} qHat_i - 1) / 2.
//
// Following Lemma 24, values are discretized by 8 eps^-3 into an auxiliary
// unweighted multigraph H with a special node s absorbing each vertex's
// deficiency qHat_i - sum_j q_ij; dense odd sets are exactly the odd cuts of
// H with capacity below kappa = floor(8 eps^-3), found Padberg-Rao style on
// a Gomory-Hu tree of H (Lemma 25). The tree is built on an arena-backed
// CSR flow network (graph/flow_arena.hpp) that is constructed once and
// reset between the Gusfield flows; the residual rounds that make the
// collection maximal contract taken vertices in place instead of
// rebuilding H. Above the configured size limit an exhaustive tree search
// is replaced by a component/triangle heuristic — missing a set only slows
// dual progress, it never breaks soundness because the MicroOracle
// revalidates Equation (4) for every candidate.

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/gomory_hu.hpp"
#include "graph/graph.hpp"

namespace dp::core {

struct OddSetQueryEdge {
  Vertex u;
  Vertex v;
  double q;
};

/// Monotone counters for the exact separation path's Gomory-Hu / max-flow
/// work (Lemma 25): flows actually run, flows skipped by the incremental
/// per-subtree reuse after contraction, and how each tree (re)build ran.
/// Summed across the oracle's per-level separation engines in fixed job
/// order, so totals are identical for any thread count.
struct SeparationStats {
  std::uint64_t max_flows = 0;
  std::uint64_t flows_saved = 0;
  std::uint64_t gh_full_builds = 0;
  std::uint64_t gh_incremental = 0;
  std::uint64_t gh_tree_reuses = 0;
};

struct OddSetOptions {
  double eps = 0.1;
  /// Max ||U||_b of a returned set (0 = use 4/eps).
  std::int64_t max_set_b = 0;
  /// Use the exact Gomory-Hu search only when the number of active vertices
  /// is at most this; otherwise use the heuristic finder.
  std::size_t gomory_hu_limit = 1200;
};

/// Reusable separation engine. Owns flat scratch with touched-entry resets,
/// so repeated calls — the per-level fan-out of one oracle invocation, or
/// successive residual rounds — run without n-sized allocations in the
/// steady state. One instance per concurrent caller (find() mutates the
/// scratch); output is a pure function of the arguments, identical to the
/// find_dense_odd_sets free function.
class OddSetSeparator {
 public:
  /// Disjoint dense odd sets (each sorted by vertex id). `q_hat` must have
  /// one entry per vertex (entries for inactive vertices are ignored).
  std::vector<std::vector<Vertex>> find(
      std::size_t n, const std::vector<OddSetQueryEdge>& q_edges,
      const std::vector<double>& q_hat, const Capacities& b,
      const OddSetOptions& options);

  /// Flow-work counters accumulated across every find() on this engine.
  SeparationStats stats() const;

 private:
  void ensure(std::size_t n);
  std::uint32_t root_of(std::uint32_t v) noexcept;

  std::vector<std::vector<Vertex>> heuristic(
      const std::vector<OddSetQueryEdge>& q,
      const std::vector<double>& q_hat, const Capacities& b,
      std::int64_t max_b);

  std::vector<std::vector<Vertex>> exact(
      const std::vector<OddSetQueryEdge>& q,
      const std::vector<double>& q_hat, const Capacities& b,
      std::int64_t kappa, double unit, std::int64_t max_b, int max_rounds);

  // All n-sized buffers hold their rest value between calls (flags 0,
  // incident 0, parent identity, comp -1); find() restores them by walking
  // the touched (active) entries only.
  std::vector<char> seen_;
  std::vector<double> incident_;
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> rank_;
  std::vector<std::int32_t> comp_of_;
  std::vector<char> taken_;
  std::vector<Vertex> active_;
  std::vector<std::uint32_t> comp_counts_;
  std::vector<std::uint32_t> comp_off_;
  std::vector<std::uint32_t> comp_cursor_;
  std::vector<Vertex> comp_members_;
  std::vector<std::pair<double, std::vector<Vertex>>> candidates_;
  // Exact-path scratch (active-set sized, reused across rounds and calls:
  // the arena and tree keep their buffers, everything else is assign()ed
  // per call without reallocation in the steady state).
  FlowArena net_;
  GomoryHuTree tree_;
  // Tree-reuse token: a residual round (or a repeat call) whose network is
  // unchanged since tree_ was built skips Gusfield's n-1 max-flows; after a
  // contraction, the stamped cut rows drive the incremental replay that
  // recomputes only the flows the contraction touched.
  GomoryHuStamp gh_stamp_;
  // The most recent residual contraction, consumed by the next round's
  // gomory_hu_contract_update.
  GomoryHuContraction gh_delta_;
  bool gh_delta_pending_ = false;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> raw_;
  std::vector<ArenaEdge> agg_;
  std::vector<std::int64_t> incident_cap_;
  std::vector<std::int64_t> deficiency_;
  std::vector<std::size_t> s_edge_;
  std::vector<char> alive_;
  std::vector<char> fresh_;
  std::vector<char> inside_;
  std::vector<std::uint32_t> side_;
};

/// Stateless convenience wrapper around a throwaway OddSetSeparator.
std::vector<std::vector<Vertex>> find_dense_odd_sets(
    std::size_t n, const std::vector<OddSetQueryEdge>& q_edges,
    const std::vector<double>& q_hat, const Capacities& b,
    const OddSetOptions& options);

}  // namespace dp::core
