#pragma once
// Dense odd-set separation — Lemmas 16, 24 and 25 of the paper.
//
// Given non-negative edge values q_ij and vertex values qHat_i with
// sum_j q_ij <= qHat_i, find a maximal collection of MUTUALLY DISJOINT odd
// sets U (||U||_b odd, 3 <= |U|, ||U||_b <= 4/eps) whose internal q-mass is
// large:  sum_{(i,j) in U} q_ij >= (sum_{i in U} qHat_i - 1) / 2.
//
// Following Lemma 24, values are discretized by 8 eps^-3 into an auxiliary
// unweighted multigraph H with a special node s absorbing each vertex's
// deficiency qHat_i - sum_j q_ij; dense odd sets are exactly the odd cuts of
// H with capacity below kappa = floor(8 eps^-3), found Padberg-Rao style on
// a Gomory-Hu tree of H (Lemma 25). Above the configured size limit an
// exhaustive tree search is replaced by a component/triangle heuristic —
// missing a set only slows dual progress, it never breaks soundness because
// the MicroOracle revalidates Equation (4) for every candidate.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dp::core {

struct OddSetQueryEdge {
  Vertex u;
  Vertex v;
  double q;
};

struct OddSetOptions {
  double eps = 0.1;
  /// Max ||U||_b of a returned set (0 = use 4/eps).
  std::int64_t max_set_b = 0;
  /// Use the exact Gomory-Hu search only when the number of active vertices
  /// is at most this; otherwise use the heuristic finder.
  std::size_t gomory_hu_limit = 1200;
};

/// Disjoint dense odd sets (each sorted by vertex id). `q_hat` must have one
/// entry per vertex (entries for inactive vertices are ignored).
std::vector<std::vector<Vertex>> find_dense_odd_sets(
    std::size_t n, const std::vector<OddSetQueryEdge>& q_edges,
    const std::vector<double>& q_hat, const Capacities& b,
    const OddSetOptions& options);

}  // namespace dp::core
