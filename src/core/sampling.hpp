#pragma once
// Deterministic batched sampling rounds — the data-access side of
// Algorithm 2 (Definition 4 / Lemma 17).
//
// One adaptive sampling round draws t independent deferred sparsifiers from
// the same per-edge inclusion probabilities. The seed implementation ran t
// dependent Bernoulli sweeps off one stateful generator, which (a) serialized
// the t * m draws and (b) tied every draw to the full history of draws before
// it, locking the round out of the fixed-chunk determinism contract that
// covers the rest of the solve loop.
//
// SamplingEngine replaces that with ONE sweep: the inclusion decisions of all
// t sparsifiers for edge `idx` pack into a t-bit mask computed by a
// counter-based RNG (util/rng's CounterRng) as a pure function of
// (seed, round, q, idx). Consequences:
//
//  - the sweep chunk-parallelizes over the edges (run_chunks), and the stored
//    sets are bitwise identical for any thread count;
//  - any access substrate that can enumerate (idx, prob) pairs reproduces the
//    exact same sets: the in-memory sweep (draw), a semi-streaming pass
//    (draw_stream), and the MapReduce mapper (mapreduce::sample_round) are
//    interchangeable and meter the same round/pass/store accounting;
//  - per-sparsifier supports and the round's union extract from the masks
//    into one CSR (replacing the per-round vector-of-vectors), and all round
//    state lives in reusable engine buffers.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "sparsify/deferred.hpp"
#include "stream/edge_stream.hpp"
#include "util/accounting.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dp::core {

/// Upper bound on sparsifiers per round (one bit each in the packed
/// 32-bit mask; the solver's automatic t is clamped to [2, 24], so 32 is
/// headroom, and the narrow mask halves the memory traffic of the draw,
/// extraction and consumption sweeps).
inline constexpr std::size_t kMaxSparsifiersPerRound = 32;

/// The per-round draw stream: callers fork once per round and pass the
/// forked stream to sampling_mask, which then hashes only the edge index.
inline CounterRng sampling_round_rng(std::uint64_t seed,
                                     std::uint64_t round) noexcept {
  return CounterRng(seed).fork(round);
}

/// Inclusion mask of edge `idx` for one round: bit q is set iff the edge
/// belongs to sparsifier q (q < t <= 32). A pure function of
/// (seed, round, q, idx) — `round_rng` must come from sampling_round_rng —
/// which is the shared definition that makes every substrate (in-memory
/// sweep, streaming pass, MapReduce mapper) produce bitwise identical
/// stored sets. The Bernoulli compare happens in the integer domain
/// (threshold = p * 2^64, computed once per edge), so the per-sparsifier
/// draw is one mix + one compare, branchless.
inline std::uint32_t sampling_mask(const CounterRng& round_rng, std::size_t t,
                                   std::uint64_t idx, double p) noexcept {
  if (!(p > 0.0) || t == 0) return 0;
  const std::uint32_t full =
      t >= 32 ? ~std::uint32_t{0}
              : (std::uint32_t{1} << t) - std::uint32_t{1};
  if (p >= 1.0) return full;
  const auto threshold = static_cast<std::uint64_t>(p * 0x1.0p64);
  const std::uint64_t base = round_rng.bits(idx);
  std::uint32_t mask = 0;
  // Unrolled by hand: t is a runtime value, and without the unroll the
  // compiler chains the (independent) per-q mixes instead of pipelining
  // them — worth ~1.7x on the fractional-probability sweep.
  std::size_t q = 0;
  for (; q + 4 <= t; q += 4) {
    mask |= static_cast<std::uint32_t>(mix_combine(base, q) < threshold)
            << q;
    mask |= static_cast<std::uint32_t>(mix_combine(base, q + 1) < threshold)
            << (q + 1);
    mask |= static_cast<std::uint32_t>(mix_combine(base, q + 2) < threshold)
            << (q + 2);
    mask |= static_cast<std::uint32_t>(mix_combine(base, q + 3) < threshold)
            << (q + 3);
  }
  for (; q < t; ++q) {
    mask |= static_cast<std::uint32_t>(mix_combine(base, q) < threshold)
            << q;
  }
  return mask;
}

/// One round's draws: per-edge masks plus the CSR-extracted union support.
/// Per-sparsifier supports are NOT materialized — each is consumed exactly
/// once by the solver's inner loop, so iterating the union with a bit test
/// (for_each_stored) costs less than building t index lists ever would.
/// Owned and recycled by a SamplingEngine; views stay valid until the
/// engine's next draw.
class SamplingRound {
 public:
  std::size_t num_sparsifiers() const noexcept { return t_; }
  std::size_t num_edges() const noexcept { return masks_.size(); }

  /// Total stored (edge, sparsifier) incidences of the round.
  std::size_t stored_total() const noexcept { return stored_total_; }

  /// Invoke fn(idx) for every edge index held by sparsifier q, ascending.
  template <typename Fn>
  void for_each_stored(std::size_t q, Fn&& fn) const {
    const std::uint32_t* masks = masks_.data();
    for (const std::uint32_t idx : union_) {
      if ((masks[idx] >> q) & 1) fn(idx);
    }
  }

  /// Materialized support of sparsifier q (ascending) — a convenience for
  /// tests and diagnostics; hot paths should use for_each_stored.
  std::vector<std::uint32_t> sparsifier(std::size_t q) const {
    std::vector<std::uint32_t> out;
    for_each_stored(q, [&](std::uint32_t idx) { out.push_back(idx); });
    return out;
  }

  /// Ascending indices of edges stored by at least one sparsifier.
  const std::vector<std::uint32_t>& union_support() const noexcept {
    return union_;
  }

  /// Packed per-edge inclusion masks (bit q = sparsifier q).
  const std::vector<std::uint32_t>& masks() const noexcept { return masks_; }

 private:
  friend class SamplingEngine;

  std::size_t t_ = 0;
  std::size_t stored_total_ = 0;
  std::vector<std::uint32_t> masks_;
  std::vector<std::uint32_t> union_;
};

/// Reusable, deterministic batched sampling subsystem. One engine serves all
/// rounds of a solve: probability computation (chunk-parallel deferred
/// sparsifier probabilities with reusable scratch) and the batched draw.
/// All entry points are bitwise thread-count-invariant.
class SamplingEngine {
 public:
  /// `pool`/`grain` follow the solver's fixed-chunk determinism contract
  /// (pool == nullptr runs inline; the output never depends on either).
  explicit SamplingEngine(ThreadPool* pool = nullptr,
                          std::size_t grain = 2048)
      : pool_(pool), grain_(grain == 0 ? 1 : grain) {}

  /// Deferred-sparsifier inclusion probabilities for the round's promise
  /// weights. Returns a reference to an internal buffer that stays valid
  /// until the next probabilities() call.
  const std::vector<double>& probabilities(std::size_t n,
                                           const std::vector<Edge>& edges,
                                           const std::vector<double>& promise,
                                           const DeferredOptions& options,
                                           std::uint64_t seed) {
    deferred_probabilities_into(n, edges, promise, options, seed, prob_,
                                scratch_, pool_);
    return prob_;
  }

  /// Draw all t sparsifiers of round `round` in one chunk-parallel sweep
  /// over `prob`. Charges `meter` (if given) one adaptive round, one pass,
  /// and the stored incidences — the same accounting as the streaming and
  /// MapReduce paths. The returned round is valid until the next draw.
  const SamplingRound& draw(const std::vector<double>& prob, std::size_t t,
                            std::uint64_t round, std::uint64_t seed,
                            ResourceMeter* meter = nullptr);

  /// Identical draws made through one sequential pass over `stream`
  /// (arrival position = edge index; prob.size() must equal
  /// stream.num_edges()). The stream's meter is charged the pass; round and
  /// store accounting mirror draw(). Stored sets are bitwise identical to
  /// draw() on the same arguments.
  const SamplingRound& draw_stream(const EdgeStream& stream,
                                   const std::vector<double>& prob,
                                   std::size_t t, std::uint64_t round,
                                   std::uint64_t seed);

  /// Sentinel for draw_stream_mapped's position map: stream position is
  /// not a retained edge.
  static constexpr std::uint32_t kNotRetained = ~std::uint32_t{0};

  /// Streaming-substrate draw: one sequential pass over `stream` in the
  /// shuffled arrival order of `order_seed` (modeling adversarial arrival;
  /// masks are pure functions of the retained index, so the stored sets
  /// are bitwise identical to draw() regardless of order). `retained_of`
  /// maps each stream position (graph edge id) to its retained index, or
  /// kNotRetained for dropped edges; `prob` is retained-indexed. Charges
  /// nothing — the caller owns the round's pass accounting.
  ///
  /// `arrival_probe` (optional) is invoked with the arrival ordinal
  /// 0, 1, ... BEFORE each edge is processed — the streaming substrate's
  /// mid-pass fault-injection hook (util/fault): a probe that throws
  /// models the pass dying at that arrival. The engine's buffers are reset
  /// at entry, so an aborted draw can simply be re-invoked.
  const SamplingRound& draw_stream_mapped(
      const EdgeStream& stream, const std::vector<std::uint32_t>& retained_of,
      std::uint64_t order_seed, const std::vector<double>& prob,
      std::size_t t, std::uint64_t round, std::uint64_t seed,
      const std::function<void(std::uint64_t)>* arrival_probe = nullptr);

  /// MapReduce-substrate adoption: rebuild the round from per-sparsifier
  /// supports (reducer outputs, each ascending). Produces the same masks /
  /// union / stored_total as draw() would for the probabilities the
  /// mappers evaluated. Charges nothing.
  const SamplingRound& adopt_supports(
      std::size_t num_edges, std::size_t t,
      const std::vector<std::vector<std::uint32_t>>& supports);

  const SamplingRound& last_round() const noexcept { return round_; }

 private:
  /// Extract the union support + stored_total from round_.masks_.
  void extract_union();

  ThreadPool* pool_;
  std::size_t grain_;
  DeferredScratch scratch_;
  std::vector<double> prob_;
  std::vector<std::uint32_t> chunk_counts_;  // per (chunk, q) counts/cursors
  SamplingRound round_;
};

}  // namespace dp::core
