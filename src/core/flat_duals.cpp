#include "core/flat_duals.hpp"

#include <algorithm>

namespace dp::core {

std::vector<SparseDuals::value_type>::iterator SparseDuals::lower_bound(
    std::uint64_t key) noexcept {
  return std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const value_type& e, std::uint64_t k) { return e.first < k; });
}

SparseDuals::const_iterator SparseDuals::lower_bound(
    std::uint64_t key) const noexcept {
  return std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const value_type& e, std::uint64_t k) { return e.first < k; });
}

double& SparseDuals::operator[](std::uint64_t key) {
  auto it = lower_bound(key);
  if (it == entries_.end() || it->first != key) {
    it = entries_.insert(it, value_type{key, 0.0});
  }
  return it->second;
}

void SparseDuals::append(std::uint64_t key, double value) {
  if (!entries_.empty() && entries_.back().first >= key) {
    // Out-of-order append: fall back to the sorted insert so the invariant
    // survives misuse at a (cold) performance cost.
    (*this)[key] += value;
    return;
  }
  entries_.emplace_back(key, value);
}

void FlatDuals::reset(std::size_t slots) {
  if (slots > val_.size()) {
    val_.assign(slots, 0.0);
    in_.assign(slots, 0);
    active_.clear();
  } else {
    clear();
  }
}

void FlatDuals::clear() noexcept {
  for (const std::uint64_t key : active_) {
    val_[key] = 0.0;
    in_[key] = 0;
  }
  active_.clear();
}

void FlatDuals::scale_all(double factor) noexcept {
  for (const std::uint64_t key : active_) val_[key] *= factor;
}

void FlatDuals::sort_active() {
  std::sort(active_.begin(), active_.end());
}

SparseDuals FlatDuals::to_sparse() const {
  std::vector<std::uint64_t> keys = active_;
  std::sort(keys.begin(), keys.end());
  SparseDuals out;
  out.reserve(keys.size());
  for (const std::uint64_t key : keys) {
    if (val_[key] != 0.0) out.append(key, val_[key]);
  }
  return out;
}

}  // namespace dp::core
