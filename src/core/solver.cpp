#include "core/solver.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "access/in_memory.hpp"
#include "core/certificate.hpp"
#include "dynamic/delta.hpp"
#include "core/checkpoint.hpp"
#include "core/initial.hpp"
#include "core/round_pipeline.hpp"
#include "core/sampling.hpp"
#include "sparsify/deferred.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dp::core {

Solver::Solver(const Graph& g, const Capacities& b, SolverOptions options)
    : g_(&g), b_(b), options_(std::move(options)) {}

Solver::Solver(const Graph& g, SolverOptions options)
    : g_(&g), b_(Capacities::unit(g.num_vertices())),
      options_(std::move(options)) {}

SolverResult Solver::solve() { return solve_impl(options_.resume_from); }

SolverResult Solver::solve(const RoundCheckpoint& resume_from) {
  return solve_impl(&resume_from);
}

SolverResult Solver::resolve(const WarmStart& prev,
                             const dyn::EdgeDelta& delta) {
  const Graph& g = *g_;
  const double eps = options_.eps;
  const double p = std::max(options_.p, 1.01);
  const auto bits = [](double x) { return std::bit_cast<std::uint64_t>(x); };
  // Any validation failure falls back to a full from-scratch solve — the
  // answer is always correct, the fallback only forfeits the saving. The
  // reason is reported so callers (and the bench) can see WHY warm work
  // was refused.
  const auto fallback = [&](std::string why) {
    DP_INFO("resolve fallback: " << why);
    SolverResult r = solve_impl(nullptr);
    r.resolve_fallback = std::move(why);
    return r;
  };
  if (g.num_edges() == 0 || g.num_vertices() == 0) {
    return fallback("empty post-delta graph");
  }
  if (prev.solver_seed != options_.seed || bits(prev.eps) != bits(eps) ||
      bits(prev.p) != bits(p) || prev.n != g.num_vertices()) {
    return fallback("solver configuration or vertex count changed");
  }
  std::size_t t = options_.sparsifiers_per_round;
  if (t == 0) {
    const double gamma =
        std::pow(static_cast<double>(g.num_vertices()), 1.0 / (2.0 * p));
    t = static_cast<std::size_t>(
        std::ceil(std::max(1.0, std::log(gamma)) / eps));
    t = std::clamp<std::size_t>(t, 2, 24);
  }
  t = std::min(t, kMaxSparsifiersPerRound);
  if (prev.sparsifiers != t) return fallback("sparsifier count changed");
  const LevelGraph lg(g, b_, eps);
  if (lg.retained().empty()) return fallback("no retained edges");
  // The level structure is the coordinate system of the duals: wHat_k and
  // the per-edge levels are functions of W* = max weight and the level
  // count. A delta that moves either re-maps every row, so the stale
  // iterate certifies nothing and repair cannot be local — documented
  // fallback condition (see src/core/README.md).
  if (prev.levels != lg.num_levels() ||
      bits(prev.w_star) != bits(lg.w_star())) {
    return fallback("level structure changed (W* or level count)");
  }
  // Shape validation, as for checkpoints: the raw iterate drives unchecked
  // dense writes in restore_raw.
  const std::uint64_t key_bound =
      static_cast<std::uint64_t>(g.num_vertices()) * lg.num_levels();
  bool shape_ok = prev.xi.size() == g.num_vertices();
  for (const auto& [key, value] : prev.xik) {
    shape_ok = shape_ok && key < key_bound;
  }
  for (const OddSetVar& var : prev.odd_sets) {
    for (const Vertex v : var.members) {
      shape_ok = shape_ok && v < g.num_vertices();
    }
  }
  if (!shape_ok) return fallback("malformed warm-start handle");
  return solve_impl(nullptr, &prev, &delta);
}

SolverResult Solver::solve_impl(const RoundCheckpoint* resume,
                                const WarmStart* warm,
                                const dyn::EdgeDelta* delta) {
  const Graph& g = *g_;
  SolverResult result;
  result.b_matching = BMatching(g.num_edges());
  if (g.num_edges() == 0 || g.num_vertices() == 0) {
    result.certified_ratio = 1.0;
    return result;
  }
  const double eps = options_.eps;
  const double p = std::max(options_.p, 1.01);

  bool unit_caps = true;
  for (std::size_t v = 0; v < b_.size(); ++v) {
    if (b_[static_cast<Vertex>(v)] != 1) {
      unit_caps = false;
      break;
    }
  }

  // ---- Discretize weights into levels (Definitions 2/3). ----
  const LevelGraph lg(g, b_, eps);
  const std::vector<EdgeId>& retained = lg.retained();
  if (retained.empty()) {
    result.certified_ratio = 1.0;
    return result;
  }
  const double n = static_cast<double>(g.num_vertices());

  DualState state(g.num_vertices(), lg.num_levels());

  // ---- Outer-round shape: t sparsifiers per round, round cap. ----
  const double gamma = std::pow(n, 1.0 / (2.0 * p));
  std::size_t t = options_.sparsifiers_per_round;
  if (t == 0) {
    t = static_cast<std::size_t>(
        std::ceil(std::max(1.0, std::log(gamma)) / eps));
    t = std::clamp<std::size_t>(t, 2, 24);
  }
  t = std::min(t, kMaxSparsifiersPerRound);
  std::size_t max_rounds = options_.max_outer_rounds;
  if (max_rounds == 0) {
    max_rounds =
        4 * static_cast<std::size_t>(std::ceil(p / eps)) + 4;
    max_rounds = std::min<std::size_t>(max_rounds, 64);
  }

  MicroOracle oracle(lg, b_, options_.oracle);
  // The pipeline sweeps share the oracle's pool under the same fixed-chunk
  // determinism contract — one solve, one pool.
  ThreadPool* pool = oracle.worker_pool();

  // ---- Staged round pipeline (core/round_pipeline). ----
  RoundPipelineOptions popt;
  popt.eps = eps;
  popt.sparsifiers = t;
  popt.grain = std::max<std::size_t>(1, options_.oracle.parallel_grain);
  popt.overlap_offline = options_.pipeline_overlap;
  popt.offline = options_.offline;
  // Internal sparsifier accuracy is decoupled from eps: the driver
  // re-solves offline on the stored union every round and the dual
  // certificate (objective/lambda) is sound regardless of sparsifier
  // quality, so a coarse-but-cheap sparsifier only slows convergence.
  // gamma enters deferred_probabilities squared; passing sqrt(gamma)
  // yields linear-in-gamma oversampling — the measured multiplier drift
  // per round sits far below the worst-case gamma^2 (documented deviation
  // in EXPERIMENTS.md).
  popt.deferred.xi = 0.5;
  popt.deferred.gamma = std::sqrt(std::max(1.0, gamma));
  popt.deferred.sampling_constant = 0.25;
  // Counter-based draw stream, decoupled from `rng`: draws are pure
  // functions of (seed, round, q, edge), never of draw order.
  popt.sample_seed = mix_combine(options_.seed, 0x5a3b'11ce'0fda'7001ULL);

  // ---- Access substrate: ALL input access of the round loop goes
  // through it (src/access). The default is the in-memory reference; a
  // caller-provided streaming / MapReduce backend runs the identical
  // algorithm under that model's access discipline and metering.
  access::InMemorySubstrate default_substrate;
  access::Substrate* substrate = options_.substrate != nullptr
                                     ? options_.substrate
                                     : &default_substrate;
  substrate->set_fault_plan(options_.faults);
  substrate->set_memory_budget(options_.memory_budget_edges);
  // Cooperative stop (util/cancel): the same poll is threaded through the
  // pipeline's stage boundaries and the substrate's pass chunks. Firing
  // raises SolveAborted at a safe point; the handlers below convert it
  // into the anytime result.
  const StopCheck stop(options_.cancel, options_.deadline);
  popt.stop = stop;
  // Cross-round deferral of the Merge join (the pipeline's second join
  // point). Per-round checkpointing pins the classic stage order: the
  // checkpoint snapshots the meters at the round boundary, and a deferred
  // join would move that boundary past the next round's opening pass.
  popt.cross_round = options_.pipeline_cross_round &&
                     options_.pipeline_overlap && !options_.on_checkpoint &&
                     !stop.armed();
  substrate->set_stop(stop);
  substrate->bind(g, lg, pool, popt.grain);

  RoundPipeline pipeline(*substrate, lg, b_, unit_caps, oracle, popt);

  Incumbent inc;
  inc.best = BMatching(g.num_edges());
  std::size_t start_round = 0;

  if (warm != nullptr) {
    // ---- Warm start (duals-as-predictions, resolve()): restore the
    // previous solve's final dual iterate and repair feasibility on
    // exactly the rows the delta touched. Unchanged retained edges keep
    // their covering rows bitwise (restore_raw is exact and the level
    // structure was validated identical); deleted edges only REMOVE rows,
    // which cannot lower any surviving row; so the only possible deficits
    // are the inserted edges' rows, each raised here to its full wHat_k
    // (row ratio 1.0 >= lambda). If the previous solve certified
    // lambda_prev >= 1 - 3 eps, the repaired iterate re-certifies at the
    // round loop's FIRST opening sweep — zero MW rounds, one pass. ----
    state.restore_raw(warm->dual_scale, warm->xik, warm->xi,
                      warm->odd_sets);
    std::size_t repaired = 0;
    for (const dyn::EdgeInsert& ins : dyn::normalize(*delta).inserts) {
      // Locate the inserted edge(s) in the post-delta graph; edges the
      // discretization dropped (level < 0) have no covering row.
      for (const Graph::Incidence& inc_edge : g.neighbors(ins.u)) {
        if (inc_edge.neighbor != ins.v) continue;
        const int k = lg.level(inc_edge.edge);
        if (k < 0) continue;
        if (state.raise_cover(ins.u, ins.v, k, lg.level_weight(k))) {
          ++repaired;
        }
      }
    }
    result.meter.add_repaired_rows(repaired);
    // Re-anchor the incumbent on the post-delta graph: ONE canonical
    // offline solve over the full retained set (ids ascending = retained
    // order — a pure function of the graph, independent of the churn
    // history). beta restarts from the floor and is raised by the merge;
    // the previous solve's primal support is NOT reused (edge ids do not
    // survive re-materialization). One pass over the input, charged.
    inc.beta = 1e-12;
    std::vector<Edge> retained_edges;
    retained_edges.reserve(retained.size());
    for (EdgeId e : retained) retained_edges.push_back(g.edge(e));
    result.meter.add_pass();
    result.meter.store_edges(retained_edges.size());
    pipeline.merge_offline(pipeline.solve_offline(retained, retained_edges),
                           inc);
    result.meter.release_edges(retained_edges.size());
    result.warm_resolve = true;
  } else if (resume == nullptr) {
    // ---- Initial dual solution (Lemma 12) and best primal so far:
    // offline on the initial support. ----
    Rng rng(options_.seed);
    const InitialSolution init =
        build_initial(lg, b_, p, rng.next(), &result.meter);
    state.assign(init.x0);
    inc.beta = std::max(init.beta0, 1e-12);
    std::vector<Edge> init_edges;
    init_edges.reserve(init.support.size());
    for (EdgeId e : init.support) init_edges.push_back(g.edge(e));
    pipeline.merge_offline(pipeline.solve_offline(init.support, init_edges),
                           inc);
  } else {
    // ---- Resume: the checkpoint replaces the initial solution AND every
    // completed round. Identity first — resuming under a different
    // configuration would silently produce a hybrid solve. Doubles compare
    // as bit patterns (the contract is bitwise identity, not closeness).
    const auto bits = [](double x) { return std::bit_cast<std::uint64_t>(x); };
    const bool identity_ok =
        resume->solver_seed == options_.seed && bits(resume->eps) == bits(eps)
        && bits(resume->p) == bits(p) && resume->sparsifiers == t
        && resume->sample_seed == popt.sample_seed
        && resume->n == g.num_vertices() && resume->m == g.num_edges()
        && resume->retained == retained.size()
        && resume->levels == lg.num_levels();
    // Generation first, with its own message: a checkpoint cut before an
    // edge delta can pass every shape field (remove+insert preserves n, m
    // AND the retained count), and "stale" is actionable for the caller in
    // a way "mismatch" is not.
    if (identity_ok &&
        resume->graph_generation != options_.graph_generation) {
      throw ConfigError(
          "resume checkpoint predates an edge delta (stale graph "
          "generation); re-solve or use Solver::resolve",
          {"solver.resume", resume->graph_generation});
    }
    if (!identity_ok) {
      throw ConfigError(
          "resume checkpoint does not match this solve configuration and "
          "instance",
          {"solver.resume"});
    }
    // Structural bounds the checksum cannot vouch for (it only proves the
    // bytes are the ones serialize wrote, not that they index this
    // instance): every key/vertex/edge must be in range before it drives
    // unchecked dense-array writes.
    const std::uint64_t key_bound =
        static_cast<std::uint64_t>(g.num_vertices()) * lg.num_levels();
    bool shape_ok = resume->xi.size() == g.num_vertices();
    for (const auto& [key, value] : resume->xik) {
      shape_ok = shape_ok && key < key_bound;
    }
    for (const OddSetVar& var : resume->odd_sets) {
      for (const Vertex v : var.members) {
        shape_ok = shape_ok && v < g.num_vertices();
      }
    }
    for (const auto& [e, mult] : resume->best_support) {
      shape_ok = shape_ok && e < g.num_edges();
    }
    if (!shape_ok) {
      throw CheckpointCorrupt(
          "resume checkpoint indexes outside this instance",
          {"solver.resume"});
    }
    state.restore_raw(resume->scale, resume->xik, resume->xi,
                      resume->odd_sets);
    inc.beta = resume->beta;
    inc.value = resume->best_value;
    for (const auto& [e, mult] : resume->best_support) {
      inc.best.set_multiplicity(static_cast<EdgeId>(e), mult);
    }
    result.outer_rounds = resume->outer_rounds;
    result.oracle_calls = resume->oracle_calls;
    result.history = resume->history;
    resume->solve_meter.restore_into(result.meter);
    resume->substrate_meter.restore_into(substrate->meter());
    start_round = resume->next_round;
  }

  // ---- Outer sampling rounds. ----
  // Checkpoints are built after every completed round when the caller
  // installed a hook OR armed a stop: an early-stopped solve then carries
  // its own resume handle (SolverResult::checkpoint) so a re-submitted
  // request warm-resumes instead of restarting.
  const bool keep_checkpoints = options_.on_checkpoint || stop.armed();
  std::shared_ptr<RoundCheckpoint> last_ck;
  const auto status_of = [](StopReason reason) {
    return reason == StopReason::kDeadline ? SolverStatus::kDeadline
                                           : SolverStatus::kCancelled;
  };
  const auto build_checkpoint = [&](std::size_t next_round,
                                    const DualState& st,
                                    const Incumbent& incumbent) {
    auto ck = std::make_shared<RoundCheckpoint>();
    ck->solver_seed = options_.seed;
    ck->eps = eps;
    ck->p = p;
    ck->sparsifiers = t;
    ck->sample_seed = popt.sample_seed;
    ck->n = g.num_vertices();
    ck->m = g.num_edges();
    ck->retained = retained.size();
    ck->levels = lg.num_levels();
    ck->graph_generation = options_.graph_generation;
    ck->next_round = next_round;
    ck->outer_rounds = result.outer_rounds;
    ck->oracle_calls = result.oracle_calls;
    ck->best_value = incumbent.value;
    ck->beta = incumbent.beta;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const std::int64_t mult = incumbent.best.multiplicity(e);
      if (mult > 0) ck->best_support.emplace_back(e, mult);
    }
    ck->scale = st.scale();
    const FlatDuals& xik = st.raw_xik();
    ck->xik.reserve(xik.active_count());
    for (const std::uint64_t key : xik.active()) {
      ck->xik.emplace_back(key, xik.get(key));
    }
    ck->xi = st.raw_xi();
    ck->odd_sets = st.odd_sets();
    ck->history = result.history;
    ck->solve_meter = MeterSnapshot::of(result.meter);
    ck->substrate_meter = MeterSnapshot::of(substrate->meter());
    return ck;
  };

  // Cross-round pipelining bookkeeping: a deferred round's report is
  // booked (outer_rounds, oracle calls, history) only once its Merge joins
  // at the second join point — the incumbent the history row records is
  // the post-merge one, exactly as in the classic order.
  struct PendingRound {
    bool active = false;
    std::size_t round = 0;
    double lambda = 0;
    RoundPipeline::RoundReport rep;
  } pending;
  const auto finalize_pending = [&]() {
    if (!pending.active) return;
    pending.active = false;
    pipeline.join_pending(inc, result.meter);
    ++result.outer_rounds;
    result.oracle_calls += pending.rep.oracle_calls;
    result.history.push_back(RoundStats{pending.round + 1, pending.lambda,
                                        inc.beta, inc.value,
                                        pending.rep.stored_edges,
                                        pending.rep.oracle_calls});
    DP_INFO("round " << pending.round + 1 << " lambda=" << pending.lambda
                     << " beta=" << inc.beta << " best=" << inc.value
                     << " stored=" << pending.rep.stored_edges);
  };

  // Stopping bar of the outer loop. A warm re-solve stops as soon as the
  // exact-lambda certificate RE-ATTAINS the level the previous solve
  // reached (capped by the 1 - 3 eps rule): the repaired iterate keeps
  // every unchanged row's ratio bitwise, deletes only remove rows, and
  // inserted rows are raised to ratio 1 — so lambda_repaired >=
  // lambda_prev and the first opening sweep re-certifies with ZERO MW
  // rounds. The final certificate below is evaluated on the state as it
  // stands either way (objective/lambda is feasible at any lambda > 0),
  // so the early stop never weakens soundness.
  double stop_bar = 1.0 - 3.0 * eps;
  if (warm != nullptr && warm->lambda > 0) {
    stop_bar = std::min(stop_bar, warm->lambda);
  }

  bool lambda_fresh = false;
  for (std::size_t round = start_round; round < max_rounds; ++round) {
    // Safe point: the round-loop top. Nothing of round `round` has run, so
    // the state, the incumbent and last_ck are all the previous round's.
    if (const StopReason reason = stop.poll(); reason != StopReason::kNone) {
      result.status = status_of(reason);
      break;
    }
    // lambda and early stopping (Corollary 6's certificate): the round's
    // opening substrate sweep — on the streaming backend this is the
    // iteration's single pass, shared with the multiplier stage. A fault
    // that exhausts the retry budget here (or in the round body below)
    // degrades gracefully: every completed round's state is intact, so
    // the best-so-far primal leaves with a sound certificate.
    double lambda = 0;
    try {
      lambda = pipeline.open_round(state);
    } catch (const SolveAborted& aborted) {
      // The sweep only fills pure per-index buffers, so abandoning it
      // mid-pass loses nothing: the state is the last completed round's.
      result.status = status_of(aborted.reason());
      break;
    } catch (const SubstrateFault& fault) {
      result.status = SolverStatus::kDegraded;
      result.fault_detail = fault.what();
      break;
    }
    // SECOND JOIN POINT (cross-round pipelining): the previous round's
    // offline tail overlapped the sweep above; its Merge and bookkeeping
    // land here, before anything below reads the incumbent.
    finalize_pending();
    result.lambda = lambda;
    lambda_fresh = true;
    if (lambda >= stop_bar) break;
    if (options_.target_ratio > 0 && inc.value > 0 && lambda > 0) {
      const double bound = state.objective(b_) / lambda;
      const double bound_orig =
          bound * lg.scale() * (1.0 + eps) + eps * lg.w_star() / 2.0;
      if (inc.value >= options_.target_ratio * bound_orig) break;
    }

    RoundPipeline::RoundReport rep;
    try {
      rep = pipeline.run_round(round, lambda, state, inc, result.meter);
    } catch (const SolveAborted& aborted) {
      // Stage/iteration boundaries are safe points, but inner iterations
      // may already have blended into the dual state; the anytime
      // certificate below re-evaluates lambda on the state as it stands
      // (any dual iterate certifies exactly). Resume still goes through
      // last_ck — the previous round boundary.
      result.status = status_of(aborted.reason());
      break;
    } catch (const SubstrateFault& fault) {
      // Injection sites precede the round's state mutations (the sweep and
      // the draw both run before stage_inner touches the dual state), so
      // the state is the last completed round's.
      result.status = SolverStatus::kDegraded;
      result.fault_detail = fault.what();
      break;
    }
    lambda_fresh = false;
    if (popt.cross_round) {
      // Merge deferred: the offline job is still in flight. Book the round
      // after the join (next iteration's finalize_pending, or the one
      // right after the loop on any exit path).
      pending = PendingRound{true, round, lambda, rep};
      continue;
    }
    ++result.outer_rounds;
    result.oracle_calls += rep.oracle_calls;

    result.history.push_back(RoundStats{round + 1, lambda, inc.beta,
                                        inc.value, rep.stored_edges,
                                        rep.oracle_calls});
    DP_INFO("round " << round + 1 << " lambda=" << lambda
                     << " beta=" << inc.beta << " best=" << inc.value
                     << " stored=" << rep.stored_edges);

    if (keep_checkpoints) {
      last_ck = build_checkpoint(round + 1, state, inc);
      if (options_.on_checkpoint && !options_.on_checkpoint(*last_ck)) {
        result.status = SolverStatus::kInterrupted;
        break;
      }
    }
  }
  // Every loop exit (stopping rule, round budget, fault, abort) runs the
  // join here if the last round's Merge is still deferred — the incumbent
  // and meters must be whole before the certificate below reads them.
  finalize_pending();
  // Early-stopped solves carry their resume handle: interrupt -> resume
  // round-trips without the caller wiring its own on_checkpoint, and a
  // deadline-expired request re-submitted with the checkpoint warm-resumes
  // at the last completed round instead of restarting.
  if (result.status != SolverStatus::kComplete) {
    result.checkpoint = std::move(last_ck);
  }
  result.value = inc.value;
  result.b_matching = std::move(inc.best);

  // ---- Certificate: explicit dual, verified edge by edge. The final
  // lambda needs one more sweep only when the loop exhausted its round
  // budget (a break leaves the staged lambda fresh). A degraded solve
  // evaluates it on the state directly — same retained order, exact min,
  // so bitwise-equal to the substrate sweep — because the substrate's
  // faulty pass may simply fail again. A deadline/cancel stop does the
  // same: the substrate's polls would abort the sweep again, and the
  // anytime contract wants the certificate NOW, on the state as it
  // stands. ----
  const bool stopped = result.status == SolverStatus::kDeadline ||
                       result.status == SolverStatus::kCancelled;
  if (!lambda_fresh || stopped) {
    if (result.status == SolverStatus::kDegraded || stopped) {
      result.lambda = state.lambda(lg, pool, popt.grain);
    } else {
      try {
        result.lambda = pipeline.open_round(state);
      } catch (const SubstrateFault& fault) {
        result.status = SolverStatus::kDegraded;
        result.fault_detail = fault.what();
        result.lambda = state.lambda(lg, pool, popt.grain);
      }
    }
  }
  result.beta = inc.beta;
  // Best verified bound among the multiplicative-weights certificate and
  // the cheap witness duals (the latter floor the guarantee while the dual
  // is still converging).
  result.dual_bound = best_dual_bound(state, lg, b_);
  result.dual_bound = std::max(result.dual_bound, result.value);
  result.certified_ratio =
      result.dual_bound > 0 ? result.value / result.dual_bound : 1.0;

  // The substrate's model accounting (rounds, passes, stored peaks,
  // shuffle volume) folds into the solve meter; per-substrate inspection
  // stays available on the substrate itself.
  result.meter.merge(substrate->meter());

  // Warm-path savings, measured against the cost of the solve that
  // produced the handle — the o(full-solve) claim as first-class counters.
  if (warm != nullptr) {
    if (warm->outer_rounds > result.outer_rounds) {
      result.meter.add_saved_rounds(warm->outer_rounds -
                                    result.outer_rounds);
    }
    if (warm->passes > result.meter.passes()) {
      result.meter.add_saved_passes(warm->passes - result.meter.passes());
    }
  }

  // Emit the warm-start handle: every solve's final dual iterate seeds the
  // next resolve(). Cheap relative to the solve (one copy of the sparse
  // iterate), and emitted on anytime results too — a partially converged
  // dual is still a valid prediction, it just re-certifies later.
  {
    auto handle = std::make_shared<WarmStart>();
    handle->solver_seed = options_.seed;
    handle->eps = eps;
    handle->p = p;
    handle->sparsifiers = t;
    handle->n = g.num_vertices();
    handle->levels = lg.num_levels();
    handle->w_star = lg.w_star();
    handle->graph_generation = options_.graph_generation;
    handle->dual_scale = state.scale();
    const FlatDuals& xik = state.raw_xik();
    handle->xik.reserve(xik.active_count());
    for (const std::uint64_t key : xik.active()) {
      handle->xik.emplace_back(key, xik.get(key));
    }
    handle->xi = state.raw_xi();
    handle->odd_sets = state.odd_sets();
    handle->lambda = result.lambda;
    // Saved-work baseline: a chained resolve should keep measuring against
    // the cost of a FULL solve, not against the previous (already cheap)
    // warm hop — so a warm result carries the baseline forward.
    handle->outer_rounds =
        warm != nullptr ? std::max(result.outer_rounds, warm->outer_rounds)
                        : result.outer_rounds;
    handle->passes = warm != nullptr
                         ? std::max(result.meter.passes(), warm->passes)
                         : result.meter.passes();
    result.warm = std::move(handle);
  }

  // Plain matching view for unit capacities.
  if (unit_caps) {
    Matching m;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (result.b_matching.multiplicity(e) > 0) m.add(e);
    }
    result.matching = std::move(m);
  }
  return result;
}

SolverResult solve_matching(const Graph& g, const SolverOptions& options) {
  return Solver(g, options).solve();
}

SolverResult solve_b_matching(const Graph& g, const Capacities& b,
                              const SolverOptions& options) {
  return Solver(g, b, options).solve();
}

}  // namespace dp::core
