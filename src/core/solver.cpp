#include "core/solver.hpp"

#include <algorithm>
#include <cmath>

#include "core/certificate.hpp"
#include "core/initial.hpp"
#include "core/sampling.hpp"
#include "matching/greedy.hpp"
#include "sparsify/deferred.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dp::core {

namespace {

/// Exponent-shifted covering multipliers u_e = exp(-alpha row_e/wHat_e)/wHat_e
/// for the given edge ids, clamped to a dynamic range of eps/(4m) so the
/// number of geometric promise classes stays O(log(m/eps)) (the paper's L0
/// bound plays the same role). Runs on fixed-grain chunks: the cover_row
/// reads and exp evaluations are per-element, and the min/max reductions
/// over chunk partials are exact, so the output is bitwise identical for
/// any thread count (the oracle sweeps' determinism contract).
std::vector<double> covering_us(const DualState& state, const LevelGraph& lg,
                                const std::vector<EdgeId>& edges,
                                double alpha, ThreadPool* pool,
                                std::size_t grain) {
  const std::size_t m = edges.size();
  if (grain == 0) grain = 1;
  const std::size_t chunks = m == 0 ? 0 : (m + grain - 1) / grain;
  std::vector<double> ratio(m, 0.0);
  std::vector<double> partial(chunks, 1e300);
  run_chunks(pool, 0, m, grain,
             [&](std::size_t c, std::size_t lo, std::size_t hi) {
               double local_min = 1e300;
               for (std::size_t idx = lo; idx < hi; ++idx) {
                 const EdgeId e = edges[idx];
                 const Edge& edge = lg.graph().edge(e);
                 const int k = lg.level(e);
                 ratio[idx] =
                     state.cover_row(edge.u, edge.v, k) / lg.level_weight(k);
                 local_min = std::min(local_min, ratio[idx]);
               }
               partial[c] = local_min;
             });
  double min_ratio = 1e300;
  for (std::size_t c = 0; c < chunks; ++c) {
    min_ratio = std::min(min_ratio, partial[c]);
  }
  std::vector<double> u(m, 0.0);
  std::fill(partial.begin(), partial.end(), 0.0);
  run_chunks(pool, 0, m, grain,
             [&](std::size_t c, std::size_t lo, std::size_t hi) {
               double local_max = 0;
               for (std::size_t idx = lo; idx < hi; ++idx) {
                 const int k = lg.level(edges[idx]);
                 u[idx] = std::exp(-alpha * (ratio[idx] - min_ratio)) /
                          lg.level_weight(k);
                 local_max = std::max(local_max, u[idx]);
               }
               partial[c] = local_max;
             });
  double u_max = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    u_max = std::max(u_max, partial[c]);
  }
  const double floor_value =
      u_max * lg.eps() / (4.0 * static_cast<double>(m) + 4.0);
  for (double& value : u) value = std::max(value, floor_value);
  return u;
}

double normalized_value(const LevelGraph& lg, const BMatching& bm) {
  double total = 0;
  for (EdgeId e = 0; e < bm.num_edges(); ++e) {
    const std::int64_t y = bm.multiplicity(e);
    if (y > 0 && lg.level(e) >= 0) {
      total += static_cast<double>(y) * lg.level_weight(lg.level(e));
    }
  }
  return total;
}

/// Offline solve on the subgraph spanned by `support` (original weights);
/// returns the solution lifted back to full-graph edge ids.
BMatching offline_solve(const Graph& g, const Capacities& b, bool unit_caps,
                        const std::vector<EdgeId>& support,
                        const ApproxOptions& offline) {
  Graph sub(g.num_vertices());
  for (EdgeId e : support) {
    const Edge& edge = g.edge(e);
    sub.add_edge(edge.u, edge.v, edge.w);
  }
  BMatching out(g.num_edges());
  if (unit_caps) {
    const Matching m = approx_weighted_matching(sub, offline);
    for (EdgeId local : m.edges()) out.set_multiplicity(support[local], 1);
  } else {
    const BMatching bm = approx_weighted_b_matching(sub, b);
    for (EdgeId local = 0; local < bm.num_edges(); ++local) {
      if (bm.multiplicity(local) > 0) {
        out.set_multiplicity(support[local], bm.multiplicity(local));
      }
    }
  }
  return out;
}

}  // namespace

Solver::Solver(const Graph& g, const Capacities& b, SolverOptions options)
    : g_(&g), b_(b), options_(std::move(options)) {}

Solver::Solver(const Graph& g, SolverOptions options)
    : g_(&g), b_(Capacities::unit(g.num_vertices())),
      options_(std::move(options)) {}

SolverResult Solver::solve() {
  const Graph& g = *g_;
  SolverResult result;
  result.b_matching = BMatching(g.num_edges());
  if (g.num_edges() == 0 || g.num_vertices() == 0) {
    result.certified_ratio = 1.0;
    return result;
  }
  const double eps = options_.eps;
  const double p = std::max(options_.p, 1.01);
  Rng rng(options_.seed);

  bool unit_caps = true;
  for (std::size_t v = 0; v < b_.size(); ++v) {
    if (b_[static_cast<Vertex>(v)] != 1) {
      unit_caps = false;
      break;
    }
  }

  // ---- Discretize weights into levels (Definitions 2/3). ----
  const LevelGraph lg(g, b_, eps);
  const std::vector<EdgeId>& retained = lg.retained();
  if (retained.empty()) {
    result.certified_ratio = 1.0;
    return result;
  }
  const auto m_retained = static_cast<double>(retained.size());
  const double n = static_cast<double>(g.num_vertices());

  // ---- Initial dual solution (Lemma 12). ----
  const InitialSolution init =
      build_initial(lg, b_, p, rng.next(), &result.meter);
  DualState state(g.num_vertices(), lg.num_levels());
  state.assign(init.x0);
  double beta = std::max(init.beta0, 1e-12);

  // ---- Best primal so far: offline on the initial support. ----
  auto consider = [&](const BMatching& bm) {
    const double value = bm.weight(g);
    if (value > result.value) {
      result.value = value;
      result.b_matching = bm;
    }
    const double norm = normalized_value(lg, bm);
    // Algorithm 2 step 6 with a3 folded into eps: remember the raised beta.
    if (norm > beta * (1.0 - eps) / (1.0 + eps)) {
      beta = norm * (1.0 + eps) / (1.0 - eps);
    }
  };
  consider(offline_solve(g, b_, unit_caps, init.support, options_.offline));

  // ---- Outer sampling rounds. ----
  const double gamma = std::pow(n, 1.0 / (2.0 * p));
  std::size_t t = options_.sparsifiers_per_round;
  if (t == 0) {
    t = static_cast<std::size_t>(
        std::ceil(std::max(1.0, std::log(gamma)) / eps));
    t = std::clamp<std::size_t>(t, 2, 24);
  }
  t = std::min(t, kMaxSparsifiersPerRound);
  std::size_t max_rounds = options_.max_outer_rounds;
  if (max_rounds == 0) {
    max_rounds =
        4 * static_cast<std::size_t>(std::ceil(p / eps)) + 4;
    max_rounds = std::min<std::size_t>(max_rounds, 64);
  }

  MicroOracle oracle(lg, b_, options_.oracle);
  // The solver-side sweeps (lambda, covering_us) share the oracle's pool
  // under the same fixed-chunk determinism contract — one solve, one pool.
  ThreadPool* pool = oracle.worker_pool();
  const std::size_t grain =
      std::max<std::size_t>(1, options_.oracle.parallel_grain);
  DeferredOptions dopt;
  // Internal sparsifier accuracy is decoupled from eps: the driver
  // re-solves offline on the stored union every round and the dual
  // certificate (objective/lambda) is sound regardless of sparsifier
  // quality, so a coarse-but-cheap sparsifier only slows convergence.
  // gamma enters deferred_probabilities squared; passing sqrt(gamma)
  // yields linear-in-gamma oversampling — the measured multiplier drift
  // per round sits far below the worst-case gamma^2 (documented deviation
  // in EXPERIMENTS.md).
  dopt.xi = 0.5;
  dopt.gamma = std::sqrt(std::max(1.0, gamma));
  dopt.sampling_constant = 0.25;

  std::vector<Edge> retained_edges;
  retained_edges.reserve(retained.size());
  for (EdgeId e : retained) retained_edges.push_back(g.edge(e));

  // Batched sampling engine (core/sampling): all t per-round sparsifiers
  // draw in one chunk-parallel sweep from counter-based randomness, so the
  // stored sets are bitwise identical for any thread count and for any
  // access substrate. The seed stream is decoupled from `rng` — draws are
  // pure functions of (seed, round, q, edge), never of draw order.
  SamplingEngine sampler(pool, grain);
  const CounterRng sample_rng(
      mix_combine(options_.seed, 0x5a3b'11ce'0fda'7001ULL));

  const int levels = lg.num_levels();
  for (std::size_t round = 0; round < max_rounds; ++round) {
    // lambda and early stopping (Corollary 6's certificate).
    const double lambda = state.lambda(lg, pool, grain);
    result.lambda = lambda;
    if (lambda >= 1.0 - 3.0 * eps) break;
    if (options_.target_ratio > 0 && result.value > 0 && lambda > 0) {
      const double bound = state.objective(b_) / lambda;
      const double bound_orig =
          bound * lg.scale() * (1.0 + eps) + eps * lg.w_star() / 2.0;
      if (result.value >= options_.target_ratio * bound_orig) break;
    }
    ++result.outer_rounds;

    // PST multiplier temperature (Theorem 5): alpha ~ ln(m/eps)/(lambda eps).
    const double lambda_floor =
        std::max(lambda, eps / std::max(256.0, m_retained));
    const double alpha =
        2.0 * std::log(2.0 * m_retained / eps) / (lambda_floor * eps);

    // Promise multipliers over every retained edge; ONE access round.
    const std::vector<double> promise =
        covering_us(state, lg, retained, alpha, pool, grain);
    const std::vector<double>& prob =
        sampler.probabilities(g.num_vertices(), retained_edges, promise,
                              dopt, sample_rng.bits(round, 1));

    // Draw all t deferred sparsifiers in one batched sweep (meters the
    // round, the pass and the stored incidences).
    const SamplingRound& draws =
        sampler.draw(prob, t, round, sample_rng.seed(), &result.meter);
    const std::size_t stored_total = draws.stored_total();

    // Offline solve on the union (Algorithm 2 step 5).
    {
      std::vector<EdgeId> support;
      support.reserve(draws.union_support().size());
      for (std::uint32_t idx : draws.union_support()) {
        support.push_back(retained[idx]);
      }
      consider(offline_solve(g, b_, unit_caps, support, options_.offline));
    }

    // Inner multiplicative-weight iterations on the stored samples.
    std::size_t round_oracle_calls = 0;
    std::vector<EdgeId> ids;
    std::vector<double> sample_prob;
    for (std::size_t q = 0; q < t; ++q) {
      // Deferred refinement: evaluate the CURRENT multipliers on exactly
      // the stored indices (no new data access). Sparsifier q's support is
      // a bit-filtered walk of the round's union — never materialized.
      ids.clear();
      sample_prob.clear();
      draws.for_each_stored(q, [&](std::uint32_t idx) {
        ids.push_back(retained[idx]);
        sample_prob.push_back(prob[idx]);
      });
      if (ids.empty()) continue;
      const std::vector<double> u_now =
          covering_us(state, lg, ids, alpha, pool, grain);
      std::vector<StoredMultiplier> us(ids.size());
      for (std::size_t i = 0; i < ids.size(); ++i) {
        us[i] = StoredMultiplier{ids[i], u_now[i] / sample_prob[i]};
      }

      // zeta: packing multipliers on the active outer rows (i, k), built
      // flat: sort + unique the packed row keys, then append in key order.
      ZetaMap zeta;
      {
        std::vector<std::uint64_t> row_keys;
        row_keys.reserve(2 * ids.size());
        for (EdgeId e : ids) {
          const Edge& edge = g.edge(e);
          const auto k = static_cast<std::uint64_t>(lg.level(e));
          row_keys.push_back(static_cast<std::uint64_t>(edge.u) * levels + k);
          row_keys.push_back(static_cast<std::uint64_t>(edge.v) * levels + k);
        }
        std::sort(row_keys.begin(), row_keys.end());
        row_keys.erase(std::unique(row_keys.begin(), row_keys.end()),
                       row_keys.end());
        double max_expo = -1e300;
        std::vector<double> expos(row_keys.size());
        const double alpha_p = std::log(2.0 * (row_keys.size() + 1) / eps) *
                               6.0 / eps;
        for (std::size_t r = 0; r < row_keys.size(); ++r) {
          const auto i = static_cast<Vertex>(row_keys[r] / levels);
          const int k = static_cast<int>(row_keys[r] % levels);
          const double q_val = 3.0 * lg.level_weight(k);
          expos[r] = alpha_p * state.po_row(i, k) / q_val;
          max_expo = std::max(max_expo, expos[r]);
        }
        zeta.reserve(row_keys.size());
        for (std::size_t r = 0; r < row_keys.size(); ++r) {
          const int k = static_cast<int>(row_keys[r] % levels);
          zeta.append(row_keys[r], std::exp(expos[r] - max_expo) /
                                       (3.0 * lg.level_weight(k)));
        }
      }

      const MicroResult mr =
          oracle.run_lagrangian(us, zeta, beta, &round_oracle_calls);
      result.meter.add_inner_iterations();
      if (mr.kind == MicroResult::Kind::kPrimal) {
        // The dual cannot make progress at this beta: the stored edges
        // carry a matching close to beta (Lemma 13). Raise beta
        // (Algorithm 3 step 5b) and continue.
        beta *= (1.0 + eps);
        continue;
      }
      const double sigma =
          std::min(0.5, eps / (4.0 * alpha * 6.0));  // rho_o = 6 (LP4/LP5)
      state.blend(mr.x, sigma);
    }
    result.oracle_calls += round_oracle_calls;
    result.meter.add_oracle_calls(round_oracle_calls);
    // The round's samples are discarded once its iterations finish; peak
    // space is a per-round quantity.
    result.meter.release_edges(stored_total);

    result.history.push_back(RoundStats{round + 1, lambda, beta,
                                        result.value, stored_total,
                                        round_oracle_calls});
    DP_INFO("round " << round + 1 << " lambda=" << lambda << " beta=" << beta
                     << " best=" << result.value
                     << " stored=" << stored_total);
  }

  // ---- Certificate: explicit dual, verified edge by edge. ----
  const double lambda = state.lambda(lg, pool, grain);
  result.lambda = lambda;
  result.beta = beta;
  // Best verified bound among the multiplicative-weights certificate and
  // the cheap witness duals (the latter floor the guarantee while the dual
  // is still converging).
  result.dual_bound = best_dual_bound(state, lg, b_);
  result.dual_bound = std::max(result.dual_bound, result.value);
  result.certified_ratio =
      result.dual_bound > 0 ? result.value / result.dual_bound : 1.0;

  // Plain matching view for unit capacities.
  if (unit_caps) {
    Matching m;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (result.b_matching.multiplicity(e) > 0) m.add(e);
    }
    result.matching = std::move(m);
  }
  return result;
}

SolverResult solve_matching(const Graph& g, const SolverOptions& options) {
  return Solver(g, options).solve();
}

SolverResult solve_b_matching(const Graph& g, const Capacities& b,
                              const SolverOptions& options) {
  return Solver(g, b, options).solve();
}

}  // namespace dp::core
