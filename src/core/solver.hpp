#pragma once
// Public facade: the dual-primal (1-eps)-approximate weighted nonbipartite
// b-matching solver of Ahn-Guha (SPAA 2015) — Algorithms 1/2/4, Theorem 15.
//
// One outer iteration (an *adaptive sampling round*):
//   1. Compute exponential multipliers u from the current dual state
//      (Theorem 5 / Corollary 6 rule) over all retained edges.
//   2. Build t = O(eps^-1 log gamma) independent deferred sparsifiers from
//      the promise weights u, gamma = n^{1/(2p)} — ONE round of access to
//      the input, O(n^{1+1/p}) stored edges.
//   3. Run the offline (1-a3)-approximation on the union of stored edges;
//      raise beta and remember the best integral solution (Algorithm 2
//      step 5/6).
//   4. For q = 1..t: refine sparsifier q with the CURRENT multipliers
//      (deferred refinement — no new data access), invoke the MiniOracle
//      (Lemma 10 binary search over MicroOracle = Algorithm 5), and blend
//      the returned dual point into the state with the PST step size.
//   5. Stop when lambda = min_e (Ax)_e / wHat_e >= 1 - 3 eps: the scaled
//      dual state is then a feasible dual, certifying near-optimality of
//      the best primal found (condition (d1)).
//
// Steps 1-4 execute as the staged round pipeline of core/round_pipeline
// (Multipliers -> Draw -> OfflineResolve || InnerRefine -> Merge): the
// offline re-solve (step 3) runs concurrently with the inner iterations
// (step 4) — they share only the frozen draw — and their effects join at a
// single merge point, so the result is bitwise identical to the sequential
// stage order for any thread count.
//
// The solver meters rounds, stored edges and oracle calls, and reports a
// rigorous dual upper bound: objective(x)/lambda is feasible for LP10/LP11
// whenever lambda > 0, so value/bound is a true approximation certificate.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/dual_state.hpp"
#include "core/oracle.hpp"
#include "core/weight_levels.hpp"
#include "graph/graph.hpp"
#include "matching/approx.hpp"
#include "matching/matching.hpp"
#include "util/accounting.hpp"
#include "util/cancel.hpp"
#include "util/fault.hpp"

namespace dp::access {
class Substrate;
}

namespace dp::dyn {
struct EdgeDelta;  // dynamic/delta.hpp
}

namespace dp::core {

struct RoundCheckpoint;  // core/checkpoint.hpp

/// How a solve ended.
enum class SolverStatus {
  /// The round loop ran to its stopping rule (or round budget).
  kComplete,
  /// A substrate fault exhausted its retry budget mid-round; the result is
  /// the best primal found so far with its certificate-backed ratio (the
  /// dual iterate from the completed rounds is still a sound bound).
  kDegraded,
  /// An on_checkpoint callback returned false after a completed round.
  kInterrupted,
  /// The wall-clock deadline (SolverOptions::deadline) expired at a safe
  /// point. The result is ANYTIME: the best primal found so far with an
  /// exactly certified ratio, plus the last completed round's checkpoint
  /// (SolverResult::checkpoint) so a re-submitted solve warm-resumes.
  kDeadline,
  /// SolverOptions::cancel was cancelled at a safe point. Same anytime
  /// guarantees as kDeadline.
  kCancelled,
};

struct SolverOptions {
  /// Target approximation slack (0 < eps <= 1/4 recommended).
  double eps = 0.1;
  /// Space exponent p > 1: per-round storage ~ n^{1+1/p}.
  double p = 2.0;
  std::uint64_t seed = 42;
  /// Cap on outer sampling rounds (0 = automatic: ~4 ceil(p/eps) + 4).
  std::size_t max_outer_rounds = 0;
  /// Sparsifiers (= inner MW iterations) per round (0 = eps^-1 log gamma).
  /// Clamped to kMaxSparsifiersPerRound (32): the batched sampling engine
  /// packs the round's inclusion decisions into 32-bit per-edge masks.
  std::size_t sparsifiers_per_round = 0;
  /// Oracle configuration (odd-set separation etc.).
  OracleConfig oracle;
  /// Offline solver knobs for the stored subgraph.
  ApproxOptions offline;
  /// Stop as soon as best/bound >= 1 - certified_gap (0 = only lambda rule).
  double target_ratio = 0.0;
  /// Run the per-round offline re-solve concurrently with the inner MW
  /// iterations (core/round_pipeline). Off = the sequential stage
  /// reference; the result is bitwise identical either way.
  bool pipeline_overlap = true;
  /// Cross-round software pipelining: defer each round's Merge join past
  /// the round boundary so the offline re-solve's tail overlaps the NEXT
  /// round's opening multiplier sweep (the pipeline's second join point).
  /// Takes effect only with pipeline_overlap on and no per-round
  /// checkpointing (on_checkpoint / armed cancel / deadline force the
  /// classic order, whose round boundary the checkpoint snapshot
  /// captures). The SolverResult — meters included — is bitwise identical
  /// for cross-round on or off, at any thread count, on every substrate.
  bool pipeline_cross_round = true;
  /// Access substrate the whole solve runs through (src/access): nullptr =
  /// an internal in-memory substrate; otherwise a caller-owned backend
  /// (streaming / MapReduce / custom) the solver bind()s for this solve.
  /// For a fixed seed the SolverResult (value, lambda, beta, certified
  /// ratio, history, stored counts) is bitwise identical across
  /// substrates; only the substrate's ResourceMeter — merged into
  /// SolverResult::meter — reflects the access model's cost.
  access::Substrate* substrate = nullptr;
  /// Cap (in edge units) on the access layer's RESIDENT edge-attribute
  /// records — the materialized attribute table, IO block buffers, the
  /// file backend's stored-sample cache — installed on the substrate
  /// before bind(); 0 = unlimited. Exceeding it is a typed ConfigError at
  /// the charge point (for an in-RAM table that is bind() itself), never a
  /// silent RAM spike: a solve over a graph bigger than the budget must go
  /// through the file-backed streaming substrate, whose resident state
  /// stays o(m). Purely an admission/accounting control — it never changes
  /// an admitted solve's result.
  std::size_t memory_budget_edges = 0;
  /// Fault injection + retry budget, installed on the substrate before
  /// bind() (src/access wires the injection sites; the in-memory reference
  /// has none). Retries are invisible to the result — sampling masks and
  /// sweep kernels are pure, so a survived fault changes only the meter.
  /// An EXHAUSTED budget degrades gracefully: the solve returns the best
  /// primal so far with SolverStatus::kDegraded instead of throwing.
  FaultPlan faults;
  /// Invoked after every completed outer round with a checkpoint that
  /// resumes the solve bitwise-identically (core/checkpoint). Return false
  /// to stop the solve (SolverStatus::kInterrupted). The callback owns
  /// persistence — typically RoundCheckpoint::serialize to stable storage.
  std::function<bool(const RoundCheckpoint&)> on_checkpoint;
  /// Resume from a checkpoint produced by on_checkpoint for the SAME solve
  /// configuration and instance (validated; ConfigError on mismatch). Must
  /// outlive solve(). The resumed run replays nothing: it restores the
  /// dual iterate, incumbent, history and meters, then continues at
  /// next_round.
  const RoundCheckpoint* resume_from = nullptr;
  /// Cooperative cancellation (util/cancel): polled at the round-loop top,
  /// at pipeline stage boundaries, between inner MW iterations and between
  /// EdgeStream pass chunks. Unarmed by default. Cancelling returns the
  /// anytime result (SolverStatus::kCancelled).
  CancelToken cancel;
  /// Wall-clock budget on a Clock (unarmed by default); polled at the same
  /// safe points. Expiry returns the anytime result (kDeadline). Use a
  /// FakeClock to make deadline behaviour deterministic in tests.
  Deadline deadline;
  /// Mutation generation of the graph this solve runs against (a
  /// DynamicGraph's delta counter; 0 for static graphs). Part of the
  /// checkpoint identity: a checkpoint cut before a delta is a typed
  /// rejection on resume, never a silent wrong-graph solve — n, m and even
  /// the retained count can all survive a remove+insert delta unchanged.
  std::uint64_t graph_generation = 0;
};

struct RoundStats {
  std::size_t round = 0;
  double lambda = 0;
  double beta = 0;
  double best_value = 0;  // original weights
  std::size_t stored_edges = 0;
  std::size_t oracle_calls = 0;
};

/// Warm-start handle emitted by every solve: the final dual iterate plus
/// the identity of the configuration/instance it certifies. This is the
/// "learned duals" seed for Solver::resolve after an edge delta — the
/// duals transfer because unchanged covering rows keep their values
/// bitwise when the level structure (W*, L) is preserved; deletes only
/// remove rows; and inserted rows are repaired locally. It deliberately
/// carries NO primal support: edge ids change across canonical
/// re-materializations, so the incumbent is re-anchored by an offline
/// solve on the post-delta graph instead.
struct WarmStart {
  // -- Identity (validated by resolve; mismatch falls back to scratch). --
  std::uint64_t solver_seed = 0;
  double eps = 0;
  double p = 0;
  std::uint64_t sparsifiers = 0;  // resolved t
  std::uint64_t n = 0;
  std::int32_t levels = 0;
  double w_star = 0;  // level-structure fingerprint (bit compare)
  std::uint64_t graph_generation = 0;
  // -- The dual iterate (DualState::restore_raw inputs). --
  double dual_scale = 1.0;
  std::vector<std::pair<std::uint64_t, double>> xik;  // activation order
  std::vector<double> xi;
  std::vector<OddSetVar> odd_sets;
  double lambda = 0;  // certificate level the iterate reached
  // -- Cost of the solve that produced it (saved-work baselines). --
  std::size_t outer_rounds = 0;
  std::size_t passes = 0;
};

struct SolverResult {
  /// Best integral b-matching found (multiplicities; for unit capacities
  /// every multiplicity is one).
  BMatching b_matching;
  /// Same solution as a plain matching when all capacities are 1.
  Matching matching;
  /// Original-weight value of the solution.
  double value = 0;
  /// Rigorous dual upper bound on the optimum (original weights).
  double dual_bound = 0;
  /// value / dual_bound (certified approximation factor).
  double certified_ratio = 0;
  double lambda = 0;
  double beta = 0;  // final normalized budget
  std::size_t outer_rounds = 0;
  std::size_t oracle_calls = 0;
  ResourceMeter meter;
  std::vector<RoundStats> history;
  /// How the solve ended (kDegraded/kInterrupted/kDeadline/kCancelled
  /// results still carry a rigorous dual_bound and certified_ratio for the
  /// value returned).
  SolverStatus status = SolverStatus::kComplete;
  /// For kDegraded: the exhausted fault's message (site/round/attempt).
  std::string fault_detail;
  /// The last completed round's checkpoint whenever the solve stopped
  /// early (kInterrupted/kDeadline/kCancelled/kDegraded) and at least one
  /// round finished with checkpointing active — checkpoints are built per
  /// round when on_checkpoint is set OR a cancel token / deadline is
  /// armed. Resume via Solver::solve(*checkpoint) continues the solve
  /// bitwise-identically; null when the solve ran to completion (or
  /// stopped before round 1).
  std::shared_ptr<const RoundCheckpoint> checkpoint;
  /// Warm-start handle for Solver::resolve after the next edge delta.
  std::shared_ptr<const WarmStart> warm;
  /// True iff this result came from resolve()'s warm path (restored duals
  /// + feasibility repair) rather than a from-scratch round loop.
  bool warm_resolve = false;
  /// Why resolve() fell back to a from-scratch solve ("" = it didn't).
  std::string resolve_fallback;
};

class Solver {
 public:
  /// The graph and capacities must outlive the solver.
  Solver(const Graph& g, const Capacities& b, SolverOptions options);

  /// Unit capacities.
  Solver(const Graph& g, SolverOptions options);

  SolverResult solve();

  /// Resume from `resume_from` (overrides SolverOptions::resume_from).
  SolverResult solve(const RoundCheckpoint& resume_from);

  /// Incremental re-solve after edge churn. The solver's graph must be the
  /// POST-delta graph; `prev` is the warm handle of a solve on the
  /// pre-delta graph and `delta` the net effective churn between the two
  /// (DynamicGraph::delta_since). Seeds the dual state from `prev` via
  /// restore_raw, runs the deterministic feasibility-repair pass (raise
  /// only the covering rows of inserted edges), re-anchors the incumbent
  /// with one canonical offline solve, then iterates MW rounds with the
  /// existing round pipeline until the exact-lambda certificate
  /// re-certifies — zero rounds when the repaired iterate still clears the
  /// 1 - 3 eps bar. Falls back to a from-scratch solve (with
  /// SolverResult::resolve_fallback saying why) when the warm identity
  /// does not transfer: changed configuration, changed vertex count, or a
  /// delta that moved the level structure (W* / level count), under which
  /// the stale duals certify nothing.
  SolverResult resolve(const WarmStart& prev, const dyn::EdgeDelta& delta);

 private:
  SolverResult solve_impl(const RoundCheckpoint* resume,
                          const WarmStart* warm = nullptr,
                          const dyn::EdgeDelta* delta = nullptr);

  const Graph* g_;
  Capacities b_;
  SolverOptions options_;
};

/// One-call convenience API for ordinary weighted matching.
SolverResult solve_matching(const Graph& g, const SolverOptions& options);

/// One-call convenience API for weighted b-matching.
SolverResult solve_b_matching(const Graph& g, const Capacities& b,
                              const SolverOptions& options);

}  // namespace dp::core
