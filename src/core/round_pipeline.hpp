#pragma once
// Staged round pipeline — the execution engine behind one adaptive sampling
// round of Algorithm 2 (the body of Solver::solve's outer loop).
//
// A round decomposes into explicit stages over a RoundContext that owns the
// per-round buffers of the Multipliers/Draw/InnerRefine stages (those
// allocate nothing in steady state; OfflineResolve builds its own working
// set per round — one job in flight at a time, off the critical path when
// overlapped):
//
//   Multipliers ──> Draw ──┬── OfflineResolve ──┐
//                          └── InnerRefine ─────┴──> Merge
//
//  - open_round (the Multipliers stage's access half): ONE substrate sweep
//    over the retained edges filling the covering ratios, whose exact min
//    is lambda — the Corollary 6 stopping certificate. The solver checks
//    the stopping rule on the returned lambda; if the round proceeds, the
//    staged ratios feed the rest of Multipliers without another access.
//  - Multipliers: exponential covering multipliers u (Theorem 5 rule) from
//    the staged ratios, then the deferred-sparsifier inclusion
//    probabilities (sparsify/deferred).
//  - Draw: all t deferred sparsifiers through the access substrate
//    (core/sampling masks — in-memory sweep, streaming pass, or a real
//    MapReduce simulator round). The draw output is frozen until Merge.
//  - OfflineResolve: the offline (1-a3)-approximation on the union of
//    stored edges (Algorithm 2 step 5). Pure function of the frozen draw —
//    the union is materialized from the substrate's immutable stored-edge
//    attributes — so it runs as a one-shot pool job CONCURRENTLY with
//    InnerRefine.
//  - InnerRefine: the t inner multiplicative-weight iterations on the
//    stored samples (deferred refinement + MiniOracle + PST blend). Reads
//    the frozen draw and mutates only the dual state and the incumbent's
//    beta (Algorithm 3 step 5b raises).
//  - Merge: the single join point. Joins the OfflineResolve future, folds
//    the offline solution into the incumbent (best value + beta raise,
//    Algorithm 2 step 6), aggregates the per-stage ResourceMeters into the
//    solve meter in fixed stage order, and releases the round's stored
//    edges on the substrate meter.
//
// Determinism contract (extending the fixed-chunk contract): OfflineResolve
// and InnerRefine share only immutable inputs (the substrate's immutable
// stored-edge attributes, the frozen draw, the union support), every sweep
// runs on fixed
// chunks with exact (min/max) reductions, and all cross-stage effects land
// at Merge — so the pipelined round is bitwise identical to executing the
// same stages sequentially, for any thread count AND for any access
// substrate (gated by tests/test_round_pipeline.cpp, tests/
// test_substrate.cpp, bench_runtime and bench_substrate).
//
// Access discipline: the pipeline touches the INPUT only through the
// substrate (open_round's sweep, the draw, and the stored-union
// materialization). Everything else reads solver-owned state: the dual
// iterate, level metadata, and the stored samples' attributes.

#include <cstdint>
#include <vector>

#include "access/substrate.hpp"
#include "core/dual_state.hpp"
#include "core/oracle.hpp"
#include "core/sampling.hpp"
#include "core/weight_levels.hpp"
#include "graph/graph.hpp"
#include "matching/approx.hpp"
#include "matching/matching.hpp"
#include "sparsify/deferred.hpp"
#include "util/accounting.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dp::core {

/// Offline re-solve output: the solution lifted to full-graph edge ids plus
/// its positive-multiplicity support, so downstream consumers (normalized
/// value, merge) iterate the support instead of rescanning all m edges.
struct OfflineSolution {
  BMatching bm;
  std::vector<EdgeId> support;  // edges with multiplicity > 0, ascending
  double value = 0;             // original-weight value of bm
};

/// The incumbent primal solution and normalized budget beta shared by the
/// stages. InnerRefine raises beta on primal oracle signals; Merge folds in
/// the offline re-solve. Owned by the solver across rounds.
struct Incumbent {
  BMatching best;
  double value = 0;
  double beta = 0;
};

struct RoundPipelineOptions {
  double eps = 0.1;
  /// Sparsifiers (= inner MW iterations) per round; <= 32.
  std::size_t sparsifiers = 4;
  /// Fixed chunk grain of every pipeline sweep (the determinism contract).
  std::size_t grain = 1024;
  /// Run OfflineResolve concurrently with InnerRefine. Off = the
  /// sequential reference; the result is bitwise identical either way.
  bool overlap_offline = true;
  /// Cross-round software pipelining: run_round returns with the round's
  /// OfflineResolve future still in flight (the Merge join deferred) so the
  /// NEXT round's opening multiplier sweep overlaps the offline tail. The
  /// caller joins at the second join point — join_pending() right after
  /// open_round — before anything reads the incumbent. The fold runs at
  /// the same logical place in the round order either way, so the result
  /// is bitwise identical for deferral on or off.
  bool cross_round = false;
  /// Deferred-sparsifier probability knobs for the Multipliers stage.
  DeferredOptions deferred;
  /// Offline solver knobs for OfflineResolve.
  ApproxOptions offline;
  /// Counter-RNG seed of the draw stream (pure function of (seed, round,
  /// q, edge) — see core/sampling).
  std::uint64_t sample_seed = 0;
  /// Cooperative stop (util/cancel), polled at every stage boundary and
  /// between inner MW iterations — the pipeline's safe points. Firing
  /// raises SolveAborted after the in-flight OfflineResolve job (if any)
  /// is joined, so no stage ever outlives the unwind. Unarmed by default.
  StopCheck stop;
};

class RoundPipeline {
 public:
  /// `substrate` must be bound to the same (graph, level graph) as `lg`;
  /// all of `substrate`, `lg`, `b` and `oracle` must outlive the pipeline.
  /// The pipeline shares the oracle's worker pool for every buffer sweep
  /// and for the OfflineResolve job — one solve, one pool.
  RoundPipeline(access::Substrate& substrate, const LevelGraph& lg,
                const Capacities& b, bool unit_caps, MicroOracle& oracle,
                RoundPipelineOptions options);

  /// Joins a still-pending deferred OfflineResolve job (the job reads
  /// `this` and the frozen draw, so it must never outlive the pipeline).
  /// The result is discarded — join_pending is the semantic join point.
  ~RoundPipeline();

  struct RoundReport {
    std::size_t stored_edges = 0;
    std::size_t oracle_calls = 0;
  };

  /// The round's opening access: one substrate multiplier sweep filling
  /// the covering ratios; returns lambda = min ratio (the stopping
  /// certificate). On the streaming substrate this charges the round
  /// iteration's single pass. The staged ratios stay valid for the next
  /// run_round call, provided the dual state is not mutated in between.
  double open_round(const DualState& state);

  /// Execute the rest of the round on the ratios staged by open_round:
  /// Multipliers -> Draw -> OfflineResolve (async) with InnerRefine ->
  /// Merge. `lambda` must be open_round's return value (sets the PST
  /// temperature alpha). Mutates the dual state and the incumbent; merges
  /// the per-stage meters into `meter` at the join point.
  RoundReport run_round(std::size_t round, double lambda, DualState& state,
                        Incumbent& inc, ResourceMeter& meter);

  /// True when a cross-round-deferred Merge awaits join_pending().
  bool merge_pending() const noexcept { return pending_; }

  /// The SECOND join point (cross-round pipelining): join the deferred
  /// round's OfflineResolve future and run its Merge stage — fold the
  /// offline solution into the incumbent, merge the stage meters into
  /// `meter` in fixed stage order, release the round's stored edges. Must
  /// run before anything reads the incumbent for the deferred round (the
  /// solver calls it right after the next open_round, and on every loop
  /// exit path). No-op when nothing is pending.
  void join_pending(Incumbent& inc, ResourceMeter& meter);

  /// Offline re-solve on an explicit stored subgraph: full-graph edge ids
  /// plus their attributes (parallel arrays). The initial support and the
  /// per-round union both route through here; only stored-edge data is
  /// read.
  OfflineSolution solve_offline(const std::vector<EdgeId>& ids,
                                const std::vector<Edge>& edges) const;

  /// Algorithm 2 step 6: fold an offline solution into the incumbent —
  /// remember the best integral solution and raise beta when the
  /// normalized value (over the solution's support) beats it.
  void merge_offline(const OfflineSolution& sol, Incumbent& inc) const;

 private:
  /// Reusable per-round scratch; every stage writes only its own buffers.
  struct RoundContext {
    // open_round / Multipliers stage.
    std::vector<double> cov_ratio;    // staged covering ratios
    std::vector<double> cov_partial;  // chunked exact reductions
    std::vector<double> divisor;      // level-weight gather for the sweeps
    std::vector<double> promise;
    std::vector<double> prob;
    DeferredScratch deferred_scratch;
    // InnerRefine stage.
    std::vector<std::uint32_t> store_idx;  // retained indices, per q
    std::vector<access::RetainedEdge> store_attr;  // attributes, parallel
    std::vector<EdgeId> ids;               // full-graph ids, parallel
    std::vector<double> sample_prob;
    std::vector<double> u_now;
    std::vector<StoredMultiplier> us;
    std::vector<std::uint64_t> row_keys;
    std::vector<double> expos;
    ZetaMap zeta;
    std::vector<std::uint32_t> chunk_cursor;
    // Per-stage meters, merged (in this order) at the Merge stage. The
    // draw's round/pass/store accounting lives on the substrate meter.
    ResourceMeter offline_meter;
    ResourceMeter inner_meter;
  };

  /// Stage 1 (compute half): alpha from lambda, promise multipliers from
  /// the staged ratios, inclusion probabilities. Returns alpha.
  double stage_multipliers(double lambda, std::size_t round);
  /// Stage 2: batched draw of all t sparsifiers through the substrate.
  const SamplingRound& stage_draw(std::size_t round);
  /// Stage 3: launch the offline re-solve on the union as a one-shot job
  /// (inline when overlap is off or no pool exists).
  Future<OfflineSolution> stage_offline(const SamplingRound& draws);
  /// Stage 4: the t inner MW iterations on the stored samples.
  void stage_inner(const SamplingRound& draws, double alpha,
                   DualState& state, Incumbent& inc, RoundReport& report);
  /// Stage 5: join the offline future, fold it into the incumbent, merge
  /// the stage meters into `meter`, release the round's stored edges.
  void stage_merge(Future<OfflineSolution>& offline, Incumbent& inc,
                   ResourceMeter& meter, std::size_t stored_total);

  /// Exponent-shifted covering multipliers u_e (Theorem 5 rule) for the
  /// stored sample in ctx_.store_idx into `u`, on fixed-grain chunks with
  /// exact min/max reductions (bitwise thread-count-invariant). Reads only
  /// stored-edge attributes (deferred refinement: no new data access).
  void covering_us_stored(const DualState& state, double alpha,
                          std::vector<double>& u);
  /// Chunk-parallel extraction of sparsifier q's (store_idx, ids,
  /// sample_prob) from the frozen draw (count + exclusive scan + fill).
  void extract_sparsifier(const SamplingRound& draws, std::size_t q);
  /// Gather the extracted sample's attribute records into ctx_.store_attr
  /// — the one per-iteration stored-attribute access. Table-backed
  /// substrates copy rows; the file-backed backend serves its per-round
  /// sample cache through stored_attr().
  void gather_stored_attrs();
  /// Chunk-parallel zeta build: packed row keys, parallel sort + merge
  /// cascade, exp sweeps with exact max reduction.
  void build_zeta(const DualState& state);

  access::Substrate* substrate_;
  const LevelGraph* lg_;
  const Capacities* b_;
  bool unit_caps_;
  MicroOracle* oracle_;
  ThreadPool* pool_;
  RoundPipelineOptions options_;
  CounterRng sample_rng_;
  double staged_min_ratio_ = 0.0;  // open_round's exact min (= lambda)
  // Last-seen oracle separation counters; stage_inner differences against
  // this snapshot to charge each round's max-flow work to its own meter.
  SeparationStats sep_seen_;
  // Cross-round deferred Merge: the offline future and its round's stored
  // total, parked between run_round and join_pending.
  Future<OfflineSolution> pending_offline_;
  std::size_t pending_stored_ = 0;
  bool pending_ = false;
  RoundContext ctx_;
};

}  // namespace dp::core
