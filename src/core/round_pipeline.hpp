#pragma once
// Staged round pipeline — the execution engine behind one adaptive sampling
// round of Algorithm 2 (the body of Solver::solve's outer loop).
//
// A round decomposes into five explicit stages over a RoundContext that
// owns the per-round buffers of the Multipliers/Draw/InnerRefine stages
// (those allocate nothing in steady state; OfflineResolve builds its own
// working set per round — one job in flight at a time, off the critical
// path when overlapped):
//
//   Multipliers ──> Draw ──┬── OfflineResolve ──┐
//                          └── InnerRefine ─────┴──> Merge
//
//  - Multipliers: exponential covering multipliers u over all retained
//    edges (Theorem 5 rule) and the deferred-sparsifier inclusion
//    probabilities (sparsify/deferred) — the round's ONE access to data.
//  - Draw: all t deferred sparsifiers in one batched counter-based sweep
//    (core/sampling). The draw output is frozen until Merge.
//  - OfflineResolve: the offline (1-a3)-approximation on the union of
//    stored edges (Algorithm 2 step 5). Pure function of the frozen draw —
//    it writes only its own OfflineSolution — so it runs as a one-shot
//    pool job CONCURRENTLY with InnerRefine.
//  - InnerRefine: the t inner multiplicative-weight iterations on the
//    stored samples (deferred refinement + MiniOracle + PST blend). Reads
//    the frozen draw and mutates only the dual state and the incumbent's
//    beta (Algorithm 3 step 5b raises).
//  - Merge: the single join point. Joins the OfflineResolve future, folds
//    the offline solution into the incumbent (best value + beta raise,
//    Algorithm 2 step 6), and aggregates the per-stage ResourceMeters into
//    the solve meter in fixed stage order (Draw, OfflineResolve,
//    InnerRefine).
//
// Determinism contract (extending the fixed-chunk contract): OfflineResolve
// and InnerRefine share only immutable inputs (the graph, the frozen draw,
// the union support), every InnerRefine sweep runs on fixed-grain chunks
// with exact (min/max) or per-slot reductions, and all cross-stage effects
// land at Merge — so the pipelined round is bitwise identical to executing
// the same stages sequentially, for any thread count (gated for 1/2/8
// threads by tests/test_round_pipeline.cpp and bench_runtime).
//
// The stage seams are substrate-agnostic on purpose: Draw already has
// in-memory / semi-streaming / MapReduce implementations behind the same
// SamplingRound surface (core/sampling), and a future substrate only needs
// to reproduce that surface — Multipliers, InnerRefine and Merge never see
// where the stored edges came from.

#include <cstdint>
#include <vector>

#include "core/dual_state.hpp"
#include "core/oracle.hpp"
#include "core/sampling.hpp"
#include "core/weight_levels.hpp"
#include "graph/graph.hpp"
#include "matching/approx.hpp"
#include "matching/matching.hpp"
#include "sparsify/deferred.hpp"
#include "util/accounting.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dp::core {

/// Offline re-solve output: the solution lifted to full-graph edge ids plus
/// its positive-multiplicity support, so downstream consumers (normalized
/// value, merge) iterate the support instead of rescanning all m edges.
struct OfflineSolution {
  BMatching bm;
  std::vector<EdgeId> support;  // edges with multiplicity > 0, ascending
  double value = 0;             // original-weight value of bm
};

/// The incumbent primal solution and normalized budget beta shared by the
/// stages. InnerRefine raises beta on primal oracle signals; Merge folds in
/// the offline re-solve. Owned by the solver across rounds.
struct Incumbent {
  BMatching best;
  double value = 0;
  double beta = 0;
};

struct RoundPipelineOptions {
  double eps = 0.1;
  /// Sparsifiers (= inner MW iterations) per round; <= 32.
  std::size_t sparsifiers = 4;
  /// Fixed chunk grain of every pipeline sweep (the determinism contract).
  std::size_t grain = 1024;
  /// Run OfflineResolve concurrently with InnerRefine. Off = the
  /// sequential reference; the result is bitwise identical either way.
  bool overlap_offline = true;
  /// Deferred-sparsifier probability knobs for the Multipliers stage.
  DeferredOptions deferred;
  /// Offline solver knobs for OfflineResolve.
  ApproxOptions offline;
  /// Counter-RNG seed of the draw stream (pure function of (seed, round,
  /// q, edge) — see core/sampling).
  std::uint64_t sample_seed = 0;
};

class RoundPipeline {
 public:
  /// `g`, `lg`, `b` and `oracle` must outlive the pipeline. The pipeline
  /// shares the oracle's worker pool for every stage sweep and for the
  /// OfflineResolve job — one solve, one pool.
  RoundPipeline(const Graph& g, const LevelGraph& lg, const Capacities& b,
                bool unit_caps, MicroOracle& oracle,
                RoundPipelineOptions options);

  struct RoundReport {
    std::size_t stored_edges = 0;
    std::size_t oracle_calls = 0;
  };

  /// Execute one full round: Multipliers -> Draw -> OfflineResolve (async)
  /// with InnerRefine -> Merge. `lambda` is the round's certificate value
  /// (sets the PST temperature alpha). Mutates the dual state and the
  /// incumbent; merges all per-stage meters into `meter` at the join point.
  RoundReport run_round(std::size_t round, double lambda, DualState& state,
                        Incumbent& inc, ResourceMeter& meter);

  /// Offline re-solve on an explicit support (full-graph edge ids). The
  /// initial support and the per-round union both route through here.
  OfflineSolution solve_offline(const std::vector<EdgeId>& support) const;

  /// Algorithm 2 step 6: fold an offline solution into the incumbent —
  /// remember the best integral solution and raise beta when the
  /// normalized value (over the solution's support) beats it.
  void merge_offline(const OfflineSolution& sol, Incumbent& inc) const;

 private:
  /// Reusable per-round scratch; every stage writes only its own buffers.
  struct RoundContext {
    // Multipliers stage.
    std::vector<double> promise;
    const std::vector<double>* prob = nullptr;  // engine-owned buffer
    // covering_us_into scratch (shared by Multipliers and InnerRefine —
    // the stages never run concurrently with each other).
    std::vector<double> cov_ratio;
    std::vector<double> cov_partial;
    // InnerRefine stage.
    std::vector<EdgeId> ids;
    std::vector<double> sample_prob;
    std::vector<double> u_now;
    std::vector<StoredMultiplier> us;
    std::vector<std::uint64_t> row_keys;
    std::vector<double> expos;
    ZetaMap zeta;
    std::vector<std::uint32_t> chunk_cursor;
    // Per-stage meters, merged (in this order) at the Merge stage.
    ResourceMeter draw_meter;
    ResourceMeter offline_meter;
    ResourceMeter inner_meter;
  };

  /// Stage 1: alpha from lambda, promise multipliers over all retained
  /// edges, inclusion probabilities. Returns alpha.
  double stage_multipliers(const DualState& state, double lambda,
                           std::size_t round);
  /// Stage 2: batched draw of all t sparsifiers (charges ctx_.draw_meter).
  const SamplingRound& stage_draw(std::size_t round);
  /// Stage 3: launch the offline re-solve on the union as a one-shot job
  /// (inline when overlap is off or no pool exists).
  Future<OfflineSolution> stage_offline(const SamplingRound& draws);
  /// Stage 4: the t inner MW iterations on the stored samples.
  void stage_inner(const SamplingRound& draws, double alpha,
                   DualState& state, Incumbent& inc, RoundReport& report);
  /// Stage 5: join the offline future, fold it into the incumbent, merge
  /// the stage meters into `meter`, release the round's stored edges.
  void stage_merge(Future<OfflineSolution>& offline, Incumbent& inc,
                   ResourceMeter& meter, std::size_t stored_total);

  /// Exponent-shifted covering multipliers u_e (Theorem 5 rule) for the
  /// given edge ids into `u`, on fixed-grain chunks with exact min/max
  /// reductions (bitwise thread-count-invariant).
  void covering_us_into(const DualState& state,
                        const std::vector<EdgeId>& edges, double alpha,
                        std::vector<double>& u);
  /// Chunk-parallel extraction of sparsifier q's (ids, sample_prob) from
  /// the frozen draw (count pass + exclusive scan + fill pass).
  void extract_sparsifier(const SamplingRound& draws, std::size_t q);
  /// Chunk-parallel zeta build: packed row keys, parallel sort + merge
  /// cascade, exp sweeps with exact max reduction.
  void build_zeta(const DualState& state);

  const Graph* g_;
  const LevelGraph* lg_;
  const Capacities* b_;
  bool unit_caps_;
  MicroOracle* oracle_;
  ThreadPool* pool_;
  RoundPipelineOptions options_;
  std::vector<Edge> retained_edges_;
  SamplingEngine sampler_;
  CounterRng sample_rng_;
  RoundContext ctx_;
};

}  // namespace dp::core
