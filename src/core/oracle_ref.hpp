#pragma once
// Map-based reference implementation of the MicroOracle — the seed's
// unordered_map code path, retained verbatim behind a conversion boundary.
//
// Production traffic runs the flat-array oracle in core/oracle.{hpp,cpp};
// this reference exists for two consumers only:
//   * the equivalence tests (tests/test_flat_duals.cpp) assert that the flat
//     path reproduces the map path within 1e-9 on randomized instances, and
//   * bench_micro measures both paths in the same binary to track the
//     flat-vs-map speedup over time.
// Keep the numerical structure here frozen: it is the semantic baseline the
// optimized path is validated against.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/oracle.hpp"

namespace dp::core::ref {

/// Sparse zeta/x multipliers keyed by i * num_levels + k (the seed layout).
using MapDuals = std::unordered_map<std::uint64_t, double>;

struct MapDualPoint {
  MapDuals xik;
  std::vector<OddSetVar> odd_sets;
};

class MicroOracleRef {
 public:
  MicroOracleRef(const LevelGraph& lg, const Capacities& b,
                 OracleConfig config)
      : lg_(&lg), b_(&b), config_(std::move(config)) {}

  /// One Algorithm-5 invocation at fixed rho. Converts the sparse inputs to
  /// hash maps, runs the seed implementation, converts the result back.
  MicroResult run(const std::vector<StoredMultiplier>& us,
                  const SparseDuals& zeta, double beta, double rho,
                  OddSetCache* cache = nullptr) const;

  /// Lemma 10 binary search (seed implementation; the zeta map is converted
  /// once per search, matching how the seed solver built it).
  MicroResult run_lagrangian(const std::vector<StoredMultiplier>& us,
                             const SparseDuals& zeta, double beta,
                             std::size_t* calls = nullptr) const;

  double weighted_po(const DualPoint& x, const SparseDuals& zeta) const;
  double weighted_qo(const SparseDuals& zeta) const;

 private:
  MicroResult run_map(const std::vector<StoredMultiplier>& us,
                      const MapDuals& zeta, double beta, double rho,
                      OddSetCache* cache) const;
  double weighted_po_map(const MapDualPoint& x, const MapDuals& zeta) const;
  double weighted_qo_map(const MapDuals& zeta) const;

  const LevelGraph* lg_;
  const Capacities* b_;
  OracleConfig config_;
};

/// Conversions between the flat wire format and the seed's map layout.
MapDuals to_map(const SparseDuals& sparse);
SparseDuals to_sparse(const MapDuals& map);

}  // namespace dp::core::ref
