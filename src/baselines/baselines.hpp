#pragma once
// Baseline algorithms the paper compares against (Section 1 / related work).
//
//  * filtering_matching — Lattanzi et al. SPAA'11: per-weight-class maximal
//    matchings via iterative uniform sampling (O(p) rounds, n^{1+1/p}
//    space), combined greedily from the heaviest class down. O(1)-approx.
//  * streaming_greedy_matching — one-pass maximal matching (1/2 for
//    cardinality; unbounded for weights).
//  * paz_schwartzman_matching — one-pass local-ratio weighted matching,
//    (1/2 - eps)-approximation with O(n log n) space.
//  * improvement_matching — McGregor'05-style one-pass: replace conflicting
//    matched edges when the newcomer is a (1+gamma) factor heavier.
//  * sample_and_solve — uniform n^{1+1/p} edge sample, offline solver on the
//    sample; the strawman the paper's iterative sampling refines.

#include <cstdint>

#include "graph/graph.hpp"
#include "matching/matching.hpp"
#include "util/accounting.hpp"

namespace dp::baselines {

/// Lattanzi et al. filtering. `p` controls the per-round budget n^{1+1/p}.
Matching filtering_matching(const Graph& g, double p, std::uint64_t seed,
                            ResourceMeter* meter = nullptr);

/// b-matching variant with the saturation rule of Lemma 20.
BMatching filtering_b_matching(const Graph& g, const Capacities& b, double p,
                               std::uint64_t seed,
                               ResourceMeter* meter = nullptr);

/// One-pass maximal matching in stream order.
Matching streaming_greedy_matching(const Graph& g,
                                   ResourceMeter* meter = nullptr);

/// One-pass local-ratio (Paz-Schwartzman). eps controls the potential
/// threshold (accept when w_e > (1+eps)(phi_u + phi_v)); eps = 0 gives the
/// classic 1/2-ish behaviour.
Matching paz_schwartzman_matching(const Graph& g, double eps = 0.0,
                                  ResourceMeter* meter = nullptr);

/// One-pass improvement matching: a new edge evicts its (at most two)
/// conflicting matched edges when w_e > (1+gamma) * (their weight).
Matching improvement_matching(const Graph& g, double gamma = 0.0,
                              ResourceMeter* meter = nullptr);

/// Uniform sample of ceil(n^{1+1/p}) edges + offline solve on the sample.
Matching sample_and_solve(const Graph& g, double p, std::uint64_t seed,
                          ResourceMeter* meter = nullptr);

/// McGregor'05-style multi-pass streaming matching: start from one-pass
/// maximal, then improvement passes (each pass evicts matched edges for
/// (1+gamma)-heavier newcomers) until a pass makes no progress or
/// `max_passes` is hit. The paper cites this as the 2^{O(1/eps)}-iteration
/// prior art the dual-primal scheme improves on.
Matching multipass_matching(const Graph& g, double gamma,
                            std::size_t max_passes,
                            ResourceMeter* meter = nullptr);

}  // namespace dp::baselines
