#include "baselines/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <vector>

#include "matching/approx.hpp"
#include "matching/greedy.hpp"
#include "stream/edge_stream.hpp"
#include "util/rng.hpp"

namespace dp::baselines {

namespace {

constexpr EdgeId kNoEdge = ~EdgeId{0};

/// Maximal matching on a set of candidate edge ids via iterative uniform
/// sampling with budget edges per round (Lattanzi filtering). `mate` is
/// shared state so classes can respect earlier (heavier) matches.
void sampled_maximal_matching(const Graph& g, std::vector<EdgeId> candidates,
                              std::size_t budget, std::vector<Vertex>& mate,
                              Matching& m, Rng& rng, ResourceMeter* meter) {
  while (!candidates.empty()) {
    if (meter != nullptr) meter->add_round();
    std::vector<EdgeId> sample;
    if (candidates.size() <= budget) {
      sample = candidates;
    } else {
      const auto picks =
          rng.sample_without_replacement(candidates.size(), budget);
      sample.reserve(picks.size());
      for (std::size_t idx : picks) sample.push_back(candidates[idx]);
    }
    if (meter != nullptr) {
      meter->store_edges(sample.size());
      meter->release_edges(sample.size());
    }
    rng.shuffle(sample);
    extend_maximal_matching(g, sample, mate, m);
    candidates.erase(
        std::remove_if(candidates.begin(), candidates.end(),
                       [&](EdgeId e) {
                         const Edge& edge = g.edge(e);
                         return mate[edge.u] != Matching::kUnmatched ||
                                mate[edge.v] != Matching::kUnmatched;
                       }),
        candidates.end());
  }
}

std::size_t space_budget(std::size_t n, double p) {
  const double exponent = 1.0 + 1.0 / std::max(p, 1.01);
  return static_cast<std::size_t>(
             std::ceil(std::pow(static_cast<double>(n), exponent))) +
         16;
}

}  // namespace

Matching filtering_matching(const Graph& g, double p, std::uint64_t seed,
                            ResourceMeter* meter) {
  Rng rng(seed);
  const std::size_t budget = space_budget(g.num_vertices(), p);

  // Weight classes [2^c, 2^{c+1}); process heaviest class first, respecting
  // matches made by heavier classes (greedy layering => O(1) approx).
  std::map<int, std::vector<EdgeId>, std::greater<>> classes;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (g.edge(e).w <= 0) continue;
    classes[static_cast<int>(std::floor(std::log2(g.edge(e).w)))]
        .push_back(e);
  }
  std::vector<Vertex> mate(g.num_vertices(), Matching::kUnmatched);
  Matching m;
  for (auto& [cls, edges] : classes) {
    // Drop edges already blocked by heavier classes.
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [&](EdgeId e) {
                                 const Edge& edge = g.edge(e);
                                 return mate[edge.u] !=
                                            Matching::kUnmatched ||
                                        mate[edge.v] !=
                                            Matching::kUnmatched;
                               }),
                edges.end());
    sampled_maximal_matching(g, edges, budget, mate, m, rng, meter);
  }
  return m;
}

BMatching filtering_b_matching(const Graph& g, const Capacities& b, double p,
                               std::uint64_t seed, ResourceMeter* meter) {
  Rng rng(seed);
  const std::size_t budget = space_budget(g.num_vertices(), p);
  std::vector<std::int64_t> residual(g.num_vertices());
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    residual[v] = b[static_cast<Vertex>(v)];
  }
  BMatching bm(g.num_edges());

  std::map<int, std::vector<EdgeId>, std::greater<>> classes;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (g.edge(e).w <= 0) continue;
    classes[static_cast<int>(std::floor(std::log2(g.edge(e).w)))]
        .push_back(e);
  }
  for (auto& [cls, candidates] : classes) {
    std::vector<EdgeId> remaining = candidates;
    while (!remaining.empty()) {
      if (meter != nullptr) meter->add_round();
      std::vector<EdgeId> sample;
      if (remaining.size() <= budget) {
        sample = remaining;
      } else {
        const auto picks =
            rng.sample_without_replacement(remaining.size(), budget);
        for (std::size_t idx : picks) sample.push_back(remaining[idx]);
      }
      rng.shuffle(sample);
      for (EdgeId e : sample) {
        const Edge& edge = g.edge(e);
        const std::int64_t y = std::min(residual[edge.u], residual[edge.v]);
        if (y > 0) {
          bm.add(e, y);
          residual[edge.u] -= y;
          residual[edge.v] -= y;
        }
      }
      remaining.erase(std::remove_if(remaining.begin(), remaining.end(),
                                     [&](EdgeId e) {
                                       const Edge& edge = g.edge(e);
                                       return residual[edge.u] == 0 ||
                                              residual[edge.v] == 0;
                                     }),
                      remaining.end());
    }
  }
  return bm;
}

Matching streaming_greedy_matching(const Graph& g, ResourceMeter* meter) {
  EdgeStream stream(g, meter);
  std::vector<char> used(g.num_vertices(), 0);
  Matching m;
  EdgeId id = 0;
  stream.for_each_pass([&](const Edge& e) {
    if (!used[e.u] && !used[e.v]) {
      used[e.u] = used[e.v] = 1;
      m.add(id);
    }
    ++id;
  });
  return m;
}

Matching paz_schwartzman_matching(const Graph& g, double eps,
                                  ResourceMeter* meter) {
  EdgeStream stream(g, meter);
  std::vector<double> phi(g.num_vertices(), 0.0);
  std::vector<EdgeId> stack;  // edges in arrival order of acceptance
  EdgeId id = 0;
  stream.for_each_pass([&](const Edge& e) {
    const double threshold = (1.0 + eps) * (phi[e.u] + phi[e.v]);
    if (e.w > threshold) {
      const double residual = e.w - (phi[e.u] + phi[e.v]);
      phi[e.u] += residual;
      phi[e.v] += residual;
      stack.push_back(id);
    }
    ++id;
  });
  if (meter != nullptr) {
    meter->store_edges(stack.size());
    meter->release_edges(stack.size());
  }
  // Unwind: later (heavier residual) edges first.
  std::vector<char> used(g.num_vertices(), 0);
  Matching m;
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    const Edge& e = g.edge(*it);
    if (!used[e.u] && !used[e.v]) {
      used[e.u] = used[e.v] = 1;
      m.add(*it);
    }
  }
  return m;
}

Matching improvement_matching(const Graph& g, double gamma,
                              ResourceMeter* meter) {
  EdgeStream stream(g, meter);
  std::vector<EdgeId> at(g.num_vertices(), kNoEdge);
  EdgeId id = 0;
  stream.for_each_pass([&](const Edge& e) {
    const EdgeId cu = at[e.u];
    const EdgeId cv = at[e.v];
    double conflict = 0;
    if (cu != kNoEdge) conflict += g.edge(cu).w;
    if (cv != kNoEdge && cv != cu) conflict += g.edge(cv).w;
    if (e.w > (1.0 + gamma) * conflict) {
      if (cu != kNoEdge) {
        at[g.edge(cu).u] = kNoEdge;
        at[g.edge(cu).v] = kNoEdge;
      }
      if (cv != kNoEdge) {
        at[g.edge(cv).u] = kNoEdge;
        at[g.edge(cv).v] = kNoEdge;
      }
      at[e.u] = id;
      at[e.v] = id;
    }
    ++id;
  });
  Matching m;
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    const EdgeId e = at[v];
    if (e != kNoEdge && g.edge(e).u == static_cast<Vertex>(v)) m.add(e);
  }
  return m;
}

Matching multipass_matching(const Graph& g, double gamma,
                            std::size_t max_passes, ResourceMeter* meter) {
  EdgeStream stream(g, meter);
  std::vector<EdgeId> at(g.num_vertices(), kNoEdge);
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    EdgeId id = 0;
    stream.for_each_pass([&](const Edge& e) {
      const EdgeId cu = at[e.u];
      const EdgeId cv = at[e.v];
      if (cu == id || cv == id) {
        ++id;
        return;
      }
      double conflict = 0;
      if (cu != kNoEdge) conflict += g.edge(cu).w;
      if (cv != kNoEdge && cv != cu) conflict += g.edge(cv).w;
      if (e.w > (1.0 + gamma) * conflict) {
        if (cu != kNoEdge) {
          at[g.edge(cu).u] = kNoEdge;
          at[g.edge(cu).v] = kNoEdge;
        }
        if (cv != kNoEdge) {
          at[g.edge(cv).u] = kNoEdge;
          at[g.edge(cv).v] = kNoEdge;
        }
        at[e.u] = id;
        at[e.v] = id;
        changed = true;
      }
      ++id;
    });
    if (!changed) break;
  }
  Matching m;
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    const EdgeId e = at[v];
    if (e != kNoEdge && g.edge(e).u == static_cast<Vertex>(v)) m.add(e);
  }
  return m;
}

Matching sample_and_solve(const Graph& g, double p, std::uint64_t seed,
                          ResourceMeter* meter) {
  Rng rng(seed);
  const std::size_t budget = space_budget(g.num_vertices(), p);
  std::vector<EdgeId> sample;
  if (g.num_edges() <= budget) {
    sample.resize(g.num_edges());
    std::iota(sample.begin(), sample.end(), EdgeId{0});
  } else {
    const auto picks = rng.sample_without_replacement(g.num_edges(), budget);
    sample.reserve(picks.size());
    for (std::size_t idx : picks) sample.push_back(static_cast<EdgeId>(idx));
  }
  if (meter != nullptr) {
    meter->add_round();
    meter->store_edges(sample.size());
  }
  Graph sub(g.num_vertices());
  for (EdgeId e : sample) {
    sub.add_edge(g.edge(e).u, g.edge(e).v, g.edge(e).w);
  }
  const Matching local = approx_weighted_matching(sub);
  Matching m;
  for (EdgeId idx : local.edges()) m.add(sample[idx]);
  return m;
}

}  // namespace dp::baselines
