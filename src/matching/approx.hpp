#pragma once
// Offline approximate weighted matching on in-memory (sub)graphs.
//
// Algorithm 2 of the paper invokes a near-linear offline
// (1-a3)-approximation (Duan-Pettie / Ahn-Guha SODA'14) on the union of the
// stored deferred sparsifiers. This module provides that role:
//   * exact blossom for small instances (n <= exact_threshold), and
//   * greedy + local-search (one-for-two swaps, two-for-one augmentations,
//     free-edge insertion) to convergence otherwise.
// The local search alone guarantees >= 1/2 and empirically lands at 0.9+ of
// optimal (validated against the exact solvers in the test suite).
//
// Re-entrancy: every entry point is a pure function of its arguments — all
// working state (MatchState, sweep orders, the RNG) is local, and the only
// mutation of the input graph is its mutex-guarded lazy CSR build. The
// round pipeline relies on this: OfflineResolve calls these solvers on a
// pool worker concurrently with the inner-iteration sweeps.

#include <cstdint>

#include "matching/matching.hpp"

namespace dp {

struct ApproxOptions {
  /// Use the exact O(n^3) blossom when the graph has at most this many
  /// vertices (0 disables exact dispatch).
  std::size_t exact_threshold = 400;
  /// Maximum improvement sweeps of local search.
  std::size_t max_rounds = 64;
  /// Random seed for sweep order.
  std::uint64_t seed = 1;
};

/// Approximate maximum weight matching.
Matching approx_weighted_matching(const Graph& g, const ApproxOptions& opts);
Matching approx_weighted_matching(const Graph& g);

/// Local-search-only solver (never dispatches to exact); exposed for
/// benchmarking the components separately.
Matching local_search_matching(const Graph& g, std::size_t max_rounds,
                               std::uint64_t seed);

/// Approximate maximum weight uncapacitated b-matching: weight-greedy with
/// saturation followed by unit-transfer local search.
BMatching approx_weighted_b_matching(const Graph& g, const Capacities& b,
                                     std::size_t max_rounds = 32);

}  // namespace dp
