#pragma once
// Matching value types shared by all solvers.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dp {

/// An integral matching: a set of edge ids, pairwise vertex-disjoint.
class Matching {
 public:
  Matching() = default;
  explicit Matching(std::vector<EdgeId> edges) : edges_(std::move(edges)) {}

  const std::vector<EdgeId>& edges() const noexcept { return edges_; }
  std::size_t size() const noexcept { return edges_.size(); }
  bool empty() const noexcept { return edges_.empty(); }
  void add(EdgeId e) { edges_.push_back(e); }

  /// Total weight under g (edge ids must refer to g).
  double weight(const Graph& g) const;

  /// True iff no two edges share a vertex and all ids are in range.
  bool is_valid(const Graph& g) const;

  /// mate[v] = matched neighbour of v, or kUnmatched.
  static constexpr Vertex kUnmatched = ~Vertex{0};
  std::vector<Vertex> mates(const Graph& g) const;

 private:
  std::vector<EdgeId> edges_;
};

/// An integral b-matching: per-edge multiplicities y_e >= 0 with
/// sum_{e at v} y_e <= b_v. (Uncapacitated: an edge may be used up to
/// min(b_u, b_v) times, as in Lemma 20 of the paper.)
class BMatching {
 public:
  BMatching() = default;
  explicit BMatching(std::size_t num_edges) : mult_(num_edges, 0) {}

  std::int64_t multiplicity(EdgeId e) const noexcept { return mult_[e]; }
  void set_multiplicity(EdgeId e, std::int64_t y) { mult_[e] = y; }
  void add(EdgeId e, std::int64_t y = 1) { mult_[e] += y; }
  std::size_t num_edges() const noexcept { return mult_.size(); }

  double weight(const Graph& g) const;

  /// True iff every vertex degree (with multiplicity) is within b.
  bool is_valid(const Graph& g, const Capacities& b) const;

  /// deg[v] = sum of multiplicities at v.
  std::vector<std::int64_t> degrees(const Graph& g) const;

  /// Support size: number of edges with positive multiplicity.
  std::size_t support() const;

 private:
  std::vector<std::int64_t> mult_;
};

/// Promote a plain matching (all b_i = 1) to a b-matching representation.
BMatching to_b_matching(const Graph& g, const Matching& m);

}  // namespace dp
