#include "matching/approx.hpp"

#include <algorithm>
#include <numeric>

#include "matching/blossom_weighted.hpp"
#include "matching/greedy.hpp"
#include "util/rng.hpp"

namespace dp {

namespace {

constexpr EdgeId kNoEdge = ~EdgeId{0};

/// Mutable matching state: per-vertex matched edge id.
struct MatchState {
  const Graph& g;
  std::vector<EdgeId> at;  // matched edge at vertex or kNoEdge
  double weight = 0;

  explicit MatchState(const Graph& graph)
      : g(graph), at(graph.num_vertices(), kNoEdge) {}

  void init_from(const Matching& m) {
    for (EdgeId e : m.edges()) {
      at[g.edge(e).u] = e;
      at[g.edge(e).v] = e;
      weight += g.edge(e).w;
    }
  }

  bool uses(EdgeId e) const {
    return at[g.edge(e).u] == e;  // both endpoints agree by construction
  }

  void remove(EdgeId e) {
    at[g.edge(e).u] = kNoEdge;
    at[g.edge(e).v] = kNoEdge;
    weight -= g.edge(e).w;
  }

  void insert(EdgeId e) {
    at[g.edge(e).u] = e;
    at[g.edge(e).v] = e;
    weight += g.edge(e).w;
  }

  Matching to_matching() const {
    Matching m;
    for (std::size_t v = 0; v < at.size(); ++v) {
      const EdgeId e = at[v];
      if (e != kNoEdge && g.edge(e).u == static_cast<Vertex>(v)) m.add(e);
    }
    return m;
  }
};

/// One-for-two swap: insert e, evicting the (up to two) conflicting matched
/// edges, when that strictly increases the weight.
bool try_swap_in(MatchState& state, EdgeId e) {
  const Edge& edge = state.g.edge(e);
  const EdgeId cu = state.at[edge.u];
  const EdgeId cv = state.at[edge.v];
  if (cu == e || cv == e) return false;
  double cost = 0;
  if (cu != kNoEdge) cost += state.g.edge(cu).w;
  if (cv != kNoEdge && cv != cu) cost += state.g.edge(cv).w;
  if (edge.w <= cost + 1e-12) return false;
  if (cu != kNoEdge) state.remove(cu);
  if (cv != kNoEdge && cv != cu) state.remove(cv);
  state.insert(e);
  return true;
}

/// Two-for-one augmentation around a matched edge e=(u,v): find the best
/// pair of edges (u,a), (v,b), a != b, with a and b currently free, whose
/// combined weight beats w(e).
bool try_two_for_one(MatchState& state, EdgeId e) {
  const Edge& edge = state.g.edge(e);
  if (!state.uses(e)) return false;

  auto best_free = [&](Vertex x, Vertex exclude) {
    EdgeId best = kNoEdge;
    double best_w = 0;
    for (const auto& inc : state.g.neighbors(x)) {
      if (inc.edge == e) continue;
      const Vertex other = inc.neighbor;
      if (other == exclude) continue;
      if (state.at[other] != kNoEdge) continue;
      if (state.g.edge(inc.edge).w > best_w) {
        best_w = state.g.edge(inc.edge).w;
        best = inc.edge;
      }
    }
    return std::pair<EdgeId, double>(best, best_w);
  };

  auto [eu, wu] = best_free(edge.u, edge.v);
  auto [ev, wv] = best_free(edge.v, edge.u);
  // The two replacement edges must not share the free endpoint; keep the
  // heavier side if they collide.
  if (eu != kNoEdge && ev != kNoEdge) {
    const Edge& a = state.g.edge(eu);
    const Edge& b = state.g.edge(ev);
    const Vertex fa = a.u == edge.u ? a.v : a.u;
    const Vertex fb = b.u == edge.v ? b.v : b.u;
    if (fa == fb) {
      if (wu >= wv) {
        ev = kNoEdge;
        wv = 0;
      } else {
        eu = kNoEdge;
        wu = 0;
      }
    }
  }
  const double gain = wu + wv;
  if (gain <= edge.w + 1e-12) return false;

  state.remove(e);
  if (eu != kNoEdge) state.insert(eu);
  if (ev != kNoEdge && ev != eu) state.insert(ev);
  return true;
}

/// Add any edge whose endpoints are both free (restores maximality after
/// swaps).
bool add_free_edges(MatchState& state,
                    const std::vector<EdgeId>& order) {
  bool changed = false;
  for (EdgeId e : order) {
    const Edge& edge = state.g.edge(e);
    if (state.at[edge.u] == kNoEdge && state.at[edge.v] == kNoEdge &&
        edge.w > 0) {
      state.insert(e);
      changed = true;
    }
  }
  return changed;
}

}  // namespace

Matching local_search_matching(const Graph& g, std::size_t max_rounds,
                               std::uint64_t seed) {
  MatchState state(g);
  state.init_from(greedy_matching(g));

  std::vector<EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::stable_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return g.edge(a).w > g.edge(b).w;
  });
  Rng rng(seed);

  for (std::size_t round = 0; round < max_rounds; ++round) {
    bool changed = false;
    for (EdgeId e : order) {
      if (try_swap_in(state, e)) changed = true;
    }
    // Matched edge ids snapshot (state mutates during iteration).
    std::vector<EdgeId> matched;
    for (std::size_t v = 0; v < g.num_vertices(); ++v) {
      const EdgeId e = state.at[v];
      if (e != kNoEdge && g.edge(e).u == static_cast<Vertex>(v)) {
        matched.push_back(e);
      }
    }
    for (EdgeId e : matched) {
      if (try_two_for_one(state, e)) changed = true;
    }
    if (add_free_edges(state, order)) changed = true;
    if (!changed) break;
    // Randomize sweep order a little to escape cyclic patterns.
    if (round % 4 == 3) rng.shuffle(order);
  }
  return state.to_matching();
}

Matching approx_weighted_matching(const Graph& g, const ApproxOptions& opts) {
  if (opts.exact_threshold > 0 && g.num_vertices() <= opts.exact_threshold) {
    return max_weight_matching(g);
  }
  return local_search_matching(g, opts.max_rounds, opts.seed);
}

Matching approx_weighted_matching(const Graph& g) {
  return approx_weighted_matching(g, ApproxOptions{});
}

BMatching approx_weighted_b_matching(const Graph& g, const Capacities& b,
                                     std::size_t max_rounds) {
  BMatching bm = greedy_b_matching(g, b);
  std::vector<std::int64_t> residual(g.num_vertices());
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    residual[v] = b[static_cast<Vertex>(v)];
  }
  const std::vector<std::int64_t> deg = bm.degrees(g);
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    residual[v] -= deg[v];
  }

  std::vector<EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::stable_sort(order.begin(), order.end(), [&](EdgeId x, EdgeId y) {
    return g.edge(x).w > g.edge(y).w;
  });

  // Unit-transfer local search: move one unit from a lighter incident edge
  // to a heavier one while capacities allow.
  g.build_adjacency();
  auto lightest_used_at = [&](Vertex v, EdgeId exclude) {
    EdgeId best = kNoEdge;
    double best_w = 1e300;
    for (const auto& inc : g.neighbors(v)) {
      if (inc.edge == exclude) continue;
      if (bm.multiplicity(inc.edge) > 0 && g.edge(inc.edge).w < best_w) {
        best_w = g.edge(inc.edge).w;
        best = inc.edge;
      }
    }
    return best;
  };

  for (std::size_t round = 0; round < max_rounds; ++round) {
    bool changed = false;
    for (EdgeId e : order) {
      const Edge& edge = g.edge(e);
      for (;;) {
        std::int64_t ru = residual[edge.u];
        std::int64_t rv = residual[edge.v];
        EdgeId du = kNoEdge, dv = kNoEdge;
        double cost = 0;
        if (ru == 0) {
          du = lightest_used_at(edge.u, e);
          if (du == kNoEdge) break;
          cost += g.edge(du).w;
        }
        if (rv == 0) {
          dv = lightest_used_at(edge.v, e);
          if (dv == kNoEdge) break;
          if (dv == du) break;  // same edge can't free both endpoints
          cost += g.edge(dv).w;
        }
        if (edge.w <= cost + 1e-12) break;
        if (du != kNoEdge) {
          bm.add(du, -1);
          residual[g.edge(du).u] += 1;
          residual[g.edge(du).v] += 1;
        }
        if (dv != kNoEdge) {
          bm.add(dv, -1);
          residual[g.edge(dv).u] += 1;
          residual[g.edge(dv).v] += 1;
        }
        bm.add(e, 1);
        residual[edge.u] -= 1;
        residual[edge.v] -= 1;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return bm;
}

}  // namespace dp
