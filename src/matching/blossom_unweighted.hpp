#pragma once
// Exact maximum-cardinality matching in general graphs: Edmonds' blossom
// algorithm with path-compression contraction, O(V * E). Ground truth for
// the unweighted experiments and the cardinality half of the test suite.

#include "matching/matching.hpp"

namespace dp {

/// Maximum cardinality matching of g (weights ignored).
Matching max_cardinality_matching(const Graph& g);

}  // namespace dp
