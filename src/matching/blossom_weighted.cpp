#include "matching/blossom_weighted.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>
#include <vector>

namespace dp {

namespace {

// Primal-dual blossom solver on a dense matrix, 1-indexed vertices.
// Blossom (super)vertices occupy ids n+1 .. n_x <= 2n. The structure follows
// the classical O(n^3) formulation: S-labels (0 = outer/even, 1 = inner/odd,
// -1 = free), per-vertex duals lab[], slack pointers per root vertex, and
// explicit blossom flower lists with rotation on augmentation.
class WeightedBlossom {
 public:
  explicit WeightedBlossom(int n)
      : n_(n),
        n_x_(n),
        size_(2 * n + 2),
        g_(size_ * size_),
        lab_(size_, 0),
        match_(size_, 0),
        slack_(size_, 0),
        st_(size_, 0),
        pa_(size_, 0),
        s_(size_, -1),
        vis_(size_, 0),
        flo_from_(size_ * (n + 1), 0),
        flo_(size_) {
    // Every cell carries its own endpoints; e_delta() reads them even for
    // weight-0 (absent) edges during slack bookkeeping.
    for (int u = 0; u < size_; ++u) {
      for (int v = 0; v < size_; ++v) {
        edge(u, v).u = u;
        edge(u, v).v = v;
      }
    }
  }

  void set_weight(int u, int v, std::int64_t w) {
    // Parallel edges: keep the best.
    if (w > edge(u, v).w) {
      edge(u, v).w = w;
      edge(v, u).w = w;
    }
  }

  /// Runs the algorithm; afterwards mate(u) gives the 1-indexed partner of
  /// u or 0.
  void solve() {
    std::fill(match_.begin(), match_.end(), 0);
    n_x_ = n_;
    std::int64_t w_max = 0;
    for (int u = 0; u <= n_; ++u) {
      st_[u] = u;
      flo_[u].clear();
    }
    for (int u = 1; u <= n_; ++u) {
      for (int v = 1; v <= n_; ++v) {
        flo_from(u, v) = (u == v ? u : 0);
        w_max = std::max(w_max, edge(u, v).w);
      }
    }
    for (int u = 1; u <= n_; ++u) lab_[u] = w_max;
    while (matching()) {
    }
  }

  int mate(int u) const { return match_[u]; }

 private:
  struct Arc {
    int u = 0, v = 0;
    std::int64_t w = 0;
  };

  Arc& edge(int u, int v) { return g_[static_cast<std::size_t>(u) * size_ + v]; }
  const Arc& edge(int u, int v) const {
    return g_[static_cast<std::size_t>(u) * size_ + v];
  }
  int& flo_from(int b, int x) {
    return flo_from_[static_cast<std::size_t>(b) * (n_ + 1) + x];
  }

  std::int64_t e_delta(const Arc& e) const {
    return lab_[e.u] + lab_[e.v] - edge(e.u, e.v).w * 2;
  }

  void update_slack(int u, int x) {
    if (!slack_[x] || e_delta(edge(u, x)) < e_delta(edge(slack_[x], x))) {
      slack_[x] = u;
    }
  }

  void set_slack(int x) {
    slack_[x] = 0;
    for (int u = 1; u <= n_; ++u) {
      if (edge(u, x).w > 0 && st_[u] != x && s_[st_[u]] == 0) {
        update_slack(u, x);
      }
    }
  }

  void q_push(int x) {
    if (x <= n_) {
      q_.push_back(x);
    } else {
      for (int i : flo_[x]) q_push(i);
    }
  }

  void set_st(int x, int b) {
    st_[x] = b;
    if (x > n_) {
      for (int i : flo_[x]) set_st(i, b);
    }
  }

  int get_pr(int b, int xr) {
    auto& f = flo_[b];
    const int pr = static_cast<int>(
        std::find(f.begin(), f.end(), xr) - f.begin());
    if (pr % 2 == 1) {
      std::reverse(f.begin() + 1, f.end());
      return static_cast<int>(f.size()) - pr;
    }
    return pr;
  }

  void set_match(int u, int v) {
    match_[u] = edge(u, v).v;
    if (u > n_) {
      const Arc e = edge(u, v);
      const int xr = flo_from(u, e.u);
      const int pr = get_pr(u, xr);
      for (int i = 0; i < pr; ++i) {
        set_match(flo_[u][static_cast<std::size_t>(i)],
                  flo_[u][static_cast<std::size_t>(i ^ 1)]);
      }
      set_match(xr, v);
      std::rotate(flo_[u].begin(), flo_[u].begin() + pr, flo_[u].end());
    }
  }

  void augment(int u, int v) {
    for (;;) {
      const int xnv = st_[match_[u]];
      set_match(u, v);
      if (!xnv) return;
      set_match(xnv, st_[pa_[xnv]]);
      u = st_[pa_[xnv]];
      v = xnv;
    }
  }

  int get_lca(int u, int v) {
    ++timestamp_;
    while (u || v) {
      if (u != 0) {
        if (vis_[u] == timestamp_) return u;
        vis_[u] = timestamp_;
        u = st_[match_[u]];
        if (u) u = st_[pa_[u]];
      }
      std::swap(u, v);
    }
    return 0;
  }

  void add_blossom(int u, int lca, int v) {
    int b = n_ + 1;
    while (b <= n_x_ && st_[b]) ++b;
    if (b > n_x_) ++n_x_;
    lab_[b] = 0;
    s_[b] = 0;
    match_[b] = match_[lca];
    flo_[b].clear();
    flo_[b].push_back(lca);
    for (int x = u, y; x != lca; x = st_[pa_[y]]) {
      flo_[b].push_back(x);
      y = st_[match_[x]];
      flo_[b].push_back(y);
      q_push(y);
    }
    std::reverse(flo_[b].begin() + 1, flo_[b].end());
    for (int x = v, y; x != lca; x = st_[pa_[y]]) {
      flo_[b].push_back(x);
      y = st_[match_[x]];
      flo_[b].push_back(y);
      q_push(y);
    }
    set_st(b, b);
    for (int x = 1; x <= n_x_; ++x) {
      edge(b, x).w = 0;
      edge(x, b).w = 0;
    }
    for (int x = 1; x <= n_; ++x) flo_from(b, x) = 0;
    for (int xs : flo_[b]) {
      for (int x = 1; x <= n_x_; ++x) {
        if (edge(b, x).w == 0 ||
            e_delta(edge(xs, x)) < e_delta(edge(b, x))) {
          edge(b, x) = edge(xs, x);
          edge(x, b) = edge(x, xs);
        }
      }
      for (int x = 1; x <= n_; ++x) {
        if (flo_from(xs, x)) flo_from(b, x) = xs;
      }
    }
    set_slack(b);
  }

  void expand_blossom(int b) {
    for (int i : flo_[b]) set_st(i, i);
    const int xr = flo_from(b, edge(b, pa_[b]).u);
    const int pr = get_pr(b, xr);
    for (int i = 0; i < pr; i += 2) {
      const int xs = flo_[b][static_cast<std::size_t>(i)];
      const int xns = flo_[b][static_cast<std::size_t>(i + 1)];
      pa_[xs] = edge(xns, xs).u;
      s_[xs] = 1;
      s_[xns] = 0;
      slack_[xs] = 0;
      set_slack(xns);
      q_push(xns);
    }
    s_[xr] = 1;
    pa_[xr] = pa_[b];
    for (std::size_t i = static_cast<std::size_t>(pr) + 1;
         i < flo_[b].size(); ++i) {
      const int xs = flo_[b][i];
      s_[xs] = -1;
      set_slack(xs);
    }
    st_[b] = 0;
  }

  bool on_found_edge(const Arc& e) {
    const int u = st_[e.u];
    const int v = st_[e.v];
    if (s_[v] == -1) {
      pa_[v] = e.u;
      s_[v] = 1;
      const int nu = st_[match_[v]];
      slack_[v] = 0;
      slack_[nu] = 0;
      s_[nu] = 0;
      q_push(nu);
    } else if (s_[v] == 0) {
      const int lca = get_lca(u, v);
      if (!lca) {
        augment(u, v);
        augment(v, u);
        return true;
      }
      add_blossom(u, lca, v);
    }
    return false;
  }

  bool matching() {
    std::fill(s_.begin() + 1, s_.begin() + n_x_ + 1, -1);
    std::fill(slack_.begin() + 1, slack_.begin() + n_x_ + 1, 0);
    q_.clear();
    for (int x = 1; x <= n_x_; ++x) {
      if (st_[x] == x && !match_[x]) {
        pa_[x] = 0;
        s_[x] = 0;
        q_push(x);
      }
    }
    if (q_.empty()) return false;
    for (;;) {
      while (!q_.empty()) {
        const int u = q_.front();
        q_.pop_front();
        if (s_[st_[u]] == 1) continue;
        for (int v = 1; v <= n_; ++v) {
          if (edge(u, v).w > 0 && st_[u] != st_[v]) {
            if (e_delta(edge(u, v)) == 0) {
              if (on_found_edge(edge(u, v))) return true;
            } else {
              update_slack(u, st_[v]);
            }
          }
        }
      }
      std::int64_t d = std::numeric_limits<std::int64_t>::max();
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[b] == b && s_[b] == 1) d = std::min(d, lab_[b] / 2);
      }
      for (int x = 1; x <= n_x_; ++x) {
        if (st_[x] == x && slack_[x]) {
          if (s_[x] == -1) {
            d = std::min(d, e_delta(edge(slack_[x], x)));
          } else if (s_[x] == 0) {
            d = std::min(d, e_delta(edge(slack_[x], x)) / 2);
          }
        }
      }
      for (int u = 1; u <= n_; ++u) {
        if (s_[st_[u]] == 0) {
          if (lab_[u] <= d) return false;  // dual would hit zero: done
          lab_[u] -= d;
        } else if (s_[st_[u]] == 1) {
          lab_[u] += d;
        }
      }
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[b] == b) {
          if (s_[b] == 0) {
            lab_[b] += d * 2;
          } else if (s_[b] == 1) {
            lab_[b] -= d * 2;
          }
        }
      }
      q_.clear();
      for (int x = 1; x <= n_x_; ++x) {
        if (st_[x] == x && slack_[x] && st_[slack_[x]] != x &&
            e_delta(edge(slack_[x], x)) == 0) {
          if (on_found_edge(edge(slack_[x], x))) return true;
        }
      }
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[b] == b && s_[b] == 1 && lab_[b] == 0) expand_blossom(b);
      }
    }
  }

  int n_;
  int n_x_;
  int size_;
  std::vector<Arc> g_;
  std::vector<std::int64_t> lab_;
  std::vector<int> match_, slack_, st_, pa_;
  std::vector<int> s_, vis_;
  std::vector<int> flo_from_;
  std::vector<std::vector<int>> flo_;
  std::deque<int> q_;
  int timestamp_ = 0;
};

}  // namespace

Matching max_weight_matching_integral(const Graph& g,
                                      const std::vector<std::int64_t>& w) {
  const int n = static_cast<int>(g.num_vertices());
  if (n == 0) return Matching{};
  WeightedBlossom solver(n);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (w[e] <= 0) continue;  // nonpositive edges never help
    const Edge& edge = g.edge(e);
    solver.set_weight(static_cast<int>(edge.u) + 1,
                      static_cast<int>(edge.v) + 1, w[e]);
  }
  solver.solve();

  // Extract edge ids: for each mated pair pick the max-(integer)weight edge.
  Matching m;
  std::vector<char> emitted(g.num_vertices(), 0);
  g.build_adjacency();
  for (int u = 1; u <= n; ++u) {
    const int v = solver.mate(u);
    if (v == 0 || v < u) continue;
    const auto gu = static_cast<Vertex>(u - 1);
    const auto gv = static_cast<Vertex>(v - 1);
    if (emitted[gu] || emitted[gv]) continue;
    EdgeId best = ~EdgeId{0};
    std::int64_t best_w = std::numeric_limits<std::int64_t>::min();
    for (const auto& inc : g.neighbors(gu)) {
      if (inc.neighbor == gv && w[inc.edge] > best_w) {
        best = inc.edge;
        best_w = w[inc.edge];
      }
    }
    if (best != ~EdgeId{0}) {
      m.add(best);
      emitted[gu] = emitted[gv] = 1;
    }
  }
  return m;
}

Matching max_weight_matching(const Graph& g) {
  std::vector<std::int64_t> w(g.num_edges());
  bool integral = true;
  double max_w = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const double x = g.edge(e).w;
    if (x < 0) {
      throw std::invalid_argument("max_weight_matching: negative weight");
    }
    max_w = std::max(max_w, x);
    if (std::floor(x) != x) integral = false;
  }
  if (integral && max_w < 1e15) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      w[e] = static_cast<std::int64_t>(g.edge(e).w);
    }
  } else {
    // Scale so the max weight is ~2^40; rounding error per edge is
    // <= max_w * 2^-40, negligible against the approximation tolerances the
    // callers verify.
    const double scale = max_w > 0 ? std::ldexp(1.0, 40) / max_w : 1.0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      w[e] = static_cast<std::int64_t>(std::llround(g.edge(e).w * scale));
    }
  }
  return max_weight_matching_integral(g, w);
}

}  // namespace dp
