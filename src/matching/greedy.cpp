#include "matching/greedy.hpp"

#include <algorithm>
#include <numeric>

namespace dp {

Matching greedy_matching(const Graph& g) {
  std::vector<EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::stable_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return g.edge(a).w > g.edge(b).w;
  });
  std::vector<char> used(g.num_vertices(), 0);
  Matching m;
  for (EdgeId e : order) {
    const Edge& edge = g.edge(e);
    if (!used[edge.u] && !used[edge.v]) {
      used[edge.u] = used[edge.v] = 1;
      m.add(e);
    }
  }
  return m;
}

Matching maximal_matching(const Graph& g) {
  std::vector<char> used(g.num_vertices(), 0);
  Matching m;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    if (!used[edge.u] && !used[edge.v]) {
      used[edge.u] = used[edge.v] = 1;
      m.add(e);
    }
  }
  return m;
}

void extend_maximal_matching(const Graph& g,
                             const std::vector<EdgeId>& candidates,
                             std::vector<Vertex>& mate, Matching& m) {
  for (EdgeId e : candidates) {
    const Edge& edge = g.edge(e);
    if (mate[edge.u] == Matching::kUnmatched &&
        mate[edge.v] == Matching::kUnmatched) {
      mate[edge.u] = edge.v;
      mate[edge.v] = edge.u;
      m.add(e);
    }
  }
}

namespace {

BMatching b_matching_in_order(const Graph& g, const Capacities& b,
                              const std::vector<EdgeId>& order) {
  std::vector<std::int64_t> residual(g.num_vertices());
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    residual[v] = b[static_cast<Vertex>(v)];
  }
  BMatching bm(g.num_edges());
  for (EdgeId e : order) {
    const Edge& edge = g.edge(e);
    const std::int64_t y = std::min(residual[edge.u], residual[edge.v]);
    if (y > 0) {
      bm.set_multiplicity(e, y);
      residual[edge.u] -= y;
      residual[edge.v] -= y;
    }
  }
  return bm;
}

}  // namespace

BMatching greedy_b_matching(const Graph& g, const Capacities& b) {
  std::vector<EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::stable_sort(order.begin(), order.end(), [&](EdgeId x, EdgeId y) {
    return g.edge(x).w > g.edge(y).w;
  });
  return b_matching_in_order(g, b, order);
}

BMatching maximal_b_matching(const Graph& g, const Capacities& b) {
  std::vector<EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), EdgeId{0});
  return b_matching_in_order(g, b, order);
}

}  // namespace dp
