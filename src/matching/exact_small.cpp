#include "matching/exact_small.hpp"

#include <map>
#include <stdexcept>

namespace dp {

namespace {

constexpr double kNegInf = -1e300;

}  // namespace

Matching exact_matching_small(const Graph& g) {
  const std::size_t n = g.num_vertices();
  if (n > 24) {
    throw std::invalid_argument("exact_matching_small: n too large");
  }
  const std::size_t states = std::size_t{1} << n;
  // best[S] = max weight using only vertices in S; choice[S] = edge id used
  // on the lowest set bit (or sentinel for "skip").
  std::vector<double> best(states, 0.0);
  constexpr EdgeId kSkip = ~EdgeId{0};
  std::vector<EdgeId> choice(states, kSkip);

  // Adjacency by vertex for fast lookup of edges inside S.
  g.build_adjacency();
  for (std::size_t s = 1; s < states; ++s) {
    const int low = __builtin_ctzll(s);
    // Option 1: leave `low` unmatched.
    double value = best[s & (s - 1)];
    EdgeId pick = kSkip;
    // Option 2: match `low` with a neighbour inside S.
    for (const auto& inc : g.neighbors(static_cast<Vertex>(low))) {
      const Vertex other = inc.neighbor;
      if (other == static_cast<Vertex>(low)) continue;
      if (!(s >> other & 1)) continue;
      const std::size_t rest =
          s & ~(std::size_t{1} << low) & ~(std::size_t{1} << other);
      const double cand = best[rest] + g.edge(inc.edge).w;
      if (cand > value) {
        value = cand;
        pick = inc.edge;
      }
    }
    best[s] = value;
    choice[s] = pick;
  }

  // Reconstruct.
  Matching m;
  std::size_t s = states - 1;
  while (s != 0) {
    const int low = __builtin_ctzll(s);
    const EdgeId pick = choice[s];
    if (pick == kSkip) {
      s &= s - 1;
    } else {
      const Edge& e = g.edge(pick);
      m.add(pick);
      s &= ~(std::size_t{1} << e.u);
      s &= ~(std::size_t{1} << e.v);
      (void)low;
    }
  }
  return m;
}

double exact_matching_weight_small(const Graph& g) {
  return exact_matching_small(g).weight(g);
}

namespace {

/// Memoized recursion on residual capacity vectors for tiny b-matching.
struct BMatchSolver {
  const Graph& g;
  std::map<std::vector<std::int64_t>, double> memo;

  explicit BMatchSolver(const Graph& graph) : g(graph) {}

  double solve(std::vector<std::int64_t>& residual, EdgeId from) {
    // Try edges from index `from` onward (multiplicities chosen greedily in
    // recursion, order irrelevant for correctness because we branch).
    if (from >= g.num_edges()) return 0.0;
    std::vector<std::int64_t> key(residual);
    key.push_back(from);
    const auto it = memo.find(key);
    if (it != memo.end()) return it->second;

    double best = kNegInf;
    const Edge& e = g.edge(from);
    const std::int64_t cap = std::min(residual[e.u], residual[e.v]);
    for (std::int64_t y = 0; y <= cap; ++y) {
      residual[e.u] -= y;
      residual[e.v] -= y;
      const double cand =
          static_cast<double>(y) * e.w + solve(residual, from + 1);
      residual[e.u] += y;
      residual[e.v] += y;
      if (cand > best) best = cand;
    }
    memo.emplace(std::move(key), best);
    return best;
  }
};

}  // namespace

double exact_b_matching_weight_small(const Graph& g, const Capacities& b) {
  if (g.num_vertices() > 12 || g.num_edges() > 40) {
    throw std::invalid_argument("exact_b_matching_weight_small: too large");
  }
  std::vector<std::int64_t> residual(g.num_vertices());
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    residual[v] = b[static_cast<Vertex>(v)];
  }
  BMatchSolver solver(g);
  return solver.solve(residual, 0);
}

}  // namespace dp
