#include "matching/matching.hpp"

#include <algorithm>

namespace dp {

double Matching::weight(const Graph& g) const {
  double s = 0;
  for (EdgeId e : edges_) s += g.edge(e).w;
  return s;
}

bool Matching::is_valid(const Graph& g) const {
  std::vector<char> used(g.num_vertices(), 0);
  for (EdgeId e : edges_) {
    if (e >= g.num_edges()) return false;
    const Edge& edge = g.edge(e);
    if (used[edge.u] || used[edge.v]) return false;
    used[edge.u] = used[edge.v] = 1;
  }
  return true;
}

std::vector<Vertex> Matching::mates(const Graph& g) const {
  std::vector<Vertex> mate(g.num_vertices(), kUnmatched);
  for (EdgeId e : edges_) {
    mate[g.edge(e).u] = g.edge(e).v;
    mate[g.edge(e).v] = g.edge(e).u;
  }
  return mate;
}

double BMatching::weight(const Graph& g) const {
  double s = 0;
  for (EdgeId e = 0; e < mult_.size(); ++e) {
    if (mult_[e] > 0) s += static_cast<double>(mult_[e]) * g.edge(e).w;
  }
  return s;
}

bool BMatching::is_valid(const Graph& g, const Capacities& b) const {
  if (mult_.size() != g.num_edges()) return false;
  for (std::int64_t y : mult_) {
    if (y < 0) return false;
  }
  const std::vector<std::int64_t> deg = degrees(g);
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    if (deg[v] > b[static_cast<Vertex>(v)]) return false;
  }
  return true;
}

std::vector<std::int64_t> BMatching::degrees(const Graph& g) const {
  std::vector<std::int64_t> deg(g.num_vertices(), 0);
  for (EdgeId e = 0; e < mult_.size(); ++e) {
    if (mult_[e] > 0) {
      deg[g.edge(e).u] += mult_[e];
      deg[g.edge(e).v] += mult_[e];
    }
  }
  return deg;
}

std::size_t BMatching::support() const {
  return static_cast<std::size_t>(
      std::count_if(mult_.begin(), mult_.end(),
                    [](std::int64_t y) { return y > 0; }));
}

BMatching to_b_matching(const Graph& g, const Matching& m) {
  BMatching bm(g.num_edges());
  for (EdgeId e : m.edges()) bm.set_multiplicity(e, 1);
  return bm;
}

}  // namespace dp
