#pragma once
// Exact maximum-weight matching in general graphs: Edmonds-Galil primal-dual
// blossom algorithm, O(n^3) with a dense adjacency matrix. Internally works
// on integer weights; floating-point inputs are scaled (see
// max_weight_matching). Serves as the exact reference solver for the
// benchmark tables up to a few hundred vertices.

#include <cstdint>

#include "matching/matching.hpp"

namespace dp {

/// Exact maximum weight matching of g. Weights must be non-negative.
///
/// If every weight is integral the computation is exact. Otherwise weights
/// are scaled by the largest power of two such that the scaled maximum fits
/// in 2^40 and rounded — the result is exact for the rounded weights, i.e.
/// within n * W / 2^40 of the true optimum.
Matching max_weight_matching(const Graph& g);

/// Exact maximum weight matching with explicitly provided integer weights
/// (parallel to g.edges()).
Matching max_weight_matching_integral(const Graph& g,
                                      const std::vector<std::int64_t>& w);

}  // namespace dp
