#pragma once
// Exact maximum-weight matching for tiny graphs via bitmask dynamic
// programming over vertex subsets (O(2^n * n^2)). Ground truth for tests of
// every other solver; refuses n > 24.

#include "matching/matching.hpp"

namespace dp {

/// Exact maximum weight matching. Throws std::invalid_argument for n > 24.
Matching exact_matching_small(const Graph& g);

/// Exact maximum weight of any matching (value only).
double exact_matching_weight_small(const Graph& g);

/// Exact maximum weight UNCAPACITATED b-matching value for tiny graphs via
/// recursion over residual capacities (exponential; n*max_b small only).
/// Edges may be used with any multiplicity up to residual capacities.
double exact_b_matching_weight_small(const Graph& g, const Capacities& b);

}  // namespace dp
