#include "matching/hungarian.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace dp {

std::optional<std::vector<char>> bipartition(const Graph& g) {
  std::vector<char> side(g.num_vertices(), -1);
  for (std::size_t start = 0; start < g.num_vertices(); ++start) {
    if (side[start] != -1) continue;
    side[start] = 0;
    std::queue<Vertex> q;
    q.push(static_cast<Vertex>(start));
    while (!q.empty()) {
      const Vertex u = q.front();
      q.pop();
      for (const auto& inc : g.neighbors(u)) {
        if (side[inc.neighbor] == -1) {
          side[inc.neighbor] = static_cast<char>(1 - side[u]);
          q.push(inc.neighbor);
        } else if (side[inc.neighbor] == side[u]) {
          return std::nullopt;
        }
      }
    }
  }
  return side;
}

Matching hungarian_matching(const Graph& g) {
  const auto side_opt = bipartition(g);
  if (!side_opt.has_value()) {
    throw std::invalid_argument("hungarian_matching: graph not bipartite");
  }
  const std::vector<char>& side = *side_opt;

  // Collect left/right vertex lists; the matrix is rows x cols with dummy
  // columns so every row may stay unmatched at cost 0. Costs are negated
  // weights (the algorithm minimizes).
  std::vector<Vertex> left, right;
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    (side[v] == 0 ? left : right).push_back(static_cast<Vertex>(v));
  }
  if (left.size() > right.size()) std::swap(left, right);
  const std::size_t rows = left.size();
  const std::size_t cols = right.size() + rows;  // dummies allow skipping
  if (rows == 0) return Matching{};

  std::vector<std::size_t> col_of(g.num_vertices(), ~std::size_t{0});
  std::vector<std::size_t> row_of(g.num_vertices(), ~std::size_t{0});
  for (std::size_t i = 0; i < rows; ++i) row_of[left[i]] = i;
  for (std::size_t j = 0; j < right.size(); ++j) col_of[right[j]] = j;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // cost[i][j]: best (most negative) over parallel edges; dummy cols 0.
  std::vector<std::vector<double>> cost(rows,
                                        std::vector<double>(cols, 0.0));
  std::vector<std::vector<EdgeId>> eid(
      rows, std::vector<EdgeId>(cols, ~EdgeId{0}));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    // Determine which endpoint is a row.
    Vertex lv = edge.u, rv = edge.v;
    if (row_of[lv] == ~std::size_t{0}) std::swap(lv, rv);
    if (row_of[lv] == ~std::size_t{0}) continue;  // neither side is a row
    const std::size_t i = row_of[lv];
    const std::size_t j = col_of[rv];
    if (j == ~std::size_t{0}) continue;
    if (-edge.w < cost[i][j]) {
      cost[i][j] = -edge.w;
      eid[i][j] = e;
    }
  }

  // Standard potentials-based Hungarian on a rows x cols matrix (rows <=
  // cols). 1-indexed internal arrays.
  std::vector<double> u(rows + 1, 0.0), v(cols + 1, 0.0);
  std::vector<std::size_t> p(cols + 1, 0), way(cols + 1, 0);
  for (std::size_t i = 1; i <= rows; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(cols + 1, kInf);
    std::vector<char> used(cols + 1, 0);
    do {
      used[j0] = 1;
      const std::size_t i0 = p[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= cols; ++j) {
        if (used[j]) continue;
        const double cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= cols; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  Matching m;
  for (std::size_t j = 1; j <= cols; ++j) {
    if (p[j] == 0) continue;
    const std::size_t i = p[j] - 1;
    const std::size_t jj = j - 1;
    if (jj < right.size() && eid[i][jj] != ~EdgeId{0} &&
        cost[i][jj] < 0.0) {
      m.add(eid[i][jj]);
    }
  }
  return m;
}

}  // namespace dp
