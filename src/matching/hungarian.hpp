#pragma once
// Exact maximum-weight bipartite matching (not necessarily perfect) via the
// Hungarian algorithm with potentials, O(n^2 m) worst case on the padded
// matrix. Used as ground truth on bipartite instances where the bitmask DP
// is too small and the general blossom unnecessary.

#include <optional>
#include <vector>

#include "matching/matching.hpp"

namespace dp {

/// A 2-coloring of g if it is bipartite (side[v] in {0,1}), else nullopt.
std::optional<std::vector<char>> bipartition(const Graph& g);

/// Exact max-weight matching of a bipartite graph. Throws if g is not
/// bipartite. Only edges with positive weight are ever matched.
Matching hungarian_matching(const Graph& g);

}  // namespace dp
