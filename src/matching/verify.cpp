#include "matching/verify.hpp"

#include <algorithm>
#include <cmath>

namespace dp {

bool fractional_degrees_feasible(const Graph& g, const Capacities& b,
                                 const FractionalMatching& fm, double tol) {
  if (fm.y.size() != g.num_edges()) return false;
  std::vector<double> degree(g.num_vertices(), 0.0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (fm.y[e] < -tol) return false;
    degree[g.edge(e).u] += fm.y[e];
    degree[g.edge(e).v] += fm.y[e];
  }
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    if (degree[v] > static_cast<double>(b[static_cast<Vertex>(v)]) + tol) {
      return false;
    }
  }
  return true;
}

bool odd_set_constraint_holds(const Graph& g, const Capacities& b,
                              const FractionalMatching& fm,
                              const std::vector<Vertex>& odd_set,
                              double tol) {
  double inside = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    if (std::binary_search(odd_set.begin(), odd_set.end(), edge.u) &&
        std::binary_search(odd_set.begin(), odd_set.end(), edge.v)) {
      inside += fm.y[e];
    }
  }
  const double cap =
      std::floor(static_cast<double>(b.weight_of(odd_set)) / 2.0);
  return inside <= cap + tol;
}

std::vector<std::size_t> violated_odd_sets(
    const Graph& g, const Capacities& b, const FractionalMatching& fm,
    const std::vector<std::vector<Vertex>>& sets, double tol) {
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < sets.size(); ++s) {
    if (!odd_set_constraint_holds(g, b, fm, sets[s], tol)) out.push_back(s);
  }
  return out;
}

double fractional_weight(const Graph& g, const FractionalMatching& fm) {
  double total = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    total += fm.y[e] * g.edge(e).w;
  }
  return total;
}

bool dual_feasible(const Graph& g, const OddSetDual& dual, double tol) {
  if (dual.x.size() != g.num_vertices()) return false;
  if (dual.sets.size() != dual.z.size()) return false;
  for (double xi : dual.x) {
    if (xi < -tol) return false;
  }
  for (double zu : dual.z) {
    if (zu < -tol) return false;
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    double cover = dual.x[edge.u] + dual.x[edge.v];
    for (std::size_t s = 0; s < dual.sets.size(); ++s) {
      if (dual.z[s] <= 0) continue;
      const auto& set = dual.sets[s];
      if (std::binary_search(set.begin(), set.end(), edge.u) &&
          std::binary_search(set.begin(), set.end(), edge.v)) {
        cover += dual.z[s];
      }
    }
    if (cover < edge.w - tol) return false;
  }
  return true;
}

double dual_objective(const Capacities& b, const OddSetDual& dual) {
  double total = 0;
  for (std::size_t v = 0; v < dual.x.size(); ++v) {
    total += static_cast<double>(b[static_cast<Vertex>(v)]) * dual.x[v];
  }
  for (std::size_t s = 0; s < dual.sets.size(); ++s) {
    total += std::floor(static_cast<double>(b.weight_of(dual.sets[s])) / 2.0) *
             dual.z[s];
  }
  return total;
}

}  // namespace dp
