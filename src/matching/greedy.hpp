#pragma once
// Greedy and maximal matchings / b-matchings.
//
// * greedy_matching: sort by weight, take feasible — the classic 1/2
//   approximation, used as a baseline throughout the benchmarks.
// * maximal_matching: arbitrary-order maximal matching (1/2 for cardinality).
// * maximal_b_matching: maximal with the saturation rule of Lemma 20 — when
//   an edge (i, j) is chosen its multiplicity is raised to the residual
//   min(b_i, b_j), so each chosen edge saturates an endpoint; this is what
//   makes the Lattanzi-style filtering analysis carry over to b-matching.

#include <cstdint>

#include "matching/matching.hpp"

namespace dp {

/// Weight-sorted greedy matching (>= 1/2 of optimal weight).
Matching greedy_matching(const Graph& g);

/// Maximal matching scanning edges in stored order.
Matching maximal_matching(const Graph& g);

/// Maximal matching over an arbitrary subset of edge ids, scanning in the
/// given order and respecting pre-matched vertices (mate array updated).
void extend_maximal_matching(const Graph& g,
                             const std::vector<EdgeId>& candidates,
                             std::vector<Vertex>& mate, Matching& m);

/// Weight-sorted greedy b-matching: multiplicity = residual min(b_u, b_v)
/// at selection time (uncapacitated b-matching, Lemma 20 saturation).
BMatching greedy_b_matching(const Graph& g, const Capacities& b);

/// Maximal b-matching in stored edge order with saturation.
BMatching maximal_b_matching(const Graph& g, const Capacities& b);

}  // namespace dp
