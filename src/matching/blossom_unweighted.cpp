#include "matching/blossom_unweighted.hpp"

#include <algorithm>
#include <queue>

namespace dp {

namespace {

constexpr Vertex kNone = ~Vertex{0};

/// State for one augmentation search.
struct BlossomSearch {
  const Graph& g;
  std::vector<Vertex> mate;
  std::vector<Vertex> parent;  // alternating-tree parent (an even vertex)
  std::vector<Vertex> base;    // blossom base of each vertex
  std::vector<char> in_queue;
  std::vector<char> in_blossom;
  std::queue<Vertex> queue;

  explicit BlossomSearch(const Graph& graph)
      : g(graph),
        mate(graph.num_vertices(), kNone),
        parent(graph.num_vertices(), kNone),
        base(graph.num_vertices(), 0),
        in_queue(graph.num_vertices(), 0),
        in_blossom(graph.num_vertices(), 0) {}

  Vertex lca(Vertex a, Vertex b) {
    std::vector<char> visited(g.num_vertices(), 0);
    for (;;) {
      a = base[a];
      visited[a] = 1;
      if (mate[a] == kNone) break;
      a = parent[mate[a]];
    }
    for (;;) {
      b = base[b];
      if (visited[b]) return b;
      b = parent[mate[b]];
    }
  }

  void mark_path(Vertex v, Vertex b, Vertex child) {
    while (base[v] != b) {
      in_blossom[base[v]] = 1;
      in_blossom[base[mate[v]]] = 1;
      parent[v] = child;
      child = mate[v];
      v = parent[mate[v]];
    }
  }

  void contract(Vertex u, Vertex v) {
    const Vertex b = lca(u, v);
    std::fill(in_blossom.begin(), in_blossom.end(), 0);
    mark_path(u, b, v);
    mark_path(v, b, u);
    for (std::size_t i = 0; i < g.num_vertices(); ++i) {
      if (in_blossom[base[i]]) {
        base[i] = b;
        if (!in_queue[i]) {
          in_queue[i] = 1;
          queue.push(static_cast<Vertex>(i));
        }
      }
    }
  }

  /// BFS from `root` for an augmenting path; returns its far endpoint or
  /// kNone.
  Vertex find_path(Vertex root) {
    std::fill(parent.begin(), parent.end(), kNone);
    std::fill(in_queue.begin(), in_queue.end(), 0);
    for (std::size_t i = 0; i < g.num_vertices(); ++i) {
      base[i] = static_cast<Vertex>(i);
    }
    queue = {};
    queue.push(root);
    in_queue[root] = 1;
    while (!queue.empty()) {
      const Vertex u = queue.front();
      queue.pop();
      for (const auto& inc : g.neighbors(u)) {
        const Vertex v = inc.neighbor;
        if (base[u] == base[v] || mate[u] == v) continue;
        if (v == root || (mate[v] != kNone && parent[mate[v]] != kNone)) {
          contract(u, v);
        } else if (parent[v] == kNone) {
          parent[v] = u;
          if (mate[v] == kNone) {
            return v;  // augmenting path found
          }
          if (!in_queue[mate[v]]) {
            in_queue[mate[v]] = 1;
            queue.push(mate[v]);
          }
        }
      }
    }
    return kNone;
  }

  void augment(Vertex v) {
    while (v != kNone) {
      const Vertex pv = parent[v];
      const Vertex ppv = mate[pv];
      mate[v] = pv;
      mate[pv] = v;
      v = ppv;
    }
  }
};

}  // namespace

Matching max_cardinality_matching(const Graph& g) {
  BlossomSearch search(g);
  // Greedy initialization speeds up the search substantially.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    if (search.mate[edge.u] == kNone && search.mate[edge.v] == kNone) {
      search.mate[edge.u] = edge.v;
      search.mate[edge.v] = edge.u;
    }
  }
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    if (search.mate[v] != kNone) continue;
    const Vertex end = search.find_path(static_cast<Vertex>(v));
    if (end != kNone) search.augment(end);
  }
  // Convert mate array to edge ids (pick any edge between the mated pair).
  Matching m;
  std::vector<char> emitted(g.num_vertices(), 0);
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    const Vertex u = static_cast<Vertex>(v);
    const Vertex w = search.mate[v];
    if (w == kNone || emitted[u] || emitted[w]) continue;
    for (const auto& inc : g.neighbors(u)) {
      if (inc.neighbor == w) {
        m.add(inc.edge);
        emitted[u] = emitted[w] = 1;
        break;
      }
    }
  }
  return m;
}

}  // namespace dp
