#pragma once
// Feasibility verifiers for primal (fractional / integral) matchings and
// odd-set duals. These make the paper's LP objects first-class checkable
// values: tests and the certificate module verify *feasibility* explicitly
// rather than trusting solver internals.

#include <vector>

#include "graph/graph.hpp"

namespace dp {

/// A fractional b-matching candidate: y_e >= 0 per edge.
struct FractionalMatching {
  std::vector<double> y;
};

/// Check degree feasibility: sum_{e at v} y_e <= b_v (+tol).
bool fractional_degrees_feasible(const Graph& g, const Capacities& b,
                                 const FractionalMatching& fm,
                                 double tol = 1e-9);

/// Check one odd-set constraint: sum_{e inside U} y_e <= floor(||U||_b/2).
bool odd_set_constraint_holds(const Graph& g, const Capacities& b,
                              const FractionalMatching& fm,
                              const std::vector<Vertex>& odd_set,
                              double tol = 1e-9);

/// Violated odd sets among the given candidates (indices into `sets`).
std::vector<std::size_t> violated_odd_sets(
    const Graph& g, const Capacities& b, const FractionalMatching& fm,
    const std::vector<std::vector<Vertex>>& sets, double tol = 1e-9);

/// Weight of a fractional matching.
double fractional_weight(const Graph& g, const FractionalMatching& fm);

/// A dual candidate for the odd-set LP (LP11): per-vertex potentials x_i
/// and odd-set values z_U over an explicit family.
struct OddSetDual {
  std::vector<double> x;                       // per vertex
  std::vector<std::vector<Vertex>> sets;       // odd sets (sorted members)
  std::vector<double> z;                       // parallel to sets
};

/// Dual feasibility: for every edge, x_u + x_v + sum_{U containing both}
/// z_U >= w_e - tol, and all variables nonnegative.
bool dual_feasible(const Graph& g, const OddSetDual& dual, double tol = 1e-9);

/// Dual objective sum b_i x_i + sum floor(||U||_b/2) z_U — an upper bound
/// on the maximum weight b-matching whenever dual_feasible() holds (weak
/// duality over LP1/LP11).
double dual_objective(const Capacities& b, const OddSetDual& dual);

}  // namespace dp
