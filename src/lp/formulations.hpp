#pragma once
// Explicit constructions of the paper's LP relaxations on small graphs, for
// numeric validation of the structural theorems:
//
//   LP1  (= LP6 after weight discretization): exact b-matching LP with
//        odd-set constraints — primal, maximization.
//   LP3:  penalty formulation for unweighted matching (Section 1).
//   LP12 (dual of LP10): layered penalty formulation for weighted
//        b-matching — the relaxation behind Theorem 23.
//
// All builders enumerate odd sets explicitly and are limited to small n.

#include <vector>

#include "graph/graph.hpp"
#include "lp/simplex.hpp"

namespace dp::lp {

/// All vertex subsets U with |U| >= 3 and ||U||_b odd (the constraint for
/// |U| = 1 is vacuous). Requires n <= 20.
std::vector<std::vector<Vertex>> enumerate_odd_sets(std::size_t n,
                                                    const Capacities& b,
                                                    std::size_t max_size = 0);

/// LP1 / LP6: max sum w_e y_e s.t. degree <= b, odd sets, y >= 0.
/// If `include_odd_sets` is false this is the bipartite relaxation.
DenseLP build_matching_lp(const Graph& g, const Capacities& b,
                          bool include_odd_sets);

/// LP3 (paper, unweighted w_ij = 1): max sum y_e - 3 sum mu_i with the
/// penalty-relaxed degree and odd-set constraints. Variable order:
/// y_0..y_{m-1}, mu_0..mu_{n-1}.
DenseLP build_penalty_lp_unweighted(const Graph& g, const Capacities& b);

/// LP12 = dual of LP10 (layered penalty formulation, weighted). Weights of
/// g must already be discretized to powers of (1+eps); `eps` defines the
/// level structure. Variable order: y_e (m), then mu_{i,k} (n*L), then
/// y_i(k) (n*L), where L = number of levels present.
DenseLP build_layered_penalty_lp(const Graph& g, const Capacities& b,
                                 double eps);

/// Optimal value of a DenseLP (throws on non-optimal status).
double lp_optimum(const DenseLP& lp);

/// Width of a covering row a^T x >= c under polytope
/// {x >= 0, P x <= q}: max a^T x / c. Computed by simplex. Infinity when
/// unbounded.
double row_width(const std::vector<double>& a, double c,
                 const std::vector<std::vector<double>>& P,
                 const std::vector<double>& q);

/// Width diagnostics for the matching duals on graph g (unweighted):
/// standard dual LP2 under the budget polytope {b^T x <= beta} versus the
/// penalty dual LP4 under {2 x_i + sum_{U ni i} z_U <= 3}.
struct WidthReport {
  double standard_width = 0;  // grows with beta ~ n
  double penalty_width = 0;   // paper: <= 6, parameter free
};
WidthReport measure_dual_widths(const Graph& g, const Capacities& b,
                                double beta);

}  // namespace dp::lp
