#pragma once
// Small dense LP solver (primal simplex, Bland's rule).
//
// Solves  max c^T x  s.t.  A x <= b,  x >= 0  with b >= 0, which covers
// every explicit formulation in the paper once covering constraints are
// negated. Intended for the numeric validation of the paper's relaxations
// (LP1-LP12, Theorems 22/23) on small graphs — not for production solves.

#include <vector>

namespace dp::lp {

/// maximize c.x subject to A x <= b, x >= 0.
struct DenseLP {
  std::vector<std::vector<double>> A;  // m rows of n coefficients
  std::vector<double> b;               // m
  std::vector<double> c;               // n

  std::size_t num_constraints() const noexcept { return A.size(); }
  std::size_t num_vars() const noexcept { return c.size(); }
};

enum class SimplexStatus { kOptimal, kUnbounded, kIterationLimit };

struct SimplexResult {
  SimplexStatus status = SimplexStatus::kIterationLimit;
  double value = 0.0;
  std::vector<double> x;     // primal solution
  std::vector<double> dual;  // dual values (one per constraint, >= 0)
};

/// Solve with a bounded number of pivots (default scales with problem
/// size). Requires b >= -1e-9 (a slack basis must be feasible).
SimplexResult solve_simplex(const DenseLP& lp, std::size_t max_pivots = 0);

}  // namespace dp::lp
