#include "lp/simplex.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace dp::lp {

SimplexResult solve_simplex(const DenseLP& lp, std::size_t max_pivots) {
  const std::size_t m = lp.num_constraints();
  const std::size_t n = lp.num_vars();
  for (double bi : lp.b) {
    if (bi < -1e-9) {
      throw std::invalid_argument("solve_simplex: requires b >= 0");
    }
  }
  if (max_pivots == 0) max_pivots = 2000 + 50 * (m + n) * (m + n);

  // Tableau: m rows of [A | I | b], objective row [-c | 0 | 0].
  const std::size_t cols = n + m + 1;
  std::vector<std::vector<double>> t(m + 1, std::vector<double>(cols, 0.0));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) t[i][j] = lp.A[i][j];
    t[i][n + i] = 1.0;
    t[i][cols - 1] = std::max(0.0, lp.b[i]);
  }
  for (std::size_t j = 0; j < n; ++j) t[m][j] = -lp.c[j];

  std::vector<std::size_t> basis(m);
  for (std::size_t i = 0; i < m; ++i) basis[i] = n + i;

  constexpr double kEps = 1e-9;
  SimplexResult result;
  std::size_t pivots = 0;
  for (;;) {
    // Entering column: Bland's rule (first negative reduced cost).
    std::size_t enter = cols;
    for (std::size_t j = 0; j + 1 < cols; ++j) {
      if (t[m][j] < -kEps) {
        enter = j;
        break;
      }
    }
    if (enter == cols) {
      result.status = SimplexStatus::kOptimal;
      break;
    }
    // Ratio test: Bland tie-break by smallest basis index.
    std::size_t leave = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m; ++i) {
      if (t[i][enter] > kEps) {
        const double ratio = t[i][cols - 1] / t[i][enter];
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (leave == m || basis[i] < basis[leave]))) {
          best_ratio = ratio;
          leave = i;
        }
      }
    }
    if (leave == m) {
      result.status = SimplexStatus::kUnbounded;
      return result;
    }
    // Pivot.
    const double pivot = t[leave][enter];
    for (std::size_t j = 0; j < cols; ++j) t[leave][j] /= pivot;
    for (std::size_t i = 0; i <= m; ++i) {
      if (i == leave) continue;
      const double factor = t[i][enter];
      if (std::fabs(factor) < kEps) continue;
      for (std::size_t j = 0; j < cols; ++j) {
        t[i][j] -= factor * t[leave][j];
      }
    }
    basis[leave] = enter;
    if (++pivots > max_pivots) {
      result.status = SimplexStatus::kIterationLimit;
      return result;
    }
  }

  result.x.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (basis[i] < n) result.x[basis[i]] = t[i][cols - 1];
  }
  result.value = t[m][cols - 1];
  // Duals: reduced costs of the slack columns.
  result.dual.assign(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    result.dual[i] = t[m][n + i];
  }
  return result;
}

}  // namespace dp::lp
