#pragma once
// Plotkin-Shmoys-Tardos fractional covering and packing engines —
// Theorems 5 and 7 of the paper (with the Corollary 6/8 relaxed-oracle
// modifications).
//
// These are the generic multiplicative-weight solvers the dual-primal
// framework instantiates: the OUTER loop is a fractional covering solve of
// the (penalty) dual, and each MiniOracle invocation is itself an inner
// fractional packing solve. The engines are problem-agnostic: the caller
// supplies the constraint targets, a width bound, an initial point, and an
// oracle over the implicit polytope P.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace dp::lp {

/// A point of the implicit polytope P together with its constraint image.
struct OraclePoint {
  std::vector<double> x;   // coordinates in P (caller-defined meaning)
  std::vector<double> ax;  // A x (covering) or Ap x (packing), length M
};

// ---------------------------------------------------------------------------
// Covering: decide { A x >= c, x in P }, A >= 0, c > 0, 0 <= Ax <= rho*c
// on P. Oracle receives multipliers u and must (approximately) maximize
// u^T A x over P; returning nullopt asserts max_x u^T A x < (1-eps/2) u^T c,
// certifying infeasibility.
// ---------------------------------------------------------------------------

struct CoveringProblem {
  std::vector<double> c;
  double rho = 1.0;
  double eps = 0.1;
  OraclePoint initial;  // must satisfy A x0 >= (1 - eps0) c with eps0 < 1
  std::function<std::optional<OraclePoint>(const std::vector<double>& u)>
      oracle;
  std::size_t max_oracle_calls = 1'000'000;
};

struct CoveringResult {
  /// True: found x with A x >= (1 - 3 eps) c.
  bool feasible = false;
  OraclePoint point;                // final averaged point
  std::vector<double> certificate;  // u with u^T A x < u^T c on P (if infeasible)
  std::size_t oracle_calls = 0;
  double lambda = 0.0;  // final min_l (Ax)_l / c_l
};

CoveringResult fractional_covering(const CoveringProblem& problem);

// ---------------------------------------------------------------------------
// Packing: find { Ap x <= (1 + 6 delta) d, x in Pp } given a feasible-ish
// start Ap x0 <= delta0 * d. Oracle minimizes z^T Ap x over Pp; returning
// nullopt asserts min_x z^T Ap x > (1 + delta/2) z^T d (infeasible).
// ---------------------------------------------------------------------------

struct PackingProblem {
  std::vector<double> d;
  double rho = 1.0;  // 0 <= Ap x <= rho * d on Pp
  double delta = 0.1;
  OraclePoint initial;
  std::function<std::optional<OraclePoint>(const std::vector<double>& z)>
      oracle;
  std::size_t max_oracle_calls = 1'000'000;
};

struct PackingResult {
  bool feasible = false;
  OraclePoint point;
  std::size_t oracle_calls = 0;
  double lambda = 0.0;  // final max_r (Ap x)_r / d_r
};

PackingResult fractional_packing(const PackingProblem& problem);

/// Multiplier vector for a covering iterate: u_l proportional to
/// exp(-alpha (Ax)_l / c_l) / c_l, computed with overflow-safe shifting.
/// Exposed so the specialized matching solver shares the exact rule.
std::vector<double> covering_multipliers(const std::vector<double>& ax,
                                         const std::vector<double>& c,
                                         double alpha);

/// Packing multipliers: z_r proportional to exp(+alpha (Ax)_r / d_r) / d_r.
std::vector<double> packing_multipliers(const std::vector<double>& ax,
                                        const std::vector<double>& d,
                                        double alpha);

/// Allocation-free variants: write the multipliers into `out` (resized to
/// match). The MW engines call these with a buffer reused across all
/// iterations, so the steady-state loop does not touch the allocator.
void covering_multipliers_into(const std::vector<double>& ax,
                               const std::vector<double>& c, double alpha,
                               std::vector<double>& out);
void packing_multipliers_into(const std::vector<double>& ax,
                              const std::vector<double>& d, double alpha,
                              std::vector<double>& out);

}  // namespace dp::lp
