#include "lp/formulations.hpp"

#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "util/math.hpp"

namespace dp::lp {

std::vector<std::vector<Vertex>> enumerate_odd_sets(std::size_t n,
                                                    const Capacities& b,
                                                    std::size_t max_size) {
  if (n > 20) {
    throw std::invalid_argument("enumerate_odd_sets: n too large");
  }
  std::vector<std::vector<Vertex>> sets;
  const std::size_t states = std::size_t{1} << n;
  for (std::size_t mask = 1; mask < states; ++mask) {
    if (__builtin_popcountll(mask) < 3) continue;
    std::int64_t total = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (mask >> v & 1) total += b[static_cast<Vertex>(v)];
    }
    if (total % 2 == 0) continue;
    if (max_size > 0 && static_cast<std::size_t>(total) > max_size) continue;
    std::vector<Vertex> set;
    for (std::size_t v = 0; v < n; ++v) {
      if (mask >> v & 1) set.push_back(static_cast<Vertex>(v));
    }
    sets.push_back(std::move(set));
  }
  return sets;
}

namespace {

bool edge_inside(const Edge& e, const std::vector<Vertex>& set) {
  bool u_in = false, v_in = false;
  for (Vertex x : set) {
    if (x == e.u) u_in = true;
    if (x == e.v) v_in = true;
  }
  return u_in && v_in;
}

}  // namespace

DenseLP build_matching_lp(const Graph& g, const Capacities& b,
                          bool include_odd_sets) {
  const std::size_t n = g.num_vertices();
  const std::size_t m = g.num_edges();
  DenseLP lp;
  lp.c.resize(m);
  for (EdgeId e = 0; e < m; ++e) lp.c[e] = g.edge(e).w;

  // Degree constraints.
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(m, 0.0);
    for (EdgeId e = 0; e < m; ++e) {
      if (g.edge(e).u == i || g.edge(e).v == i) row[e] = 1.0;
    }
    lp.A.push_back(std::move(row));
    lp.b.push_back(static_cast<double>(b[static_cast<Vertex>(i)]));
  }
  if (include_odd_sets) {
    for (const auto& set : enumerate_odd_sets(n, b)) {
      std::vector<double> row(m, 0.0);
      for (EdgeId e = 0; e < m; ++e) {
        if (edge_inside(g.edge(e), set)) row[e] = 1.0;
      }
      lp.A.push_back(std::move(row));
      lp.b.push_back(std::floor(static_cast<double>(b.weight_of(set)) / 2));
    }
  }
  return lp;
}

DenseLP build_penalty_lp_unweighted(const Graph& g, const Capacities& b) {
  const std::size_t n = g.num_vertices();
  const std::size_t m = g.num_edges();
  DenseLP lp;
  // Variables: y_e (m), mu_i (n).
  lp.c.assign(m + n, 0.0);
  for (EdgeId e = 0; e < m; ++e) lp.c[e] = 1.0;
  for (std::size_t i = 0; i < n; ++i) lp.c[m + i] = -3.0;

  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(m + n, 0.0);
    for (EdgeId e = 0; e < m; ++e) {
      if (g.edge(e).u == i || g.edge(e).v == i) row[e] = 1.0;
    }
    row[m + i] = -2.0;
    lp.A.push_back(std::move(row));
    lp.b.push_back(static_cast<double>(b[static_cast<Vertex>(i)]));
  }
  for (const auto& set : enumerate_odd_sets(n, b)) {
    std::vector<double> row(m + n, 0.0);
    for (EdgeId e = 0; e < m; ++e) {
      if (edge_inside(g.edge(e), set)) row[e] = 1.0;
    }
    for (Vertex v : set) row[m + v] = -1.0;
    lp.A.push_back(std::move(row));
    lp.b.push_back(std::floor(static_cast<double>(b.weight_of(set)) / 2));
  }
  return lp;
}

DenseLP build_layered_penalty_lp(const Graph& g, const Capacities& b,
                                 double eps) {
  const std::size_t n = g.num_vertices();
  const std::size_t m = g.num_edges();
  const WeightClasses classes(eps);
  int max_level = 0;
  std::vector<int> level(m);
  for (EdgeId e = 0; e < m; ++e) {
    level[e] = classes.level_of(g.edge(e).w);
    max_level = std::max(max_level, level[e]);
  }
  const int L = max_level + 1;  // levels 0..max_level

  // Variables: y_e (m), mu_{i,k} (n*L), y_i(k) (n*L).
  const std::size_t mu0 = m;
  const std::size_t yk0 = m + n * static_cast<std::size_t>(L);
  const std::size_t total = yk0 + n * static_cast<std::size_t>(L);
  auto mu_idx = [&](std::size_t i, int k) {
    return mu0 + i * static_cast<std::size_t>(L) + static_cast<std::size_t>(k);
  };
  auto yk_idx = [&](std::size_t i, int k) {
    return yk0 + i * static_cast<std::size_t>(L) + static_cast<std::size_t>(k);
  };

  DenseLP lp;
  lp.c.assign(total, 0.0);
  for (EdgeId e = 0; e < m; ++e) {
    lp.c[e] = classes.weight_of(level[e]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (int k = 0; k < L; ++k) {
      lp.c[mu_idx(i, k)] = -3.0 * classes.weight_of(k);
    }
  }

  // (1) Per (i, k): sum_{e in E_k at i} y_e - 2 mu_{ik} - y_i(k) <= 0.
  for (std::size_t i = 0; i < n; ++i) {
    for (int k = 0; k < L; ++k) {
      std::vector<double> row(total, 0.0);
      bool any = false;
      for (EdgeId e = 0; e < m; ++e) {
        if (level[e] != k) continue;
        if (g.edge(e).u == i || g.edge(e).v == i) {
          row[e] = 1.0;
          any = true;
        }
      }
      if (!any) continue;
      row[mu_idx(i, k)] = -2.0;
      row[yk_idx(i, k)] = -1.0;
      lp.A.push_back(std::move(row));
      lp.b.push_back(0.0);
    }
  }
  // (2) Per i: sum_k y_i(k) <= b_i.
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(total, 0.0);
    for (int k = 0; k < L; ++k) row[yk_idx(i, k)] = 1.0;
    lp.A.push_back(std::move(row));
    lp.b.push_back(static_cast<double>(b[static_cast<Vertex>(i)]));
  }
  // (3) Per (U, l): sum_{k >= l} ( sum_{e in E_k[U]} y_e -
  //     sum_{i in U} mu_{ik} ) <= floor(||U||_b / 2).
  for (const auto& set : enumerate_odd_sets(n, b)) {
    for (int l = 0; l < L; ++l) {
      std::vector<double> row(total, 0.0);
      bool any = false;
      for (EdgeId e = 0; e < m; ++e) {
        if (level[e] >= l && edge_inside(g.edge(e), set)) {
          row[e] = 1.0;
          any = true;
        }
      }
      if (!any) continue;
      for (Vertex v : set) {
        for (int k = l; k < L; ++k) row[mu_idx(v, k)] = -1.0;
      }
      lp.A.push_back(std::move(row));
      lp.b.push_back(std::floor(static_cast<double>(b.weight_of(set)) / 2));
    }
  }
  return lp;
}

double lp_optimum(const DenseLP& lp) {
  const SimplexResult result = solve_simplex(lp);
  if (result.status != SimplexStatus::kOptimal) {
    throw std::runtime_error("lp_optimum: simplex did not reach optimality");
  }
  return result.value;
}

double row_width(const std::vector<double>& a, double c,
                 const std::vector<std::vector<double>>& P,
                 const std::vector<double>& q) {
  DenseLP lp;
  lp.c = a;
  lp.A = P;
  lp.b = q;
  const SimplexResult result = solve_simplex(lp);
  if (result.status == SimplexStatus::kUnbounded) {
    return std::numeric_limits<double>::infinity();
  }
  if (result.status != SimplexStatus::kOptimal) {
    throw std::runtime_error("row_width: simplex failed");
  }
  return result.value / c;
}

WidthReport measure_dual_widths(const Graph& g, const Capacities& b,
                                double beta) {
  const std::size_t n = g.num_vertices();
  const auto odd_sets = enumerate_odd_sets(n, b);
  const std::size_t vars = n + odd_sets.size();  // x_i then z_U

  // Covering rows: one per edge, x_i + x_j + sum_{U containing both} z_U.
  std::vector<std::vector<double>> rows;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    std::vector<double> a(vars, 0.0);
    a[g.edge(e).u] += 1.0;
    a[g.edge(e).v] += 1.0;
    for (std::size_t s = 0; s < odd_sets.size(); ++s) {
      if (edge_inside(g.edge(e), odd_sets[s])) a[n + s] = 1.0;
    }
    rows.push_back(std::move(a));
  }

  WidthReport report;

  // Standard dual (LP2) under the budget polytope b^T x <= beta only.
  {
    std::vector<std::vector<double>> P(1, std::vector<double>(vars, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
      P[0][i] = static_cast<double>(b[static_cast<Vertex>(i)]);
    }
    for (std::size_t s = 0; s < odd_sets.size(); ++s) {
      P[0][n + s] =
          std::floor(static_cast<double>(b.weight_of(odd_sets[s])) / 2);
    }
    std::vector<double> q{beta};
    for (const auto& a : rows) {
      report.standard_width =
          std::max(report.standard_width, row_width(a, 1.0, P, q));
    }
  }
  // Penalty dual (LP4) under 2 x_i + sum_{U ni i} z_U <= 3 for every i.
  {
    std::vector<std::vector<double>> P(n, std::vector<double>(vars, 0.0));
    std::vector<double> q(n, 3.0);
    for (std::size_t i = 0; i < n; ++i) {
      P[i][i] = 2.0;
      for (std::size_t s = 0; s < odd_sets.size(); ++s) {
        for (Vertex v : odd_sets[s]) {
          if (v == i) {
            P[i][n + s] = 1.0;
            break;
          }
        }
      }
    }
    for (const auto& a : rows) {
      report.penalty_width =
          std::max(report.penalty_width, row_width(a, 1.0, P, q));
    }
  }
  return report;
}

}  // namespace dp::lp
