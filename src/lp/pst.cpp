#include "lp/pst.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dp::lp {

namespace {

double min_ratio(const std::vector<double>& ax, const std::vector<double>& c) {
  double lambda = 1e300;
  for (std::size_t l = 0; l < c.size(); ++l) {
    lambda = std::min(lambda, ax[l] / c[l]);
  }
  return lambda;
}

double max_ratio(const std::vector<double>& ax, const std::vector<double>& d) {
  double lambda = 0;
  for (std::size_t r = 0; r < d.size(); ++r) {
    lambda = std::max(lambda, ax[r] / d[r]);
  }
  return lambda;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void blend(std::vector<double>& acc, const std::vector<double>& next,
           double sigma) {
  for (std::size_t i = 0; i < acc.size(); ++i) {
    acc[i] = (1.0 - sigma) * acc[i] + sigma * next[i];
  }
}

}  // namespace

void covering_multipliers_into(const std::vector<double>& ax,
                               const std::vector<double>& c, double alpha,
                               std::vector<double>& out) {
  // u_l ~ exp(-alpha ax_l / c_l) / c_l; shift exponents so the largest is 0.
  // Two passes over a single output buffer: the first stores the raw
  // exponents, the second exponentiates in place.
  out.resize(c.size());
  double max_expo = -1e300;
  for (std::size_t l = 0; l < c.size(); ++l) {
    out[l] = -alpha * ax[l] / c[l];
    max_expo = std::max(max_expo, out[l]);
  }
  for (std::size_t l = 0; l < c.size(); ++l) {
    out[l] = std::exp(out[l] - max_expo) / c[l];
  }
}

void packing_multipliers_into(const std::vector<double>& ax,
                              const std::vector<double>& d, double alpha,
                              std::vector<double>& out) {
  out.resize(d.size());
  double max_expo = -1e300;
  for (std::size_t r = 0; r < d.size(); ++r) {
    out[r] = alpha * ax[r] / d[r];
    max_expo = std::max(max_expo, out[r]);
  }
  for (std::size_t r = 0; r < d.size(); ++r) {
    out[r] = std::exp(out[r] - max_expo) / d[r];
  }
}

std::vector<double> covering_multipliers(const std::vector<double>& ax,
                                         const std::vector<double>& c,
                                         double alpha) {
  std::vector<double> u;
  covering_multipliers_into(ax, c, alpha, u);
  return u;
}

std::vector<double> packing_multipliers(const std::vector<double>& ax,
                                        const std::vector<double>& d,
                                        double alpha) {
  std::vector<double> z;
  packing_multipliers_into(ax, d, alpha, z);
  return z;
}

CoveringResult fractional_covering(const CoveringProblem& problem) {
  const std::size_t M = problem.c.size();
  if (M == 0) throw std::invalid_argument("fractional_covering: empty c");
  const double eps = problem.eps;

  CoveringResult result;
  result.point = problem.initial;
  if (result.point.ax.size() != M) {
    throw std::invalid_argument("fractional_covering: initial ax size");
  }

  std::vector<double> u;  // multiplier buffer reused across iterations
  while (result.oracle_calls < problem.max_oracle_calls) {
    const double lambda = min_ratio(result.point.ax, problem.c);
    result.lambda = lambda;
    if (lambda >= 1.0 - 3.0 * eps) {
      result.feasible = true;
      return result;
    }
    // alpha as in Theorem 5 (lambda-adaptive phases collapsed into a
    // continuous schedule; the guard keeps alpha finite near lambda = 0).
    const double lambda_floor = std::max(lambda, eps / (8.0 * M));
    const double alpha = 2.0 * std::log(2.0 * M / eps) / (lambda_floor * eps);
    covering_multipliers_into(result.point.ax, problem.c, alpha, u);

    const auto answer = problem.oracle(u);
    ++result.oracle_calls;
    if (!answer.has_value() ||
        dot(u, answer->ax) < (1.0 - eps / 2.0) * dot(u, problem.c)) {
      result.feasible = false;
      result.certificate = u;
      return result;
    }
    const double sigma =
        std::min(1.0, eps / (4.0 * alpha * std::max(problem.rho, 1.0)));
    blend(result.point.x, answer->x, sigma);
    blend(result.point.ax, answer->ax, sigma);
  }
  result.lambda = min_ratio(result.point.ax, problem.c);
  result.feasible = result.lambda >= 1.0 - 3.0 * eps;
  return result;
}

PackingResult fractional_packing(const PackingProblem& problem) {
  const std::size_t M = problem.d.size();
  if (M == 0) throw std::invalid_argument("fractional_packing: empty d");
  const double delta = problem.delta;

  PackingResult result;
  result.point = problem.initial;
  if (result.point.ax.size() != M) {
    throw std::invalid_argument("fractional_packing: initial ax size");
  }

  std::vector<double> z;  // multiplier buffer reused across iterations
  while (result.oracle_calls < problem.max_oracle_calls) {
    const double lambda = max_ratio(result.point.ax, problem.d);
    result.lambda = lambda;
    if (lambda <= 1.0 + 6.0 * delta) {
      result.feasible = true;
      return result;
    }
    const double alpha =
        2.0 * std::log(2.0 * M / delta) / (delta / std::max(lambda, 1.0));
    packing_multipliers_into(result.point.ax, problem.d, alpha, z);

    const auto answer = problem.oracle(z);
    ++result.oracle_calls;
    if (!answer.has_value() ||
        dot(z, answer->ax) > (1.0 + delta / 2.0) * dot(z, problem.d)) {
      result.feasible = false;
      return result;
    }
    const double sigma =
        std::min(1.0, delta / (4.0 * alpha * std::max(problem.rho, 1.0)));
    blend(result.point.x, answer->x, sigma);
    blend(result.point.ax, answer->ax, sigma);
  }
  result.lambda = max_ratio(result.point.ax, problem.d);
  result.feasible = result.lambda <= 1.0 + 6.0 * delta;
  return result;
}

}  // namespace dp::lp
