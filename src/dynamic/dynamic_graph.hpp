#pragma once
// DynamicGraph: batched edge churn over a base graph, with a generation
// counter, an effective-op delta log, and canonical materialization.
//
// Two backings, one contract:
//   - kDeltaLog: the live edge set is a sorted (key, weight) table plus a
//     per-generation log of the EFFECTIVE operations (what actually
//     changed after normalization/dedup), so delta_since() replays churn
//     exactly — duplicate inserts and phantom removes never pollute it.
//   - kSketch: additionally mirrors every effective op into AGM linear
//     sketches (insert = +1/-1 incidence update, delete = its negation) —
//     the streamed case gets insert+delete for free because sketches are
//     linear, and tests can assert mirror == from-scratch sketch bitwise.
//
// Canonical materialization: materialize() returns the live edge set
// sorted ascending by canonical (min, max) key, i.e. a pure function of
// the live edge SET — any two churn histories reaching the same set yield
// bitwise-identical Graphs and therefore bitwise-identical solves.
// Exception: at generation 0 the untouched base graph is returned as-is,
// preserving the caller's edge ids for the static workloads.
//
// Not internally synchronized: callers (the serving layer) guard a
// DynamicGraph with the snapshot mutex and hand out the immutable
// materialized Graph via shared_ptr.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "dynamic/delta.hpp"
#include "graph/graph.hpp"
#include "sketch/agm.hpp"
#include "util/accounting.hpp"
#include "util/rng.hpp"

namespace dp::dyn {

enum class DynamicBacking {
  kDeltaLog,  // retained attribute table + delta log (in-memory case)
  kSketch,    // delta log + AGM linear-sketch mirror (streamed case)
};

struct DynamicGraphOptions {
  DynamicBacking backing = DynamicBacking::kDeltaLog;
  /// Seed for the L0 sampler family of the sketch mirror (kSketch only).
  std::uint64_t sketch_seed = 7;
  /// L0 geometric levels / repetitions for the mirror (kSketch only).
  int sketch_levels = 20;
  int sketch_reps = 4;
};

/// What one apply() actually did, after normalization. A same-key
/// reweight (remove+insert in one batch) counts in both `inserted` and
/// `removed`.
struct DeltaSummary {
  std::uint64_t generation = 0;  // generation after this apply
  std::size_t inserted = 0;
  std::size_t removed = 0;
  std::size_t duplicate_inserts = 0;  // key already live at same weight
  std::size_t phantom_removes = 0;    // key not live
  std::size_t dropped_self_loops = 0;
};

class DynamicGraph {
 public:
  /// Takes ownership of the base graph. The base must be simple (the live
  /// set is keyed by endpoint pair); a parallel edge raises ConfigError.
  explicit DynamicGraph(Graph base, DynamicGraphOptions opt = {});

  std::size_t num_vertices() const noexcept { return n_; }
  std::size_t num_live_edges() const noexcept { return live_.size(); }
  std::uint64_t generation() const noexcept { return generation_; }

  /// Apply one batch atomically; bumps the generation by exactly one (even
  /// for an all-phantom batch — the generation counts applied batches, so
  /// checkpoint identity is conservative). Endpoints outside [0, n) raise
  /// ConfigError; nothing is applied in that case.
  DeltaSummary apply(const EdgeDelta& delta);

  /// Canonical post-delta graph (see file comment). Cached per generation.
  std::shared_ptr<const Graph> materialize() const;

  /// Net effective delta from `generation` to now, canonical-keyed and
  /// sorted: an edge removed then re-inserted at the same weight since
  /// `generation` yields no op; a reweight yields remove+insert. This is
  /// what the solver's warm re-solve repairs against.
  EdgeDelta delta_since(std::uint64_t generation) const;

  /// The AGM mirror (kSketch backing only; nullptr otherwise).
  const AgmSketch* sketch() const noexcept {
    return sketch_ ? &*sketch_ : nullptr;
  }
  const L0SamplerSeed* sketch_seed() const noexcept {
    return seed_ ? seed_.get() : nullptr;
  }

  ResourceMeter& meter() noexcept { return meter_; }

 private:
  struct LogEntry {
    std::uint64_t generation = 0;        // generation this entry produced
    std::vector<EdgeInsert> inserted;    // canonical u < v, key-sorted
    std::vector<EdgeInsert> removed;     // ditto, with the removed weight
  };

  std::optional<double> live_weight(std::uint64_t key) const;

  std::size_t n_ = 0;
  std::shared_ptr<const Graph> base_;
  std::vector<std::pair<std::uint64_t, double>> live_;  // sorted by key
  std::uint64_t generation_ = 0;
  std::vector<LogEntry> log_;
  mutable std::shared_ptr<const Graph> cache_;
  mutable std::uint64_t cache_generation_ = 0;
  // kSketch mirror state. The seed owns the hash families the samplers
  // point into, so it is heap-pinned for the sketch's lifetime.
  std::unique_ptr<Rng> sketch_rng_;
  std::unique_ptr<L0SamplerSeed> seed_;
  std::optional<AgmSketch> sketch_;
  ResourceMeter meter_;
};

}  // namespace dp::dyn
