#include "dynamic/delta.hpp"

#include <algorithm>

namespace dp::dyn {

NormalizedDelta normalize(const EdgeDelta& delta) {
  NormalizedDelta out;

  out.remove_keys.reserve(delta.removes.size());
  for (const EdgeRemove& r : delta.removes) {
    if (r.u == r.v) {
      ++out.dropped_self_loops;
      continue;
    }
    out.remove_keys.push_back(edge_key(r.u, r.v));
  }
  std::sort(out.remove_keys.begin(), out.remove_keys.end());
  const auto rlast =
      std::unique(out.remove_keys.begin(), out.remove_keys.end());
  out.duplicate_removes =
      static_cast<std::size_t>(out.remove_keys.end() - rlast);
  out.remove_keys.erase(rlast, out.remove_keys.end());

  out.inserts.reserve(delta.inserts.size());
  for (const EdgeInsert& e : delta.inserts) {
    if (e.u == e.v) {
      ++out.dropped_self_loops;
      continue;
    }
    const Vertex lo = e.u < e.v ? e.u : e.v;
    const Vertex hi = e.u < e.v ? e.v : e.u;
    out.inserts.push_back(EdgeInsert{lo, hi, e.w});
  }
  // Stable sort + first-wins dedup: within a batch the first insert of an
  // endpoint pair is the one that applies, repeats are only counted.
  std::stable_sort(out.inserts.begin(), out.inserts.end(),
                   [](const EdgeInsert& a, const EdgeInsert& b) {
                     return edge_key(a.u, a.v) < edge_key(b.u, b.v);
                   });
  auto ilast = std::unique(out.inserts.begin(), out.inserts.end(),
                           [](const EdgeInsert& a, const EdgeInsert& b) {
                             return edge_key(a.u, a.v) == edge_key(b.u, b.v);
                           });
  out.duplicate_inserts = static_cast<std::size_t>(out.inserts.end() - ilast);
  out.inserts.erase(ilast, out.inserts.end());
  return out;
}

}  // namespace dp::dyn
