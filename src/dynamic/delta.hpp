#pragma once
// Batched edge deltas: the unit of churn for the dynamic-graph substrate.
//
// A delta is a batch of removes and inserts applied atomically to a
// DynamicGraph, bumping its generation by one. Within a batch removes
// apply before inserts, so remove+insert of the same endpoints in one
// batch reweights the edge. Batches are normalized before application —
// canonical (min, max) endpoint keys, self-loop inserts dropped, same-key
// repeats deduplicated — so the applied effect is a pure function of the
// batch's net content, not of the order the caller appended operations.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dp::dyn {

/// Canonical undirected edge key: min(u, v) in the high 32 bits, max in
/// the low. Sorting by key is the canonical edge order used throughout the
/// dynamic layer (materialization, logs, feasibility repair).
constexpr std::uint64_t edge_key(Vertex u, Vertex v) noexcept {
  const std::uint64_t lo = u < v ? u : v;
  const std::uint64_t hi = u < v ? v : u;
  return (lo << 32) | hi;
}

struct EdgeInsert {
  Vertex u = 0;
  Vertex v = 0;
  double w = 1.0;

  friend bool operator==(const EdgeInsert&, const EdgeInsert&) = default;
};

struct EdgeRemove {
  Vertex u = 0;
  Vertex v = 0;

  friend bool operator==(const EdgeRemove&, const EdgeRemove&) = default;
};

/// One batch of churn. `removes` apply first, then `inserts`.
struct EdgeDelta {
  std::vector<EdgeRemove> removes;
  std::vector<EdgeInsert> inserts;

  bool empty() const noexcept { return removes.empty() && inserts.empty(); }
  std::size_t size() const noexcept {
    return removes.size() + inserts.size();
  }
};

/// normalize() output: canonical ops sorted ascending by edge key, one op
/// per key per side (the FIRST insert of a key wins; repeats are counted,
/// not applied), self-loop inserts dropped.
struct NormalizedDelta {
  std::vector<std::uint64_t> remove_keys;  // sorted ascending, unique
  std::vector<EdgeInsert> inserts;         // u < v, sorted by key, unique
  std::size_t dropped_self_loops = 0;
  std::size_t duplicate_inserts = 0;
  std::size_t duplicate_removes = 0;
};

NormalizedDelta normalize(const EdgeDelta& delta);

}  // namespace dp::dyn
