#include "dynamic/dynamic_graph.hpp"

#include <algorithm>
#include <bit>
#include <map>

#include "util/error.hpp"

namespace dp::dyn {

namespace {

constexpr Vertex key_lo(std::uint64_t key) noexcept {
  return static_cast<Vertex>(key >> 32);
}
constexpr Vertex key_hi(std::uint64_t key) noexcept {
  return static_cast<Vertex>(key & 0xffff'ffffULL);
}

bool same_bits(double a, double b) noexcept {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

}  // namespace

DynamicGraph::DynamicGraph(Graph base, DynamicGraphOptions opt)
    : n_(base.num_vertices()) {
  live_.reserve(base.num_edges());
  for (const Edge& e : base.edges()) {
    live_.emplace_back(edge_key(e.u, e.v), e.w);
  }
  std::sort(live_.begin(), live_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < live_.size(); ++i) {
    if (live_[i].first == live_[i - 1].first) {
      throw ConfigError("DynamicGraph requires a simple base graph",
                        {"dynamic.base"});
    }
  }
  base_ = std::make_shared<const Graph>(std::move(base));
  meter_.store_edges(live_.size());
  if (opt.backing == DynamicBacking::kSketch) {
    sketch_rng_ = std::make_unique<Rng>(opt.sketch_seed);
    seed_ = std::make_unique<L0SamplerSeed>(opt.sketch_levels,
                                            opt.sketch_reps, *sketch_rng_);
    sketch_.emplace(*base_, *seed_, &meter_);
  }
}

std::optional<double> DynamicGraph::live_weight(std::uint64_t key) const {
  const auto it = std::lower_bound(
      live_.begin(), live_.end(), key,
      [](const auto& a, std::uint64_t k) { return a.first < k; });
  if (it == live_.end() || it->first != key) return std::nullopt;
  return it->second;
}

DeltaSummary DynamicGraph::apply(const EdgeDelta& delta) {
  NormalizedDelta nd = normalize(delta);
  for (const std::uint64_t key : nd.remove_keys) {
    if (key_hi(key) >= n_) {
      throw ConfigError("delta remove endpoint out of range",
                        {"dynamic.apply", generation_ + 1});
    }
  }
  for (const EdgeInsert& e : nd.inserts) {
    if (e.v >= n_) {
      throw ConfigError("delta insert endpoint out of range",
                        {"dynamic.apply", generation_ + 1});
    }
  }

  DeltaSummary s;
  s.dropped_self_loops = nd.dropped_self_loops;
  s.duplicate_inserts = nd.duplicate_inserts;
  s.phantom_removes = nd.duplicate_removes;  // repeats of one remove

  LogEntry entry;
  entry.generation = generation_ + 1;

  // Effective removes: keys actually live right now.
  std::vector<std::uint64_t> removed_keys;
  for (const std::uint64_t key : nd.remove_keys) {
    if (const auto w = live_weight(key)) {
      removed_keys.push_back(key);
      entry.removed.push_back(EdgeInsert{key_lo(key), key_hi(key), *w});
    } else {
      ++s.phantom_removes;
    }
  }

  // Effective inserts: new keys, re-inserts of just-removed keys, and
  // reweights (same key live at a different weight).
  std::vector<EdgeInsert> added;
  for (const EdgeInsert& e : nd.inserts) {
    const std::uint64_t key = edge_key(e.u, e.v);
    const bool removed_now = std::binary_search(removed_keys.begin(),
                                                removed_keys.end(), key);
    const auto w = live_weight(key);
    if (w && !removed_now) {
      if (same_bits(*w, e.w)) {
        ++s.duplicate_inserts;
        continue;
      }
      // Reweight: log as remove(old) + insert(new).
      entry.removed.push_back(EdgeInsert{e.u, e.v, *w});
    }
    added.push_back(e);
    entry.inserted.push_back(e);
  }
  std::sort(entry.removed.begin(), entry.removed.end(),
            [](const EdgeInsert& a, const EdgeInsert& b) {
              return edge_key(a.u, a.v) < edge_key(b.u, b.v);
            });

  // Rebuild the live table in one sorted merge: additions overwrite,
  // removed keys (not re-added) drop, everything else carries over.
  std::vector<std::pair<std::uint64_t, double>> next;
  next.reserve(live_.size() + added.size());
  std::size_t ai = 0;
  for (const auto& [key, w] : live_) {
    while (ai < added.size() && edge_key(added[ai].u, added[ai].v) < key) {
      next.emplace_back(edge_key(added[ai].u, added[ai].v), added[ai].w);
      ++ai;
    }
    if (ai < added.size() && edge_key(added[ai].u, added[ai].v) == key) {
      next.emplace_back(key, added[ai].w);
      ++ai;
      continue;
    }
    if (std::binary_search(removed_keys.begin(), removed_keys.end(), key)) {
      continue;
    }
    next.emplace_back(key, w);
  }
  for (; ai < added.size(); ++ai) {
    next.emplace_back(edge_key(added[ai].u, added[ai].v), added[ai].w);
  }
  live_ = std::move(next);

  if (sketch_.has_value()) {
    // Linearity: a delete is an insert with the sign flipped, so the
    // mirror stays equal to a from-scratch sketch of the live set.
    std::vector<Edge> buf;
    buf.reserve(entry.removed.size());
    for (const EdgeInsert& e : entry.removed) buf.push_back({e.u, e.v, e.w});
    sketch_->apply(buf, -1, &meter_);
    buf.clear();
    for (const EdgeInsert& e : entry.inserted) {
      buf.push_back({e.u, e.v, e.w});
    }
    sketch_->apply(buf, +1, &meter_);
  }

  s.inserted = entry.inserted.size();
  s.removed = entry.removed.size();
  meter_.store_edges(s.inserted);
  meter_.release_edges(s.removed);
  ++generation_;
  s.generation = generation_;
  log_.push_back(std::move(entry));
  return s;
}

std::shared_ptr<const Graph> DynamicGraph::materialize() const {
  // Generation 0 serves the base unchanged (caller edge ids preserved);
  // after the first delta the canonical key-sorted form takes over.
  if (generation_ == 0) return base_;
  if (cache_ != nullptr && cache_generation_ == generation_) return cache_;
  Graph g(n_);
  for (const auto& [key, w] : live_) {
    g.add_edge(key_lo(key), key_hi(key), w);
  }
  cache_ = std::make_shared<const Graph>(std::move(g));
  cache_generation_ = generation_;
  return cache_;
}

EdgeDelta DynamicGraph::delta_since(std::uint64_t generation) const {
  EdgeDelta out;
  if (generation >= generation_) return out;
  // Reconstruct each touched key's state at `generation` by undoing the
  // log newest-to-oldest: the LAST write (from the oldest entry past the
  // cut) is the state just after `generation`.
  std::map<std::uint64_t, std::optional<double>> at_gen;
  for (auto it = log_.rbegin(); it != log_.rend(); ++it) {
    if (it->generation <= generation) break;
    for (const EdgeInsert& e : it->inserted) {
      at_gen[edge_key(e.u, e.v)] = std::nullopt;  // absent before the entry
    }
    for (const EdgeInsert& e : it->removed) {
      at_gen[edge_key(e.u, e.v)] = e.w;  // live at this weight before it
    }
  }
  for (const auto& [key, was] : at_gen) {
    const auto now = live_weight(key);
    const Vertex u = key_lo(key);
    const Vertex v = key_hi(key);
    if (was.has_value() && !now.has_value()) {
      out.removes.push_back(EdgeRemove{u, v});
    } else if (!was.has_value() && now.has_value()) {
      out.inserts.push_back(EdgeInsert{u, v, *now});
    } else if (was.has_value() && now.has_value() &&
               !same_bits(*was, *now)) {
      out.removes.push_back(EdgeRemove{u, v});
      out.inserts.push_back(EdgeInsert{u, v, *now});
    }
  }
  return out;
}

}  // namespace dp::dyn
