#pragma once
// Deferred cut sparsifiers — Definition 4 / Lemma 17 of the paper.
//
// The exact multiplier u_e of an edge is NOT known at sampling time; only a
// promise value sigma_e with sigma_e/gamma <= u_e <= sigma_e*gamma is. The
// data structure D samples edge *indices* using the promise values with the
// sampling probability inflated by gamma^2 (so it dominates the probability
// the exact weights would have demanded), stores them, and later — once the
// exact u values of the stored edges are revealed — produces a (1 +- xi)
// cut sparsifier of the exact-weighted graph.
//
// This is the mechanism that lets Theorem 1 run O(eps^-1 log gamma)
// multiplicative-weight iterations per single adaptive sampling round: the
// multipliers drift by at most e^eps per iteration, so gamma =
// e^{eps * iterations} bounds the drift and the oversampled structure covers
// every intermediate weight vector.

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "sparsify/cut_sparsifier.hpp"
#include "sparsify/strength.hpp"
#include "util/accounting.hpp"

namespace dp {

class ThreadPool;

struct DeferredOptions {
  /// Cut accuracy of the refined sparsifier.
  double xi = 0.125;
  /// Promise distortion gamma >= 1 (exact weights within [sigma/g, sigma*g]).
  double gamma = 1.5;
  /// Oversampling constant (multiplies the gamma^2 factor).
  double sampling_constant = 12.0;
  int forests_per_level = 0;
};

/// Reusable buffers for deferred_probabilities_into: weight-class grouping
/// plus the strength scratch. One instance serves any sequence of rounds.
struct DeferredScratch {
  std::vector<std::uint64_t> class_keys;   // packed (class, edge index)
  std::vector<std::uint32_t> class_members;  // per-class member indices
  std::vector<Edge> class_edges;           // per-class subgraph, reused
  std::vector<double> class_strength;      // per-class strengths, reused
  StrengthScratch strength;
};

/// Per-edge inclusion probabilities for a deferred sparsifier built from
/// promise weights (strength estimation + gamma^2 oversampling). Exposed so
/// a caller constructing MANY independent sparsifiers from the SAME promise
/// vector (the t per-round structures of Theorem 1) can amortize the
/// strength computation and then draw cheap Bernoulli samples.
std::vector<double> deferred_probabilities(std::size_t n,
                                           const std::vector<Edge>& edges,
                                           const std::vector<double>& promise,
                                           const DeferredOptions& options,
                                           std::uint64_t seed);

/// The sampling engine's path: same probabilities as above, computed into a
/// caller-owned vector with all working memory in `scratch` (steady-state
/// rounds allocate nothing). Weight classes group by one sort, per-class
/// seeds are counter-based (a pure function of (seed, class)), and the
/// strength estimation inside each class runs its per-level jobs on `pool`
/// — so the output is bitwise identical for any thread count.
void deferred_probabilities_into(std::size_t n, const std::vector<Edge>& edges,
                                 const std::vector<double>& promise,
                                 const DeferredOptions& options,
                                 std::uint64_t seed,
                                 std::vector<double>& prob,
                                 DeferredScratch& scratch,
                                 ThreadPool* pool = nullptr);

/// Batched edge-record fetch: fill out[0..count) with the records of the
/// given edge indices. The access layer's Substrate::fetch_edges matches
/// this shape, so the probability stage can run against a backend with NO
/// materialized per-edge vector (the file-backed streaming substrate).
using DeferredEdgeFetch = std::function<void(
    const std::uint32_t* idxs, std::size_t count, Edge* out)>;

/// Fetch-based variant of deferred_probabilities_into: identical math and
/// draws (the per-class subgraphs are gathered through `fetch` instead of
/// indexed out of a vector), so the output is bitwise identical to the
/// vector overload on the same (promise, options, seed). `num_edges` is
/// the index-space size (== promise.size()).
void deferred_probabilities_into(std::size_t n, std::size_t num_edges,
                                 const DeferredEdgeFetch& fetch,
                                 const std::vector<double>& promise,
                                 const DeferredOptions& options,
                                 std::uint64_t seed,
                                 std::vector<double>& prob,
                                 DeferredScratch& scratch,
                                 ThreadPool* pool = nullptr);

class DeferredSparsifier {
 public:
  /// Sample-and-store phase: only `promise` (sigma) values are consulted.
  /// Charges `meter` one adaptive round and the stored edge count.
  DeferredSparsifier(std::size_t n, const std::vector<Edge>& edges,
                     const std::vector<double>& promise,
                     const DeferredOptions& options, std::uint64_t seed,
                     ResourceMeter* meter = nullptr);

  /// Indices (into the original edge array) held by the structure.
  const std::vector<std::size_t>& stored_indices() const noexcept {
    return stored_;
  }
  /// Inclusion probability used for stored edge i (parallel to
  /// stored_indices()).
  const std::vector<double>& probabilities() const noexcept { return prob_; }

  std::size_t size() const noexcept { return stored_.size(); }

  /// Refinement phase: exact weights for the stored edges are revealed
  /// (parallel to stored_indices()); emits the reweighted sparsifier edges.
  /// Edges whose exact weight is zero are dropped.
  std::vector<SparsifiedEdge> refine(
      const std::vector<double>& exact_weights) const;

  /// Convenience: refine by looking up exact weights from a full per-edge
  /// vector indexed like the original edge array.
  std::vector<SparsifiedEdge> refine_from_full(
      const std::vector<double>& full_exact_weights) const;

 private:
  std::vector<std::size_t> stored_;
  std::vector<double> prob_;
};

}  // namespace dp
