#pragma once
// Cut evaluation utilities for validating sparsifiers: weighted cut values,
// random-cut error sampling, vertex-star cuts (the cuts Lemma 18 uses), and
// an exact Stoer-Wagner global minimum cut for small graphs.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sparsify/cut_sparsifier.hpp"

namespace dp {

/// Weighted cut of (edges, weight) across the indicator in_s.
double weighted_cut(const std::vector<Edge>& edges,
                    const std::vector<double>& weight,
                    const std::vector<char>& in_s);

/// Cut of a sparsifier (kept edges with their reweighted values).
double sparsifier_cut(const std::vector<Edge>& edges,
                      const std::vector<SparsifiedEdge>& kept,
                      const std::vector<char>& in_s);

/// Maximum relative cut error of the sparsifier over `trials` uniformly
/// random bipartitions plus all n single-vertex (star) cuts. Cuts of zero
/// weight in the original graph are skipped.
double max_cut_error(std::size_t n, const std::vector<Edge>& edges,
                     const std::vector<double>& weight,
                     const std::vector<SparsifiedEdge>& kept,
                     std::size_t trials, std::uint64_t seed);

/// Exact global minimum cut (Stoer-Wagner) of a weighted graph; returns the
/// cut value and fills `side` with one shore. O(n^3); use on small graphs.
double stoer_wagner_min_cut(std::size_t n, const std::vector<Edge>& edges,
                            const std::vector<double>& weight,
                            std::vector<char>* side = nullptr);

}  // namespace dp
