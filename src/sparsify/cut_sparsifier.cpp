#include "sparsify/cut_sparsifier.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "sparsify/strength.hpp"
#include "util/rng.hpp"

namespace dp {

std::vector<SparsifiedEdge> cut_sparsify(std::size_t n,
                                         const std::vector<Edge>& edges,
                                         const std::vector<double>& weight,
                                         const SparsifierOptions& options,
                                         std::uint64_t seed,
                                         ResourceMeter* meter) {
  std::vector<SparsifiedEdge> kept;
  if (edges.empty() || n == 0) return kept;

  // Split into geometric weight classes.
  std::map<int, std::vector<std::size_t>> classes;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (!(weight[e] > 0)) continue;
    const int cls = static_cast<int>(std::floor(std::log2(weight[e])));
    classes[cls].push_back(e);
  }

  Rng rng(seed);
  const double log_n = std::log(static_cast<double>(std::max<std::size_t>(
      n, 3)));
  const double rho =
      options.sampling_constant * log_n / (options.xi * options.xi);

  for (const auto& [cls, members] : classes) {
    // Per-class strength on the class subgraph (treated as unweighted:
    // weights within a class differ by < 2x which the constant absorbs).
    std::vector<Edge> class_edges;
    class_edges.reserve(members.size());
    for (std::size_t e : members) class_edges.push_back(edges[e]);
    const std::vector<double> strength = estimate_strengths(
        n, class_edges, rng.next(), options.forests_per_level);
    for (std::size_t i = 0; i < members.size(); ++i) {
      const std::size_t e = members[i];
      const double p = std::min(1.0, rho / strength[i]);
      if (p >= 1.0 || rng.bernoulli(p)) {
        kept.push_back(SparsifiedEdge{e, weight[e] / p});
      }
    }
  }
  std::sort(kept.begin(), kept.end(),
            [](const SparsifiedEdge& a, const SparsifiedEdge& b) {
              return a.index < b.index;
            });
  if (meter != nullptr) meter->store_edges(kept.size());
  return kept;
}

std::vector<SparsifiedEdge> cut_sparsify(const Graph& g,
                                         const SparsifierOptions& options,
                                         std::uint64_t seed,
                                         ResourceMeter* meter) {
  std::vector<double> weight(g.num_edges());
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    weight[e] = g.edge(static_cast<EdgeId>(e)).w;
  }
  return cut_sparsify(g.num_vertices(), g.edges(), weight, options, seed,
                      meter);
}

Graph sparsifier_to_graph(std::size_t n, const std::vector<Edge>& edges,
                          const std::vector<SparsifiedEdge>& kept) {
  Graph h(n);
  for (const SparsifiedEdge& s : kept) {
    h.add_edge(edges[s.index].u, edges[s.index].v, s.weight);
  }
  return h;
}

}  // namespace dp
