#include "sparsify/cut_eval.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/math.hpp"
#include "util/rng.hpp"

namespace dp {

double weighted_cut(const std::vector<Edge>& edges,
                    const std::vector<double>& weight,
                    const std::vector<char>& in_s) {
  double total = 0;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (in_s[edges[e].u] != in_s[edges[e].v]) total += weight[e];
  }
  return total;
}

double sparsifier_cut(const std::vector<Edge>& edges,
                      const std::vector<SparsifiedEdge>& kept,
                      const std::vector<char>& in_s) {
  double total = 0;
  for (const SparsifiedEdge& s : kept) {
    const Edge& e = edges[s.index];
    if (in_s[e.u] != in_s[e.v]) total += s.weight;
  }
  return total;
}

double max_cut_error(std::size_t n, const std::vector<Edge>& edges,
                     const std::vector<double>& weight,
                     const std::vector<SparsifiedEdge>& kept,
                     std::size_t trials, std::uint64_t seed) {
  Rng rng(seed);
  double worst = 0;
  std::vector<char> in_s(n, 0);

  auto check = [&] {
    const double exact = weighted_cut(edges, weight, in_s);
    if (exact <= 0) return;
    const double approx = sparsifier_cut(edges, kept, in_s);
    worst = std::max(worst, rel_err(approx, exact));
  };

  // All vertex stars (these are the cuts Lemma 18 uses directly).
  for (std::size_t v = 0; v < n; ++v) {
    std::fill(in_s.begin(), in_s.end(), 0);
    in_s[v] = 1;
    check();
  }
  // Random bipartitions.
  for (std::size_t t = 0; t < trials; ++t) {
    for (std::size_t v = 0; v < n; ++v) {
      in_s[v] = static_cast<char>(rng.next() & 1);
    }
    check();
  }
  return worst;
}

double stoer_wagner_min_cut(std::size_t n, const std::vector<Edge>& edges,
                            const std::vector<double>& weight,
                            std::vector<char>* side) {
  if (n < 2) return 0.0;
  // Dense adjacency of merged supervertices.
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (std::size_t e = 0; e < edges.size(); ++e) {
    w[edges[e].u][edges[e].v] += weight[e];
    w[edges[e].v][edges[e].u] += weight[e];
  }
  std::vector<std::vector<std::uint32_t>> members(n);
  for (std::size_t v = 0; v < n; ++v) {
    members[v] = {static_cast<std::uint32_t>(v)};
  }
  std::vector<char> active(n, 1);
  double best = std::numeric_limits<double>::infinity();
  std::vector<std::uint32_t> best_side;

  for (std::size_t phase = n; phase > 1; --phase) {
    // Maximum adjacency ordering.
    std::vector<double> key(n, 0.0);
    std::vector<char> added(n, 0);
    std::uint32_t prev = 0, last = 0;
    for (std::size_t it = 0; it < phase; ++it) {
      std::int64_t pick = -1;
      for (std::size_t v = 0; v < n; ++v) {
        if (!active[v] || added[v]) continue;
        if (pick < 0 || key[v] > key[static_cast<std::size_t>(pick)]) {
          pick = static_cast<std::int64_t>(v);
        }
      }
      const auto u = static_cast<std::uint32_t>(pick);
      added[u] = 1;
      prev = last;
      last = u;
      for (std::size_t v = 0; v < n; ++v) {
        if (active[v] && !added[v]) key[v] += w[u][v];
      }
    }
    // Cut-of-the-phase: last vertex alone.
    if (key[last] < best) {
      best = key[last];
      best_side = members[last];
    }
    // Merge last into prev.
    active[last] = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (!active[v] || v == prev) continue;
      w[prev][v] += w[last][v];
      w[v][prev] += w[v][last];
    }
    members[prev].insert(members[prev].end(), members[last].begin(),
                         members[last].end());
  }
  if (side != nullptr) {
    side->assign(n, 0);
    for (std::uint32_t v : best_side) (*side)[v] = 1;
  }
  return best;
}

}  // namespace dp
