#include "sparsify/deferred.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dp {

void deferred_probabilities_into(std::size_t n, std::size_t num_edges,
                                 const DeferredEdgeFetch& fetch,
                                 const std::vector<double>& promise,
                                 const DeferredOptions& options,
                                 std::uint64_t seed,
                                 std::vector<double>& prob,
                                 DeferredScratch& scratch, ThreadPool* pool) {
  if (promise.size() != num_edges) {
    throw std::invalid_argument("deferred_probabilities: size mismatch");
  }
  if (options.gamma < 1.0) {
    throw std::invalid_argument("deferred_probabilities: gamma must be >= 1");
  }
  prob.assign(num_edges, 0.0);
  if (num_edges == 0 || n == 0) return;

  // Same per-class scheme as cut_sparsify, but probabilities computed from
  // the promise weights and inflated by gamma^2 (Lemma 17: p' computed from
  // sigma times O(chi^2) dominates the exact-weight probability).
  //
  // Classes group by one sort of packed (class, edge index) keys instead of
  // a std::map of vectors; the biased class offset keeps negative classes
  // ordered below positive ones.
  scratch.class_keys.clear();
  scratch.class_keys.reserve(num_edges);
  for (std::size_t e = 0; e < num_edges; ++e) {
    if (!(promise[e] > 0)) continue;
    const int cls = static_cast<int>(std::floor(std::log2(promise[e])));
    const auto biased =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(cls) +
                                   (std::int64_t{1} << 31));
    scratch.class_keys.push_back((biased << 32) |
                                 static_cast<std::uint64_t>(e));
  }
  std::sort(scratch.class_keys.begin(), scratch.class_keys.end());

  const CounterRng rng(seed);
  const double log_n =
      std::log(static_cast<double>(std::max<std::size_t>(n, 3)));
  const double rho = options.sampling_constant * options.gamma *
                     options.gamma * log_n / (options.xi * options.xi);

  std::size_t lo = 0;
  while (lo < scratch.class_keys.size()) {
    const std::uint64_t cls_bits = scratch.class_keys[lo] >> 32;
    std::size_t hi = lo;
    while (hi < scratch.class_keys.size() &&
           (scratch.class_keys[hi] >> 32) == cls_bits) {
      ++hi;
    }
    // Gather the class subgraph through the batched fetch (the vector
    // overload's fetch is a plain indexed copy, so this path is bitwise
    // identical to indexing the edges directly).
    scratch.class_members.clear();
    scratch.class_members.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      scratch.class_members.push_back(
          static_cast<std::uint32_t>(scratch.class_keys[i] & 0xffffffffULL));
    }
    scratch.class_edges.resize(hi - lo);
    fetch(scratch.class_members.data(), hi - lo,
          scratch.class_edges.data());
    // Per-class seed is a pure function of (seed, class), so dropping or
    // adding a class never shifts the draws of the others.
    estimate_strengths_into(n, scratch.class_edges, rng.bits(cls_bits),
                            scratch.class_strength, scratch.strength, pool);
    for (std::size_t i = lo; i < hi; ++i) {
      prob[scratch.class_keys[i] & 0xffffffffULL] =
          std::min(1.0, rho / scratch.class_strength[i - lo]);
    }
    lo = hi;
  }
}

void deferred_probabilities_into(std::size_t n, const std::vector<Edge>& edges,
                                 const std::vector<double>& promise,
                                 const DeferredOptions& options,
                                 std::uint64_t seed,
                                 std::vector<double>& prob,
                                 DeferredScratch& scratch, ThreadPool* pool) {
  const Edge* base = edges.data();
  deferred_probabilities_into(
      n, edges.size(),
      [base](const std::uint32_t* idxs, std::size_t count, Edge* out) {
        for (std::size_t i = 0; i < count; ++i) out[i] = base[idxs[i]];
      },
      promise, options, seed, prob, scratch, pool);
}

std::vector<double> deferred_probabilities(std::size_t n,
                                           const std::vector<Edge>& edges,
                                           const std::vector<double>& promise,
                                           const DeferredOptions& options,
                                           std::uint64_t seed) {
  std::vector<double> prob;
  DeferredScratch scratch;
  deferred_probabilities_into(n, edges, promise, options, seed, prob,
                              scratch);
  return prob;
}

DeferredSparsifier::DeferredSparsifier(std::size_t n,
                                       const std::vector<Edge>& edges,
                                       const std::vector<double>& promise,
                                       const DeferredOptions& options,
                                       std::uint64_t seed,
                                       ResourceMeter* meter) {
  Rng rng(seed);
  const std::vector<double> prob =
      deferred_probabilities(n, edges, promise, options, rng.next());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (prob[e] <= 0) continue;
    if (prob[e] >= 1.0 || rng.bernoulli(prob[e])) {
      stored_.push_back(e);
      prob_.push_back(prob[e]);
    }
  }
  if (meter != nullptr) {
    meter->add_round();
    meter->store_edges(stored_.size());
  }
}

std::vector<SparsifiedEdge> DeferredSparsifier::refine(
    const std::vector<double>& exact_weights) const {
  if (exact_weights.size() != stored_.size()) {
    throw std::invalid_argument("DeferredSparsifier::refine: size mismatch");
  }
  std::vector<SparsifiedEdge> out;
  out.reserve(stored_.size());
  for (std::size_t i = 0; i < stored_.size(); ++i) {
    if (!(exact_weights[i] > 0)) continue;
    out.push_back(SparsifiedEdge{stored_[i], exact_weights[i] / prob_[i]});
  }
  return out;
}

std::vector<SparsifiedEdge> DeferredSparsifier::refine_from_full(
    const std::vector<double>& full_exact_weights) const {
  std::vector<double> local;
  local.reserve(stored_.size());
  for (std::size_t e : stored_) local.push_back(full_exact_weights[e]);
  return refine(local);
}

}  // namespace dp
