#include "sparsify/deferred.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "sparsify/strength.hpp"
#include "util/rng.hpp"

namespace dp {

std::vector<double> deferred_probabilities(std::size_t n,
                                           const std::vector<Edge>& edges,
                                           const std::vector<double>& promise,
                                           const DeferredOptions& options,
                                           std::uint64_t seed) {
  if (promise.size() != edges.size()) {
    throw std::invalid_argument("deferred_probabilities: size mismatch");
  }
  if (options.gamma < 1.0) {
    throw std::invalid_argument("deferred_probabilities: gamma must be >= 1");
  }
  std::vector<double> prob(edges.size(), 0.0);
  if (edges.empty() || n == 0) return prob;

  // Same per-class scheme as cut_sparsify, but probabilities computed from
  // the promise weights and inflated by gamma^2 (Lemma 17: p' computed from
  // sigma times O(chi^2) dominates the exact-weight probability).
  std::map<int, std::vector<std::size_t>> classes;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (!(promise[e] > 0)) continue;
    const int cls = static_cast<int>(std::floor(std::log2(promise[e])));
    classes[cls].push_back(e);
  }

  Rng rng(seed);
  const double log_n =
      std::log(static_cast<double>(std::max<std::size_t>(n, 3)));
  const double rho = options.sampling_constant * options.gamma *
                     options.gamma * log_n / (options.xi * options.xi);

  for (const auto& [cls, members] : classes) {
    std::vector<Edge> class_edges;
    class_edges.reserve(members.size());
    for (std::size_t e : members) class_edges.push_back(edges[e]);
    const std::vector<double> strength = estimate_strengths(
        n, class_edges, rng.next(), options.forests_per_level);
    for (std::size_t i = 0; i < members.size(); ++i) {
      prob[members[i]] = std::min(1.0, rho / strength[i]);
    }
  }
  return prob;
}

DeferredSparsifier::DeferredSparsifier(std::size_t n,
                                       const std::vector<Edge>& edges,
                                       const std::vector<double>& promise,
                                       const DeferredOptions& options,
                                       std::uint64_t seed,
                                       ResourceMeter* meter) {
  Rng rng(seed);
  const std::vector<double> prob =
      deferred_probabilities(n, edges, promise, options, rng.next());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (prob[e] <= 0) continue;
    if (prob[e] >= 1.0 || rng.bernoulli(prob[e])) {
      stored_.push_back(e);
      prob_.push_back(prob[e]);
    }
  }
  if (meter != nullptr) {
    meter->add_round();
    meter->store_edges(stored_.size());
  }
}

std::vector<SparsifiedEdge> DeferredSparsifier::refine(
    const std::vector<double>& exact_weights) const {
  if (exact_weights.size() != stored_.size()) {
    throw std::invalid_argument("DeferredSparsifier::refine: size mismatch");
  }
  std::vector<SparsifiedEdge> out;
  out.reserve(stored_.size());
  for (std::size_t i = 0; i < stored_.size(); ++i) {
    if (!(exact_weights[i] > 0)) continue;
    out.push_back(SparsifiedEdge{stored_[i], exact_weights[i] / prob_[i]});
  }
  return out;
}

std::vector<SparsifiedEdge> DeferredSparsifier::refine_from_full(
    const std::vector<double>& full_exact_weights) const {
  std::vector<double> local;
  local.reserve(stored_.size());
  for (std::size_t e : stored_) local.push_back(full_exact_weights[e]);
  return refine(local);
}

}  // namespace dp
