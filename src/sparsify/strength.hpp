#pragma once
// Edge-strength (connectivity) estimation by layered subsampling —
// Algorithm 6 of the paper (after Ahn-Guha-McGregor PODS'12 / Fung et al.
// STOC'11 / Nagamochi-Ibaraki).
//
// Level i holds subsample G_i of G at rate 2^-i (nested: G_i contains G_{i+1}).
// Within each level we greedily pack k spanning forests F_1..F_k; an edge
// whose endpoints remain connected in the LAST forest at level i has >= k
// edge-disjoint-ish connectivity there, certifying strength ~ k * 2^i.
// Sampling each edge with probability ~ rho / strength then preserves all
// cuts within 1 +- xi whp (Benczur-Karger).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dp {

/// strength[e] >= 1 for every edge; larger = better connected.
/// Runs in O(m log m alpha(n)) time and is deterministic in `seed`.
std::vector<double> estimate_strengths(std::size_t n,
                                       const std::vector<Edge>& edges,
                                       std::uint64_t seed,
                                       int forests_per_level = 0);

}  // namespace dp
