#pragma once
// Edge-strength (connectivity) estimation by layered subsampling —
// Algorithm 6 of the paper (after Ahn-Guha-McGregor PODS'12 / Fung et al.
// STOC'11 / Nagamochi-Ibaraki).
//
// Level i holds subsample G_i of G at rate 2^-i (nested: G_i contains G_{i+1}).
// Within each level we greedily pack k spanning forests F_1..F_k; an edge
// whose endpoints remain connected in the LAST forest at level i has >= k
// edge-disjoint-ish connectivity there, certifying strength ~ k * 2^i.
// Sampling each edge with probability ~ rho / strength then preserves all
// cuts within 1 +- xi whp (Benczur-Karger).
//
// Two entry points:
//  - estimate_strengths: the original sequential path (stateful Rng draws in
//    edge order). Kept stable for the offline cut sparsifier and tests.
//  - estimate_strengths_into: the sampling engine's path. Subsample depths
//    come from a counter-based RNG (pure function of (seed, edge index)) and
//    every subsampling level packs its forests as an independent job, so the
//    output is bitwise identical for any thread count; all buffers live in a
//    caller-owned StrengthScratch so steady-state rounds allocate nothing.
//    Level 0 (which holds EVERY edge and used to serialize the whole pass)
//    additionally splits into vertex-disjoint region jobs: connected
//    components of the input are grouped into at most kStrengthRegions
//    balanced buckets, and since forest packing never crosses a component
//    boundary, packing each bucket independently (in ascending edge order)
//    reproduces the serial placement indices exactly — the split depends
//    only on the input, never on the thread count.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/union_find.hpp"

namespace dp {

class ThreadPool;

namespace detail {

/// Greedy Nagamochi-Ibaraki forest decomposition with nesting: an edge is
/// placed into the first forest whose components its endpoints straddle.
/// Connectivity in forest j certifies >= j edge-disjoint-ish connectivity,
/// so the placement index is a per-edge strength certificate. The forests
/// are nested (connected in F_j implies connected in F_{j-1}), which makes
/// the placement search a binary search. reset() keeps the forest arrays so
/// a scratch-owned packer reuses its allocations across rounds.
class ForestPacker {
 public:
  ForestPacker() = default;
  explicit ForestPacker(std::size_t n) { reset(n); }

  void reset(std::size_t n) {
    n_ = n;
    for (std::size_t f = 0; f < active_; ++f) forests_[f].reset(n);
    active_ = 0;
  }

  /// Insert edge (u, v); returns its (1-based) placement index.
  std::size_t insert(std::uint32_t u, std::uint32_t v) {
    // Binary search the first forest where u and v are disconnected.
    std::size_t lo = 0;        // invariant: connected in all < lo
    std::size_t hi = active_;  // disconnected somewhere in [lo, hi]
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (forests_[mid].connected(u, v)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == active_) {
      if (active_ == forests_.size()) {
        forests_.emplace_back(n_);
      } else {
        forests_[active_].reset(n_);
      }
      ++active_;
    }
    forests_[lo].unite(u, v);
    return lo + 1;
  }

 private:
  std::size_t n_ = 0;
  std::size_t active_ = 0;
  std::vector<UnionFind> forests_;
};

}  // namespace detail

/// Upper bound on vertex-disjoint region jobs for the level-0 forest
/// packing (each region job owns its own ForestPacker whose forests carry
/// n-sized union-find state, so the cap bounds scratch memory; the split
/// never depends on the pool size).
inline constexpr std::size_t kStrengthRegions = 8;

/// Reusable buffers for estimate_strengths_into. One scratch serves any
/// sequence of calls; buffers grow to the high-water mark and stay.
struct StrengthScratch {
  std::vector<std::uint8_t> level_cap;       // per edge: deepest level
  std::vector<std::uint32_t> level_offset;   // CSR offsets, one per level
  std::vector<std::uint32_t> level_members;  // edge ids grouped by level
  std::vector<std::uint32_t> cursor;         // fill cursors, one per level
  std::vector<double> candidate;             // per (level, member) strength
  std::vector<detail::ForestPacker> packers;  // one per region/level job
  // Level-0 region split (vertex-disjoint component buckets).
  UnionFind components;
  std::vector<std::uint32_t> comp_count;      // per root: edge count
  std::vector<std::uint32_t> comp_order;      // roots by first appearance
  std::vector<std::uint8_t> comp_bucket;      // per root: region id
  std::vector<std::uint32_t> region_offset;   // CSR offsets, regions + 1
  std::vector<std::uint32_t> region_members;  // edge ids grouped by region
  std::vector<std::uint32_t> region_cursor;   // fill cursors, one per region
};

/// strength[e] >= 1 for every edge; larger = better connected.
/// Runs in O(m log m alpha(n)) time and is deterministic in `seed`.
std::vector<double> estimate_strengths(std::size_t n,
                                       const std::vector<Edge>& edges,
                                       std::uint64_t seed,
                                       int forests_per_level = 0);

/// Deterministic parallel strength estimation into a caller-owned output
/// (resized to edges.size()). Subsample depths are counter-based draws and
/// the per-level forest packings run as independent jobs on `pool`, so the
/// result depends only on (n, edges, seed) — never on the thread count.
void estimate_strengths_into(std::size_t n, const std::vector<Edge>& edges,
                             std::uint64_t seed,
                             std::vector<double>& strength,
                             StrengthScratch& scratch,
                             ThreadPool* pool = nullptr);

}  // namespace dp
