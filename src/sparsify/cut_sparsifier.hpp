#pragma once
// Weighted cut sparsification (Benczur-Karger via strength sampling).
//
// For weighted inputs the edges are first split into geometric weight
// classes [2^l, 2^{l+1}); each class is sparsified as a (near-)unweighted
// graph using strength-based sampling, and the union of per-class
// sparsifiers is a sparsifier of the whole graph (Lemma 17's splitting
// argument). The sampled edge keeps weight w_e / p_e, so every cut is
// preserved in expectation and within 1 +- xi whp.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/accounting.hpp"

namespace dp {

/// One retained edge of a sparsifier: index into the input edge array plus
/// the reweighted value.
struct SparsifiedEdge {
  std::size_t index;
  double weight;
};

struct SparsifierOptions {
  /// Target cut accuracy (1 +- xi).
  double xi = 0.1;
  /// Oversampling constant C in p_e = min(1, C log n / (xi^2 strength_e)).
  double sampling_constant = 12.0;
  /// Forests per subsampling level for strength estimation (0 = auto).
  int forests_per_level = 0;
};

/// Sparsify (n, edges) with per-edge weights `weight` (must be positive for
/// retained edges; zero-weight edges are dropped). Returns retained edges;
/// charges `meter` (if given) with the stored edge count.
std::vector<SparsifiedEdge> cut_sparsify(std::size_t n,
                                         const std::vector<Edge>& edges,
                                         const std::vector<double>& weight,
                                         const SparsifierOptions& options,
                                         std::uint64_t seed,
                                         ResourceMeter* meter = nullptr);

/// Convenience: sparsify a Graph using its own edge weights.
std::vector<SparsifiedEdge> cut_sparsify(const Graph& g,
                                         const SparsifierOptions& options,
                                         std::uint64_t seed,
                                         ResourceMeter* meter = nullptr);

/// Materialize a sparsifier as a Graph (same vertex set).
Graph sparsifier_to_graph(std::size_t n, const std::vector<Edge>& edges,
                          const std::vector<SparsifiedEdge>& kept);

}  // namespace dp
