#include "sparsify/strength.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dp {

namespace {

int subsample_levels(std::size_t m) {
  return 1 +
         static_cast<int>(std::ceil(std::log2(static_cast<double>(m) + 1)));
}

/// A level-i certificate j * 2^i is only statistically meaningful when the
/// placement index j is at least ~log n (the k-connectivity requirement of
/// the original construction); below that, mere survival of the
/// subsampling would inflate weak edges (a bridge that survives 3 halvings
/// is still a bridge).
std::size_t strength_k_min(std::size_t n) {
  return std::max<std::size_t>(
      2, static_cast<std::size_t>(
             std::ceil(std::log2(static_cast<double>(n) + 2))));
}

/// Partition the edge set into at most kStrengthRegions vertex-disjoint
/// buckets of connected components, balanced by edge count (components in
/// first-appearance order, each assigned to the lightest bucket so far).
/// Returns the number of buckets and fills scratch.region_offset /
/// scratch.region_members (edge ids ascending inside each bucket). The
/// split is a pure function of (n, edges) — never of the thread count.
std::size_t build_level0_regions(std::size_t n,
                                 const std::vector<Edge>& edges,
                                 StrengthScratch& scratch) {
  const std::size_t m = edges.size();
  scratch.components.reset(n);
  for (const Edge& e : edges) scratch.components.unite(e.u, e.v);

  scratch.comp_count.assign(n, 0);
  scratch.comp_order.clear();
  for (const Edge& e : edges) {
    const std::uint32_t root = scratch.components.find(e.u);
    if (scratch.comp_count[root] == 0) scratch.comp_order.push_back(root);
    ++scratch.comp_count[root];
  }

  const std::size_t regions =
      std::min(kStrengthRegions, scratch.comp_order.size());
  scratch.comp_bucket.assign(n, 0);
  std::uint32_t load[kStrengthRegions] = {};
  for (const std::uint32_t root : scratch.comp_order) {
    std::size_t lightest = 0;
    for (std::size_t r = 1; r < regions; ++r) {
      if (load[r] < load[lightest]) lightest = r;
    }
    scratch.comp_bucket[root] = static_cast<std::uint8_t>(lightest);
    load[lightest] += scratch.comp_count[root];
  }

  scratch.region_offset.assign(regions + 1, 0);
  for (const Edge& e : edges) {
    const std::uint8_t r =
        scratch.comp_bucket[scratch.components.find(e.u)];
    ++scratch.region_offset[r + 1];
  }
  for (std::size_t r = 0; r < regions; ++r) {
    scratch.region_offset[r + 1] += scratch.region_offset[r];
  }
  scratch.region_members.resize(m);
  scratch.region_cursor.assign(scratch.region_offset.begin(),
                               scratch.region_offset.begin() +
                                   static_cast<std::ptrdiff_t>(regions));
  for (std::size_t e = 0; e < m; ++e) {
    const std::uint8_t r =
        scratch.comp_bucket[scratch.components.find(edges[e].u)];
    scratch.region_members[scratch.region_cursor[r]++] =
        static_cast<std::uint32_t>(e);
  }
  return regions;
}

}  // namespace

std::vector<double> estimate_strengths(std::size_t n,
                                       const std::vector<Edge>& edges,
                                       std::uint64_t seed,
                                       int forests_per_level) {
  (void)forests_per_level;  // retained for API stability; the packer grows
                            // its forest list on demand.
  const std::size_t m = edges.size();
  std::vector<double> strength(m, 1.0);
  if (m == 0 || n == 0) return strength;

  const int levels = subsample_levels(m);

  // Nested subsamples: edge e belongs to levels 0..level_cap[e]; surviving
  // i halvings with placement index j certifies strength ~ j * 2^i.
  Rng rng(seed);
  std::vector<int> level_cap(m);
  for (std::size_t e = 0; e < m; ++e) {
    level_cap[e] = std::min(levels - 1, rng.coin_flips_until_tail());
  }

  const std::size_t k_min = strength_k_min(n);
  detail::ForestPacker packer;
  for (int i = 0; i < levels; ++i) {
    packer.reset(n);
    bool level_nonempty = false;
    const double scale = std::pow(2.0, i);
    for (std::size_t e = 0; e < m; ++e) {
      if (level_cap[e] < i) continue;
      level_nonempty = true;
      const std::size_t j = packer.insert(edges[e].u, edges[e].v);
      if (i == 0) {
        strength[e] = std::max(strength[e], static_cast<double>(j));
      } else if (j >= k_min) {
        strength[e] =
            std::max(strength[e], static_cast<double>(j) * scale);
      }
    }
    if (!level_nonempty) break;
  }
  return strength;
}

void estimate_strengths_into(std::size_t n, const std::vector<Edge>& edges,
                             std::uint64_t seed,
                             std::vector<double>& strength,
                             StrengthScratch& scratch, ThreadPool* pool) {
  const std::size_t m = edges.size();
  strength.assign(m, 1.0);
  if (m == 0 || n == 0) return;

  const auto levels = static_cast<std::size_t>(subsample_levels(m));
  const std::size_t k_min = strength_k_min(n);

  // Counter-based subsample depths: a pure function of (seed, e), so the
  // grouping below is independent of evaluation order.
  const CounterRng rng(seed);
  scratch.level_cap.resize(m);
  for (std::size_t e = 0; e < m; ++e) {
    scratch.level_cap[e] = static_cast<std::uint8_t>(
        std::min<int>(static_cast<int>(levels) - 1,
                      rng.coin_flips_until_tail(e, 0)));
  }

  // CSR of level membership: edge e participates in levels 0..cap[e].
  scratch.level_offset.assign(levels + 1, 0);
  for (std::size_t e = 0; e < m; ++e) {
    for (std::size_t i = 0; i <= scratch.level_cap[e]; ++i) {
      ++scratch.level_offset[i + 1];
    }
  }
  std::size_t used_levels = levels;
  for (std::size_t i = 0; i < levels; ++i) {
    if (scratch.level_offset[i + 1] == 0) {
      used_levels = i;  // nested subsamples: all deeper levels empty too
      break;
    }
    scratch.level_offset[i + 1] += scratch.level_offset[i];
  }
  scratch.level_members.resize(scratch.level_offset[used_levels]);
  scratch.cursor.assign(scratch.level_offset.begin(),
                        scratch.level_offset.begin() +
                            static_cast<std::ptrdiff_t>(used_levels));
  for (std::size_t e = 0; e < m; ++e) {
    const std::size_t cap =
        std::min<std::size_t>(scratch.level_cap[e],
                              used_levels == 0 ? 0 : used_levels - 1);
    for (std::size_t i = 0; i <= cap && i < used_levels; ++i) {
      scratch.level_members[scratch.cursor[i]++] = static_cast<std::uint32_t>(e);
    }
  }

  // Independent forest-packing jobs, each sequential in edge order and
  // writing only its own candidate slice — deterministic for any thread
  // count. Level 0 holds EVERY edge and used to dominate the critical
  // path as one serial job; it now splits into vertex-disjoint region
  // jobs (balanced component buckets). Forest packing never crosses a
  // component boundary — an edge's placement index depends only on the
  // earlier edges of its own component — so per-region packing in
  // ascending edge order reproduces the serial placement indices exactly.
  // Levels >= 1 are subsamples and stay one job each.
  scratch.candidate.resize(scratch.level_members.size());
  const std::size_t regions = build_level0_regions(n, edges, scratch);
  const std::size_t jobs = regions + (used_levels - 1);
  if (scratch.packers.size() < jobs) {
    scratch.packers.resize(jobs);
  }
  run_jobs(pool, jobs, [&](std::size_t job) {
    detail::ForestPacker& packer = scratch.packers[job];
    packer.reset(n);
    if (job < regions) {
      // Level 0's CSR positions coincide with edge ids (every edge is a
      // level-0 member, filled in ascending order).
      for (std::size_t pos = scratch.region_offset[job];
           pos < scratch.region_offset[job + 1]; ++pos) {
        const std::uint32_t e = scratch.region_members[pos];
        scratch.candidate[e] = static_cast<double>(
            packer.insert(edges[e].u, edges[e].v));
      }
      return;
    }
    const std::size_t i = job - regions + 1;
    const double scale = std::pow(2.0, static_cast<double>(i));
    for (std::size_t pos = scratch.level_offset[i];
         pos < scratch.level_offset[i + 1]; ++pos) {
      const std::uint32_t e = scratch.level_members[pos];
      const std::size_t j = packer.insert(edges[e].u, edges[e].v);
      scratch.candidate[pos] =
          j >= k_min ? static_cast<double>(j) * scale : 0.0;
    }
  });

  // Combine in level order (max is exact, so the order is irrelevant for
  // the value — it just keeps the pass cache-friendly).
  for (std::size_t i = 0; i < used_levels; ++i) {
    for (std::size_t pos = scratch.level_offset[i];
         pos < scratch.level_offset[i + 1]; ++pos) {
      const std::uint32_t e = scratch.level_members[pos];
      if (scratch.candidate[pos] > strength[e]) {
        strength[e] = scratch.candidate[pos];
      }
    }
  }
}

}  // namespace dp
