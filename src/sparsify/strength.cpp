#include "sparsify/strength.hpp"

#include <algorithm>
#include <cmath>

#include "graph/union_find.hpp"
#include "util/rng.hpp"

namespace dp {

namespace {

/// Greedy Nagamochi-Ibaraki forest decomposition with nesting: an edge is
/// placed into the first forest whose components its endpoints straddle.
/// Connectivity in forest j certifies >= j edge-disjoint-ish connectivity,
/// so the placement index is a per-edge strength certificate. The forests
/// are nested (connected in F_j implies connected in F_{j-1}), which makes
/// the placement search a binary search.
class ForestPacker {
 public:
  explicit ForestPacker(std::size_t n) : n_(n) {}

  /// Insert edge (u, v); returns its (1-based) placement index.
  std::size_t insert(std::uint32_t u, std::uint32_t v) {
    // Binary search the first forest where u and v are disconnected.
    std::size_t lo = 0;              // invariant: connected in all < lo
    std::size_t hi = forests_.size();  // disconnected somewhere in [lo, hi]
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (forests_[mid].connected(u, v)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == forests_.size()) forests_.emplace_back(n_);
    forests_[lo].unite(u, v);
    return lo + 1;
  }

 private:
  std::size_t n_;
  std::vector<UnionFind> forests_;
};

}  // namespace

std::vector<double> estimate_strengths(std::size_t n,
                                       const std::vector<Edge>& edges,
                                       std::uint64_t seed,
                                       int forests_per_level) {
  (void)forests_per_level;  // retained for API stability; the packer grows
                            // its forest list on demand.
  const std::size_t m = edges.size();
  std::vector<double> strength(m, 1.0);
  if (m == 0 || n == 0) return strength;

  const int levels =
      1 + static_cast<int>(std::ceil(std::log2(static_cast<double>(m) + 1)));

  // Nested subsamples: edge e belongs to levels 0..level_cap[e]; surviving
  // i halvings with placement index j certifies strength ~ j * 2^i.
  Rng rng(seed);
  std::vector<int> level_cap(m);
  for (std::size_t e = 0; e < m; ++e) {
    level_cap[e] = std::min(levels - 1, rng.coin_flips_until_tail());
  }

  // A level-i certificate j * 2^i is only statistically meaningful when the
  // placement index j is at least ~log n (the k-connectivity requirement of
  // the original construction); below that, mere survival of the
  // subsampling would inflate weak edges (a bridge that survives 3 halvings
  // is still a bridge).
  const std::size_t k_min = std::max<std::size_t>(
      2, static_cast<std::size_t>(
             std::ceil(std::log2(static_cast<double>(n) + 2))));
  for (int i = 0; i < levels; ++i) {
    ForestPacker packer(n);
    bool level_nonempty = false;
    const double scale = std::pow(2.0, i);
    for (std::size_t e = 0; e < m; ++e) {
      if (level_cap[e] < i) continue;
      level_nonempty = true;
      const std::size_t j = packer.insert(edges[e].u, edges[e].v);
      if (i == 0) {
        strength[e] = std::max(strength[e], static_cast<double>(j));
      } else if (j >= k_min) {
        strength[e] =
            std::max(strength[e], static_cast<double>(j) * scale);
      }
    }
    if (!level_nonempty) break;
  }
  return strength;
}

}  // namespace dp
