#pragma once
// Connectivity helpers: component labelling and spanning forests, used both
// directly and as ground truth for the sketch-based connectivity of E11.

#include <vector>

#include "graph/graph.hpp"

namespace dp {

/// Component label (0-based, contiguous) for every vertex.
std::vector<std::uint32_t> connected_components(const Graph& g);

/// Number of connected components.
std::size_t num_components(const Graph& g);

/// Edge ids of an arbitrary spanning forest.
std::vector<EdgeId> spanning_forest(const Graph& g);

/// Exact weight of cut (S, V-S): sum of w_e over edges with exactly one
/// endpoint in S. `in_s[v]` marks membership.
double cut_weight(const Graph& g, const std::vector<char>& in_s);

}  // namespace dp
