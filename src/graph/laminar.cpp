#include "graph/laminar.hpp"

#include <algorithm>

namespace dp {

SetRelation classify_sets(const std::vector<Vertex>& a,
                          const std::vector<Vertex>& b) {
  std::size_t common = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++common;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  if (common == 0) return SetRelation::kDisjoint;
  if (common == a.size() && common == b.size()) return SetRelation::kEqual;
  if (common == a.size()) return SetRelation::kASubsetB;
  if (common == b.size()) return SetRelation::kBSubsetA;
  return SetRelation::kCrossing;
}

std::size_t LaminarFamily::add(std::vector<Vertex> set) {
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  sets_.push_back(std::move(set));
  return sets_.size() - 1;
}

bool LaminarFamily::is_laminar() const {
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    for (std::size_t j = i + 1; j < sets_.size(); ++j) {
      if (classify_sets(sets_[i], sets_[j]) == SetRelation::kCrossing) {
        return false;
      }
    }
  }
  return true;
}

bool LaminarFamily::is_disjoint() const {
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    for (std::size_t j = i + 1; j < sets_.size(); ++j) {
      if (classify_sets(sets_[i], sets_[j]) != SetRelation::kDisjoint) {
        return false;
      }
    }
  }
  return true;
}

std::vector<std::size_t> LaminarFamily::order_by_decreasing_b(
    const Capacities& b) const {
  std::vector<std::size_t> idx(sets_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::vector<std::int64_t> weight(sets_.size());
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    weight[i] = b.weight_of(sets_[i]);
  }
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t x, std::size_t y) {
    return weight[x] > weight[y];
  });
  return idx;
}

bool LaminarFamily::contains(std::size_t i, Vertex v) const {
  const auto& s = sets_[i];
  return std::binary_search(s.begin(), s.end(), v);
}

}  // namespace dp
