#pragma once
// Disjoint-set forest with union by rank and path halving. Used by the
// streaming sparsifier (k parallel union-find structures per subsampling
// level, Algorithm 6 of the paper), the sketch-based spanning forest, and
// connectivity checks.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dp {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n = 0) { reset(n); }

  void reset(std::size_t n);

  std::size_t size() const noexcept { return parent_.size(); }

  /// Representative of x's component (path halving; amortized ~O(alpha)).
  std::uint32_t find(std::uint32_t x) noexcept;

  /// Merge components of a and b; returns true if they were distinct.
  bool unite(std::uint32_t a, std::uint32_t b) noexcept;

  bool connected(std::uint32_t a, std::uint32_t b) noexcept {
    return find(a) == find(b);
  }

  std::size_t num_components() const noexcept { return components_; }

  /// Size of the component containing x.
  std::size_t component_size(std::uint32_t x) noexcept {
    return size_[find(x)];
  }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t components_ = 0;
};

}  // namespace dp
