#pragma once
// Dinic maximum-flow on integer capacities (linked-list arc storage).
//
// The odd-set separation hot path now runs on graph/flow_arena.hpp (CSR,
// incremental capacity restore); this implementation is retained as the
// simple reference that the arena is validated against in tests/test_flow.

#include <cstdint>
#include <vector>

namespace dp {

class Dinic {
 public:
  using Cap = std::int64_t;

  explicit Dinic(std::size_t n);

  /// Add a directed arc u->v with capacity cap (and residual v->u of
  /// back_cap; pass cap for an undirected edge). Returns the arc index.
  std::size_t add_arc(std::uint32_t u, std::uint32_t v, Cap cap,
                      Cap back_cap = 0);

  /// Add an undirected edge (capacity both ways).
  std::size_t add_edge(std::uint32_t u, std::uint32_t v, Cap cap) {
    return add_arc(u, v, cap, cap);
  }

  /// Max flow from s to t. Resets previous flow.
  Cap max_flow(std::uint32_t s, std::uint32_t t);

  /// After max_flow: vertices reachable from s in the residual graph
  /// (the s-side of a minimum cut).
  std::vector<char> min_cut_side(std::uint32_t s) const;

  std::size_t num_vertices() const noexcept { return head_.size(); }

 private:
  bool bfs(std::uint32_t s, std::uint32_t t);
  Cap dfs(std::uint32_t u, std::uint32_t t, Cap limit);

  struct Arc {
    std::uint32_t to;
    Cap cap;
    std::uint32_t next;
  };
  std::vector<Arc> arcs_;
  std::vector<std::uint32_t> head_;
  std::vector<Cap> initial_cap_;  // to reset between flows
  std::vector<int> level_;
  std::vector<std::uint32_t> iter_;
  static constexpr std::uint32_t kNil = ~0u;
};

}  // namespace dp
