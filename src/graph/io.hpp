#pragma once
// Plain-text graph I/O: whitespace-separated "u v w" lines with an optional
// "n m" header; '#' comments allowed. Enough to round-trip experiment inputs.

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace dp {

/// Write "n m" header followed by one "u v w" line per edge.
void write_graph(std::ostream& os, const Graph& g);
void write_graph_file(const std::string& path, const Graph& g);

/// Parse the format produced by write_graph. Throws std::runtime_error on
/// malformed input.
Graph read_graph(std::istream& is);
Graph read_graph_file(const std::string& path);

}  // namespace dp
