#pragma once
// Graph I/O.
//
// Two formats:
//  - plain text ("u v w" lines with an "n m" header; '#' comments) for
//    human-editable experiment inputs;
//  - the binary DPEF edge-file format (stream/edge_file) — versioned,
//    checksummed, block-structured — which is what the out-of-core solve
//    path consumes directly via EdgeFileStream. The wrappers here are the
//    materialized-Graph entry points; gen::gnm_to_file writes the same
//    format without ever holding a Graph.

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"
#include "stream/edge_file.hpp"

namespace dp {

/// Write "n m" header followed by one "u v w" line per edge.
void write_graph(std::ostream& os, const Graph& g);
void write_graph_file(const std::string& path, const Graph& g);

/// Parse the format produced by write_graph. Throws std::runtime_error on
/// malformed input.
Graph read_graph(std::istream& is);
Graph read_graph_file(const std::string& path);

/// Binary DPEF round-trip (weights as IEEE-754 bit patterns, so read after
/// write is bitwise identical). Reading validates magic, version, exact
/// file size and every block checksum; any defect throws CheckpointCorrupt.
void write_edge_file(const std::string& path, const Graph& g);
Graph read_edge_file(const std::string& path);

}  // namespace dp
