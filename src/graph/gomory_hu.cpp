#include "graph/gomory_hu.hpp"

#include <algorithm>
#include <stdexcept>

namespace dp {

void GomoryHuTree::finalize() {
  const std::size_t n = parent.size();
  depth.assign(n, 0);
  // Gusfield invariant: parent[v] is either v's root or an index < v, so a
  // single increasing pass resolves every depth.
  for (std::uint32_t v = 0; v < n; ++v) {
    if (parent[v] != v) depth[v] = depth[parent[v]] + 1;
  }
  child_off.assign(n + 1, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (parent[v] != v) ++child_off[parent[v] + 1];
  }
  for (std::size_t v = 0; v < n; ++v) child_off[v + 1] += child_off[v];
  child_list.resize(n == 0 ? 0 : child_off[n]);
  std::vector<std::uint32_t> cursor(child_off.begin(), child_off.end() - 1);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (parent[v] != v) child_list[cursor[parent[v]]++] = v;
  }
}

std::int64_t GomoryHuTree::min_cut(std::uint32_t s, std::uint32_t t) const {
  std::int64_t best = INT64_MAX;
  std::int32_t ds = depth[s];
  std::int32_t dt = depth[t];
  std::uint32_t a = s;
  std::uint32_t b = t;
  while (ds > dt) {
    best = std::min(best, cut_value[a]);
    a = parent[a];
    --ds;
  }
  while (dt > ds) {
    best = std::min(best, cut_value[b]);
    b = parent[b];
    --dt;
  }
  while (a != b) {
    if (parent[a] == a && parent[b] == b) return 0;  // different components
    best = std::min(best, cut_value[a]);
    best = std::min(best, cut_value[b]);
    a = parent[a];
    b = parent[b];
  }
  return best == INT64_MAX ? 0 : best;
}

void GomoryHuTree::cut_side_into(std::uint32_t v,
                                 std::vector<std::uint32_t>& out) const {
  out.clear();
  // Iterative subtree walk on the children CSR: out doubles as the stack —
  // entries before `head` are emitted, entries at/after it are pending.
  out.push_back(v);
  std::size_t head = 0;
  while (head < out.size()) {
    const std::uint32_t x = out[head++];
    for (std::uint32_t c = child_off[x]; c < child_off[x + 1]; ++c) {
      out.push_back(child_list[c]);
    }
  }
}

std::vector<std::uint32_t> GomoryHuTree::cut_side(std::uint32_t v) const {
  std::vector<std::uint32_t> side;
  cut_side_into(v, side);
  return side;
}

namespace {

inline bool row_bit(const std::uint64_t* row, std::uint32_t v) noexcept {
  return (row[v >> 6] >> (v & 63u)) & 1u;
}

void record_row(std::uint64_t* row, std::size_t words,
                const std::vector<char>& side, std::size_t n) {
  std::fill(row, row + words, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (side[v]) row[v >> 6] |= std::uint64_t{1} << (v & 63u);
  }
}

/// Gusfield's loop on the arena. When `record` is non-null, every step's
/// cut side is packed into the stamp's bit rows so a later contraction can
/// replay the build incrementally.
void gusfield_build(FlowArena& net, const std::vector<char>* alive,
                    GomoryHuTree& tree, GomoryHuStamp* record) {
  const std::size_t n = net.num_vertices();
  tree.cut_value.assign(n, 0);
  tree.parent.resize(n);
  tree.root = 0;
  std::uint64_t* rows = nullptr;
  std::size_t words = 0;
  if (record != nullptr) {
    words = (n + 63) / 64;
    record->row_words = words;
    record->rows.assign(n * words, 0);
    record->has_row.assign(n, 0);
    rows = record->rows.data();
  }
  auto is_alive = [alive](std::uint32_t v) {
    return alive == nullptr || (*alive)[v] != 0;
  };
  std::uint32_t root = 0;
  while (root < n && !is_alive(root)) ++root;
  if (root >= n) {  // nothing alive: forest of singletons
    for (std::uint32_t v = 0; v < n; ++v) tree.parent[v] = v;
    tree.finalize();
    return;
  }
  tree.root = root;
  for (std::uint32_t v = 0; v < n; ++v) {
    tree.parent[v] = is_alive(v) ? root : v;
  }
  // Gusfield: for each i, flow to the current parent; re-parent later
  // siblings that fall on i's side of the cut.
  std::vector<char> side;
  for (std::uint32_t i = root + 1; i < n; ++i) {
    if (!is_alive(i)) continue;
    const std::uint32_t p = tree.parent[i];
    tree.cut_value[i] = net.max_flow(i, p);
    net.min_cut_side(i, side);
    if (record != nullptr) {
      record_row(rows + i * words, words, side, n);
      record->has_row[i] = 1;
    }
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (tree.parent[j] == p && side[j] && is_alive(j)) tree.parent[j] = i;
    }
  }
  tree.finalize();
}

void restamp(FlowArena& net, const std::vector<char>* alive,
             GomoryHuStamp& stamp) {
  stamp.net_version = net.version();
  if (alive != nullptr) {
    stamp.alive = *alive;
  } else {
    stamp.alive.clear();
  }
  stamp.valid = true;
}

}  // namespace

void gomory_hu_from_arena(FlowArena& net, const std::vector<char>* alive,
                          GomoryHuTree& tree) {
  gusfield_build(net, alive, tree, nullptr);
}

GomoryHuTree gomory_hu_from_arena(FlowArena& net,
                                  const std::vector<char>* alive) {
  GomoryHuTree tree;
  gomory_hu_from_arena(net, alive, tree);
  return tree;
}

bool gomory_hu_from_arena_cached(FlowArena& net,
                                 const std::vector<char>* alive,
                                 GomoryHuTree& tree, GomoryHuStamp& stamp) {
  const bool alive_matches =
      alive == nullptr ? stamp.alive.empty() : stamp.alive == *alive;
  if (stamp.valid && stamp.net_version == net.version() && alive_matches &&
      tree.size() == net.num_vertices()) {
    ++stamp.tree_reuses;
    return false;  // tree already describes this exact network
  }
  gusfield_build(net, alive, tree, &stamp);
  ++stamp.full_builds;
  restamp(net, alive, stamp);
  return true;
}

std::size_t gomory_hu_contract_update(FlowArena& net,
                                      const std::vector<char>* alive,
                                      const GomoryHuContraction& delta,
                                      GomoryHuTree& tree,
                                      GomoryHuStamp& stamp) {
  const std::size_t n = net.num_vertices();
  const auto full = [&]() {
    const std::size_t before = net.flows_run();
    gusfield_build(net, alive, tree, &stamp);
    ++stamp.full_builds;
    restamp(net, alive, stamp);
    return net.flows_run() - before;
  };
  if (!stamp.valid || !delta.exact_compensation || tree.size() != n ||
      stamp.has_row.size() != n) {
    return full();
  }
  const auto is_alive = [alive](std::uint32_t v) {
    return alive == nullptr || (*alive)[v] != 0;
  };
  std::uint32_t root = 0;
  while (root < n && !is_alive(root)) ++root;
  if (root >= n || root != tree.root) {
    // Nothing left, or the stamped root was contracted away: every
    // memoized step is keyed to the old root's parent chain.
    return full();
  }

  // Memoized Gusfield replay. The stamped parents/values are the previous
  // build's step outcomes: parent[i] is fixed once step i runs, so the old
  // final parents ARE the old per-step parents. A step is reused — no
  // max-flow — when its certificate holds: same step parent as before, and
  // every newly-dead vertex on the stamped row's special-node side (the
  // exact-compensation lemma then keeps the row a minimum cut of the
  // contracted network, with the same value). Rows are read and rewritten
  // strictly per step i, so the stamp mutates in place.
  std::vector<std::uint32_t> old_parent(tree.parent);
  std::vector<std::int64_t> old_value(tree.cut_value);
  const std::size_t words = stamp.row_words;
  for (std::uint32_t v = 0; v < n; ++v) {
    tree.parent[v] = is_alive(v) ? root : v;
  }
  tree.cut_value.assign(n, 0);
  std::size_t flows = 0;
  std::vector<char> side;
  for (std::uint32_t i = root + 1; i < n; ++i) {
    if (!is_alive(i)) continue;
    const std::uint32_t p = tree.parent[i];
    std::uint64_t* row = stamp.rows.data() + i * words;
    bool reuse = stamp.has_row[i] != 0 && old_parent[i] == p;
    if (reuse) {
      const bool s_side = row_bit(row, delta.s_node);
      for (const std::uint32_t d : delta.contracted) {
        if (row_bit(row, d) != s_side) {
          reuse = false;
          break;
        }
      }
    }
    if (reuse) {
      tree.cut_value[i] = old_value[i];
      ++stamp.flows_saved;
    } else {
      tree.cut_value[i] = net.max_flow(i, p);
      net.min_cut_side(i, side);
      record_row(row, words, side, n);
      stamp.has_row[i] = 1;
      ++flows;
    }
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (tree.parent[j] == p && is_alive(j) && row_bit(row, j)) {
        tree.parent[j] = i;
      }
    }
  }
  tree.finalize();
  ++stamp.incremental_updates;
  restamp(net, alive, stamp);
  return flows;
}

GomoryHuTree gomory_hu(std::size_t n, const std::vector<Edge>& edges,
                       const std::vector<std::int64_t>& cap) {
  if (edges.size() != cap.size()) {
    throw std::invalid_argument("gomory_hu: cap size mismatch");
  }
  if (n <= 1) {
    GomoryHuTree tree;
    tree.parent.assign(n, 0);
    tree.cut_value.assign(n, 0);
    tree.finalize();
    return tree;
  }
  // Aggregate parallel edges: sort-and-merge over a flat buffer (no node
  // allocations, unlike the old std::map path).
  std::vector<ArenaEdge> agg;
  agg.reserve(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (cap[e] <= 0) continue;
    const auto key = std::minmax(edges[e].u, edges[e].v);
    agg.push_back(ArenaEdge{key.first, key.second, cap[e]});
  }
  aggregate_parallel_edges(agg);

  FlowArena net;
  net.build(n, agg);
  return gomory_hu_from_arena(net);
}

}  // namespace dp
