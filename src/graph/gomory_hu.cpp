#include "graph/gomory_hu.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "graph/dinic.hpp"

namespace dp {

std::int64_t GomoryHuTree::min_cut(std::uint32_t s, std::uint32_t t) const {
  // Lift both endpoints to the root, tracking the path minimum. Depth is at
  // most n, so walk via depth computation.
  const std::size_t n = parent.size();
  std::vector<int> depth(n, -1);
  auto depth_of = [&](std::uint32_t v) {
    int d = 0;
    std::uint32_t x = v;
    while (x != 0 && parent[x] != x) {
      ++d;
      x = parent[x];
      if (d > static_cast<int>(n)) break;  // defensive
    }
    return d;
  };
  int ds = depth_of(s);
  int dt = depth_of(t);
  std::int64_t best = INT64_MAX;
  std::uint32_t a = s, b = t;
  while (ds > dt) {
    best = std::min(best, cut_value[a]);
    a = parent[a];
    --ds;
  }
  while (dt > ds) {
    best = std::min(best, cut_value[b]);
    b = parent[b];
    --dt;
  }
  while (a != b) {
    best = std::min(best, cut_value[a]);
    best = std::min(best, cut_value[b]);
    a = parent[a];
    b = parent[b];
  }
  return best == INT64_MAX ? 0 : best;
}

std::vector<std::uint32_t> GomoryHuTree::cut_side(std::uint32_t v) const {
  const std::size_t n = parent.size();
  // Children lists.
  std::vector<std::vector<std::uint32_t>> children(n);
  for (std::uint32_t x = 1; x < n; ++x) children[parent[x]].push_back(x);
  std::vector<std::uint32_t> side;
  std::vector<std::uint32_t> stack{v};
  while (!stack.empty()) {
    const std::uint32_t x = stack.back();
    stack.pop_back();
    side.push_back(x);
    for (std::uint32_t c : children[x]) stack.push_back(c);
  }
  return side;
}

GomoryHuTree gomory_hu(std::size_t n, const std::vector<Edge>& edges,
                       const std::vector<std::int64_t>& cap) {
  if (edges.size() != cap.size()) {
    throw std::invalid_argument("gomory_hu: cap size mismatch");
  }
  // Aggregate parallel edges.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::int64_t> agg;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (cap[e] <= 0) continue;
    auto key = std::minmax(edges[e].u, edges[e].v);
    agg[{key.first, key.second}] += cap[e];
  }
  GomoryHuTree tree;
  tree.parent.assign(n, 0);
  tree.cut_value.assign(n, 0);
  if (n <= 1) return tree;

  Dinic dinic(n);
  for (const auto& [key, c] : agg) {
    dinic.add_edge(key.first, key.second, c);
  }
  // Gusfield: for each i, flow to current parent; re-parent siblings that
  // fall on i's side of the cut.
  for (std::uint32_t i = 1; i < n; ++i) {
    const std::uint32_t p = tree.parent[i];
    const std::int64_t f = dinic.max_flow(i, p);
    tree.cut_value[i] = f;
    const std::vector<char> side = dinic.min_cut_side(i);
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (tree.parent[j] == p && side[j]) tree.parent[j] = i;
    }
  }
  return tree;
}

}  // namespace dp
