#include "graph/gomory_hu.hpp"

#include <algorithm>
#include <stdexcept>

namespace dp {

void GomoryHuTree::finalize() {
  const std::size_t n = parent.size();
  depth.assign(n, 0);
  // Gusfield invariant: parent[v] is either v's root or an index < v, so a
  // single increasing pass resolves every depth.
  for (std::uint32_t v = 0; v < n; ++v) {
    if (parent[v] != v) depth[v] = depth[parent[v]] + 1;
  }
  child_off.assign(n + 1, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (parent[v] != v) ++child_off[parent[v] + 1];
  }
  for (std::size_t v = 0; v < n; ++v) child_off[v + 1] += child_off[v];
  child_list.resize(n == 0 ? 0 : child_off[n]);
  std::vector<std::uint32_t> cursor(child_off.begin(), child_off.end() - 1);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (parent[v] != v) child_list[cursor[parent[v]]++] = v;
  }
}

std::int64_t GomoryHuTree::min_cut(std::uint32_t s, std::uint32_t t) const {
  std::int64_t best = INT64_MAX;
  std::int32_t ds = depth[s];
  std::int32_t dt = depth[t];
  std::uint32_t a = s;
  std::uint32_t b = t;
  while (ds > dt) {
    best = std::min(best, cut_value[a]);
    a = parent[a];
    --ds;
  }
  while (dt > ds) {
    best = std::min(best, cut_value[b]);
    b = parent[b];
    --dt;
  }
  while (a != b) {
    if (parent[a] == a && parent[b] == b) return 0;  // different components
    best = std::min(best, cut_value[a]);
    best = std::min(best, cut_value[b]);
    a = parent[a];
    b = parent[b];
  }
  return best == INT64_MAX ? 0 : best;
}

void GomoryHuTree::cut_side_into(std::uint32_t v,
                                 std::vector<std::uint32_t>& out) const {
  out.clear();
  // Iterative subtree walk on the children CSR: out doubles as the stack —
  // entries before `head` are emitted, entries at/after it are pending.
  out.push_back(v);
  std::size_t head = 0;
  while (head < out.size()) {
    const std::uint32_t x = out[head++];
    for (std::uint32_t c = child_off[x]; c < child_off[x + 1]; ++c) {
      out.push_back(child_list[c]);
    }
  }
}

std::vector<std::uint32_t> GomoryHuTree::cut_side(std::uint32_t v) const {
  std::vector<std::uint32_t> side;
  cut_side_into(v, side);
  return side;
}

void gomory_hu_from_arena(FlowArena& net, const std::vector<char>* alive,
                          GomoryHuTree& tree) {
  const std::size_t n = net.num_vertices();
  tree.cut_value.assign(n, 0);
  tree.parent.resize(n);
  tree.root = 0;
  auto is_alive = [alive](std::uint32_t v) {
    return alive == nullptr || (*alive)[v] != 0;
  };
  std::uint32_t root = 0;
  while (root < n && !is_alive(root)) ++root;
  if (root >= n) {  // nothing alive: forest of singletons
    for (std::uint32_t v = 0; v < n; ++v) tree.parent[v] = v;
    tree.finalize();
    return;
  }
  tree.root = root;
  for (std::uint32_t v = 0; v < n; ++v) {
    tree.parent[v] = is_alive(v) ? root : v;
  }
  // Gusfield: for each i, flow to the current parent; re-parent later
  // siblings that fall on i's side of the cut.
  std::vector<char> side;
  for (std::uint32_t i = root + 1; i < n; ++i) {
    if (!is_alive(i)) continue;
    const std::uint32_t p = tree.parent[i];
    tree.cut_value[i] = net.max_flow(i, p);
    net.min_cut_side(i, side);
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (tree.parent[j] == p && side[j] && is_alive(j)) tree.parent[j] = i;
    }
  }
  tree.finalize();
}

GomoryHuTree gomory_hu_from_arena(FlowArena& net,
                                  const std::vector<char>* alive) {
  GomoryHuTree tree;
  gomory_hu_from_arena(net, alive, tree);
  return tree;
}

bool gomory_hu_from_arena_cached(FlowArena& net,
                                 const std::vector<char>* alive,
                                 GomoryHuTree& tree, GomoryHuStamp& stamp) {
  const bool alive_matches =
      alive == nullptr ? stamp.alive.empty() : stamp.alive == *alive;
  if (stamp.valid && stamp.net_version == net.version() && alive_matches &&
      tree.size() == net.num_vertices()) {
    return false;  // tree already describes this exact network
  }
  gomory_hu_from_arena(net, alive, tree);
  stamp.net_version = net.version();
  if (alive != nullptr) {
    stamp.alive = *alive;
  } else {
    stamp.alive.clear();
  }
  stamp.valid = true;
  return true;
}

GomoryHuTree gomory_hu(std::size_t n, const std::vector<Edge>& edges,
                       const std::vector<std::int64_t>& cap) {
  if (edges.size() != cap.size()) {
    throw std::invalid_argument("gomory_hu: cap size mismatch");
  }
  if (n <= 1) {
    GomoryHuTree tree;
    tree.parent.assign(n, 0);
    tree.cut_value.assign(n, 0);
    tree.finalize();
    return tree;
  }
  // Aggregate parallel edges: sort-and-merge over a flat buffer (no node
  // allocations, unlike the old std::map path).
  std::vector<ArenaEdge> agg;
  agg.reserve(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (cap[e] <= 0) continue;
    const auto key = std::minmax(edges[e].u, edges[e].v);
    agg.push_back(ArenaEdge{key.first, key.second, cap[e]});
  }
  aggregate_parallel_edges(agg);

  FlowArena net;
  net.build(n, agg);
  return gomory_hu_from_arena(net);
}

}  // namespace dp
