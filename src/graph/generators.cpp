#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "stream/edge_file.hpp"
#include "util/hash.hpp"

namespace dp::gen {

namespace {

/// Insert m distinct edges produced by `propose` into g.
template <typename Propose>
void fill_distinct_edges(Graph& g, std::size_t m, Propose&& propose) {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  std::size_t added = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 100 * m + 1000;
  while (added < m && attempts < max_attempts) {
    ++attempts;
    auto [u, v] = propose();
    if (u == v) continue;
    const std::uint64_t key = edge_key(u, v);
    if (!seen.insert(key).second) continue;
    g.add_edge(u, v, 1.0);
    ++added;
  }
}

}  // namespace

Graph gnm(std::size_t n, std::size_t m, std::uint64_t seed) {
  const std::size_t max_m = n < 2 ? 0 : n * (n - 1) / 2;
  if (m > max_m) {
    throw std::invalid_argument("gnm: too many edges requested");
  }
  Graph g(n);
  Rng rng(seed);
  fill_distinct_edges(g, m, [&] {
    // Sequenced draws: u strictly before v. A pair-constructor call would
    // leave the order unspecified, and gnm_to_file must replay this exact
    // proposal sequence to produce a byte-identical file.
    const auto u = static_cast<Vertex>(rng.uniform(n));
    const auto v = static_cast<Vertex>(rng.uniform(n));
    return std::pair<Vertex, Vertex>(u, v);
  });
  return g;
}

std::size_t gnm_to_file(const std::string& path, std::size_t n, std::size_t m,
                        std::uint64_t seed, double w_lo, double w_hi,
                        std::uint64_t weight_seed, std::size_t block_edges) {
  const std::size_t max_m = n < 2 ? 0 : n * (n - 1) / 2;
  if (m > max_m) {
    throw std::invalid_argument("gnm_to_file: too many edges requested");
  }
  stream::EdgeFileWriter writer(
      path, n, block_edges == 0 ? stream::kDefaultBlockEdges : block_edges);
  // Two independent Rngs replay gnm()'s proposal sequence and
  // weight_uniform()'s per-edge draw sequence; interleaving them is safe
  // because the originals never share a generator. Acceptance order ==
  // edge-id order, exactly as fill_distinct_edges builds the Graph.
  Rng rng(seed);
  Rng weight_rng(weight_seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  std::size_t added = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 100 * m + 1000;
  while (added < m && attempts < max_attempts) {
    ++attempts;
    const auto u = static_cast<Vertex>(rng.uniform(n));
    const auto v = static_cast<Vertex>(rng.uniform(n));
    if (u == v) continue;
    if (!seen.insert(edge_key(u, v)).second) continue;
    writer.add_edge(u, v, weight_rng.uniform_real(w_lo, w_hi));
    ++added;
  }
  writer.close();
  return added;
}

Graph gnp(std::size_t n, double p, std::uint64_t seed) {
  Graph g(n);
  if (p <= 0 || n < 2) return g;
  if (p >= 1) return complete(n);
  Rng rng(seed);
  // Geometric skipping over the (n choose 2) potential edges.
  const double log_q = std::log1p(-p);
  std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  std::uint64_t idx = 0;
  for (;;) {
    const double r = rng.uniform_real();
    const std::uint64_t skip =
        static_cast<std::uint64_t>(std::floor(std::log1p(-r) / log_q));
    idx += skip;
    if (idx >= total) break;
    // Decode linear index -> (u, v) with u < v.
    std::uint64_t u = 0;
    std::uint64_t remaining = idx;
    std::uint64_t row = n - 1;
    while (remaining >= row) {
      remaining -= row;
      ++u;
      --row;
    }
    const std::uint64_t v = u + 1 + remaining;
    g.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v), 1.0);
    ++idx;
  }
  return g;
}

Graph bipartite(std::size_t n_left, std::size_t n_right, std::size_t m,
                std::uint64_t seed) {
  const std::size_t max_m = n_left * n_right;
  if (m > max_m) {
    throw std::invalid_argument("bipartite: too many edges requested");
  }
  Graph g(n_left + n_right);
  Rng rng(seed);
  fill_distinct_edges(g, m, [&] {
    return std::pair<Vertex, Vertex>(
        static_cast<Vertex>(rng.uniform(n_left)),
        static_cast<Vertex>(n_left + rng.uniform(n_right)));
  });
  return g;
}

Graph power_law(std::size_t n, double alpha, double avg_deg,
                std::uint64_t seed) {
  // Chung-Lu: expected degree sequence d_i proportional to i^{-1/(alpha-1)},
  // scaled to the requested average; edge (i,j) present w.p. d_i d_j / S.
  if (n < 2) return Graph(n);
  std::vector<double> w(n);
  const double beta = 1.0 / (alpha - 1.0);
  double sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = std::pow(static_cast<double>(i + 1), -beta);
    sum += w[i];
  }
  const double scale = avg_deg * static_cast<double>(n) / sum;
  for (double& x : w) x *= scale;
  double total = 0;
  for (double x : w) total += x;

  Graph g(n);
  Rng rng(seed);
  // Weights are sorted decreasing; use the standard efficient Chung-Lu
  // sampler: for each i, walk j > i with geometric skips under the bound
  // p_ij <= w_i w_j / total, then accept with the exact ratio.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    double p_bound = std::min(1.0, w[i] * w[i + 1] / total);
    if (p_bound <= 0) continue;
    std::size_t j = i + 1;
    while (j < n) {
      if (p_bound < 1.0) {
        const double r = rng.uniform_real();
        const double skip = std::floor(std::log1p(-r) / std::log1p(-p_bound));
        j += static_cast<std::size_t>(skip);
      }
      if (j >= n) break;
      const double p_exact = std::min(1.0, w[i] * w[j] / total);
      if (rng.uniform_real() < p_exact / p_bound) {
        g.add_edge(static_cast<Vertex>(i), static_cast<Vertex>(j), 1.0);
      }
      p_bound = p_exact;  // weights decrease in j, so the bound stays valid
      ++j;
    }
  }
  return g;
}

Graph geometric(std::size_t n, double radius, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform_real();
    y[i] = rng.uniform_real();
  }
  // Grid bucketing for near-linear construction.
  const double r2 = radius * radius;
  const std::size_t cells =
      std::max<std::size_t>(1, static_cast<std::size_t>(1.0 / radius));
  std::vector<std::vector<Vertex>> bucket(cells * cells);
  auto cell_of = [&](double c) {
    auto idx = static_cast<std::size_t>(c * static_cast<double>(cells));
    return std::min(idx, cells - 1);
  };
  for (std::size_t i = 0; i < n; ++i) {
    bucket[cell_of(x[i]) * cells + cell_of(y[i])].push_back(
        static_cast<Vertex>(i));
  }
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cx = cell_of(x[i]);
    const std::size_t cy = cell_of(y[i]);
    for (std::size_t dx = 0; dx < 3; ++dx) {
      for (std::size_t dy = 0; dy < 3; ++dy) {
        if (cx + dx < 1 || cy + dy < 1) continue;
        const std::size_t nx = cx + dx - 1;
        const std::size_t ny = cy + dy - 1;
        if (nx >= cells || ny >= cells) continue;
        for (Vertex j : bucket[nx * cells + ny]) {
          if (j <= i) continue;
          const double ddx = x[i] - x[j];
          const double ddy = y[i] - y[j];
          if (ddx * ddx + ddy * ddy <= r2) {
            g.add_edge(static_cast<Vertex>(i), j, 1.0);
          }
        }
      }
    }
  }
  return g;
}

Graph grid(std::size_t rows, std::size_t cols) {
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<Vertex>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1), 1.0);
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c), 1.0);
    }
  }
  return g;
}

Graph complete(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      g.add_edge(static_cast<Vertex>(i), static_cast<Vertex>(j), 1.0);
    }
  }
  return g;
}

Graph triangle_rich(std::size_t k, std::size_t extra, std::uint64_t seed) {
  const std::size_t n = 3 * k;
  Graph g(n);
  for (std::size_t t = 0; t < k; ++t) {
    const Vertex a = static_cast<Vertex>(3 * t);
    g.add_edge(a, a + 1, 1.0);
    g.add_edge(a + 1, a + 2, 1.0);
    g.add_edge(a, a + 2, 1.0);
  }
  if (extra > 0 && n >= 2) {
    Rng rng(seed);
    std::unordered_set<std::uint64_t> seen;
    for (const Edge& e : g.edges()) seen.insert(edge_key(e.u, e.v));
    std::size_t added = 0;
    std::size_t attempts = 0;
    while (added < extra && attempts < 100 * extra + 1000) {
      ++attempts;
      const auto u = static_cast<Vertex>(rng.uniform(n));
      const auto v = static_cast<Vertex>(rng.uniform(n));
      if (u == v) continue;
      if (!seen.insert(edge_key(u, v)).second) continue;
      g.add_edge(u, v, 1.0);
      ++added;
    }
  }
  return g;
}

Graph weighted_triangle_example(double apex_w) {
  // Vertices: 0,1,2 form the unit triangle; 3 hangs off apex 0 with a heavy
  // edge. With eps small the bipartite relaxation assigns 1/2 to each
  // triangle edge (value 3/2 there) which the odd-set constraint forbids.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(0, 3, apex_w);
  return g;
}

Graph greedy_trap_path(std::size_t k, double delta) {
  // k disjoint P4 gadgets a-b-c-d with weights 1, 1+delta, 1. Greedy takes
  // each middle edge (1+delta) and blocks both unit edges; the optimum takes
  // the two unit edges per gadget.
  Graph g(4 * k);
  for (std::size_t t = 0; t < k; ++t) {
    const auto a = static_cast<Vertex>(4 * t);
    g.add_edge(a, a + 1, 1.0);
    g.add_edge(a + 1, a + 2, 1.0 + delta);
    g.add_edge(a + 2, a + 3, 1.0);
  }
  return g;
}

void weight_unit(Graph& g) {
  Graph replacement(g.num_vertices());
  for (const Edge& e : g.edges()) replacement.add_edge(e.u, e.v, 1.0);
  g = std::move(replacement);
}

void weight_uniform(Graph& g, double lo, double hi, std::uint64_t seed) {
  Rng rng(seed);
  Graph replacement(g.num_vertices());
  for (const Edge& e : g.edges()) {
    replacement.add_edge(e.u, e.v, rng.uniform_real(lo, hi));
  }
  g = std::move(replacement);
}

void weight_geometric_classes(Graph& g, double eps, int levels,
                              std::uint64_t seed) {
  Rng rng(seed);
  Graph replacement(g.num_vertices());
  for (const Edge& e : g.edges()) {
    const int k = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(
        levels < 1 ? 1 : levels)));
    replacement.add_edge(e.u, e.v, std::pow(1.0 + eps, k));
  }
  g = std::move(replacement);
}

void weight_zipf(Graph& g, double theta, std::uint64_t seed) {
  Rng rng(seed);
  Graph replacement(g.num_vertices());
  for (const Edge& e : g.edges()) {
    const double u = 1.0 - rng.uniform_real();  // (0, 1]
    replacement.add_edge(e.u, e.v, std::pow(u, -theta));
  }
  g = std::move(replacement);
}

Capacities random_capacities(std::size_t n, std::int64_t lo, std::int64_t hi,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> b(n);
  for (auto& x : b) x = rng.uniform_int(lo, hi);
  return Capacities(std::move(b));
}

}  // namespace dp::gen
