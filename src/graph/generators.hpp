#pragma once
// Graph generators for the experiment workloads.
//
// Every generator is deterministic in its seed. Simple graphs only (no self
// loops, no parallel edges). Weight assignment is orthogonal: generate a
// topology, then apply one of the weighters.

#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dp::gen {

/// Erdos-Renyi G(n, m): m distinct uniform edges.
Graph gnm(std::size_t n, std::size_t m, std::uint64_t seed);

/// Stream G(n, m) with uniform [w_lo, w_hi] weights straight to a binary
/// edge file (stream/edge_file DPEF format) WITHOUT materializing a Graph:
/// benches use this to produce inputs larger than the solver's memory
/// budget. Draws the exact same RNG sequences as gnm(n, m, seed) followed
/// by weight_uniform(g, w_lo, w_hi, weight_seed), so the resulting file is
/// byte-identical to write_edge_file() of that graph. Transient state is
/// one 64-bit dedup key per edge plus one buffered block — never the edge
/// records themselves. block_edges 0 means the format default. Returns the
/// number of edges written.
std::size_t gnm_to_file(const std::string& path, std::size_t n, std::size_t m,
                        std::uint64_t seed, double w_lo, double w_hi,
                        std::uint64_t weight_seed,
                        std::size_t block_edges = 0);

/// Erdos-Renyi G(n, p) via geometric skipping.
Graph gnp(std::size_t n, double p, std::uint64_t seed);

/// Random bipartite graph: sides of size n_left / n_right, m distinct edges.
Graph bipartite(std::size_t n_left, std::size_t n_right, std::size_t m,
                std::uint64_t seed);

/// Chung-Lu power-law graph with exponent `alpha` (typically 2..3) and
/// target average degree `avg_deg`.
Graph power_law(std::size_t n, double alpha, double avg_deg,
                std::uint64_t seed);

/// Random geometric graph on the unit square with connection radius r.
Graph geometric(std::size_t n, double radius, std::uint64_t seed);

/// 2D grid graph (rows x cols), 4-neighborhood.
Graph grid(std::size_t rows, std::size_t cols);

/// Complete graph K_n.
Graph complete(std::size_t n);

/// Union of `k` disjoint triangles plus `extra` random cross edges; odd-set
/// constraints are essential here, which stresses the non-bipartite part of
/// the algorithm.
Graph triangle_rich(std::size_t k, std::size_t extra, std::uint64_t seed);

/// The paper's Section 1 example: a triangle with unit-weight edges and a
/// pendant apex edge of small weight `apex_w` (paper uses 10*eps). The
/// bipartite relaxation puts 1/2 on each triangle edge (value 3/2) while
/// the integral optimum is 1 + apex_w — an overshoot of 1/2 - apex_w that
/// only odd-set constraints remove.
Graph weighted_triangle_example(double apex_w);

/// Hard instance for greedy: k disjoint paths of 3 edges with weights
/// 1, 1+delta, 1. Greedy takes each slightly-heavier middle edge and blocks
/// both unit edges, landing at (1+delta)/2 of the optimum.
Graph greedy_trap_path(std::size_t k, double delta);

// ---- Weighters ------------------------------------------------------------

/// Assign every edge weight 1 (cardinality matching).
void weight_unit(Graph& g);

/// Uniform random weights in [lo, hi].
void weight_uniform(Graph& g, double lo, double hi, std::uint64_t seed);

/// Exponentially distributed weight classes: weight (1+eps)^k with k uniform
/// in [0, levels); matches the paper's discretization exactly.
void weight_geometric_classes(Graph& g, double eps, int levels,
                              std::uint64_t seed);

/// Zipf-like heavy-tail weights: w = 1 / u^{theta} for u uniform in (0, 1].
void weight_zipf(Graph& g, double theta, std::uint64_t seed);

// ---- Capacities -----------------------------------------------------------

/// Uniform random capacities b_i in [lo, hi].
Capacities random_capacities(std::size_t n, std::int64_t lo, std::int64_t hi,
                             std::uint64_t seed);

}  // namespace dp::gen
