#include "graph/dinic.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace dp {

Dinic::Dinic(std::size_t n) : head_(n, kNil), level_(n), iter_(n) {}

std::size_t Dinic::add_arc(std::uint32_t u, std::uint32_t v, Cap cap,
                           Cap back_cap) {
  const std::size_t idx = arcs_.size();
  arcs_.push_back(Arc{v, cap, head_[u]});
  head_[u] = static_cast<std::uint32_t>(idx);
  arcs_.push_back(Arc{u, back_cap, head_[v]});
  head_[v] = static_cast<std::uint32_t>(idx + 1);
  initial_cap_.push_back(cap);
  initial_cap_.push_back(back_cap);
  return idx;
}

bool Dinic::bfs(std::uint32_t s, std::uint32_t t) {
  std::fill(level_.begin(), level_.end(), -1);
  std::queue<std::uint32_t> q;
  level_[s] = 0;
  q.push(s);
  while (!q.empty()) {
    const std::uint32_t u = q.front();
    q.pop();
    for (std::uint32_t a = head_[u]; a != kNil; a = arcs_[a].next) {
      const Arc& arc = arcs_[a];
      if (arc.cap > 0 && level_[arc.to] < 0) {
        level_[arc.to] = level_[u] + 1;
        q.push(arc.to);
      }
    }
  }
  return level_[t] >= 0;
}

Dinic::Cap Dinic::dfs(std::uint32_t u, std::uint32_t t, Cap limit) {
  if (u == t) return limit;
  Cap pushed = 0;
  for (std::uint32_t& a = iter_[u]; a != kNil; a = arcs_[a].next) {
    Arc& arc = arcs_[a];
    if (arc.cap <= 0 || level_[arc.to] != level_[u] + 1) continue;
    const Cap f = dfs(arc.to, t, std::min(limit - pushed, arc.cap));
    if (f > 0) {
      arc.cap -= f;
      arcs_[a ^ 1].cap += f;
      pushed += f;
      if (pushed == limit) return pushed;
    }
  }
  level_[u] = -1;  // dead end
  return pushed;
}

Dinic::Cap Dinic::max_flow(std::uint32_t s, std::uint32_t t) {
  // Reset all capacities so the solver is reusable across (s, t) pairs.
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    arcs_[i].cap = initial_cap_[i];
  }
  Cap flow = 0;
  while (bfs(s, t)) {
    iter_ = head_;
    Cap f;
    while ((f = dfs(s, t, std::numeric_limits<Cap>::max())) > 0) {
      flow += f;
    }
  }
  return flow;
}

std::vector<char> Dinic::min_cut_side(std::uint32_t s) const {
  std::vector<char> side(head_.size(), 0);
  std::queue<std::uint32_t> q;
  side[s] = 1;
  q.push(s);
  while (!q.empty()) {
    const std::uint32_t u = q.front();
    q.pop();
    for (std::uint32_t a = head_[u]; a != kNil; a = arcs_[a].next) {
      const Arc& arc = arcs_[a];
      if (arc.cap > 0 && !side[arc.to]) {
        side[arc.to] = 1;
        q.push(arc.to);
      }
    }
  }
  return side;
}

}  // namespace dp
