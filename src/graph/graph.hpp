#pragma once
// Core graph types: weighted undirected edge lists with an optional CSR
// adjacency view, plus per-vertex capacities b_i for b-matching.
//
// The library's streaming / sketching substrates consume the edge list
// (read-only, sequential); combinatorial algorithms (matching, flows) build
// the CSR view once and then work in-memory.

#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace dp {

using Vertex = std::uint32_t;
using EdgeId = std::uint32_t;

/// Undirected weighted edge. Invariant maintained by Graph: u != v.
/// Parallel edges are allowed at the container level (some substrates
/// aggregate them); generators emit simple graphs.
struct Edge {
  Vertex u = 0;
  Vertex v = 0;
  double w = 1.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Immutable-after-build undirected graph.
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t n) : n_(n) {}
  Graph(std::size_t n, std::vector<Edge> edges);

  std::size_t num_vertices() const noexcept { return n_; }
  std::size_t num_edges() const noexcept { return edges_.size(); }
  const std::vector<Edge>& edges() const noexcept { return edges_; }
  const Edge& edge(EdgeId e) const noexcept { return edges_[e]; }

  /// Append an edge; invalidates the CSR view. Self loops are rejected
  /// (returns false) because no matching LP has them.
  bool add_edge(Vertex u, Vertex v, double w = 1.0);

  /// Total edge weight.
  double total_weight() const noexcept;

  /// Largest edge weight (0 for empty graphs).
  double max_weight() const noexcept;

  /// (neighbor, edge id) pairs incident to `u`; builds CSR lazily. The
  /// lazy build is mutex-guarded and the validity flag has acquire/release
  /// ordering, so concurrent readers (ThreadPool sweeps) are safe — but
  /// call build_adjacency() explicitly before a parallel section to avoid
  /// serializing the first reads on the build lock. add_edge() must not
  /// run concurrently with readers.
  struct Incidence {
    Vertex neighbor;
    EdgeId edge;
  };
  std::span<const Incidence> neighbors(Vertex u) const;

  /// Degree of u (requires CSR; builds lazily).
  std::size_t degree(Vertex u) const { return neighbors(u).size(); }

  /// Force construction of the adjacency view; idempotent and safe to call
  /// from multiple threads. Call before handing the graph to parallel code.
  void build_adjacency() const;

  /// Subgraph induced by keeping edge ids where keep[e] is true. Vertex set
  /// is preserved (same n), so vertex ids remain stable.
  Graph edge_subgraph(const std::vector<char>& keep) const;

  /// Human-readable summary, e.g. "Graph(n=100, m=450, W=13.5)".
  std::string summary() const;

  // The atomic flag and build mutex are not copyable, so spell out the
  // value semantics: copies carry the edge list and any built CSR view.
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;
  ~Graph() = default;

 private:
  std::size_t n_ = 0;
  std::vector<Edge> edges_;

  // Lazily built CSR adjacency (mutable: logically const accessors).
  // adjacency_valid_ is written under adjacency_mutex_ with release order
  // and read with acquire order, so a reader that sees `true` also sees the
  // fully built offsets_/incidences_.
  mutable std::vector<std::size_t> offsets_;
  mutable std::vector<Incidence> incidences_;
  mutable std::atomic<bool> adjacency_valid_{false};
  mutable std::mutex adjacency_mutex_;
};

/// Per-vertex capacities for b-matching. For ordinary matching all b_i = 1.
class Capacities {
 public:
  Capacities() = default;
  /// Uniform capacities b for all n vertices.
  Capacities(std::size_t n, std::int64_t b) : b_(n, b) {}
  explicit Capacities(std::vector<std::int64_t> b) : b_(std::move(b)) {}

  std::int64_t operator[](Vertex v) const noexcept { return b_[v]; }
  std::int64_t& operator[](Vertex v) noexcept { return b_[v]; }
  std::size_t size() const noexcept { return b_.size(); }
  bool empty() const noexcept { return b_.empty(); }

  /// B = sum_i b_i (the paper's B; space grows with log B).
  std::int64_t total() const noexcept;

  /// ||U||_b = sum over vertices in U. U given as vertex list.
  std::int64_t weight_of(const std::vector<Vertex>& set) const noexcept;

  static Capacities unit(std::size_t n) { return Capacities(n, 1); }

 private:
  std::vector<std::int64_t> b_;
};

}  // namespace dp
