#pragma once
// Laminar families of vertex sets.
//
// Theorem 22 of the paper shows the b-matching dual always has an optimal
// solution whose support {U : z_U > 0} is laminar; Algorithm 7 consumes the
// sets in decreasing ||U||_b order. This container stores vertex sets,
// checks laminarity, and provides that ordering.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dp {

/// A family of vertex subsets with laminarity checking. Sets are stored
/// sorted by vertex id.
class LaminarFamily {
 public:
  /// Add a set (vertices need not be sorted; duplicates removed).
  /// Returns its index.
  std::size_t add(std::vector<Vertex> set);

  std::size_t size() const noexcept { return sets_.size(); }
  const std::vector<Vertex>& set(std::size_t i) const { return sets_[i]; }

  /// True if every pair of sets is nested or disjoint.
  bool is_laminar() const;

  /// True if all pairs of sets are disjoint (stronger than laminar).
  bool is_disjoint() const;

  /// Indices ordered by decreasing ||U||_b (ties by index).
  std::vector<std::size_t> order_by_decreasing_b(const Capacities& b) const;

  /// True if vertex v belongs to set i (binary search).
  bool contains(std::size_t i, Vertex v) const;

 private:
  std::vector<std::vector<Vertex>> sets_;
};

/// Relation of two sorted vertex sets: disjoint / a subset of b /
/// b subset of a / crossing.
enum class SetRelation { kDisjoint, kASubsetB, kBSubsetA, kEqual, kCrossing };

SetRelation classify_sets(const std::vector<Vertex>& a,
                          const std::vector<Vertex>& b);

}  // namespace dp
