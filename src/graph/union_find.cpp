#include "graph/union_find.hpp"

namespace dp {

void UnionFind::reset(std::size_t n) {
  parent_.resize(n);
  size_.assign(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    parent_[i] = static_cast<std::uint32_t>(i);
  }
  components_ = n;
}

std::uint32_t UnionFind::find(std::uint32_t x) noexcept {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::uint32_t a, std::uint32_t b) noexcept {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[a] < size_[b]) {
    std::uint32_t t = a;
    a = b;
    b = t;
  }
  parent_[b] = a;
  size_[a] += size_[b];
  --components_;
  return true;
}

}  // namespace dp
