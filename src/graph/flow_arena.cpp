#include "graph/flow_arena.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

namespace dp {

void aggregate_parallel_edges(std::vector<ArenaEdge>& edges) {
  std::sort(edges.begin(), edges.end(),
            [](const ArenaEdge& a, const ArenaEdge& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  std::size_t out = 0;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (out > 0 && edges[out - 1].u == edges[e].u &&
        edges[out - 1].v == edges[e].v) {
      edges[out - 1].cap += edges[e].cap;
    } else {
      edges[out++] = edges[e];
    }
  }
  edges.resize(out);
}

namespace {

bool same_edges(const std::vector<ArenaEdge>& a,
                const std::vector<ArenaEdge>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].u != b[i].u || a[i].v != b[i].v || a[i].cap != b[i].cap) {
      return false;
    }
  }
  return true;
}

}  // namespace

void FlowArena::build(std::size_t n, const std::vector<ArenaEdge>& edges) {
  // No-op build: same inputs as the last build and no base mutation since
  // — the arena already holds exactly this network (working capacities are
  // restored lazily by the next max_flow), so keep version() stable and
  // let cached Gomory-Hu trees survive.
  if (n == built_n_ && version_ == built_version_ &&
      same_edges(edges, built_edges_)) {
    return;
  }
  ++version_;
  built_version_ = version_;
  built_n_ = n;
  built_edges_ = edges;
  n_ = n;
  m_ = 0;
  off_.assign(n + 1, 0);
  edge_arc_.assign(edges.size(), 0);
  for (const ArenaEdge& e : edges) {
    if (e.u == e.v) continue;
    ++off_[e.u + 1];
    ++off_[e.v + 1];
    ++m_;
  }
  for (std::size_t v = 0; v < n; ++v) off_[v + 1] += off_[v];
  const std::size_t arcs = 2 * m_;
  to_.resize(arcs);
  pair_.resize(arcs);
  base_cap_.resize(arcs);
  // Placement cursors start at the CSR offsets and advance per arc.
  std::vector<std::uint32_t> cursor(off_.begin(), off_.end() - 1);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const ArenaEdge& e = edges[i];
    if (e.u == e.v) continue;
    const std::uint32_t a = cursor[e.u]++;
    const std::uint32_t b = cursor[e.v]++;
    to_[a] = e.v;
    to_[b] = e.u;
    pair_[a] = b;
    pair_[b] = a;
    base_cap_[a] = e.cap;
    base_cap_[b] = e.cap;
    edge_arc_[i] = a;
  }
  cap_ = base_cap_;
  dirty_.clear();
  level_.resize(n);
  iter_.resize(n);
  queue_.resize(n);
}

void FlowArena::set_edge_base_cap(std::size_t i, Cap cap) {
  ++version_;
  const std::uint32_t a = edge_arc_[i];
  base_cap_[a] = cap;
  base_cap_[pair_[a]] = cap;
  cap_[a] = cap;
  cap_[pair_[a]] = cap;
}

void FlowArena::disable_vertex(std::uint32_t v) {
  ++version_;
  for (std::uint32_t a = off_[v]; a < off_[v + 1]; ++a) {
    base_cap_[a] = 0;
    base_cap_[pair_[a]] = 0;
    cap_[a] = 0;
    cap_[pair_[a]] = 0;
  }
}

bool FlowArena::bfs(std::uint32_t s, std::uint32_t t) {
  std::fill(level_.begin(), level_.end(), -1);
  std::size_t head = 0;
  std::size_t tail = 0;
  level_[s] = 0;
  queue_[tail++] = s;
  while (head < tail) {
    const std::uint32_t u = queue_[head++];
    for (std::uint32_t a = off_[u]; a < off_[u + 1]; ++a) {
      const std::uint32_t w = to_[a];
      if (cap_[a] > 0 && level_[w] < 0) {
        level_[w] = level_[u] + 1;
        // Early exit once t is labeled: every interior vertex of a
        // shortest augmenting path has a smaller level and is already
        // labeled, so the rest of this BFS cannot matter.
        if (w == t) return true;
        queue_[tail++] = w;
      }
    }
  }
  return level_[t] >= 0;
}

FlowArena::Cap FlowArena::dfs(std::uint32_t u, std::uint32_t t, Cap limit) {
  if (u == t) return limit;
  Cap pushed = 0;
  for (std::uint32_t& a = iter_[u]; a < off_[u + 1]; ++a) {
    const std::uint32_t w = to_[a];
    if (cap_[a] <= 0 || level_[w] != level_[u] + 1) continue;
    const Cap f = dfs(w, t, std::min(limit - pushed, cap_[a]));
    if (f > 0) {
      cap_[a] -= f;
      cap_[pair_[a]] += f;
      dirty_.push_back(a);
      dirty_.push_back(pair_[a]);
      pushed += f;
      if (pushed == limit) return pushed;
    }
  }
  level_[u] = -1;  // dead end
  return pushed;
}

FlowArena::Cap FlowArena::max_flow(std::uint32_t s, std::uint32_t t) {
  ++flows_run_;
  // Capacity restore, no reallocation: replay only the arcs the previous
  // flow dirtied, making the arena cheap to reuse across the n-1 Gusfield
  // flows and the residual rounds even when individual flows are small.
  for (const std::uint32_t a : dirty_) cap_[a] = base_cap_[a];
  dirty_.clear();
  Cap flow = 0;
  while (bfs(s, t)) {
    std::copy(off_.begin(), off_.end() - 1, iter_.begin());
    Cap f;
    while ((f = dfs(s, t, std::numeric_limits<Cap>::max())) > 0) {
      flow += f;
    }
  }
  return flow;
}

void FlowArena::min_cut_side(std::uint32_t s, std::vector<char>& side) {
  side.assign(n_, 0);
  std::vector<std::uint32_t>& q = queue_;
  std::size_t head = 0;
  std::size_t tail = 0;
  side[s] = 1;
  q[tail++] = s;
  while (head < tail) {
    const std::uint32_t u = q[head++];
    for (std::uint32_t a = off_[u]; a < off_[u + 1]; ++a) {
      const std::uint32_t w = to_[a];
      if (cap_[a] > 0 && !side[w]) {
        side[w] = 1;
        q[tail++] = w;
      }
    }
  }
}

}  // namespace dp
