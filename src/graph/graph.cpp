#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace dp {

Graph::Graph(std::size_t n, std::vector<Edge> edges)
    : n_(n), edges_(std::move(edges)) {
  for (const Edge& e : edges_) {
    if (e.u >= n_ || e.v >= n_) {
      throw std::out_of_range("Graph: edge endpoint out of range");
    }
    if (e.u == e.v) {
      throw std::invalid_argument("Graph: self loop not allowed");
    }
  }
}

Graph::Graph(const Graph& other) : n_(other.n_), edges_(other.edges_) {
  // Concurrent readers may be lazily building other's CSR right now; take
  // its build lock so we copy either no view or a complete one.
  std::lock_guard<std::mutex> lock(other.adjacency_mutex_);
  offsets_ = other.offsets_;
  incidences_ = other.incidences_;
  adjacency_valid_.store(
      other.adjacency_valid_.load(std::memory_order_relaxed),
      std::memory_order_release);
}

Graph& Graph::operator=(const Graph& other) {
  if (this == &other) return *this;
  n_ = other.n_;
  edges_ = other.edges_;
  std::lock_guard<std::mutex> lock(other.adjacency_mutex_);
  offsets_ = other.offsets_;
  incidences_ = other.incidences_;
  adjacency_valid_.store(
      other.adjacency_valid_.load(std::memory_order_relaxed),
      std::memory_order_release);
  return *this;
}

Graph::Graph(Graph&& other) noexcept
    : n_(other.n_),
      edges_(std::move(other.edges_)),
      offsets_(std::move(other.offsets_)),
      incidences_(std::move(other.incidences_)),
      adjacency_valid_(other.adjacency_valid_.load(std::memory_order_acquire)) {
  other.adjacency_valid_.store(false, std::memory_order_release);
}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this == &other) return *this;
  n_ = other.n_;
  edges_ = std::move(other.edges_);
  offsets_ = std::move(other.offsets_);
  incidences_ = std::move(other.incidences_);
  adjacency_valid_.store(
      other.adjacency_valid_.load(std::memory_order_acquire),
      std::memory_order_release);
  other.adjacency_valid_.store(false, std::memory_order_release);
  return *this;
}

bool Graph::add_edge(Vertex u, Vertex v, double w) {
  if (u == v) return false;
  if (u >= n_ || v >= n_) {
    throw std::out_of_range("Graph::add_edge: endpoint out of range");
  }
  edges_.push_back(Edge{u, v, w});
  adjacency_valid_.store(false, std::memory_order_release);
  return true;
}

double Graph::total_weight() const noexcept {
  double s = 0;
  for (const Edge& e : edges_) s += e.w;
  return s;
}

double Graph::max_weight() const noexcept {
  double mx = 0;
  for (const Edge& e : edges_) mx = std::max(mx, e.w);
  return mx;
}

void Graph::build_adjacency() const {
  // Double-checked: racing readers serialize here; the loser of the race
  // observes the valid flag and returns without rebuilding.
  std::lock_guard<std::mutex> lock(adjacency_mutex_);
  if (adjacency_valid_.load(std::memory_order_relaxed)) return;
  offsets_.assign(n_ + 1, 0);
  for (const Edge& e : edges_) {
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
  for (std::size_t i = 0; i < n_; ++i) offsets_[i + 1] += offsets_[i];
  incidences_.resize(edges_.size() * 2);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    const Edge& edge = edges_[e];
    incidences_[cursor[edge.u]++] = Incidence{edge.v, e};
    incidences_[cursor[edge.v]++] = Incidence{edge.u, e};
  }
  adjacency_valid_.store(true, std::memory_order_release);
}

std::span<const Graph::Incidence> Graph::neighbors(Vertex u) const {
  if (!adjacency_valid_.load(std::memory_order_acquire)) build_adjacency();
  assert(adjacency_valid_.load(std::memory_order_acquire) &&
         "neighbors() requires a built adjacency view");
  return std::span<const Incidence>(incidences_.data() + offsets_[u],
                                    offsets_[u + 1] - offsets_[u]);
}

Graph Graph::edge_subgraph(const std::vector<char>& keep) const {
  std::vector<Edge> sub;
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (e < keep.size() && keep[e]) sub.push_back(edges_[e]);
  }
  return Graph(n_, std::move(sub));
}

std::string Graph::summary() const {
  std::ostringstream os;
  os << "Graph(n=" << n_ << ", m=" << edges_.size() << ", W=" << max_weight()
     << ")";
  return os.str();
}

std::int64_t Capacities::total() const noexcept {
  std::int64_t s = 0;
  for (std::int64_t b : b_) s += b;
  return s;
}

std::int64_t Capacities::weight_of(
    const std::vector<Vertex>& set) const noexcept {
  std::int64_t s = 0;
  for (Vertex v : set) s += b_[v];
  return s;
}

}  // namespace dp
