#include "graph/io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace dp {

void write_graph(std::ostream& os, const Graph& g) {
  os << std::setprecision(17);  // exact double round trip
  os << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) {
    os << e.u << ' ' << e.v << ' ' << e.w << '\n';
  }
}

void write_graph_file(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_graph_file: cannot open " + path);
  write_graph(os, g);
}

Graph read_graph(std::istream& is) {
  std::string line;
  std::size_t n = 0, m = 0;
  bool have_header = false;
  Graph g;
  std::size_t edges_read = 0;
  while (std::getline(is, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    if (!have_header) {
      if (ls >> n >> m) {
        have_header = true;
        g = Graph(n);
      }
      continue;
    }
    Vertex u, v;
    double w = 1.0;
    if (ls >> u >> v) {
      ls >> w;  // weight optional
      g.add_edge(u, v, w);
      ++edges_read;
    }
  }
  if (!have_header) throw std::runtime_error("read_graph: missing header");
  if (edges_read != m) {
    throw std::runtime_error("read_graph: edge count mismatch");
  }
  return g;
}

Graph read_graph_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("read_graph_file: cannot open " + path);
  return read_graph(is);
}

void write_edge_file(const std::string& path, const Graph& g) {
  stream::write_edge_file(path, g);
}

Graph read_edge_file(const std::string& path) {
  return stream::read_edge_file(path);
}

}  // namespace dp
