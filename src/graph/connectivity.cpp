#include "graph/connectivity.hpp"

#include "graph/union_find.hpp"

namespace dp {

std::vector<std::uint32_t> connected_components(const Graph& g) {
  UnionFind uf(g.num_vertices());
  for (const Edge& e : g.edges()) uf.unite(e.u, e.v);
  std::vector<std::uint32_t> label(g.num_vertices());
  std::vector<std::uint32_t> remap(g.num_vertices(), ~0u);
  std::uint32_t next = 0;
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    const std::uint32_t root = uf.find(static_cast<std::uint32_t>(v));
    if (remap[root] == ~0u) remap[root] = next++;
    label[v] = remap[root];
  }
  return label;
}

std::size_t num_components(const Graph& g) {
  UnionFind uf(g.num_vertices());
  for (const Edge& e : g.edges()) uf.unite(e.u, e.v);
  return uf.num_components();
}

std::vector<EdgeId> spanning_forest(const Graph& g) {
  UnionFind uf(g.num_vertices());
  std::vector<EdgeId> forest;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (uf.unite(g.edge(e).u, g.edge(e).v)) forest.push_back(e);
  }
  return forest;
}

double cut_weight(const Graph& g, const std::vector<char>& in_s) {
  double w = 0;
  for (const Edge& e : g.edges()) {
    if (in_s[e.u] != in_s[e.v]) w += e.w;
  }
  return w;
}

}  // namespace dp
