#pragma once
// Arena-backed CSR max-flow network for repeated min-cut computations.
//
// The Gomory-Hu construction (Gusfield variant) runs n-1 max-flows on the
// SAME capacitated graph, and the odd-set separation of Lemma 25 then runs
// several residual rounds on SHRINKING versions of that graph. A throwaway
// linked-list Dinic pays allocation and pointer-chasing costs on every
// flow; this arena builds one contiguous CSR (offset/to/pair/cap arrays)
// once, restores capacities by a single memcpy between flows, and supports
// vertex contraction (disable_vertex + base-capacity edits) so residual
// rounds shrink the network in place instead of rebuilding it.

#include <cstdint>
#include <vector>

namespace dp {

/// One aggregated undirected edge for FlowArena::build (parallel edges
/// must already be summed; see aggregate_parallel_edges).
struct ArenaEdge {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  std::int64_t cap = 0;
};

/// Sum parallel edges in place: sort by (u, v) and merge equal endpoint
/// pairs (one flat sort-and-merge pass, no node allocations). Endpoints
/// must already satisfy u <= v per entry.
void aggregate_parallel_edges(std::vector<ArenaEdge>& edges);

class FlowArena {
 public:
  using Cap = std::int64_t;

  FlowArena() = default;

  /// Build the CSR from undirected edges: each edge becomes two arcs with
  /// capacity `cap` (one per direction), each serving as the other's
  /// residual. Self-loops are skipped. Reuses buffers across builds.
  /// A build with the same (n, edges) as the previous one, with no base
  /// mutation in between, is a detected no-op: the arena keeps its state
  /// and version(), so a cached Gomory-Hu tree stays reusable.
  void build(std::size_t n, const std::vector<ArenaEdge>& edges);

  std::size_t num_vertices() const noexcept { return n_; }
  std::size_t num_edges() const noexcept { return m_; }

  /// Monotone stamp of the base network: bumped by every build that
  /// changes content and by set_edge_base_cap / disable_vertex. Two equal
  /// version() reads bracket a window in which every max_flow answer (and
  /// any tree built from them) stays valid.
  std::uint64_t version() const noexcept { return version_; }

  /// Number of max_flow invocations ever run (test/bench observability for
  /// the Gomory-Hu reuse path).
  std::size_t flows_run() const noexcept { return flows_run_; }

  /// Replace the rest-state capacity of BOTH directions of edge i (index
  /// into the build() edge list). Takes effect at the next max_flow.
  void set_edge_base_cap(std::size_t i, Cap cap);

  /// Rest-state capacity of edge i (u->v direction).
  Cap edge_base_cap(std::size_t i) const {
    return base_cap_[edge_arc_[i]];
  }

  /// Zero the rest-state capacity of every arc incident to v (both
  /// directions), isolating it from all future flows. The contraction
  /// primitive for residual odd-set rounds.
  void disable_vertex(std::uint32_t v);

  /// Max flow s->t (Dinic) from the rest-state capacities. The restore is
  /// incremental: only arcs dirtied by the PREVIOUS flow are reset, so a
  /// small flow on a big arena costs O(touched), not O(arcs).
  Cap max_flow(std::uint32_t s, std::uint32_t t);

  /// After max_flow: the s-side of a minimum cut (vertices reachable from
  /// s in the residual graph), written into `side` (resized to n).
  /// Non-const: reuses the arena's BFS scratch.
  void min_cut_side(std::uint32_t s, std::vector<char>& side);

 private:
  bool bfs(std::uint32_t s, std::uint32_t t);
  Cap dfs(std::uint32_t u, std::uint32_t t, Cap limit);

  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::vector<std::uint32_t> off_;       // n+1 CSR offsets
  std::vector<std::uint32_t> to_;        // 2m arc heads
  std::vector<std::uint32_t> pair_;      // 2m paired (residual) arc index
  std::vector<Cap> cap_;                 // 2m working capacities
  std::vector<Cap> base_cap_;            // 2m rest-state capacities
  std::vector<std::uint32_t> edge_arc_;  // m: edge i -> u->v arc index
  // Reusable flow scratch.
  std::vector<int> level_;
  std::vector<std::uint32_t> iter_;
  std::vector<std::uint32_t> queue_;
  std::vector<std::uint32_t> dirty_;  // arcs touched by the last flow
  // Base-network change tracking (no-op build detection + tree reuse).
  std::uint64_t version_ = 0;
  std::uint64_t built_version_ = 0;        // version_ at the last build
  std::size_t flows_run_ = 0;
  std::size_t built_n_ = 0;                // build inputs of the last build
  std::vector<ArenaEdge> built_edges_;
};

}  // namespace dp
