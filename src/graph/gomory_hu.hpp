#pragma once
// Gomory-Hu tree (Gusfield's simplification): n-1 max-flow computations
// produce a tree whose path-minimum edge equals the s-t min cut for every
// vertex pair. The odd-set separation of Lemma 24/25 enumerates tree edges
// to find all low-capacity odd cuts (Padberg-Rao).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dp {

struct GomoryHuTree {
  /// parent[v] for v != root (root = 0); parent[0] == 0.
  std::vector<std::uint32_t> parent;
  /// cut_value[v] = min-cut between v and parent[v].
  std::vector<std::int64_t> cut_value;

  std::size_t size() const noexcept { return parent.size(); }

  /// Min s-t cut value via the path minimum in the tree. O(n) walk.
  std::int64_t min_cut(std::uint32_t s, std::uint32_t t) const;

  /// The side of the (v, parent[v]) fundamental cut containing v:
  /// exactly the vertices whose tree path to the root passes through v.
  std::vector<std::uint32_t> cut_side(std::uint32_t v) const;
};

/// Build the Gomory-Hu tree of an undirected graph with integer edge
/// capacities. `cap[e]` is the capacity of graph edge e (parallel edges are
/// summed). Isolated vertices get cut 0 to the root.
GomoryHuTree gomory_hu(std::size_t n,
                       const std::vector<Edge>& edges,
                       const std::vector<std::int64_t>& cap);

}  // namespace dp
