#pragma once
// Gomory-Hu tree (Gusfield's simplification): n-1 max-flow computations
// produce a tree whose path-minimum edge equals the s-t min cut for every
// vertex pair. The odd-set separation of Lemma 24/25 enumerates tree edges
// to find all low-capacity odd cuts (Padberg-Rao).
//
// Construction runs on a FlowArena (contiguous CSR, capacity restore
// between the n-1 flows, no per-flow allocation); finalize() precomputes
// depths and a children CSR so min_cut is a pure path walk and cut_side
// does no per-call allocation.

#include <cstdint>
#include <vector>

#include "graph/flow_arena.hpp"
#include "graph/graph.hpp"

namespace dp {

struct GomoryHuTree {
  /// parent[v] for v != root; parent[root] == root. Vertices excluded from
  /// construction (see gomory_hu_from_arena's `alive` mask) are their own
  /// parent with cut 0.
  std::vector<std::uint32_t> parent;
  /// cut_value[v] = min-cut between v and parent[v].
  std::vector<std::int64_t> cut_value;
  /// Tree root (0 for the full-graph builder).
  std::uint32_t root = 0;
  /// Precomputed by finalize(): depth[v] = tree distance to v's root, and
  /// a children CSR (child ids of v are child_list[child_off[v]..[v+1])).
  std::vector<std::int32_t> depth;
  std::vector<std::uint32_t> child_off;
  std::vector<std::uint32_t> child_list;

  std::size_t size() const noexcept { return parent.size(); }

  /// Build depth and the children CSR from `parent`. Called by the
  /// builders; required before min_cut / cut_side.
  void finalize();

  /// Min s-t cut value via the path minimum in the tree: a pure walk on
  /// the precomputed depths, no allocation. Returns 0 across components.
  std::int64_t min_cut(std::uint32_t s, std::uint32_t t) const;

  /// The side of the (v, parent[v]) fundamental cut containing v:
  /// exactly the vertices whose tree path to the root passes through v.
  /// Appends to `out` (cleared first); no per-call allocation beyond the
  /// caller's buffer.
  void cut_side_into(std::uint32_t v, std::vector<std::uint32_t>& out) const;

  /// Allocating convenience wrapper around cut_side_into.
  std::vector<std::uint32_t> cut_side(std::uint32_t v) const;
};

/// Build the Gomory-Hu tree of an undirected graph with integer edge
/// capacities. `cap[e]` is the capacity of graph edge e (parallel edges are
/// summed by a sort-and-merge pass — no node allocations). Isolated
/// vertices get cut 0 to the root.
GomoryHuTree gomory_hu(std::size_t n,
                       const std::vector<Edge>& edges,
                       const std::vector<std::int64_t>& cap);

/// Gusfield on a prebuilt arena (capacities restored between flows). If
/// `alive` is non-null only vertices with alive[v] != 0 participate — the
/// root is the first alive vertex and every excluded vertex becomes a
/// self-rooted singleton with cut 0. This is the residual-round entry
/// point for odd-set separation: disable vertices in the arena, adjust
/// base capacities, and rebuild the tree without reconstructing the
/// network.
GomoryHuTree gomory_hu_from_arena(FlowArena& net,
                                  const std::vector<char>* alive = nullptr);

/// As above, but rebuilding into an existing tree so its buffers are
/// reused across residual rounds.
void gomory_hu_from_arena(FlowArena& net, const std::vector<char>* alive,
                          GomoryHuTree& tree);

/// Reuse token for gomory_hu_from_arena_cached / gomory_hu_contract_update:
/// remembers the arena version() and alive mask the cached tree was built
/// from, plus the per-step cut rows that extend whole-network reuse to
/// per-subtree validity after a contraction.
struct GomoryHuStamp {
  std::uint64_t net_version = 0;
  std::vector<char> alive;
  bool valid = false;
  /// Bit v of row i is 1 when v fell on i's side of the minimum
  /// (i, parent[i]) cut Gusfield used at step i. Rows are what the
  /// incremental replay certifies and reuses; row i is only meaningful
  /// where has_row[i] != 0.
  std::size_t row_words = 0;
  std::vector<std::uint64_t> rows;  // n * row_words
  std::vector<char> has_row;
  /// Monotone observability counters (surfaced through ResourceMeter):
  /// max-flows skipped by certified reuse, and how each (re)build ran.
  std::uint64_t flows_saved = 0;
  std::uint64_t full_builds = 0;
  std::uint64_t incremental_updates = 0;
  std::uint64_t tree_reuses = 0;
};

/// One contraction event between two Gusfield builds on the same arena:
/// the vertices newly disabled since the stamped tree was built, the
/// special (deficiency) node, and whether every capacity lost to the
/// contraction was compensated exactly onto the survivors' s-edges (no
/// clamping at zero). Exact compensation is what makes the cached cut rows
/// replayable: any cut with the dead set on the special node's side keeps
/// its value, so a stamped row whose dead bits agree with its s bit is
/// still a minimum cut of the contracted network.
struct GomoryHuContraction {
  std::vector<std::uint32_t> contracted;
  std::uint32_t s_node = 0;
  bool exact_compensation = true;
};

/// Gusfield with tree reuse: when `net.version()` and the alive mask are
/// unchanged since `stamp` was last written, `tree` is already the
/// Gomory-Hu tree of this network — skip the n-1 max-flows entirely. This
/// is the odd-set separation fast path (Lemma 25): a residual round that
/// contracted no vertex, re-queried with the same network, reuses the
/// previous arena tree. Returns true when Gusfield actually ran.
bool gomory_hu_from_arena_cached(FlowArena& net,
                                 const std::vector<char>* alive,
                                 GomoryHuTree& tree, GomoryHuStamp& stamp);

/// Incremental Gusfield after a contraction (the Lemma 25 residual-round
/// hot path): `tree`/`stamp` describe the arena BEFORE `delta`'s vertices
/// were disabled; the arena has already been mutated. Replays Gusfield
/// step by step, reusing a stamped row — skipping its max-flow — whenever
/// its certificate holds (same step parent, and every newly-dead vertex on
/// the same side as the special node), and recomputing only the steps the
/// contraction actually touched. Falls back to a full rebuild when the
/// stamp is unusable (invalid, clamped compensation, root contracted
/// away). Leaves `tree` the Gomory-Hu tree of the CURRENT network — all
/// pairwise min-cut values match a from-scratch Gusfield build — and the
/// stamp re-validated for it. Returns the number of max-flows run.
std::size_t gomory_hu_contract_update(FlowArena& net,
                                      const std::vector<char>* alive,
                                      const GomoryHuContraction& delta,
                                      GomoryHuTree& tree,
                                      GomoryHuStamp& stamp);

}  // namespace dp
