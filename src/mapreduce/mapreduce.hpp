#pragma once
// MapReduce simulator.
//
// Models the constrained-parallelism setting of the paper (Lattanzi et al.
// SPAA'11, Section 1): computation proceeds in synchronous rounds; each
// round maps over the (distributed) input, shuffles key/value pairs, and
// reduces per key under a per-reducer memory cap. The simulator meters
// rounds, shuffle volume (messages), and enforces the reducer memory cap —
// the quantities the paper's model constrains — while executing mappers and
// reducers in parallel on a thread pool for physical speed.
//
// Values are 64-bit words (enough for edge ids / packed edges / sketch
// words); richer payloads pack into multiple words.
//
// Fault tolerance (util/fault): with a FaultPlan in Config, individual
// mapper-shard and reducer tasks fail deterministically (FaultSite::
// kMapperShard / kReducerTask, keyed by (simulator round, shard-or-key))
// and are retried per task up to the plan's budget — exactly the recovery
// real MapReduce runtimes perform. A failed mapper's emissions are wasted
// shuffle work (charged as messages, output discarded); a retried reducer
// re-fetches its input values (charged as messages). Task-level failures
// and their charges are collected per task slot and folded into the meter
// AFTER the phase joins, in deterministic shard/key order — so totals are
// thread-count-invariant and mapper/reducer outputs stay bitwise identical
// to a fault-free round. An exhausted budget surfaces as a SubstrateFault
// rethrown on the calling thread (never from inside a pool task).

#include <cstdint>
#include <functional>
#include <vector>

#include "util/accounting.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace dp::mapreduce {

struct KeyValue {
  std::uint64_t key;
  std::uint64_t value;
};

struct Config {
  /// Number of simulated machines (mapper shards).
  std::size_t machines = 8;
  /// Maximum values a single reducer may receive; 0 = unlimited. Models the
  /// O(n^{1+1/p}) central-processing cap.
  std::size_t reducer_memory = 0;
  /// Worker threads for physical execution (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Task-level fault injection + retry budget; nullptr = fault-free. The
  /// plan must outlive the simulator (the access substrate passes its own
  /// stable copy).
  const FaultPlan* faults = nullptr;
};

/// Thrown when a reducer receives more values than Config::reducer_memory —
/// a deterministic model violation (the algorithm over-shipped to one
/// reducer), NOT a transient fault: it is never retried.
class ReducerMemoryExceeded : public ConfigError {
 public:
  explicit ReducerMemoryExceeded(std::size_t key, std::size_t got,
                                 std::size_t cap);
};

class Simulator {
 public:
  explicit Simulator(Config config, ResourceMeter* meter = nullptr);

  /// Execute one MapReduce round.
  ///
  /// * `input` is sharded contiguously across machines.
  /// * `mapper(shard, emit)` runs once per machine over its shard.
  /// * `reducer(key, values, emit)` runs once per distinct key.
  ///
  /// Returns all reducer emissions. Counts one round and |shuffle| messages
  /// (plus the same volume in bytes — each shuffled record is one fixed
  /// 16-byte KeyValue — via add_shuffle_bytes, including wasted and
  /// re-fetched fault traffic).
  std::vector<KeyValue> round(
      const std::vector<KeyValue>& input,
      const std::function<void(const std::vector<KeyValue>&,
                               std::vector<KeyValue>&)>& mapper,
      const std::function<void(std::uint64_t, const std::vector<std::uint64_t>&,
                               std::vector<KeyValue>&)>& reducer);

  std::size_t rounds_executed() const noexcept { return rounds_; }

  /// Per-shard emission counts of the last round's map phase (the
  /// surviving attempt of each shard, in shard order) — the per-machine
  /// shuffle breakdown the access layer folds into its shard meters.
  const std::vector<std::size_t>& last_map_emissions() const noexcept {
    return last_map_emissions_;
  }

 private:
  Config config_;
  ResourceMeter* meter_;
  ThreadPool pool_;
  std::size_t rounds_ = 0;
  std::vector<std::size_t> last_map_emissions_;
  FaultInjector injector_;  // disabled unless config.faults is set
  RetryPolicy retry_;
};

/// One deferred-sampling round executed as a single MapReduce round: mappers
/// evaluate the counter-based inclusion mask of each edge in their shard
/// (core/sampling's sampling_mask — the same pure function of
/// (seed, round, q, edge) the in-memory SamplingEngine sweeps), emitting
/// (sparsifier q, edge index) pairs; reducer q collects sparsifier q's
/// support. Returns the t supports, each ascending — bitwise identical to
/// SamplingEngine::draw / draw_stream on the same (prob, t, round, seed).
///
/// `meter` (typically the simulator's) is charged one pass (the mappers
/// collectively read the input once) and the stored incidences, mirroring
/// the in-memory engine's accounting; the simulator itself meters the round
/// and the shuffle volume.
std::vector<std::vector<std::uint32_t>> sample_round(
    Simulator& sim, const std::vector<double>& prob, std::size_t t,
    std::uint64_t round, std::uint64_t seed, ResourceMeter* meter = nullptr);

}  // namespace dp::mapreduce
