#include "mapreduce/mapreduce.hpp"

#include <algorithm>
#include <bit>
#include <exception>
#include <sstream>
#include <unordered_map>

#include "core/sampling.hpp"
#include "util/rng.hpp"

namespace dp::mapreduce {

ReducerMemoryExceeded::ReducerMemoryExceeded(std::size_t key, std::size_t got,
                                             std::size_t cap)
    : ConfigError(
          [&] {
            std::ostringstream os;
            os << "reducer for key " << key << " received " << got
               << " values, exceeding the memory cap " << cap;
            return os.str();
          }(),
          ErrorContext{fault_site_name(FaultSite::kReducerTask)}) {}

Simulator::Simulator(Config config, ResourceMeter* meter)
    : config_(config), meter_(meter), pool_(config.threads) {
  if (config_.machines == 0) config_.machines = 1;
  if (config_.faults != nullptr) {
    injector_ = FaultInjector(config_.faults->config);
    retry_ = config_.faults->retry;
  }
}

std::vector<KeyValue> Simulator::round(
    const std::vector<KeyValue>& input,
    const std::function<void(const std::vector<KeyValue>&,
                             std::vector<KeyValue>&)>& mapper,
    const std::function<void(std::uint64_t, const std::vector<std::uint64_t>&,
                             std::vector<KeyValue>&)>& reducer) {
  ++rounds_;
  if (meter_ != nullptr) {
    meter_->add_round();
  }

  // ---- Map phase: shard input contiguously, run mappers in parallel. ----
  // Each shard is ONE retriable task (FaultSite::kMapperShard). Pool tasks
  // must never throw (the worker loop would terminate the process), so
  // each slot records its outcome — exception, injected-fault count,
  // wasted emissions — and the calling thread folds the slots in shard
  // order after the join: deterministic accounting, first error wins.
  const std::size_t shards = config_.machines;
  const std::size_t shard_size = (input.size() + shards - 1) / shards;
  const std::uint64_t round_ord = rounds_;
  std::vector<std::vector<KeyValue>> mapped(shards);
  std::vector<std::size_t> map_wasted(shards, 0);
  std::vector<std::size_t> map_faults(shards, 0);
  std::vector<std::exception_ptr> map_errors(shards);
  pool_.parallel_for(0, shards, [&](std::size_t s) {
    const std::size_t lo = s * shard_size;
    const std::size_t hi = std::min(input.size(), lo + shard_size);
    if (lo >= hi && !(s == 0 && input.empty())) return;
    std::vector<KeyValue> shard(input.begin() + static_cast<long>(lo),
                                input.begin() + static_cast<long>(hi));
    for (std::uint64_t attempt = 0;; ++attempt) {
      mapped[s].clear();
      try {
        mapper(shard, mapped[s]);
      } catch (...) {
        // The mapper's own exception is deterministic user code, not a
        // transient fault: surface it without retrying.
        map_errors[s] = std::current_exception();
        return;
      }
      if (!injector_.should_fail(FaultSite::kMapperShard, round_ord, s,
                                 attempt)) {
        return;
      }
      // Injected task death after its emissions entered the shuffle
      // fabric: the spilled messages are wasted work, the output is
      // discarded and the task re-executes.
      ++map_faults[s];
      map_wasted[s] += mapped[s].size();
      if (attempt + 1 >= retry_.max_attempts) {
        mapped[s].clear();
        map_errors[s] = std::make_exception_ptr(SubstrateFault(
            "mapper shard task failed; retry budget exhausted",
            {fault_site_name(FaultSite::kMapperShard), round_ord, attempt}));
        return;
      }
      retry_.backoff(injector_, FaultSite::kMapperShard, round_ord, s,
                     attempt);
    }
  });
  last_map_emissions_.assign(shards, 0);
  for (std::size_t s = 0; s < shards; ++s) {
    last_map_emissions_[s] = mapped[s].size();
  }
  if (meter_ != nullptr) {
    std::size_t wasted = 0;
    std::size_t faults = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      wasted += map_wasted[s];
      faults += map_faults[s];
    }
    meter_->add_messages(wasted);
    meter_->add_shuffle_bytes(wasted * sizeof(KeyValue));
    meter_->add_faults(faults);
  }
  for (std::size_t s = 0; s < shards; ++s) {
    if (map_errors[s] != nullptr) std::rethrow_exception(map_errors[s]);
  }

  // ---- Shuffle: group by key (single-threaded; metered as messages). ----
  std::size_t shuffle_volume = 0;
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> grouped;
  for (const auto& out : mapped) {
    shuffle_volume += out.size();
    for (const KeyValue& kv : out) grouped[kv.key].push_back(kv.value);
  }
  if (meter_ != nullptr) {
    meter_->add_messages(shuffle_volume);
    meter_->add_shuffle_bytes(shuffle_volume * sizeof(KeyValue));
  }

  if (config_.reducer_memory > 0) {
    for (const auto& [key, values] : grouped) {
      if (values.size() > config_.reducer_memory) {
        throw ReducerMemoryExceeded(key, values.size(),
                                    config_.reducer_memory);
      }
    }
  }

  // ---- Reduce phase: parallel over keys. ----
  std::vector<std::uint64_t> keys;
  keys.reserve(grouped.size());
  for (const auto& [key, values] : grouped) keys.push_back(key);
  std::sort(keys.begin(), keys.end());  // deterministic order

  // Each key is ONE retriable task (FaultSite::kReducerTask). A retried
  // reducer re-fetches its grouped input from the shuffle fabric, so every
  // failed attempt re-charges the task's input volume as messages. Same
  // per-slot collection / post-join folding discipline as the map phase.
  std::vector<std::vector<KeyValue>> reduced(keys.size());
  std::vector<std::size_t> red_refetched(keys.size(), 0);
  std::vector<std::size_t> red_faults(keys.size(), 0);
  std::vector<std::exception_ptr> red_errors(keys.size());
  pool_.parallel_for(0, keys.size(), [&](std::size_t i) {
    const std::uint64_t key = keys[i];
    const std::vector<std::uint64_t>& values = grouped.at(key);
    for (std::uint64_t attempt = 0;; ++attempt) {
      reduced[i].clear();
      try {
        reducer(key, values, reduced[i]);
      } catch (...) {
        red_errors[i] = std::current_exception();
        return;
      }
      if (!injector_.should_fail(FaultSite::kReducerTask, round_ord, key,
                                 attempt)) {
        return;
      }
      ++red_faults[i];
      red_refetched[i] += values.size();
      if (attempt + 1 >= retry_.max_attempts) {
        reduced[i].clear();
        red_errors[i] = std::make_exception_ptr(SubstrateFault(
            "reducer task failed; retry budget exhausted",
            {fault_site_name(FaultSite::kReducerTask), round_ord, attempt}));
        return;
      }
      retry_.backoff(injector_, FaultSite::kReducerTask, round_ord, key,
                     attempt);
    }
  });
  if (meter_ != nullptr) {
    std::size_t refetched = 0;
    std::size_t faults = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      refetched += red_refetched[i];
      faults += red_faults[i];
    }
    meter_->add_messages(refetched);
    meter_->add_shuffle_bytes(refetched * sizeof(KeyValue));
    meter_->add_faults(faults);
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (red_errors[i] != nullptr) std::rethrow_exception(red_errors[i]);
  }

  std::vector<KeyValue> output;
  for (const auto& r : reduced) {
    output.insert(output.end(), r.begin(), r.end());
  }
  return output;
}

std::vector<std::vector<std::uint32_t>> sample_round(
    Simulator& sim, const std::vector<double>& prob, std::size_t t,
    std::uint64_t round, std::uint64_t seed, ResourceMeter* meter) {
  // Same t cap the in-memory engine enforces (the contract is bitwise
  // agreement with SamplingEngine::draw, including its rejections).
  if (t > core::kMaxSparsifiersPerRound) {
    throw ConfigError("sample_round: at most 32 sparsifiers per round");
  }
  // Input record per edge: key = edge index, value = its inclusion
  // probability (bit-punned; mapreduce values are 64-bit words).
  std::vector<KeyValue> input;
  input.reserve(prob.size());
  for (std::size_t idx = 0; idx < prob.size(); ++idx) {
    input.push_back({idx, std::bit_cast<std::uint64_t>(prob[idx])});
  }

  const CounterRng round_rng = core::sampling_round_rng(seed, round);
  const auto output = sim.round(
      input,
      [&](const std::vector<KeyValue>& shard, std::vector<KeyValue>& emit) {
        for (const KeyValue& kv : shard) {
          std::uint64_t mask = core::sampling_mask(
              round_rng, t, kv.key, std::bit_cast<double>(kv.value));
          while (mask != 0) {
            emit.push_back({static_cast<std::uint64_t>(
                                __builtin_ctzll(mask)),
                            kv.key});
            mask &= mask - 1;
          }
        }
      },
      [](std::uint64_t key, const std::vector<std::uint64_t>& values,
         std::vector<KeyValue>& emit) {
        for (std::uint64_t idx : values) emit.push_back({key, idx});
      });

  std::vector<std::vector<std::uint32_t>> supports(t);
  std::size_t stored_total = 0;
  for (const KeyValue& kv : output) {
    supports[kv.key].push_back(static_cast<std::uint32_t>(kv.value));
    ++stored_total;
  }
  // Shards are contiguous and each mapper emits in shard order, so the
  // grouped values already ascend; the sort is a cheap guarantee.
  for (auto& s : supports) std::sort(s.begin(), s.end());
  if (meter != nullptr) {
    meter->add_pass();
    meter->store_edges(stored_total);
  }
  return supports;
}

}  // namespace dp::mapreduce
