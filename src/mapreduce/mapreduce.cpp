#include "mapreduce/mapreduce.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <unordered_map>

#include "core/sampling.hpp"
#include "util/rng.hpp"

namespace dp::mapreduce {

ReducerMemoryExceeded::ReducerMemoryExceeded(std::size_t key, std::size_t got,
                                             std::size_t cap)
    : std::runtime_error([&] {
        std::ostringstream os;
        os << "reducer for key " << key << " received " << got
           << " values, exceeding the memory cap " << cap;
        return os.str();
      }()) {}

Simulator::Simulator(Config config, ResourceMeter* meter)
    : config_(config), meter_(meter), pool_(config.threads) {
  if (config_.machines == 0) config_.machines = 1;
}

std::vector<KeyValue> Simulator::round(
    const std::vector<KeyValue>& input,
    const std::function<void(const std::vector<KeyValue>&,
                             std::vector<KeyValue>&)>& mapper,
    const std::function<void(std::uint64_t, const std::vector<std::uint64_t>&,
                             std::vector<KeyValue>&)>& reducer) {
  ++rounds_;
  if (meter_ != nullptr) {
    meter_->add_round();
  }

  // ---- Map phase: shard input contiguously, run mappers in parallel. ----
  const std::size_t shards = config_.machines;
  const std::size_t shard_size = (input.size() + shards - 1) / shards;
  std::vector<std::vector<KeyValue>> mapped(shards);
  pool_.parallel_for(0, shards, [&](std::size_t s) {
    const std::size_t lo = s * shard_size;
    const std::size_t hi = std::min(input.size(), lo + shard_size);
    if (lo >= hi && !(s == 0 && input.empty())) return;
    std::vector<KeyValue> shard(input.begin() + static_cast<long>(lo),
                                input.begin() + static_cast<long>(hi));
    mapper(shard, mapped[s]);
  });

  // ---- Shuffle: group by key (single-threaded; metered as messages). ----
  std::size_t shuffle_volume = 0;
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> grouped;
  for (const auto& out : mapped) {
    shuffle_volume += out.size();
    for (const KeyValue& kv : out) grouped[kv.key].push_back(kv.value);
  }
  if (meter_ != nullptr) meter_->add_messages(shuffle_volume);

  if (config_.reducer_memory > 0) {
    for (const auto& [key, values] : grouped) {
      if (values.size() > config_.reducer_memory) {
        throw ReducerMemoryExceeded(key, values.size(),
                                    config_.reducer_memory);
      }
    }
  }

  // ---- Reduce phase: parallel over keys. ----
  std::vector<std::uint64_t> keys;
  keys.reserve(grouped.size());
  for (const auto& [key, values] : grouped) keys.push_back(key);
  std::sort(keys.begin(), keys.end());  // deterministic order

  std::vector<std::vector<KeyValue>> reduced(keys.size());
  pool_.parallel_for(0, keys.size(), [&](std::size_t i) {
    reducer(keys[i], grouped.at(keys[i]), reduced[i]);
  });

  std::vector<KeyValue> output;
  for (const auto& r : reduced) {
    output.insert(output.end(), r.begin(), r.end());
  }
  return output;
}

std::vector<std::vector<std::uint32_t>> sample_round(
    Simulator& sim, const std::vector<double>& prob, std::size_t t,
    std::uint64_t round, std::uint64_t seed, ResourceMeter* meter) {
  // Same t cap the in-memory engine enforces (the contract is bitwise
  // agreement with SamplingEngine::draw, including its rejections).
  if (t > core::kMaxSparsifiersPerRound) {
    throw std::invalid_argument(
        "sample_round: at most 32 sparsifiers per round");
  }
  // Input record per edge: key = edge index, value = its inclusion
  // probability (bit-punned; mapreduce values are 64-bit words).
  std::vector<KeyValue> input;
  input.reserve(prob.size());
  for (std::size_t idx = 0; idx < prob.size(); ++idx) {
    input.push_back({idx, std::bit_cast<std::uint64_t>(prob[idx])});
  }

  const CounterRng round_rng = core::sampling_round_rng(seed, round);
  const auto output = sim.round(
      input,
      [&](const std::vector<KeyValue>& shard, std::vector<KeyValue>& emit) {
        for (const KeyValue& kv : shard) {
          std::uint64_t mask = core::sampling_mask(
              round_rng, t, kv.key, std::bit_cast<double>(kv.value));
          while (mask != 0) {
            emit.push_back({static_cast<std::uint64_t>(
                                __builtin_ctzll(mask)),
                            kv.key});
            mask &= mask - 1;
          }
        }
      },
      [](std::uint64_t key, const std::vector<std::uint64_t>& values,
         std::vector<KeyValue>& emit) {
        for (std::uint64_t idx : values) emit.push_back({key, idx});
      });

  std::vector<std::vector<std::uint32_t>> supports(t);
  std::size_t stored_total = 0;
  for (const KeyValue& kv : output) {
    supports[kv.key].push_back(static_cast<std::uint32_t>(kv.value));
    ++stored_total;
  }
  // Shards are contiguous and each mapper emits in shard order, so the
  // grouped values already ascend; the sort is a cheap guarantee.
  for (auto& s : supports) std::sort(s.begin(), s.end());
  if (meter != nullptr) {
    meter->add_pass();
    meter->store_edges(stored_total);
  }
  return supports;
}

}  // namespace dp::mapreduce
