#include "serve/workload.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <mutex>

namespace dp::serve {

double zipfian_zeta(std::uint64_t n, double theta) {
  // Cache per theta: the largest prefix sum computed so far, extended
  // incrementally when n grows (the YCSB trick — zeta is the only O(n)
  // part of the generator). A smaller n recomputes fresh without touching
  // the cached prefix.
  struct Prefix {
    std::uint64_t n = 0;
    double zeta = 0;
  };
  static std::mutex mu;
  static std::map<std::uint64_t, Prefix> cache;

  std::lock_guard<std::mutex> lock(mu);
  Prefix& p = cache[std::bit_cast<std::uint64_t>(theta)];
  if (n < p.n) {
    double z = 0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      z += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return z;
  }
  for (std::uint64_t i = p.n + 1; i <= n; ++i) {
    p.zeta += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  p.n = n;
  return p.zeta;
}

ZipfianChooser::ZipfianChooser(std::uint64_t n, double theta)
    : n_(n == 0 ? 1 : n), theta_(theta) {
  zetan_ = zipfian_zeta(n_, theta_);
  const double zeta2 = zipfian_zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  half_pow_theta_ = 1.0 + std::pow(0.5, theta_);
}

std::uint64_t ZipfianChooser::pick(double u) const noexcept {
  // Gray et al.'s quick transformation, as in YCSB's ZipfianGenerator.
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < half_pow_theta_) return std::min<std::uint64_t>(1, n_ - 1);
  const double r = static_cast<double>(n_) *
                   std::pow(eta_ * u - eta_ + 1.0, alpha_);
  const auto rank = static_cast<std::uint64_t>(r);
  return rank >= n_ ? n_ - 1 : rank;
}

WorkloadGen::WorkloadGen(std::uint64_t seed, const Graph& g, WorkloadMix mix,
                         double theta)
    : g_(&g),
      rng_(seed),
      mix_(mix),
      zipf_(g.num_vertices(), theta),
      vertex_salt_(rng_.bits(0x5a17)) {
  const double total = mix_.solve + mix_.probe_edge + mix_.probe_ratio;
  if (total > 0) {
    mix_.solve /= total;
    mix_.probe_edge /= total;
    mix_.probe_ratio /= total;
  }
  // Touch the adjacency once so concurrent clients never race the lazy
  // CSR build.
  if (g.num_vertices() > 0) (void)g.neighbors(0);
}

OpKind WorkloadGen::kind(std::uint64_t client, std::uint64_t op) const noexcept {
  const double u = rng_.uniform_real(client, op, 0);
  if (u < mix_.solve) return OpKind::kSolve;
  if (u < mix_.solve + mix_.probe_edge) return OpKind::kProbeEdge;
  return OpKind::kProbeRatio;
}

Vertex WorkloadGen::vertex(std::uint64_t client, std::uint64_t op) const noexcept {
  const std::uint64_t n = g_->num_vertices();
  if (n == 0) return 0;
  const std::uint64_t rank = zipf_.pick(rng_.uniform_real(client, op, 1));
  // Seeded rotation: a bijection on [0, n) that decouples popularity rank
  // from vertex numbering.
  return static_cast<Vertex>((rank + vertex_salt_ % n) % n);
}

Vertex WorkloadGen::neighbor_of(Vertex u, std::uint64_t client,
                                std::uint64_t op) const noexcept {
  const auto inc = g_->neighbors(u);
  if (inc.empty()) return kNoNeighbor;
  const std::uint64_t idx = rng_.bits(client, op, 2) % inc.size();
  return inc[idx].neighbor;
}

}  // namespace dp::serve
