#include "serve/service.hpp"

#include <algorithm>
#include <utility>

#include "core/checkpoint.hpp"
#include "util/error.hpp"

namespace dp::serve {

const char* response_status_name(ResponseStatus status) noexcept {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kDeadline: return "deadline";
    case ResponseStatus::kDegraded: return "degraded";
    case ResponseStatus::kStalled: return "stalled";
    case ResponseStatus::kShed: return "shed";
    case ResponseStatus::kNotFound: return "not_found";
    case ResponseStatus::kNotReady: return "not_ready";
    case ResponseStatus::kStaleResume: return "stale_resume";
    case ResponseStatus::kError: return "error";
  }
  return "?";
}

Response ResponseTicket::wait() const {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->ready; });
  return state_->response;
}

bool ResponseTicket::ready() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->ready;
}

void MatchingService::publish(
    const std::shared_ptr<ResponseTicket::State>& state, Response r) {
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->response = std::move(r);
    state->ready = true;
  }
  state->cv.notify_all();
}

MatchingService::MatchingService(ServiceOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : &steady_clock()) {
  if (options_.workers == 0) options_.workers = 1;
  slots_.reserve(options_.workers);
  workers_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  for (std::size_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
  if (options_.watchdog_poll_us > 0 && options_.watchdog_stall_us > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

MatchingService::~MatchingService() { shutdown(); }

std::size_t MatchingService::add_snapshot(Graph g) {
  return add_snapshot(std::move(g), Capacities{});
}

std::size_t MatchingService::add_snapshot(Graph g, Capacities b) {
  return add_snapshot(std::move(g), std::move(b), dyn::DynamicGraphOptions{});
}

std::size_t MatchingService::add_snapshot(Graph g, Capacities b,
                                          dyn::DynamicGraphOptions dopt) {
  auto snap = std::make_shared<Snapshot>();
  snap->dyn_graph = std::make_unique<dyn::DynamicGraph>(std::move(g), dopt);
  // Generation 0 materializes to the base graph unchanged, so existing
  // delta-free snapshots behave bitwise as before.
  snap->current = snap->dyn_graph->materialize();
  snap->generation = snap->dyn_graph->generation();
  snap->b = std::move(b);
  std::lock_guard<std::mutex> lock(snapshots_mu_);
  snapshots_.push_back(std::move(snap));
  return snapshots_.size() - 1;
}

std::shared_ptr<MatchingService::Snapshot> MatchingService::find_snapshot(
    std::size_t id) const {
  std::lock_guard<std::mutex> lock(snapshots_mu_);
  return id < snapshots_.size() ? snapshots_[id] : nullptr;
}

ResponseTicket MatchingService::submit(Request req) {
  ResponseTicket ticket;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
    if (is_solve_class(req.type) && req.resume != nullptr) ++stats_.resumed;
  }

  if (find_snapshot(req.snapshot) == nullptr) {
    Response r;
    r.status = ResponseStatus::kNotFound;
    r.detail = "unknown snapshot";
    publish(ticket.state_, std::move(r));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.not_found;
    return ticket;
  }

  const std::uint64_t now = clock().now_us();
  const std::uint64_t rel =
      req.deadline_us != 0 ? req.deadline_us : options_.default_deadline_us;
  const bool solve_class = is_solve_class(req.type);

  bool shed = false;
  std::uint64_t retry_after = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    const std::size_t budget =
        solve_class ? options_.solve_slots : options_.probe_slots;
    std::size_t& inflight = solve_class ? inflight_solve_ : inflight_probe_;
    if (stopping_ || queue_.size() >= options_.queue_capacity ||
        inflight >= budget) {
      shed = true;
      retry_after = options_.retry_after_base_us * (queue_.size() + 1);
    } else {
      ++inflight;
      Pending p;
      p.req = std::move(req);
      p.ticket = ticket.state_;
      p.enqueued_us = now;
      p.deadline_abs_us = rel != 0 ? now + rel : 0;
      queue_.push_back(std::move(p));
    }
  }
  if (shed) {
    Response r;
    r.status = ResponseStatus::kShed;
    r.retry_after_us = retry_after;
    r.detail = "admission control";
    publish(ticket.state_, std::move(r));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shed;
  } else {
    queue_cv_.notify_one();
  }
  return ticket;
}

void MatchingService::worker_loop(std::size_t worker) {
  WorkerSlot& slot = *slots_[worker];
  for (;;) {
    Pending p;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      p = std::move(queue_.front());
      queue_.pop_front();
    }

    const std::uint64_t start = clock().now_us();
    Response r;
    if (p.deadline_abs_us != 0 && start >= p.deadline_abs_us) {
      // Typed rejection: the budget lapsed while queued — never start a
      // solve the caller has already given up on.
      r.status = ResponseStatus::kDeadline;
      r.detail = "deadline expired in queue";
    } else {
      r = execute(p, slot);
    }
    r.queue_us = start - p.enqueued_us;
    r.exec_us = clock().now_us() - start;

    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      std::size_t& inflight =
          is_solve_class(p.req.type) ? inflight_solve_ : inflight_probe_;
      --inflight;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (r.certified) ++stats_.completed;
      switch (r.status) {
        case ResponseStatus::kOk: ++stats_.ok; break;
        case ResponseStatus::kDeadline: ++stats_.deadline_hits; break;
        case ResponseStatus::kDegraded: ++stats_.degraded; break;
        case ResponseStatus::kStalled: ++stats_.stalled; break;
        case ResponseStatus::kNotReady: ++stats_.not_ready; break;
        case ResponseStatus::kNotFound: ++stats_.not_found; break;
        default: break;
      }
    }
    publish(p.ticket, std::move(r));
  }
}

Response MatchingService::execute(const Pending& p, WorkerSlot& slot) {
  const auto snap = find_snapshot(p.req.snapshot);
  if (snap == nullptr) {
    Response r;
    r.status = ResponseStatus::kNotFound;
    r.detail = "unknown snapshot";
    return r;
  }
  if (is_solve_class(p.req.type)) return execute_solve(p, slot, snap);
  if (p.req.type == RequestType::kApplyDelta) {
    return execute_apply_delta(p, snap);
  }
  return execute_probe(p, snap);
}

Response MatchingService::execute_apply_delta(
    const Pending& p, const std::shared_ptr<Snapshot>& snap) {
  Response r;
  if (p.req.delta == nullptr) {
    r.status = ResponseStatus::kError;
    r.detail = "apply-delta request without a delta";
    return r;
  }
  try {
    std::lock_guard<std::mutex> lock(snap->mu);
    const dyn::DeltaSummary s = snap->dyn_graph->apply(*p.req.delta);
    snap->current = snap->dyn_graph->materialize();
    snap->generation = snap->dyn_graph->generation();
    r.status = ResponseStatus::kOk;
    r.generation = s.generation;
    r.detail = "inserted=" + std::to_string(s.inserted) +
               " removed=" + std::to_string(s.removed) +
               " duplicate_inserts=" + std::to_string(s.duplicate_inserts) +
               " phantom_removes=" + std::to_string(s.phantom_removes);
  } catch (const SolverError& err) {
    // Typed rejection (e.g. endpoint out of range): the snapshot is
    // untouched and the worker survives.
    r.status = ResponseStatus::kError;
    r.detail = err.what();
    return r;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.deltas_applied;
  return r;
}

Response MatchingService::execute_solve(
    const Pending& p, WorkerSlot& slot,
    const std::shared_ptr<Snapshot>& snap) {
  // Pin the snapshot's current materialization (and warm handle / pending
  // delta for kResolve) under the snapshot mutex; the solve itself runs on
  // the pinned immutable Graph, never racing a concurrent apply-delta.
  std::shared_ptr<const Graph> graph;
  std::shared_ptr<const core::WarmStart> warm;
  dyn::EdgeDelta delta;
  std::uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(snap->mu);
    graph = snap->current;
    generation = snap->generation;
    if (p.req.type == RequestType::kResolve && snap->warm != nullptr) {
      warm = snap->warm;
      delta = snap->dyn_graph->delta_since(warm->graph_generation);
    }
  }

  if (p.req.resume != nullptr &&
      p.req.resume->graph_generation != generation) {
    // Typed rejection BEFORE any solver work: the checkpoint was minted
    // against a graph that a delta has since mutated; resuming its round
    // state would silently mix two graphs. (Solver::solve re-checks this
    // identity field, so the guard holds at both layers.)
    Response r;
    r.status = ResponseStatus::kStaleResume;
    r.generation = generation;
    r.detail = "resume checkpoint generation " +
               std::to_string(p.req.resume->graph_generation) +
               " predates snapshot generation " + std::to_string(generation);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.stale_resumes;
    return r;
  }

  core::SolverOptions opt = options_.solver;
  // One solve per worker on the service's own in-memory substrate — a
  // caller-supplied substrate cannot be shared by concurrent sessions.
  opt.substrate = nullptr;
  if (p.req.seed != 0) opt.seed = p.req.seed;
  opt.cancel = CancelToken::make();
  opt.deadline = p.deadline_abs_us != 0
                     ? Deadline{clock_, p.deadline_abs_us}
                     : Deadline{};
  opt.resume_from = p.req.resume.get();
  opt.graph_generation = generation;
  // Round progress feeds the watchdog; the hook never interrupts.
  opt.on_checkpoint = [this, &slot](const core::RoundCheckpoint&) {
    slot.last_progress_us.store(clock().now_us(), std::memory_order_relaxed);
    return true;
  };

  {
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.token = opt.cancel;
  }
  slot.watchdog_fired.store(false, std::memory_order_relaxed);
  slot.last_progress_us.store(clock().now_us(), std::memory_order_relaxed);
  slot.active.store(true, std::memory_order_release);

  Response r;
  try {
    const bool with_caps =
        p.req.type == RequestType::kBMatch && !snap->b.empty();
    core::Solver solver =
        with_caps ? core::Solver(*graph, snap->b, opt)
                  : core::Solver(*graph, opt);
    core::SolverResult result =
        (p.req.type == RequestType::kResolve && warm != nullptr)
            ? solver.resolve(*warm, delta)
            : solver.solve();

    r.solver_status = result.status;
    r.generation = generation;
    r.warm_resolve = result.warm_resolve;
    if (p.req.type == RequestType::kResolve) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (result.warm_resolve) {
        ++stats_.resolves_warm;
      } else {
        ++stats_.resolves_scratch;
      }
    }
    r.certified = true;  // the solver's answer is always certificate-backed
    r.value = result.value;
    r.certified_ratio = result.certified_ratio;
    r.lambda = result.lambda;
    r.rounds_executed = result.outer_rounds;
    r.checkpoint = result.checkpoint;
    r.detail = result.fault_detail;
    if (p.req.type == RequestType::kResolve && r.detail.empty()) {
      if (warm == nullptr) {
        r.detail = "no warm handle; full solve";
      } else if (!result.resolve_fallback.empty()) {
        r.detail = "fallback: " + result.resolve_fallback;
      }
    }
    switch (result.status) {
      case core::SolverStatus::kComplete:
      case core::SolverStatus::kInterrupted:
        r.status = ResponseStatus::kOk;
        break;
      case core::SolverStatus::kDegraded:
        r.status = ResponseStatus::kDegraded;
        break;
      case core::SolverStatus::kDeadline:
        r.status = ResponseStatus::kDeadline;
        break;
      case core::SolverStatus::kCancelled:
        // The service's only cancel source is the watchdog.
        r.status = slot.watchdog_fired.load(std::memory_order_relaxed)
                       ? ResponseStatus::kStalled
                       : ResponseStatus::kDeadline;
        break;
    }

    if (r.status == ResponseStatus::kOk) {
      // Publish the certified solution for probes: packed sorted edge
      // keys of the positive-multiplicity support.
      auto art = std::make_shared<Artifact>();
      const auto& edges = graph->edges();
      for (EdgeId e = 0; e < result.b_matching.num_edges(); ++e) {
        if (result.b_matching.multiplicity(e) > 0) {
          art->matched_keys.push_back(edge_key(edges[e].u, edges[e].v));
        }
      }
      std::sort(art->matched_keys.begin(), art->matched_keys.end());
      art->value = result.value;
      art->certified_ratio = result.certified_ratio;
      art->lambda = result.lambda;
      std::lock_guard<std::mutex> lock(snap->mu);
      art->version = (snap->latest ? snap->latest->version : 0) + 1;
      snap->latest = std::move(art);
      // Retain the newest warm-start handle for future kResolve requests —
      // never let a solve for an older generation clobber a newer handle.
      if (result.warm != nullptr &&
          (snap->warm == nullptr ||
           snap->warm->graph_generation <= generation)) {
        snap->warm = result.warm;
      }
    }
  } catch (const SolverError& err) {
    // Typed rejection: a malformed request (e.g. a resume handle from a
    // different snapshot/configuration) must not kill the worker.
    r.status = ResponseStatus::kError;
    r.detail = err.what();
  }

  slot.active.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.token = CancelToken{};
  }
  return r;
}

Response MatchingService::execute_probe(
    const Pending& p, const std::shared_ptr<Snapshot>& snap) {
  std::shared_ptr<const Artifact> art;
  {
    std::lock_guard<std::mutex> lock(snap->mu);
    art = snap->latest;
  }
  Response r;
  if (art == nullptr) {
    r.status = ResponseStatus::kNotReady;
    r.retry_after_us = options_.retry_after_base_us;
    r.detail = "no certified solution yet";
    return r;
  }
  r.status = ResponseStatus::kOk;
  r.certified = true;
  r.value = art->value;
  r.certified_ratio = art->certified_ratio;
  r.lambda = art->lambda;
  if (p.req.type == RequestType::kProbeEdge) {
    r.edge_in_matching =
        std::binary_search(art->matched_keys.begin(), art->matched_keys.end(),
                           edge_key(p.req.u, p.req.v));
  }
  return r;
}

std::size_t MatchingService::watchdog_sweep() {
  if (options_.watchdog_stall_us == 0) return 0;
  const std::uint64_t now = clock().now_us();
  std::size_t cancelled = 0;
  for (auto& slot_ptr : slots_) {
    WorkerSlot& slot = *slot_ptr;
    if (!slot.active.load(std::memory_order_acquire)) continue;
    const std::uint64_t last =
        slot.last_progress_us.load(std::memory_order_relaxed);
    if (now < last || now - last < options_.watchdog_stall_us) continue;
    std::lock_guard<std::mutex> lock(slot.mu);
    if (!slot.active.load(std::memory_order_acquire)) continue;
    if (!slot.token.armed() || slot.token.cancelled()) continue;
    slot.watchdog_fired.store(true, std::memory_order_relaxed);
    slot.token.cancel();
    ++cancelled;
  }
  return cancelled;
}

void MatchingService::watchdog_loop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (stopping_) return;
    }
    clock().sleep_us(options_.watchdog_poll_us);
    watchdog_sweep();
  }
}

void MatchingService::shutdown() {
  std::deque<Pending> drained;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
    drained.swap(queue_);
    for (const Pending& p : drained) {
      std::size_t& inflight =
          is_solve_class(p.req.type) ? inflight_solve_ : inflight_probe_;
      --inflight;
    }
  }
  queue_cv_.notify_all();
  for (Pending& p : drained) {
    Response r;
    r.status = ResponseStatus::kShed;
    r.detail = "service shutting down";
    publish(p.ticket, std::move(r));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shed;
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (watchdog_.joinable()) watchdog_.join();
}

ServiceStats MatchingService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::size_t MatchingService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

}  // namespace dp::serve
