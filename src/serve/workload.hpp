#pragma once
// YCSB-style workload generation for the matching service.
//
// Serving benchmarks need *skewed, reproducible* request streams: real
// query mixes concentrate on popular vertices, and the bench must replay
// the identical stream across worker counts so latency comparisons are
// apples-to-apples. Two pieces:
//
//  - ZipfianChooser: the YCSB zipfian generator (Gray et al.'s
//    transformation) over ranks [0, n), with the harmonic normalizer
//    zeta(n, theta) memoized per theta behind a mutex — extending an
//    existing prefix sum instead of recomputing when n grows, the standard
//    YCSB cache trick.
//  - WorkloadGen: a PURE request stream. Operation kind, popular vertex
//    and probed incident edge for (client, op) are counter-based functions
//    of the seed (util/rng's CounterRng), so any client thread can
//    generate its own slice of the stream in any order and the aggregate
//    workload is bitwise reproducible.

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dp::serve {

/// Harmonic normalizer zeta(n, theta) = sum_{i=1..n} 1/i^theta, memoized
/// per theta (prefix-extended when n grows). Thread-safe.
double zipfian_zeta(std::uint64_t n, double theta);

/// YCSB zipfian generator over ranks [0, n): rank 0 is the most popular.
/// pick() is a pure function of the uniform input, so the chooser is
/// immutable after construction and safe to share across threads.
class ZipfianChooser {
 public:
  ZipfianChooser(std::uint64_t n, double theta = 0.99);

  std::uint64_t size() const noexcept { return n_; }

  /// Rank for a uniform draw u in [0, 1).
  std::uint64_t pick(double u) const noexcept;

 private:
  std::uint64_t n_ = 1;
  double theta_ = 0;
  double alpha_ = 0;
  double zetan_ = 0;
  double eta_ = 0;
  double half_pow_theta_ = 0;
};

/// One generated operation.
enum class OpKind : std::uint8_t { kSolve, kProbeEdge, kProbeRatio };

/// Operation mix (fractions; normalized at use).
struct WorkloadMix {
  double solve = 0.05;
  double probe_edge = 0.65;
  double probe_ratio = 0.30;
};

/// Sentinel for "popular vertex has no incident edge" (degree-0 probe —
/// the service answers it as a miss).
inline constexpr Vertex kNoNeighbor = ~Vertex{0};

/// The pure request stream over a fixed graph.
class WorkloadGen {
 public:
  /// `g` must outlive the generator (adjacency is built eagerly so later
  /// concurrent reads never race the lazy build).
  WorkloadGen(std::uint64_t seed, const Graph& g, WorkloadMix mix,
              double theta = 0.99);

  /// Operation kind for (client, op).
  OpKind kind(std::uint64_t client, std::uint64_t op) const noexcept;

  /// Zipfian-popular vertex for (client, op). The popularity rank is
  /// scrambled into a vertex id by a fixed seeded bijection so the hot set
  /// is not just the lowest-numbered vertices.
  Vertex vertex(std::uint64_t client, std::uint64_t op) const noexcept;

  /// A uniformly random incident edge's other endpoint at `u`, or
  /// kNoNeighbor when u has degree 0.
  Vertex neighbor_of(Vertex u, std::uint64_t client,
                     std::uint64_t op) const noexcept;

 private:
  const Graph* g_;
  CounterRng rng_;
  WorkloadMix mix_;  // normalized
  ZipfianChooser zipf_;
  std::uint64_t vertex_salt_ = 0;
};

}  // namespace dp::serve
