#pragma once
// Overload-robust matching service — the serving layer over the anytime
// solver.
//
// A MatchingService owns immutable graph snapshots and answers concurrent
// requests from a bounded worker pool:
//
//   kSolve / kBMatch   run the dual-primal solver on a snapshot (unit or
//                      stored capacities), optionally warm-resuming from a
//                      RoundCheckpoint carried by the request;
//   kApplyDelta        mutate a snapshot's dynamic graph with a batched
//                      edge delta (insert/delete/reweight); bumps the
//                      snapshot's generation counter;
//   kResolve           incremental re-solve after deltas: seeds the solver
//                      from the snapshot's retained warm-start handle
//                      (Solver::resolve) when one exists, full solve
//                      otherwise;
//   kProbeEdge         is edge (u, v) in the snapshot's latest certified
//                      matching?
//   kProbeRatio        the latest certified ratio/value for a snapshot.
//
// Dynamic snapshots: every snapshot wraps its graph in a dyn::DynamicGraph.
// Deltas apply under the snapshot mutex; solve-class requests pin the
// current canonical materialization (a shared_ptr<const Graph>) for the
// whole solve, so an apply racing a solve never mutates the graph a solver
// is reading — the solve just answers for the generation it pinned. A
// resume checkpoint minted before a delta is rejected typed (kStaleResume)
// instead of silently resuming against a mutated graph.
//
// Robustness model (the ISSUE's three layers above the solver's own
// cancellation support):
//
//  - Admission control: a bounded queue plus per-class in-flight budgets
//    (solve-class vs probe-class). A request that would exceed either is
//    rejected INLINE with kShed and a retry-after hint — submit() never
//    blocks the caller, which is what keeps the service stable past
//    saturation (load shedding, not queue collapse).
//  - Deadlines: each request carries a relative budget (or inherits the
//    service default), armed as an absolute Deadline at submit time so
//    queueing delay counts against it. A request whose deadline lapses in
//    the queue is rejected typed (kDeadline, no solve); one that expires
//    mid-solve returns the solver's ANYTIME result — best-so-far primal,
//    exactly certified ratio, checkpoint for warm-resume.
//  - Watchdog: a sweep cancels in-flight solves that have stopped making
//    round progress for watchdog_stall_us (progress = completed rounds,
//    reported through the solver's on_checkpoint hook). The cancelled
//    solve still returns its anytime result, surfaced as kStalled.
//
// Certification invariant (bench_serve gate a): every response is either a
// typed rejection (kShed / kNotFound / kNotReady / queue-expired kDeadline)
// or carries a certified_ratio computed from a rigorous dual bound — the
// service never invents a number the solver did not certify.
//
// All time flows through the Clock seam (util/clock): tests drive
// deadlines, stalls and latency stamps with a FakeClock and call
// watchdog_sweep() manually instead of sleeping.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/solver.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "graph/graph.hpp"
#include "matching/matching.hpp"
#include "util/cancel.hpp"
#include "util/clock.hpp"
#include "util/hash.hpp"

namespace dp::serve {

enum class RequestType : std::uint8_t {
  kSolve,       // full solve, unit capacities
  kBMatch,      // full solve on the snapshot's stored capacities
  kApplyDelta,  // apply a batched edge delta to the snapshot's graph
  kResolve,     // incremental re-solve from the retained warm-start handle
  kProbeEdge,   // membership of (u, v) in the latest certified matching
  kProbeRatio,  // latest certified ratio / value
};

enum class ResponseStatus : std::uint8_t {
  kOk,        // completed; certified
  kDeadline,  // deadline expired: anytime result (or typed queue rejection)
  kDegraded,  // substrate fault budget exhausted: anytime result
  kStalled,   // watchdog cancelled a non-progressing solve: anytime result
  kShed,      // admission control rejected the request (typed; retry_after)
  kNotFound,  // unknown snapshot id (typed)
  kNotReady,  // probe before any certified solve exists (typed; retry_after)
  kStaleResume,  // resume checkpoint predates an applied delta (typed)
  kError,     // solver rejected the request (typed; e.g. bad resume handle)
};

const char* response_status_name(ResponseStatus status) noexcept;

/// True when the status CAN carry a certified answer. kDeadline is
/// ambiguous by design — a mid-solve expiry returns a certified anytime
/// result, a queue expiry is a typed rejection — so the authoritative
/// discriminator is Response::certified, not the status.
inline bool may_certify(ResponseStatus s) noexcept {
  return s == ResponseStatus::kOk || s == ResponseStatus::kDegraded ||
         s == ResponseStatus::kStalled || s == ResponseStatus::kDeadline;
}

struct Request {
  RequestType type = RequestType::kSolve;
  std::size_t snapshot = 0;
  /// Relative wall budget in us; 0 inherits the service default (0 there
  /// too = no deadline). Armed as an absolute instant at submit.
  std::uint64_t deadline_us = 0;
  /// Warm-resume handle from a previous anytime response (same snapshot
  /// and solver configuration). Rejected typed (kStaleResume) if a delta
  /// landed on the snapshot after the checkpoint was minted.
  std::shared_ptr<const core::RoundCheckpoint> resume;
  /// Batched edge delta (kApplyDelta).
  std::shared_ptr<const dyn::EdgeDelta> delta;
  /// Probe endpoints (kProbeEdge).
  Vertex u = 0;
  Vertex v = 0;
  /// Solver seed override (0 = the service's base seed).
  std::uint64_t seed = 0;
};

struct Response {
  ResponseStatus status = ResponseStatus::kOk;
  /// True iff value/certified_ratio/lambda are a certificate-backed answer
  /// (possibly anytime). False on every typed rejection.
  bool certified = false;
  /// The solver's own verdict for solve-class requests (kComplete for
  /// probes answered from an artifact).
  core::SolverStatus solver_status = core::SolverStatus::kComplete;
  double value = 0;
  double certified_ratio = 0;
  double lambda = 0;
  std::size_t rounds_executed = 0;
  bool edge_in_matching = false;
  /// Snapshot generation the answer applies to (kApplyDelta: the new
  /// generation after the delta; solve-class: the generation solved).
  std::uint64_t generation = 0;
  /// True when a kResolve was answered by the warm-started incremental
  /// path rather than a from-scratch solve.
  bool warm_resolve = false;
  /// For kShed / kNotReady: suggested backoff before resubmitting.
  std::uint64_t retry_after_us = 0;
  /// Warm-resume handle when a solve stopped early (deadline / stall /
  /// degraded) with at least one completed round.
  std::shared_ptr<const core::RoundCheckpoint> checkpoint;
  std::uint64_t queue_us = 0;  // time spent queued
  std::uint64_t exec_us = 0;   // time spent executing
  std::string detail;
};

/// Future-like handle for one submitted request. wait() blocks until the
/// worker (or inline rejection) published the response.
class ResponseTicket {
 public:
  Response wait() const;
  bool ready() const;

 private:
  friend class MatchingService;
  struct State {
    mutable std::mutex mu;
    mutable std::condition_variable cv;
    bool ready = false;
    Response response;
  };
  std::shared_ptr<State> state_ = std::make_shared<State>();
};

struct ServiceOptions {
  /// Worker sessions answering requests.
  std::size_t workers = 1;
  /// Bounded request queue; submit() sheds beyond this.
  std::size_t queue_capacity = 64;
  /// Per-class in-flight budgets (queued + executing). Solve-class =
  /// kSolve/kBMatch; probe-class = the probes. 0 = class disabled.
  std::size_t solve_slots = 8;
  std::size_t probe_slots = 64;
  /// Default relative deadline for requests that carry none (0 = none).
  std::uint64_t default_deadline_us = 0;
  /// Watchdog: cancel a solve with no completed round for this long
  /// (0 = watchdog off).
  std::uint64_t watchdog_stall_us = 0;
  /// Background watchdog period (0 = no thread; call watchdog_sweep()
  /// manually — the deterministic mode tests use with a FakeClock).
  std::uint64_t watchdog_poll_us = 0;
  /// Base of the shed retry-after hint (scaled by queue depth).
  std::uint64_t retry_after_base_us = 1000;
  /// Time source (nullptr = util/clock's steady clock).
  const Clock* clock = nullptr;
  /// Base solver configuration for solve-class requests. The service owns
  /// per-request cancel/deadline/resume/on_checkpoint wiring; those fields
  /// of this base are ignored.
  core::SolverOptions solver;
};

/// Aggregate counters (monotonic; snapshot via stats()).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;  // certified responses (kOk + anytime)
  std::uint64_t ok = 0;
  std::uint64_t deadline_hits = 0;  // queue-expired + mid-solve
  std::uint64_t degraded = 0;
  std::uint64_t stalled = 0;
  std::uint64_t not_found = 0;
  std::uint64_t not_ready = 0;
  std::uint64_t resumed = 0;  // solve-class requests with a resume handle
  std::uint64_t deltas_applied = 0;   // kApplyDelta requests answered kOk
  std::uint64_t resolves_warm = 0;    // kResolve answered by the warm path
  std::uint64_t resolves_scratch = 0;  // kResolve that fell back to scratch
  std::uint64_t stale_resumes = 0;    // typed kStaleResume rejections
};

class MatchingService {
 public:
  explicit MatchingService(ServiceOptions options);
  ~MatchingService();

  MatchingService(const MatchingService&) = delete;
  MatchingService& operator=(const MatchingService&) = delete;

  /// Register a snapshot; returns its id. Safe while serving. The graph
  /// becomes the generation-0 base of a dynamic graph (delta-log backing
  /// by default; pass DynamicGraphOptions to choose sketch backing).
  std::size_t add_snapshot(Graph g);
  std::size_t add_snapshot(Graph g, Capacities b);
  std::size_t add_snapshot(Graph g, Capacities b,
                           dyn::DynamicGraphOptions dopt);

  /// Non-blocking admission: either enqueues the request (ticket resolves
  /// when a worker answers) or resolves the ticket inline with a typed
  /// rejection (kShed / kNotFound).
  ResponseTicket submit(Request req);

  /// One watchdog pass: cancel in-flight solves whose last completed
  /// round is older than watchdog_stall_us. Returns how many were
  /// cancelled. Runs from the background thread when watchdog_poll_us > 0;
  /// tests with a FakeClock call it directly.
  std::size_t watchdog_sweep();

  /// Drain: reject queued requests (kShed), let in-flight solves finish,
  /// join workers. Idempotent; the destructor calls it.
  void shutdown();

  ServiceStats stats() const;
  std::size_t queue_depth() const;

 private:
  /// The latest certified solution of a snapshot, swapped in atomically
  /// after each completed solve; probes read it lock-free-by-copy.
  struct Artifact {
    std::vector<std::uint64_t> matched_keys;  // sorted (min<<32)|max
    double value = 0;
    double certified_ratio = 0;
    double lambda = 0;
    std::uint64_t version = 0;
  };

  struct Snapshot {
    /// The mutable dynamic graph (delta log or sketch backed). Guarded by
    /// mu — DynamicGraph is not internally synchronized.
    std::unique_ptr<dyn::DynamicGraph> dyn_graph;
    Capacities b;  // empty = unit capacities only
    mutable std::mutex mu;
    /// Pinned canonical materialization of dyn_graph at `generation`.
    /// Solve-class requests copy the shared_ptr under mu and read the
    /// Graph lock-free for the whole solve.
    std::shared_ptr<const Graph> current;
    std::uint64_t generation = 0;
    std::shared_ptr<const Artifact> latest;
    /// Warm-start handle of the newest certified solve (seeds kResolve).
    std::shared_ptr<const core::WarmStart> warm;
  };

  struct Pending {
    Request req;
    std::shared_ptr<ResponseTicket::State> ticket;
    std::uint64_t enqueued_us = 0;
    std::uint64_t deadline_abs_us = 0;  // 0 = none
  };

  /// Per-worker in-flight slot the watchdog scans.
  struct WorkerSlot {
    std::atomic<bool> active{false};
    std::atomic<std::uint64_t> last_progress_us{0};
    std::atomic<bool> watchdog_fired{false};
    std::mutex mu;       // guards token
    CancelToken token;   // valid while active
  };

  void worker_loop(std::size_t worker);
  void watchdog_loop();
  Response execute(const Pending& p, WorkerSlot& slot);
  Response execute_solve(const Pending& p, WorkerSlot& slot,
                         const std::shared_ptr<Snapshot>& snap);
  Response execute_probe(const Pending& p,
                         const std::shared_ptr<Snapshot>& snap);
  Response execute_apply_delta(const Pending& p,
                               const std::shared_ptr<Snapshot>& snap);
  std::shared_ptr<Snapshot> find_snapshot(std::size_t id) const;
  static void publish(const std::shared_ptr<ResponseTicket::State>& state,
                      Response r);
  static bool is_solve_class(RequestType t) noexcept {
    return t == RequestType::kSolve || t == RequestType::kBMatch ||
           t == RequestType::kResolve;
  }

  const Clock& clock() const noexcept { return *clock_; }

  ServiceOptions options_;
  const Clock* clock_;

  mutable std::mutex snapshots_mu_;
  std::vector<std::shared_ptr<Snapshot>> snapshots_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  std::size_t inflight_solve_ = 0;  // queued + executing, solve-class
  std::size_t inflight_probe_ = 0;

  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::thread> workers_;
  std::thread watchdog_;

  mutable std::mutex stats_mu_;
  ServiceStats stats_;
};

}  // namespace dp::serve
