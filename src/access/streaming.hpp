#pragma once
// Semi-streaming access substrate. Each round iteration makes exactly ONE
// sequential pass over the edge stream:
//
//   - multiplier_sweep consumes the arrivals in stream order, handing each
//     retained edge to the kernel at its retained index (and charges the
//     round's single pass);
//   - the draw re-walks the same (already charged) pass in a per-round
//     SHUFFLED arrival order — demonstrating that the counter-based masks
//     are arrival-order-invariant — and stores only the sampled edges.
//
// Between passes the algorithm's model state is the stored sample
// (O(n^{1+1/p}) incidences, metered via store/release) plus the O(n L)
// dual state; tests gate peak stored edges = o(m). The attribute table of
// the base class is simulation working memory, not model state.
//
// Fault tolerance (util/fault): when a FaultPlan is installed, each pass
// can die mid-pass at a deterministic arrival offset (FaultSite::
// kStreamPass; phase 0 = the multiplier sweep, phase 1 = the draw's
// physical re-walk). A failed pass is retried from the start — safe
// because the kernel fills and the draw masks are pure per index — with
// every physical re-walk charged as an extra pass and counted as a fault
// on the meter. An exhausted retry budget propagates the SubstrateFault
// (the solver then degrades gracefully).

#include <memory>

#include "access/substrate.hpp"
#include "stream/edge_stream.hpp"

namespace dp::access {

class StreamingSubstrate final : public Substrate {
 public:
  StreamingSubstrate() = default;

  SubstrateKind kind() const noexcept override {
    return SubstrateKind::kStreaming;
  }
  const char* name() const noexcept override { return "streaming"; }

  void multiplier_sweep(const SweepKernel& kernel) override;

  const core::SamplingRound& draw(const std::vector<double>& prob,
                                  std::size_t t, std::uint64_t round,
                                  std::uint64_t seed) override;

 protected:
  void on_bind() override;

 private:
  // The stream is unmetered: the substrate charges its meter explicitly so
  // the draw's physical re-walk of the round's pass is not double-counted.
  std::unique_ptr<EdgeStream> stream_;
  std::vector<std::uint32_t> retained_of_;  // stream position -> retained idx
  core::SamplingEngine engine_;             // sequential (no pool)
  std::uint64_t pass_ordinal_ = 0;          // logical passes this solve
};

}  // namespace dp::access
