#pragma once
// Semi-streaming access substrate. Each round iteration makes exactly ONE
// sequential pass over the edge stream:
//
//   - multiplier_sweep consumes the arrivals in stream order, handing each
//     retained edge to the kernel at its retained index (and charges the
//     round's single pass);
//   - the draw re-walks the same (already charged) pass in a per-round
//     SHUFFLED arrival order — demonstrating that the counter-based masks
//     are arrival-order-invariant — and stores only the sampled edges.
//
// Between passes the algorithm's model state is the stored sample
// (O(n^{1+1/p}) incidences, metered via store/release) plus the O(n L)
// dual state; tests gate peak stored edges = o(m).
//
// Edge sources: this is the one backend whose discipline is genuinely
// sequential, so it accepts a FILE-BACKED source (stream/edge_file). In
// file mode the substrate runs TABLE-FREE: passes decode checksummed
// blocks through the file's async prefetcher (IO bytes, prefetch hits and
// stalls land on this substrate's meter), each retained arrival is handed
// to the kernel as a one-element base-relative span built from the decoded
// record, and stored-sample attributes live in a per-round cache of
// exactly the drawn union — so the resident edge-attribute state is the
// two IO block buffers plus the o(m) stored sample, never the m-edge
// input. In graph mode behaviour is unchanged (table-backed, RAM passes).
//
// Fault tolerance (util/fault): when a FaultPlan is installed, each pass
// can die mid-pass at a deterministic arrival offset (FaultSite::
// kStreamPass; phase 0 = the multiplier sweep, phase 1 = the draw's
// physical re-walk). On the file backend the offset is aligned DOWN to a
// block boundary, so the fault keys by block and a kill/resume lands at an
// identical decode point every attempt. A failed pass is retried from the
// start — safe because the kernel fills and the draw masks are pure per
// index — with every physical re-walk charged as an extra pass and counted
// as a fault on the meter. An exhausted retry budget propagates the
// SubstrateFault (the solver then degrades gracefully).

#include <cstdint>
#include <memory>
#include <vector>

#include "access/substrate.hpp"
#include "stream/edge_stream.hpp"

namespace dp::access {

class StreamingSubstrate final : public Substrate {
 public:
  StreamingSubstrate() = default;

  SubstrateKind kind() const noexcept override {
    return SubstrateKind::kStreaming;
  }
  const char* name() const noexcept override { return "streaming"; }

  bool accepts_file_source() const noexcept override { return true; }

  void multiplier_sweep(const SweepKernel& kernel) override;

  const core::SamplingRound& draw(const std::vector<double>& prob,
                                  std::size_t t, std::uint64_t round,
                                  std::uint64_t seed) override;

  RetainedEdge stored_attr(std::uint32_t idx) const override;

  void fetch_edges(const std::uint32_t* idxs, std::size_t count,
                   Edge* out) const override;

  void materialize_union(const std::vector<std::uint32_t>& indices,
                         std::vector<EdgeId>& ids,
                         std::vector<Edge>& edges) const override;

  void release_stored(std::size_t k) override;

 protected:
  bool materializes_table() const noexcept override {
    return !source_.file_backed();
  }
  void on_bind() override;

 private:
  /// Attributes of retained index `idx` straight from the file record +
  /// level graph (no cache). Const and race-free: safe from the offline
  /// job thread concurrently with an in-flight pass.
  RetainedEdge load_attr(std::uint32_t idx) const;

  /// File mode keys faults by BLOCK: align the arrival offset down to a
  /// block boundary so every attempt dies at the same decode point.
  std::uint64_t align_fault(std::uint64_t fail_at) const noexcept;

  // The stream is unmetered: the substrate charges its meter explicitly so
  // the draw's physical re-walk of the round's pass is not double-counted.
  // (In file mode the FILE meters IO bytes / prefetch hits / stalls — those
  // are physical-IO quantities of each walk, not per-round model charges.)
  std::unique_ptr<EdgeStream> stream_;
  std::vector<std::uint32_t> retained_of_;  // stream position -> retained idx
  core::SamplingEngine engine_;             // sequential (no pool)
  std::uint64_t pass_ordinal_ = 0;          // logical passes this solve

  // File-mode per-round stored-attribute cache: exactly the drawn union,
  // sorted by retained index (budget-charged; dropped at release_stored).
  // Replaced only on the main pipeline thread between rounds — the
  // concurrently running offline job never reads it (materialize_union is
  // cache-free in file mode).
  std::vector<std::uint32_t> cache_idx_;
  std::vector<RetainedEdge> cache_attr_;
};

}  // namespace dp::access
