#pragma once
// Substrate-agnostic access layer — the "access to data" axis of the paper.
//
// Algorithm 2 is ONE dual-primal algorithm across access models: random
// access (RAM), semi-streaming passes, and MapReduce rounds. Everything the
// round loop reads from the *input* goes through a Substrate:
//
//   - the per-round multiplier sweep over the retained edges (the ratio
//     kernel behind lambda and the Theorem 5 promise multipliers),
//   - the batched sampling draw of the t deferred sparsifiers
//     (core/sampling's counter-based masks), and
//   - the materialization of the stored union handed to the offline
//     re-solve.
//
// Each backend implements those operations under its own access discipline
// and meters the quantities its model constrains (ResourceMeter): the
// in-memory backend charges one round + one pass per draw (the RAM
// reference), the streaming backend charges exactly ONE pass per round
// iteration (multipliers, probabilities and the draw all ride the same
// pass; between passes only the sampled edges count as stored state), and
// the MapReduce backend executes the draw as a real simulator round
// (mappers evaluate masks over input shards, one reducer per sparsifier
// under the O(n^{1+1/p}) memory cap) so rounds, shuffle volume and the
// reducer cap are enforced, not just reported.
//
// Edge sources: bind() always receives the solve's Graph/LevelGraph (the
// simulation harness the solver itself runs on), but the PASS DATA PLANE a
// backend reads can be either that in-RAM graph or a binary edge file
// (stream/edge_file), installed via attach_source(). Only backends whose
// access discipline is genuinely sequential can serve a file-backed source
// (accepts_file_source(): the streaming backend); attaching one to a
// random-access backend is a typed ConfigError, never a crash. A
// file-backed streaming substrate does NOT materialize the retained
// attribute table — passes decode blocks through the prefetcher and
// stored-sample attributes live in a per-round cache — so its resident
// edge state stays o(m).
//
// Memory budget: set_memory_budget() caps the RESIDENT EDGE-ATTRIBUTE
// state of the access layer — full per-edge attribute records held in
// process memory (the materialized attribute table, IO block buffers, the
// stored-sample attribute cache), metered via hold/release_resident in
// edge units. Exceeding the cap is a typed ConfigError at the charge
// point, not a silent RAM spike. The table and its Edge view describe the
// same records and are charged once per retained edge.
//
// Determinism contract: every per-edge quantity is a pure function of the
// edge's retained index and solver state, reductions are exact (min/max),
// and the draw masks are pure functions of (seed, round, q, idx) — so for
// a fixed seed the full SolverResult (value, lambda, beta, certified
// ratio, history, stored counts) is bitwise identical across all three
// substrates and across thread counts. Only the meters differ, because
// the models count different things.
//
// Simulation note: the solver-side Graph, LevelGraph and per-edge scalar
// arrays (multiplier ratios, probabilities) are working memory of the
// SIMULATION. The model's "space" is the stored-edge meter — what the
// algorithm retains between accesses — which tests gate at o(m); the
// budget above additionally makes the access layer's physical residency a
// first-class, enforceable quantity.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/sampling.hpp"
#include "core/weight_levels.hpp"
#include "graph/graph.hpp"
#include "stream/edge_file.hpp"
#include "util/accounting.hpp"
#include "util/cancel.hpp"
#include "util/fault.hpp"

namespace dp {
class ThreadPool;
}

namespace dp::access {

enum class SubstrateKind { kInMemory, kStreaming, kMapReduce };

/// Static attributes of one retained edge, in retained order.
struct RetainedEdge {
  EdgeId id = 0;  // full-graph edge id
  Vertex u = 0;
  Vertex v = 0;
  double w = 0;        // original weight
  std::int32_t level = 0;  // LevelGraph level (>= 0 for retained edges)
};

/// One access sweep's kernel: fill elementwise outputs for the retained
/// indices [lo, hi), reading the attribute span BASE-RELATIVE: `edges`
/// points at the record for index `lo`, so the kernel reads
/// edges[idx - lo]. Must be pure per index — backends are free to split,
/// reorder or parallelize the ranges, and the file-backed pass hands each
/// arrival a one-element span decoded from the current block (no table).
using SweepKernel =
    std::function<void(std::size_t lo, std::size_t hi,
                       const RetainedEdge* edges)>;

class Substrate {
 public:
  Substrate() = default;
  virtual ~Substrate() = default;

  Substrate(const Substrate&) = delete;
  Substrate& operator=(const Substrate&) = delete;

  virtual SubstrateKind kind() const noexcept = 0;
  virtual const char* name() const noexcept = 0;

  /// Whether this backend's access discipline can serve a file-backed
  /// edge source (sequential passes only). Default: no.
  virtual bool accepts_file_source() const noexcept { return false; }

  /// Install the pass data plane for subsequent solves. A default
  /// (unattached) source means "read the bound Graph". Attaching a
  /// file-backed source to a backend that needs random access throws
  /// ConfigError immediately. bind() validates that a file source
  /// describes the same graph (n, m) as the bound one.
  void attach_source(stream::EdgeSource source);
  const stream::EdgeSource& source() const noexcept { return source_; }

  /// Cap (in edge units) on the access layer's resident edge-attribute
  /// records; 0 = unlimited. Enforced wherever residency is charged —
  /// table materialization at bind(), IO buffers, stored-attribute
  /// caches — by throwing ConfigError. The solver installs
  /// SolverOptions::memory_budget_edges here before bind().
  void set_memory_budget(std::size_t edges) noexcept { budget_ = edges; }
  std::size_t memory_budget() const noexcept { return budget_; }

  /// Attach one solve: materialize the retained-edge attribute table
  /// (unless this backend runs table-free, see materializes_table) and
  /// reset the per-solve accounting. `pool`/`grain` follow the solver's
  /// fixed-chunk determinism contract (outputs never depend on either).
  /// One solve drives a substrate at a time.
  void bind(const Graph& g, const core::LevelGraph& lg, ThreadPool* pool,
            std::size_t grain);

  std::size_t num_vertices() const noexcept { return n_; }
  std::size_t num_retained() const noexcept { return retained_count_; }

  /// The attribute table (retained order). Empty when the backend runs
  /// table-free (file-backed streaming); use stored_attr()/fetch_edges()
  /// for per-index attribute access that works on every backend.
  const std::vector<RetainedEdge>& table() const noexcept { return table_; }

  /// Edge-typed view of the table (same order). Empty when table-free.
  const std::vector<Edge>& edge_view() const noexcept { return edge_view_; }

  /// Attributes of one retained index. On table-backed substrates this is
  /// the table row; the file-backed backend serves STORED indices from its
  /// per-round sample cache (falling back to a file record read). Valid
  /// between a draw and the matching release_stored for stored indices;
  /// always valid on table-backed substrates. Thread-safe.
  virtual RetainedEdge stored_attr(std::uint32_t idx) const {
    return table_[idx];
  }

  /// Batch-fetch edge records for retained indices (the deferred
  /// probability stage's per-class gather). Table-backed: a copy from the
  /// view; file-backed: random-access record reads. Thread-safe.
  virtual void fetch_edges(const std::uint32_t* idxs, std::size_t count,
                           Edge* out) const {
    for (std::size_t i = 0; i < count; ++i) out[i] = edge_view_[idxs[i]];
  }

  /// Model accounting for the round loop's accesses. Reset by bind().
  ResourceMeter& meter() noexcept { return meter_; }
  const ResourceMeter& meter() const noexcept { return meter_; }

  /// The round's multiplier sweep — one logical access to every retained
  /// edge under this substrate's discipline. The streaming backend charges
  /// the round's single pass here.
  virtual void multiplier_sweep(const SweepKernel& kernel) = 0;

  /// The round's batched draw of all t sparsifiers from retained-indexed
  /// inclusion probabilities. Charges the model's round accounting (and,
  /// for MapReduce, executes the simulator round). The returned round is
  /// valid until the next draw.
  virtual const core::SamplingRound& draw(const std::vector<double>& prob,
                                          std::size_t t, std::uint64_t round,
                                          std::uint64_t seed) = 0;

  /// Stored-union materialization: resolve stored retained indices to
  /// (full-graph id, edge) pairs for the offline re-solve. Reads only the
  /// stored sample's attributes — no new input access. Thread-safe (the
  /// table is immutable after bind; the file backend reads immutable
  /// mapped records).
  virtual void materialize_union(const std::vector<std::uint32_t>& indices,
                                 std::vector<EdgeId>& ids,
                                 std::vector<Edge>& edges) const;

  /// Release the round's stored edges at the pipeline's merge point (peak
  /// space is a per-round quantity in the paper's model). The file-backed
  /// backend also drops its stored-attribute cache here.
  virtual void release_stored(std::size_t k) { meter_.release_edges(k); }

  /// Install the fault-tolerance plan for subsequent solves. Injection is
  /// a backend concern: the streaming backend wires mid-pass failures, the
  /// MapReduce backend wires mapper/reducer task failures, and the
  /// in-memory reference ignores the plan (RAM access has no failing
  /// unit). The solver installs SolverOptions::faults here before bind().
  void set_fault_plan(const FaultPlan& plan) { plan_ = plan; }
  const FaultPlan& fault_plan() const noexcept { return plan_; }

  /// Install the cooperative stop for subsequent solves (the solver wires
  /// SolverOptions' cancel/deadline here before bind()). Sweeps and draws
  /// poll it at their safe points — access entry everywhere, plus every
  /// pass chunk on the streaming backend, where a single pass dominates
  /// the round's wall time — and raise SolveAborted, which is NOT a
  /// SubstrateFault: it bypasses the retry machinery and unwinds to the
  /// solver, which returns the anytime result.
  void set_stop(const StopCheck& stop) { stop_ = stop; }

 protected:
  /// Whether bind() materializes the attribute table. The file-backed
  /// streaming substrate overrides this to false — its passes decode
  /// blocks on the fly and its resident state stays o(m).
  virtual bool materializes_table() const noexcept { return true; }

  /// Backend hook invoked at the end of bind() (the table is ready).
  virtual void on_bind() {}

  /// Charge `k` resident edge-attribute records, enforcing the budget:
  /// over-budget is a typed ConfigError naming the holder (`what`) —
  /// never a silent RAM spike. Balanced by uncharge_resident.
  void charge_resident(std::size_t k, const char* what);
  void uncharge_resident(std::size_t k) noexcept {
    meter_.release_resident(k);
  }

  /// No-fault sentinel of fault_offset_or_none.
  static constexpr std::uint64_t kNoFault = ~std::uint64_t{0};

  /// Arrival stride (power of two) between stop polls inside a streaming
  /// pass — coarse enough to be free, fine enough that a deadline fires
  /// within a chunk of any realistically sized pass.
  static constexpr std::uint64_t kStopPollStride = 1024;

  /// Injection decision for event (site, a, b) on `attempt`: the arrival
  /// offset in [0, bound) where the event dies, or kNoFault. Pure function
  /// of the plan's seed and the counters (never of threads or timing).
  std::uint64_t fault_offset_or_none(FaultSite site, std::uint64_t a,
                                     std::uint64_t b, std::uint64_t attempt,
                                     std::uint64_t bound) const noexcept {
    if (!injector_.enabled() || bound == 0) return kNoFault;
    if (!injector_.should_fail(site, a, b, attempt)) return kNoFault;
    return injector_.fail_offset(site, a, b, attempt, bound);
  }

  /// Poll the stop at an access-entry safe point.
  void poll_stop(const char* site) const { stop_.throw_if_stopped(site); }

  const Graph* g_ = nullptr;
  const core::LevelGraph* lg_ = nullptr;
  ThreadPool* pool_ = nullptr;
  std::size_t grain_ = 2048;
  std::size_t n_ = 0;
  std::size_t retained_count_ = 0;
  std::vector<RetainedEdge> table_;
  std::vector<Edge> edge_view_;
  stream::EdgeSource source_;  // default: read the bound Graph
  std::size_t budget_ = 0;     // resident-edge cap; 0 = unlimited
  ResourceMeter meter_;
  FaultPlan plan_;           // default: injection disabled
  FaultInjector injector_;   // rebuilt from plan_ at bind()
  RetryPolicy retry_;        // plan_'s budget, snapshot at bind()
  StopCheck stop_;           // unarmed unless set_stop() installed one
};

}  // namespace dp::access
