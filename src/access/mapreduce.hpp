#pragma once
// MapReduce access substrate (the model of Lattanzi et al. SPAA'11, as
// used by Section 4 of the paper). One sampling round = one REAL simulator
// round: mappers evaluate the counter-based inclusion masks over their
// input shards, the shuffle routes (sparsifier, edge) pairs, and one
// reducer per sparsifier collects its support under the O(n^{1+1/p})
// reducer-memory cap — which the simulator ENFORCES (a violating solve
// throws ReducerMemoryExceeded rather than silently overfitting the
// model).
//
// Sharding: the retained attribute table is sharded by VERTEX RANGE —
// machine s owns the edges whose u endpoint falls in [s n/S, (s+1) n/S) —
// and the multiplier sweep walks each machine's members as maximal
// consecutive runs through the base-relative kernel. Each machine carries
// its own ResourceMeter (shard_meters()): sweep passes, draw rounds, map
// emissions and their shuffle bytes, an independent per-machine breakdown
// of the totals on the main meter (never merged into it — the simulator
// already charges the totals there).
//
// Round compression (paper Section 4.2): with Config::round_compression =
// k > 1, ONE simulator round pre-draws the counter-based masks of the next
// k sampling rounds at an ENVELOPE probability min(1, boost * p). Because
// the per-bit Bernoulli compare is monotone in p (mask(p) is bitwise a
// subset of mask(p') whenever p <= p'), each later round filters its
// cached candidate set with its EXACT probabilities locally — zero
// additional simulator rounds, bitwise identical supports — as long as the
// actual probabilities stay under the envelope (validated per round; a
// violation just starts a fresh batch). The reducer cap applies to every
// (round-in-batch, sparsifier) key of the batch round, so compression
// cannot smuggle space past the model: a cap violation during the
// pre-draw falls back to per-round draws and disables compression for the
// rest of the solve. Saved simulator rounds/passes land on the meter as
// saved_rounds/saved_passes, making simulator rounds < outer rounds
// directly observable.

#include <cstdint>
#include <memory>
#include <vector>

#include "access/substrate.hpp"
#include "mapreduce/mapreduce.hpp"

namespace dp::access {

class MapReduceSubstrate final : public Substrate {
 public:
  struct Config {
    /// Simulated machines (mapper shards / vertex-range sweep shards).
    std::size_t machines = 8;
    /// Per-reducer memory cap; 0 = derive ceil(8 n^{1+1/p}) + 64 from
    /// space_exponent at bind (the paper's central-processing budget).
    std::size_t reducer_memory = 0;
    /// Space exponent p > 1 used when deriving the reducer cap.
    double space_exponent = 2.0;
    /// Simulator worker threads (0 = hardware concurrency). Outputs are
    /// independent of this value.
    std::size_t threads = 0;
    /// Batch this many successive sampling rounds into one simulator round
    /// (Section 4.2 round compression). 1 = off. Outputs are bitwise
    /// independent of this value; only the round/shuffle accounting moves.
    std::size_t round_compression = 1;
    /// Envelope multiplier for compressed pre-draws: the batch round draws
    /// at min(1, boost * p) and later rounds filter exactly. Larger boost
    /// survives more between-round probability growth but ships more
    /// candidates through the capped reducers.
    double compression_boost = 4.0;
  };

  MapReduceSubstrate() = default;
  explicit MapReduceSubstrate(const Config& config) : config_(config) {}

  SubstrateKind kind() const noexcept override {
    return SubstrateKind::kMapReduce;
  }
  const char* name() const noexcept override { return "mapreduce"; }

  void multiplier_sweep(const SweepKernel& kernel) override;

  const core::SamplingRound& draw(const std::vector<double>& prob,
                                  std::size_t t, std::uint64_t round,
                                  std::uint64_t seed) override;

  /// The reducer cap in force after bind() (derived or configured).
  std::size_t reducer_memory() const noexcept { return reducer_memory_; }

  /// Simulator rounds executed so far. Without round compression this
  /// equals the sampling rounds drawn; with it, strictly fewer.
  std::size_t simulator_rounds() const noexcept {
    return sim_ == nullptr ? 0 : sim_->rounds_executed();
  }

  /// Whether round compression is still active (it self-disables if a
  /// batch pre-draw violates the reducer cap).
  bool compression_active() const noexcept { return compress_k_ > 1; }

  /// Per-machine resource breakdown (size = machines, reset at bind):
  /// sweep passes, draw rounds, map emissions (messages + shuffle bytes).
  /// An independent view — NOT merged into meter(), which the simulator
  /// already charges with the totals.
  const std::vector<ResourceMeter>& shard_meters() const noexcept {
    return shard_meters_;
  }

 protected:
  void on_bind() override;

 private:
  /// One machine's maximal run of consecutive retained indices.
  struct ShardRun {
    std::uint32_t lo;
    std::uint32_t hi;
  };

  /// Is the live batch usable for (prob, t, round, seed)? Checks batch
  /// identity and the envelope invariant prob[e] <= envelope_[e].
  bool cached_draw_valid(const std::vector<double>& prob, std::size_t t,
                         std::uint64_t round, std::uint64_t seed) const;

  /// Execute the batch pre-draw simulator round based at `round`. Returns
  /// false (and disables compression) on ReducerMemoryExceeded.
  bool predraw_batch(const std::vector<double>& prob, std::size_t t,
                     std::uint64_t round, std::uint64_t seed);

  /// Filter round `round`'s cached candidates with its exact
  /// probabilities and adopt the resulting supports.
  const core::SamplingRound& adopt_cached(const std::vector<double>& prob,
                                          std::size_t t, std::uint64_t round);

  /// Fold the simulator's last map phase into the per-shard meters.
  void charge_shard_draw();

  Config config_;
  std::size_t reducer_memory_ = 0;
  std::unique_ptr<mapreduce::Simulator> sim_;
  core::SamplingEngine engine_;

  // Vertex-range sharding of the retained table (built at bind).
  std::vector<std::vector<ShardRun>> shard_runs_;
  std::vector<std::size_t> shard_members_;
  std::vector<ResourceMeter> shard_meters_;

  // Round-compression batch state.
  std::size_t compress_k_ = 1;    // live k (1 after cap fallback)
  bool batch_valid_ = false;
  std::uint64_t batch_base_ = 0;  // sampling round of the batch pre-draw
  std::size_t batch_t_ = 0;
  std::uint64_t batch_seed_ = 0;
  std::vector<double> envelope_;  // pre-draw probabilities (batch base)
  std::vector<std::vector<std::uint32_t>> batch_candidates_;  // per j
  std::vector<std::vector<std::uint32_t>> supports_scratch_;
};

}  // namespace dp::access
