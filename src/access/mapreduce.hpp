#pragma once
// MapReduce access substrate (the model of Lattanzi et al. SPAA'11, as
// used by Section 4 of the paper). One sampling round = one REAL simulator
// round: mappers evaluate the counter-based inclusion masks over their
// input shards, the shuffle routes (sparsifier, edge) pairs, and one
// reducer per sparsifier collects its support under the O(n^{1+1/p})
// reducer-memory cap — which the simulator ENFORCES (a violating solve
// throws ReducerMemoryExceeded rather than silently overfitting the
// model). The multiplier sweep runs shard-by-shard as the round's map-side
// computation; rounds, shuffle volume and stored edges land on the
// substrate meter.

#include <memory>

#include "access/substrate.hpp"
#include "mapreduce/mapreduce.hpp"

namespace dp::access {

class MapReduceSubstrate final : public Substrate {
 public:
  struct Config {
    /// Simulated machines (mapper shards).
    std::size_t machines = 8;
    /// Per-reducer memory cap; 0 = derive ceil(8 n^{1+1/p}) + 64 from
    /// space_exponent at bind (the paper's central-processing budget).
    std::size_t reducer_memory = 0;
    /// Space exponent p > 1 used when deriving the reducer cap.
    double space_exponent = 2.0;
    /// Simulator worker threads (0 = hardware concurrency). Outputs are
    /// independent of this value.
    std::size_t threads = 0;
  };

  MapReduceSubstrate() = default;
  explicit MapReduceSubstrate(const Config& config) : config_(config) {}

  SubstrateKind kind() const noexcept override {
    return SubstrateKind::kMapReduce;
  }
  const char* name() const noexcept override { return "mapreduce"; }

  void multiplier_sweep(const SweepKernel& kernel) override;

  const core::SamplingRound& draw(const std::vector<double>& prob,
                                  std::size_t t, std::uint64_t round,
                                  std::uint64_t seed) override;

  /// The reducer cap in force after bind() (derived or configured).
  std::size_t reducer_memory() const noexcept { return reducer_memory_; }

  /// Simulator rounds executed so far (== sampling rounds drawn).
  std::size_t simulator_rounds() const noexcept {
    return sim_ == nullptr ? 0 : sim_->rounds_executed();
  }

 protected:
  void on_bind() override;

 private:
  Config config_;
  std::size_t reducer_memory_ = 0;
  std::unique_ptr<mapreduce::Simulator> sim_;
  core::SamplingEngine engine_;
};

}  // namespace dp::access
