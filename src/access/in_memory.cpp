#include "access/in_memory.hpp"

#include "util/thread_pool.hpp"

namespace dp::access {

void InMemorySubstrate::on_bind() {
  engine_ = core::SamplingEngine(pool_, grain_);
}

void InMemorySubstrate::multiplier_sweep(const SweepKernel& kernel) {
  // RAM model: random access is free; only rounds and stored edges are
  // model quantities, so the sweep charges nothing. The stop is polled at
  // access entry only — never from inside pool worker lambdas, where an
  // exception could not unwind safely.
  poll_stop("mem.sweep");
  const RetainedEdge* edges = table_.data();
  run_chunks(pool_, 0, table_.size(), grain_,
             [&](std::size_t, std::size_t lo, std::size_t hi) {
               kernel(lo, hi, edges + lo);  // base-relative span
             });
}

const core::SamplingRound& InMemorySubstrate::draw(
    const std::vector<double>& prob, std::size_t t, std::uint64_t round,
    std::uint64_t seed) {
  poll_stop("mem.draw");
  return engine_.draw(prob, t, round, seed, &meter_);
}

}  // namespace dp::access
