#pragma once
// In-memory (RAM) access substrate — the reference backend. Sweeps run as
// fixed-grain parallel chunks on the solver's pool (bitwise
// thread-count-invariant); draws are the batched counter-based sweep of
// core/sampling. Meters one adaptive round + one pass per draw, mirroring
// the accounting the solver reported before the substrate layer existed.

#include "access/substrate.hpp"

namespace dp::access {

class InMemorySubstrate final : public Substrate {
 public:
  InMemorySubstrate() = default;

  SubstrateKind kind() const noexcept override {
    return SubstrateKind::kInMemory;
  }
  const char* name() const noexcept override { return "in_memory"; }

  void multiplier_sweep(const SweepKernel& kernel) override;

  const core::SamplingRound& draw(const std::vector<double>& prob,
                                  std::size_t t, std::uint64_t round,
                                  std::uint64_t seed) override;

 protected:
  void on_bind() override;

 private:
  core::SamplingEngine engine_;
};

}  // namespace dp::access
