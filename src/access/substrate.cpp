#include "access/substrate.hpp"

#include <string>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace dp::access {

void Substrate::attach_source(stream::EdgeSource source) {
  if (source.file_backed() && !accepts_file_source()) {
    throw ConfigError(
        std::string("substrate '") + name() +
            "' requires random access to the input and cannot bind a "
            "file-backed edge source; use the streaming substrate for "
            "out-of-core solves",
        ErrorContext{"access.source"});
  }
  source_ = source;
}

void Substrate::charge_resident(std::size_t k, const char* what) {
  meter_.hold_resident(k);
  if (budget_ != 0 && meter_.resident_edges() > budget_) {
    throw ConfigError(
        std::string("memory budget exceeded: ") + what + " brings resident "
            "edge-attribute state to " +
            std::to_string(meter_.resident_edges()) +
            " edge records, over the configured budget of " +
            std::to_string(budget_) +
            " (memory_budget_edges); use the file-backed streaming "
            "substrate for out-of-core solves or raise the budget",
        ErrorContext{"access.budget"});
  }
}

void Substrate::bind(const Graph& g, const core::LevelGraph& lg,
                     ThreadPool* pool, std::size_t grain) {
  g_ = &g;
  lg_ = &lg;
  pool_ = pool;
  grain_ = grain == 0 ? 1 : grain;
  n_ = g.num_vertices();
  meter_.reset();
  injector_ = FaultInjector(plan_.config);
  retry_ = plan_.retry;

  if (source_.file_backed()) {
    // The file is the pass data plane for the SAME graph the solver is
    // running on; a mismatched file would silently desynchronize retained
    // indices from records, so reject it up front.
    if (source_.num_vertices() != g.num_vertices() ||
        source_.num_edges() != g.num_edges()) {
      throw ConfigError(
          "file-backed edge source does not match the bound graph (file n=" +
              std::to_string(source_.num_vertices()) + " m=" +
              std::to_string(source_.num_edges()) + ", graph n=" +
              std::to_string(g.num_vertices()) + " m=" +
              std::to_string(g.num_edges()) + "): " +
              source_.file()->path(),
          ErrorContext{"access.source"});
    }
  }

  const std::vector<EdgeId>& retained = lg.retained();
  retained_count_ = retained.size();
  table_.clear();
  edge_view_.clear();
  if (materializes_table()) {
    table_.resize(retained.size());
    edge_view_.resize(retained.size());
    for (std::size_t idx = 0; idx < retained.size(); ++idx) {
      const EdgeId e = retained[idx];
      const Edge& edge = g.edge(e);
      table_[idx] = RetainedEdge{e, edge.u, edge.v, edge.w, lg.level(e)};
      edge_view_[idx] = edge;
    }
    // The table and its Edge view describe one attribute record per
    // retained edge; charge them once. This is the charge that makes an
    // in-RAM solve over a graph bigger than the budget a typed error.
    charge_resident(retained.size(), "retained attribute table");
  }
  on_bind();
}

void Substrate::materialize_union(const std::vector<std::uint32_t>& indices,
                                  std::vector<EdgeId>& ids,
                                  std::vector<Edge>& edges) const {
  ids.clear();
  edges.clear();
  ids.reserve(indices.size());
  edges.reserve(indices.size());
  for (const std::uint32_t idx : indices) {
    const RetainedEdge& re = table_[idx];
    ids.push_back(re.id);
    edges.push_back(Edge{re.u, re.v, re.w});
  }
}

}  // namespace dp::access
