#include "access/substrate.hpp"

#include "util/thread_pool.hpp"

namespace dp::access {

void Substrate::bind(const Graph& g, const core::LevelGraph& lg,
                     ThreadPool* pool, std::size_t grain) {
  g_ = &g;
  lg_ = &lg;
  pool_ = pool;
  grain_ = grain == 0 ? 1 : grain;
  n_ = g.num_vertices();
  meter_.reset();
  injector_ = FaultInjector(plan_.config);
  retry_ = plan_.retry;

  const std::vector<EdgeId>& retained = lg.retained();
  table_.resize(retained.size());
  edge_view_.resize(retained.size());
  for (std::size_t idx = 0; idx < retained.size(); ++idx) {
    const EdgeId e = retained[idx];
    const Edge& edge = g.edge(e);
    table_[idx] = RetainedEdge{e, edge.u, edge.v, edge.w, lg.level(e)};
    edge_view_[idx] = edge;
  }
  on_bind();
}

void Substrate::materialize_union(const std::vector<std::uint32_t>& indices,
                                  std::vector<EdgeId>& ids,
                                  std::vector<Edge>& edges) const {
  ids.clear();
  edges.clear();
  ids.reserve(indices.size());
  edges.reserve(indices.size());
  for (const std::uint32_t idx : indices) {
    const RetainedEdge& re = table_[idx];
    ids.push_back(re.id);
    edges.push_back(Edge{re.u, re.v, re.w});
  }
}

}  // namespace dp::access
