#include "access/streaming.hpp"

#include "util/hash.hpp"

namespace dp::access {

void StreamingSubstrate::on_bind() {
  stream_ = std::make_unique<EdgeStream>(*g_, nullptr);
  retained_of_.assign(g_->num_edges(), core::SamplingEngine::kNotRetained);
  for (std::size_t idx = 0; idx < table_.size(); ++idx) {
    retained_of_[table_[idx].id] = static_cast<std::uint32_t>(idx);
  }
  engine_ = core::SamplingEngine(nullptr, grain_);
}

void StreamingSubstrate::multiplier_sweep(const SweepKernel& kernel) {
  // The round's ONE pass over the input. Arrivals come in stream order;
  // each retained arrival is a one-element kernel range at its retained
  // index, so the filled buffers are identical to any other backend's.
  meter_.add_pass();
  const RetainedEdge* edges = table_.data();
  const std::uint32_t* retained_of = retained_of_.data();
  stream_->for_each_pass_indexed([&](EdgeId pos, const Edge&) {
    const std::uint32_t idx = retained_of[pos];
    if (idx == core::SamplingEngine::kNotRetained) return;
    kernel(idx, idx + 1, edges);
  });
}

const core::SamplingRound& StreamingSubstrate::draw(
    const std::vector<double>& prob, std::size_t t, std::uint64_t round,
    std::uint64_t seed) {
  // Same pass as the multiplier sweep (already charged): the draw decision
  // for each arriving edge is evaluated inline and only sampled edges are
  // stored. The arrival order rotates through a few shuffles so adjacent
  // rounds see different (adversarial) orders — exercising the
  // order-invariance of the counter-based masks — while the stream's
  // per-seed permutation cache stays bounded for arbitrarily long solves.
  const std::uint64_t order_seed = mix_combine(seed ^ 0x9e37'79b9'7f4a'7c15ULL,
                                               round & 3);
  const core::SamplingRound& draws = engine_.draw_stream_mapped(
      *stream_, retained_of_, order_seed, prob, t, round, seed);
  meter_.add_round();
  meter_.store_edges(draws.stored_total());
  return draws;
}

}  // namespace dp::access
