#include "access/streaming.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace dp::access {

void StreamingSubstrate::on_bind() {
  cache_idx_.clear();
  cache_attr_.clear();
  if (source_.file_backed()) {
    stream::EdgeFileStream* file = source_.file();
    file->set_meter(&meter_);
    stream_ = std::make_unique<EdgeStream>(*file, nullptr);
    // The decode buffers (double-buffered when prefetching) are resident
    // edge records of the access layer — charge them against the budget
    // for the lifetime of the bind.
    charge_resident(file->resident_buffer_edges(), "IO block buffers");
  } else {
    stream_ = std::make_unique<EdgeStream>(*g_, nullptr);
  }
  const std::vector<EdgeId>& retained = lg_->retained();
  retained_of_.assign(g_->num_edges(), core::SamplingEngine::kNotRetained);
  for (std::size_t idx = 0; idx < retained.size(); ++idx) {
    retained_of_[retained[idx]] = static_cast<std::uint32_t>(idx);
  }
  engine_ = core::SamplingEngine(nullptr, grain_);
  pass_ordinal_ = 0;
}

RetainedEdge StreamingSubstrate::load_attr(std::uint32_t idx) const {
  const EdgeId e = lg_->retained()[idx];
  const Edge edge = source_.file()->edge(e);
  return RetainedEdge{e, edge.u, edge.v, edge.w, lg_->level(e)};
}

std::uint64_t StreamingSubstrate::align_fault(
    std::uint64_t fail_at) const noexcept {
  if (fail_at == kNoFault || !source_.file_backed()) return fail_at;
  const std::uint64_t be = source_.file()->block_edges();
  return fail_at / be * be;
}

RetainedEdge StreamingSubstrate::stored_attr(std::uint32_t idx) const {
  if (!table_.empty()) return table_[idx];
  const auto it = std::lower_bound(cache_idx_.begin(), cache_idx_.end(), idx);
  if (it != cache_idx_.end() && *it == idx) {
    return cache_attr_[static_cast<std::size_t>(it - cache_idx_.begin())];
  }
  return load_attr(idx);
}

void StreamingSubstrate::fetch_edges(const std::uint32_t* idxs,
                                     std::size_t count, Edge* out) const {
  if (!table_.empty()) {
    Substrate::fetch_edges(idxs, count, out);
    return;
  }
  const EdgeId* retained = lg_->retained().data();
  const stream::EdgeFileStream* file = source_.file();
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = file->edge(retained[idxs[i]]);
  }
}

void StreamingSubstrate::materialize_union(
    const std::vector<std::uint32_t>& indices, std::vector<EdgeId>& ids,
    std::vector<Edge>& edges) const {
  if (!table_.empty()) {
    Substrate::materialize_union(indices, ids, edges);
    return;
  }
  // Cache-free on purpose: under cross-round pipelining this runs on the
  // offline job thread CONCURRENTLY with the next round's opening pass,
  // which replaces the per-round cache. The file's random-access path and
  // the level graph are immutable for the bind, so this is race-free.
  const EdgeId* retained = lg_->retained().data();
  const stream::EdgeFileStream* file = source_.file();
  ids.clear();
  edges.clear();
  ids.reserve(indices.size());
  edges.reserve(indices.size());
  for (const std::uint32_t idx : indices) {
    const EdgeId e = retained[idx];
    ids.push_back(e);
    edges.push_back(file->edge(e));
  }
}

void StreamingSubstrate::release_stored(std::size_t k) {
  Substrate::release_stored(k);
  if (table_.empty() && !cache_idx_.empty()) {
    uncharge_resident(cache_idx_.size());
    cache_idx_.clear();
    cache_attr_.clear();
  }
}

void StreamingSubstrate::multiplier_sweep(const SweepKernel& kernel) {
  // The round's ONE pass over the input. Arrivals come in stream order;
  // each retained arrival is a one-element base-relative kernel span at
  // its retained index, so the filled buffers are identical to any other
  // backend's. Graph mode serves the span from the attribute table; file
  // mode builds it from the record just decoded out of the current block.
  //
  // Fault site (phase 0): the pass may die at a deterministic arrival
  // offset (block-aligned on the file backend); the retry re-walks from
  // the start (kernel fills are pure per index, so partial fills are
  // simply overwritten) and every physical walk — including the aborted
  // ones — is charged as a pass.
  const std::uint64_t pass = pass_ordinal_++;
  const std::uint64_t m = g_->num_edges();
  const RetainedEdge* table = table_.data();
  const bool file_mode = table_.empty();
  const core::LevelGraph& lg = *lg_;
  const std::uint32_t* retained_of = retained_of_.data();
  const bool poll_chunks = stop_.armed();
  for (std::uint64_t attempt = 0;; ++attempt) {
    meter_.add_pass();
    const std::uint64_t fail_at = align_fault(
        fault_offset_or_none(FaultSite::kStreamPass, pass, 0, attempt, m));
    try {
      std::uint64_t arrival = 0;
      stream_->for_each_pass_indexed([&](EdgeId pos, const Edge& e) {
        // Pass-chunk safe point: one pass dominates a streaming round's
        // wall time, so a deadline must be able to fire inside it. The
        // kernel only fills pure per-index buffers — abandoning the pass
        // loses no state. SolveAborted is not a SubstrateFault, so it
        // bypasses the retry loop below.
        if (poll_chunks && (arrival & (kStopPollStride - 1)) == 0) {
          stop_.throw_if_stopped("stream.pass");
        }
        if (arrival++ == fail_at) {
          throw SubstrateFault(
              "stream pass died mid-pass (multiplier sweep)",
              {fault_site_name(FaultSite::kStreamPass), pass, attempt});
        }
        const std::uint32_t idx = retained_of[pos];
        if (idx == core::SamplingEngine::kNotRetained) return;
        if (file_mode) {
          const RetainedEdge re{pos, e.u, e.v, e.w, lg.level(pos)};
          kernel(idx, idx + 1, &re);
        } else {
          kernel(idx, idx + 1, table + idx);
        }
      });
      return;
    } catch (const SubstrateFault&) {
      meter_.add_faults();
      if (attempt + 1 >= retry_.max_attempts) throw;
      retry_.backoff(injector_, FaultSite::kStreamPass, pass, 0, attempt);
    }
  }
}

const core::SamplingRound& StreamingSubstrate::draw(
    const std::vector<double>& prob, std::size_t t, std::uint64_t round,
    std::uint64_t seed) {
  // Same pass as the multiplier sweep (already charged): the draw decision
  // for each arriving edge is evaluated inline and only sampled edges are
  // stored. The arrival order rotates through a few shuffles so adjacent
  // rounds see different (adversarial) orders — exercising the
  // order-invariance of the counter-based masks — while the stream's
  // per-seed permutation cache stays bounded for arbitrarily long solves.
  // (On the file backend the shuffle permutes BLOCKS, keeping IO
  // sequential within each block; the masks are arrival-order-invariant,
  // so the stored sets — and the solve — stay bitwise identical.)
  const std::uint64_t order_seed = mix_combine(seed ^ 0x9e37'79b9'7f4a'7c15ULL,
                                               round & 3);
  // Fault site (phase 1): the draw shares the sweep's logical pass, so its
  // injection key is (that pass ordinal, phase 1). A failed draw attempt
  // means the fused pass physically re-walks — charged as an extra pass —
  // and the engine's draw restarts clean (its buffers reset at entry).
  const std::uint64_t pass = pass_ordinal_ == 0 ? 0 : pass_ordinal_ - 1;
  const std::uint64_t m = g_->num_edges();
  const bool poll_chunks = stop_.armed();
  for (std::uint64_t attempt = 0;; ++attempt) {
    const std::uint64_t fail_at = align_fault(
        fault_offset_or_none(FaultSite::kStreamPass, pass, 1, attempt, m));
    try {
      // The arrival probe carries both interleaved duties of the physical
      // re-walk: the deterministic mid-pass fault and the pass-chunk stop
      // poll (the draw stores only sampled edges, so abandoning it loses
      // no state either).
      const std::function<void(std::uint64_t)> probe =
          [&](std::uint64_t arrival) {
            if (poll_chunks && (arrival & (kStopPollStride - 1)) == 0) {
              stop_.throw_if_stopped("stream.pass");
            }
            if (arrival == fail_at) {
              throw SubstrateFault(
                  "stream pass died mid-pass (draw)",
                  {fault_site_name(FaultSite::kStreamPass), pass, attempt});
            }
          };
      const core::SamplingRound& draws = engine_.draw_stream_mapped(
          *stream_, retained_of_, order_seed, prob, t, round, seed,
          fail_at == kNoFault && !poll_chunks ? nullptr : &probe);
      meter_.add_round();
      meter_.store_edges(draws.stored_total());
      if (table_.empty()) {
        // File mode: snapshot the drawn union's attributes into the
        // per-round cache so the pipeline's stored_attr() reads are RAM
        // lookups, not per-index file records. Exactly o(m) entries,
        // budget-charged, dropped at release_stored. The previous round's
        // cache was released before this draw (join_pending precedes
        // stage_draw), but uncharge defensively in case a caller skipped
        // the release.
        if (!cache_idx_.empty()) uncharge_resident(cache_idx_.size());
        cache_idx_ = draws.union_support();
        cache_attr_.resize(cache_idx_.size());
        for (std::size_t i = 0; i < cache_idx_.size(); ++i) {
          cache_attr_[i] = load_attr(cache_idx_[i]);
        }
        charge_resident(cache_idx_.size(), "stored-sample attribute cache");
      }
      return draws;
    } catch (const SubstrateFault&) {
      meter_.add_faults();
      if (attempt + 1 >= retry_.max_attempts) throw;
      meter_.add_pass();  // the retry physically re-walks the fused pass
      retry_.backoff(injector_, FaultSite::kStreamPass, pass, 1, attempt);
    }
  }
}

}  // namespace dp::access
