#include "access/streaming.hpp"

#include "util/error.hpp"
#include "util/hash.hpp"

namespace dp::access {

void StreamingSubstrate::on_bind() {
  stream_ = std::make_unique<EdgeStream>(*g_, nullptr);
  retained_of_.assign(g_->num_edges(), core::SamplingEngine::kNotRetained);
  for (std::size_t idx = 0; idx < table_.size(); ++idx) {
    retained_of_[table_[idx].id] = static_cast<std::uint32_t>(idx);
  }
  engine_ = core::SamplingEngine(nullptr, grain_);
  pass_ordinal_ = 0;
}

void StreamingSubstrate::multiplier_sweep(const SweepKernel& kernel) {
  // The round's ONE pass over the input. Arrivals come in stream order;
  // each retained arrival is a one-element kernel range at its retained
  // index, so the filled buffers are identical to any other backend's.
  //
  // Fault site (phase 0): the pass may die at a deterministic arrival
  // offset; the retry re-walks from the start (kernel fills are pure per
  // index, so partial fills are simply overwritten) and every physical
  // walk — including the aborted ones — is charged as a pass.
  const std::uint64_t pass = pass_ordinal_++;
  const std::uint64_t m = g_->num_edges();
  const RetainedEdge* edges = table_.data();
  const std::uint32_t* retained_of = retained_of_.data();
  const bool poll_chunks = stop_.armed();
  for (std::uint64_t attempt = 0;; ++attempt) {
    meter_.add_pass();
    const std::uint64_t fail_at =
        fault_offset_or_none(FaultSite::kStreamPass, pass, 0, attempt, m);
    try {
      std::uint64_t arrival = 0;
      stream_->for_each_pass_indexed([&](EdgeId pos, const Edge&) {
        // Pass-chunk safe point: one pass dominates a streaming round's
        // wall time, so a deadline must be able to fire inside it. The
        // kernel only fills pure per-index buffers — abandoning the pass
        // loses no state. SolveAborted is not a SubstrateFault, so it
        // bypasses the retry loop below.
        if (poll_chunks && (arrival & (kStopPollStride - 1)) == 0) {
          stop_.throw_if_stopped("stream.pass");
        }
        if (arrival++ == fail_at) {
          throw SubstrateFault(
              "stream pass died mid-pass (multiplier sweep)",
              {fault_site_name(FaultSite::kStreamPass), pass, attempt});
        }
        const std::uint32_t idx = retained_of[pos];
        if (idx == core::SamplingEngine::kNotRetained) return;
        kernel(idx, idx + 1, edges);
      });
      return;
    } catch (const SubstrateFault&) {
      meter_.add_faults();
      if (attempt + 1 >= retry_.max_attempts) throw;
      retry_.backoff(injector_, FaultSite::kStreamPass, pass, 0, attempt);
    }
  }
}

const core::SamplingRound& StreamingSubstrate::draw(
    const std::vector<double>& prob, std::size_t t, std::uint64_t round,
    std::uint64_t seed) {
  // Same pass as the multiplier sweep (already charged): the draw decision
  // for each arriving edge is evaluated inline and only sampled edges are
  // stored. The arrival order rotates through a few shuffles so adjacent
  // rounds see different (adversarial) orders — exercising the
  // order-invariance of the counter-based masks — while the stream's
  // per-seed permutation cache stays bounded for arbitrarily long solves.
  const std::uint64_t order_seed = mix_combine(seed ^ 0x9e37'79b9'7f4a'7c15ULL,
                                               round & 3);
  // Fault site (phase 1): the draw shares the sweep's logical pass, so its
  // injection key is (that pass ordinal, phase 1). A failed draw attempt
  // means the fused pass physically re-walks — charged as an extra pass —
  // and the engine's draw restarts clean (its buffers reset at entry).
  const std::uint64_t pass = pass_ordinal_ == 0 ? 0 : pass_ordinal_ - 1;
  const std::uint64_t m = g_->num_edges();
  const bool poll_chunks = stop_.armed();
  for (std::uint64_t attempt = 0;; ++attempt) {
    const std::uint64_t fail_at =
        fault_offset_or_none(FaultSite::kStreamPass, pass, 1, attempt, m);
    try {
      // The arrival probe carries both interleaved duties of the physical
      // re-walk: the deterministic mid-pass fault and the pass-chunk stop
      // poll (the draw stores only sampled edges, so abandoning it loses
      // no state either).
      const std::function<void(std::uint64_t)> probe =
          [&](std::uint64_t arrival) {
            if (poll_chunks && (arrival & (kStopPollStride - 1)) == 0) {
              stop_.throw_if_stopped("stream.pass");
            }
            if (arrival == fail_at) {
              throw SubstrateFault(
                  "stream pass died mid-pass (draw)",
                  {fault_site_name(FaultSite::kStreamPass), pass, attempt});
            }
          };
      const core::SamplingRound& draws = engine_.draw_stream_mapped(
          *stream_, retained_of_, order_seed, prob, t, round, seed,
          fail_at == kNoFault && !poll_chunks ? nullptr : &probe);
      meter_.add_round();
      meter_.store_edges(draws.stored_total());
      return draws;
    } catch (const SubstrateFault&) {
      meter_.add_faults();
      if (attempt + 1 >= retry_.max_attempts) throw;
      meter_.add_pass();  // the retry physically re-walks the fused pass
      retry_.backoff(injector_, FaultSite::kStreamPass, pass, 1, attempt);
    }
  }
}

}  // namespace dp::access
