#include "access/mapreduce.hpp"

#include <cmath>

#include "util/thread_pool.hpp"

namespace dp::access {

void MapReduceSubstrate::on_bind() {
  reducer_memory_ = config_.reducer_memory;
  if (reducer_memory_ == 0) {
    const double n = static_cast<double>(n_);
    const double p = std::max(config_.space_exponent, 1.01);
    reducer_memory_ =
        static_cast<std::size_t>(std::ceil(8.0 * std::pow(n, 1.0 + 1.0 / p)))
        + 64;
  }
  mapreduce::Config sim_config;
  sim_config.machines = config_.machines == 0 ? 1 : config_.machines;
  sim_config.reducer_memory = reducer_memory_;
  sim_config.threads = config_.threads;
  // plan_ is the substrate's own stable copy (set before bind), so the
  // simulator's pointer stays valid for the whole solve.
  sim_config.faults = &plan_;
  sim_ = std::make_unique<mapreduce::Simulator>(sim_config, &meter_);
  engine_ = core::SamplingEngine(nullptr, grain_);
}

void MapReduceSubstrate::multiplier_sweep(const SweepKernel& kernel) {
  // Map-side computation of the upcoming round: each machine sweeps its
  // contiguous input shard, dispatched concurrently like the machines the
  // model describes (the kernel is pure per index, so the output is
  // bitwise identical to a serial shard walk). The simulator round itself
  // (and its charge) is the draw's shuffle/reduce. The stop is polled at
  // access entry only — shard workers must never throw.
  poll_stop("mapreduce.map");
  const std::size_t m = table_.size();
  const std::size_t shards = config_.machines == 0 ? 1 : config_.machines;
  const std::size_t shard_size = (m + shards - 1) / shards;
  const RetainedEdge* edges = table_.data();
  run_jobs(pool_, shards, [&](std::size_t s) {
    const std::size_t lo = s * shard_size;
    if (lo >= m) return;
    const std::size_t hi = std::min(m, lo + shard_size);
    kernel(lo, hi, edges);
  });
}

const core::SamplingRound& MapReduceSubstrate::draw(
    const std::vector<double>& prob, std::size_t t, std::uint64_t round,
    std::uint64_t seed) {
  // One genuine simulator round: mappers evaluate sampling_mask over their
  // shards, reducer q collects sparsifier q's support under the memory
  // cap. sample_round charges the pass + stored incidences; the simulator
  // (sharing the substrate meter) charges the round and shuffle volume.
  poll_stop("mapreduce.round");
  const auto supports =
      mapreduce::sample_round(*sim_, prob, t, round, seed, &meter_);
  return engine_.adopt_supports(prob.size(), t, supports);
}

}  // namespace dp::access
