#include "access/mapreduce.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/thread_pool.hpp"

namespace dp::access {

void MapReduceSubstrate::on_bind() {
  reducer_memory_ = config_.reducer_memory;
  if (reducer_memory_ == 0) {
    const double n = static_cast<double>(n_);
    const double p = std::max(config_.space_exponent, 1.01);
    reducer_memory_ =
        static_cast<std::size_t>(std::ceil(8.0 * std::pow(n, 1.0 + 1.0 / p)))
        + 64;
  }
  mapreduce::Config sim_config;
  sim_config.machines = config_.machines == 0 ? 1 : config_.machines;
  sim_config.reducer_memory = reducer_memory_;
  sim_config.threads = config_.threads;
  // plan_ is the substrate's own stable copy (set before bind), so the
  // simulator's pointer stays valid for the whole solve.
  sim_config.faults = &plan_;
  sim_ = std::make_unique<mapreduce::Simulator>(sim_config, &meter_);
  engine_ = core::SamplingEngine(nullptr, grain_);

  // Vertex-range sharding: machine s owns the retained edges whose u
  // endpoint falls in [s n/S, (s+1) n/S), walked as maximal consecutive
  // runs so the sweep stays span-based through the kernel.
  const std::size_t shards = sim_config.machines;
  shard_runs_.assign(shards, {});
  shard_members_.assign(shards, 0);
  shard_meters_.assign(shards, ResourceMeter{});
  const std::size_t m = table_.size();
  for (std::size_t idx = 0; idx < m; ++idx) {
    const std::size_t s =
        n_ == 0 ? 0
                : std::min(shards - 1,
                           static_cast<std::size_t>(table_[idx].u) * shards /
                               n_);
    ++shard_members_[s];
    std::vector<ShardRun>& runs = shard_runs_[s];
    if (!runs.empty() && runs.back().hi == idx) {
      runs.back().hi = static_cast<std::uint32_t>(idx + 1);
    } else {
      runs.push_back(ShardRun{static_cast<std::uint32_t>(idx),
                              static_cast<std::uint32_t>(idx + 1)});
    }
  }

  compress_k_ = config_.round_compression == 0 ? 1 : config_.round_compression;
  batch_valid_ = false;
  envelope_.clear();
  batch_candidates_.clear();
}

void MapReduceSubstrate::multiplier_sweep(const SweepKernel& kernel) {
  // Map-side computation of the upcoming round: each machine sweeps its
  // vertex-range shard, dispatched concurrently like the machines the
  // model describes (the kernel is pure per index, so the output is
  // bitwise identical to any serial walk). The simulator round itself
  // (and its charge) is the draw's shuffle/reduce. The stop is polled at
  // access entry only — shard workers must never throw.
  poll_stop("mapreduce.map");
  const RetainedEdge* edges = table_.data();
  const std::size_t shards = shard_runs_.size();
  run_jobs(pool_, shards, [&](std::size_t s) {
    for (const ShardRun& run : shard_runs_[s]) {
      kernel(run.lo, run.hi, edges + run.lo);
    }
  });
  // Per-machine accounting folded on the calling thread after the join
  // (deterministic shard order): one pass over its range per machine that
  // owns any edges.
  for (std::size_t s = 0; s < shards; ++s) {
    if (shard_members_[s] > 0) shard_meters_[s].add_pass();
  }
}

void MapReduceSubstrate::charge_shard_draw() {
  const std::vector<std::size_t>& emissions = sim_->last_map_emissions();
  const std::size_t shards =
      std::min(emissions.size(), shard_meters_.size());
  for (std::size_t s = 0; s < shards; ++s) {
    shard_meters_[s].add_round();
    shard_meters_[s].add_messages(emissions[s]);
    shard_meters_[s].add_shuffle_bytes(emissions[s] *
                                       sizeof(mapreduce::KeyValue));
  }
}

bool MapReduceSubstrate::cached_draw_valid(const std::vector<double>& prob,
                                           std::size_t t, std::uint64_t round,
                                           std::uint64_t seed) const {
  if (!batch_valid_ || t != batch_t_ || seed != batch_seed_) return false;
  if (round <= batch_base_) return false;
  const std::uint64_t j = round - batch_base_;
  if (j >= batch_candidates_.size()) return false;
  if (prob.size() != envelope_.size()) return false;
  // Envelope invariant: the pre-draw is a superset of this round's exact
  // draw only while every probability is still under its envelope.
  for (std::size_t e = 0; e < prob.size(); ++e) {
    if (prob[e] > envelope_[e]) return false;
  }
  return true;
}

bool MapReduceSubstrate::predraw_batch(const std::vector<double>& prob,
                                       std::size_t t, std::uint64_t round,
                                       std::uint64_t seed) {
  const std::size_t k = compress_k_;
  envelope_.resize(prob.size());
  for (std::size_t e = 0; e < prob.size(); ++e) {
    envelope_[e] = std::min(1.0, prob[e] * config_.compression_boost);
  }
  // One simulator round draws all k rounds' envelope masks: the mapper
  // evaluates each round's counter-based mask at the envelope probability
  // and routes (round-in-batch j, sparsifier q) -> key j*64+q, so the
  // reducer cap binds every per-round per-sparsifier support of the batch.
  std::vector<mapreduce::KeyValue> input;
  input.reserve(envelope_.size());
  for (std::size_t idx = 0; idx < envelope_.size(); ++idx) {
    input.push_back({idx, std::bit_cast<std::uint64_t>(envelope_[idx])});
  }
  std::vector<CounterRng> rngs;
  rngs.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    rngs.push_back(core::sampling_round_rng(seed, round + j));
  }
  std::vector<mapreduce::KeyValue> output;
  try {
    output = sim_->round(
        input,
        [&](const std::vector<mapreduce::KeyValue>& shard,
            std::vector<mapreduce::KeyValue>& emit) {
          for (const mapreduce::KeyValue& kv : shard) {
            const double env = std::bit_cast<double>(kv.value);
            for (std::size_t j = 0; j < k; ++j) {
              std::uint64_t mask =
                  core::sampling_mask(rngs[j], t, kv.key, env);
              while (mask != 0) {
                emit.push_back(
                    {j * 64 +
                         static_cast<std::uint64_t>(__builtin_ctzll(mask)),
                     kv.key});
                mask &= mask - 1;
              }
            }
          }
        },
        [](std::uint64_t key, const std::vector<std::uint64_t>& values,
           std::vector<mapreduce::KeyValue>& emit) {
          for (const std::uint64_t idx : values) emit.push_back({key, idx});
        });
  } catch (const mapreduce::ReducerMemoryExceeded&) {
    // The envelope over-shipped to some (j, q) reducer: the model refuses
    // the batch. Degrade to per-round draws for the rest of the solve —
    // correctness is untouched, only the compression saving is lost.
    compress_k_ = 1;
    batch_valid_ = false;
    return false;
  }
  // Candidate union per round-in-batch (dedupe across sparsifier bits);
  // adopt_cached re-evaluates each candidate's exact mask locally.
  batch_candidates_.assign(k, {});
  for (const mapreduce::KeyValue& kv : output) {
    batch_candidates_[kv.key / 64].push_back(
        static_cast<std::uint32_t>(kv.value));
  }
  for (std::vector<std::uint32_t>& cand : batch_candidates_) {
    std::sort(cand.begin(), cand.end());
    cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
  }
  meter_.add_pass();  // the batch's mappers read the input once
  charge_shard_draw();
  batch_base_ = round;
  batch_t_ = t;
  batch_seed_ = seed;
  batch_valid_ = true;
  return true;
}

const core::SamplingRound& MapReduceSubstrate::adopt_cached(
    const std::vector<double>& prob, std::size_t t, std::uint64_t round) {
  const std::uint64_t j = round - batch_base_;
  const CounterRng round_rng = core::sampling_round_rng(batch_seed_, round);
  supports_scratch_.assign(t, {});
  std::size_t stored_total = 0;
  // Exact local filter: the candidates are a bitwise superset of this
  // round's draw (mask monotone in p), so re-evaluating each candidate's
  // mask at its ACTUAL probability reproduces SamplingEngine::draw's
  // supports exactly — candidates ascend, so the supports do too.
  for (const std::uint32_t idx : batch_candidates_[j]) {
    std::uint64_t mask = core::sampling_mask(round_rng, t, idx, prob[idx]);
    while (mask != 0) {
      supports_scratch_[static_cast<std::size_t>(__builtin_ctzll(mask))]
          .push_back(idx);
      mask &= mask - 1;
      ++stored_total;
    }
  }
  if (j > 0) {
    // This sampling round cost ZERO simulator rounds/passes: the batch
    // round already shipped its candidates. Record the saving; the round
    // counter stays untouched, so meter rounds = simulator rounds < outer
    // rounds.
    meter_.add_saved_rounds(1);
    meter_.add_saved_passes(1);
  }
  meter_.store_edges(stored_total);
  if (j + 1 >= batch_candidates_.size()) batch_valid_ = false;  // exhausted
  return engine_.adopt_supports(prob.size(), t, supports_scratch_);
}

const core::SamplingRound& MapReduceSubstrate::draw(
    const std::vector<double>& prob, std::size_t t, std::uint64_t round,
    std::uint64_t seed) {
  poll_stop("mapreduce.round");
  if (compress_k_ > 1) {
    if (cached_draw_valid(prob, t, round, seed)) {
      return adopt_cached(prob, t, round);
    }
    batch_valid_ = false;  // stale/violated batch: start a fresh one here
    if (predraw_batch(prob, t, round, seed)) {
      return adopt_cached(prob, t, round);
    }
    // Cap fallback: compression just disabled itself; fall through.
  }
  // One genuine simulator round: mappers evaluate sampling_mask over their
  // shards, reducer q collects sparsifier q's support under the memory
  // cap. sample_round charges the pass + stored incidences; the simulator
  // (sharing the substrate meter) charges the round and shuffle volume.
  const auto supports =
      mapreduce::sample_round(*sim_, prob, t, round, seed, &meter_);
  charge_shard_draw();
  return engine_.adopt_supports(prob.size(), t, supports);
}

}  // namespace dp::access
