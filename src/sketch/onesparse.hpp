#pragma once
// 1-sparse recovery over integer vectors.
//
// The basic building block of l0-sampling (and hence of the AGM graph
// sketches the paper uses to implement its sampling rounds): maintain
// (sum of counts, sum of index*count, polynomial fingerprint) under linear
// updates; if the underlying vector is exactly 1-sparse the unique nonzero
// coordinate can be recovered and verified with high probability.

#include <cstddef>
#include <cstdint>
#include <optional>

#include "util/hash.hpp"

namespace dp {

struct Recovered {
  std::uint64_t index;
  std::int64_t count;
};

/// One batched sketch update: vector[index] += delta.
struct SketchUpdate {
  std::uint64_t index;
  std::int64_t delta;
};

class OneSparse {
 public:
  /// `z` is the random fingerprint evaluation point (shared across the
  /// mergeable copies of one sketch).
  explicit OneSparse(std::uint64_t z) : z_(MersenneField::reduce(z)) {}

  /// Apply update vector[index] += delta.
  void update(std::uint64_t index, std::int64_t delta) noexcept;

  /// Apply a batch of updates; final state is identical to updating one by
  /// one (all the accumulators commute). The z-power table is built once
  /// for the batch and the fingerprint bit-product chains of four updates
  /// run interleaved, replacing per-update modular exponentiation — the
  /// dominant cost of update() — with pipelined table lookups.
  void update_many(const SketchUpdate* items, std::size_t n) noexcept;

  /// Merge another structure built with the same z (linearity).
  void merge(const OneSparse& other) noexcept;

  bool is_zero() const noexcept { return w_ == 0 && s_ == 0 && fp_ == 0; }

  /// If the represented vector is exactly 1-sparse, return its nonzero
  /// coordinate; std::nullopt otherwise (sound whp via the fingerprint).
  std::optional<Recovered> recover() const noexcept;

  /// Words of state (for congested-clique / sketch-size accounting).
  static constexpr std::size_t kWords = 3;

  /// Exact state equality (batched and per-item update orders must agree).
  friend bool operator==(const OneSparse&, const OneSparse&) = default;

 private:
  std::uint64_t z_;
  std::int64_t w_ = 0;    // sum of counts
  __int128 s_ = 0;        // sum of index * count
  std::uint64_t fp_ = 0;  // sum of count * z^index  (mod 2^61-1)
};

}  // namespace dp
