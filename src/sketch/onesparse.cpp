#include "sketch/onesparse.hpp"

namespace dp {

namespace {

std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp) noexcept {
  std::uint64_t result = 1;
  base = MersenneField::reduce(base);
  while (exp > 0) {
    if (exp & 1) result = MersenneField::mul(result, base);
    base = MersenneField::mul(base, base);
    exp >>= 1;
  }
  return result;
}

/// count mod p, mapping negative counts into the field.
std::uint64_t field_of(std::int64_t c) noexcept {
  const std::int64_t p = static_cast<std::int64_t>(MersenneField::kPrime);
  std::int64_t r = c % p;
  if (r < 0) r += p;
  return static_cast<std::uint64_t>(r);
}

}  // namespace

void OneSparse::update(std::uint64_t index, std::int64_t delta) noexcept {
  w_ += delta;
  s_ += static_cast<__int128>(index) * delta;
  const std::uint64_t term =
      MersenneField::mul(field_of(delta), pow_mod(z_, index));
  fp_ = MersenneField::add(fp_, term);
}

void OneSparse::update_many(const SketchUpdate* items, std::size_t n) noexcept {
  if (n == 0) return;
  std::uint64_t index_bits = 0;
  for (std::size_t i = 0; i < n; ++i) index_bits |= items[i].index;
  const int bits = index_bits == 0
                       ? 0
                       : 64 - __builtin_clzll(index_bits);
  // z^(2^k) table shared by the whole batch: per update the exponentiation
  // becomes a product over the index's set bits instead of a square-and-
  // multiply chain.
  std::uint64_t sq[64];
  std::uint64_t base = MersenneField::reduce(z_);
  for (int k = 0; k < bits; ++k) {
    sq[k] = base;
    base = MersenneField::mul(base, base);
  }
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint64_t i0 = items[i].index;
    const std::uint64_t i1 = items[i + 1].index;
    const std::uint64_t i2 = items[i + 2].index;
    const std::uint64_t i3 = items[i + 3].index;
    std::uint64_t a0 = 1, a1 = 1, a2 = 1, a3 = 1;
    for (int k = 0; k < bits; ++k) {
      const std::uint64_t zk = sq[k];
      a0 = MersenneField::mul(a0, (i0 >> k) & 1 ? zk : 1);
      a1 = MersenneField::mul(a1, (i1 >> k) & 1 ? zk : 1);
      a2 = MersenneField::mul(a2, (i2 >> k) & 1 ? zk : 1);
      a3 = MersenneField::mul(a3, (i3 >> k) & 1 ? zk : 1);
    }
    const std::uint64_t pows[4] = {a0, a1, a2, a3};
    for (std::size_t j = 0; j < 4; ++j) {
      const SketchUpdate& item = items[i + j];
      w_ += item.delta;
      s_ += static_cast<__int128>(item.index) * item.delta;
      fp_ = MersenneField::add(
          fp_, MersenneField::mul(field_of(item.delta), pows[j]));
    }
  }
  for (; i < n; ++i) update(items[i].index, items[i].delta);
}

void OneSparse::merge(const OneSparse& other) noexcept {
  w_ += other.w_;
  s_ += other.s_;
  fp_ = MersenneField::add(fp_, other.fp_);
}

std::optional<Recovered> OneSparse::recover() const noexcept {
  if (w_ == 0) return std::nullopt;
  if (s_ % w_ != 0) return std::nullopt;
  const __int128 idx128 = s_ / w_;
  if (idx128 < 0) return std::nullopt;
  const auto index = static_cast<std::uint64_t>(idx128);
  // Verify fingerprint: fp must equal w * z^index.
  const std::uint64_t expect =
      MersenneField::mul(field_of(w_), pow_mod(z_, index));
  if (expect != fp_) return std::nullopt;
  return Recovered{index, w_};
}

}  // namespace dp
