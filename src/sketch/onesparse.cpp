#include "sketch/onesparse.hpp"

namespace dp {

namespace {

std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp) noexcept {
  std::uint64_t result = 1;
  base = MersenneField::reduce(base);
  while (exp > 0) {
    if (exp & 1) result = MersenneField::mul(result, base);
    base = MersenneField::mul(base, base);
    exp >>= 1;
  }
  return result;
}

/// count mod p, mapping negative counts into the field.
std::uint64_t field_of(std::int64_t c) noexcept {
  const std::int64_t p = static_cast<std::int64_t>(MersenneField::kPrime);
  std::int64_t r = c % p;
  if (r < 0) r += p;
  return static_cast<std::uint64_t>(r);
}

}  // namespace

void OneSparse::update(std::uint64_t index, std::int64_t delta) noexcept {
  w_ += delta;
  s_ += static_cast<__int128>(index) * delta;
  const std::uint64_t term =
      MersenneField::mul(field_of(delta), pow_mod(z_, index));
  fp_ = MersenneField::add(fp_, term);
}

void OneSparse::merge(const OneSparse& other) noexcept {
  w_ += other.w_;
  s_ += other.s_;
  fp_ = MersenneField::add(fp_, other.fp_);
}

std::optional<Recovered> OneSparse::recover() const noexcept {
  if (w_ == 0) return std::nullopt;
  if (s_ % w_ != 0) return std::nullopt;
  const __int128 idx128 = s_ / w_;
  if (idx128 < 0) return std::nullopt;
  const auto index = static_cast<std::uint64_t>(idx128);
  // Verify fingerprint: fp must equal w * z^index.
  const std::uint64_t expect =
      MersenneField::mul(field_of(w_), pow_mod(z_, index));
  if (expect != fp_) return std::nullopt;
  return Recovered{index, w_};
}

}  // namespace dp
