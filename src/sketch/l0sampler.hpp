#pragma once
// l0-sampling sketches.
//
// An L0Sampler returns a (near-)uniform nonzero coordinate of a dynamically
// updated integer vector using polylog space, and is *linear*: sketches of
// two vectors merge by addition. The paper implements every sampling round
// with these (footnote 1 and Section 4.2); the MapReduce mapper computes
// them per vertex and the reducer merges and queries.
//
// Construction: geometric subsampling levels l = 0..L, level l keeping
// index i iff hash(i) falls below 2^-l; each level holds a OneSparse
// structure. Recovery scans levels for an exactly-1-sparse one. Multiple
// independent repetitions boost the success probability.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sketch/onesparse.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace dp {

/// Shared randomness for a family of mergeable l0-samplers: all copies that
/// should be merged must be built from the same L0SamplerSeed.
struct L0SamplerSeed {
  /// levels ~ log2(universe), reps = independent repetitions.
  L0SamplerSeed(int levels, int reps, Rng& rng);

  int levels;
  int reps;
  std::vector<KWiseHash> level_hash;       // one per repetition
  std::vector<std::uint64_t> fingerprint;  // z per (rep, level)
};

class L0Sampler {
 public:
  explicit L0Sampler(const L0SamplerSeed& seed);

  /// vector[index] += delta.
  void update(std::uint64_t index, std::int64_t delta) noexcept;

  /// Batched update, equivalent to update() per item but iterating the
  /// (rep) hash families in the OUTER loop: each family's coefficients are
  /// loaded once for the whole batch and the rep's cell row stays
  /// cache-resident, instead of touching all reps * levels cells per item.
  void update_batch(std::span<const SketchUpdate> items) noexcept;

  /// Merge a sampler built from the same seed.
  void merge(const L0Sampler& other) noexcept;

  /// Exact sketch-state equality (same seed assumed); lets tests and the
  /// bench gate assert update_batch == per-item updates bit-for-bit.
  friend bool operator==(const L0Sampler& a, const L0Sampler& b) noexcept {
    return a.cells_ == b.cells_;
  }

  /// A nonzero coordinate of the summed vector, or nullopt if recovery
  /// failed (all levels collided) or the vector is zero.
  std::optional<Recovered> sample() const noexcept;

  /// Number of machine words of sketch state.
  std::size_t words() const noexcept {
    return cells_.size() * OneSparse::kWords;
  }

 private:
  const L0SamplerSeed* seed_;
  std::vector<OneSparse> cells_;  // reps * levels, row-major by rep

  std::size_t cell_index(int rep, int level) const noexcept {
    return static_cast<std::size_t>(rep) * seed_->levels + level;
  }
};

}  // namespace dp
