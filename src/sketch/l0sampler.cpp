#include "sketch/l0sampler.hpp"

namespace dp {

L0SamplerSeed::L0SamplerSeed(int levels_in, int reps_in, Rng& rng)
    : levels(levels_in), reps(reps_in) {
  level_hash.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    // 2-wise independence suffices for the subsampling levels in practice;
    // we use 4-wise for a comfortable margin.
    level_hash.emplace_back(4, rng);
  }
  fingerprint.resize(static_cast<std::size_t>(reps) * levels);
  for (auto& z : fingerprint) z = rng.uniform(MersenneField::kPrime - 2) + 1;
}

L0Sampler::L0Sampler(const L0SamplerSeed& seed) : seed_(&seed) {
  cells_.reserve(static_cast<std::size_t>(seed.reps) * seed.levels);
  for (int r = 0; r < seed.reps; ++r) {
    for (int l = 0; l < seed.levels; ++l) {
      cells_.emplace_back(
          seed.fingerprint[static_cast<std::size_t>(r) * seed.levels + l]);
    }
  }
}

void L0Sampler::update(std::uint64_t index, std::int64_t delta) noexcept {
  for (int r = 0; r < seed_->reps; ++r) {
    const std::uint64_t h = seed_->level_hash[r](index);
    // Level l receives the update iff the top l bits of h/p are zero, i.e.
    // h < p / 2^l. Level 0 receives everything.
    std::uint64_t threshold = MersenneField::kPrime;
    for (int l = 0; l < seed_->levels; ++l) {
      if (h >= threshold) break;
      cells_[cell_index(r, l)].update(index, delta);
      threshold >>= 1;
    }
  }
}

void L0Sampler::update_batch(std::span<const SketchUpdate> items) noexcept {
  // Rep-major over cache-resident item blocks. Per rep, the block hashes
  // once through KWiseHash::many (interleaved Horner chains), then each
  // subsampling level receives its qualifying updates as ONE
  // OneSparse::update_many call — which replaces the per-update modular
  // exponentiation (the dominant cost) with a shared z-power table and
  // pipelined bit-product chains. Final state is bit-identical to calling
  // update() per item (every accumulator commutes).
  constexpr std::size_t kBlock = 256;
  std::uint64_t xs[kBlock];
  std::uint64_t hs[kBlock];
  SketchUpdate level_items[kBlock];
  for (std::size_t lo = 0; lo < items.size(); lo += kBlock) {
    const std::size_t len = std::min(kBlock, items.size() - lo);
    for (std::size_t i = 0; i < len; ++i) xs[i] = items[lo + i].index;
    for (int r = 0; r < seed_->reps; ++r) {
      seed_->level_hash[r].many(xs, len, hs);
      OneSparse* row = cells_.data() + static_cast<std::size_t>(r) *
                                           seed_->levels;
      std::uint64_t threshold = MersenneField::kPrime;
      for (int l = 0; l < seed_->levels; ++l) {
        std::size_t count = 0;
        for (std::size_t i = 0; i < len; ++i) {
          if (hs[i] < threshold) level_items[count++] = items[lo + i];
        }
        if (count == 0) break;  // deeper levels only shrink
        row[l].update_many(level_items, count);
        threshold >>= 1;
      }
    }
  }
}

void L0Sampler::merge(const L0Sampler& other) noexcept {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].merge(other.cells_[i]);
  }
}

std::optional<Recovered> L0Sampler::sample() const noexcept {
  // Prefer deeper levels (sparser) but accept any successful recovery;
  // scanning deepest-first gives closer-to-uniform samples.
  for (int r = 0; r < seed_->reps; ++r) {
    for (int l = seed_->levels - 1; l >= 0; --l) {
      const auto rec = cells_[cell_index(r, l)].recover();
      if (rec.has_value()) return rec;
    }
  }
  return std::nullopt;
}

}  // namespace dp
