#pragma once
// Sketch-based spanning forest: the paper's Section 1 worked example of
// "compute sketches in 1 round, use them sequentially in O(log n) steps".
//
// Boruvka over AGM sketches: O(log n) independent sketch copies are computed
// in a single (non-adaptive) pass; round r merges each current component's
// vertex sketches from copy r and samples one outgoing edge per component.

#include <vector>

#include "graph/graph.hpp"
#include "util/accounting.hpp"

namespace dp {

struct SketchForestResult {
  /// Edges of the produced spanning forest (subset of g's edge set as
  /// endpoint pairs; sketches do not retain edge ids).
  std::vector<Edge> forest;
  /// Components found (should equal the true component count whp).
  std::size_t components = 0;
  /// Boruvka rounds executed (deferred, data-free "use" steps).
  std::size_t use_steps = 0;
  /// Sampling rounds touching the input (always 1 here).
  std::size_t sampling_rounds = 1;
};

/// Compute a spanning forest of g using only linear sketches of its
/// incidence structure. `seed` drives all randomness; `meter` (optional) is
/// charged sketch words and one sampling round.
SketchForestResult sketch_spanning_forest(const Graph& g, std::uint64_t seed,
                                          ResourceMeter* meter = nullptr);

}  // namespace dp
