#pragma once
// AGM graph sketches (Ahn-Guha-McGregor): per-vertex linear sketches of the
// signed vertex-edge incidence vector. Merging the sketches of a vertex set
// S cancels all edges internal to S, leaving exactly the boundary edges
// delta(S); an l0-sample then returns a random edge crossing the cut. This
// is the paper's footnote-1 primitive and the engine of the sketch-based
// spanning forest (the "1 sampling round, log n deferred uses" example of
// Section 1).

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "sketch/l0sampler.hpp"
#include "util/accounting.hpp"

namespace dp {

/// An edge recovered from an AGM sketch query.
struct SampledEdge {
  Vertex u;
  Vertex v;
};

/// One "copy" of the AGM sketch: an l0-sampler per vertex over the edge
/// universe [n^2], where edge (u, v), u < v, contributes +1 at u's sketch
/// and -1 at v's sketch at index u*n+v.
class AgmSketch {
 public:
  /// Build sketches for the n vertices of g. `meter`, if given, is charged
  /// one sketch word per word of state (congested clique accounting).
  AgmSketch(const Graph& g, const L0SamplerSeed& seed,
            ResourceMeter* meter = nullptr);

  /// Empty sketch over n vertices (zero edge vector). The dynamic-graph
  /// substrate starts here and feeds churn through apply(): sketches are
  /// linear, so inserts and deletes are the same operation up to sign.
  AgmSketch(std::size_t n, const L0SamplerSeed& seed,
            ResourceMeter* meter = nullptr);

  /// Apply a batch of edge updates with the given sign (+1 insert, -1
  /// delete). Updates are CSR-grouped per vertex exactly like construction,
  /// so apply(edges, +1) on an empty sketch is bitwise identical to
  /// building from the graph. `meter`, if given, is charged the touched
  /// sketch words (each endpoint's full sampler state per batch).
  void apply(std::span<const Edge> edges, int sign,
             ResourceMeter* meter = nullptr);

  /// Exact state equality (same seed family assumed). Linearity makes this
  /// the churn-mirror test: base + deltas == sketch of the mutated graph.
  friend bool operator==(const AgmSketch& a, const AgmSketch& b) noexcept {
    return a.n_ == b.n_ && a.per_vertex_ == b.per_vertex_;
  }

  std::size_t num_vertices() const noexcept { return n_; }

  /// Sample an edge leaving the vertex set whose members are flagged in
  /// `in_set`. Merges member sketches (linearity) and queries. Returns
  /// nullopt if no boundary edge was recovered.
  std::optional<SampledEdge> sample_boundary(
      const std::vector<char>& in_set) const;

  /// Sample an edge incident to a single vertex.
  std::optional<SampledEdge> sample_incident(Vertex v) const;

  /// Total sketch state in words across all vertices.
  std::size_t words() const noexcept;

 private:
  std::optional<SampledEdge> decode(const Recovered& r) const noexcept;

  std::size_t n_;
  std::vector<L0Sampler> per_vertex_;
};

}  // namespace dp
