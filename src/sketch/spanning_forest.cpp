#include "sketch/spanning_forest.hpp"

#include <cmath>
#include <memory>

#include "graph/union_find.hpp"
#include "sketch/agm.hpp"
#include "util/rng.hpp"

namespace dp {

SketchForestResult sketch_spanning_forest(const Graph& g, std::uint64_t seed,
                                          ResourceMeter* meter) {
  SketchForestResult result;
  const std::size_t n = g.num_vertices();
  if (n == 0) return result;

  Rng rng(seed);
  const int boruvka_rounds =
      std::max(1, static_cast<int>(std::ceil(std::log2(std::max<std::size_t>(
                      2, n)))) +
                      1);
  const int levels =
      std::max(4, 2 * static_cast<int>(std::ceil(std::log2(
                        std::max<std::size_t>(2, n)))) +
                      2);
  constexpr int kReps = 8;

  // One independent sketch copy per Boruvka round, all computable in a
  // single pass over the edges (this is the non-adaptive part).
  std::vector<L0SamplerSeed> seeds;
  std::vector<std::unique_ptr<AgmSketch>> copies;
  seeds.reserve(boruvka_rounds);
  copies.reserve(boruvka_rounds);
  for (int r = 0; r < boruvka_rounds; ++r) {
    seeds.emplace_back(levels, kReps, rng);
  }
  for (int r = 0; r < boruvka_rounds; ++r) {
    copies.push_back(std::make_unique<AgmSketch>(g, seeds[r], meter));
  }
  if (meter != nullptr) {
    meter->add_round(1);  // all sketches in one sampling round
    meter->add_pass(1);
  }

  // Deferred use: Boruvka merging with a fresh sketch copy per round.
  UnionFind uf(n);
  for (int round = 0; round < boruvka_rounds; ++round) {
    ++result.use_steps;
    // Collect current components.
    std::vector<std::vector<Vertex>> comps(n);
    for (std::size_t v = 0; v < n; ++v) {
      comps[uf.find(static_cast<Vertex>(v))].push_back(
          static_cast<Vertex>(v));
    }
    bool merged_any = false;
    std::vector<char> in_set(n, 0);
    for (std::size_t root = 0; root < n; ++root) {
      if (comps[root].empty()) continue;
      for (Vertex v : comps[root]) in_set[v] = 1;
      const auto edge = copies[round]->sample_boundary(in_set);
      for (Vertex v : comps[root]) in_set[v] = 0;
      if (!edge.has_value()) continue;
      if (uf.unite(edge->u, edge->v)) {
        result.forest.push_back(Edge{edge->u, edge->v, 1.0});
        merged_any = true;
      }
    }
    if (!merged_any) break;
  }
  result.components = uf.num_components();
  return result;
}

}  // namespace dp
