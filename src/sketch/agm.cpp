#include "sketch/agm.hpp"

namespace dp {

AgmSketch::AgmSketch(std::size_t n, const L0SamplerSeed& seed,
                     ResourceMeter* meter)
    : n_(n) {
  per_vertex_.reserve(n_);
  for (std::size_t v = 0; v < n_; ++v) per_vertex_.emplace_back(seed);
  if (meter != nullptr) meter->add_sketch_words(words());
}

AgmSketch::AgmSketch(const Graph& g, const L0SamplerSeed& seed,
                     ResourceMeter* meter)
    : AgmSketch(g.num_vertices(), seed) {
  apply(g.edges(), +1);
  if (meter != nullptr) meter->add_sketch_words(words());
}

void AgmSketch::apply(std::span<const Edge> edges, int sign,
                      ResourceMeter* meter) {
  // Group the incidence updates by vertex (CSR) and apply one batch per
  // vertex: update_batch hashes each rep's family once across the vertex's
  // whole incidence list while that vertex's cells stay cache-resident.
  std::vector<std::uint32_t> offset(n_ + 1, 0);
  for (const Edge& e : edges) {
    ++offset[e.u + 1];
    ++offset[e.v + 1];
  }
  for (std::size_t v = 0; v < n_; ++v) offset[v + 1] += offset[v];
  std::vector<SketchUpdate> updates(offset[n_]);
  std::vector<std::uint32_t> cursor(offset.begin(), offset.end() - 1);
  const auto d = static_cast<std::int64_t>(sign);
  for (const Edge& e : edges) {
    const Vertex lo = e.u < e.v ? e.u : e.v;
    const Vertex hi = e.u < e.v ? e.v : e.u;
    const std::uint64_t index = static_cast<std::uint64_t>(lo) * n_ + hi;
    updates[cursor[lo]++] = SketchUpdate{index, +d};
    updates[cursor[hi]++] = SketchUpdate{index, -d};
  }
  std::size_t touched_words = 0;
  for (std::size_t v = 0; v < n_; ++v) {
    if (offset[v] == offset[v + 1]) continue;
    per_vertex_[v].update_batch(
        {updates.data() + offset[v], updates.data() + offset[v + 1]});
    touched_words += per_vertex_[v].words();
  }
  if (meter != nullptr) meter->add_sketch_words(touched_words);
}

std::optional<SampledEdge> AgmSketch::decode(
    const Recovered& r) const noexcept {
  const std::uint64_t index = r.index;
  const auto u = static_cast<Vertex>(index / n_);
  const auto v = static_cast<Vertex>(index % n_);
  if (u >= n_ || v >= n_ || u == v) return std::nullopt;
  return SampledEdge{u, v};
}

std::optional<SampledEdge> AgmSketch::sample_boundary(
    const std::vector<char>& in_set) const {
  // Merge member sketches; internal edges cancel (+1 and -1 both included).
  std::optional<L0Sampler> merged;
  for (std::size_t v = 0; v < n_; ++v) {
    if (!in_set[v]) continue;
    if (!merged.has_value()) {
      merged = per_vertex_[v];
    } else {
      merged->merge(per_vertex_[v]);
    }
  }
  if (!merged.has_value()) return std::nullopt;
  const auto rec = merged->sample();
  if (!rec.has_value()) return std::nullopt;
  return decode(*rec);
}

std::optional<SampledEdge> AgmSketch::sample_incident(Vertex v) const {
  const auto rec = per_vertex_[v].sample();
  if (!rec.has_value()) return std::nullopt;
  return decode(*rec);
}

std::size_t AgmSketch::words() const noexcept {
  std::size_t total = 0;
  for (const auto& sampler : per_vertex_) total += sampler.words();
  return total;
}

}  // namespace dp
