#pragma once
// Reservoir sampling over edge streams: a uniform sample of k edges in one
// pass and O(k) space — the streaming-model implementation of the uniform
// edge sampling that Lemma 19/20 (and the filtering baseline) rely on.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dp {

class EdgeReservoir {
 public:
  EdgeReservoir(std::size_t capacity, std::uint64_t seed)
      : capacity_(capacity), rng_(seed) {}

  /// Offer the next stream element.
  void offer(EdgeId id, const Edge& e);

  /// Uniformly sampled (id, edge) pairs seen so far (size min(k, stream)).
  const std::vector<std::pair<EdgeId, Edge>>& sample() const noexcept {
    return sample_;
  }

  std::size_t stream_length() const noexcept { return seen_; }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  Rng rng_;
  std::size_t seen_ = 0;
  std::vector<std::pair<EdgeId, Edge>> sample_;
};

}  // namespace dp
