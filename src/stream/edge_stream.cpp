#include "stream/edge_stream.hpp"

#include <numeric>

#include "util/rng.hpp"

namespace dp {

void EdgeStream::for_each_pass(
    const std::function<void(const Edge&)>& fn) const {
  for_each_pass<const std::function<void(const Edge&)>&>(fn);
}

void EdgeStream::for_each_pass_shuffled(
    std::uint64_t seed, const std::function<void(const Edge&)>& fn) const {
  for_each_pass_shuffled<const std::function<void(const Edge&)>&>(seed, fn);
}

void EdgeStream::ensure_order(std::uint64_t seed) const {
  if (order_valid_ && order_seed_ == seed &&
      order_.size() == graph_->num_edges()) {
    return;
  }
  order_.resize(graph_->num_edges());
  std::iota(order_.begin(), order_.end(), EdgeId{0});
  Rng rng(seed);
  rng.shuffle(order_);
  order_seed_ = seed;
  order_valid_ = true;
}

}  // namespace dp
