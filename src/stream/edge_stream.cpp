#include "stream/edge_stream.hpp"

#include <numeric>
#include <vector>

namespace dp {

void EdgeStream::for_each_pass(
    const std::function<void(const Edge&)>& fn) const {
  if (meter_ != nullptr) meter_->add_pass();
  for (const Edge& e : graph_->edges()) fn(e);
}

void EdgeStream::for_each_pass_shuffled(
    std::uint64_t seed, const std::function<void(const Edge&)>& fn) const {
  if (meter_ != nullptr) meter_->add_pass();
  std::vector<std::size_t> order(graph_->num_edges());
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng(seed);
  rng.shuffle(order);
  for (std::size_t idx : order) fn(graph_->edge(static_cast<EdgeId>(idx)));
}

}  // namespace dp
