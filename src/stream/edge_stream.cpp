#include "stream/edge_stream.hpp"

#include <numeric>

#include "util/rng.hpp"

namespace dp {

EdgeStream::~EdgeStream() {
  ShuffleOrder* node = orders_.load(std::memory_order_acquire);
  while (node != nullptr) {
    ShuffleOrder* next = node->next;
    delete node;
    node = next;
  }
}

void EdgeStream::for_each_pass(
    const std::function<void(const Edge&)>& fn) const {
  for_each_pass<const std::function<void(const Edge&)>&>(fn);
}

void EdgeStream::for_each_pass_shuffled(
    std::uint64_t seed, const std::function<void(const Edge&)>& fn) const {
  for_each_pass_shuffled<const std::function<void(const Edge&)>&>(seed, fn);
}

const std::vector<EdgeId>& EdgeStream::order_for(std::uint64_t seed) const {
  // Lock-free fast path: walk the published entries (acquire pairs with the
  // release store below, so a found entry's vector is fully built).
  for (const ShuffleOrder* node = orders_.load(std::memory_order_acquire);
       node != nullptr; node = node->next) {
    if (node->seed == seed) return node->order;
  }
  const std::lock_guard<std::mutex> lock(order_mutex_);
  // Re-check under the lock: another thread may have built this seed while
  // we waited.
  for (const ShuffleOrder* node = orders_.load(std::memory_order_relaxed);
       node != nullptr; node = node->next) {
    if (node->seed == seed) return node->order;
  }
  auto* entry = new ShuffleOrder;
  entry->seed = seed;
  entry->order.resize(graph_->num_edges());
  std::iota(entry->order.begin(), entry->order.end(), EdgeId{0});
  Rng rng(seed);
  rng.shuffle(entry->order);
  entry->next = orders_.load(std::memory_order_relaxed);
  orders_.store(entry, std::memory_order_release);
  return entry->order;
}

}  // namespace dp
