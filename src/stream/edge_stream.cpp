#include "stream/edge_stream.hpp"

#include <memory>
#include <numeric>

#include "util/rng.hpp"

namespace dp {

EdgeStream::~EdgeStream() {
  ShuffleOrder* node = orders_.load(std::memory_order_acquire);
  while (node != nullptr) {
    ShuffleOrder* next = node->next;
    delete node;
    node = next;
  }
}

void EdgeStream::for_each_pass(
    const std::function<void(const Edge&)>& fn) const {
  for_each_pass<const std::function<void(const Edge&)>&>(fn);
}

void EdgeStream::for_each_pass_shuffled(
    std::uint64_t seed, const std::function<void(const Edge&)>& fn) const {
  for_each_pass_shuffled<const std::function<void(const Edge&)>&>(seed, fn);
}

const std::vector<EdgeId>& EdgeStream::order_for(std::uint64_t seed) const {
  // Lock-free fast path: walk the published entries (acquire pairs with the
  // release store below, so a found entry's vector is fully built).
  for (const ShuffleOrder* node = orders_.load(std::memory_order_acquire);
       node != nullptr; node = node->next) {
    if (node->seed == seed) return node->order;
  }
  const std::lock_guard<std::mutex> lock(order_mutex_);
  // Re-check under the lock: another thread may have built this seed while
  // we waited.
  for (const ShuffleOrder* node = orders_.load(std::memory_order_relaxed);
       node != nullptr; node = node->next) {
    if (node->seed == seed) return node->order;
  }
  // All-or-nothing publication: the entry is owned locally until the
  // permutation is completely built, and becomes visible to the lock-free
  // readers above only via the final release store. A build that dies
  // mid-way (allocation failure, a fault injected into the first pass that
  // triggered the build) publishes NOTHING — concurrent passes and the
  // retry never observe a partial permutation, and the unwound entry is
  // reclaimed by the unique_ptr.
  auto entry = std::make_unique<ShuffleOrder>();
  entry->seed = seed;
  // Graph backend: permute edge ids. File backend: permute BLOCK ids, so a
  // "shuffled" pass is still sequential IO within each block.
  entry->order.resize(file_ != nullptr ? file_->num_blocks()
                                       : graph_->num_edges());
  std::iota(entry->order.begin(), entry->order.end(), EdgeId{0});
  Rng rng(seed);
  rng.shuffle(entry->order);
  entry->next = orders_.load(std::memory_order_relaxed);
  ShuffleOrder* published = entry.release();
  orders_.store(published, std::memory_order_release);
  return published->order;
}

}  // namespace dp
