#pragma once
// Semi-streaming access model: sequential read-only passes over the edge
// list with pass counting. Algorithms in the streaming model may keep only
// o(m) state; the ResourceMeter records passes and peak stored edges so
// tests can assert the model is respected.
//
// Two backends behind one pass interface:
//  - an in-RAM Graph (the original mode): passes walk the edge vector;
//  - a file-backed EdgeFileStream (out-of-core): passes scan DPEF blocks
//    through the stream's double-buffered prefetcher, so a pass never
//    holds more than two blocks of edges in memory.
// Shuffled passes differ per backend: the Graph mode permutes EDGES, the
// file mode permutes BLOCKS (sequential IO within each block — a full
// per-edge permutation would defeat out-of-core streaming). Both model
// "arbitrary arrival order"; every consumer in this library derives its
// retained/stored sets from per-edge-id draws that are invariant to
// arrival order, so solves are bitwise identical across backends (the
// contract tests/test_out_of_core.cpp pins).
//
// Passes are templated on the callable so hot per-edge loops inline instead
// of paying a std::function indirection per edge; the std::function
// overloads remain for ABI users holding type-erased callbacks.
//
// The shuffled-order cache follows the same mutex + acquire/release pattern
// as Graph::neighbors' lazy CSR: each seed's permutation is built once,
// under a mutex, into an immutable entry pushed onto a lock-free list, so
// concurrent first passes (including passes with different seeds) are safe.

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "graph/graph.hpp"
#include "stream/edge_file.hpp"
#include "util/accounting.hpp"

namespace dp {

class EdgeStream {
 public:
  /// Stream over g's edges in their stored order. The graph must outlive
  /// the stream.
  explicit EdgeStream(const Graph& g, ResourceMeter* meter = nullptr)
      : graph_(&g), meter_(meter) {}

  /// Stream over a binary edge file. The stream object must outlive this
  /// wrapper; IO accounting goes to the meter attached to `file` itself
  /// (set_meter), while `meter` here counts model passes.
  explicit EdgeStream(stream::EdgeFileStream& file,
                      ResourceMeter* meter = nullptr)
      : file_(&file), meter_(meter) {}

  EdgeStream(const EdgeStream&) = delete;
  EdgeStream& operator=(const EdgeStream&) = delete;

  ~EdgeStream();

  bool file_backed() const noexcept { return file_ != nullptr; }

  std::size_t num_vertices() const noexcept {
    return file_ != nullptr ? file_->num_vertices() : graph_->num_vertices();
  }
  std::size_t num_edges() const noexcept {
    return file_ != nullptr ? file_->num_edges() : graph_->num_edges();
  }

  /// One pass: invoke fn(edge) for every edge in order. Increments the pass
  /// counter. The callable is a template parameter (devirtualized).
  template <typename Fn>
  void for_each_pass(Fn&& fn) const {
    if (meter_ != nullptr) meter_->add_pass();
    if (file_ != nullptr) {
      file_->for_each([&fn](EdgeId, const Edge& e) { fn(e); });
      return;
    }
    for (const Edge& e : graph_->edges()) fn(e);
  }

  /// Type-erased overload for callers holding a std::function.
  void for_each_pass(const std::function<void(const Edge&)>& fn) const;

  /// One pass that also yields each edge's id: fn(id, edge). The access
  /// substrates use this to map arrivals onto their retained-index space.
  template <typename Fn>
  void for_each_pass_indexed(Fn&& fn) const {
    if (meter_ != nullptr) meter_->add_pass();
    if (file_ != nullptr) {
      file_->for_each(fn);
      return;
    }
    const std::size_t m = graph_->num_edges();
    for (EdgeId e = 0; e < m; ++e) fn(e, graph_->edge(e));
  }

  /// One pass in a random order determined by `seed` (models adversarial /
  /// arbitrary arrival order differing between passes). Graph backend:
  /// per-edge permutation; file backend: per-BLOCK permutation (see file
  /// header). The permutation is cached per seed as an immutable entry
  /// (repeated passes with the same seed rebuild nothing); only the index
  /// order is materialized, never the edges. Safe to call concurrently,
  /// including concurrent first passes.
  template <typename Fn>
  void for_each_pass_shuffled(std::uint64_t seed, Fn&& fn) const {
    for_each_pass_shuffled_indexed(seed,
                                   [&fn](EdgeId, const Edge& e) { fn(e); });
  }

  /// Type-erased overload for callers holding a std::function.
  void for_each_pass_shuffled(std::uint64_t seed,
                              const std::function<void(const Edge&)>& fn)
      const;

  /// Shuffled pass that also yields each edge's id: fn(id, edge).
  template <typename Fn>
  void for_each_pass_shuffled_indexed(std::uint64_t seed, Fn&& fn) const {
    if (meter_ != nullptr) meter_->add_pass();
    if (file_ != nullptr) {
      const std::vector<EdgeId>& blocks = order_for(seed);
      file_->scan_blocks(
          blocks.data(), blocks.size(),
          [&fn](EdgeId base, const Edge* edges, std::size_t count) {
            for (std::size_t i = 0; i < count; ++i) {
              fn(static_cast<EdgeId>(base + i), edges[i]);
            }
          });
      return;
    }
    for (EdgeId idx : order_for(seed)) fn(idx, graph_->edge(idx));
  }

  ResourceMeter* meter() const noexcept { return meter_; }

 private:
  /// One immutable cached permutation (edge ids for the Graph backend,
  /// block ids for the file backend). Entries are only ever prepended to
  /// the list and freed by the destructor, so readers traverse without
  /// locking (acquire loads pair with the release store publishing a new
  /// fully-built entry).
  struct ShuffleOrder {
    std::uint64_t seed;
    std::vector<EdgeId> order;
    ShuffleOrder* next;
  };

  const std::vector<EdgeId>& order_for(std::uint64_t seed) const;

  const Graph* graph_ = nullptr;
  stream::EdgeFileStream* file_ = nullptr;
  ResourceMeter* meter_;
  mutable std::atomic<ShuffleOrder*> orders_{nullptr};
  mutable std::mutex order_mutex_;  // serializes permutation builds
};

}  // namespace dp
