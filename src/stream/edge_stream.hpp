#pragma once
// Semi-streaming access model: sequential read-only passes over the edge
// list with pass counting. Algorithms in the streaming model may keep only
// o(m) state; the ResourceMeter records passes and peak stored edges so
// tests can assert the model is respected.

#include <functional>

#include "graph/graph.hpp"
#include "util/accounting.hpp"
#include "util/rng.hpp"

namespace dp {

class EdgeStream {
 public:
  /// Stream over g's edges in their stored order. The graph must outlive
  /// the stream.
  explicit EdgeStream(const Graph& g, ResourceMeter* meter = nullptr)
      : graph_(&g), meter_(meter) {}

  std::size_t num_vertices() const noexcept { return graph_->num_vertices(); }
  std::size_t num_edges() const noexcept { return graph_->num_edges(); }

  /// One pass: invoke fn(edge) for every edge in order. Increments the pass
  /// counter.
  void for_each_pass(const std::function<void(const Edge&)>& fn) const;

  /// One pass in a random order determined by `seed` (models adversarial /
  /// arbitrary arrival order differing between passes).
  void for_each_pass_shuffled(std::uint64_t seed,
                              const std::function<void(const Edge&)>& fn)
      const;

  ResourceMeter* meter() const noexcept { return meter_; }

 private:
  const Graph* graph_;
  ResourceMeter* meter_;
};

}  // namespace dp
