#pragma once
// Semi-streaming access model: sequential read-only passes over the edge
// list with pass counting. Algorithms in the streaming model may keep only
// o(m) state; the ResourceMeter records passes and peak stored edges so
// tests can assert the model is respected.
//
// Passes are templated on the callable so hot per-edge loops inline instead
// of paying a std::function indirection per edge; the std::function
// overloads remain for ABI users holding type-erased callbacks.
//
// The shuffled-order cache follows the same mutex + acquire/release pattern
// as Graph::neighbors' lazy CSR: each seed's permutation is built once,
// under a mutex, into an immutable entry pushed onto a lock-free list, so
// concurrent first passes (including passes with different seeds) are safe.

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "graph/graph.hpp"
#include "util/accounting.hpp"

namespace dp {

class EdgeStream {
 public:
  /// Stream over g's edges in their stored order. The graph must outlive
  /// the stream.
  explicit EdgeStream(const Graph& g, ResourceMeter* meter = nullptr)
      : graph_(&g), meter_(meter) {}

  EdgeStream(const EdgeStream&) = delete;
  EdgeStream& operator=(const EdgeStream&) = delete;

  ~EdgeStream();

  std::size_t num_vertices() const noexcept { return graph_->num_vertices(); }
  std::size_t num_edges() const noexcept { return graph_->num_edges(); }

  /// One pass: invoke fn(edge) for every edge in order. Increments the pass
  /// counter. The callable is a template parameter (devirtualized).
  template <typename Fn>
  void for_each_pass(Fn&& fn) const {
    if (meter_ != nullptr) meter_->add_pass();
    for (const Edge& e : graph_->edges()) fn(e);
  }

  /// Type-erased overload for callers holding a std::function.
  void for_each_pass(const std::function<void(const Edge&)>& fn) const;

  /// One pass that also yields each edge's id: fn(id, edge). The access
  /// substrates use this to map arrivals onto their retained-index space.
  template <typename Fn>
  void for_each_pass_indexed(Fn&& fn) const {
    if (meter_ != nullptr) meter_->add_pass();
    const std::size_t m = graph_->num_edges();
    for (EdgeId e = 0; e < m; ++e) fn(e, graph_->edge(e));
  }

  /// One pass in a random order determined by `seed` (models adversarial /
  /// arbitrary arrival order differing between passes). The permutation is
  /// cached per seed as an immutable entry (repeated passes with the same
  /// seed rebuild nothing); only the index order is materialized, never the
  /// edges. Safe to call concurrently, including concurrent first passes.
  template <typename Fn>
  void for_each_pass_shuffled(std::uint64_t seed, Fn&& fn) const {
    if (meter_ != nullptr) meter_->add_pass();
    for (EdgeId idx : order_for(seed)) fn(graph_->edge(idx));
  }

  /// Type-erased overload for callers holding a std::function.
  void for_each_pass_shuffled(std::uint64_t seed,
                              const std::function<void(const Edge&)>& fn)
      const;

  /// Shuffled pass that also yields each edge's id: fn(id, edge).
  template <typename Fn>
  void for_each_pass_shuffled_indexed(std::uint64_t seed, Fn&& fn) const {
    if (meter_ != nullptr) meter_->add_pass();
    for (EdgeId idx : order_for(seed)) fn(idx, graph_->edge(idx));
  }

  ResourceMeter* meter() const noexcept { return meter_; }

 private:
  /// One immutable cached permutation. Entries are only ever prepended to
  /// the list and freed by the destructor, so readers traverse without
  /// locking (acquire loads pair with the release store publishing a new
  /// fully-built entry).
  struct ShuffleOrder {
    std::uint64_t seed;
    std::vector<EdgeId> order;
    ShuffleOrder* next;
  };

  const std::vector<EdgeId>& order_for(std::uint64_t seed) const;

  const Graph* graph_;
  ResourceMeter* meter_;
  mutable std::atomic<ShuffleOrder*> orders_{nullptr};
  mutable std::mutex order_mutex_;  // serializes permutation builds
};

}  // namespace dp
