#pragma once
// Semi-streaming access model: sequential read-only passes over the edge
// list with pass counting. Algorithms in the streaming model may keep only
// o(m) state; the ResourceMeter records passes and peak stored edges so
// tests can assert the model is respected.
//
// Passes are templated on the callable so hot per-edge loops inline instead
// of paying a std::function indirection per edge; the std::function
// overloads remain for ABI users holding type-erased callbacks.

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "util/accounting.hpp"

namespace dp {

class EdgeStream {
 public:
  /// Stream over g's edges in their stored order. The graph must outlive
  /// the stream.
  explicit EdgeStream(const Graph& g, ResourceMeter* meter = nullptr)
      : graph_(&g), meter_(meter) {}

  std::size_t num_vertices() const noexcept { return graph_->num_vertices(); }
  std::size_t num_edges() const noexcept { return graph_->num_edges(); }

  /// One pass: invoke fn(edge) for every edge in order. Increments the pass
  /// counter. The callable is a template parameter (devirtualized).
  template <typename Fn>
  void for_each_pass(Fn&& fn) const {
    if (meter_ != nullptr) meter_->add_pass();
    for (const Edge& e : graph_->edges()) fn(e);
  }

  /// Type-erased overload for callers holding a std::function.
  void for_each_pass(const std::function<void(const Edge&)>& fn) const;

  /// One pass in a random order determined by `seed` (models adversarial /
  /// arbitrary arrival order differing between passes). The permutation is
  /// cached per seed, so repeated passes with the same seed rebuild
  /// nothing; only the index order is materialized, never the edges.
  /// Like the lazy CSR view, the cache is not synchronized: do not run the
  /// first shuffled pass for a seed concurrently from several threads.
  template <typename Fn>
  void for_each_pass_shuffled(std::uint64_t seed, Fn&& fn) const {
    if (meter_ != nullptr) meter_->add_pass();
    ensure_order(seed);
    for (EdgeId idx : order_) fn(graph_->edge(idx));
  }

  /// Type-erased overload for callers holding a std::function.
  void for_each_pass_shuffled(std::uint64_t seed,
                              const std::function<void(const Edge&)>& fn)
      const;

  ResourceMeter* meter() const noexcept { return meter_; }

 private:
  void ensure_order(std::uint64_t seed) const;

  const Graph* graph_;
  ResourceMeter* meter_;
  mutable std::vector<EdgeId> order_;
  mutable std::uint64_t order_seed_ = 0;
  mutable bool order_valid_ = false;
};

}  // namespace dp
