#pragma once
// Out-of-core edge storage — the file-backed half of the access layer.
//
// The paper's streaming model assumes the input does NOT fit in memory:
// the algorithm reads it in sequential passes and may retain only o(m)
// state between them. This file makes that real. A binary edge file
// ("DPEF") holds the graph as fixed-size blocks of 16-byte records, each
// block carrying its own checksum, and EdgeFileStream reads it back —
// mmap or buffered pread — with an async double-buffered prefetcher: a
// dedicated IO thread reads, verifies and decodes block N+1 while the
// pass consumes block N, so a round-iteration pass streams at disk
// bandwidth without ever holding m edges in the access layer.
//
// Wire format (all integers little-endian):
//   header (40 bytes):
//     "DPEF" magic | version u32 | n u64 | m u64 | block_edges u64
//     | FNV-1a-64 checksum of the preceding 32 bytes
//   then ceil(m / block_edges) blocks, block b holding records
//   [b*block_edges, min(m, (b+1)*block_edges)):
//     per edge: u u32 | v u32 | w as IEEE-754 bit pattern u64   (16 bytes)
//     then the block's FNV-1a-64 checksum over its record bytes.
// The total file size is therefore exact; a truncated or padded file is
// rejected at open, and a flipped bit anywhere surfaces as
// CheckpointCorrupt at open (header) or at the first pass that decodes
// the damaged block — never as a silently wrong solve. Weights travel as
// bit patterns, so a file round-trip is bitwise lossless.
//
// Accounting (util/accounting): every block decode charges its bytes to
// the attached ResourceMeter (io_bytes); each block request the
// prefetcher had already completed counts a prefetch hit, each one the
// pass had to wait for counts an IO stall. Random-access reads
// (EdgeFileStream::edge) are unmetered and touch no shared mutable state,
// so concurrent stored-attribute fetches (the pipeline's overlapped
// offline re-solve) are safe against an in-flight pass.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/accounting.hpp"
#include "util/thread_pool.hpp"

namespace dp::stream {

inline constexpr char kEdgeFileMagic[4] = {'D', 'P', 'E', 'F'};
inline constexpr std::uint32_t kEdgeFileVersion = 1;
inline constexpr std::size_t kEdgeFileHeaderBytes = 40;
inline constexpr std::size_t kEdgeRecordBytes = 16;
/// Default edges per block. Small enough that the double buffer is o(m)
/// for any interesting m, large enough that per-block overheads vanish.
inline constexpr std::size_t kDefaultBlockEdges = 1024;

/// Streaming writer: emits a DPEF file block by block without ever holding
/// more than one block of edges. The header is patched at close() (the
/// edge count is not known up front), so a writer that is never close()d
/// leaves a file whose zeroed magic makes every open fail — a crash during
/// generation cannot look like a valid input.
class EdgeFileWriter {
 public:
  EdgeFileWriter(const std::string& path, std::size_t num_vertices,
                 std::size_t block_edges = kDefaultBlockEdges);
  ~EdgeFileWriter();

  EdgeFileWriter(const EdgeFileWriter&) = delete;
  EdgeFileWriter& operator=(const EdgeFileWriter&) = delete;

  void add_edge(Vertex u, Vertex v, double w);

  /// Flush the tail block and write the real header. Idempotent.
  void close();

  std::size_t edges_written() const noexcept { return m_; }

 private:
  void flush_block();

  std::FILE* file_ = nullptr;
  std::string path_;
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::size_t block_edges_ = kDefaultBlockEdges;
  std::vector<std::uint8_t> block_;  // pending record bytes
  bool closed_ = false;
};

/// Read side: validates the header and exact file size at open, then
/// serves sequential block scans (with optional async double-buffered
/// prefetch on an owned one-thread IO pool) and unmetered random-access
/// record reads. mmap by default; falls back to buffered pread when mmap
/// is unavailable (or when Options::use_mmap is off).
class EdgeFileStream {
 public:
  struct Options {
    bool use_mmap = true;
    /// Async double-buffered prefetch for sequential scans. Off = the
    /// pass decodes each block synchronously (bitwise-identical arrivals;
    /// only the io_stalls/prefetch_hits meters differ).
    bool prefetch = true;
  };

  explicit EdgeFileStream(const std::string& path)
      : EdgeFileStream(path, Options()) {}
  EdgeFileStream(const std::string& path, Options options);
  ~EdgeFileStream();

  EdgeFileStream(const EdgeFileStream&) = delete;
  EdgeFileStream& operator=(const EdgeFileStream&) = delete;

  std::size_t num_vertices() const noexcept { return n_; }
  std::size_t num_edges() const noexcept { return m_; }
  std::size_t block_edges() const noexcept { return block_edges_; }
  std::size_t num_blocks() const noexcept { return num_blocks_; }
  const std::string& path() const noexcept { return path_; }
  bool prefetch_enabled() const noexcept { return options_.prefetch; }

  /// IO accounting sink for sequential scans (bytes, stalls, hits).
  void set_meter(ResourceMeter* meter) noexcept { meter_ = meter; }

  /// Edges held resident by the scan machinery (the double buffer), in
  /// edge units — what the access layer charges against the memory
  /// budget.
  std::size_t resident_buffer_edges() const noexcept {
    return (options_.prefetch ? 2 : 1) * block_edges_;
  }

  /// Number of records in block b.
  std::size_t block_count(std::size_t b) const noexcept {
    const std::size_t lo = b * block_edges_;
    return lo >= m_ ? 0 : std::min(block_edges_, m_ - lo);
  }

  /// Unmetered random-access read of one record (const, no shared mutable
  /// state): the stored-attribute path of the file-backed substrate.
  /// Block checksums are verified by the sequential scans; this trusts
  /// them.
  Edge edge(EdgeId id) const;

  /// Sequential scan over blocks in the given order, invoking
  /// fn(first_edge_id_of_block, records, count) per block. With prefetch
  /// on, block order[i+1] is read+verified+decoded by the IO thread while
  /// fn consumes block order[i]. Throws CheckpointCorrupt on a checksum
  /// mismatch. Not reentrant (one scan at a time; the access substrates
  /// run passes sequentially).
  template <typename Fn>
  void scan_blocks(const std::uint32_t* order, std::size_t count, Fn&& fn) {
    if (count == 0) return;
    if (!options_.prefetch) {
      for (std::size_t i = 0; i < count; ++i) {
        decode_block(order[i], 0);
        charge_block(order[i], /*hit=*/false);
        fn(static_cast<EdgeId>(order[i] * block_edges_), buffer_[0].data(),
           block_count(order[i]));
      }
      return;
    }
    int slot = 0;
    Future<int> pending = submit_decode(order[0], slot);
    for (std::size_t i = 0; i < count; ++i) {
      const bool hit = pending.ready();
      pending.get();  // rethrows CheckpointCorrupt from the IO thread
      charge_block(order[i], hit);
      const int consumed = slot;
      slot ^= 1;
      if (i + 1 < count) pending = submit_decode(order[i + 1], slot);
      fn(static_cast<EdgeId>(order[i] * block_edges_),
         buffer_[consumed].data(), block_count(order[i]));
    }
  }

  /// Convenience: natural-order scan over every edge, fn(id, edge).
  template <typename Fn>
  void for_each(Fn&& fn) {
    scan_blocks(natural_order_.data(), natural_order_.size(),
                [&](EdgeId base, const Edge* edges, std::size_t k) {
                  for (std::size_t i = 0; i < k; ++i) {
                    fn(static_cast<EdgeId>(base + i), edges[i]);
                  }
                });
  }

 private:
  /// Read + checksum-verify + decode block b into buffer_[slot]. Runs on
  /// the IO thread during prefetch: touches no meter and no state outside
  /// the designated slot (buffer_[slot] / io_scratch_[slot] are disjoint
  /// between the in-flight decode and the block the pass is consuming).
  void decode_block(std::size_t b, int slot);
  void charge_block(std::size_t b, bool hit);
  Future<int> submit_decode(std::size_t b, int slot);

  Options options_;
  std::string path_;
  int fd_ = -1;
  const std::uint8_t* map_ = nullptr;  // non-null iff mmap mode
  std::size_t file_size_ = 0;
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::size_t block_edges_ = 0;
  std::size_t num_blocks_ = 0;
  ResourceMeter* meter_ = nullptr;
  std::vector<Edge> buffer_[2];              // double-buffered decode slots
  std::vector<std::uint8_t> io_scratch_[2];  // per-slot pread staging
  std::vector<std::uint32_t> natural_order_;
  std::unique_ptr<ThreadPool> io_pool_;  // one dedicated IO thread
};

/// One edge source behind one interface: a materialized in-RAM Graph or a
/// file-backed EdgeFileStream. The streaming substrate accepts either;
/// substrates whose access model requires random access to the whole input
/// (the in-memory reference) reject a file-backed source with a typed
/// ConfigError at bind.
class EdgeSource {
 public:
  EdgeSource() = default;
  /// In-RAM source; the graph must outlive the source.
  EdgeSource(const Graph& g) : graph_(&g) {}  // NOLINT(runtime/explicit)
  /// File-backed source (shared: the substrate and the caller's benches
  /// may hold the same open stream).
  EdgeSource(std::shared_ptr<EdgeFileStream> file)  // NOLINT
      : file_(std::move(file)) {}

  bool attached() const noexcept {
    return graph_ != nullptr || file_ != nullptr;
  }
  bool file_backed() const noexcept { return file_ != nullptr; }
  const Graph* graph() const noexcept { return graph_; }
  EdgeFileStream* file() const noexcept { return file_.get(); }

  std::size_t num_vertices() const noexcept {
    return file_ ? file_->num_vertices()
                 : (graph_ != nullptr ? graph_->num_vertices() : 0);
  }
  std::size_t num_edges() const noexcept {
    return file_ ? file_->num_edges()
                 : (graph_ != nullptr ? graph_->num_edges() : 0);
  }

 private:
  const Graph* graph_ = nullptr;
  std::shared_ptr<EdgeFileStream> file_;
};

/// Serialize a graph's edges (in edge-id order) to a DPEF file.
void write_edge_file(const std::string& path, const Graph& g,
                     std::size_t block_edges = kDefaultBlockEdges);

/// Read a DPEF file back into a Graph (edge ids = record order, so a
/// write/read round-trip is bitwise identical). Validates header, size and
/// every block checksum; throws CheckpointCorrupt on any defect.
Graph read_edge_file(const std::string& path);

}  // namespace dp::stream
