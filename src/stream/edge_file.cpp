#include "stream/edge_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <numeric>

#include "util/error.hpp"

namespace dp::stream {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t len) {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

// Explicit little-endian codecs: the file is a wire format, so byte order
// is pinned rather than inherited from the host.
void store_u32(std::uint8_t* out, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(x >> (8 * i));
}

void store_u64(std::uint8_t* out, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(x >> (8 * i));
}

std::uint32_t load_u32(const std::uint8_t* in) {
  std::uint32_t x = 0;
  for (int i = 0; i < 4; ++i) x |= std::uint32_t{in[i]} << (8 * i);
  return x;
}

std::uint64_t load_u64(const std::uint8_t* in) {
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) x |= std::uint64_t{in[i]} << (8 * i);
  return x;
}

ErrorContext file_context(std::uint64_t block = kNoErrorContext) {
  return ErrorContext{"stream.edge_file", block, kNoErrorContext};
}

void pread_exact(int fd, std::uint8_t* out, std::size_t len, std::size_t off,
                 const std::string& path) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t got = ::pread(fd, out + done, len - done,
                                static_cast<off_t>(off + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      throw CheckpointCorrupt(
          "edge file: read failed (" + std::string(std::strerror(errno)) +
              "): " + path,
          file_context());
    }
    if (got == 0) {
      throw CheckpointCorrupt("edge file: unexpected end of file: " + path,
                              file_context());
    }
    done += static_cast<std::size_t>(got);
  }
}

/// Byte offset of block b's first record. Every block before the last is
/// full, so the stride is uniform: block_edges records + an 8-byte checksum.
std::size_t block_offset(std::size_t b, std::size_t block_edges) {
  return kEdgeFileHeaderBytes +
         b * (block_edges * kEdgeRecordBytes + sizeof(std::uint64_t));
}

}  // namespace

// ---------------------------------------------------------------------------
// EdgeFileWriter

EdgeFileWriter::EdgeFileWriter(const std::string& path,
                               std::size_t num_vertices,
                               std::size_t block_edges)
    : path_(path),
      n_(num_vertices),
      block_edges_(block_edges == 0 ? 1 : block_edges) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw ConfigError("edge file: cannot open for writing: " + path,
                      file_context());
  }
  // Reserve the header slot with zeros; close() patches the real header.
  const std::uint8_t zeros[kEdgeFileHeaderBytes] = {};
  if (std::fwrite(zeros, 1, kEdgeFileHeaderBytes, file_) !=
      kEdgeFileHeaderBytes) {
    std::fclose(file_);
    file_ = nullptr;
    throw ConfigError("edge file: write failed: " + path, file_context());
  }
  block_.reserve(block_edges_ * kEdgeRecordBytes);
}

EdgeFileWriter::~EdgeFileWriter() {
  // Abandoned writer: leave the zeroed header so the file can never pass
  // validation as a complete input.
  if (file_ != nullptr && !closed_) std::fclose(file_);
}

void EdgeFileWriter::add_edge(Vertex u, Vertex v, double w) {
  if (closed_) {
    throw ConfigError("edge file: add_edge after close: " + path_,
                      file_context());
  }
  std::uint8_t rec[kEdgeRecordBytes];
  store_u32(rec, u);
  store_u32(rec + 4, v);
  store_u64(rec + 8, std::bit_cast<std::uint64_t>(w));
  block_.insert(block_.end(), rec, rec + kEdgeRecordBytes);
  ++m_;
  if (block_.size() == block_edges_ * kEdgeRecordBytes) flush_block();
}

void EdgeFileWriter::flush_block() {
  if (block_.empty()) return;
  std::uint8_t sum[sizeof(std::uint64_t)];
  store_u64(sum, fnv1a(block_.data(), block_.size()));
  if (std::fwrite(block_.data(), 1, block_.size(), file_) != block_.size() ||
      std::fwrite(sum, 1, sizeof(sum), file_) != sizeof(sum)) {
    throw ConfigError("edge file: write failed: " + path_, file_context());
  }
  block_.clear();
}

void EdgeFileWriter::close() {
  if (closed_) return;
  flush_block();
  std::uint8_t header[kEdgeFileHeaderBytes];
  std::memcpy(header, kEdgeFileMagic, 4);
  store_u32(header + 4, kEdgeFileVersion);
  store_u64(header + 8, n_);
  store_u64(header + 16, m_);
  store_u64(header + 24, block_edges_);
  store_u64(header + 32, fnv1a(header, 32));
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(header, 1, kEdgeFileHeaderBytes, file_) !=
          kEdgeFileHeaderBytes ||
      std::fclose(file_) != 0) {
    file_ = nullptr;
    throw ConfigError("edge file: finalize failed: " + path_, file_context());
  }
  file_ = nullptr;
  closed_ = true;
}

// ---------------------------------------------------------------------------
// EdgeFileStream

EdgeFileStream::EdgeFileStream(const std::string& path, Options options)
    : options_(options), path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) {
    throw ConfigError("edge file: cannot open: " + path, file_context());
  }
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw ConfigError("edge file: cannot stat: " + path, file_context());
  }
  file_size_ = static_cast<std::size_t>(st.st_size);
  try {
    if (file_size_ < kEdgeFileHeaderBytes) {
      throw CheckpointCorrupt("edge file: truncated header: " + path,
                              file_context());
    }
    std::uint8_t header[kEdgeFileHeaderBytes];
    pread_exact(fd_, header, kEdgeFileHeaderBytes, 0, path);
    if (std::memcmp(header, kEdgeFileMagic, 4) != 0) {
      throw CheckpointCorrupt("edge file: bad magic: " + path, file_context());
    }
    if (load_u32(header + 4) != kEdgeFileVersion) {
      throw CheckpointCorrupt(
          "edge file: unsupported version " +
              std::to_string(load_u32(header + 4)) + ": " + path,
          file_context());
    }
    if (load_u64(header + 32) != fnv1a(header, 32)) {
      throw CheckpointCorrupt("edge file: header checksum mismatch: " + path,
                              file_context());
    }
    n_ = load_u64(header + 8);
    m_ = load_u64(header + 16);
    block_edges_ = load_u64(header + 24);
    if (block_edges_ == 0) {
      throw CheckpointCorrupt("edge file: zero block size: " + path,
                              file_context());
    }
    num_blocks_ = (m_ + block_edges_ - 1) / block_edges_;
    const std::size_t expected =
        kEdgeFileHeaderBytes + m_ * kEdgeRecordBytes +
        num_blocks_ * sizeof(std::uint64_t);
    if (file_size_ != expected) {
      throw CheckpointCorrupt(
          "edge file: size mismatch (truncated or padded): " + path +
              " (have " + std::to_string(file_size_) + ", expected " +
              std::to_string(expected) + ")",
          file_context());
    }
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
  if (options_.use_mmap && file_size_ > 0) {
    void* map = ::mmap(nullptr, file_size_, PROT_READ, MAP_PRIVATE, fd_, 0);
    if (map != MAP_FAILED) {
      map_ = static_cast<const std::uint8_t*>(map);
    }
    // mmap failure is not fatal: fall back to buffered pread.
  }
  natural_order_.resize(num_blocks_);
  std::iota(natural_order_.begin(), natural_order_.end(), 0u);
  for (auto& buf : buffer_) buf.reserve(block_edges_);
  if (options_.prefetch) io_pool_ = std::make_unique<ThreadPool>(1);
}

EdgeFileStream::~EdgeFileStream() {
  io_pool_.reset();  // join the IO thread before unmapping
  if (map_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(map_), file_size_);
  }
  if (fd_ >= 0) ::close(fd_);
}

Edge EdgeFileStream::edge(EdgeId id) const {
  const std::size_t b = id / block_edges_;
  const std::size_t off = block_offset(b, block_edges_) +
                          (id - b * block_edges_) * kEdgeRecordBytes;
  std::uint8_t local[kEdgeRecordBytes];
  const std::uint8_t* rec;
  if (map_ != nullptr) {
    rec = map_ + off;
  } else {
    pread_exact(fd_, local, kEdgeRecordBytes, off, path_);
    rec = local;
  }
  Edge e;
  e.u = load_u32(rec);
  e.v = load_u32(rec + 4);
  e.w = std::bit_cast<double>(load_u64(rec + 8));
  return e;
}

void EdgeFileStream::decode_block(std::size_t b, int slot) {
  const std::size_t count = block_count(b);
  const std::size_t len = count * kEdgeRecordBytes;
  const std::size_t off = block_offset(b, block_edges_);
  const std::uint8_t* bytes;
  if (map_ != nullptr) {
    bytes = map_ + off;
  } else {
    auto& scratch = io_scratch_[slot];
    scratch.resize(len + sizeof(std::uint64_t));
    pread_exact(fd_, scratch.data(), scratch.size(), off, path_);
    bytes = scratch.data();
  }
  if (fnv1a(bytes, len) != load_u64(bytes + len)) {
    throw CheckpointCorrupt(
        "edge file: block " + std::to_string(b) + " checksum mismatch: " +
            path_,
        file_context(b));
  }
  auto& out = buffer_[slot];
  out.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint8_t* rec = bytes + i * kEdgeRecordBytes;
    out[i].u = load_u32(rec);
    out[i].v = load_u32(rec + 4);
    out[i].w = std::bit_cast<double>(load_u64(rec + 8));
  }
}

void EdgeFileStream::charge_block(std::size_t b, bool hit) {
  if (meter_ == nullptr) return;
  meter_->add_io_bytes(block_count(b) * kEdgeRecordBytes +
                       sizeof(std::uint64_t));
  if (hit) {
    meter_->add_prefetch_hits();
  } else {
    meter_->add_io_stalls();
  }
}

Future<int> EdgeFileStream::submit_decode(std::size_t b, int slot) {
  return io_pool_->submit_job([this, b, slot] {
    decode_block(b, slot);
    return 0;
  });
}

// ---------------------------------------------------------------------------
// Whole-graph helpers

void write_edge_file(const std::string& path, const Graph& g,
                     std::size_t block_edges) {
  EdgeFileWriter writer(path, g.num_vertices(), block_edges);
  for (const Edge& e : g.edges()) writer.add_edge(e.u, e.v, e.w);
  writer.close();
}

Graph read_edge_file(const std::string& path) {
  EdgeFileStream stream(path, {.use_mmap = true, .prefetch = false});
  std::vector<Edge> edges;
  edges.reserve(stream.num_edges());
  stream.for_each([&edges](EdgeId, const Edge& e) { edges.push_back(e); });
  return Graph(stream.num_vertices(), std::move(edges));
}

}  // namespace dp::stream
