#include "stream/reservoir.hpp"

namespace dp {

void EdgeReservoir::offer(EdgeId id, const Edge& e) {
  ++seen_;
  if (sample_.size() < capacity_) {
    sample_.emplace_back(id, e);
    return;
  }
  // Classic reservoir rule: keep with probability capacity/seen.
  const std::uint64_t slot = rng_.uniform(seen_);
  if (slot < capacity_) {
    sample_[slot] = {id, e};
  }
}

}  // namespace dp
