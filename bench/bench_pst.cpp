// E14 (Theorems 5/7): the PST covering/packing engines. Expected shape:
// oracle calls grow ~ rho/eps^2 (linear in width, inverse-quadratic in
// eps), matching the O(rho eps^-2 log M) bound; the engines certify both
// feasible and infeasible instances.

#include <cstdio>

#include "bench_common.hpp"
#include "lp/pst.hpp"

namespace {

// Covering toy: rows must each reach 1; the polytope is a budgeted simplex;
// the oracle concentrates the budget on the largest multiplier.
dp::lp::CoveringProblem make_problem(std::size_t m, double budget,
                                     double eps, double width_scale) {
  dp::lp::CoveringProblem problem;
  problem.c.assign(m, 1.0);
  problem.rho = budget * width_scale;
  problem.eps = eps;
  // Strictly infeasible start (lambda_0 = 0.1) so the engine iterates.
  problem.initial.x.assign(m, 0.02);
  problem.initial.ax = problem.initial.x;
  problem.oracle = [m, budget, eps](const std::vector<double>& u)
      -> std::optional<dp::lp::OraclePoint> {
    std::size_t best = 0;
    for (std::size_t l = 1; l < m; ++l) {
      if (u[l] > u[best]) best = l;
    }
    double u_sum = 0;
    for (double ul : u) u_sum += ul;
    if (u[best] * budget < (1.0 - eps / 2.0) * u_sum) return std::nullopt;
    dp::lp::OraclePoint point;
    point.x.assign(m, 0.0);
    point.ax.assign(m, 0.0);
    point.x[best] = budget;
    point.ax[best] = budget;
    return point;
  };
  return problem;
}

}  // namespace

int main() {
  using namespace dp;
  bench::header("E14 PST engines (Theorems 5/7)",
                "oracle calls ~ rho / eps^2: linear in width, "
                "inverse-quadratic in eps");

  std::printf("-- oracle calls vs eps (width fixed) --\n");
  std::printf("%-8s %12s %10s\n", "eps", "oracle_calls", "feasible");
  bench::row_labels({"eps", "oracle_calls", "feasible"});
  const std::size_t m = 10;
  for (double eps : {0.25, 0.2, 0.15, 0.1}) {
    const auto result =
        lp::fractional_covering(make_problem(m, 1.5 * m, eps, 1.0));
    std::printf("%-8.2f %12zu %10d\n", eps, result.oracle_calls,
                result.feasible ? 1 : 0);
    bench::row({eps, static_cast<double>(result.oracle_calls),
                result.feasible ? 1.0 : 0.0});
  }

  std::printf("\n-- oracle calls vs width (eps fixed) --\n");
  std::printf("%-8s %12s %10s\n", "width_x", "oracle_calls", "feasible");
  for (double scale : {1.0, 2.0, 4.0, 8.0}) {
    const auto result =
        lp::fractional_covering(make_problem(m, 1.5 * m, 0.2, scale));
    std::printf("%-8.1f %12zu %10d\n", scale, result.oracle_calls,
                result.feasible ? 1 : 0);
    bench::row({scale, static_cast<double>(result.oracle_calls),
                result.feasible ? 1.0 : 0.0});
  }

  std::printf("\n-- infeasible instances produce certificates --\n");
  for (double budget_frac : {0.9, 0.5}) {
    const auto result = lp::fractional_covering(
        make_problem(m, budget_frac * m, 0.2, 1.0));
    std::printf("budget=%.1f*m feasible=%d certificate_size=%zu\n",
                budget_frac, result.feasible ? 1 : 0,
                result.certificate.size());
  }
  return 0;
}
