// Micro-benchmark for the solver's hot path: MicroOracle iteration
// throughput, flat-array path (core/oracle.cpp) vs the retained map-based
// reference (core/oracle_ref.cpp), measured in the same binary on identical
// inputs. Also times the supporting kernels the oracle leans on
// (DualState::blend + lambda sweep).
//
//   ./bench_micro [--quick]
//
// Emits the usual CSV rows plus BENCH_micro.json. The headline number is
// the flat/map speedup of micro-oracle calls/sec at n = 10^4 (quick mode
// shrinks n and the rep counts so scripts/check.sh stays fast).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/dual_state.hpp"
#include "core/oracle.hpp"
#include "core/oracle_ref.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace dp;
using namespace dp::core;

/// One frozen oracle workload: a level graph plus stored multipliers, zeta
/// and beta resembling one inner MW iteration of the solver.
struct Workload {
  std::unique_ptr<Graph> g;
  Capacities b;
  std::unique_ptr<LevelGraph> lg;
  std::vector<StoredMultiplier> us;
  ZetaMap zeta;
  double beta = 0;
};

Workload make_workload(std::size_t n, std::uint64_t seed) {
  Workload w;
  w.g = std::make_unique<Graph>(gen::gnm(n, 8 * n, seed));
  gen::weight_uniform(*w.g, 1.0, 16.0, seed + 1);
  w.b = Capacities::unit(n);
  w.lg = std::make_unique<LevelGraph>(*w.g, w.b, 0.15);

  Rng rng(seed + 2);
  const auto levels = static_cast<std::uint64_t>(w.lg->num_levels());
  // Stored sample: ~n edges, multipliers in a realistic dynamic range.
  std::vector<std::uint64_t> row_keys;
  for (EdgeId e : w.lg->retained()) {
    if (rng.uniform_real() * static_cast<double>(w.g->num_edges()) >
        static_cast<double>(n)) {
      continue;
    }
    w.us.push_back(StoredMultiplier{e, 0.1 + 2.0 * rng.uniform_real()});
    const Edge& edge = w.g->edge(e);
    const auto k = static_cast<std::uint64_t>(w.lg->level(e));
    row_keys.push_back(static_cast<std::uint64_t>(edge.u) * levels + k);
    row_keys.push_back(static_cast<std::uint64_t>(edge.v) * levels + k);
  }
  std::sort(row_keys.begin(), row_keys.end());
  row_keys.erase(std::unique(row_keys.begin(), row_keys.end()),
                 row_keys.end());
  for (const std::uint64_t kk : row_keys) {
    const int k = static_cast<int>(kk % levels);
    w.zeta.append(kk, (0.05 + 0.3 * rng.uniform_real()) /
                          (3.0 * w.lg->level_weight(k)));
  }
  w.beta = static_cast<double>(n) / 4.0;
  return w;
}

struct Measurement {
  double seconds = 0;
  std::size_t micro_calls = 0;
};

template <typename Oracle>
Measurement time_lagrangian(const Oracle& oracle, const Workload& w,
                            std::size_t reps) {
  Measurement m;
  WallTimer timer;
  for (std::size_t r = 0; r < reps; ++r) {
    oracle.run_lagrangian(w.us, w.zeta, w.beta, &m.micro_calls);
  }
  m.seconds = timer.seconds();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--quick") == 0) quick = true;
  }

  bench::header("micro (oracle hot path)",
                "MicroOracle calls/sec: flat level-indexed buffers vs the "
                "map-based reference, same binary, same inputs; speedup is "
                "flat/map");
  bench::BenchReport report(
      "micro", {"n", "m", "odd_sets", "reps", "map_calls_per_sec",
                "flat_calls_per_sec", "speedup", "map_seconds",
                "flat_seconds"});

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{2000}
            : std::vector<std::size_t>{1000, 10000};
  std::printf("%-8s %-8s %-9s %14s %14s %9s\n", "n", "m", "odd_sets",
              "map calls/s", "flat calls/s", "speedup");

  for (const std::size_t n : sizes) {
    const Workload w = make_workload(n, /*seed=*/17);
    for (const bool odd_sets : {false, true}) {
      OracleConfig config;
      config.use_odd_sets = odd_sets;
      config.odd.eps = 0.15;
      std::size_t reps = quick ? 3 : (n >= 10000 ? 5 : 20);
      // odd_sets rows are separation-bound: cheap enough since the arena
      // rework to afford 3 quick reps (single-rep numbers were too noisy
      // for the tracked speedup), but still the slowest config in full
      // mode, so keep those at 2.
      if (odd_sets) reps = quick ? 3 : 2;

      const MicroOracle flat(*w.lg, w.b, config);
      const ref::MicroOracleRef mapped(*w.lg, w.b, config);

      // Sanity: both paths must agree on the workload before timing it,
      // and the flat path must be bitwise thread-count-invariant.
      {
        const MicroResult a = flat.run_lagrangian(w.us, w.zeta, w.beta);
        const MicroResult c = mapped.run_lagrangian(w.us, w.zeta, w.beta);
        if (a.kind != c.kind) {
          std::fprintf(stderr,
                       "FATAL: flat/map disagree on kind at n=%zu odd=%d\n",
                       n, static_cast<int>(odd_sets));
          return 1;
        }
        OracleConfig serial_config = config;
        serial_config.threads = 1;
        const MicroOracle serial(*w.lg, w.b, serial_config);
        const MicroResult s = serial.run_lagrangian(w.us, w.zeta, w.beta);
        bool same = s.kind == a.kind && s.gamma == a.gamma &&
                    s.x.xik == a.x.xik &&
                    s.x.odd_sets.size() == a.x.odd_sets.size();
        for (std::size_t i = 0; same && i < s.x.odd_sets.size(); ++i) {
          same = s.x.odd_sets[i].level == a.x.odd_sets[i].level &&
                 s.x.odd_sets[i].members == a.x.odd_sets[i].members &&
                 s.x.odd_sets[i].value == a.x.odd_sets[i].value;
        }
        if (!same) {
          std::fprintf(
              stderr,
              "FATAL: flat path not thread-count-invariant at n=%zu odd=%d\n",
              n, static_cast<int>(odd_sets));
          return 1;
        }
      }

      const Measurement map_m = time_lagrangian(mapped, w, reps);
      const Measurement flat_m = time_lagrangian(flat, w, reps);
      const double map_rate =
          static_cast<double>(map_m.micro_calls) / map_m.seconds;
      const double flat_rate =
          static_cast<double>(flat_m.micro_calls) / flat_m.seconds;
      const double speedup = flat_rate / map_rate;
      std::printf("%-8zu %-8zu %-9d %14.1f %14.1f %8.2fx\n", n,
                  w.g->num_edges(), static_cast<int>(odd_sets), map_rate,
                  flat_rate, speedup);
      report.add({static_cast<double>(n),
                  static_cast<double>(w.g->num_edges()),
                  static_cast<double>(odd_sets),
                  static_cast<double>(reps), map_rate, flat_rate, speedup,
                  map_m.seconds, flat_m.seconds});
    }
  }
  report.flush();
  return 0;
}
