// Micro-benchmark for the solver's hot path: MicroOracle iteration
// throughput, flat-array path (core/oracle.cpp) vs the retained map-based
// reference (core/oracle_ref.cpp), measured in the same binary on identical
// inputs. Also times the supporting kernels the oracle leans on
// (DualState::blend + lambda sweep).
//
//   ./bench_micro [--quick]
//
// Emits the usual CSV rows plus BENCH_micro.json. The headline number is
// the flat/map speedup of micro-oracle calls/sec at n = 10^4 (quick mode
// shrinks n and the rep counts so scripts/check.sh stays fast).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/dual_state.hpp"
#include "core/oracle.hpp"
#include "core/oracle_ref.hpp"
#include "graph/flow_arena.hpp"
#include "graph/generators.hpp"
#include "graph/gomory_hu.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/timer.hpp"

namespace {

using namespace dp;
using namespace dp::core;

/// One frozen oracle workload: a level graph plus stored multipliers, zeta
/// and beta resembling one inner MW iteration of the solver.
struct Workload {
  std::unique_ptr<Graph> g;
  Capacities b;
  std::unique_ptr<LevelGraph> lg;
  std::vector<StoredMultiplier> us;
  ZetaMap zeta;
  double beta = 0;
};

Workload make_workload(std::size_t n, std::uint64_t seed) {
  Workload w;
  w.g = std::make_unique<Graph>(gen::gnm(n, 8 * n, seed));
  gen::weight_uniform(*w.g, 1.0, 16.0, seed + 1);
  w.b = Capacities::unit(n);
  w.lg = std::make_unique<LevelGraph>(*w.g, w.b, 0.15);

  Rng rng(seed + 2);
  const auto levels = static_cast<std::uint64_t>(w.lg->num_levels());
  // Stored sample: ~n edges, multipliers in a realistic dynamic range.
  std::vector<std::uint64_t> row_keys;
  for (EdgeId e : w.lg->retained()) {
    if (rng.uniform_real() * static_cast<double>(w.g->num_edges()) >
        static_cast<double>(n)) {
      continue;
    }
    w.us.push_back(StoredMultiplier{e, 0.1 + 2.0 * rng.uniform_real()});
    const Edge& edge = w.g->edge(e);
    const auto k = static_cast<std::uint64_t>(w.lg->level(e));
    row_keys.push_back(static_cast<std::uint64_t>(edge.u) * levels + k);
    row_keys.push_back(static_cast<std::uint64_t>(edge.v) * levels + k);
  }
  std::sort(row_keys.begin(), row_keys.end());
  row_keys.erase(std::unique(row_keys.begin(), row_keys.end()),
                 row_keys.end());
  for (const std::uint64_t kk : row_keys) {
    const int k = static_cast<int>(kk % levels);
    w.zeta.append(kk, (0.05 + 0.3 * rng.uniform_real()) /
                          (3.0 * w.lg->level_weight(k)));
  }
  w.beta = static_cast<double>(n) / 4.0;
  return w;
}

struct Measurement {
  double seconds = 0;
  std::size_t micro_calls = 0;
};

template <typename Oracle>
Measurement time_lagrangian(const Oracle& oracle, const Workload& w,
                            std::size_t reps) {
  Measurement m;
  WallTimer timer;
  for (std::size_t r = 0; r < reps; ++r) {
    oracle.run_lagrangian(w.us, w.zeta, w.beta, &m.micro_calls);
  }
  m.seconds = timer.seconds();
  return m;
}

/// Isolated hot-kernel rows (BENCH_micro_kernels.json): each row pits the
/// baseline kernel against the optimized one in the same binary on the same
/// buffers, so the tracked speedup is machine-relative. Kernel ids:
/// 0 = exp batch (libm loop vs branch-free polynomial), 1 = one SweepKernel
/// multiplier sweep (scalar libm body vs fill/exp_batch_poly/divide),
/// 2 = post-contraction Gomory-Hu (full Gusfield rebuild vs incremental
/// stamped replay), 3 = the non-exp sweep body (scalar fill/divide/max
/// loops vs the clones-dispatched fill_scaled_shift + divide_max_positive
/// with the bit-pattern integer max reduction; bitwise-equality asserted
/// before timing).
void bench_kernels(bool quick) {
  bench::header("micro kernels (hot-path round 2)",
                "isolated kernel speedups: vectorized exp batch, SIMD-ized "
                "multiplier sweep, incremental Gusfield after contraction, "
                "clones-dispatched fill/divide-max sweep body");
  bench::BenchReport report("micro_kernels",
                            {"kernel", "n", "reps", "base_per_sec",
                             "fast_per_sec", "speedup"});
  std::printf("%-10s %-9s %-6s %16s %16s %9s\n", "kernel", "n", "reps",
              "base/s", "fast/s", "speedup");
  Rng rng(4242);
  double sink = 0;  // defeats dead-code elimination across timed loops

  // ---- Kernel 0: the exp batch itself, elements/sec. ----
  {
    const std::size_t n = quick ? (1u << 14) : (1u << 18);
    const std::size_t reps = quick ? 400 : 60;
    std::vector<double> x(n);
    std::vector<double> out(n);
    for (double& v : x) v = -40.0 * rng.uniform_real();  // sweep-range args
    // Untimed warmup: faults the buffers in and resolves the kernel's
    // runtime ISA dispatch so neither cost lands inside a timed loop.
    simd::exp_batch_libm(x.data(), out.data(), n);
    simd::exp_batch_poly(x.data(), out.data(), n);
    WallTimer t_libm;
    for (std::size_t r = 0; r < reps; ++r) {
      simd::exp_batch_libm(x.data(), out.data(), n);
      sink += out[r % n];
    }
    const double libm_s = t_libm.seconds();
    WallTimer t_poly;
    for (std::size_t r = 0; r < reps; ++r) {
      simd::exp_batch_poly(x.data(), out.data(), n);
      sink += out[r % n];
    }
    const double poly_s = t_poly.seconds();
    const double total = static_cast<double>(n) * static_cast<double>(reps);
    const double base_rate = total / libm_s;
    const double fast_rate = total / poly_s;
    std::printf("%-10s %-9zu %-6zu %16.3e %16.3e %8.2fx\n", "exp_batch", n,
                reps, base_rate, fast_rate, fast_rate / base_rate);
    report.add({0.0, static_cast<double>(n), static_cast<double>(reps),
                base_rate, fast_rate, fast_rate / base_rate});
  }

  // ---- Kernel 1: one multiplier sweep (the exp_floor_multipliers body):
  // exp(-alpha (ratio - min)) / w, elements/sec. Both variants run the
  // pipeline's real chunked structure (run_chunks grain), so the
  // vectorized side's fill/exp/divide passes stay L1-resident instead of
  // streaming the whole array three times. ----
  {
    const std::size_t n = quick ? (1u << 14) : (1u << 18);
    const std::size_t reps = quick ? 400 : 60;
    const std::size_t grain = 1024;  // RoundPipelineOptions::grain
    const double alpha = 7.5;
    std::vector<double> ratio(n);
    std::vector<double> w(n);
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) {
      ratio[i] = 5.0 * rng.uniform_real();
      w[i] = 1.0 + 3.0 * rng.uniform_real();
    }
    simd::exp_batch_poly(ratio.data(), out.data(), n);  // untimed warmup
    WallTimer t_scalar;
    for (std::size_t r = 0; r < reps; ++r) {
      double local_max = 0;
      for (std::size_t lo = 0; lo < n; lo += grain) {
        const std::size_t hi = std::min(n, lo + grain);
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = std::exp(-alpha * ratio[i]) / w[i];
          local_max = std::max(local_max, out[i]);
        }
      }
      sink += local_max;
    }
    const double scalar_s = t_scalar.seconds();
    WallTimer t_vec;
    for (std::size_t r = 0; r < reps; ++r) {
      double local_max = 0;
      for (std::size_t lo = 0; lo < n; lo += grain) {
        const std::size_t hi = std::min(n, lo + grain);
        for (std::size_t i = lo; i < hi; ++i) out[i] = -alpha * ratio[i];
        simd::exp_batch_poly(out.data() + lo, out.data() + lo, hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] /= w[i];
          local_max = std::max(local_max, out[i]);
        }
      }
      sink += local_max;
    }
    const double vec_s = t_vec.seconds();
    const double total = static_cast<double>(n) * static_cast<double>(reps);
    const double base_rate = total / scalar_s;
    const double fast_rate = total / vec_s;
    std::printf("%-10s %-9zu %-6zu %16.3e %16.3e %8.2fx\n", "sweep", n,
                reps, base_rate, fast_rate, fast_rate / base_rate);
    report.add({1.0, static_cast<double>(n), static_cast<double>(reps),
                base_rate, fast_rate, fast_rate / base_rate});
  }

  // ---- Kernel 2: Gomory-Hu after one separator-style contraction —
  // full Gusfield rebuild vs the incremental stamped replay, updates/sec.
  // Same arena state for both; the incremental side restores the
  // pre-contraction tree/stamp each rep so every rep replays the delta. ----
  {
    const std::size_t n = quick ? 160 : 400;
    const auto s = static_cast<std::uint32_t>(n - 1);
    std::vector<ArenaEdge> edges;
    for (std::uint32_t v = 0; v < s; ++v) {
      edges.push_back(
          ArenaEdge{v, s, static_cast<std::int64_t>(1 + rng.uniform(4))});
    }
    for (std::size_t e = 0; e < 5 * n; ++e) {
      const auto u = static_cast<std::uint32_t>(rng.uniform(s));
      const auto v = static_cast<std::uint32_t>(rng.uniform(s));
      if (u == v) continue;
      edges.push_back(ArenaEdge{std::min(u, v), std::max(u, v),
                                static_cast<std::int64_t>(1 + rng.uniform(6))});
    }
    aggregate_parallel_edges(edges);
    FlowArena net;
    net.build(n, edges);
    std::vector<char> alive(n, 1);
    GomoryHuTree tree0;
    GomoryHuStamp stamp0;
    gomory_hu_from_arena_cached(net, &alive, tree0, stamp0);
    // One contraction round: kill ~n/16 vertices, exact compensation (all
    // caps land on positive s-edges, so nothing clamps).
    GomoryHuContraction delta;
    delta.s_node = s;
    std::vector<char> dead(n, 0);
    for (std::uint32_t v = 1; v < s; ++v) {
      if (rng.uniform(16) == 0) dead[v] = 1;
    }
    std::vector<std::size_t> s_edge(n, 0);
    std::vector<std::int64_t> s_cap(n, 0);
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (edges[e].v == s) {
        s_edge[edges[e].u] = e;
        s_cap[edges[e].u] = edges[e].cap;
      }
    }
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (edges[e].u == s || edges[e].v == s) continue;
      if (dead[edges[e].u] == dead[edges[e].v]) continue;
      const std::uint32_t keep = dead[edges[e].u] ? edges[e].v : edges[e].u;
      s_cap[keep] += edges[e].cap;
      net.set_edge_base_cap(s_edge[keep], s_cap[keep]);
    }
    for (std::uint32_t v = 0; v < s; ++v) {
      if (!dead[v]) continue;
      net.disable_vertex(v);
      alive[v] = 0;
      delta.contracted.push_back(v);
    }
    const std::size_t reps = quick ? 5 : 5;
    GomoryHuTree tree;
    gomory_hu_from_arena(net, &alive, tree);  // untimed warmup
    WallTimer t_full;
    for (std::size_t r = 0; r < reps; ++r) {
      gomory_hu_from_arena(net, &alive, tree);
      sink += static_cast<double>(tree.cut_value[1]);
    }
    const double full_s = t_full.seconds();
    GomoryHuStamp stamp;
    std::size_t flows_incremental = 0;
    WallTimer t_incr;
    for (std::size_t r = 0; r < reps; ++r) {
      tree = tree0;
      stamp = stamp0;
      flows_incremental =
          gomory_hu_contract_update(net, &alive, delta, tree, stamp);
      sink += static_cast<double>(tree.cut_value[1]);
    }
    const double incr_s = t_incr.seconds();
    const double base_rate = static_cast<double>(reps) / full_s;
    const double fast_rate = static_cast<double>(reps) / incr_s;
    std::printf("%-10s %-9zu %-6zu %16.3e %16.3e %8.2fx  (flows %zu -> %zu)\n",
                "gusfield", n, reps, base_rate, fast_rate,
                fast_rate / base_rate, n - 1 - delta.contracted.size(),
                flows_incremental);
    report.add({2.0, static_cast<double>(n), static_cast<double>(reps),
                base_rate, fast_rate, fast_rate / base_rate});
  }
  // ---- Kernel 3: the non-exp sweep body — fill the scaled-shifted
  // exponent, then divide by the level weight with a chunk-max reduction.
  // Baseline: the plain scalar loops with a std::max fold. Fast: the
  // target_clones SSE2/AVX2/AVX-512 dispatched fill_scaled_shift +
  // divide_max_positive, whose max reduction runs on the bit patterns as
  // signed integers (exact for positive doubles) so GCC vectorizes it
  // without -ffast-math. Bitwise equality is asserted before timing. ----
  {
    const std::size_t n = quick ? (1u << 14) : (1u << 18);
    const std::size_t reps = quick ? 400 : 60;
    const std::size_t grain = 1024;  // RoundPipelineOptions::grain
    const double alpha = 7.5;
    const double shift = 0.125;
    std::vector<double> ratio(n);
    std::vector<double> w(n);
    std::vector<double> a(n);
    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      ratio[i] = shift + 5.0 * rng.uniform_real();
      w[i] = 1.0 + 3.0 * rng.uniform_real();
    }
    // Bitwise check: scalar fold vs clones-dispatched kernels, per chunk.
    for (std::size_t lo = 0; lo < n; lo += grain) {
      const std::size_t hi = std::min(n, lo + grain);
      double scalar_max = 0.0;
      for (std::size_t i = lo; i < hi; ++i) {
        a[i] = -alpha * (ratio[i] - shift);
        a[i] = std::exp(a[i]);
        a[i] /= w[i];
        scalar_max = std::max(scalar_max, a[i]);
      }
      simd::fill_scaled_shift(ratio.data() + lo, b.data() + lo, hi - lo,
                              alpha, shift);
      simd::exp_batch_libm(b.data() + lo, b.data() + lo, hi - lo);
      const double simd_max =
          simd::divide_max_positive(b.data() + lo, w.data() + lo, hi - lo);
      if (std::memcmp(a.data() + lo, b.data() + lo,
                      (hi - lo) * sizeof(double)) != 0 ||
          scalar_max != simd_max) {
        std::fprintf(stderr,
                     "FATAL: clones-dispatched sweep body not bitwise equal "
                     "to the scalar loops\n");
        std::exit(1);
      }
    }
    // Timed loops drop the exp between fill and divide to isolate the body
    // this kernel row is about; a negated alpha keeps every quotient
    // positive, as divide_max_positive's integer max requires.
    const double talpha = -alpha;
    WallTimer t_scalar;
    for (std::size_t r = 0; r < reps; ++r) {
      double local_max = 0;
      for (std::size_t lo = 0; lo < n; lo += grain) {
        const std::size_t hi = std::min(n, lo + grain);
        for (std::size_t i = lo; i < hi; ++i) {
          a[i] = -talpha * (ratio[i] - shift);
          a[i] /= w[i];
          local_max = std::max(local_max, a[i]);
        }
      }
      sink += local_max;
    }
    const double scalar_s = t_scalar.seconds();
    WallTimer t_vec;
    for (std::size_t r = 0; r < reps; ++r) {
      double local_max = 0;
      for (std::size_t lo = 0; lo < n; lo += grain) {
        const std::size_t hi = std::min(n, lo + grain);
        simd::fill_scaled_shift(ratio.data() + lo, b.data() + lo, hi - lo,
                                talpha, shift);
        local_max = std::max(
            local_max,
            simd::divide_max_positive(b.data() + lo, w.data() + lo, hi - lo));
      }
      sink += local_max;
    }
    const double vec_s = t_vec.seconds();
    const double total = static_cast<double>(n) * static_cast<double>(reps);
    const double base_rate = total / scalar_s;
    const double fast_rate = total / vec_s;
    std::printf("%-10s %-9zu %-6zu %16.3e %16.3e %8.2fx\n", "fill_divmax",
                n, reps, base_rate, fast_rate, fast_rate / base_rate);
    report.add({3.0, static_cast<double>(n), static_cast<double>(reps),
                base_rate, fast_rate, fast_rate / base_rate});
  }
  if (sink == 12345.6789) std::printf("sink %f\n", sink);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--quick") == 0) quick = true;
  }

  bench::header("micro (oracle hot path)",
                "MicroOracle calls/sec: flat level-indexed buffers vs the "
                "map-based reference, same binary, same inputs; speedup is "
                "flat/map");
  bench::BenchReport report(
      "micro", {"n", "m", "odd_sets", "reps", "map_calls_per_sec",
                "flat_calls_per_sec", "speedup", "map_seconds",
                "flat_seconds"});

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{2000}
            : std::vector<std::size_t>{1000, 10000};
  std::printf("%-8s %-8s %-9s %14s %14s %9s\n", "n", "m", "odd_sets",
              "map calls/s", "flat calls/s", "speedup");

  for (const std::size_t n : sizes) {
    const Workload w = make_workload(n, /*seed=*/17);
    for (const bool odd_sets : {false, true}) {
      OracleConfig config;
      config.use_odd_sets = odd_sets;
      config.odd.eps = 0.15;
      std::size_t reps = quick ? 3 : (n >= 10000 ? 5 : 20);
      // odd_sets rows are separation-bound: cheap enough since the arena
      // rework to afford 3 quick reps (single-rep numbers were too noisy
      // for the tracked speedup), but still the slowest config in full
      // mode, so keep those at 2.
      if (odd_sets) reps = quick ? 3 : 2;

      const MicroOracle flat(*w.lg, w.b, config);
      const ref::MicroOracleRef mapped(*w.lg, w.b, config);

      // Sanity: both paths must agree on the workload before timing it,
      // and the flat path must be bitwise thread-count-invariant.
      {
        const MicroResult a = flat.run_lagrangian(w.us, w.zeta, w.beta);
        const MicroResult c = mapped.run_lagrangian(w.us, w.zeta, w.beta);
        if (a.kind != c.kind) {
          std::fprintf(stderr,
                       "FATAL: flat/map disagree on kind at n=%zu odd=%d\n",
                       n, static_cast<int>(odd_sets));
          return 1;
        }
        OracleConfig serial_config = config;
        serial_config.threads = 1;
        const MicroOracle serial(*w.lg, w.b, serial_config);
        const MicroResult s = serial.run_lagrangian(w.us, w.zeta, w.beta);
        bool same = s.kind == a.kind && s.gamma == a.gamma &&
                    s.x.xik == a.x.xik &&
                    s.x.odd_sets.size() == a.x.odd_sets.size();
        for (std::size_t i = 0; same && i < s.x.odd_sets.size(); ++i) {
          same = s.x.odd_sets[i].level == a.x.odd_sets[i].level &&
                 s.x.odd_sets[i].members == a.x.odd_sets[i].members &&
                 s.x.odd_sets[i].value == a.x.odd_sets[i].value;
        }
        if (!same) {
          std::fprintf(
              stderr,
              "FATAL: flat path not thread-count-invariant at n=%zu odd=%d\n",
              n, static_cast<int>(odd_sets));
          return 1;
        }
      }

      const Measurement map_m = time_lagrangian(mapped, w, reps);
      const Measurement flat_m = time_lagrangian(flat, w, reps);
      const double map_rate =
          static_cast<double>(map_m.micro_calls) / map_m.seconds;
      const double flat_rate =
          static_cast<double>(flat_m.micro_calls) / flat_m.seconds;
      const double speedup = flat_rate / map_rate;
      std::printf("%-8zu %-8zu %-9d %14.1f %14.1f %8.2fx\n", n,
                  w.g->num_edges(), static_cast<int>(odd_sets), map_rate,
                  flat_rate, speedup);
      report.add({static_cast<double>(n),
                  static_cast<double>(w.g->num_edges()),
                  static_cast<double>(odd_sets),
                  static_cast<double>(reps), map_rate, flat_rate, speedup,
                  map_m.seconds, flat_m.seconds});
    }
  }
  report.flush();
  bench_kernels(quick);
  return 0;
}
