// Micro-benchmarks (google-benchmark) for the hot substrate kernels:
// greedy matching, local search, strength estimation, sparsifier
// construction, l0-sampler updates, and union-find. These support the E5
// runtime claims with per-kernel numbers.

#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "graph/union_find.hpp"
#include "matching/approx.hpp"
#include "matching/greedy.hpp"
#include "sketch/l0sampler.hpp"
#include "sparsify/cut_sparsifier.hpp"
#include "sparsify/strength.hpp"
#include "util/rng.hpp"

namespace {

void BM_GreedyMatching(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dp::Graph g = dp::gen::gnm(n, 8 * n, 1);
  dp::gen::weight_uniform(g, 1.0, 10.0, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::greedy_matching(g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_GreedyMatching)->Arg(1000)->Arg(4000);

void BM_LocalSearchMatching(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dp::Graph g = dp::gen::gnm(n, 8 * n, 3);
  dp::gen::weight_uniform(g, 1.0, 10.0, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::local_search_matching(g, 8, 5));
  }
}
BENCHMARK(BM_LocalSearchMatching)->Arg(1000)->Arg(4000);

void BM_StrengthEstimation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const dp::Graph g = dp::gen::gnm(n, 8 * n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dp::estimate_strengths(n, g.edges(), 7));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_StrengthEstimation)->Arg(1000)->Arg(4000);

void BM_CutSparsify(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const dp::Graph g = dp::gen::gnm(n, 8 * n, 8);
  dp::SparsifierOptions opt;
  opt.xi = 0.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::cut_sparsify(g, opt, 9));
  }
}
BENCHMARK(BM_CutSparsify)->Arg(1000)->Arg(4000);

void BM_L0SamplerUpdate(benchmark::State& state) {
  dp::Rng rng(10);
  const dp::L0SamplerSeed seed(24, 8, rng);
  dp::L0Sampler sampler(seed);
  std::uint64_t i = 0;
  for (auto _ : state) {
    sampler.update(i++ % (1 << 20), 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_L0SamplerUpdate);

void BM_UnionFind(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const dp::Graph g = dp::gen::gnm(n, 8 * n, 11);
  for (auto _ : state) {
    dp::UnionFind uf(n);
    for (const dp::Edge& e : g.edges()) uf.unite(e.u, e.v);
    benchmark::DoNotOptimize(uf.num_components());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_UnionFind)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
