// E6 (Lemma 12/21): quality of the initial dual solution. Expected shape:
// coverage is exactly eps/256; the normalized budget beta0 lands in
// [beta*/a, beta*/2] with a = O(eps^-2); O(p) sampling rounds.

#include <cstdio>

#include "bench_common.hpp"
#include "core/dual_state.hpp"
#include "core/initial.hpp"
#include "core/weight_levels.hpp"
#include "graph/generators.hpp"
#include "matching/blossom_weighted.hpp"

int main() {
  using namespace dp;
  bench::header("E6 initial dual (Lemma 12/21)",
                "coverage = eps/256; beta0 within [beta*/a, beta*/2] "
                "normalized; O(p) rounds");

  std::printf("%-8s %-8s %10s %14s %14s %8s\n", "n", "eps", "coverage",
              "beta0/beta*", "bound[1/a,0.5]", "rounds");
  bench::row_labels({"n", "eps", "coverage", "beta0_over_betastar",
                     "a_inv", "rounds"});
  for (std::size_t n : {60, 120, 240}) {
    for (double eps : {0.25, 0.125}) {
      Graph g = gen::gnm(n, 6 * n, n + 1);
      gen::weight_uniform(g, 1.0, 16.0, n + 2);
      const Capacities b = Capacities::unit(n);
      const core::LevelGraph lg(g, b, eps);
      ResourceMeter meter;
      const auto init = core::build_initial(lg, b, 2.0, 5, &meter);

      // beta* proxy in normalized units: exact matching on discretized
      // weights.
      Graph normalized(n);
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        if (lg.level(e) >= 0) {
          normalized.add_edge(g.edge(e).u, g.edge(e).v,
                              lg.normalized_weight(e));
        }
      }
      const double beta_star =
          n <= 240 ? max_weight_matching(normalized).weight(normalized)
                   : 0.0;
      const double ratio = beta_star > 0 ? init.beta0 / beta_star : 0.0;
      const double a_inv = eps * eps / 2048.0;
      std::printf("%-8zu %-8.3f %10.5f %14.5f %14.5f %8zu\n", n, eps,
                  init.coverage, ratio, a_inv, init.rounds);
      bench::row({static_cast<double>(n), eps, init.coverage, ratio, a_inv,
                  static_cast<double>(init.rounds)});
    }
  }
  return 0;
}
