// E2 (Theorem 1/15): number of adaptive sampling rounds. We measure the
// round at which the incumbent integral solution reaches (1-eps) of its
// final value under a fixed round budget. Expected shape: convergence
// rounds flat in n (the paper's point: adaptivity is O(p/eps), independent
// of the graph size) and weakly increasing as eps shrinks.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/sampling.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

/// The seed solver's per-round sampling+union stage (PR 2 state): t
/// dependent Bernoulli sweeps off one stateful generator into a
/// vector-of-vectors, then a union membership pass. Kept verbatim as the
/// wall-clock baseline for the batched engine.
std::size_t reference_sampling_round(const std::vector<double>& prob,
                                     std::size_t t, std::uint64_t seed,
                                     std::vector<std::size_t>& union_out,
                                     std::uint64_t& consume_acc) {
  dp::Rng rng(seed);
  std::vector<std::vector<std::size_t>> stored(t);
  std::size_t stored_total = 0;
  for (std::size_t q = 0; q < t; ++q) {
    for (std::size_t idx = 0; idx < prob.size(); ++idx) {
      if (prob[idx] > 0 && (prob[idx] >= 1.0 || rng.bernoulli(prob[idx]))) {
        stored[q].push_back(idx);
      }
    }
    stored_total += stored[q].size();
  }
  std::vector<char> in_union(prob.size(), 0);
  for (const auto& s : stored) {
    for (std::size_t idx : s) in_union[idx] = 1;
  }
  union_out.clear();
  for (std::size_t idx = 0; idx < prob.size(); ++idx) {
    if (in_union[idx]) union_out.push_back(idx);
  }
  // The solver-side consumption of the round: one walk over each
  // sparsifier's support (the inner-iteration `ids` build).
  for (const auto& s : stored) {
    for (std::size_t idx : s) consume_acc += idx;
  }
  return stored_total;
}

/// Run the batched sampling+union stage vs the sequential baseline and gate
/// bitwise thread-count invariance of the stored sets. Returns false on a
/// determinism violation.
bool sampling_stage_bench(dp::bench::BenchReport& report) {
  using namespace dp;
  std::printf("\nbatched sampling+union stage vs sequential baseline\n");
  std::printf("%-8s %-8s %-4s %14s %14s %10s %10s\n", "n", "m", "t",
              "ref_seconds", "engine_seconds", "speedup", "stored");
  bool ok = true;
  // Third config: oversampling dialed down so most probabilities stay
  // fractional — the Bernoulli-heavy regime (saturated probabilities
  // exercise the full-mask shortcut instead).
  const struct {
    std::size_t n;
    double sampling_constant;
  } configs[] = {{2000, 0.25}, {4000, 0.25}, {4000, 0.002}};
  for (const auto& config : configs) {
    const std::size_t n = config.n;
    const std::size_t m = 8 * n;
    const std::size_t t = 8;
    Graph g = gen::gnm(n, m, n + 17);
    gen::weight_uniform(g, 1.0, 16.0, n + 18);
    std::vector<double> promise(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) promise[e] = g.edge(e).w;

    // The solver's per-round deferred options (solve() at p = 2).
    DeferredOptions dopt;
    dopt.xi = 0.5;
    dopt.gamma = std::sqrt(std::pow(static_cast<double>(n), 0.25));
    dopt.sampling_constant = config.sampling_constant;

    core::SamplingEngine engine;
    const std::vector<double> prob(
        engine.probabilities(n, g.edges(), promise, dopt, n + 19));

    // Both sides are timed end-to-end: draw + union + one consumption walk
    // per sparsifier (the engine defers per-sparsifier materialization to
    // that walk, so timing the draw alone would under-count it).
    const std::uint64_t seed = n + 20;
    std::vector<std::size_t> ref_union;
    std::uint64_t ref_acc = 0;
    double ref_seconds = 1e300;
    std::size_t ref_stored = 0;
    for (int rep = 0; rep < 9; ++rep) {
      WallTimer timer;
      ref_stored =
          reference_sampling_round(prob, t, seed, ref_union, ref_acc);
      ref_seconds = std::min(ref_seconds, timer.seconds());
    }

    std::uint64_t engine_acc = 0;
    double engine_seconds = 1e300;
    for (int rep = 0; rep < 9; ++rep) {
      WallTimer timer;
      engine.draw(prob, t, /*round=*/1, seed);
      for (std::size_t q = 0; q < t; ++q) {
        engine.last_round().for_each_stored(
            q, [&](std::uint32_t idx) { engine_acc += idx; });
      }
      engine_seconds = std::min(engine_seconds, timer.seconds());
    }
    if ((ref_acc == 0) != (engine_acc == 0)) {
      std::fprintf(stderr, "FATAL: consumption walk mismatch\n");
      ok = false;
    }
    const core::SamplingRound& round = engine.last_round();

    // Determinism gate: stored sets bitwise identical for 1/2/8 threads.
    for (std::size_t threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      core::SamplingEngine other(&pool);
      other.draw(prob, t, 1, seed);
      if (other.last_round().masks() != round.masks() ||
          other.last_round().union_support() != round.union_support() ||
          other.last_round().stored_total() != round.stored_total()) {
        std::fprintf(stderr,
                     "FATAL: sampling draws differ at %zu threads (n=%zu)\n",
                     threads, n);
        ok = false;
      }
      for (std::size_t q = 0; q < t; ++q) {
        const auto a = round.sparsifier(q);
        const auto b = other.last_round().sparsifier(q);
        if (!std::equal(a.begin(), a.end(), b.begin(), b.end())) {
          std::fprintf(stderr,
                       "FATAL: sparsifier %zu differs at %zu threads\n", q,
                       threads);
          ok = false;
        }
      }
    }

    const double speedup = ref_seconds / engine_seconds;
    std::printf("%-8zu %-8zu %-4zu %14.6f %14.6f %10.2f %10zu\n", n, m, t,
                ref_seconds, engine_seconds, speedup,
                round.stored_total());
    (void)ref_stored;  // stored counts differ: ref draws are sequential
    report.add({static_cast<double>(n), static_cast<double>(m),
                static_cast<double>(t), ref_seconds, engine_seconds, speedup,
                static_cast<double>(round.stored_total())});
  }
  return ok;
}

}  // namespace

int main() {
  using namespace dp;
  bench::header("E2 rounds (Theorem 1/15)",
                "sampling rounds to reach (1-eps) of the final value: flat "
                "in n; total adaptive rounds bounded by O(p/eps)");

  std::printf("%-8s %-8s %14s %12s %10s %12s\n", "n", "eps", "conv_round",
              "total_rounds", "oracle", "certified");
  bench::BenchReport report(
      "rounds", {"n", "eps", "conv_round", "total_rounds", "oracle_calls",
                 "certified_ratio"});
  for (std::size_t n : {100, 200, 400, 800}) {
    for (double eps : {0.25, 0.15}) {
      Graph g = gen::gnm(n, 8 * n, n + 5);
      gen::weight_uniform(g, 1.0, 16.0, n + 6);
      core::SolverOptions opts;
      opts.eps = eps;
      opts.p = 2.0;
      opts.seed = 3;
      opts.max_outer_rounds = 12;
      opts.sparsifiers_per_round = 4;
      const auto result = core::solve_matching(g, opts);
      std::size_t conv_round = result.history.size();
      for (const auto& rs : result.history) {
        if (rs.best_value >= (1.0 - eps) * result.value) {
          conv_round = rs.round;
          break;
        }
      }
      std::printf("%-8zu %-8.2f %14zu %12zu %10zu %12.4f\n", n, eps,
                  conv_round, result.meter.rounds(), result.oracle_calls,
                  result.certified_ratio);
      report.add({static_cast<double>(n), eps,
                  static_cast<double>(conv_round),
                  static_cast<double>(result.meter.rounds()),
                  static_cast<double>(result.oracle_calls),
                  result.certified_ratio});
    }
  }

  bench::BenchReport sampling_report(
      "sampling", {"n", "m", "t", "ref_seconds", "engine_seconds", "speedup",
                   "stored"});
  return sampling_stage_bench(sampling_report) ? 0 : 1;
}
