// E2 (Theorem 1/15): number of adaptive sampling rounds. We measure the
// round at which the incumbent integral solution reaches (1-eps) of its
// final value under a fixed round budget. Expected shape: convergence
// rounds flat in n (the paper's point: adaptivity is O(p/eps), independent
// of the graph size) and weakly increasing as eps shrinks.

#include <cstdio>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace dp;
  bench::header("E2 rounds (Theorem 1/15)",
                "sampling rounds to reach (1-eps) of the final value: flat "
                "in n; total adaptive rounds bounded by O(p/eps)");

  std::printf("%-8s %-8s %14s %12s %10s %12s\n", "n", "eps", "conv_round",
              "total_rounds", "oracle", "certified");
  bench::BenchReport report(
      "rounds", {"n", "eps", "conv_round", "total_rounds", "oracle_calls",
                 "certified_ratio"});
  for (std::size_t n : {100, 200, 400, 800}) {
    for (double eps : {0.25, 0.15}) {
      Graph g = gen::gnm(n, 8 * n, n + 5);
      gen::weight_uniform(g, 1.0, 16.0, n + 6);
      core::SolverOptions opts;
      opts.eps = eps;
      opts.p = 2.0;
      opts.seed = 3;
      opts.max_outer_rounds = 12;
      opts.sparsifiers_per_round = 4;
      const auto result = core::solve_matching(g, opts);
      std::size_t conv_round = result.history.size();
      for (const auto& rs : result.history) {
        if (rs.best_value >= (1.0 - eps) * result.value) {
          conv_round = rs.round;
          break;
        }
      }
      std::printf("%-8zu %-8.2f %14zu %12zu %10zu %12.4f\n", n, eps,
                  conv_round, result.meter.rounds(), result.oracle_calls,
                  result.certified_ratio);
      report.add({static_cast<double>(n), eps,
                  static_cast<double>(conv_round),
                  static_cast<double>(result.meter.rounds()),
                  static_cast<double>(result.oracle_calls),
                  result.certified_ratio});
    }
  }
  return 0;
}
