// E9/E12 (Section 1 "New Relaxations"): the width ablation — the paper's
// structural lever. Expected shape: the standard dual LP2 width grows
// linearly with the budget beta (~n for unweighted graphs), the penalty
// dual LP4 width stays <= 6 independent of everything; the triangle example
// reproduces the 1 + 5eps bipartite overshoot; PST iteration counts track
// the width.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "lp/formulations.hpp"
#include "matching/exact_small.hpp"

int main() {
  using namespace dp;
  bench::header("E9/E12 width ablation (penalty relaxations)",
                "standard dual width grows with beta; penalty dual width "
                "<= 6 regardless");

  std::printf("-- widths on K7 (unweighted, b=1) --\n");
  std::printf("%-10s %16s %16s\n", "beta", "standard_width",
              "penalty_width");
  bench::row_labels({"beta", "standard_width", "penalty_width"});
  {
    Graph g = gen::complete(7);
    gen::weight_unit(g);
    const Capacities b = Capacities::unit(7);
    for (double beta : {1.0, 2.0, 3.0, 6.0, 12.0}) {
      const lp::WidthReport report = lp::measure_dual_widths(g, b, beta);
      std::printf("%-10.1f %16.3f %16.3f\n", beta, report.standard_width,
                  report.penalty_width);
      bench::row({beta, report.standard_width, report.penalty_width});
    }
  }

  std::printf("\n-- the paper's triangle example (Section 1) --\n");
  for (double eps : {0.04, 0.02}) {
    const Graph g = gen::weighted_triangle_example(10.0 * eps);
    const Capacities b = Capacities::unit(4);
    const double bip =
        lp::lp_optimum(lp::build_matching_lp(g, b, false));
    const double exact_lp =
        lp::lp_optimum(lp::build_matching_lp(g, b, true));
    const double integral = exact_matching_weight_small(g);
    std::printf("eps=%.2f  bipartite_relax=%.4f  odd_set_lp=%.4f  "
                "integral=%.4f  (overshoot %.4f ~ 1/2 - 10eps)\n",
                eps, bip, exact_lp, integral, bip - exact_lp);
  }

  std::printf("\n-- LP3 penalty == LP1 exact (total dual integrality) --\n");
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Graph g = gen::gnm(7, 12, seed + 50);
    gen::weight_unit(g);
    const Capacities b = Capacities::unit(7);
    const double lp1 = lp::lp_optimum(lp::build_matching_lp(g, b, true));
    const double lp3 =
        lp::lp_optimum(lp::build_penalty_lp_unweighted(g, b));
    std::printf("seed=%llu  LP1=%.4f  LP3=%.4f  (diff %.1e)\n",
                static_cast<unsigned long long>(seed), lp1, lp3,
                lp3 - lp1);
  }

  std::printf("\n-- Theorem 23 sandwich on discretized weighted graphs --\n");
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const double eps = 1.0 / 16.0;
    Graph base = gen::gnm(6, 9, seed + 70);
    gen::weight_uniform(base, 1.0, 8.0, seed + 71);
    Graph g(base.num_vertices());
    for (const Edge& e : base.edges()) {
      const int k = static_cast<int>(std::log(e.w) / std::log1p(eps));
      g.add_edge(e.u, e.v, std::pow(1.0 + eps, std::max(0, k)));
    }
    const Capacities b = Capacities::unit(6);
    const double beta_hat =
        lp::lp_optimum(lp::build_matching_lp(g, b, true));
    const double beta_tilde =
        lp::lp_optimum(lp::build_layered_penalty_lp(g, b, eps));
    std::printf("seed=%llu  betaHat=%.4f  betaTilde=%.4f  "
                "ratio=%.4f (<= 1+eps=%.4f)\n",
                static_cast<unsigned long long>(seed), beta_hat, beta_tilde,
                beta_hat > 0 ? beta_tilde / beta_hat : 1.0, 1.0 + eps);
  }
  return 0;
}
