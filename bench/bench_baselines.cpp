// E7 (Section 1 / related work): head-to-head across graph families.
// Expected shape: dual-primal dominates every resource-constrained baseline
// on every family and sits close to the exact optimum; greedy suffers most
// on the trap path; odd-set families (triangles) do not fool the solver.

#include <cstdio>

#include "baselines/baselines.hpp"
#include "bench_common.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "matching/blossom_weighted.hpp"
#include "matching/greedy.hpp"

int main() {
  using namespace dp;
  bench::header("E7 baselines table",
                "weight ratio to exact optimum per graph family; expected "
                "order: dual-primal > filtering/local-ratio > greedy-ish");

  struct Family {
    const char* name;
    Graph g;
  };
  std::vector<Family> families;
  {
    Graph g = gen::gnm(150, 1800, 1);
    gen::weight_uniform(g, 1.0, 32.0, 2);
    families.push_back({"gnm-uniform", std::move(g)});
  }
  {
    Graph g = gen::power_law(150, 2.3, 16.0, 3);
    gen::weight_zipf(g, 0.8, 4);
    families.push_back({"powerlaw-zipf", std::move(g)});
  }
  {
    Graph g = gen::bipartite(75, 75, 1200, 5);
    gen::weight_uniform(g, 1.0, 16.0, 6);
    families.push_back({"bipartite", std::move(g)});
  }
  {
    Graph g = gen::triangle_rich(40, 60, 7);
    families.push_back({"triangle-rich", std::move(g)});
  }
  {
    families.push_back({"greedy-trap", gen::greedy_trap_path(60, 0.02)});
  }

  std::printf("%-16s %10s %10s %10s %10s %10s %10s\n", "family", "exact",
              "greedy", "loc-ratio", "filter", "samp+slv", "dual-prim");
  bench::BenchReport report(
      "baselines", {"family_idx", "greedy", "ps", "filtering",
                    "sample_solve", "dual_primal"});
  int idx = 0;
  for (const Family& family : families) {
    const Graph& g = family.g;
    const double opt = max_weight_matching(g).weight(g);
    const double greedy = greedy_matching(g).weight(g) / opt;
    const double ps =
        baselines::paz_schwartzman_matching(g, 0.05).weight(g) / opt;
    const double filt =
        baselines::filtering_matching(g, 2.0, 8).weight(g) / opt;
    const double ss = baselines::sample_and_solve(g, 1.3, 9).weight(g) / opt;
    core::SolverOptions opts;
    opts.eps = 0.15;
    opts.p = 2.0;
    opts.seed = 10;
    opts.max_outer_rounds = 8;
    opts.sparsifiers_per_round = 4;
    const double dual = core::solve_matching(g, opts).value / opt;
    std::printf("%-16s %10.1f %10.4f %10.4f %10.4f %10.4f %10.4f\n",
                family.name, opt, greedy, ps, filt, ss, dual);
    report.add({static_cast<double>(idx++), greedy, ps, filt, ss, dual});
  }
  return 0;
}
