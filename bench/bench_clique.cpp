// E10 (Section 1, congested clique): per-vertex sketch message size.
// Expected shape: words per vertex grow polylogarithmically in n (each
// round ships one l0-sampler per vertex; the matching algorithm ships
// n^{1/p} of them).

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "sketch/agm.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

int main() {
  using namespace dp;
  bench::header("E10 congested clique (Section 1)",
                "sketch words per vertex vs n: polylog growth (slope in "
                "log-log well below 1)");

  std::printf("%-8s %-10s %16s %16s\n", "n", "m", "words_total",
              "words_per_vertex");
  bench::row_labels({"n", "m", "words_total", "words_per_vertex"});
  std::vector<double> ns, per_vertex;
  for (std::size_t n : {64, 128, 256, 512, 1024}) {
    const std::size_t m = 8 * n;
    const Graph g = gen::gnm(n, m, n + 1);
    Rng rng(n + 2);
    const int levels =
        2 * static_cast<int>(std::ceil(std::log2(static_cast<double>(n)))) +
        2;
    const L0SamplerSeed seed(levels, 6, rng);
    ResourceMeter meter;
    const AgmSketch sketch(g, seed, &meter);
    const double wpv = static_cast<double>(meter.sketch_words()) /
                       static_cast<double>(n);
    std::printf("%-8zu %-10zu %16zu %16.1f\n", n, m, meter.sketch_words(),
                wpv);
    bench::row({static_cast<double>(n), static_cast<double>(m),
                static_cast<double>(meter.sketch_words()), wpv});
    ns.push_back(static_cast<double>(n));
    per_vertex.push_back(wpv);
  }
  std::printf("-> words/vertex log-log slope %.3f (polylog: << 1)\n",
              loglog_slope(ns, per_vertex));
  return 0;
}
