// E4 (Lemma 17/18): deferred cut sparsifiers. Expected shape: max cut error
// tracks the target xi even when the promise weights are distorted by
// gamma; stored size grows with gamma^2/xi^2 and ~n polylog in n.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "sparsify/cut_eval.hpp"
#include "sparsify/deferred.hpp"
#include "util/rng.hpp"

int main() {
  using namespace dp;
  bench::header("E4 deferred sparsifier (Lemma 17/18)",
                "cut error <= ~xi despite gamma-distorted promises; size "
                "scales with gamma^2/xi^2");

  std::printf("%-8s %-8s %-8s %12s %12s %10s\n", "n", "xi", "gamma",
              "stored", "stored/m", "max_err");
  bench::BenchReport report(
      "sparsifier", {"n", "xi", "gamma", "stored", "frac", "max_err"});
  for (std::size_t n : {200, 400}) {
    // Heterogeneous instance — the regime strength sampling is built for:
    // a dense clique core (high strength, heavily subsampled) plus a sparse
    // periphery (strength ~1, kept verbatim).
    const std::size_t core = n / 2;
    Graph g(n);
    for (Vertex i = 0; i < core; ++i) {
      for (Vertex j = i + 1; j < core; ++j) g.add_edge(i, j);
    }
    const Graph periphery = gen::gnm(n - core, 2 * (n - core), n + 3);
    for (const Edge& e : periphery.edges()) {
      g.add_edge(static_cast<Vertex>(core + e.u),
                 static_cast<Vertex>(core + e.v));
    }
    for (Vertex i = 0; i < core; ++i) {  // attach periphery to core
      g.add_edge(i, static_cast<Vertex>(core + i));
    }
    const std::size_t m = g.num_edges();
    for (double xi : {0.5, 0.25}) {
      for (double gamma : {1.0, 2.0}) {
        Rng rng(n + static_cast<std::uint64_t>(100 * xi));
        std::vector<double> exact(m), promise(m);
        for (std::size_t e = 0; e < m; ++e) {
          exact[e] = 1.0 + 4.0 * rng.uniform_real();
          promise[e] =
              exact[e] * std::pow(gamma, 2.0 * rng.uniform_real() - 1.0);
        }
        DeferredOptions opt;
        opt.xi = xi;
        opt.gamma = gamma;
        opt.sampling_constant = 0.5;  // keep probabilities off the p = 1
                                      // ceiling at bench scales
        const DeferredSparsifier ds(n, g.edges(), promise, opt, n + 7);
        const auto kept = ds.refine_from_full(exact);
        const double err =
            max_cut_error(n, g.edges(), exact, kept, 300, n + 9);
        std::printf("%-8zu %-8.2f %-8.1f %12zu %12.3f %10.4f\n", n, xi,
                    gamma, ds.size(),
                    static_cast<double>(ds.size()) / static_cast<double>(m),
                    err);
        report.add({static_cast<double>(n), xi, gamma,
                    static_cast<double>(ds.size()),
                    static_cast<double>(ds.size()) / static_cast<double>(m),
                    err});
      }
    }
  }
  return 0;
}
