// E1 (Theorem 15): approximation ratio versus eps, dual-primal against the
// baselines and the exact optimum. Expected shape: dual-primal ratio is
// close to 1 and improves as eps shrinks; greedy sits near its 1/2..0.9
// band; filtering is a constant factor below dual-primal.

#include <cstdio>

#include "baselines/baselines.hpp"
#include "bench_common.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "matching/blossom_weighted.hpp"
#include "matching/greedy.hpp"

int main() {
  using namespace dp;
  bench::header("E1 approx-vs-eps (Theorem 15)",
                "ratio to exact optimum vs eps; dual-primal should approach "
                "1 as eps shrinks and dominate greedy/filtering");

  const std::size_t n = 150;
  const std::size_t m = 2000;
  Graph g = gen::gnm(n, m, 11);
  gen::weight_uniform(g, 1.0, 64.0, 12);
  const double opt = max_weight_matching(g).weight(g);

  const double greedy = greedy_matching(g).weight(g);
  const double ps = baselines::paz_schwartzman_matching(g, 0.05).weight(g);
  const double filt = baselines::filtering_matching(g, 2.0, 3).weight(g);

  std::printf("n=%zu m=%zu exact_opt=%.1f\n", n, m, opt);
  std::printf("%-8s %12s %12s %12s %12s %12s\n", "eps", "dual-primal",
              "certified", "greedy", "local-ratio", "filtering");
  bench::row_labels({"eps", "dual_primal_ratio", "certified_ratio",
                     "greedy_ratio", "ps_ratio", "filtering_ratio"});
  for (double eps : {0.3, 0.25, 0.2, 0.15, 0.1}) {
    core::SolverOptions opts;
    opts.eps = eps;
    opts.p = 2.0;
    opts.seed = 21;
    opts.max_outer_rounds = 8;
    opts.sparsifiers_per_round = 6;
    const auto result = core::solve_matching(g, opts);
    std::printf("%-8.2f %12.4f %12.4f %12.4f %12.4f %12.4f\n", eps,
                result.value / opt, result.certified_ratio, greedy / opt,
                ps / opt, filt / opt);
    bench::row({eps, result.value / opt, result.certified_ratio,
                greedy / opt, ps / opt, filt / opt});
  }
  return 0;
}
