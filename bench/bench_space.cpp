// E3 (Theorem 15): central space O(n^{1+1/p}). We measure the peak number
// of stored edges per round against n for p in {2, 3, 4} and report the
// log-log slope; expected shape: slope ~ 1 + 1/p (and always sublinear
// in m ~ n^{1.5}).

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "util/math.hpp"

int main() {
  using namespace dp;
  bench::header("E3 space (Theorem 15)",
                "peak stored edges vs n for p=2,3,4 on m~4n^1.25 graphs; "
                "log-log slope should fall with 1+1/p and stay below the "
                "slope of m");

  bench::row_labels({"p", "n", "m", "peak_edges"});
  std::printf("%-6s %-8s %-10s %14s\n", "p", "n", "m", "peak_edges");
  for (double p : {2.0, 3.0, 4.0}) {
    std::vector<double> ns, peaks;
    for (std::size_t n : {200, 400, 800, 1600}) {
      const auto m = static_cast<std::size_t>(
          3.0 * std::pow(static_cast<double>(n), 1.4));
      Graph g = gen::gnm(n, m, n + 17);
      gen::weight_uniform(g, 1.0, 8.0, n + 18);
      core::SolverOptions opts;
      opts.eps = 0.25;
      opts.p = p;
      opts.seed = 9;
      opts.max_outer_rounds = 2;       // space is a per-round quantity
      opts.sparsifiers_per_round = 3;
      const auto result = core::solve_matching(g, opts);
      const auto peak = static_cast<double>(result.meter.peak_edges());
      std::printf("%-6.0f %-8zu %-10zu %14.0f\n", p, n, m, peak);
      bench::row({p, static_cast<double>(n), static_cast<double>(m), peak});
      ns.push_back(static_cast<double>(n));
      peaks.push_back(peak);
    }
    std::printf("  -> measured slope %.3f (paper budget exponent %.3f; "
                "m slope is 1.4)\n",
                loglog_slope(ns, peaks), 1.0 + 1.0 / p);
  }
  return 0;
}
