// E5 (Theorem 15): running time vs m at fixed eps and p. Expected shape:
// near-linear growth in m (the paper claims O(m poly(1/eps, log n))).
// Each size runs twice — staged round pipeline with the offline re-solve
// overlapped against the inner MW iterations (the default), and the
// sequential stage reference — so BENCH_runtime.json tracks the overlap
// win ("speedup" column) alongside the absolute trajectory.

#include <cstdio>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "util/math.hpp"
#include "util/timer.hpp"

int main() {
  using namespace dp;
  bench::header("E5 runtime (Theorem 15)",
                "wall seconds vs m at fixed n, eps, p; expect near-linear "
                "growth in m and a pipeline-overlap win vs the sequential "
                "stage order");

  bench::BenchReport report("runtime", {"n", "m", "seconds", "seconds_seq",
                                        "speedup", "certified_ratio"});
  std::vector<double> ms, secs;
  const std::size_t n = 600;

  // Determinism gate: the certified ratio AND the per-round stored-edge
  // counts must be bitwise identical across thread counts AND across the
  // pipelined/sequential stage orders (the fixed-chunk contract of the
  // oracle sweeps, lambda, covering_us, the batched sampling engine's
  // counter-based draws, and the round pipeline's single merge point).
  {
    Graph g = gen::gnm(n, 3000, 3001);
    gen::weight_uniform(g, 1.0, 16.0, 3002);
    core::SolverOptions opts;
    opts.eps = 0.25;
    opts.p = 2.0;
    opts.seed = 13;
    opts.max_outer_rounds = 2;
    opts.sparsifiers_per_round = 2;
    struct Run {
      std::size_t threads;
      bool overlap;
      bool cross_round;
    };
    const Run runs[] = {{1, false, false}, {1, true, false},
                        {1, true, true},   {2, true, true},
                        {8, true, true},   {8, true, false},
                        {8, false, false}};
    double ratio[7];
    std::vector<std::size_t> stored[7];
    std::size_t slot = 0;
    for (const Run& run : runs) {
      opts.oracle.threads = run.threads;
      opts.pipeline_overlap = run.overlap;
      opts.pipeline_cross_round = run.cross_round;
      const auto result = core::solve_matching(g, opts);
      ratio[slot] = result.certified_ratio;
      for (const auto& rs : result.history) {
        stored[slot].push_back(rs.stored_edges);
      }
      ++slot;
    }
    for (std::size_t s = 1; s < slot; ++s) {
      if (ratio[0] != ratio[s]) {
        std::fprintf(stderr,
                     "FATAL: certified ratio varies with threads/overlap/"
                     "cross-round "
                     "(run %zu: %.17g vs %.17g)\n",
                     s, ratio[0], ratio[s]);
        return 1;
      }
      if (stored[0] != stored[s]) {
        std::fprintf(stderr,
                     "FATAL: per-round stored-edge counts vary with "
                     "threads/overlap/cross-round (run %zu)\n", s);
        return 1;
      }
    }
    std::printf("determinism: certified ratio and stored-edge counts "
                "bitwise stable for 1/2/8 threads, pipeline on/off and "
                "cross-round deferral on/off "
                "(%.6f)\n\n", ratio[0]);
  }

  std::printf("%-10s %-10s %12s %12s %10s %12s\n", "n", "m", "seconds",
              "seconds_seq", "speedup", "ratio");
  for (std::size_t m : {3000, 6000, 12000, 24000}) {
    Graph g = gen::gnm(n, m, m + 1);
    gen::weight_uniform(g, 1.0, 16.0, m + 2);
    core::SolverOptions opts;
    opts.eps = 0.25;
    opts.p = 2.0;
    opts.seed = 13;
    opts.max_outer_rounds = 4;
    opts.sparsifiers_per_round = 3;

    opts.pipeline_overlap = true;
    WallTimer timer;
    const auto result = core::solve_matching(g, opts);
    const double sec = timer.seconds();

    opts.pipeline_overlap = false;
    WallTimer seq_timer;
    const auto seq_result = core::solve_matching(g, opts);
    const double sec_seq = seq_timer.seconds();
    if (seq_result.certified_ratio != result.certified_ratio) {
      std::fprintf(stderr,
                   "FATAL: pipeline on/off results diverge at m=%zu\n", m);
      return 1;
    }

    const double speedup = sec > 0 ? sec_seq / sec : 0.0;
    std::printf("%-10zu %-10zu %12.3f %12.3f %10.2f %12.4f\n", n, m, sec,
                sec_seq, speedup, result.certified_ratio);
    report.add({static_cast<double>(n), static_cast<double>(m), sec,
                sec_seq, speedup, result.certified_ratio});
    ms.push_back(static_cast<double>(m));
    secs.push_back(sec);
  }
  std::printf("-> time-vs-m log-log slope %.3f (near-linear target ~1)\n",
              loglog_slope(ms, secs));
  return 0;
}
