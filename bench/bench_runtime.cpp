// E5 (Theorem 15): running time vs m at fixed eps and p. Expected shape:
// near-linear growth in m (the paper claims O(m poly(1/eps, log n))).

#include <cstdio>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "util/math.hpp"
#include "util/timer.hpp"

int main() {
  using namespace dp;
  bench::header("E5 runtime (Theorem 15)",
                "wall seconds vs m at fixed n, eps, p; expect near-linear "
                "growth in m");

  std::printf("%-10s %-10s %12s %12s\n", "n", "m", "seconds", "ratio");
  bench::BenchReport report("runtime",
                            {"n", "m", "seconds", "certified_ratio"});
  std::vector<double> ms, secs;
  const std::size_t n = 600;

  // Determinism gate: the certified ratio AND the per-round stored-edge
  // counts must be bitwise identical across thread counts (the fixed-chunk
  // contract of the oracle sweeps, lambda, covering_us, and the batched
  // sampling engine's counter-based draws).
  {
    Graph g = gen::gnm(n, 3000, 3001);
    gen::weight_uniform(g, 1.0, 16.0, 3002);
    core::SolverOptions opts;
    opts.eps = 0.25;
    opts.p = 2.0;
    opts.seed = 13;
    opts.max_outer_rounds = 2;
    opts.sparsifiers_per_round = 2;
    double ratio[3];
    std::vector<std::size_t> stored[3];
    std::size_t slot = 0;
    for (std::size_t threads : {1, 2, 8}) {
      opts.oracle.threads = threads;
      const auto result = core::solve_matching(g, opts);
      ratio[slot] = result.certified_ratio;
      for (const auto& rs : result.history) {
        stored[slot].push_back(rs.stored_edges);
      }
      ++slot;
    }
    if (ratio[0] != ratio[1] || ratio[0] != ratio[2]) {
      std::fprintf(stderr,
                   "FATAL: certified ratio varies with thread count "
                   "(%.17g / %.17g / %.17g)\n",
                   ratio[0], ratio[1], ratio[2]);
      return 1;
    }
    if (stored[0] != stored[1] || stored[0] != stored[2]) {
      std::fprintf(stderr,
                   "FATAL: per-round stored-edge counts vary with thread "
                   "count\n");
      return 1;
    }
    std::printf("determinism: certified ratio and stored-edge counts "
                "bitwise stable for 1/2/8 threads (%.6f)\n\n", ratio[0]);
  }
  for (std::size_t m : {3000, 6000, 12000, 24000}) {
    Graph g = gen::gnm(n, m, m + 1);
    gen::weight_uniform(g, 1.0, 16.0, m + 2);
    core::SolverOptions opts;
    opts.eps = 0.25;
    opts.p = 2.0;
    opts.seed = 13;
    opts.max_outer_rounds = 4;
    opts.sparsifiers_per_round = 3;
    WallTimer timer;
    const auto result = core::solve_matching(g, opts);
    const double sec = timer.seconds();
    std::printf("%-10zu %-10zu %12.3f %12.4f\n", n, m, sec,
                result.certified_ratio);
    report.add({static_cast<double>(n), static_cast<double>(m), sec,
                result.certified_ratio});
    ms.push_back(static_cast<double>(m));
    secs.push_back(sec);
  }
  std::printf("-> time-vs-m log-log slope %.3f (near-linear target ~1)\n",
              loglog_slope(ms, secs));
  return 0;
}
