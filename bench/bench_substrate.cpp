// Substrate trajectory (the paper's access-to-data axis): the SAME solve
// executed on the in-memory, semi-streaming and MapReduce substrates.
// Emits BENCH_substrate.json with per-substrate wall seconds and the model
// quantities each substrate meters — passes, simulator rounds, shuffle
// volume, peak stored edges — and self-gates the core contract: the
// SolverResult (value, lambda, beta, certified ratio, history, stored
// counts) must be bitwise identical across all three substrates AND across
// 1/2/8 threads.

#include <cstdio>
#include <string>

#include "access/in_memory.hpp"
#include "access/mapreduce.hpp"
#include "access/streaming.hpp"
#include "bench_common.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "util/timer.hpp"

namespace {

using namespace dp;

core::SolverOptions solve_options() {
  core::SolverOptions opts;
  opts.eps = 0.25;
  opts.p = 2.0;
  opts.seed = 13;
  opts.max_outer_rounds = 4;
  opts.sparsifiers_per_round = 3;
  return opts;
}

struct Fingerprint {
  double value = 0;
  double lambda = 0;
  double beta = 0;
  double certified_ratio = 0;
  std::size_t outer_rounds = 0;
  std::vector<std::size_t> stored;

  explicit Fingerprint(const core::SolverResult& r)
      : value(r.value),
        lambda(r.lambda),
        beta(r.beta),
        certified_ratio(r.certified_ratio),
        outer_rounds(r.outer_rounds) {
    for (const auto& rs : r.history) stored.push_back(rs.stored_edges);
  }

  bool operator==(const Fingerprint&) const = default;
};

}  // namespace

int main() {
  bench::header("Substrate trajectory (access to data)",
                "one solve across in-memory / streaming / MapReduce "
                "substrates: bitwise-identical SolverResult, per-model "
                "passes, shuffle volume and peak stored edges");

  // ---- Self-gate: cross-substrate and cross-thread bitwise identity. ----
  {
    Graph g = gen::gnm(300, 4000, 4001);
    gen::weight_uniform(g, 1.0, 16.0, 4002);
    core::SolverOptions ref_opts = solve_options();
    ref_opts.oracle.threads = 1;
    ref_opts.pipeline_overlap = false;
    const Fingerprint ref(core::solve_matching(g, ref_opts));
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      access::InMemorySubstrate in_memory;
      access::StreamingSubstrate streaming;
      access::MapReduceSubstrate map_reduce;
      access::Substrate* const subs[] = {&in_memory, &streaming,
                                         &map_reduce};
      for (access::Substrate* sub : subs) {
        core::SolverOptions opts = solve_options();
        opts.oracle.threads = threads;
        opts.substrate = sub;
        const Fingerprint run(core::solve_matching(g, opts));
        if (!(run == ref)) {
          std::fprintf(stderr,
                       "FATAL: SolverResult diverges on substrate %s at "
                       "%zu threads\n",
                       sub->name(), threads);
          return 1;
        }
      }
    }
    std::printf("determinism: SolverResult bitwise identical across "
                "in-memory/streaming/mapreduce and 1/2/8 threads\n\n");
  }

  // ---- Trajectory rows: per-substrate seconds + model accounting. ----
  bench::BenchReport report(
      "substrate", {"substrate", "n", "m", "seconds", "rounds", "passes",
                    "shuffle", "peak_stored", "certified_ratio"});
  std::printf("%-10s %-7s %-7s %10s %7s %7s %10s %12s %8s\n", "substrate",
              "n", "m", "seconds", "rounds", "passes", "shuffle",
              "peak_stored", "ratio");
  const std::size_t n = 600;
  for (const std::size_t m : {std::size_t{6000}, std::size_t{12000}}) {
    Graph g = gen::gnm(n, m, m + 7);
    gen::weight_uniform(g, 1.0, 16.0, m + 8);
    for (int which = 0; which < 3; ++which) {
      access::InMemorySubstrate in_memory;
      access::StreamingSubstrate streaming;
      access::MapReduceSubstrate map_reduce;
      access::Substrate* const sub =
          which == 0 ? static_cast<access::Substrate*>(&in_memory)
          : which == 1 ? static_cast<access::Substrate*>(&streaming)
                       : &map_reduce;
      core::SolverOptions opts = solve_options();
      opts.substrate = sub;
      WallTimer timer;
      const auto result = core::solve_matching(g, opts);
      const double sec = timer.seconds();
      const ResourceMeter& meter = sub->meter();
      std::printf("%-10s %-7zu %-7zu %10.3f %7zu %7zu %10zu %12zu %8.4f\n",
                  sub->name(), n, m, sec, meter.rounds(), meter.passes(),
                  meter.messages(), meter.peak_edges(),
                  result.certified_ratio);
      report.add({static_cast<double>(which), static_cast<double>(n),
                  static_cast<double>(m), sec,
                  static_cast<double>(meter.rounds()),
                  static_cast<double>(meter.passes()),
                  static_cast<double>(meter.messages()),
                  static_cast<double>(meter.peak_edges()),
                  result.certified_ratio});
    }
  }
  return 0;
}
