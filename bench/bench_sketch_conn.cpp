// E11 (Section 1 / Figure 1): the motivating example for deferral —
// sketch-based connectivity computes all sketches in ONE sampling round and
// then uses them in O(log n) data-free steps. Expected shape: success on
// every instance, use_steps ~ log2(n), sampling_rounds = 1.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "sketch/l0sampler.hpp"
#include "sketch/spanning_forest.hpp"
#include "util/timer.hpp"

namespace {

/// Micro gate for L0Sampler::update_batch: the batched path must produce a
/// bit-identical sketch and must not run slower than per-item updates
/// (rep-major hashing is the whole point). Returns false on violation.
bool update_batch_gate(dp::bench::BenchReport& report) {
  using namespace dp;
  Rng rng(71);
  const L0SamplerSeed seed(20, 8, rng);
  const std::size_t updates = 20000;
  std::vector<SketchUpdate> items(updates);
  for (std::size_t i = 0; i < updates; ++i) {
    items[i] = SketchUpdate{rng.uniform(1u << 20),
                            rng.bernoulli(0.5) ? +1 : -1};
  }

  L0Sampler item_sampler(seed);
  L0Sampler batch_sampler(seed);
  double item_seconds = 1e300;
  double batch_seconds = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    WallTimer timer;
    for (const SketchUpdate& u : items) {
      item_sampler.update(u.index, u.delta);
    }
    item_seconds = std::min(item_seconds, timer.seconds());
    timer.restart();
    batch_sampler.update_batch(items);
    batch_seconds = std::min(batch_seconds, timer.seconds());
  }
  const bool identical = item_sampler == batch_sampler;
  const double speedup = item_seconds / batch_seconds;
  std::printf("\nupdate_batch micro: %zu updates, per-item %.6fs, "
              "batch %.6fs, speedup %.2fx, state %s\n",
              updates, item_seconds, batch_seconds, speedup,
              identical ? "identical" : "DIVERGED");
  report.add({static_cast<double>(updates), item_seconds, batch_seconds,
              speedup});
  if (!identical) {
    std::fprintf(stderr, "FATAL: update_batch state differs from per-item "
                         "updates\n");
    return false;
  }
  if (speedup < 0.9) {
    std::fprintf(stderr, "FATAL: update_batch slower than per-item updates "
                         "(%.2fx)\n", speedup);
    return false;
  }
  return true;
}

}  // namespace

int main() {
  using namespace dp;
  bench::header("E11 sketch connectivity (Section 1 / Fig 1)",
                "1 sampling round; O(log n) deferred use steps; exact "
                "component counts");

  std::printf("%-8s %-10s %10s %10s %10s %12s\n", "n", "m", "true_cc",
              "sketch_cc", "use_steps", "log2(n)");
  bench::row_labels({"n", "m", "true_cc", "sketch_cc", "use_steps",
                     "log2n"});
  for (std::size_t n : {64, 128, 256, 512}) {
    // Disconnected instance: a few clusters.
    const std::size_t clusters = 4;
    Graph g(n);
    const std::size_t per = n / clusters;
    for (std::size_t c = 0; c < clusters; ++c) {
      const Graph cluster = gen::gnm(per, 3 * per, n + c);
      for (const Edge& e : cluster.edges()) {
        g.add_edge(static_cast<Vertex>(c * per + e.u),
                   static_cast<Vertex>(c * per + e.v));
      }
      for (Vertex i = 0; i + 1 < per; ++i) {  // keep cluster connected
        g.add_edge(static_cast<Vertex>(c * per + i),
                   static_cast<Vertex>(c * per + i + 1));
      }
    }
    const std::size_t truth = num_components(g);
    ResourceMeter meter;
    const auto result = sketch_spanning_forest(g, n + 5, &meter);
    std::printf("%-8zu %-10zu %10zu %10zu %10zu %12.1f\n", n,
                g.num_edges(), truth, result.components, result.use_steps,
                std::log2(static_cast<double>(n)));
    bench::row({static_cast<double>(n),
                static_cast<double>(g.num_edges()),
                static_cast<double>(truth),
                static_cast<double>(result.components),
                static_cast<double>(result.use_steps),
                std::log2(static_cast<double>(n))});
  }

  bench::BenchReport batch_report(
      "sketch_batch", {"updates", "item_seconds", "batch_seconds",
                       "speedup"});
  return update_batch_gate(batch_report) ? 0 : 1;
}
