// E11 (Section 1 / Figure 1): the motivating example for deferral —
// sketch-based connectivity computes all sketches in ONE sampling round and
// then uses them in O(log n) data-free steps. Expected shape: success on
// every instance, use_steps ~ log2(n), sampling_rounds = 1.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "sketch/spanning_forest.hpp"

int main() {
  using namespace dp;
  bench::header("E11 sketch connectivity (Section 1 / Fig 1)",
                "1 sampling round; O(log n) deferred use steps; exact "
                "component counts");

  std::printf("%-8s %-10s %10s %10s %10s %12s\n", "n", "m", "true_cc",
              "sketch_cc", "use_steps", "log2(n)");
  bench::row_labels({"n", "m", "true_cc", "sketch_cc", "use_steps",
                     "log2n"});
  for (std::size_t n : {64, 128, 256, 512}) {
    // Disconnected instance: a few clusters.
    const std::size_t clusters = 4;
    Graph g(n);
    const std::size_t per = n / clusters;
    for (std::size_t c = 0; c < clusters; ++c) {
      const Graph cluster = gen::gnm(per, 3 * per, n + c);
      for (const Edge& e : cluster.edges()) {
        g.add_edge(static_cast<Vertex>(c * per + e.u),
                   static_cast<Vertex>(c * per + e.v));
      }
      for (Vertex i = 0; i + 1 < per; ++i) {  // keep cluster connected
        g.add_edge(static_cast<Vertex>(c * per + i),
                   static_cast<Vertex>(c * per + i + 1));
      }
    }
    const std::size_t truth = num_components(g);
    ResourceMeter meter;
    const auto result = sketch_spanning_forest(g, n + 5, &meter);
    std::printf("%-8zu %-10zu %10zu %10zu %10zu %12.1f\n", n,
                g.num_edges(), truth, result.components, result.use_steps,
                std::log2(static_cast<double>(n)));
    bench::row({static_cast<double>(n),
                static_cast<double>(g.num_edges()),
                static_cast<double>(truth),
                static_cast<double>(result.components),
                static_cast<double>(result.use_steps),
                std::log2(static_cast<double>(n))});
  }
  return 0;
}
