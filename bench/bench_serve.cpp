// YCSB-style stress driver for the overload-robust matching service: an
// open-loop client replays a zipfian solve/probe mix against a
// MatchingService at underload (0.3x), saturation (1.0x) and overload
// (3.0x) of estimated capacity, across 1/2/8 worker sessions, and reports
// p50/p95/p99 latency, throughput and shed/deadline/degraded rates per
// phase (BENCH_serve.json).
//
// Self-gates (the robustness contract, FATAL on violation):
//  (a) Under overload the service sheds or deadline-degrades but never
//      deadlocks (the driver always drains) and never returns an
//      uncertified answer: every response is either a typed rejection or
//      carries a certified ratio, and every completed full solve is
//      bitwise identical to the direct solver run.
//  (b) A deadline-expired solve re-submitted with its checkpoint finishes
//      in measurably fewer rounds, bitwise identical to the uninterrupted
//      run — and its anytime incumbent equals the uninterrupted run's
//      incumbent at the cut round.
//
// Latency columns: p50/p95/p99 are MACHINE-RELATIVE (normalized by the
// solo solve latency measured in the same process), so CI can gate them
// across runners; the _ms twins are informational absolutes.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/checkpoint.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"
#include "util/clock.hpp"
#include "util/timer.hpp"

namespace {

using namespace dp;

int failures = 0;

void gate(bool ok, const std::string& what) {
  if (!ok) {
    std::printf("FATAL: %s\n", what.c_str());
    ++failures;
  }
}

core::SolverOptions solve_options() {
  core::SolverOptions opts;
  opts.eps = 0.25;
  opts.p = 2.0;
  opts.seed = 29;
  opts.max_outer_rounds = 4;
  opts.sparsifiers_per_round = 3;
  return opts;
}

Graph bench_graph() {
  Graph g = gen::gnm(240, 2200, 4181);
  gen::weight_uniform(g, 1.0, 16.0, 4182);
  return g;
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

struct PhaseResult {
  std::size_t ops = 0;
  std::size_t ok = 0;
  std::size_t shed = 0;
  std::size_t deadline = 0;
  std::size_t stalled = 0;
  std::size_t degraded = 0;
  std::size_t not_ready = 0;
  double wall_s = 0;
  std::vector<double> latency_ms;  // admitted requests only
};

/// One open-loop phase: `ops` zipfian-mixed requests paced at
/// `rate_per_sec`, all drained before returning (a hung service would hang
/// the driver — gate (a)'s no-deadlock check is that we always return).
PhaseResult run_phase(serve::MatchingService& svc, std::size_t snapshot,
                      const serve::WorkloadGen& gen, std::uint64_t client,
                      std::size_t ops, double rate_per_sec,
                      std::uint64_t solve_deadline_us,
                      const core::SolverResult& expected) {
  const Clock& clock = steady_clock();
  const double interval_us = 1e6 / rate_per_sec;
  std::vector<serve::ResponseTicket> tickets;
  tickets.reserve(ops);

  PhaseResult out;
  out.ops = ops;
  WallTimer wall;
  const std::uint64_t start = clock.now_us();
  for (std::size_t j = 0; j < ops; ++j) {
    const std::uint64_t target =
        start + static_cast<std::uint64_t>(interval_us * j);
    const std::uint64_t now = clock.now_us();
    if (now < target) clock.sleep_us(target - now);

    serve::Request req;
    req.snapshot = snapshot;
    const Vertex u = gen.vertex(client, j);
    switch (gen.kind(client, j)) {
      case serve::OpKind::kSolve:
        req.type = serve::RequestType::kSolve;
        req.deadline_us = solve_deadline_us;
        break;
      case serve::OpKind::kProbeEdge: {
        req.type = serve::RequestType::kProbeEdge;
        req.u = u;
        const Vertex v = gen.neighbor_of(u, client, j);
        req.v = v == serve::kNoNeighbor ? u : v;
        break;
      }
      case serve::OpKind::kProbeRatio:
        req.type = serve::RequestType::kProbeRatio;
        break;
    }
    tickets.push_back(svc.submit(req));
  }

  for (std::size_t j = 0; j < ops; ++j) {
    const serve::Response r = tickets[j].wait();
    switch (r.status) {
      case serve::ResponseStatus::kOk: ++out.ok; break;
      case serve::ResponseStatus::kShed: ++out.shed; break;
      case serve::ResponseStatus::kDeadline: ++out.deadline; break;
      case serve::ResponseStatus::kStalled: ++out.stalled; break;
      case serve::ResponseStatus::kDegraded: ++out.degraded; break;
      case serve::ResponseStatus::kNotReady: ++out.not_ready; break;
      default: break;
    }
    // Gate (a): certified or typed, nothing in between.
    if (r.certified) {
      gate(serve::may_certify(r.status), "certified under a typed status");
      gate(r.certified_ratio > 0,
           "certified response without a positive certified ratio");
    } else {
      gate(r.certified_ratio == 0 && r.value == 0,
           "typed rejection carrying an (uncertified) answer");
    }
    // Completed full solves must reproduce the direct run bitwise.
    if (r.status == serve::ResponseStatus::kOk && r.rounds_executed > 0) {
      gate(r.value == expected.value &&
               r.certified_ratio == expected.certified_ratio,
           "service solve diverged from the direct solver run");
    }
    if (r.status != serve::ResponseStatus::kShed) {
      out.latency_ms.push_back(
          static_cast<double>(r.queue_us + r.exec_us) / 1000.0);
    }
  }
  out.wall_s = wall.seconds();
  return out;
}

/// Gate (b): the deadline -> warm-resume round-trip through the service on
/// a scripted clock. Returns {rounds_at_cut, total_rounds}.
std::pair<std::size_t, std::size_t> resume_experiment(
    const Graph& g, const core::SolverResult& ref) {
  const std::size_t total = ref.outer_rounds;
  for (const std::uint64_t budget_us : {30, 45, 60, 90, 140}) {
    FakeClock clock;
    serve::ServiceOptions sopt;
    sopt.workers = 1;
    sopt.clock = &clock;
    sopt.solver = solve_options();
    serve::MatchingService svc(sopt);
    Graph copy = g;
    const std::size_t snap = svc.add_snapshot(std::move(copy));
    clock.auto_advance_us(1);

    serve::Request timed;
    timed.type = serve::RequestType::kSolve;
    timed.snapshot = snap;
    timed.deadline_us = budget_us;
    const serve::Response cut = svc.submit(timed).wait();
    clock.auto_advance_us(0);
    if (cut.status != serve::ResponseStatus::kDeadline ||
        cut.rounds_executed == 0 || cut.rounds_executed >= total ||
        cut.checkpoint == nullptr) {
      continue;  // budget missed the mid-solve window; try a longer one
    }
    const std::size_t k = cut.rounds_executed;

    // The anytime incumbent equals the uninterrupted run's incumbent at
    // the cut round, bitwise.
    gate(cut.value == ref.history[k - 1].best_value,
         "anytime value differs from the reference incumbent at the cut");
    gate(cut.checkpoint->next_round == k, "checkpoint is not at the cut");

    serve::Request again;
    again.type = serve::RequestType::kSolve;
    again.snapshot = snap;
    again.resume = cut.checkpoint;
    const serve::Response done = svc.submit(again).wait();
    gate(done.status == serve::ResponseStatus::kOk,
         "warm-resume did not complete");
    gate(done.value == ref.value &&
             done.certified_ratio == ref.certified_ratio,
         "warm-resumed solve diverged from the uninterrupted run");
    gate(done.rounds_executed == total,
         "warm-resume replayed instead of continuing");
    return {k, total};
  }
  gate(false, "no deadline budget cut the solve mid-run");
  return {0, total};
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    quick = quick || std::strcmp(argv[i], "--quick") == 0;
  }

  bench::header(
      "serve: anytime solving behind an overload-robust service",
      "Open-loop zipfian solve/probe mix vs an admission-controlled "
      "service: p50/p95/p99 (solo-solve relative), throughput and "
      "shed/deadline rates under 0.3x/1.0x/3.0x load at 1/2/8 workers; "
      "overload sheds typed but never uncertified; deadline-cut solves "
      "warm-resume bitwise-identically in fewer rounds.");

  const Graph g = bench_graph();

  // Solo reference: the expected fingerprint of every full solve, and the
  // normalizer of the machine-relative latency columns.
  const core::SolverResult expected = core::Solver(g, solve_options()).solve();
  gate(expected.status == core::SolverStatus::kComplete,
       "reference solve did not complete");
  gate(expected.outer_rounds >= 2, "reference solve too short to cut");
  double solo_ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    WallTimer t;
    (void)core::Solver(g, solve_options()).solve();
    solo_ms = std::min(solo_ms, t.millis());
  }
  std::printf("# solo solve: %.2f ms, %zu rounds, ratio %.4f\n\n", solo_ms,
              expected.outer_rounds, expected.certified_ratio);

  const auto [cut_round, total_rounds] = resume_experiment(g, expected);
  const double resume_saved_frac =
      total_rounds == 0
          ? 0
          : static_cast<double>(cut_round) / static_cast<double>(total_rounds);
  std::printf("# warm-resume: cut at round %zu/%zu, %.0f%% of rounds saved "
              "on re-submit\n\n",
              cut_round, total_rounds, 100.0 * resume_saved_frac);

  serve::WorkloadMix mix;
  mix.solve = 0.15;
  mix.probe_edge = 0.55;
  mix.probe_ratio = 0.30;
  const serve::WorkloadGen gen(0xced5, g, mix);

  const std::size_t ops = quick ? 40 : 90;
  const double phase_mults[] = {0.3, 1.0, 3.0};
  const std::size_t worker_counts[] = {1, 2, 8};

  bench::BenchReport report(
      "serve",
      {"workers", "offered_x", "ops", "ok", "shed", "deadline", "stalled",
       "not_ready", "p50", "p95", "p99", "p50_ms", "p95_ms", "p99_ms",
       "throughput_rps", "resume_saved_rounds"});

  for (const std::size_t workers : worker_counts) {
    serve::ServiceOptions sopt;
    sopt.workers = workers;
    sopt.queue_capacity = 4 * workers;
    sopt.solve_slots = 2 * workers;
    sopt.probe_slots = 8 * workers;
    sopt.retry_after_base_us = 500;
    sopt.solver = solve_options();
    serve::MatchingService svc(sopt);
    Graph copy = g;
    const std::size_t snap = svc.add_snapshot(std::move(copy));

    // Warm-up solve so probes answer from a certified artifact.
    serve::Request warm;
    warm.type = serve::RequestType::kSolve;
    warm.snapshot = snap;
    gate(svc.submit(warm).wait().status == serve::ResponseStatus::kOk,
         "warm-up solve failed");

    // Solve-driven capacity estimate: workers / (solve share * solo wall).
    const double capacity_rps = static_cast<double>(workers) /
                                (mix.solve * (solo_ms / 1000.0));
    // Solve budget: generous at 4x solo, so underload never trips it but
    // overload queueing does (the deadline-hit column).
    const auto solve_deadline_us =
        static_cast<std::uint64_t>(4.0 * solo_ms * 1000.0);

    for (std::size_t phase = 0; phase < 3; ++phase) {
      const double mult = phase_mults[phase];
      const PhaseResult pr = run_phase(
          svc, snap, gen, /*client=*/workers * 10 + phase, ops,
          mult * capacity_rps, solve_deadline_us, expected);

      if (mult >= 3.0) {
        gate(pr.shed + pr.deadline + pr.stalled > 0,
             "overload produced no shedding or deadline degradation");
      }
      const double p50 = percentile(pr.latency_ms, 0.50);
      const double p95 = percentile(pr.latency_ms, 0.95);
      const double p99 = percentile(pr.latency_ms, 0.99);
      report.add({static_cast<double>(workers), mult,
                  static_cast<double>(pr.ops), static_cast<double>(pr.ok),
                  static_cast<double>(pr.shed),
                  static_cast<double>(pr.deadline),
                  static_cast<double>(pr.stalled),
                  static_cast<double>(pr.not_ready), p50 / solo_ms,
                  p95 / solo_ms, p99 / solo_ms, p50, p95, p99,
                  static_cast<double>(pr.ok) / pr.wall_s,
                  static_cast<double>(cut_round)});
    }
    svc.shutdown();
  }

  report.flush();
  if (failures > 0) {
    std::printf("\n%d FATAL self-gate failure(s)\n", failures);
    return 1;
  }
  std::printf("\nall serve self-gates passed\n");
  return 0;
}
