// Out-of-core trajectory: the SAME solve executed against a DPEF edge
// file through the file-backed streaming substrate (async double-buffered
// prefetch on/off, under a resident-edge budget strictly below the file's
// edge count) and against the MapReduce substrate with round compression.
//
// Self-gates (exit 1 on violation):
//   - the file-backed SolverResult is bitwise identical to the in-memory
//     reference at 1/2/8 threads, with prefetch on and off;
//   - the budgeted run's peak resident edge state stays under a budget
//     smaller than the file (the out-of-core contract);
//   - round compression executes strictly fewer simulator rounds than
//     sampling rounds while the SolverResult stays bitwise identical.
//
// Columns: bytes_per_edge (total IO bytes / m — deterministic: passes are
// a resource count) and sim_rounds_ratio (executed simulator rounds /
// sampling rounds; 1.0 uncompressed, < 1 under compression) are
// deterministic and CI-gated LOWER-IS-BETTER. prefetch_hit_rate /
// stall_share are the prefetch pipeline's health signal — timing-
// dependent by nature, informational only. --quick is accepted for
// scripts/check.sh symmetry but changes nothing: the gated columns are
// instance-dependent, so the row set must match the committed baseline,
// and the instance is already check.sh-sized (~2 s end to end).

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "access/in_memory.hpp"
#include "access/mapreduce.hpp"
#include "access/streaming.hpp"
#include "bench_common.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "stream/edge_file.hpp"
#include "util/timer.hpp"

namespace {

using namespace dp;

core::SolverOptions file_options() {
  core::SolverOptions opts;
  opts.eps = 0.25;
  opts.p = 3.0;
  opts.seed = 101;
  opts.max_outer_rounds = 3;
  opts.sparsifiers_per_round = 2;
  return opts;
}

core::SolverOptions mapreduce_options() {
  core::SolverOptions opts;
  opts.eps = 0.25;
  opts.p = 2.0;
  opts.seed = 101;
  opts.max_outer_rounds = 3;
  opts.sparsifiers_per_round = 4;
  return opts;
}

struct Fingerprint {
  double value = 0;
  double lambda = 0;
  double beta = 0;
  double certified_ratio = 0;
  std::size_t outer_rounds = 0;
  std::vector<std::size_t> stored;

  explicit Fingerprint(const core::SolverResult& r)
      : value(r.value),
        lambda(r.lambda),
        beta(r.beta),
        certified_ratio(r.certified_ratio),
        outer_rounds(r.outer_rounds) {
    for (const auto& rs : r.history) stored.push_back(rs.stored_edges);
  }

  bool operator==(const Fingerprint&) const = default;
};

int gate(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "FATAL: %s\n", what);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Accepted, unused: the row set must match the baseline (see header).
  (void)(argc > 1 && std::strcmp(argv[1], "--quick") == 0);
  bench::header(
      "Out-of-core solve (mmap-backed edge streams)",
      "one solve over a DPEF edge file: bitwise-identical to in-memory "
      "under a budget smaller than the file, IO bytes/stalls/prefetch "
      "hits metered, and MapReduce round compression executing fewer "
      "simulator rounds");

  const std::size_t n = 250;
  const std::size_t m = 20000;
  Graph g = gen::gnm(n, m, 611);
  gen::weight_uniform(g, 1.0, 12.0, 612);
  const std::string path = "bench_outofcore.dpef";
  stream::write_edge_file(path, g);

  core::SolverOptions ref_opts = file_options();
  ref_opts.oracle.threads = 1;
  ref_opts.pipeline_overlap = false;
  const core::SolverResult ref_result = core::solve_matching(g, ref_opts);
  const Fingerprint ref(ref_result);

  // Measure the file-backed solve's true resident peak, unbudgeted; every
  // budgeted run below executes under this cap, which is < m.
  std::size_t budget = 0;
  {
    auto file = std::make_shared<stream::EdgeFileStream>(path);
    access::StreamingSubstrate sub;
    sub.attach_source(stream::EdgeSource(file));
    core::SolverOptions opts = file_options();
    opts.substrate = &sub;
    const Fingerprint run(core::solve_matching(g, opts));
    if (gate(run == ref, "file-backed solve diverges from in-memory") ||
        gate(sub.meter().peak_resident_edges() < m,
             "file-backed resident peak not below the file's edge count")) {
      return 1;
    }
    budget = sub.meter().peak_resident_edges();
  }

  bench::BenchReport report(
      "outofcore",
      {"mode", "threads", "n", "m", "seconds", "bytes_per_edge",
       "prefetch_hit_rate", "stall_share", "peak_resident",
       "sim_rounds_ratio"});
  std::printf("%-14s %-7s %10s %14s %9s %11s %13s %16s\n", "mode",
              "threads", "seconds", "bytes_per_edge", "hit_rate",
              "stall_share", "peak_resident", "sim_rounds_ratio");

  // ---- File-backed rows: prefetch on (mode 0) and off (mode 1). ----
  for (const bool prefetch : {true, false}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      stream::EdgeFileStream::Options fopt;
      fopt.prefetch = prefetch;
      auto file = std::make_shared<stream::EdgeFileStream>(path, fopt);
      access::StreamingSubstrate sub;
      sub.attach_source(stream::EdgeSource(file));
      core::SolverOptions opts = file_options();
      opts.oracle.threads = threads;
      opts.substrate = &sub;
      opts.memory_budget_edges = budget;
      WallTimer timer;
      const core::SolverResult result = core::solve_matching(g, opts);
      const double sec = timer.seconds();
      const Fingerprint run(result);
      if (gate(run == ref, "budgeted file-backed solve diverges") ||
          gate(sub.meter().peak_resident_edges() <= budget,
               "budgeted run exceeded its resident budget")) {
        return 1;
      }
      const ResourceMeter& meter = sub.meter();
      const double fetches = static_cast<double>(meter.prefetch_hits() +
                                                 meter.io_stalls());
      const double hit_rate =
          fetches == 0 ? 0
                       : static_cast<double>(meter.prefetch_hits()) / fetches;
      const double stall_share = fetches == 0 ? 1 : 1 - hit_rate;
      const double bytes_per_edge =
          static_cast<double>(meter.io_bytes()) / static_cast<double>(m);
      const char* label = prefetch ? "file+prefetch" : "file";
      std::printf("%-14s %-7zu %10.3f %14.2f %9.3f %11.3f %13zu %16.3f\n",
                  label, threads, sec, bytes_per_edge, hit_rate, stall_share,
                  meter.peak_resident_edges(), 1.0);
      report.add({prefetch ? 0.0 : 1.0, static_cast<double>(threads),
                  static_cast<double>(n), static_cast<double>(m), sec,
                  bytes_per_edge, hit_rate, stall_share,
                  static_cast<double>(meter.peak_resident_edges()), 1.0});
    }
  }
  std::printf("determinism: file-backed SolverResult bitwise identical to "
              "in-memory under a %zu-edge budget (file holds %zu)\n",
              budget, m);

  // ---- MapReduce rows: uncompressed (mode 2) vs compressed (mode 3). ----
  core::SolverOptions mr_ref_opts = mapreduce_options();
  mr_ref_opts.oracle.threads = 1;
  mr_ref_opts.pipeline_overlap = false;
  const Fingerprint mr_ref(core::solve_matching(g, mr_ref_opts));
  for (const std::size_t compression :
       {std::size_t{1}, std::size_t{3}}) {
    access::MapReduceSubstrate::Config config;
    config.round_compression = compression;
    access::MapReduceSubstrate sub(config);
    core::SolverOptions opts = mapreduce_options();
    opts.substrate = &sub;
    WallTimer timer;
    const core::SolverResult result = core::solve_matching(g, opts);
    const double sec = timer.seconds();
    const Fingerprint run(result);
    if (gate(run == mr_ref, "round-compressed solve diverges")) return 1;
    if (compression > 1 &&
        gate(sub.simulator_rounds() < result.outer_rounds,
             "round compression saved no simulator rounds")) {
      return 1;
    }
    const double ratio = result.outer_rounds == 0
                             ? 1.0
                             : static_cast<double>(sub.simulator_rounds()) /
                                   static_cast<double>(result.outer_rounds);
    const char* label = compression > 1 ? "mr+compress" : "mr";
    std::printf("%-14s %-7d %10.3f %14.2f %9.3f %11.3f %13zu %16.3f\n",
                label, 0, sec, 0.0, 0.0, 0.0,
                sub.meter().peak_resident_edges(), ratio);
    report.add({compression > 1 ? 3.0 : 2.0, 0.0, static_cast<double>(n),
                static_cast<double>(m), sec, 0.0, 0.0, 0.0,
                static_cast<double>(sub.meter().peak_resident_edges()),
                ratio});
  }
  std::printf("determinism: round-compressed MapReduce solve bitwise "
              "identical with fewer simulator rounds than sampling "
              "rounds\n");

  std::remove(path.c_str());
  return 0;
}
