// Dynamic re-solve benchmark: a k-edge churn batch (k <= 1% of m) against
// the warm-started incremental re-solve (Solver::resolve) vs a from-scratch
// solve on the post-delta graph, at 1/2/8 oracle threads on the streaming
// substrate (BENCH_dynamic.json).
//
// Self-gates (the o(full-solve) re-solve contract, FATAL on violation):
//  (a) The warm re-solve's value AND certified ratio are bitwise-equal to
//      the from-scratch solve on the post-delta graph, at every thread
//      count.
//  (b) The warm path takes >= 5x fewer MW rounds and >= 5x fewer substrate
//      passes than from-scratch ((x+1)/(y+1) ratios, so a zero-round warm
//      path still gates), and meters the saving first-class
//      (saved_rounds > 0, repaired_rows > 0).
//
// Columns: rounds_ratio / pass_ratio are deterministic resource ratios
// (scratch+1)/(resolve+1) — the CI-gated o(full-solve) signal. speedup is
// the MACHINE-RELATIVE wall-clock ratio scratch/resolve (informational:
// wall time is not what Theorem 15 bounds). repair_share is the repair
// pass's touched-row share of the post-delta edge set (deterministic).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "access/streaming.hpp"
#include "bench_common.hpp"
#include "core/solver.hpp"
#include "dynamic/delta.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace dp;

int failures = 0;

void gate(bool ok, const std::string& what) {
  if (!ok) {
    std::printf("FATAL: %s\n", what.c_str());
    ++failures;
  }
}

core::SolverOptions base_options() {
  core::SolverOptions opt;
  opt.eps = 0.2;
  opt.p = 2.0;
  opt.seed = 424;
  opt.sparsifiers_per_round = 4;
  return opt;
}

Graph bench_graph() {
  Graph g = gen::gnm(120, 900, 911);
  gen::weight_uniform(g, 1.0, 12.0, 912);
  return g;
}

/// A churn batch touching k existing edges and inserting ~k new ones, with
/// a phantom delete and a duplicate insert mixed in (both must be absorbed
/// by delta normalization without perturbing the result).
dyn::EdgeDelta churn_batch(const Graph& g, std::uint64_t seed,
                           std::size_t k) {
  Rng rng(seed);
  dyn::EdgeDelta d;
  const auto n = static_cast<std::uint64_t>(g.num_vertices());
  for (std::size_t i = 0; i < k; ++i) {
    const Edge& e = g.edge(static_cast<EdgeId>(
        rng.uniform(static_cast<std::uint64_t>(g.num_edges()))));
    d.removes.push_back({e.u, e.v});
    const auto u = static_cast<Vertex>(rng.uniform(n));
    const auto v = static_cast<Vertex>(rng.uniform(n));
    if (u != v) {
      d.inserts.push_back({u, v, 1.0 + static_cast<double>(rng.uniform(11))});
    }
  }
  d.removes.push_back({static_cast<Vertex>(0),
                       static_cast<Vertex>(g.num_vertices() - 1)});
  if (!d.inserts.empty()) d.inserts.push_back(d.inserts.front());
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    quick = quick || std::strcmp(argv[i], "--quick") == 0;
  }
  const int reps = quick ? 1 : 3;

  bench::header(
      "dynamic: warm-started duals vs from-scratch under edge churn",
      "A k-edge delta (k <= 1% of m) against Solver::resolve seeded from "
      "the pre-delta warm handle: value and certified ratio must be "
      "bitwise-equal to the from-scratch solve on the post-delta graph at "
      "1/2/8 threads, with >= 5x fewer MW rounds and substrate passes "
      "(rounds_ratio / pass_ratio) and the saving metered first-class.");

  dyn::DynamicGraph dg(bench_graph());
  const auto pre = dg.materialize();
  const std::size_t m_pre = pre->num_edges();
  const std::size_t k = 9;  // <= 1% of m = 900

  // Cold solve on the pre-delta graph mints the warm handle.
  const core::SolverResult cold = core::solve_matching(*pre, base_options());
  gate(cold.warm != nullptr, "cold solve minted no warm handle");
  gate(cold.lambda > 0, "cold solve has no certificate level to re-attain");
  std::printf("# cold solve: %zu rounds, ratio %.5f, lambda %.3g\n\n",
              cold.outer_rounds, cold.certified_ratio, cold.lambda);

  dg.apply(churn_batch(*pre, 5150, k));
  const auto post = dg.materialize();
  const dyn::EdgeDelta delta = dg.delta_since(0);
  const auto m_post = static_cast<double>(post->num_edges());

  bench::BenchReport report(
      "dynamic",
      {"threads", "m", "k", "scratch_rounds", "resolve_rounds",
       "rounds_ratio", "scratch_passes", "resolve_passes", "pass_ratio",
       "saved_rounds", "saved_passes", "repaired_rows", "repair_share",
       "speedup"});

  for (const std::size_t threads : {1, 2, 8}) {
    const std::string label = "threads=" + std::to_string(threads);

    core::SolverResult scratch, warm;
    double scratch_ms = 1e300, resolve_ms = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      access::StreamingSubstrate s1;
      core::SolverOptions sopt = base_options();
      sopt.oracle.threads = threads;
      sopt.substrate = &s1;
      sopt.graph_generation = dg.generation();
      WallTimer ts;
      scratch = core::solve_matching(*post, sopt);
      scratch_ms = std::min(scratch_ms, ts.millis());

      access::StreamingSubstrate s2;
      core::SolverOptions ropt = base_options();
      ropt.oracle.threads = threads;
      ropt.substrate = &s2;
      ropt.graph_generation = dg.generation();
      core::Solver solver(*post, ropt);
      WallTimer tr;
      warm = solver.resolve(*cold.warm, delta);
      resolve_ms = std::min(resolve_ms, tr.millis());
    }

    // Gate (a): bitwise equality of the answer and its certificate.
    gate(warm.warm_resolve, label + ": resolve fell back to scratch (" +
                                warm.resolve_fallback + ")");
    gate(warm.value == scratch.value,
         label + ": warm value diverged from from-scratch");
    gate(warm.certified_ratio == scratch.certified_ratio,
         label + ": warm certified ratio diverged from from-scratch");

    // Gate (b): >= 5x fewer rounds and passes, metered first-class.
    const double rounds_ratio =
        static_cast<double>(scratch.outer_rounds + 1) /
        static_cast<double>(warm.outer_rounds + 1);
    const double pass_ratio =
        static_cast<double>(scratch.meter.passes() + 1) /
        static_cast<double>(warm.meter.passes() + 1);
    gate(rounds_ratio >= 5.0, label + ": rounds_ratio below 5x");
    gate(pass_ratio >= 5.0, label + ": pass_ratio below 5x");
    gate(warm.meter.saved_rounds() > 0, label + ": saved_rounds not metered");
    gate(warm.meter.saved_passes() > 0, label + ": saved_passes not metered");
    gate(warm.meter.repaired_rows() > 0,
         label + ": repair pass touched no rows");

    report.add({static_cast<double>(threads), static_cast<double>(m_pre),
                static_cast<double>(k),
                static_cast<double>(scratch.outer_rounds),
                static_cast<double>(warm.outer_rounds), rounds_ratio,
                static_cast<double>(scratch.meter.passes()),
                static_cast<double>(warm.meter.passes()), pass_ratio,
                static_cast<double>(warm.meter.saved_rounds()),
                static_cast<double>(warm.meter.saved_passes()),
                static_cast<double>(warm.meter.repaired_rows()),
                static_cast<double>(warm.meter.repaired_rows()) / m_post,
                scratch_ms / resolve_ms});
  }

  report.flush();
  if (failures > 0) {
    std::printf("\n%d FATAL self-gate failure(s)\n", failures);
    return 1;
  }
  std::printf("\nall dynamic self-gates passed\n");
  return 0;
}
