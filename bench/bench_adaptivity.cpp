// E15 (Figure 1 / Section 2.1): the adaptivity ablation — the paper's
// central architectural claim. Deferred sparsifiers let ONE adaptive
// sampling round feed t multiplicative-weight iterations. We compare, at a
// matched total-iteration budget, configurations that pack t iterations per
// round (deferred, right side of Figure 1) against t = 1 (fully adaptive,
// left side). Expected shape: comparable final quality and certificates at
// a fraction of the data-access rounds.

#include <cstdio>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "matching/blossom_weighted.hpp"

int main() {
  using namespace dp;
  bench::header("E15 adaptivity ablation (Figure 1)",
                "fixed total inner-iteration budget, varying iterations "
                "packed per adaptive round; deferred packing should match "
                "quality with far fewer data-access rounds");

  Graph g = gen::gnm(200, 3000, 51);
  gen::weight_uniform(g, 1.0, 32.0, 52);
  const double opt = max_weight_matching(g).weight(g);

  const std::size_t total_iterations = 24;
  std::printf("n=%zu m=%zu exact=%.1f total_iterations=%zu\n",
              g.num_vertices(), g.num_edges(), opt, total_iterations);
  std::printf("%-16s %10s %12s %12s %12s\n", "iters/round", "rounds",
              "ratio", "certified", "peak_edges");
  bench::row_labels({"iters_per_round", "rounds", "ratio", "certified",
                     "peak_edges"});
  for (std::size_t per_round : {1, 4, 8, 24}) {
    core::SolverOptions opts;
    opts.eps = 0.15;
    opts.p = 2.0;
    opts.seed = 53;
    opts.sparsifiers_per_round = per_round;
    opts.max_outer_rounds = total_iterations / per_round;
    const auto result = core::solve_matching(g, opts);
    std::printf("%-16zu %10zu %12.4f %12.4f %12zu\n", per_round,
                result.meter.rounds(), result.value / opt,
                result.certified_ratio, result.meter.peak_edges());
    bench::row({static_cast<double>(per_round),
                static_cast<double>(result.meter.rounds()),
                result.value / opt, result.certified_ratio,
                static_cast<double>(result.meter.peak_edges())});
  }
  return 0;
}
