#pragma once
// Shared table-printing helpers for the experiment harness. Every bench
// binary regenerates one experiment row-set from EXPERIMENTS.md: it prints
// a human-readable table plus machine-parseable CSV lines prefixed "CSV,".

#include <cstdio>
#include <string>
#include <vector>

namespace dp::bench {

inline void header(const std::string& experiment, const std::string& claim) {
  std::printf("==== %s ====\n%s\n\n", experiment.c_str(), claim.c_str());
}

inline void row_labels(const std::vector<std::string>& cols) {
  std::printf("CSV");
  for (const auto& c : cols) std::printf(",%s", c.c_str());
  std::printf("\n");
}

inline void row(const std::vector<double>& values) {
  std::printf("CSV");
  for (double v : values) std::printf(",%.6g", v);
  std::printf("\n");
}

}  // namespace dp::bench
