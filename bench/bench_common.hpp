#pragma once
// Shared reporting helpers for the experiment harness. Every bench binary
// regenerates one experiment row-set from EXPERIMENTS.md: it prints a
// human-readable table plus machine-parseable CSV lines prefixed "CSV,".
// A BenchReport additionally persists the rows as BENCH_<tag>.json in the
// working directory so successive PRs have a perf trajectory to diff
// against (see scripts/check.sh).

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace dp::bench {

inline void header(const std::string& experiment, const std::string& claim) {
  std::printf("==== %s ====\n%s\n\n", experiment.c_str(), claim.c_str());
}

inline void row_labels(const std::vector<std::string>& cols) {
  std::printf("CSV");
  for (const auto& c : cols) std::printf(",%s", c.c_str());
  std::printf("\n");
}

inline void row(const std::vector<double>& values) {
  std::printf("CSV");
  for (double v : values) std::printf(",%.6g", v);
  std::printf("\n");
}

/// Collects rows, mirrors them to the CSV stream, and writes
/// BENCH_<tag>.json on flush()/destruction. The JSON shape is
///   {"bench": tag, "columns": [...], "rows": [[...], ...]}
/// with every value a double, so downstream tooling needs no schema.
class BenchReport {
 public:
  BenchReport(std::string tag, std::vector<std::string> columns)
      : tag_(std::move(tag)), columns_(std::move(columns)) {
    row_labels(columns_);
  }

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  ~BenchReport() { flush(); }

  void add(const std::vector<double>& values) {
    row(values);
    rows_.push_back(values);
  }

  /// Write BENCH_<tag>.json; idempotent (later rows trigger a rewrite on
  /// the next flush).
  void flush() {
    if (flushed_rows_ == rows_.size()) return;
    const std::string path = "BENCH_" + tag_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;  // benches stay usable in read-only dirs
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"columns\": [",
                 tag_.c_str());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      std::fprintf(f, "%s\"%s\"", c == 0 ? "" : ", ", columns_[c].c_str());
    }
    std::fprintf(f, "],\n  \"rows\": [\n");
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "    [");
      for (std::size_t c = 0; c < rows_[r].size(); ++c) {
        std::fprintf(f, "%s%.17g", c == 0 ? "" : ", ", rows_[r][c]);
      }
      std::fprintf(f, "]%s\n", r + 1 == rows_.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    flushed_rows_ = rows_.size();
  }

 private:
  std::string tag_;
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
  std::size_t flushed_rows_ = 0;
};

}  // namespace dp::bench
