// E8 (Theorem 15, b-matching): the extension to capacities b_i > 1.
// Expected shape: dual-primal tracks or beats the greedy/local-search
// baselines for every capacity scale, and the certified bound stays sound;
// levels (and hence space) grow with log B.

#include <cstdio>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "core/weight_levels.hpp"
#include "graph/generators.hpp"
#include "matching/approx.hpp"
#include "matching/greedy.hpp"

int main() {
  using namespace dp;
  bench::header("E8 b-matching (Theorem 15)",
                "value vs greedy/local-search for growing b; levels grow "
                "with log B");

  const std::size_t n = 120;
  Graph g = gen::gnm(n, 1500, 31);
  gen::weight_uniform(g, 1.0, 16.0, 32);

  std::printf("%-10s %-10s %10s %12s %12s %12s %10s\n", "b_max", "B",
              "levels", "greedy", "local", "dual-prim", "cert");
  bench::row_labels({"b_max", "B", "levels", "greedy", "local",
                     "dual_primal", "certified"});
  for (std::int64_t b_max : {1, 2, 4, 8, 16}) {
    const Capacities b = gen::random_capacities(n, 1, b_max, 33);
    const core::LevelGraph lg(g, b, 0.2);
    const double greedy = greedy_b_matching(g, b).weight(g);
    const double local = approx_weighted_b_matching(g, b).weight(g);
    core::SolverOptions opts;
    opts.eps = 0.2;
    opts.p = 2.0;
    opts.seed = 34;
    opts.max_outer_rounds = 8;
    opts.sparsifiers_per_round = 4;
    const auto result = core::solve_b_matching(g, b, opts);
    std::printf("%-10lld %-10lld %10d %12.1f %12.1f %12.1f %10.4f\n",
                static_cast<long long>(b_max),
                static_cast<long long>(b.total()), lg.num_levels(), greedy,
                local, result.value, result.certified_ratio);
    bench::row({static_cast<double>(b_max),
                static_cast<double>(b.total()),
                static_cast<double>(lg.num_levels()), greedy, local,
                result.value, result.certified_ratio});
  }
  return 0;
}
