// Fault-tolerance trajectory: the SAME solve executed fault-free, under
// deterministic fault injection (mid-pass streaming deaths, MapReduce
// mapper/reducer task failures), and as a killed-then-resumed run through
// the round-checkpoint wire format. Self-gates the robustness contract —
// the SolverResult must be bitwise identical in all three executions, on
// every substrate at 1/2/8 threads — then emits BENCH_faults.json with the
// recovery accounting (injected faults, extra passes / shuffle messages,
// recovery units per fault) and the measured checkpoint overhead (time
// spent serializing inside the hook over total solve wall, min-of-repeats)
// with its <5% soft gate and checkpoint size.

#include <cstdio>
#include <string>
#include <vector>

#include "access/in_memory.hpp"
#include "access/mapreduce.hpp"
#include "access/streaming.hpp"
#include "bench_common.hpp"
#include "core/checkpoint.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "util/timer.hpp"

namespace {

using namespace dp;

core::SolverOptions solve_options() {
  core::SolverOptions opts;
  opts.eps = 0.25;
  opts.p = 2.0;
  opts.seed = 13;
  opts.max_outer_rounds = 4;
  opts.sparsifiers_per_round = 3;
  return opts;
}

FaultPlan fault_plan() {
  // Rates far above the 1% floor so a four-round solve reliably draws
  // failures at every site; retries never sleep (accounting only).
  FaultPlan plan;
  plan.config.seed = 0xfa57;
  plan.config.stream_pass_rate = 0.30;
  plan.config.mapper_rate = 0.20;
  plan.config.reducer_rate = 0.10;
  plan.retry.max_attempts = 10;
  plan.retry.backoff_base_us = 0;
  return plan;
}

struct Fingerprint {
  double value = 0;
  double lambda = 0;
  double beta = 0;
  double certified_ratio = 0;
  std::size_t outer_rounds = 0;
  std::vector<std::size_t> stored;

  explicit Fingerprint(const core::SolverResult& r)
      : value(r.value),
        lambda(r.lambda),
        beta(r.beta),
        certified_ratio(r.certified_ratio),
        outer_rounds(r.outer_rounds) {
    for (const auto& rs : r.history) stored.push_back(rs.stored_edges);
  }

  bool operator==(const Fingerprint&) const = default;
};

access::Substrate* pick(int which, access::InMemorySubstrate& a,
                        access::StreamingSubstrate& b,
                        access::MapReduceSubstrate& c) {
  return which == 0 ? static_cast<access::Substrate*>(&a)
         : which == 1 ? static_cast<access::Substrate*>(&b)
                      : &c;
}

}  // namespace

int main() {
  bench::header(
      "Fault-tolerant solve (robustness)",
      "deterministic fault injection + kill-after-round-k resume: bitwise "
      "identical SolverResult, honest recovery accounting, <5% checkpoint "
      "overhead");

  // ---- Self-gate: clean == faulty == killed+resumed, everywhere. ----
  {
    Graph g = gen::gnm(300, 4000, 4001);
    gen::weight_uniform(g, 1.0, 16.0, 4002);
    core::SolverOptions ref_opts = solve_options();
    ref_opts.oracle.threads = 1;
    ref_opts.pipeline_overlap = false;
    const Fingerprint ref(core::solve_matching(g, ref_opts));
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      for (int which = 0; which < 3; ++which) {
        // Faulty uninterrupted run.
        access::InMemorySubstrate im1;
        access::StreamingSubstrate st1;
        access::MapReduceSubstrate mr1;
        access::Substrate* sub = pick(which, im1, st1, mr1);
        core::SolverOptions opts = solve_options();
        opts.oracle.threads = threads;
        opts.substrate = sub;
        opts.faults = fault_plan();
        std::vector<std::uint8_t> blob;
        opts.on_checkpoint = [&blob](const core::RoundCheckpoint& ck) {
          if (ck.next_round == 1) blob = ck.serialize();
          return true;
        };
        const core::SolverResult faulty = core::solve_matching(g, opts);
        if (!(Fingerprint(faulty) == ref) ||
            faulty.status != core::SolverStatus::kComplete) {
          std::fprintf(stderr,
                       "FATAL: faulty run diverges on substrate %s at %zu "
                       "threads\n",
                       sub->name(), threads);
          return 1;
        }
        // Kill-after-round-1 resume through the wire format.
        if (blob.empty()) {
          std::fprintf(stderr, "FATAL: no checkpoint captured on %s\n",
                       sub->name());
          return 1;
        }
        const core::RoundCheckpoint ck =
            core::RoundCheckpoint::deserialize(blob);
        access::InMemorySubstrate im2;
        access::StreamingSubstrate st2;
        access::MapReduceSubstrate mr2;
        access::Substrate* sub2 = pick(which, im2, st2, mr2);
        core::SolverOptions resume_opts = solve_options();
        resume_opts.oracle.threads = threads;
        resume_opts.substrate = sub2;
        resume_opts.faults = fault_plan();
        core::Solver solver(g, resume_opts);
        const Fingerprint resumed(solver.solve(ck));
        if (!(resumed == ref)) {
          std::fprintf(stderr,
                       "FATAL: resumed run diverges on substrate %s at %zu "
                       "threads\n",
                       sub->name(), threads);
          return 1;
        }
      }
    }
    std::printf(
        "determinism: clean, fault-injected, and killed+resumed runs are "
        "bitwise identical across substrates and 1/2/8 threads\n\n");
  }

  // ---- Trajectory rows: recovery accounting + checkpoint overhead. ----
  bench::BenchReport report(
      "faults",
      {"substrate", "n", "m", "clean_sec", "faulty_sec", "faults",
       "extra_passes", "extra_messages", "recovery_units_per_fault",
       "ckpt_bytes", "ckpt_overhead_pct"});
  std::printf("%-10s %-6s %-7s %10s %10s %7s %8s %9s %10s %10s %9s\n",
              "substrate", "n", "m", "clean_sec", "faulty_sec", "faults",
              "extra_ps", "extra_msg", "rec/fault", "ckpt_B", "ckpt_%");

  const std::size_t n = 600;
  bool overhead_ok = true;
  for (const std::size_t m : {std::size_t{6000}, std::size_t{12000}}) {
    Graph g = gen::gnm(n, m, m + 7);
    gen::weight_uniform(g, 1.0, 16.0, m + 8);
    for (int which = 0; which < 3; ++which) {
      // Clean run (also the checkpoint-overhead baseline): min of repeats.
      constexpr int kRepeats = 3;
      double clean_sec = 1e300;
      std::size_t clean_passes = 0;
      std::size_t clean_messages = 0;
      for (int r = 0; r < kRepeats; ++r) {
        access::InMemorySubstrate im;
        access::StreamingSubstrate st;
        access::MapReduceSubstrate mr;
        access::Substrate* sub = pick(which, im, st, mr);
        core::SolverOptions opts = solve_options();
        opts.substrate = sub;
        WallTimer timer;
        (void)core::solve_matching(g, opts);
        clean_sec = std::min(clean_sec, timer.seconds());
        clean_passes = sub->meter().passes();
        clean_messages = sub->meter().messages();
      }

      // Serialize-every-round run. The overhead is measured DIRECTLY —
      // time spent inside the checkpoint hook over the run's total wall —
      // rather than by differencing two short wall times, which at tens of
      // milliseconds is dominated by scheduler noise. Min-of-repeats on
      // the ratio.
      double overhead_pct = 1e300;
      double ck_bytes = 0;
      for (int r = 0; r < kRepeats; ++r) {
        access::InMemorySubstrate im;
        access::StreamingSubstrate st;
        access::MapReduceSubstrate mr;
        access::Substrate* sub = pick(which, im, st, mr);
        core::SolverOptions opts = solve_options();
        opts.substrate = sub;
        double bytes = 0;
        double hook_sec = 0;
        opts.on_checkpoint = [&bytes,
                              &hook_sec](const core::RoundCheckpoint& ck) {
          WallTimer hook;
          bytes += static_cast<double>(ck.serialize().size());
          hook_sec += hook.seconds();
          return true;
        };
        WallTimer timer;
        (void)core::solve_matching(g, opts);
        const double total = timer.seconds();
        if (total > 0) {
          overhead_pct = std::min(overhead_pct, hook_sec / total * 100.0);
        }
        ck_bytes = bytes;
      }
      if (overhead_pct >= 5.0) overhead_ok = false;

      // Faulty run: recovery accounting.
      access::InMemorySubstrate im;
      access::StreamingSubstrate st;
      access::MapReduceSubstrate mr;
      access::Substrate* sub = pick(which, im, st, mr);
      core::SolverOptions opts = solve_options();
      opts.substrate = sub;
      opts.faults = fault_plan();
      WallTimer timer;
      (void)core::solve_matching(g, opts);
      const double faulty_sec = timer.seconds();
      const std::size_t faults = sub->meter().faults();
      const std::size_t extra_passes = sub->meter().passes() - clean_passes;
      const std::size_t extra_messages =
          sub->meter().messages() - clean_messages;
      const double recovery_per_fault =
          faults > 0
              ? static_cast<double>(extra_passes + extra_messages) /
                    static_cast<double>(faults)
              : 0.0;

      std::printf(
          "%-10s %-6zu %-7zu %10.4f %10.4f %7zu %8zu %9zu %10.1f %10.0f "
          "%8.2f%%\n",
          sub->name(), n, m, clean_sec, faulty_sec, faults, extra_passes,
          extra_messages, recovery_per_fault, ck_bytes, overhead_pct);
      report.add({static_cast<double>(which), static_cast<double>(n),
                  static_cast<double>(m), clean_sec, faulty_sec,
                  static_cast<double>(faults),
                  static_cast<double>(extra_passes),
                  static_cast<double>(extra_messages), recovery_per_fault,
                  ck_bytes, overhead_pct});
    }
  }
  // Timing-based soft gate: warn, don't fail, on a noisy machine.
  std::printf("\ncheckpoint overhead soft gate (<5%% of solve time): %s\n",
              overhead_ok ? "PASS" : "WARN (timing noise or regression)");
  return 0;
}
