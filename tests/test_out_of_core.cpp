// Tests for the out-of-core solve path (stream/edge_file, the file-backed
// streaming substrate, the access-layer memory budget, MapReduce round
// compression): the DPEF binary format round-trips bitwise and rejects
// every corruption as a typed CheckpointCorrupt; a solve whose pass data
// plane is a file — blocks decoded through the async prefetcher, no
// materialized attribute table — is bitwise identical to the in-memory
// reference at 1/2/8 threads with prefetch on or off; mid-pass kills on
// the file backend recover and checkpoint/resume continues the IO meters
// exactly; the resident-edge budget admits the out-of-core solve while
// rejecting over-budget configurations at the charge point; and round
// compression executes strictly fewer simulator rounds than sampling
// rounds without moving a single output bit.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "access/in_memory.hpp"
#include "access/mapreduce.hpp"
#include "access/streaming.hpp"
#include "core/checkpoint.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "stream/edge_file.hpp"
#include "util/error.hpp"

namespace dp::core {
namespace {

SolverOptions base_options() {
  SolverOptions opt;
  opt.eps = 0.2;
  opt.p = 2.0;
  opt.seed = 101;
  opt.max_outer_rounds = 3;
  opt.sparsifiers_per_round = 4;
  return opt;
}

Graph test_graph() {
  Graph g = gen::gnm(120, 900, 511);
  gen::weight_uniform(g, 1.0, 12.0, 512);
  return g;
}

/// Dense instance: the out-of-core property (resident edge state well
/// below m) only means something when m dominates the per-round samples.
Graph dense_graph() {
  Graph g = gen::gnm(250, 20000, 611);
  gen::weight_uniform(g, 1.0, 12.0, 612);
  return g;
}

FaultPlan noisy_plan() {
  FaultPlan plan;
  plan.config.seed = 0xbeef;
  plan.config.stream_pass_rate = 0.40;
  plan.retry.max_attempts = 8;
  plan.retry.backoff_base_us = 0;
  return plan;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// The cross-backend identity contract (same as tests/test_substrate.cpp):
/// everything the algorithm computes is equal bitwise; meters are compared
/// separately where the test is ABOUT the meters.
void expect_same_result(const SolverResult& a, const SolverResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.value, b.value) << label;
  EXPECT_EQ(a.dual_bound, b.dual_bound) << label;
  EXPECT_EQ(a.certified_ratio, b.certified_ratio) << label;
  EXPECT_EQ(a.lambda, b.lambda) << label;
  EXPECT_EQ(a.beta, b.beta) << label;
  EXPECT_EQ(a.outer_rounds, b.outer_rounds) << label;
  EXPECT_EQ(a.oracle_calls, b.oracle_calls) << label;
  ASSERT_EQ(a.history.size(), b.history.size()) << label;
  for (std::size_t r = 0; r < a.history.size(); ++r) {
    EXPECT_EQ(a.history[r].lambda, b.history[r].lambda) << label;
    EXPECT_EQ(a.history[r].beta, b.history[r].beta) << label;
    EXPECT_EQ(a.history[r].best_value, b.history[r].best_value) << label;
    EXPECT_EQ(a.history[r].stored_edges, b.history[r].stored_edges) << label;
    EXPECT_EQ(a.history[r].oracle_calls, b.history[r].oracle_calls) << label;
  }
  ASSERT_EQ(a.b_matching.num_edges(), b.b_matching.num_edges()) << label;
  for (EdgeId e = 0; e < a.b_matching.num_edges(); ++e) {
    ASSERT_EQ(a.b_matching.multiplicity(e), b.b_matching.multiplicity(e))
        << label << " edge " << e;
  }
}

// ---------------------------------------------------------------------------
// DPEF wire format: bitwise round-trip, generator identity, typed
// corruption.

TEST(EdgeFile, RoundTripIsBitwiseLossless) {
  const Graph g = test_graph();
  const std::string path = temp_path("dpef_roundtrip.dpef");
  // block_edges that does NOT divide m: the tail block is partial.
  stream::write_edge_file(path, g, /*block_edges=*/128);

  const Graph back = read_edge_file(path);
  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(back.edge(e).u, g.edge(e).u);
    EXPECT_EQ(back.edge(e).v, g.edge(e).v);
    // Weights travel as IEEE-754 bit patterns: compare bits, not values.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.edge(e).w),
              std::bit_cast<std::uint64_t>(g.edge(e).w));
  }

  stream::EdgeFileStream file(path);
  EXPECT_EQ(file.num_vertices(), g.num_vertices());
  EXPECT_EQ(file.num_edges(), g.num_edges());
  EXPECT_EQ(file.block_edges(), 128u);
  EXPECT_EQ(file.num_blocks(), (g.num_edges() + 127) / 128);
  // Sequential scan and random access agree with the source, in order.
  EdgeId next = 0;
  file.for_each([&](EdgeId id, const Edge& e) {
    ASSERT_EQ(id, next++);
    EXPECT_EQ(e.u, g.edge(id).u);
    EXPECT_EQ(e.v, g.edge(id).v);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(e.w),
              std::bit_cast<std::uint64_t>(g.edge(id).w));
  });
  EXPECT_EQ(next, g.num_edges());
  for (const EdgeId id : {EdgeId{0}, EdgeId{127}, EdgeId{128}, EdgeId{899}}) {
    const Edge e = file.edge(id);
    EXPECT_EQ(e.u, g.edge(id).u);
    EXPECT_EQ(e.v, g.edge(id).v);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(e.w),
              std::bit_cast<std::uint64_t>(g.edge(id).w));
  }
  std::remove(path.c_str());
}

TEST(EdgeFile, GnmToFileMatchesMaterializedWriterByteForByte) {
  // The streaming generator (never holds a Graph) and the materialized
  // write must produce the SAME file: same records, same blocks, same
  // checksums.
  const std::string direct = temp_path("dpef_gnm_direct.dpef");
  const std::string via_graph = temp_path("dpef_gnm_graph.dpef");
  const std::size_t written =
      gen::gnm_to_file(direct, 120, 900, 511, 1.0, 12.0, 512);
  Graph g = gen::gnm(120, 900, 511);
  gen::weight_uniform(g, 1.0, 12.0, 512);
  EXPECT_EQ(written, g.num_edges());
  write_edge_file(via_graph, g);

  const std::vector<std::uint8_t> a = slurp(direct);
  const std::vector<std::uint8_t> b = slurp(via_graph);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  std::remove(direct.c_str());
  std::remove(via_graph.c_str());
}

TEST(EdgeFile, CorruptionIsATypedErrorNeverAWrongGraph) {
  const Graph g = test_graph();
  const std::string path = temp_path("dpef_corrupt.dpef");
  stream::write_edge_file(path, g, /*block_edges=*/128);
  const std::vector<std::uint8_t> pristine = slurp(path);
  ASSERT_GT(pristine.size(), stream::kEdgeFileHeaderBytes);

  // Truncation and padding: the exact-size check rejects both at open.
  std::vector<std::uint8_t> bytes = pristine;
  bytes.pop_back();
  spit(path, bytes);
  EXPECT_THROW(stream::EdgeFileStream{path}, CheckpointCorrupt);
  bytes = pristine;
  bytes.push_back(0);
  spit(path, bytes);
  EXPECT_THROW(stream::EdgeFileStream{path}, CheckpointCorrupt);

  // Every header byte is covered by the header checksum (or IS the magic /
  // checksum): flipping any of them fails at open.
  for (const std::size_t pos : {std::size_t{0}, std::size_t{4},
                                std::size_t{9}, std::size_t{17},
                                std::size_t{25}, std::size_t{33}}) {
    bytes = pristine;
    bytes[pos] ^= 0x40;
    spit(path, bytes);
    EXPECT_THROW(stream::EdgeFileStream{path}, CheckpointCorrupt)
        << "header byte " << pos;
    EXPECT_THROW(read_edge_file(path), CheckpointCorrupt)
        << "header byte " << pos;
  }

  // A flipped payload bit passes the header check but dies at the first
  // scan that decodes the damaged block — never a silently wrong edge.
  bytes = pristine;
  bytes[stream::kEdgeFileHeaderBytes + 5] ^= 0x01;
  spit(path, bytes);
  EXPECT_THROW(read_edge_file(path), CheckpointCorrupt);
  {
    stream::EdgeFileStream file(path);  // header is intact: open succeeds
    EXPECT_THROW(file.for_each([](EdgeId, const Edge&) {}), CheckpointCorrupt);
  }

  // An abandoned writer (never close()d) leaves a zeroed header: the file
  // can never pass validation as a complete input.
  {
    stream::EdgeFileWriter writer(path, g.num_vertices());
    writer.add_edge(0, 1, 2.0);
  }
  EXPECT_THROW(stream::EdgeFileStream{path}, CheckpointCorrupt);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// File-backed solve: bitwise identity, source validation, IO meters.

TEST(OutOfCore, FileBackedSolveIsBitwiseIdenticalToInMemory) {
  const Graph g = test_graph();
  const std::string path = temp_path("dpef_solve.dpef");
  stream::write_edge_file(path, g, /*block_edges=*/128);

  SolverOptions ref_opt = base_options();
  ref_opt.oracle.threads = 1;
  ref_opt.pipeline_overlap = false;
  const SolverResult ref = solve_matching(g, ref_opt);
  EXPECT_GT(ref.value, 0.0);

  for (const bool prefetch : {true, false}) {
    for (const std::size_t threads : {1, 2, 8}) {
      stream::EdgeFileStream::Options fopt;
      fopt.prefetch = prefetch;
      auto file = std::make_shared<stream::EdgeFileStream>(path, fopt);
      access::StreamingSubstrate sub;
      sub.attach_source(stream::EdgeSource(file));
      SolverOptions opt = base_options();
      opt.oracle.threads = threads;
      opt.substrate = &sub;
      const SolverResult run = solve_matching(g, opt);
      const std::string label = std::string("file-backed prefetch=") +
                                (prefetch ? "on" : "off") +
                                " threads=" + std::to_string(threads);
      expect_same_result(ref, run, label);

      // The pass data plane really was the file: every round-iteration
      // pass decoded the blocks and charged their bytes. No attribute
      // table exists in file mode.
      const ResourceMeter& meter = sub.meter();
      EXPECT_GT(meter.io_bytes(), 0u) << label;
      EXPECT_EQ(meter.passes(), run.outer_rounds + 1) << label;
      EXPECT_TRUE(sub.table().empty()) << label;
      EXPECT_GT(meter.io_stalls() + meter.prefetch_hits(), 0u) << label;
      if (!prefetch) EXPECT_EQ(meter.prefetch_hits(), 0u) << label;
      // Resident edge state: the block buffers, charged for the whole
      // solve, plus the per-round sample cache — bounded by the model's
      // own stored-edge peak, never the file. (On this deliberately tiny
      // instance the samples are most of m; the budget test below uses an
      // instance where stored state is genuinely << m.)
      EXPECT_GE(meter.resident_edges(), file->resident_buffer_edges())
          << label;
      EXPECT_LE(meter.peak_resident_edges(),
                file->resident_buffer_edges() + meter.peak_edges())
          << label;
    }
  }
  std::remove(path.c_str());
}

TEST(OutOfCore, FileSourceOnRandomAccessSubstrateIsATypedConfigError) {
  const Graph g = test_graph();
  const std::string path = temp_path("dpef_reject.dpef");
  stream::write_edge_file(path, g);
  auto file = std::make_shared<stream::EdgeFileStream>(path);

  // The in-memory reference and the MapReduce simulator both require
  // random access to the bound input: attaching a file is rejected
  // immediately, typed, with the access-layer site.
  access::InMemorySubstrate in_memory;
  access::MapReduceSubstrate map_reduce;
  for (access::Substrate* sub :
       {static_cast<access::Substrate*>(&in_memory),
        static_cast<access::Substrate*>(&map_reduce)}) {
    EXPECT_FALSE(sub->accepts_file_source());
    try {
      sub->attach_source(stream::EdgeSource(file));
      FAIL() << sub->name() << ": expected ConfigError";
    } catch (const ConfigError& err) {
      EXPECT_EQ(err.context().site, "access.source") << sub->name();
    }
  }

  // The streaming substrate accepts the file — but bind() rejects a file
  // that does not describe the bound graph (n/m mismatch would silently
  // desynchronize retained indices from records).
  access::StreamingSubstrate streaming;
  EXPECT_TRUE(streaming.accepts_file_source());
  streaming.attach_source(stream::EdgeSource(file));

  Graph other = gen::gnm(60, 400, 531);
  gen::weight_uniform(other, 1.0, 8.0, 532);
  SolverOptions opt = base_options();
  opt.substrate = &streaming;
  try {
    solve_matching(other, opt);
    FAIL() << "expected ConfigError for mismatched file";
  } catch (const ConfigError& err) {
    EXPECT_EQ(err.context().site, "access.source");
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Fault tolerance and checkpoint/resume on the file backend.

TEST(OutOfCore, MidPassFaultsAreInvisibleToTheResult) {
  const Graph g = test_graph();
  const std::string path = temp_path("dpef_faults.dpef");
  stream::write_edge_file(path, g, /*block_edges=*/128);

  SolverOptions ref_opt = base_options();
  ref_opt.oracle.threads = 1;
  const SolverResult clean = solve_matching(g, ref_opt);

  for (const std::size_t threads : {1, 2, 8}) {
    auto file = std::make_shared<stream::EdgeFileStream>(path);
    access::StreamingSubstrate sub;
    sub.attach_source(stream::EdgeSource(file));
    SolverOptions opt = base_options();
    opt.oracle.threads = threads;
    opt.substrate = &sub;
    opt.faults = noisy_plan();
    const SolverResult faulty = solve_matching(g, opt);
    const std::string label =
        "file-backed faulty threads=" + std::to_string(threads);
    expect_same_result(clean, faulty, label);
    EXPECT_EQ(faulty.status, SolverStatus::kComplete) << label;
    // Every injected mid-pass death re-walked its pass (and re-read its
    // blocks: the fault offset is block-aligned on the file backend).
    EXPECT_GT(sub.meter().faults(), 0u) << label;
  }
  std::remove(path.c_str());
}

TEST(OutOfCore, KillAndResumeContinuesTheIoMetersExactly) {
  const Graph g = test_graph();
  const std::string path = temp_path("dpef_resume.dpef");
  stream::write_edge_file(path, g, /*block_edges=*/128);

  // Uninterrupted fault-free file-backed run: the meter reference.
  auto whole_file = std::make_shared<stream::EdgeFileStream>(path);
  access::StreamingSubstrate whole_sub;
  whole_sub.attach_source(stream::EdgeSource(whole_file));
  SolverOptions whole_opt = base_options();
  whole_opt.substrate = &whole_sub;
  whole_opt.on_checkpoint = [](const RoundCheckpoint&) { return true; };
  const SolverResult whole = solve_matching(g, whole_opt);
  ASSERT_GT(whole.outer_rounds, 1u);

  // Kill after round 1 — through the serialized wire format — then resume
  // on a FRESH substrate and a FRESH stream over the same file.
  std::vector<std::uint8_t> blob;
  auto killed_file = std::make_shared<stream::EdgeFileStream>(path);
  access::StreamingSubstrate killed_sub;
  killed_sub.attach_source(stream::EdgeSource(killed_file));
  SolverOptions killed_opt = base_options();
  killed_opt.substrate = &killed_sub;
  killed_opt.on_checkpoint = [&blob](const RoundCheckpoint& ck) {
    if (ck.next_round == 1) {
      blob = ck.serialize();
      return false;
    }
    return true;
  };
  const SolverResult killed = solve_matching(g, killed_opt);
  EXPECT_EQ(killed.status, SolverStatus::kInterrupted);
  ASSERT_FALSE(blob.empty());

  const RoundCheckpoint ck = RoundCheckpoint::deserialize(blob);
  auto resumed_file = std::make_shared<stream::EdgeFileStream>(path);
  access::StreamingSubstrate resumed_sub;
  resumed_sub.attach_source(stream::EdgeSource(resumed_file));
  SolverOptions resumed_opt = base_options();
  resumed_opt.substrate = &resumed_sub;
  resumed_opt.on_checkpoint = [](const RoundCheckpoint&) { return true; };
  Solver solver(g, resumed_opt);
  const SolverResult resumed = solver.solve(ck);
  expect_same_result(whole, resumed, "file-backed kill/resume");
  EXPECT_EQ(resumed.status, SolverStatus::kComplete);

  // The v4 checkpoint restores the IO accounting: the interrupted +
  // resumed meters equal the uninterrupted run's. (The hit/stall SPLIT is
  // timing-dependent by design; their sum — block fetches — is not.)
  const ResourceMeter& a = whole_sub.meter();
  const ResourceMeter& b = resumed_sub.meter();
  EXPECT_EQ(a.rounds(), b.rounds());
  EXPECT_EQ(a.passes(), b.passes());
  EXPECT_EQ(a.io_bytes(), b.io_bytes());
  EXPECT_EQ(a.io_stalls() + a.prefetch_hits(),
            b.io_stalls() + b.prefetch_hits());
  EXPECT_EQ(a.peak_edges(), b.peak_edges());
  EXPECT_EQ(a.peak_resident_edges(), b.peak_resident_edges());
  EXPECT_EQ(a.resident_edges(), b.resident_edges());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Memory budget: admitted out-of-core solves, typed rejection over budget.

TEST(OutOfCore, MemoryBudgetAdmitsFileBackedAndRejectsOverBudget) {
  const Graph g = dense_graph();
  const std::string path = temp_path("dpef_budget.dpef");
  stream::write_edge_file(path, g);  // default 1024-edge blocks

  // Sparser sampling (fewer sparsifiers, higher space exponent) keeps the
  // per-round stored union — and with it the file backend's sample
  // cache — below m, so a budget strictly smaller than the file admits
  // the solve.
  SolverOptions sparse = base_options();
  sparse.eps = 0.25;
  sparse.p = 3.0;
  sparse.sparsifiers_per_round = 2;

  SolverOptions ref_opt = sparse;
  ref_opt.oracle.threads = 1;
  ref_opt.pipeline_overlap = false;
  const SolverResult ref = solve_matching(g, ref_opt);

  // Measure the file-backed solve's true resident peak (block buffers +
  // per-round sample cache), unbudgeted.
  std::size_t peak = 0;
  {
    auto file = std::make_shared<stream::EdgeFileStream>(path);
    access::StreamingSubstrate sub;
    sub.attach_source(stream::EdgeSource(file));
    SolverOptions opt = sparse;
    opt.substrate = &sub;
    const SolverResult run = solve_matching(g, opt);
    expect_same_result(ref, run, "file-backed unbudgeted");
    peak = sub.meter().peak_resident_edges();
  }
  // The out-of-core property: the access layer never held the whole file
  // — so a budget strictly below the file's edge count (the file is
  // LARGER than the budget) still admits the solve.
  ASSERT_GT(peak, 0u);
  ASSERT_LT(peak, g.num_edges());

  // Budget == measured peak: admitted, bitwise identical, peak respected.
  {
    auto file = std::make_shared<stream::EdgeFileStream>(path);
    access::StreamingSubstrate sub;
    sub.attach_source(stream::EdgeSource(file));
    SolverOptions opt = sparse;
    opt.substrate = &sub;
    opt.memory_budget_edges = peak;
    const SolverResult run = solve_matching(g, opt);
    expect_same_result(ref, run, "file-backed budgeted");
    EXPECT_LE(sub.meter().peak_resident_edges(), peak);
  }

  // Budget one below the deterministic peak: the charge that would cross
  // it is a typed ConfigError at the access-layer site — never an OOM.
  {
    auto file = std::make_shared<stream::EdgeFileStream>(path);
    access::StreamingSubstrate sub;
    sub.attach_source(stream::EdgeSource(file));
    SolverOptions opt = sparse;
    opt.substrate = &sub;
    opt.memory_budget_edges = peak - 1;
    try {
      solve_matching(g, opt);
      FAIL() << "expected ConfigError (budget exceeded)";
    } catch (const ConfigError& err) {
      EXPECT_EQ(err.context().site, "access.budget");
      EXPECT_NE(std::string(err.what()).find("memory budget"),
                std::string::npos);
    }
  }

  // An in-RAM substrate cannot fit its attribute table under a budget
  // below the retained count: the bind-time table charge is the typed
  // error that says "use the file-backed path".
  {
    access::InMemorySubstrate sub;
    SolverOptions opt = sparse;
    opt.substrate = &sub;
    opt.memory_budget_edges = 64;
    try {
      solve_matching(g, opt);
      FAIL() << "expected ConfigError (table over budget)";
    } catch (const ConfigError& err) {
      EXPECT_EQ(err.context().site, "access.budget");
    }
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Round compression: fewer simulator rounds, identical outputs.

TEST(OutOfCore, RoundCompressionExecutesFewerSimulatorRounds) {
  const Graph g = dense_graph();

  access::MapReduceSubstrate plain;
  SolverOptions plain_opt = base_options();
  plain_opt.eps = 0.25;
  plain_opt.substrate = &plain;
  const SolverResult uncompressed = solve_matching(g, plain_opt);
  ASSERT_GT(uncompressed.outer_rounds, 1u);
  EXPECT_EQ(plain.simulator_rounds(), uncompressed.outer_rounds);

  for (const std::size_t threads : {1, 2, 8}) {
    access::MapReduceSubstrate::Config config;
    config.round_compression = 3;
    access::MapReduceSubstrate compressed(config);
    SolverOptions opt = base_options();
    opt.eps = 0.25;
    opt.oracle.threads = threads;
    opt.substrate = &compressed;
    const SolverResult run = solve_matching(g, opt);
    const std::string label =
        "round-compressed threads=" + std::to_string(threads);

    // Identical outputs: compression moves the round accounting only.
    expect_same_result(uncompressed, run, label);

    // Strictly fewer REAL simulator rounds than sampling rounds, with the
    // savings on the meter: executed + saved = sampling rounds drawn.
    EXPECT_TRUE(compressed.compression_active()) << label;
    EXPECT_LT(compressed.simulator_rounds(), run.outer_rounds) << label;
    EXPECT_EQ(compressed.meter().rounds(), compressed.simulator_rounds())
        << label;
    EXPECT_EQ(compressed.meter().rounds() + compressed.meter().saved_rounds(),
              run.outer_rounds)
        << label;
    EXPECT_GT(compressed.meter().saved_passes(), 0u) << label;
    // The batch pre-draw ran under the reducer cap and shipped real
    // shuffle volume, byte-accounted.
    EXPECT_GT(compressed.meter().shuffle_bytes(), 0u) << label;
    EXPECT_GT(compressed.reducer_memory(), 0u) << label;

    // Per-machine breakdown: the vertex-range shards did the sweeping and
    // the mapping; their emission totals are bounded by the simulator's
    // global shuffle accounting.
    const std::vector<ResourceMeter>& shards = compressed.shard_meters();
    ASSERT_EQ(shards.size(), config.machines) << label;
    std::size_t shard_messages = 0;
    std::size_t shard_passes = 0;
    for (const ResourceMeter& sm : shards) {
      shard_messages += sm.messages();
      shard_passes += sm.passes();
    }
    EXPECT_GT(shard_messages, 0u) << label;
    EXPECT_GT(shard_passes, 0u) << label;
    EXPECT_LE(shard_messages, compressed.meter().messages()) << label;
  }
}

}  // namespace
}  // namespace dp::core
