// Tests for the streaming and MapReduce substrates: pass counting, shuffle
// grouping, reducer memory caps and round accounting.

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <thread>
#include <vector>

#include "core/sampling.hpp"
#include "graph/generators.hpp"
#include "mapreduce/mapreduce.hpp"
#include "sparsify/deferred.hpp"
#include "stream/edge_stream.hpp"
#include "util/thread_pool.hpp"

namespace dp {
namespace {

TEST(EdgeStream, PassCountingAndOrder) {
  const Graph g = gen::gnm(20, 50, 1);
  ResourceMeter meter;
  EdgeStream stream(g, &meter);
  std::size_t count = 0;
  stream.for_each_pass([&](const Edge&) { ++count; });
  stream.for_each_pass([&](const Edge&) {});
  EXPECT_EQ(count, 50u);
  EXPECT_EQ(meter.passes(), 2u);
}

TEST(EdgeStream, ShuffledPassSameMultiset) {
  const Graph g = gen::gnm(15, 40, 2);
  EdgeStream stream(g);
  std::map<std::pair<Vertex, Vertex>, int> seen;
  stream.for_each_pass_shuffled(7, [&](const Edge& e) {
    seen[{std::min(e.u, e.v), std::max(e.u, e.v)}]++;
  });
  std::size_t total = 0;
  for (const auto& [key, c] : seen) total += static_cast<std::size_t>(c);
  EXPECT_EQ(total, 40u);
}

TEST(EdgeStream, ShuffleDeterministicInSeed) {
  const Graph g = gen::gnm(10, 30, 3);
  EdgeStream stream(g);
  std::vector<Vertex> order_a, order_b;
  stream.for_each_pass_shuffled(5, [&](const Edge& e) {
    order_a.push_back(e.u);
  });
  stream.for_each_pass_shuffled(5, [&](const Edge& e) {
    order_b.push_back(e.u);
  });
  EXPECT_EQ(order_a, order_b);
}

TEST(EdgeStream, TypeErasedOverloadMatchesTemplate) {
  const Graph g = gen::gnm(12, 30, 4);
  EdgeStream stream(g);
  std::vector<Vertex> a, b;
  const std::function<void(const Edge&)> erased = [&](const Edge& e) {
    a.push_back(e.u);
  };
  stream.for_each_pass(erased);                          // std::function
  stream.for_each_pass([&](const Edge& e) { b.push_back(e.u); });  // inline
  EXPECT_EQ(a, b);
}

TEST(EdgeStream, ShuffledPassCachesOrderPerSeed) {
  const Graph g = gen::gnm(14, 60, 6);
  ResourceMeter meter;
  EdgeStream stream(g, &meter);
  std::vector<Vertex> first, second, other_seed;
  stream.for_each_pass_shuffled(9, [&](const Edge& e) {
    first.push_back(e.u);
  });
  stream.for_each_pass_shuffled(9, [&](const Edge& e) {
    second.push_back(e.u);
  });
  stream.for_each_pass_shuffled(10, [&](const Edge& e) {
    other_seed.push_back(e.u);
  });
  EXPECT_EQ(first, second);        // cached permutation reused
  EXPECT_NE(first, other_seed);    // new seed regenerates
  EXPECT_EQ(meter.passes(), 3u);
}

TEST(EdgeStream, ConcurrentFirstShuffledPassesAreSafe) {
  // The shuffled-order cache builds each seed's permutation once as an
  // immutable entry (mutex + acquire/release, like Graph::neighbors' lazy
  // CSR), so concurrent FIRST passes — including different seeds — must
  // be safe and agree with serial passes.
  const Graph g = gen::gnm(40, 400, 11);
  std::vector<std::vector<Vertex>> serial(4);
  {
    EdgeStream reference(g);
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      reference.for_each_pass_shuffled(seed, [&](const Edge& e) {
        serial[seed].push_back(e.u);
      });
    }
  }
  for (int trial = 0; trial < 5; ++trial) {
    EdgeStream stream(g);
    std::vector<std::vector<Vertex>> seen(8);
    std::vector<std::thread> threads;
    threads.reserve(8);
    for (std::size_t i = 0; i < 8; ++i) {
      threads.emplace_back([&stream, &seen, i] {
        stream.for_each_pass_shuffled(i % 4, [&](const Edge& e) {
          seen[i].push_back(e.u);
        });
      });
    }
    for (std::thread& th : threads) th.join();
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(seen[i], serial[i % 4]) << "thread " << i;
    }
  }
}

TEST(EdgeStream, IndexedPassesYieldMatchingIds) {
  const Graph g = gen::gnm(18, 70, 12);
  EdgeStream stream(g);
  std::size_t count = 0;
  stream.for_each_pass_indexed([&](EdgeId e, const Edge& edge) {
    EXPECT_EQ(edge, g.edge(e));
    ++count;
  });
  EXPECT_EQ(count, g.num_edges());
  count = 0;
  stream.for_each_pass_shuffled_indexed(3, [&](EdgeId e, const Edge& edge) {
    EXPECT_EQ(edge, g.edge(e));
    ++count;
  });
  EXPECT_EQ(count, g.num_edges());
}

// ---- Batched sampling rounds across substrates (core/sampling). ----

std::vector<double> sampling_probabilities(const Graph& g) {
  std::vector<double> promise(g.num_edges(), 1.0);
  DeferredOptions dopt;
  dopt.xi = 0.5;
  dopt.gamma = 1.5;
  dopt.sampling_constant = 0.05;
  return deferred_probabilities(g.num_vertices(), g.edges(), promise, dopt,
                                123);
}

TEST(SamplingEngine, ThreadCountInvariantDraws) {
  const Graph g = gen::gnm(60, 800, 7);
  const std::vector<double> prob = sampling_probabilities(g);
  const std::size_t t = 5;
  core::SamplingEngine serial;
  serial.draw(prob, t, 3, 99);
  for (std::size_t threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    core::SamplingEngine engine(&pool, /*grain=*/64);
    engine.draw(prob, t, 3, 99);
    EXPECT_EQ(engine.last_round().masks(), serial.last_round().masks());
    EXPECT_EQ(engine.last_round().union_support(),
              serial.last_round().union_support());
    EXPECT_EQ(engine.last_round().stored_total(),
              serial.last_round().stored_total());
    for (std::size_t q = 0; q < t; ++q) {
      EXPECT_EQ(engine.last_round().sparsifier(q),
                serial.last_round().sparsifier(q));
    }
  }
}

TEST(SamplingEngine, StreamDrawMatchesInMemoryAndMetersPass) {
  const Graph g = gen::gnm(50, 600, 8);
  const std::vector<double> prob = sampling_probabilities(g);
  const std::size_t t = 4;

  core::SamplingEngine memory_engine;
  ResourceMeter memory_meter;
  memory_engine.draw(prob, t, 2, 55, &memory_meter);

  ResourceMeter stream_meter;
  EdgeStream stream(g, &stream_meter);
  core::SamplingEngine stream_engine;
  stream_engine.draw_stream(stream, prob, t, 2, 55);

  EXPECT_EQ(stream_engine.last_round().masks(),
            memory_engine.last_round().masks());
  EXPECT_EQ(stream_engine.last_round().union_support(),
            memory_engine.last_round().union_support());
  // Both substrates meter the same round/pass/store accounting.
  EXPECT_EQ(memory_meter.rounds(), 1u);
  EXPECT_EQ(memory_meter.passes(), 1u);
  EXPECT_EQ(stream_meter.rounds(), 1u);
  EXPECT_EQ(stream_meter.passes(), 1u);
  EXPECT_EQ(memory_meter.stored_edges(),
            memory_engine.last_round().stored_total());
  EXPECT_EQ(stream_meter.stored_edges(), memory_meter.stored_edges());
}

TEST(SamplingEngine, MapReduceRoundMatchesEngine) {
  const Graph g = gen::gnm(40, 500, 9);
  const std::vector<double> prob = sampling_probabilities(g);
  const std::size_t t = 6;

  core::SamplingEngine engine;
  engine.draw(prob, t, 4, 123);

  mapreduce::Config config;
  config.machines = 8;
  ResourceMeter meter;
  mapreduce::Simulator sim(config, &meter);
  const auto supports = mapreduce::sample_round(sim, prob, t, 4, 123, &meter);

  ASSERT_EQ(supports.size(), t);
  std::size_t stored_total = 0;
  for (std::size_t q = 0; q < t; ++q) {
    EXPECT_EQ(supports[q], engine.last_round().sparsifier(q)) << "q=" << q;
    stored_total += supports[q].size();
  }
  EXPECT_EQ(stored_total, engine.last_round().stored_total());
  EXPECT_EQ(meter.rounds(), 1u);
  EXPECT_EQ(meter.passes(), 1u);
  EXPECT_EQ(meter.stored_edges(), stored_total);
}

TEST(SamplingEngine, SaturatedAndZeroProbabilities) {
  std::vector<double> prob{1.0, 0.0, 0.5, 2.0, -1.0};
  core::SamplingEngine engine;
  const core::SamplingRound& round = engine.draw(prob, 3, 0, 1);
  EXPECT_EQ(round.masks()[0], 0b111u);  // p >= 1: all sparsifiers
  EXPECT_EQ(round.masks()[1], 0u);      // p == 0: none
  EXPECT_EQ(round.masks()[3], 0b111u);
  EXPECT_EQ(round.masks()[4], 0u);
  for (std::uint32_t idx : round.union_support()) {
    EXPECT_NE(round.masks()[idx], 0u);
  }
}

TEST(MapReduce, WordCountStyleRound) {
  using mapreduce::KeyValue;
  mapreduce::Config config;
  config.machines = 4;
  ResourceMeter meter;
  mapreduce::Simulator sim(config, &meter);

  // Input: key = word id, value = 1. Reducer sums.
  std::vector<KeyValue> input;
  for (std::uint64_t w = 0; w < 10; ++w) {
    for (std::uint64_t i = 0; i <= w; ++i) input.push_back({w, 1});
  }
  const auto output = sim.round(
      input,
      [](const std::vector<KeyValue>& shard, std::vector<KeyValue>& emit) {
        for (const KeyValue& kv : shard) emit.push_back(kv);
      },
      [](std::uint64_t key, const std::vector<std::uint64_t>& values,
         std::vector<KeyValue>& emit) {
        std::uint64_t sum = 0;
        for (std::uint64_t v : values) sum += v;
        emit.push_back({key, sum});
      });
  ASSERT_EQ(output.size(), 10u);
  std::map<std::uint64_t, std::uint64_t> result;
  for (const KeyValue& kv : output) result[kv.key] = kv.value;
  for (std::uint64_t w = 0; w < 10; ++w) {
    EXPECT_EQ(result[w], w + 1);
  }
  EXPECT_EQ(meter.rounds(), 1u);
  EXPECT_EQ(meter.messages(), input.size());
}

TEST(MapReduce, ReducerMemoryCapEnforced) {
  using mapreduce::KeyValue;
  mapreduce::Config config;
  config.machines = 2;
  config.reducer_memory = 5;
  mapreduce::Simulator sim(config);
  std::vector<KeyValue> input(10, KeyValue{1, 1});  // all to one reducer
  try {
    sim.round(
        input,
        [](const std::vector<KeyValue>& shard, std::vector<KeyValue>& emit) {
          for (const KeyValue& kv : shard) emit.push_back(kv);
        },
        [](std::uint64_t, const std::vector<std::uint64_t>&,
           std::vector<KeyValue>&) {});
    FAIL() << "expected ReducerMemoryExceeded";
  } catch (const mapreduce::ReducerMemoryExceeded& err) {
    // Typed hierarchy: a model violation is a ConfigError (is-a
    // SolverError), distinct from the retriable SubstrateFault.
    EXPECT_NE(dynamic_cast<const ConfigError*>(&err), nullptr);
    EXPECT_NE(dynamic_cast<const SolverError*>(&err), nullptr);
    EXPECT_EQ(err.context().site, fault_site_name(FaultSite::kReducerTask));
  }
}

TEST(MapReduce, MultipleRoundsCounted) {
  using mapreduce::KeyValue;
  mapreduce::Simulator sim(mapreduce::Config{});
  std::vector<KeyValue> data{{1, 1}, {2, 2}};
  auto identity_map = [](const std::vector<KeyValue>& shard,
                         std::vector<KeyValue>& emit) {
    for (const KeyValue& kv : shard) emit.push_back(kv);
  };
  auto identity_reduce = [](std::uint64_t key,
                            const std::vector<std::uint64_t>& values,
                            std::vector<KeyValue>& emit) {
    for (std::uint64_t v : values) emit.push_back({key, v});
  };
  data = sim.round(data, identity_map, identity_reduce);
  data = sim.round(data, identity_map, identity_reduce);
  data = sim.round(data, identity_map, identity_reduce);
  EXPECT_EQ(sim.rounds_executed(), 3u);
  EXPECT_EQ(data.size(), 2u);
}

TEST(MapReduce, EmptyInputProducesEmptyOutput) {
  using mapreduce::KeyValue;
  mapreduce::Simulator sim(mapreduce::Config{});
  const auto output = sim.round(
      {},
      [](const std::vector<KeyValue>&, std::vector<KeyValue>&) {},
      [](std::uint64_t, const std::vector<std::uint64_t>&,
         std::vector<KeyValue>&) {});
  EXPECT_TRUE(output.empty());
}

TEST(MapReduce, DeterministicReduceOrderAcrossRuns) {
  using mapreduce::KeyValue;
  std::vector<KeyValue> input;
  for (std::uint64_t i = 0; i < 100; ++i) input.push_back({i % 7, i});
  auto run = [&] {
    mapreduce::Simulator sim(mapreduce::Config{});
    return sim.round(
        input,
        [](const std::vector<KeyValue>& shard, std::vector<KeyValue>& emit) {
          for (const KeyValue& kv : shard) emit.push_back(kv);
        },
        [](std::uint64_t key, const std::vector<std::uint64_t>& values,
           std::vector<KeyValue>& emit) {
          std::uint64_t sum = 0;
          for (std::uint64_t v : values) sum += v;
          emit.push_back({key, sum});
        });
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].value, b[i].value);
  }
}

}  // namespace
}  // namespace dp
