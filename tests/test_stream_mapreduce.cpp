// Tests for the streaming and MapReduce substrates: pass counting, shuffle
// grouping, reducer memory caps and round accounting.

#include <gtest/gtest.h>

#include <map>

#include "graph/generators.hpp"
#include "mapreduce/mapreduce.hpp"
#include "stream/edge_stream.hpp"

namespace dp {
namespace {

TEST(EdgeStream, PassCountingAndOrder) {
  const Graph g = gen::gnm(20, 50, 1);
  ResourceMeter meter;
  EdgeStream stream(g, &meter);
  std::size_t count = 0;
  stream.for_each_pass([&](const Edge&) { ++count; });
  stream.for_each_pass([&](const Edge&) {});
  EXPECT_EQ(count, 50u);
  EXPECT_EQ(meter.passes(), 2u);
}

TEST(EdgeStream, ShuffledPassSameMultiset) {
  const Graph g = gen::gnm(15, 40, 2);
  EdgeStream stream(g);
  std::map<std::pair<Vertex, Vertex>, int> seen;
  stream.for_each_pass_shuffled(7, [&](const Edge& e) {
    seen[{std::min(e.u, e.v), std::max(e.u, e.v)}]++;
  });
  std::size_t total = 0;
  for (const auto& [key, c] : seen) total += static_cast<std::size_t>(c);
  EXPECT_EQ(total, 40u);
}

TEST(EdgeStream, ShuffleDeterministicInSeed) {
  const Graph g = gen::gnm(10, 30, 3);
  EdgeStream stream(g);
  std::vector<Vertex> order_a, order_b;
  stream.for_each_pass_shuffled(5, [&](const Edge& e) {
    order_a.push_back(e.u);
  });
  stream.for_each_pass_shuffled(5, [&](const Edge& e) {
    order_b.push_back(e.u);
  });
  EXPECT_EQ(order_a, order_b);
}

TEST(MapReduce, WordCountStyleRound) {
  using mapreduce::KeyValue;
  mapreduce::Config config;
  config.machines = 4;
  ResourceMeter meter;
  mapreduce::Simulator sim(config, &meter);

  // Input: key = word id, value = 1. Reducer sums.
  std::vector<KeyValue> input;
  for (std::uint64_t w = 0; w < 10; ++w) {
    for (std::uint64_t i = 0; i <= w; ++i) input.push_back({w, 1});
  }
  const auto output = sim.round(
      input,
      [](const std::vector<KeyValue>& shard, std::vector<KeyValue>& emit) {
        for (const KeyValue& kv : shard) emit.push_back(kv);
      },
      [](std::uint64_t key, const std::vector<std::uint64_t>& values,
         std::vector<KeyValue>& emit) {
        std::uint64_t sum = 0;
        for (std::uint64_t v : values) sum += v;
        emit.push_back({key, sum});
      });
  ASSERT_EQ(output.size(), 10u);
  std::map<std::uint64_t, std::uint64_t> result;
  for (const KeyValue& kv : output) result[kv.key] = kv.value;
  for (std::uint64_t w = 0; w < 10; ++w) {
    EXPECT_EQ(result[w], w + 1);
  }
  EXPECT_EQ(meter.rounds(), 1u);
  EXPECT_EQ(meter.messages(), input.size());
}

TEST(MapReduce, ReducerMemoryCapEnforced) {
  using mapreduce::KeyValue;
  mapreduce::Config config;
  config.machines = 2;
  config.reducer_memory = 5;
  mapreduce::Simulator sim(config);
  std::vector<KeyValue> input(10, KeyValue{1, 1});  // all to one reducer
  EXPECT_THROW(
      sim.round(
          input,
          [](const std::vector<KeyValue>& shard,
             std::vector<KeyValue>& emit) {
            for (const KeyValue& kv : shard) emit.push_back(kv);
          },
          [](std::uint64_t, const std::vector<std::uint64_t>&,
             std::vector<KeyValue>&) {}),
      mapreduce::ReducerMemoryExceeded);
}

TEST(MapReduce, MultipleRoundsCounted) {
  using mapreduce::KeyValue;
  mapreduce::Simulator sim(mapreduce::Config{});
  std::vector<KeyValue> data{{1, 1}, {2, 2}};
  auto identity_map = [](const std::vector<KeyValue>& shard,
                         std::vector<KeyValue>& emit) {
    for (const KeyValue& kv : shard) emit.push_back(kv);
  };
  auto identity_reduce = [](std::uint64_t key,
                            const std::vector<std::uint64_t>& values,
                            std::vector<KeyValue>& emit) {
    for (std::uint64_t v : values) emit.push_back({key, v});
  };
  data = sim.round(data, identity_map, identity_reduce);
  data = sim.round(data, identity_map, identity_reduce);
  data = sim.round(data, identity_map, identity_reduce);
  EXPECT_EQ(sim.rounds_executed(), 3u);
  EXPECT_EQ(data.size(), 2u);
}

TEST(MapReduce, EmptyInputProducesEmptyOutput) {
  using mapreduce::KeyValue;
  mapreduce::Simulator sim(mapreduce::Config{});
  const auto output = sim.round(
      {},
      [](const std::vector<KeyValue>&, std::vector<KeyValue>&) {},
      [](std::uint64_t, const std::vector<std::uint64_t>&,
         std::vector<KeyValue>&) {});
  EXPECT_TRUE(output.empty());
}

TEST(MapReduce, DeterministicReduceOrderAcrossRuns) {
  using mapreduce::KeyValue;
  std::vector<KeyValue> input;
  for (std::uint64_t i = 0; i < 100; ++i) input.push_back({i % 7, i});
  auto run = [&] {
    mapreduce::Simulator sim(mapreduce::Config{});
    return sim.round(
        input,
        [](const std::vector<KeyValue>& shard, std::vector<KeyValue>& emit) {
          for (const KeyValue& kv : shard) emit.push_back(kv);
        },
        [](std::uint64_t key, const std::vector<std::uint64_t>& values,
           std::vector<KeyValue>& emit) {
          std::uint64_t sum = 0;
          for (std::uint64_t v : values) sum += v;
          emit.push_back({key, sum});
        });
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].value, b[i].value);
  }
}

}  // namespace
}  // namespace dp
