// Tests for deadline-aware anytime solving (util/cancel + the solver's
// kDeadline/kCancelled contract) and the overload-robust matching service
// (serve/service, serve/workload): anytime results are exactly certified
// and warm-resume bitwise-identically, admission control sheds typed, the
// watchdog cancels non-progressing solves, probes answer from certified
// artifacts, and concurrent service sessions at different thread counts
// reproduce solo runs bit-for-bit.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "access/streaming.hpp"
#include "core/checkpoint.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"
#include "util/cancel.hpp"
#include "util/clock.hpp"

namespace dp {
namespace {

core::SolverOptions anytime_options() {
  core::SolverOptions opt;
  opt.eps = 0.2;
  opt.p = 2.0;
  opt.seed = 909;
  opt.max_outer_rounds = 5;
  opt.sparsifiers_per_round = 4;
  return opt;
}

Graph anytime_graph() {
  Graph g = gen::gnm(140, 1100, 611);
  gen::weight_uniform(g, 1.0, 9.0, 612);
  return g;
}

/// A graph whose solve is slow enough (hundreds of ms on any host) that a
/// submit / sweep executed while it runs cannot race its completion.
Graph blocker_graph() {
  Graph g = gen::gnm(700, 9000, 777);
  gen::weight_uniform(g, 1.0, 20.0, 778);
  return g;
}

void expect_bitwise_equal(const core::SolverResult& a,
                          const core::SolverResult& b, const char* label) {
  EXPECT_EQ(a.value, b.value) << label;
  EXPECT_EQ(a.dual_bound, b.dual_bound) << label;
  EXPECT_EQ(a.certified_ratio, b.certified_ratio) << label;
  EXPECT_EQ(a.lambda, b.lambda) << label;
  EXPECT_EQ(a.beta, b.beta) << label;
  ASSERT_EQ(a.b_matching.num_edges(), b.b_matching.num_edges()) << label;
  for (EdgeId e = 0; e < a.b_matching.num_edges(); ++e) {
    ASSERT_EQ(a.b_matching.multiplicity(e), b.b_matching.multiplicity(e))
        << label << " edge " << e;
  }
}

// ---------------------------------------------------------------------------
// Anytime solving: deadlines and cancellation in the solver.

TEST(Anytime, DeadlineExpiryReturnsCertifiedResultAndResumesBitwise) {
  const Graph g = anytime_graph();

  // Uninterrupted reference.
  core::SolverOptions ref_opt = anytime_options();
  const core::SolverResult ref = core::Solver(g, ref_opt).solve();
  ASSERT_EQ(ref.status, core::SolverStatus::kComplete);
  const std::size_t total_rounds = ref.outer_rounds;
  ASSERT_GE(total_rounds, 2u);

  // Deadline run on a scripted clock: each completed round advances fake
  // time by 10us through the checkpoint hook, and the budget covers
  // exactly two rounds — so expiry lands at the round-3 safe point
  // deterministically, independent of host speed.
  FakeClock clock;
  core::SolverOptions opt = anytime_options();
  opt.deadline = Deadline::after(clock, 25);
  opt.on_checkpoint = [&clock](const core::RoundCheckpoint&) {
    clock.advance_us(10);
    return true;
  };
  const core::SolverResult cut = core::Solver(g, opt).solve();
  EXPECT_EQ(cut.status, core::SolverStatus::kDeadline);
  EXPECT_LT(cut.outer_rounds, total_rounds);
  EXPECT_GT(cut.outer_rounds, 0u);

  // The anytime result is exactly certified and matches the reference's
  // incumbent at the same round.
  EXPECT_GT(cut.dual_bound, 0.0);
  EXPECT_EQ(cut.certified_ratio, cut.value / cut.dual_bound);
  ASSERT_LE(cut.outer_rounds, ref.history.size());
  EXPECT_EQ(cut.value, ref.history[cut.outer_rounds - 1].best_value);

  // The checkpoint rides in the result and warm-resumes to a final answer
  // bitwise identical to the uninterrupted run, in fewer rounds.
  ASSERT_NE(cut.checkpoint, nullptr);
  EXPECT_EQ(cut.checkpoint->next_round, cut.outer_rounds);
  core::SolverOptions resume_opt = anytime_options();
  const core::SolverResult resumed =
      core::Solver(g, resume_opt).solve(*cut.checkpoint);
  EXPECT_EQ(resumed.status, core::SolverStatus::kComplete);
  expect_bitwise_equal(resumed, ref, "resumed-vs-reference");
  EXPECT_EQ(resumed.outer_rounds, total_rounds);
  ASSERT_EQ(resumed.history.size(), ref.history.size());
  for (std::size_t r = 0; r < ref.history.size(); ++r) {
    EXPECT_EQ(resumed.history[r].best_value, ref.history[r].best_value);
    EXPECT_EQ(resumed.history[r].lambda, ref.history[r].lambda);
  }
}

TEST(Anytime, PreCancelledTokenStopsBeforeRoundOne) {
  const Graph g = anytime_graph();
  core::SolverOptions opt = anytime_options();
  opt.cancel = CancelToken::make();
  opt.cancel.cancel();
  const core::SolverResult result = core::Solver(g, opt).solve();
  EXPECT_EQ(result.status, core::SolverStatus::kCancelled);
  EXPECT_EQ(result.outer_rounds, 0u);
  EXPECT_EQ(result.checkpoint, nullptr);
  // Still rigorous: whatever value is reported is certified.
  EXPECT_GE(result.certified_ratio, 0.0);
  EXPECT_LE(result.certified_ratio, 1.0 + 1e-12);
}

TEST(Anytime, CancellationMidSolveReturnsAnytimeResult) {
  const Graph g = anytime_graph();
  core::SolverOptions opt = anytime_options();
  opt.cancel = CancelToken::make();
  std::size_t rounds_seen = 0;
  opt.on_checkpoint = [&](const core::RoundCheckpoint&) {
    if (++rounds_seen == 2) opt.cancel.cancel();
    return true;
  };
  const core::SolverResult result = core::Solver(g, opt).solve();
  EXPECT_EQ(result.status, core::SolverStatus::kCancelled);
  EXPECT_EQ(result.outer_rounds, 2u);
  ASSERT_NE(result.checkpoint, nullptr);
  EXPECT_EQ(result.checkpoint->next_round, 2u);
  EXPECT_GT(result.dual_bound, 0.0);
  EXPECT_EQ(result.certified_ratio, result.value / result.dual_bound);
}

// Satellite: kInterrupted must carry the checkpoint in the result so the
// interrupt -> resume round-trip needs no caller-side callback plumbing.
TEST(Anytime, InterruptedSolveCarriesCheckpointForResume) {
  const Graph g = anytime_graph();
  core::SolverOptions ref_opt = anytime_options();
  const core::SolverResult ref = core::Solver(g, ref_opt).solve();

  core::SolverOptions opt = anytime_options();
  std::size_t rounds_seen = 0;
  opt.on_checkpoint = [&](const core::RoundCheckpoint&) {
    return ++rounds_seen < 2;  // stop after round 2
  };
  const core::SolverResult cut = core::Solver(g, opt).solve();
  ASSERT_EQ(cut.status, core::SolverStatus::kInterrupted);
  ASSERT_NE(cut.checkpoint, nullptr);
  EXPECT_EQ(cut.checkpoint->next_round, 2u);

  core::SolverOptions resume_opt = anytime_options();
  const core::SolverResult resumed =
      core::Solver(g, resume_opt).solve(*cut.checkpoint);
  EXPECT_EQ(resumed.status, core::SolverStatus::kComplete);
  expect_bitwise_equal(resumed, ref, "interrupt-resume");
}

TEST(Anytime, StreamingDeadlineFiresMidPass) {
  // Auto-advancing fake clock: every stop poll moves time forward, so the
  // deadline expires after a fixed number of polls — inside the first
  // streaming pass, long before a round completes.
  const Graph g = anytime_graph();
  FakeClock clock;
  clock.auto_advance_us(1);
  access::StreamingSubstrate substrate;
  core::SolverOptions opt = anytime_options();
  opt.substrate = &substrate;
  opt.deadline = Deadline::after(clock, 3);
  const core::SolverResult result = core::Solver(g, opt).solve();
  EXPECT_EQ(result.status, core::SolverStatus::kDeadline);
  EXPECT_EQ(result.outer_rounds, 0u);
  EXPECT_GE(result.certified_ratio, 0.0);
}

// ---------------------------------------------------------------------------
// The matching service.

TEST(Serve, SolveThenProbeEndToEnd) {
  serve::ServiceOptions sopt;
  sopt.workers = 1;
  sopt.solver = anytime_options();
  serve::MatchingService svc(sopt);
  Graph g = anytime_graph();
  const core::SolverResult direct = core::Solver(g, anytime_options()).solve();
  const std::size_t snap = svc.add_snapshot(std::move(g));

  serve::Request solve_req;
  solve_req.type = serve::RequestType::kSolve;
  solve_req.snapshot = snap;
  const serve::Response solved = svc.submit(solve_req).wait();
  ASSERT_EQ(solved.status, serve::ResponseStatus::kOk);
  EXPECT_TRUE(solved.certified);
  EXPECT_EQ(solved.value, direct.value);
  EXPECT_EQ(solved.certified_ratio, direct.certified_ratio);
  EXPECT_EQ(solved.checkpoint, nullptr);

  // Probe an edge of the certified matching (the service's solve is
  // deterministic, so the direct run tells us one).
  ASSERT_FALSE(direct.matching.edges().empty());
  const Graph g2 = anytime_graph();
  const Edge& matched = g2.edges()[direct.matching.edges().front()];
  serve::Request probe;
  probe.type = serve::RequestType::kProbeEdge;
  probe.snapshot = snap;
  probe.u = matched.u;
  probe.v = matched.v;
  const serve::Response hit = svc.submit(probe).wait();
  ASSERT_EQ(hit.status, serve::ResponseStatus::kOk);
  EXPECT_TRUE(hit.edge_in_matching);
  EXPECT_EQ(hit.certified_ratio, direct.certified_ratio);

  // A non-edge probe misses but still carries the certificate.
  probe.u = matched.u;
  probe.v = matched.u;
  const serve::Response miss = svc.submit(probe).wait();
  ASSERT_EQ(miss.status, serve::ResponseStatus::kOk);
  EXPECT_FALSE(miss.edge_in_matching);

  serve::Request ratio;
  ratio.type = serve::RequestType::kProbeRatio;
  ratio.snapshot = snap;
  const serve::Response rr = svc.submit(ratio).wait();
  ASSERT_EQ(rr.status, serve::ResponseStatus::kOk);
  EXPECT_EQ(rr.certified_ratio, direct.certified_ratio);
  EXPECT_EQ(rr.value, direct.value);
}

TEST(Serve, TypedRejections) {
  serve::ServiceOptions sopt;
  sopt.workers = 1;
  sopt.solver = anytime_options();
  serve::MatchingService svc(sopt);
  const std::size_t snap = svc.add_snapshot(anytime_graph());

  // Probe before any certified solve: typed kNotReady with retry hint.
  serve::Request probe;
  probe.type = serve::RequestType::kProbeRatio;
  probe.snapshot = snap;
  const serve::Response nr = svc.submit(probe).wait();
  EXPECT_EQ(nr.status, serve::ResponseStatus::kNotReady);
  EXPECT_FALSE(nr.certified);
  EXPECT_GT(nr.retry_after_us, 0u);

  // Unknown snapshot: typed kNotFound, resolved inline.
  serve::Request bad;
  bad.snapshot = 99;
  const auto ticket = svc.submit(bad);
  EXPECT_TRUE(ticket.ready());
  EXPECT_EQ(ticket.wait().status, serve::ResponseStatus::kNotFound);

  const serve::ServiceStats st = svc.stats();
  EXPECT_EQ(st.not_found, 1u);
  EXPECT_EQ(st.not_ready, 1u);
}

TEST(Serve, AdmissionControlShedsBeyondClassBudget) {
  serve::ServiceOptions sopt;
  sopt.workers = 1;
  sopt.solve_slots = 2;  // one executing + one queued
  sopt.queue_capacity = 64;
  sopt.retry_after_base_us = 500;
  sopt.solver = anytime_options();
  serve::MatchingService svc(sopt);
  const std::size_t snap = svc.add_snapshot(blocker_graph());

  serve::Request req;
  req.type = serve::RequestType::kSolve;
  req.snapshot = snap;
  auto t1 = svc.submit(req);  // occupies the worker for a long time
  auto t2 = svc.submit(req);  // queued
  auto t3 = svc.submit(req);  // over the class budget -> shed inline
  EXPECT_TRUE(t3.ready());
  const serve::Response shed = t3.wait();
  EXPECT_EQ(shed.status, serve::ResponseStatus::kShed);
  EXPECT_GT(shed.retry_after_us, 0u);

  // Probes ride their own budget: they are admitted while solves shed.
  serve::Request probe;
  probe.type = serve::RequestType::kProbeRatio;
  probe.snapshot = snap;
  auto tp = svc.submit(probe);

  const serve::Response r1 = t1.wait();
  const serve::Response r2 = t2.wait();
  EXPECT_EQ(r1.status, serve::ResponseStatus::kOk);
  EXPECT_EQ(r2.status, serve::ResponseStatus::kOk);
  EXPECT_GT(r2.queue_us, 0u);
  tp.wait();

  const serve::ServiceStats st = svc.stats();
  EXPECT_EQ(st.shed, 1u);
  EXPECT_EQ(st.ok, 3u);
  EXPECT_EQ(st.submitted, 4u);
}

TEST(Serve, DeadlineExpiredInQueueIsRejectedWithoutSolving) {
  FakeClock clock;
  serve::ServiceOptions sopt;
  sopt.workers = 1;
  sopt.clock = &clock;
  sopt.solver = anytime_options();
  serve::MatchingService svc(sopt);
  const std::size_t blocker = svc.add_snapshot(blocker_graph());
  const std::size_t small = svc.add_snapshot(anytime_graph());

  serve::Request big;
  big.type = serve::RequestType::kSolve;
  big.snapshot = blocker;
  auto t1 = svc.submit(big);  // FIFO head: occupies the worker

  serve::Request timed;
  timed.type = serve::RequestType::kSolve;
  timed.snapshot = small;
  timed.deadline_us = 10;
  auto t2 = svc.submit(timed);
  clock.advance_us(1000);  // the budget lapses while t2 waits in queue

  const serve::Response r2 = t2.wait();
  EXPECT_EQ(r2.status, serve::ResponseStatus::kDeadline);
  EXPECT_FALSE(r2.certified);  // queue expiry is a typed rejection
  EXPECT_EQ(r2.rounds_executed, 0u);
  EXPECT_NE(r2.detail.find("queue"), std::string::npos);
  t1.wait();
  EXPECT_EQ(svc.stats().deadline_hits, 1u);
}

TEST(Serve, WatchdogCancelsNonProgressingSolve) {
  FakeClock clock;
  serve::ServiceOptions sopt;
  sopt.workers = 1;
  sopt.clock = &clock;
  sopt.watchdog_stall_us = 100;
  sopt.watchdog_poll_us = 0;  // manual sweeps
  sopt.solver = anytime_options();
  serve::MatchingService svc(sopt);
  const std::size_t snap = svc.add_snapshot(blocker_graph());

  serve::Request req;
  req.type = serve::RequestType::kSolve;
  req.snapshot = snap;
  auto ticket = svc.submit(req);

  // Fake time never advances on its own, so the in-flight solve "stalls"
  // as soon as we script a jump past the threshold. Sweep until the slot
  // is active (the worker may not have started yet in real time).
  std::size_t cancelled = 0;
  for (int i = 0; i < 10000 && cancelled == 0 && !ticket.ready(); ++i) {
    clock.advance_us(200);
    cancelled = svc.watchdog_sweep();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(cancelled, 1u);

  const serve::Response r = ticket.wait();
  EXPECT_EQ(r.status, serve::ResponseStatus::kStalled);
  // The stalled response is still an anytime answer: certified, with a
  // warm-resume handle if any round completed.
  EXPECT_TRUE(r.certified);
  EXPECT_GE(r.certified_ratio, 0.0);
  EXPECT_EQ(svc.stats().stalled, 1u);
}

TEST(Serve, DeadlineMidSolveResumesThroughTheService) {
  // End-to-end warm-resume: a deadline-cut solve's checkpoint, resubmitted
  // through the service, finishes bitwise-identically to the full run.
  const core::SolverResult ref =
      core::Solver(anytime_graph(), anytime_options()).solve();

  FakeClock clock;
  serve::ServiceOptions sopt;
  sopt.workers = 1;
  sopt.clock = &clock;
  sopt.solver = anytime_options();
  // Auto-advancing clock: every stop poll consumes scripted time, so a
  // budget of a few dozen microseconds cuts the solve after a couple of
  // rounds regardless of host speed.
  serve::MatchingService svc(sopt);
  const std::size_t snap = svc.add_snapshot(anytime_graph());
  clock.auto_advance_us(1);

  serve::Request timed;
  timed.type = serve::RequestType::kSolve;
  timed.snapshot = snap;
  timed.deadline_us = 30;
  const serve::Response cut = svc.submit(timed).wait();
  clock.auto_advance_us(0);
  ASSERT_EQ(cut.status, serve::ResponseStatus::kDeadline);
  EXPECT_TRUE(cut.certified);  // mid-solve expiry is an anytime answer
  ASSERT_LT(cut.rounds_executed, ref.outer_rounds);

  if (cut.checkpoint != nullptr) {
    serve::Request again;
    again.type = serve::RequestType::kSolve;
    again.snapshot = snap;
    again.resume = cut.checkpoint;
    const serve::Response done = svc.submit(again).wait();
    ASSERT_EQ(done.status, serve::ResponseStatus::kOk);
    EXPECT_EQ(done.value, ref.value);
    EXPECT_EQ(done.certified_ratio, ref.certified_ratio);
    EXPECT_EQ(done.rounds_executed, ref.outer_rounds);
    EXPECT_EQ(svc.stats().resumed, 1u);
  }
}

TEST(Serve, BadResumeHandleIsTypedError) {
  serve::ServiceOptions sopt;
  sopt.workers = 1;
  sopt.solver = anytime_options();
  serve::MatchingService svc(sopt);
  const std::size_t snap = svc.add_snapshot(anytime_graph());

  // A checkpoint from a DIFFERENT configuration (other seed) must be
  // rejected typed, not crash the worker.
  core::SolverOptions other = anytime_options();
  other.seed = 1234;
  std::shared_ptr<const core::RoundCheckpoint> foreign;
  other.on_checkpoint = [&](const core::RoundCheckpoint& ck) {
    foreign = std::make_shared<core::RoundCheckpoint>(ck);
    return false;
  };
  (void)core::Solver(anytime_graph(), other).solve();
  ASSERT_NE(foreign, nullptr);

  serve::Request req;
  req.type = serve::RequestType::kSolve;
  req.snapshot = snap;
  req.resume = foreign;
  const serve::Response r = svc.submit(req).wait();
  EXPECT_EQ(r.status, serve::ResponseStatus::kError);
  EXPECT_FALSE(r.detail.empty());

  // The worker survived: a normal request still completes.
  serve::Request ok;
  ok.type = serve::RequestType::kSolve;
  ok.snapshot = snap;
  EXPECT_EQ(svc.submit(ok).wait().status, serve::ResponseStatus::kOk);
}

TEST(Serve, ShutdownShedsQueuedRequests) {
  serve::ServiceOptions sopt;
  sopt.workers = 1;
  sopt.solver = anytime_options();
  serve::MatchingService svc(sopt);
  const std::size_t snap = svc.add_snapshot(blocker_graph());
  serve::Request req;
  req.type = serve::RequestType::kSolve;
  req.snapshot = snap;
  auto t1 = svc.submit(req);
  auto t2 = svc.submit(req);
  svc.shutdown();
  // t1 may have completed or been shed depending on timing; t2 must be
  // resolved either way and a post-shutdown submit sheds inline.
  (void)t1.wait();
  (void)t2.wait();
  auto t3 = svc.submit(req);
  EXPECT_TRUE(t3.ready());
  EXPECT_EQ(t3.wait().status, serve::ResponseStatus::kShed);
}

// Satellite: two concurrent service sessions solving the same snapshot at
// different thread counts are each bitwise identical to their solo runs.
TEST(Serve, ConcurrentSessionsMatchSoloRunsBitwise) {
  const Graph g = anytime_graph();

  core::SolverOptions opt1 = anytime_options();
  opt1.oracle.threads = 1;
  core::SolverOptions opt2 = anytime_options();
  opt2.oracle.threads = 2;
  const core::SolverResult solo1 = core::Solver(g, opt1).solve();
  const core::SolverResult solo2 = core::Solver(g, opt2).solve();
  expect_bitwise_equal(solo1, solo2, "thread-count-invariance");

  core::SolverResult conc1, conc2;
  std::thread a([&] { conc1 = core::Solver(g, opt1).solve(); });
  std::thread b([&] { conc2 = core::Solver(g, opt2).solve(); });
  a.join();
  b.join();
  expect_bitwise_equal(conc1, solo1, "concurrent-1-thread");
  expect_bitwise_equal(conc2, solo2, "concurrent-2-thread");
}

// ---------------------------------------------------------------------------
// Workload generation.

TEST(Workload, ZipfianChooserIsDeterministicSkewedAndInRange) {
  const serve::ZipfianChooser zipf(1000, 0.99);
  const serve::ZipfianChooser same(1000, 0.99);
  CounterRng rng(7);
  std::vector<std::size_t> hist(1000, 0);
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const double u = rng.uniform_real(i, 0, 0);
    const std::uint64_t r = zipf.pick(u);
    ASSERT_LT(r, 1000u);
    EXPECT_EQ(r, same.pick(u));
    ++hist[r];
  }
  // Zipf at theta=0.99 over 1000 ranks: rank 0 draws a few percent of all
  // picks and dominates the tail by a wide margin.
  EXPECT_GT(hist[0], hist[500] * 5 + 10);
  EXPECT_GT(hist[0], 200u);
}

TEST(Workload, ZetaCacheExtendsAndRecomputesConsistently) {
  const double z10 = serve::zipfian_zeta(10, 0.75);
  const double z20 = serve::zipfian_zeta(20, 0.75);  // extends the prefix
  EXPECT_GT(z20, z10);
  // A smaller n after a larger one recomputes fresh — same value again.
  EXPECT_DOUBLE_EQ(serve::zipfian_zeta(10, 0.75), z10);
  double direct = 0;
  for (int i = 1; i <= 20; ++i) direct += 1.0 / std::pow(i, 0.75);
  EXPECT_NEAR(z20, direct, 1e-12);
}

TEST(Workload, GeneratorIsPureAndRespectsMixAndGraph) {
  const Graph g = anytime_graph();
  serve::WorkloadMix mix;
  mix.solve = 0.1;
  mix.probe_edge = 0.6;
  mix.probe_ratio = 0.3;
  const serve::WorkloadGen gen(42, g, mix);
  const serve::WorkloadGen gen2(42, g, mix);

  std::size_t solves = 0, edges = 0, ratios = 0;
  for (std::uint64_t op = 0; op < 5000; ++op) {
    const auto kind = gen.kind(3, op);
    EXPECT_EQ(kind, gen2.kind(3, op));  // pure in (seed, client, op)
    const Vertex u = gen.vertex(3, op);
    EXPECT_EQ(u, gen2.vertex(3, op));
    ASSERT_LT(u, g.num_vertices());
    switch (kind) {
      case serve::OpKind::kSolve: ++solves; break;
      case serve::OpKind::kProbeEdge: {
        ++edges;
        const Vertex v = gen.neighbor_of(u, 3, op);
        if (v != serve::kNoNeighbor) {
          bool incident = false;
          for (const auto& inc : g.neighbors(u)) {
            incident = incident || inc.neighbor == v;
          }
          EXPECT_TRUE(incident);
        }
        break;
      }
      case serve::OpKind::kProbeRatio: ++ratios; break;
    }
  }
  // Loose two-sided bounds around the 10/60/30 mix.
  EXPECT_GT(solves, 300u);
  EXPECT_LT(solves, 800u);
  EXPECT_GT(edges, 2500u);
  EXPECT_GT(ratios, 1000u);
}

}  // namespace
}  // namespace dp
