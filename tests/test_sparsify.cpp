// Tests for the sparsification substrate: strength estimation, weighted cut
// sparsifiers, deferred sparsifiers (Definition 4 / Lemma 17) and the cut
// evaluation utilities.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "sparsify/cut_eval.hpp"
#include "sparsify/cut_sparsifier.hpp"
#include "sparsify/deferred.hpp"
#include "sparsify/strength.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dp {
namespace {

std::vector<double> unit_weights(const Graph& g) {
  return std::vector<double>(g.num_edges(), 1.0);
}

TEST(Strength, BridgeIsWeakCliqueIsStrong) {
  // Two K8 cliques joined by one bridge.
  Graph g(16);
  for (Vertex i = 0; i < 8; ++i) {
    for (Vertex j = i + 1; j < 8; ++j) {
      g.add_edge(i, j);
      g.add_edge(i + 8, j + 8);
    }
  }
  g.add_edge(0, 8);  // bridge, last edge
  const auto strength = estimate_strengths(16, g.edges(), 5);
  const double bridge = strength.back();
  double clique_avg = 0;
  for (std::size_t e = 0; e + 1 < strength.size(); ++e) {
    clique_avg += strength[e];
  }
  clique_avg /= static_cast<double>(strength.size() - 1);
  EXPECT_GT(clique_avg, bridge);
  for (double s : strength) EXPECT_GE(s, 1.0);
}

class SparsifierQualityParam
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SparsifierQualityParam, CutsPreserved) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::gnm(60, 500, seed * 7 + 1);
  const auto w = unit_weights(g);
  SparsifierOptions opt;
  opt.xi = 0.2;
  const auto kept = cut_sparsify(g.num_vertices(), g.edges(), w, opt,
                                 seed * 13 + 5);
  const double err =
      max_cut_error(g.num_vertices(), g.edges(), w, kept, 200, seed);
  // Allow modest slack over the target xi (finite-sample constants).
  EXPECT_LT(err, 2.5 * opt.xi) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SparsifierQualityParam,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(Sparsifier, WeightedClassesPreserved) {
  Graph g = gen::gnm(50, 400, 3);
  gen::weight_zipf(g, 1.0, 4);
  std::vector<double> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) w[e] = g.edge(e).w;
  SparsifierOptions opt;
  opt.xi = 0.2;
  const auto kept = cut_sparsify(g, opt, 7);
  const double err = max_cut_error(g.num_vertices(), g.edges(), w, kept,
                                   200, 11);
  EXPECT_LT(err, 2.5 * opt.xi);
}

TEST(Sparsifier, SparseOnDenseGraph) {
  const Graph g = gen::gnm(120, 6000, 9);
  SparsifierOptions opt;
  opt.xi = 0.5;
  opt.sampling_constant = 1.5;
  const auto kept = cut_sparsify(g, opt, 10);
  EXPECT_LT(kept.size(), g.num_edges());
}

TEST(Sparsifier, ZeroWeightEdgesDropped) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  std::vector<double> w{1.0, 0.0, 1.0};
  const auto kept =
      cut_sparsify(4, g.edges(), w, SparsifierOptions{}, 1);
  for (const auto& s : kept) EXPECT_NE(s.index, 1u);
}

TEST(SparsifierToGraph, PreservesEndpoints) {
  const Graph g = gen::gnm(30, 100, 12);
  const auto kept = cut_sparsify(g, SparsifierOptions{}, 13);
  const Graph h = sparsifier_to_graph(g.num_vertices(), g.edges(), kept);
  EXPECT_EQ(h.num_edges(), kept.size());
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
}

class DeferredParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeferredParam, DistortedPromiseStillSparsifies) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen::gnm(60, 500, seed + 31);
  Rng rng(seed);

  // Exact weights u_e; promises sigma_e distorted by up to gamma each way.
  DeferredOptions opt;
  opt.xi = 0.2;
  opt.gamma = 2.0;
  std::vector<double> exact(g.num_edges()), promise(g.num_edges());
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    exact[e] = 1.0 + 4.0 * rng.uniform_real();
    const double distort =
        std::pow(opt.gamma, 2.0 * rng.uniform_real() - 1.0);
    promise[e] = exact[e] * distort;
  }

  const DeferredSparsifier ds(g.num_vertices(), g.edges(), promise, opt,
                              seed * 3 + 2);
  const auto kept = ds.refine_from_full(exact);
  const double err = max_cut_error(g.num_vertices(), g.edges(), exact, kept,
                                   200, seed);
  EXPECT_LT(err, 2.5 * opt.xi) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DeferredParam,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(Deferred, StoresMoreWithLargerGamma) {
  // Compare expected stored sizes (deterministic probability sums) so the
  // assertion is immune to sampling noise; the gamma^2 oversampling must
  // strictly increase inclusion probabilities wherever they are below 1.
  const Graph g = gen::gnm(150, 8000, 41);
  std::vector<double> promise(g.num_edges(), 1.0);
  DeferredOptions small, large;
  small.xi = large.xi = 0.5;
  small.sampling_constant = large.sampling_constant = 1.0;
  small.gamma = 1.0;
  large.gamma = 3.0;
  const auto pa = deferred_probabilities(g.num_vertices(), g.edges(),
                                         promise, small, 1);
  const auto pb = deferred_probabilities(g.num_vertices(), g.edges(),
                                         promise, large, 1);
  double sum_a = 0, sum_b = 0;
  for (double p : pa) sum_a += p;
  for (double p : pb) sum_b += p;
  EXPECT_LT(sum_a, static_cast<double>(g.num_edges()));  // not saturated
  EXPECT_GT(sum_b, sum_a + 1.0);
  for (std::size_t e = 0; e < pa.size(); ++e) {
    EXPECT_GE(pb[e], pa[e] - 1e-12);
  }
}

TEST(Deferred, MeterChargedOnceAndStored) {
  const Graph g = gen::gnm(40, 300, 42);
  std::vector<double> promise(g.num_edges(), 1.0);
  ResourceMeter meter;
  const DeferredSparsifier ds(g.num_vertices(), g.edges(), promise,
                              DeferredOptions{}, 2, &meter);
  EXPECT_EQ(meter.rounds(), 1u);
  EXPECT_EQ(meter.peak_edges(), ds.size());
}

TEST(Deferred, RefineRejectsSizeMismatch) {
  const Graph g = gen::gnm(10, 20, 43);
  std::vector<double> promise(g.num_edges(), 1.0);
  const DeferredSparsifier ds(g.num_vertices(), g.edges(), promise,
                              DeferredOptions{}, 3);
  EXPECT_THROW(ds.refine({}), std::invalid_argument);
  EXPECT_THROW(
      (DeferredSparsifier{g.num_vertices(), g.edges(),
                          std::vector<double>(3, 1.0), DeferredOptions{}, 4}),
      std::invalid_argument);
}

TEST(Deferred, ProbabilitiesThreadCountInvariantAndScratchReusable) {
  // The chunk-parallel path must be bitwise identical for any pool size,
  // equal to the allocating wrapper, and stable when one scratch serves
  // many rounds.
  Graph g = gen::gnm(80, 900, 45);
  gen::weight_zipf(g, 0.8, 46);
  std::vector<double> promise(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) promise[e] = g.edge(e).w;
  DeferredOptions opt;
  opt.xi = 0.4;
  opt.sampling_constant = 0.3;

  const auto reference = deferred_probabilities(g.num_vertices(), g.edges(),
                                                promise, opt, 11);
  DeferredScratch scratch;
  std::vector<double> prob;
  for (std::size_t threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    for (int repeat = 0; repeat < 2; ++repeat) {  // scratch reuse
      deferred_probabilities_into(g.num_vertices(), g.edges(), promise, opt,
                                  11, prob, scratch, &pool);
      EXPECT_EQ(prob, reference) << "threads " << threads;
    }
  }
}

TEST(Deferred, ProbabilitiesSharedAcrossDraws) {
  const Graph g = gen::gnm(50, 400, 44);
  std::vector<double> promise(g.num_edges(), 1.0);
  const auto prob = deferred_probabilities(g.num_vertices(), g.edges(),
                                           promise, DeferredOptions{}, 5);
  ASSERT_EQ(prob.size(), g.num_edges());
  for (double p : prob) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(CutEval, WeightedCutBasics) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 4.0);
  const std::vector<double> w{1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(weighted_cut(g.edges(), w, {1, 0, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(weighted_cut(g.edges(), w, {1, 1, 0, 0}), 2.0);
}

TEST(StoerWagner, KnownMinCut) {
  // Two triangles joined by a single light edge.
  Graph g(6);
  g.add_edge(0, 1, 3.0);
  g.add_edge(1, 2, 3.0);
  g.add_edge(0, 2, 3.0);
  g.add_edge(3, 4, 3.0);
  g.add_edge(4, 5, 3.0);
  g.add_edge(3, 5, 3.0);
  g.add_edge(2, 3, 1.0);
  std::vector<double> w;
  for (const Edge& e : g.edges()) w.push_back(e.w);
  std::vector<char> side;
  const double cut = stoer_wagner_min_cut(6, g.edges(), w, &side);
  EXPECT_DOUBLE_EQ(cut, 1.0);
  EXPECT_NE(side[0], side[5]);
}

}  // namespace
}  // namespace dp
